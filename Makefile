# Single source of truth for local and CI invocations: the workflow in
# .github/workflows/ci.yml calls these targets, so the two cannot drift.

GO ?= go

# Reduced reproduction pass for `make repro` (full scale: run
# cmd/experiments with no -seqs overrides).
REPRO_SEQS      ?= 6
REPRO_CITY_SEQS ?= 60
REPRO_OUT       ?= report.json
BENCH_OUT       ?= bench.txt
BENCH_JSON      ?= BENCH_HEAD.json
BENCH_THRESHOLD ?= 0.15
BENCH_COUNT     ?= 3
BENCH_GATE_TIME ?= 3x
SWEEP_OUT       ?= sweep.txt
TRACE_OUT       ?= trace.jsonl
PROFILE_BENCH   ?= BenchmarkServeOverload|BenchmarkServeParallelStep
STATICCHECK     ?= staticcheck
# The one place the staticcheck version is pinned: lint-install (used
# by CI) and the local install hint both read it, so the version CI
# enforces and the version the hint suggests cannot drift.
STATICCHECK_VERSION ?= 2024.1.1
FUZZ_TIME       ?= 20s

.PHONY: all fmt vet lint lint-install lint-det build test race cover fuzz bench bench-json bench-diff cluster-determinism cluster-failover profile repro sweep trace clean

all: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# Static analysis beyond vet. CI installs staticcheck and calls this
# target with LINT_STRICT=1, so a missing binary fails the job instead
# of going silently green; locally the target skips (exit 0) when the
# binary is not on PATH, so `make lint` never forces a network install.
lint:
	@if command -v $(STATICCHECK) >/dev/null 2>&1; then \
		$(STATICCHECK) ./...; \
	elif [ -n "$(LINT_STRICT)" ]; then \
		echo "lint: $(STATICCHECK) not installed and LINT_STRICT is set"; exit 1; \
	else \
		echo "lint: $(STATICCHECK) not installed; skipping"; \
		echo "lint: install with: make lint-install"; \
	fi

# Installs the pinned staticcheck (network access required). CI runs
# this before `make lint LINT_STRICT=1`.
lint-install:
	$(GO) install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)

# Project-specific determinism/hot-path analyzers (internal/lint via
# cmd/detlint): map-order dependence, wall-clock reads, global
# math/rand, stray goroutines, allocating constructs in
# //detlint:allocfree functions, golden JSON schema compatibility.
# Stdlib-only — no install step, safe to run anywhere the toolchain
# exists. Fails on any unsuppressed diagnostic.
lint-det:
	$(GO) run ./cmd/detlint ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Per-package statement coverage of the full suite (the golden preset
# and chaos harnesses push internal/serve; CI runs this as its own job
# so coverage erosion is visible per PR).
cover:
	$(GO) test -cover ./...

# Short coverage-guided exploration of Server.Submit beyond the seeded
# corpus: adversarial (stream, frame, arriveAt) triples under every
# reconnect x poison policy combination. CI runs this as a smoke pass;
# raise FUZZ_TIME locally for a real hunt.
fuzz:
	$(GO) test ./internal/serve -run '^FuzzSubmit$$' -fuzz '^FuzzSubmit$$' \
		-fuzztime $(FUZZ_TIME)

# One iteration of every benchmark: a smoke pass that also emits the
# headline reproduction metrics (b.ReportMetric) into $(BENCH_OUT).
bench:
	@$(GO) test -run '^$$' -bench . -benchtime 1x ./... > $(BENCH_OUT) 2>&1; \
		st=$$?; cat $(BENCH_OUT); exit $$st

# Machine-readable benchmark trajectory: the bench smoke pass with
# -benchmem, converted by cmd/benchjson into $(BENCH_JSON) — one record
# per benchmark with ns/op, B/op, allocs/op and every custom metric.
# CI uploads the file as an artifact, so per-PR performance history can
# be diffed by tooling instead of scraped from text.
bench-json:
	@$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./... > $(BENCH_OUT) 2>&1; \
		st=$$?; cat $(BENCH_OUT); \
		if [ $$st -ne 0 ]; then exit $$st; fi; \
		$(GO) run ./cmd/benchjson -o $(BENCH_JSON) $(BENCH_OUT) && \
		echo "wrote $(BENCH_JSON)"

# Benchmark regression gate: rerun the benchmarks with -benchmem and
# diff against the newest committed BENCH_PR<n>.json baseline with
# cmd/benchdiff. Fails on any ns/op regression beyond BENCH_THRESHOLD
# (fractional, default 0.15) or allocs/op growth beyond a 0.1%
# scheduling-jitter guard; when the baseline was recorded on a
# different machine the ns/op gate degrades to advisory warnings and
# only the allocation counts gate. Each run averages BENCH_GATE_TIME
# iterations and repeats BENCH_COUNT times, comparing by per-benchmark
# minimum (benchdiff folds duplicates), because single 1x iterations
# swing tens of percent on loaded CI machines; the committed baselines
# are recorded the same way.
bench-diff:
	@$(GO) test -run '^$$' -bench . -benchtime $(BENCH_GATE_TIME) -benchmem \
		-count $(BENCH_COUNT) ./... > bench_head.txt 2>&1; \
		st=$$?; if [ $$st -ne 0 ]; then cat bench_head.txt; exit $$st; fi; \
		$(GO) run ./cmd/benchjson -o BENCH_HEAD.json bench_head.txt && \
		$(GO) run ./cmd/benchdiff -head BENCH_HEAD.json -threshold $(BENCH_THRESHOLD)

# Byte-identity of the merged cluster books across shard counts, static
# executor counts and step-worker fan-outs, under the race detector:
# the determinism contract the sharding/migration/autoscaling layer is
# pinned to (see internal/serve/cluster).
cluster-determinism:
	$(GO) test -race -run '^TestClusterDeterminism$$' -v ./internal/serve/cluster/

# Byte-identical merged books with shard kills, revivals and every
# failover policy live, across shard counts and step-worker fan-outs
# under the race detector — plus the empty-FaultPlan golden byte
# identity (the fault machinery must be free when unused).
cluster-failover:
	$(GO) test -race -run '^(TestFailoverDeterminism|TestNoFaultPlanMatchesCluster)$$' -v ./internal/serve/cluster/

# CPU and heap profiles of the serving hot path (see PROFILE_BENCH).
# Inspect with: go tool pprof -top cpu.prof
profile:
	$(GO) test -run '^$$' -bench '$(PROFILE_BENCH)' -benchtime 5x \
		-cpuprofile cpu.prof -memprofile mem.prof .
	@echo "profiles written: cpu.prof mem.prof (go tool pprof -top cpu.prof)"

# Reduced experiment pass: regenerates every table and figure, writes
# the machine-readable report, and exits non-zero on any
# Report.ShapeCheck violation.
repro:
	$(GO) run ./cmd/experiments -seqs $(REPRO_SEQS) -city-seqs $(REPRO_CITY_SEQS) -json $(REPRO_OUT)

# Reduced serving policy sweep: one hot Poisson stream against five
# quiet ones on a saturated executor, replayed under every scheduler x
# batch-size combination, followed by every scenario pack replayed
# under the pinned chaos conditions (dropouts, restarted numbering,
# FPS jitter, clock skew, poison pills), followed by the cluster
# capacity sweep — a bursty load on two shards under static executor
# counts 1..4 and the elastic autoscaler, where elastic wins on served
# frames per modeled dollar. The tables make scheduling/batching,
# chaos-robustness and elastic-economics regressions visible per PR
# (CI uploads $(SWEEP_OUT) as an artifact).
sweep:
	@$(GO) run ./cmd/serve -preset mini -streams 6 -fps 12 \
		-stream-fps 60,12,12,12,12,12 -arrivals poisson -executors 1 \
		-duration 6 -stale 0.4 -sweep > $(SWEEP_OUT); \
		st=$$?; if [ $$st -ne 0 ]; then cat $(SWEEP_OUT); exit $$st; fi; \
		echo >> $(SWEEP_OUT); \
		$(GO) run ./cmd/serve -preset all -streams 3 -fps 10 -duration 4 \
		-executors 1 -stale 0.4 -reconnect resume-with-gap -poison drop \
		-chaos dropout=30,len=0.6,renumber,jitter=0.15,skew=0.08,poison=0.04 \
		-sweep >> $(SWEEP_OUT); \
		st=$$?; if [ $$st -ne 0 ]; then cat $(SWEEP_OUT); exit $$st; fi; \
		echo >> $(SWEEP_OUT); \
		$(GO) run ./cmd/serve -preset mini -streams 6 -fps 15 \
		-arrivals burst -burst-period 4 -burst-duty 0.125 -duration 12 \
		-queue-cap 256 -shards 2 \
		-autoscale min=0,max=2,interval=0.25,up-queue=4,down-idle=1 \
		-sweep >> $(SWEEP_OUT); \
		st=$$?; cat $(SWEEP_OUT); exit $$st

# Per-frame event trace of a reduced overload scenario: one JSONL
# record per served/dropped/degraded frame, streamed from the serving
# engine's sink (CI uploads $(TRACE_OUT) as an artifact).
trace:
	@$(GO) run ./cmd/serve -preset mini -streams 6 -fps 20 \
		-arrivals poisson -executors 1 -duration 6 -queue-cap 8 \
		-stale 0.4 -degrade-depth 4 -trace $(TRACE_OUT) > /dev/null; \
		st=$$?; wc -l $(TRACE_OUT); exit $$st

clean:
	rm -f $(REPRO_OUT) $(BENCH_OUT) bench_head.txt BENCH_HEAD.json \
		$(SWEEP_OUT) $(TRACE_OUT) cpu.prof mem.prof repro.test
