# Single source of truth for local and CI invocations: the workflow in
# .github/workflows/ci.yml calls these targets, so the two cannot drift.

GO ?= go

# Reduced reproduction pass for `make repro` (full scale: run
# cmd/experiments with no -seqs overrides).
REPRO_SEQS      ?= 6
REPRO_CITY_SEQS ?= 60
REPRO_OUT       ?= report.json
BENCH_OUT       ?= bench.txt
SWEEP_OUT       ?= sweep.txt

.PHONY: all fmt vet build test race bench repro sweep clean

all: fmt vet build test

fmt:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: a smoke pass that also emits the
# headline reproduction metrics (b.ReportMetric) into $(BENCH_OUT).
bench:
	@$(GO) test -run '^$$' -bench . -benchtime 1x ./... > $(BENCH_OUT) 2>&1; \
		st=$$?; cat $(BENCH_OUT); exit $$st

# Reduced experiment pass: regenerates every table and figure, writes
# the machine-readable report, and exits non-zero on any
# Report.ShapeCheck violation.
repro:
	$(GO) run ./cmd/experiments -seqs $(REPRO_SEQS) -city-seqs $(REPRO_CITY_SEQS) -json $(REPRO_OUT)

# Reduced serving policy sweep: one hot Poisson stream against five
# quiet ones on a saturated executor, replayed under every scheduler x
# batch-size combination. The table makes scheduling/batching
# regressions visible per PR (CI uploads $(SWEEP_OUT) as an artifact).
sweep:
	@$(GO) run ./cmd/serve -preset mini -streams 6 -fps 12 \
		-stream-fps 60,12,12,12,12,12 -arrivals poisson -executors 1 \
		-duration 6 -stale 0.4 -sweep > $(SWEEP_OUT); \
		st=$$?; cat $(SWEEP_OUT); exit $$st

clean:
	rm -f $(REPRO_OUT) $(BENCH_OUT) $(SWEEP_OUT)
