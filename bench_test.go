package catdet

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus ablation benches for the design choices
// DESIGN.md calls out. Each benchmark regenerates its experiment on a
// reduced (but statistically stable) world and reports the headline
// quantities via b.ReportMetric, so `go test -bench=.` doubles as a
// compact reproduction run. The full-scale tables are produced by
// cmd/experiments.

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detector"
	"repro/internal/geom"
	"repro/internal/gpumodel"
	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/sim"
	"repro/internal/tracker"
	"repro/internal/video"
)

var (
	benchOnce  sync.Once
	benchKITTI *dataset.Dataset
	benchCity  *dataset.Dataset
)

func benchData() (*dataset.Dataset, *dataset.Dataset) {
	benchOnce.Do(func() {
		kp := video.KITTIPreset()
		kp.NumSequences = 4
		kp.FramesPerSeq = 250
		benchKITTI = video.Generate(kp, 1)

		cp := video.CityPersonsPreset()
		cp.NumSequences = 40
		benchCity = video.Generate(cp, 1)
	})
	return benchKITTI, benchCity
}

func BenchmarkTable1ProposalNetOps(b *testing.B) {
	var rows []sim.Table1Row
	for i := 0; i < b.N; i++ {
		rows = sim.Table1()
	}
	for _, r := range rows {
		b.ReportMetric(r.Gops, r.Spec.Name+"_Gops")
	}
}

func BenchmarkTable2KITTIMain(b *testing.B) {
	ds, _ := benchData()
	var rows []sim.MainRow
	for i := 0; i < b.N; i++ {
		rows = sim.Table2(ds)
	}
	b.ReportMetric(rows[0].MAPHard, "single_mAP_hard")
	b.ReportMetric(rows[2].MAPHard, "catdet10a_mAP_hard")
	b.ReportMetric(rows[0].Gops/rows[2].Gops, "catdet10a_ops_saving_x")
	b.ReportMetric(rows[0].Gops/rows[4].Gops, "catdet10b_ops_saving_x")
}

func BenchmarkTable3OpsBreakdown(b *testing.B) {
	ds, _ := benchData()
	var rows []sim.BreakdownRow
	for i := 0; i < b.N; i++ {
		rows = sim.Table3(ds)
	}
	// CaTDet (10a, 50) row.
	b.ReportMetric(rows[1].Proposal, "proposal_Gops")
	b.ReportMetric(rows[1].Refinement, "refinement_Gops")
	b.ReportMetric(rows[1].FromTracker, "from_tracker_Gops")
	b.ReportMetric(rows[1].FromProposal, "from_proposal_Gops")
}

func BenchmarkTable4ProposalNets(b *testing.B) {
	ds, _ := benchData()
	var rows []sim.StudyRow
	for i := 0; i < b.N; i++ {
		rows = sim.Table4(ds)
	}
	spreadSingle := rows[0].MAP - rows[6].MAP // res18 single vs res10c single
	spreadCat := math.Abs(rows[1].MAP - rows[7].MAP)
	b.ReportMetric(spreadSingle, "single_mAP_spread")
	b.ReportMetric(spreadCat, "catdet_mAP_spread")
}

func BenchmarkTable5RefinementNets(b *testing.B) {
	ds, _ := benchData()
	var rows []sim.StudyRow
	for i := 0; i < b.N; i++ {
		rows = sim.Table5(ds)
	}
	for i := 0; i < len(rows); i += 2 {
		b.ReportMetric(rows[i+1].MAP-rows[i].MAP, rows[i].Model+"_catdetR_minus_single_mAP")
	}
}

func BenchmarkTable6CityPersons(b *testing.B) {
	_, city := benchData()
	var rows []sim.CityRow
	for i := 0; i < b.N; i++ {
		rows = sim.Table6(city)
	}
	b.ReportMetric(rows[0].MAP, "single_mAP")
	b.ReportMetric(rows[1].MAP, "cascaded10a_mAP")
	b.ReportMetric(rows[2].MAP, "catdet10a_mAP")
	b.ReportMetric(rows[0].Gops/rows[4].Gops, "catdet10b_ops_saving_x")
}

func BenchmarkTable7GPUTiming(b *testing.B) {
	ds, _ := benchData()
	var rows []sim.TimingRow
	for i := 0; i < b.N; i++ {
		rows = sim.Table7(ds)
	}
	b.ReportMetric(rows[0].GPUOnly, "single_gpu_s")
	b.ReportMetric(rows[1].GPUOnly, "catdet_gpu_s")
	b.ReportMetric(rows[0].Total, "single_total_s")
	b.ReportMetric(rows[1].Total, "catdet_total_s")
}

func BenchmarkTable8RetinaNet(b *testing.B) {
	ds, _ := benchData()
	var rows []sim.StudyRow
	for i := 0; i < b.N; i++ {
		rows = sim.Table8(ds)
	}
	b.ReportMetric(rows[0].MAP, "single_mAP_moderate")
	b.ReportMetric(rows[1].MAP, "catdet_mAP_moderate")
	b.ReportMetric(rows[0].Gops/rows[1].Gops, "ops_saving_x")
}

func BenchmarkFigure6CThreshSweep(b *testing.B) {
	ds, _ := benchData()
	// A reduced grid keeps the bench under control; cmd/experiments
	// runs the paper's full grid.
	grid := []float64{0.01, 0.1, 0.6}
	var pts []sim.SweepPoint
	for i := 0; i < b.N; i++ {
		pts = sim.Figure6(ds, grid)
	}
	// Report the tracker-vs-no-tracker mAP gap for resnet10a at the
	// lowest and highest thresholds.
	var withLo, withHi, withoutLo, withoutHi float64
	for _, p := range pts {
		if p.Model != "resnet10a" {
			continue
		}
		switch {
		case p.Tracker && p.CThresh == grid[0]:
			withLo = p.MAP
		case p.Tracker && p.CThresh == grid[len(grid)-1]:
			withHi = p.MAP
		case !p.Tracker && p.CThresh == grid[0]:
			withoutLo = p.MAP
		case !p.Tracker && p.CThresh == grid[len(grid)-1]:
			withoutHi = p.MAP
		}
	}
	b.ReportMetric(withLo-withHi, "with_tracker_mAP_drop")
	b.ReportMetric(withoutLo-withoutHi, "without_tracker_mAP_drop")
	b.ReportMetric(withLo-withoutLo, "tracker_gain_at_low_cthresh")
}

func BenchmarkFigure7DelayRecall(b *testing.B) {
	ds, _ := benchData()
	var curves map[dataset.Class][]metrics.CurvePoint
	for i := 0; i < b.N; i++ {
		curves = sim.Figure7(ds)
	}
	for _, c := range ds.Classes {
		if pts := curves[c]; len(pts) > 0 {
			b.ReportMetric(pts[0].Recall, c.String()+"_recall_at_p05")
			b.ReportMetric(pts[0].Delay, c.String()+"_delay_at_p05")
		}
	}
}

// BenchmarkTrackerThroughput measures raw tracker frames/second on a
// KITTI-like detection stream (the paper reports 1082 fps on one Xeon
// core for the Python implementation).
func BenchmarkTrackerThroughput(b *testing.B) {
	ds, _ := benchData()
	seq := &ds.Sequences[0]
	// Precompute per-frame ground-truth "detections".
	frames := make([][]geom.Scored, len(seq.Frames))
	for fi := range seq.Frames {
		for _, o := range seq.Frames[fi].Objects {
			frames[fi] = append(frames[fi], geom.Scored{Box: o.Box, Score: 1, Class: int(o.Class)})
		}
	}
	b.ResetTimer()
	processed := 0
	for i := 0; i < b.N; i++ {
		trk := tracker.New(tracker.DefaultConfig(), float64(seq.Width), float64(seq.Height))
		for fi := range frames {
			trk.Observe(frames[fi])
			trk.Predict()
			processed++
		}
	}
	b.ReportMetric(float64(processed)/b.Elapsed().Seconds(), "frames/s")
}

// --- Engine benches: serial loop vs sharded parallel runner ---

// engineBenchSpec is the (Res10a, Res50) CaTDet system every runner
// bench uses, so serial and parallel numbers are directly comparable.
func engineBenchSpec() sim.SystemSpec {
	return sim.SystemSpec{Kind: sim.CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: core.DefaultConfig()}
}

// BenchmarkRunSerial is the baseline: the single-goroutine sim.Run.
func BenchmarkRunSerial(b *testing.B) {
	ds, _ := benchData()
	spec := engineBenchSpec()
	for i := 0; i < b.N; i++ {
		sim.Run(spec.MustBuild(ds.Classes), ds)
	}
}

// BenchmarkRunParallel shards the same run across 1, 2 and 4 workers;
// compare ns/op against BenchmarkRunSerial for the engine speedup.
func BenchmarkRunParallel(b *testing.B) {
	ds, _ := benchData()
	spec := engineBenchSpec()
	for _, w := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunParallel(spec.Factory(ds.Classes), ds, w); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEngineTable2 measures a whole table regeneration at several
// worker counts (the workload of cmd/experiments -workers N).
func BenchmarkEngineTable2(b *testing.B) {
	ds, _ := benchData()
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			eng := sim.Engine{Workers: w}
			for i := 0; i < b.N; i++ {
				eng.Table2(ds)
			}
		})
	}
}

// --- Serving benches: the online layer under moderate and heavy load ---

// serveBenchConfig is a small serving scenario on the mini world.
func serveBenchConfig() ServeConfig {
	return ServeConfig{
		Spec:      engineBenchSpec(),
		Preset:    MiniKITTIPreset(),
		Seed:      1,
		Streams:   4,
		FPS:       10,
		Arrivals:  Poisson,
		Duration:  5,
		Executors: 2,
	}
}

// BenchmarkServeCaTDet measures the event loop end to end and reports
// the headline serving quantities.
func BenchmarkServeCaTDet(b *testing.B) {
	cfg := serveBenchConfig()
	var res *ServeResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Serve(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Fleet.Throughput, "served_fps")
	b.ReportMetric(1000*res.Fleet.Latency.P99, "p99_ms")
	b.ReportMetric(100*res.Fleet.DropRate, "drop_pct")
}

// BenchmarkServeOverload measures the drop/degrade path: twice the
// load on half the executors with every backpressure policy on.
func BenchmarkServeOverload(b *testing.B) {
	cfg := serveBenchConfig()
	cfg.Streams = 8
	cfg.Executors = 1
	cfg.QueueCap = 8
	cfg.MaxStaleness = 0.3
	cfg.DegradeDepth = 4
	var res *ServeResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Serve(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.Fleet.DropRate, "drop_pct")
	b.ReportMetric(float64(res.Fleet.Degraded), "degraded_frames")
	b.ReportMetric(1000*res.Fleet.Latency.P99, "p99_ms")
}

// BenchmarkServeBatched measures the batched-executor path: the same
// overload as BenchmarkServeOverload with four frames fused per launch
// (alpha*sum(W)+b), reporting the amortization as served throughput.
func BenchmarkServeBatched(b *testing.B) {
	cfg := serveBenchConfig()
	cfg.Streams = 8
	cfg.Executors = 1
	cfg.QueueCap = 8
	cfg.MaxStaleness = 0.3
	cfg.BatchSize = 4
	var res *ServeResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Serve(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Fleet.Throughput, "served_fps")
	b.ReportMetric(float64(res.Fleet.Served)/float64(res.Batches), "frames_per_launch")
	b.ReportMetric(100*res.Fleet.DropRate, "drop_pct")
}

// BenchmarkServeParallelStep measures the parallel step fan-out: a
// wide fleet (8 streams on 8 executors, so every dispatch round holds
// work from many streams) run fully serial (workers=1) and fanned over
// GOMAXPROCS workers. Outputs are byte-identical by construction
// (TestDeterminism pins it); the interesting number is the ns/op gap,
// which on a single-core runner is the fan-out's bookkeeping overhead
// and on multi-core hardware is the speedup of the real CPU work —
// stepping detection sessions — that used to run one frame at a time.
func BenchmarkServeParallelStep(b *testing.B) {
	base := serveBenchConfig()
	base.Streams = 8
	base.FPS = 15
	base.Executors = 8
	base.Duration = 4
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{"workers=gomaxprocs", runtime.GOMAXPROCS(0)},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := base
			cfg.StepWorkers = bc.workers
			var res *ServeResult
			for i := 0; i < b.N; i++ {
				var err error
				res, err = Serve(cfg)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.Fleet.Throughput, "served_fps")
			b.ReportMetric(float64(res.Fleet.Served), "served_frames")
		})
	}
}

// BenchmarkServeFair measures the deficit-round-robin scheduler under
// one hot stream among quiet ones, reporting the drop-rate spread the
// policy is there to shrink.
func BenchmarkServeFair(b *testing.B) {
	cfg := serveBenchConfig()
	cfg.Streams = 8
	cfg.Executors = 1
	cfg.StreamFPS = []float64{40, 10, 10, 10, 10, 10, 10, 10}
	cfg.MaxStaleness = 0.3
	cfg.Scheduler = SchedFair
	var res *ServeResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = Serve(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(100*res.DropSpread(), "drop_spread_pct")
	b.ReportMetric(res.Fleet.Throughput, "served_fps")
}

// --- Ablation benches (design choices from DESIGN.md §4) ---

func ablationRun(b *testing.B, cfg core.Config) (mapHard float64, gops float64) {
	ds, _ := benchData()
	spec := sim.SystemSpec{Kind: sim.CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: cfg}
	var ev sim.Evaluation
	var r *sim.RunResult
	for i := 0; i < b.N; i++ {
		r = sim.Run(spec.MustBuild(ds.Classes), ds)
		ev = sim.Evaluate(ds, r, dataset.Hard, sim.Beta)
	}
	return ev.MAP, r.AvgGops()
}

// Exponential-decay motion model (the paper's choice) vs SORT's Kalman
// filter.
func BenchmarkAblationMotionModel(b *testing.B) {
	decayCfg := core.DefaultConfig()
	kalman := tracker.DefaultConfig()
	kalman.Motion = tracker.Kalman
	kalmanCfg := core.DefaultConfig()
	kalmanCfg.Tracker = &kalman

	mapDecay, _ := ablationRun(b, decayCfg)
	mapKalman, _ := ablationRun(b, kalmanCfg)
	b.ReportMetric(mapDecay, "mAP_decay")
	b.ReportMetric(mapKalman, "mAP_kalman")
}

// Adaptive match/miss confidence vs a fixed track age (every track
// coasts the same number of frames after a miss).
func BenchmarkAblationTrackRetention(b *testing.B) {
	fixed := tracker.DefaultConfig()
	fixed.InitialConfidence = fixed.MaxConfidence // no need to earn retention
	fixedCfg := core.DefaultConfig()
	fixedCfg.Tracker = &fixed

	mapAdaptive, gopsAdaptive := ablationRun(b, core.DefaultConfig())
	mapFixed, gopsFixed := ablationRun(b, fixedCfg)
	b.ReportMetric(mapAdaptive, "mAP_adaptive")
	b.ReportMetric(mapFixed, "mAP_fixed_age")
	b.ReportMetric(gopsFixed-gopsAdaptive, "extra_Gops_fixed_age")
}

// Prediction workload filters (min width, boundary chop) on vs off.
func BenchmarkAblationPredictionFilter(b *testing.B) {
	open := tracker.DefaultConfig()
	open.MinPredWidth = 0
	open.MinVisibleFrac = 0
	openCfg := core.DefaultConfig()
	openCfg.Tracker = &open

	mapFiltered, gopsFiltered := ablationRun(b, core.DefaultConfig())
	mapOpen, gopsOpen := ablationRun(b, openCfg)
	b.ReportMetric(mapFiltered, "mAP_filtered")
	b.ReportMetric(mapOpen, "mAP_unfiltered")
	b.ReportMetric(gopsOpen-gopsFiltered, "Gops_saved_by_filters")
}

// Per-class association (the paper's rule) vs class-agnostic matching.
func BenchmarkAblationClassAgnostic(b *testing.B) {
	agnostic := tracker.DefaultConfig()
	agnostic.PerClass = false
	agnosticCfg := core.DefaultConfig()
	agnosticCfg.Tracker = &agnostic

	mapPerClass, _ := ablationRun(b, core.DefaultConfig())
	mapAgnostic, _ := ablationRun(b, agnosticCfg)
	b.ReportMetric(mapPerClass, "mAP_per_class")
	b.ReportMetric(mapAgnostic, "mAP_class_agnostic")
}

// Greedy GPU region merging vs launching every region separately.
func BenchmarkAblationGPUMerge(b *testing.B) {
	ds, _ := benchData()
	gm := gpumodel.Default()
	refCost := ops.MustCostModel("resnet50")
	spec := sim.SystemSpec{Kind: sim.CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: core.DefaultConfig()}

	var merged, unmerged float64
	for i := 0; i < b.N; i++ {
		merged, unmerged = 0, 0
		sys := spec.MustBuild(ds.Classes).(*core.CaTDet)
		frames := 0
		for si := range ds.Sequences {
			seq := &ds.Sequences[si]
			sys.Reset(seq)
			for fi := range seq.Frames {
				out := sys.Step(detector.Frame{
					SeqID: seq.ID, Index: fi, Width: seq.Width, Height: seq.Height,
					Objects: seq.Frames[fi].Objects,
				})
				ft := gm.CaTDetFrame(out.Ops.Proposal, out.Regions,
					float64(seq.Width), float64(seq.Height), refCost, out.NumProposals)
				merged += ft.GPU
				// Unmerged: every region is its own launch.
				u := gm.LaunchTime(out.Ops.Proposal)
				for _, reg := range out.Regions {
					u += gm.LaunchTime(gm.RegionWorkload(reg, float64(seq.Width), float64(seq.Height), refCost, 0))
				}
				unmerged += u
				frames++
			}
		}
		merged /= float64(frames)
		unmerged /= float64(frames)
	}
	b.ReportMetric(merged, "gpu_s_merged")
	b.ReportMetric(unmerged, "gpu_s_unmerged")
}
