// Command benchdiff gates the current benchmark numbers against the
// repo's committed trajectory. It compares a head report (JSON from
// benchjson or raw `go test -bench` text — the format is sniffed)
// against a baseline BENCH_PR*.json and fails when, over the
// benchmarks both reports pin:
//
//   - ns/op regresses by more than -threshold (default 15%), or
//   - allocs/op regresses beyond a 0.1% scheduling-jitter guard —
//     allocation counts are machine-independent, so the only noise
//     budget is the few-allocation wobble of fan-out benchmarks.
//
// Duplicate entries of one benchmark (-count reruns) compare by their
// minimum. When baseline and head were recorded on different hosts the
// ns/op gate is downgraded to advisory warnings (cross-machine
// nanoseconds are noise); the allocs/op gate always holds. Without
// -baseline the newest committed BENCH_PR<n>.json in the working
// directory is used.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem ./... | benchdiff
//	benchdiff -baseline BENCH_PR7.json -head BENCH_HEAD.json
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"regexp"
	"strconv"

	"repro/internal/benchfmt"
)

// newestBaseline finds the committed BENCH_PR<n>.json with the largest
// PR number in dir.
func newestBaseline(dir string) (string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_PR*.json"))
	if err != nil {
		return "", err
	}
	re := regexp.MustCompile(`^BENCH_PR(\d+)\.json$`)
	bestN, best := -1, ""
	for _, p := range paths {
		m := re.FindStringSubmatch(filepath.Base(p))
		if m == nil {
			continue
		}
		n, err := strconv.Atoi(m[1])
		if err != nil {
			continue
		}
		if n > bestN {
			bestN, best = n, p
		}
	}
	if best == "" {
		return "", fmt.Errorf("no BENCH_PR<n>.json baseline found in %s", dir)
	}
	return best, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchdiff: ")
	baseline := flag.String("baseline", "", "baseline report (default: newest BENCH_PR<n>.json in the working directory)")
	headPath := flag.String("head", "-", "head report file, JSON or bench text (\"-\" = stdin)")
	threshold := flag.Float64("threshold", 0.15, "allowed fractional ns/op regression")
	flag.Parse()

	if *baseline == "" {
		p, err := newestBaseline(".")
		if err != nil {
			log.Fatal(err)
		}
		*baseline = p
	}
	base, err := benchfmt.ReadFile(*baseline)
	if err != nil {
		log.Fatal(err)
	}
	var head *benchfmt.Report
	if *headPath == "-" {
		head, err = benchfmt.Read(os.Stdin)
	} else {
		head, err = benchfmt.ReadFile(*headPath)
	}
	if err != nil {
		log.Fatal(err)
	}
	if len(head.Benchmarks) == 0 {
		log.Fatal("head report has no benchmarks")
	}

	regs, matched := benchfmt.Diff(base, head, *threshold)
	if matched == 0 {
		log.Fatalf("no benchmark appears in both %s and head — nothing is pinned", *baseline)
	}
	if !base.SameHost(head) {
		fmt.Printf("note: baseline host (%s/%s %q) differs from head (%s/%s %q); ns/op gate is advisory\n",
			base.Goos, base.Goarch, base.CPU, head.Goos, head.Goarch, head.CPU)
	}
	failed := 0
	for _, r := range regs {
		fmt.Println(r)
		if !r.Advisory {
			failed++
		}
	}
	fmt.Printf("benchdiff: %d benchmarks compared against %s, %d regressions (%d fatal)\n",
		matched, *baseline, len(regs), failed)
	if failed > 0 {
		os.Exit(1)
	}
}
