// detlint is the project's static-analysis driver: it runs the
// determinism and hot-path analyzers of internal/lint over the given
// packages (default ./...) and exits non-zero on any unsuppressed
// diagnostic. `make lint-det` is the canonical invocation; CI gates the
// repro artifacts on it.
//
// Usage:
//
//	detlint [-json] [-list] [-dump-golden-baseline] [packages]
//
// Findings are suppressed in source with a trailing (or
// immediately-preceding) comment carrying a mandatory reason:
//
//	for k := range m { … } //detlint:ok keys feed a commutative sum
//
// Exit status: 0 clean, 1 diagnostics reported, 2 load/usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array instead of text")
	list := flag.Bool("list", false, "list the analyzers and the contract each encodes, then exit")
	dumpBaseline := flag.Bool("dump-golden-baseline", false,
		"print the current golden-book baseline (non-omitempty JSON fields) in goldenbaseline.go form, then exit")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cfg := lint.DefaultConfig()
	pkgs, err := lint.Load(".", patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *dumpBaseline {
		fmt.Println("var goldenBaseline = map[string]bool{")
		for _, key := range lint.DumpGoldenBaseline(pkgs, cfg) {
			fmt.Printf("\t%q: true,\n", key)
		}
		fmt.Println("}")
		return
	}

	var diags []lint.Diagnostic
	for _, pkg := range pkgs {
		diags = append(diags, lint.RunPackage(pkg, cfg, analyzers)...)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "detlint: %d diagnostic(s)\n", len(diags))
		}
		os.Exit(1)
	}
}
