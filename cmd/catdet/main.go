// Command catdet runs one detection system over a synthetic (or saved)
// dataset and prints metrics and cost.
//
// Examples:
//
//	catdet -system catdet -proposal resnet10a -refinement resnet50
//	catdet -system single -refinement resnet50 -preset kitti -seqs 4
//	catdet -system cascaded -proposal resnet10b -refinement resnet50 -cthresh 0.2
//	catdet -data mydata.json.gz -system catdet -proposal resnet10a -refinement resnet50
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/ops"
	"repro/internal/sim"
	"repro/internal/video"
)

// inspectModel prints per-layer operation reports for a backbone at
// KITTI resolution.
func inspectModel(name string) error {
	var b ops.Backbone
	switch name {
	case "resnet50":
		b = ops.BuildResNet50()
	case "vgg16":
		b = ops.BuildVGG16()
	default:
		found := false
		for _, spec := range ops.Table1Specs {
			if spec.Name == name {
				b = ops.BuildSmallResNet(spec)
				found = true
				break
			}
		}
		if !found {
			return fmt.Errorf("unknown backbone %q", name)
		}
	}
	fmt.Printf("=== %s trunk (image pass) at %dx%d ===\n", name, ops.KITTIWidth, ops.KITTIHeight)
	b.Trunk.WriteReport(os.Stdout, ops.KITTIWidth, ops.KITTIHeight)
	fmt.Printf("\n=== %s head (per RoI) at %dx%d ===\n", name, b.RoISize, b.RoISize)
	b.Head.WriteReport(os.Stdout, b.RoISize, b.RoISize)
	if m, err := ops.NewCostModel(name); err == nil {
		fmt.Printf("\ncalibrated full-frame total: %.1f Gops (KITTI, 300 proposals)\n",
			ops.Gops(m.FullFrameOps(ops.KITTIWidth, ops.KITTIHeight)))
	}
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("catdet: ")

	system := flag.String("system", "catdet", "system kind: single | cascaded | catdet")
	proposal := flag.String("proposal", "resnet10a", "proposal network (cascaded/catdet)")
	refinement := flag.String("refinement", "resnet50", "refinement network (or the single model)")
	preset := flag.String("preset", "kitti", "synthetic world: kitti | citypersons | mini")
	data := flag.String("data", "", "load a dataset JSON(.gz) instead of generating one")
	seqs := flag.Int("seqs", 0, "override sequence count (0 = preset default)")
	seed := flag.Int64("seed", 1, "world seed")
	cthresh := flag.Float64("cthresh", core.DefaultConfig().CThresh, "proposal output threshold (C-thresh)")
	tthresh := flag.Float64("tthresh", core.DefaultConfig().TrackThresh, "tracker input threshold")
	diffName := flag.String("difficulty", "hard", "evaluation difficulty: easy | moderate | hard")
	beta := flag.Float64("beta", 0.8, "precision level for the delay metric (mD@beta)")
	inspect := flag.String("inspect", "", "print a per-layer ops report for a backbone (resnet18|resnet10a|resnet10b|resnet10c|resnet50|vgg16) and exit")
	workers := flag.Int("workers", 0, "sequence-shard worker count (0 = GOMAXPROCS); results are identical for any value")
	flag.Parse()

	if *inspect != "" {
		if err := inspectModel(*inspect); err != nil {
			log.Fatal(err)
		}
		return
	}

	var ds *dataset.Dataset
	switch {
	case *data != "":
		var err error
		ds, err = dataset.LoadFile(*data)
		if err != nil {
			log.Fatal(err)
		}
	default:
		var p video.Preset
		switch *preset {
		case "kitti":
			p = video.KITTIPreset()
		case "citypersons":
			p = video.CityPersonsPreset()
		case "mini":
			p = video.MiniKITTIPreset()
		default:
			log.Fatalf("unknown preset %q", *preset)
		}
		if *seqs > 0 {
			p.NumSequences = *seqs
		}
		ds = video.Generate(p, *seed)
	}

	var diff dataset.Difficulty
	switch *diffName {
	case "easy":
		diff = dataset.Easy
	case "moderate":
		diff = dataset.Moderate
	case "hard":
		diff = dataset.Hard
	default:
		log.Fatalf("unknown difficulty %q", *diffName)
	}

	cfg := core.DefaultConfig()
	cfg.CThresh = *cthresh
	cfg.TrackThresh = *tthresh
	spec := sim.SystemSpec{
		Kind:       sim.SystemKind(*system),
		Proposal:   *proposal,
		Refinement: *refinement,
		Cfg:        cfg,
	}
	fmt.Fprintf(os.Stderr, "running %s on %s (%d frames)...\n", spec.Kind, ds.Name, ds.NumFrames())
	r, err := sim.RunParallel(spec.Factory(ds.Classes), ds, *workers)
	if err != nil {
		log.Fatal(err)
	}
	ev := sim.Evaluate(ds, r, diff, *beta)

	fmt.Printf("system:        %s\n", r.SystemName)
	fmt.Printf("dataset:       %s (%d frames, %d labeled)\n", ds.Name, ds.NumFrames(), ds.NumLabeledFrames())
	fmt.Printf("difficulty:    %s\n", diff)
	fmt.Printf("ops/frame:     %.1f Gops\n", r.AvgGops())
	avg := r.AvgOps()
	if avg.Proposal > 0 {
		fmt.Printf("  proposal:    %.1f Gops\n", avg.Proposal/1e9)
		fmt.Printf("  refinement:  %.1f Gops (coverage %.0f%%, %.1f proposals/frame)\n",
			avg.Refinement/1e9, 100*r.AvgCoverage, r.AvgProposals)
	}
	fmt.Printf("mAP:           %.3f\n", ev.MAP)
	for _, c := range ds.Classes {
		fmt.Printf("  AP %-11s %.3f\n", c.String()+":", ev.PerClassAP[c])
	}
	if math.IsNaN(ev.MeanDelay) {
		fmt.Printf("mD@%.1f:        n/a (sparsely labeled dataset)\n", *beta)
	} else {
		fmt.Printf("mD@%.1f:        %.1f frames (threshold %.2f)\n", *beta, ev.MeanDelay, ev.Threshold)
		for _, c := range ds.Classes {
			fmt.Printf("  delay %-8s %.1f\n", c.String()+":", ev.PerClassDelay[c])
		}
	}
}
