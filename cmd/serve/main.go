// Command serve is a load generator for the online multi-stream
// serving simulator: it offers N concurrent video streams to a fleet
// of simulated GPU executors and reports throughput, drop rate, queue
// depth and p50/p95/p99 end-to-end latency. The same flags and seed
// always print byte-identical output, at any executor count.
//
// Examples:
//
//	serve -streams 8 -executors 2
//	serve -streams 8 -fps 30 -arrivals poisson -policy drop-oldest -queue-cap 16
//	serve -streams 16 -executors 2 -stale 0.3 -degrade-depth 8 -json
//	serve -preset crowd -streams 3 -fps 4 -arrivals poisson -duration 6 \
//	      -queue-cap 16 -controller baseline -sweep             # adaptive vs static grid
//	serve -streams 8 -controller baseline -control-tick 0.1     # closed-loop shedding
//	serve -system single -refinement resnet50 -streams 8 -executors 2
//	serve -streams 8 -sched fair -batch 4                     # DRR + batched launches
//	serve -streams 4 -sched priority -priorities 2,2,1,0      # per-stream classes
//	serve -streams 8 -sched edf -stale 0.5                    # deadline = arrive+stale
//	serve -streams 6 -stream-fps 60,10,10,10,10,10 -sweep     # policy x batch table
//	serve -streams 4 -trace trace.jsonl                       # per-frame event log (JSONL)
//	serve -streams 16 -executors 4 -step-workers 8            # fan session stepping over 8 cores
//	serve -preset night -streams 8                            # low-light pack: noisier detectors
//	serve -chaos dropout=30,renumber -reconnect resume-with-gap
//	serve -chaos jitter=0.2,skew=0.1,poison=0.05 -poison drop # flaky clients + corrupt frames
//	serve -preset all -sweep                                  # one comparison row per scenario pack
//	serve -shards 4 -gpu-tiers v100,v100,k80,k80              # sharded cluster, mixed GPU tiers
//	serve -shards 2 -migrate-depth 4 -stream-fps 120,15,15,15 # hot stream migrates off its shard
//	serve -arrivals burst -burst-period 4 -burst-duty 0.125 \
//	      -shards 2 -autoscale min=0,max=2 -sweep             # elastic vs static economics table
//	serve -shards 4 -kill 0@5,2@9 -revive 0@12 -failover replay  # deterministic shard failures
//	serve -shards 2 -mtbf 20 -mttr 4 -failover degrade        # seeded stochastic kill/revive process
//	serve -shards 2 -add-shard 10:v100 -migrate-depth 4       # grow the ring online mid-run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/serve/cluster"
	"repro/internal/serve/control"
	"repro/internal/serve/sched"
	"repro/internal/sim"
	"repro/internal/video"
)

// sweepScheds and sweepBatches span the -sweep comparison grid.
var (
	sweepScheds  = []sched.Kind{sched.FIFO, sched.Fair, sched.Priority, sched.EDF}
	sweepBatches = []int{1, 2, 4, 8}
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")

	system := flag.String("system", "catdet", "system kind: single | cascaded | catdet")
	proposal := flag.String("proposal", "resnet10a", "proposal network (cascaded/catdet)")
	refinement := flag.String("refinement", "resnet50", "refinement network (or the single model)")
	preset := flag.String("preset", "kitti", "scenario pack: "+strings.Join(video.PresetNames(), " | ")+" (or \"all\" with -sweep)")
	streams := flag.Int("streams", 4, "number of concurrent video streams")
	fps := flag.Float64("fps", 0, "per-stream frame rate (0 = preset native)")
	streamFPS := flag.String("stream-fps", "", "comma-separated per-stream rates overriding -fps (heterogeneous load)")
	arrivals := flag.String("arrivals", "fixed", "arrival process: fixed | poisson | burst")
	burstPeriod := flag.Float64("burst-period", 0, "burst window length in seconds (burst arrivals; 0 = default 2)")
	burstDuty := flag.Float64("burst-duty", 0, "fraction of each burst window that offers load (burst arrivals; 0 = default 0.5)")
	duration := flag.Float64("duration", 30, "virtual seconds of offered load")
	executors := flag.Int("executors", 1, "number of GPU executors")
	stepWorkers := flag.Int("step-workers", 0, "goroutines stepping stream sessions per dispatch round (0 = GOMAXPROCS; any value is byte-identical)")
	schedKind := flag.String("sched", "fifo", "scheduler: fifo | fair | priority | edf")
	batch := flag.Int("batch", 1, "max frames fused into one batched launch")
	priorities := flag.String("priorities", "", "comma-separated per-stream priority classes (higher first; priority scheduler)")
	queueCap := flag.Int("queue-cap", 0, "shared queue cap (0 = 4*streams, negative = unbounded)")
	policy := flag.String("policy", "drop-oldest", "queue overflow policy: drop-oldest | drop-newest")
	stale := flag.Float64("stale", 0, "skip frames older than this many seconds at admission (0 = off)")
	degradeDepth := flag.Int("degrade-depth", 0, "degrade to proposal-only when this many frames wait behind the admitted one (0 = off)")
	controller := flag.String("controller", "", "adaptive control plane: nop | baseline (\"\" = off; see internal/serve/control)")
	controlTick := flag.Float64("control-tick", 0, "control-tick spacing in virtual seconds (0 = controller default; needs -controller)")
	reconnect := flag.String("reconnect", "", "camera reconnect policy: reject | resume-with-gap | reset-session (\"\" = reject, or resume-with-gap when a failover policy replays frames)")
	poison := flag.String("poison", "error", "corrupt-frame policy: error | drop")
	maxFrame := flag.Int("max-frame", 0, "largest accepted frame index (0 = default bound)")
	chaos := flag.String("chaos", "", "fault injection, comma-separated k=v: dropout=<per-min>, len=<s>, renumber, jitter=<std>, skew=<s>, poison=<rate>")
	seed := flag.Int64("seed", 1, "world and arrival seed")
	shards := flag.Int("shards", 0, "shard the streams across this many Servers (0 = single fleet; see internal/serve/cluster)")
	gpuTiers := flag.String("gpu-tiers", "", "comma-separated GPU tier per shard, or one name for all (cluster mode; default titanx)")
	hop := flag.Float64("hop", 0, "cross-node hop latency charged to frames served off their hash-home shard (cluster mode; 0 = default 2ms)")
	migrateDepth := flag.Int("migrate-depth", 0, "per-stream queue depth that arms stream migration off a saturated shard (cluster mode; 0 = off)")
	autoscale := flag.String("autoscale", "", "elastic per-shard executors (cluster mode): \"on\" or k=v list min=,max=,interval=,up-queue=,down-idle=,p99=")
	kill := flag.String("kill", "", "comma-separated shard@t kill schedule (cluster mode): \"0@5,2@9.5\"")
	revive := flag.String("revive", "", "comma-separated shard@t revival schedule (cluster mode): \"0@12\"")
	addShard := flag.String("add-shard", "", "comma-separated online shard additions (cluster mode): t or t:tier, e.g. \"10:v100,20\"")
	mtbf := flag.Float64("mtbf", 0, "mean time between stochastic shard kills in virtual seconds (cluster mode; 0 = off)")
	mttr := flag.Float64("mttr", 0, "mean downtime before a stochastic kill's revival (cluster mode; 0 = default 1 when -mtbf is set)")
	failover := flag.String("failover", "", "seized-frame policy when a shard dies (cluster mode): replay | drop | degrade (\"\" = replay)")
	jsonOut := flag.Bool("json", false, "emit the full machine-readable result instead of text")
	sweep := flag.Bool("sweep", false, "run the scheduler x batch grid on this scenario and print a comparison table")
	trace := flag.String("trace", "", "stream per-frame serve events (served/dropped/degraded) as JSONL to this file (\"-\" = stdout)")
	flag.Parse()

	var p video.Preset
	presetAll := *preset == "all"
	if presetAll {
		if !*sweep {
			log.Fatal("-preset all runs one row per scenario pack; it needs -sweep")
		}
		p = video.KITTIPreset() // placeholder; the sweep swaps packs in
	} else {
		var err error
		if p, err = video.PresetByName(*preset); err != nil {
			log.Fatal(err) // carries the full valid-name list
		}
	}

	ch, err := parseChaos(*chaos)
	if err != nil {
		log.Fatal(err)
	}

	cfg := serve.Config{
		Spec: sim.SystemSpec{
			Kind:       sim.SystemKind(*system),
			Proposal:   *proposal,
			Refinement: *refinement,
			Cfg:        core.DefaultConfig(),
		},
		Preset:       p,
		Seed:         *seed,
		Streams:      *streams,
		FPS:          *fps,
		StreamFPS:    parseFloats(*streamFPS),
		Arrivals:     serve.ArrivalKind(*arrivals),
		BurstPeriod:  *burstPeriod,
		BurstDuty:    *burstDuty,
		Duration:     *duration,
		Executors:    *executors,
		StepWorkers:  *stepWorkers,
		Scheduler:    sched.Kind(*schedKind),
		BatchSize:    *batch,
		Priorities:   parseInts(*priorities),
		QueueCap:     *queueCap,
		Drop:         serve.DropKind(*policy),
		MaxStaleness: *stale,
		DegradeDepth: *degradeDepth,
		Reconnect:    serve.ReconnectPolicy(*reconnect),
		Poison:       serve.PoisonPolicy(*poison),
		MaxFrame:     *maxFrame,
		Chaos:        ch,
		Control: control.Config{
			Kind:     control.Kind(*controller),
			Interval: *controlTick,
		},
	}
	as, err := parseAutoscale(*autoscale)
	if err != nil {
		log.Fatal(err)
	}
	faults, err := parseFaults(*kill, *revive, *addShard, *mtbf, *mttr, *failover)
	if err != nil {
		log.Fatal(err)
	}
	if *shards <= 0 && (*gpuTiers != "" || *hop != 0 || *migrateDepth > 0 || *autoscale != "" ||
		*kill != "" || *revive != "" || *addShard != "" || *mtbf != 0 || *mttr != 0 || *failover != "") {
		log.Fatal("-gpu-tiers, -hop, -migrate-depth, -autoscale, -kill, -revive, -add-shard, -mtbf, -mttr and -failover configure the sharded cluster; they need -shards")
	}
	if *shards > 0 {
		if presetAll {
			log.Fatal("-preset all sweeps scenario packs on a single fleet; it does not combine with -shards")
		}
		ccfg := cluster.Config{
			Base:       cfg,
			Shards:     *shards,
			HopLatency: *hop,
			GPUTiers:   parseNames(*gpuTiers),
			Migration:  cluster.Migration{QueueDepth: *migrateDepth},
			Autoscale:  as,
			Faults:     faults,
		}
		if err := ccfg.Validate(); err != nil {
			log.Fatal(err)
		}
		runCluster(ccfg, *sweep, *jsonOut, *trace)
		return
	}
	if err := cfg.Validate(); err != nil {
		// Field-path errors ("serve: Chaos.PoisonRate: ...") point at
		// the flag to fix before any session is built.
		log.Fatal(err)
	}
	if *trace != "" {
		if *sweep {
			log.Fatal("-trace streams one scenario's events; it does not combine with -sweep")
		}
		if *trace == "-" && *jsonOut {
			log.Fatal("-trace - and -json would interleave two machine formats on stdout; trace to a file instead")
		}
		w := io.Writer(os.Stdout)
		if *trace != "-" {
			f, err := os.Create(*trace)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		cfg.Sink = serve.SinkFunc(func(e serve.Event) {
			if err := enc.Encode(e); err != nil {
				log.Fatalf("trace: %v", err)
			}
		})
	}
	if *sweep {
		if *jsonOut {
			log.Fatal("-sweep prints a text comparison table; it has no -json form")
		}
		if presetAll {
			runPresetSweep(cfg)
			return
		}
		runSweep(cfg)
		return
	}
	res, err := serve.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}
	res.WriteText(os.Stdout)
}

// runSweep replays the exact same offered load under every scheduler
// and batch size and prints one comparison row per combination. When
// no -priorities are given, the priority rows default to class 1 for
// the first half of the streams (so the policy has something to rank).
// With -controller set, a second block reruns the grid under the
// adaptive control plane and each static row gains a pareto column:
// "dom" marks it strictly dominated by an adaptive row on the
// (quality-weighted served, p99) plane.
func runSweep(base serve.Config) {
	type entry struct {
		kind sched.Kind
		b    int
		ctrl string
		res  *serve.Result
	}
	runOne := func(kind sched.Kind, b int, adaptive bool) entry {
		cfg := base
		cfg.Scheduler = kind
		cfg.BatchSize = b
		if kind == sched.Priority && len(cfg.Priorities) == 0 {
			cfg.Priorities = make([]int, cfg.Streams)
			for s := 0; s < cfg.Streams/2; s++ {
				cfg.Priorities[s] = 1
			}
		}
		ctrl := "-"
		if adaptive {
			// The controller owns shedding on its rows; the static
			// threshold stays with the static rows.
			ctrl = string(base.Control.Kind)
			cfg.DegradeDepth = 0
		} else {
			cfg.Control = control.Config{}
		}
		res, err := serve.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		return entry{kind, b, ctrl, res}
	}
	var statics, adapts []entry
	for _, kind := range sweepScheds {
		for _, b := range sweepBatches {
			statics = append(statics, runOne(kind, b, false))
		}
	}
	if base.Control.Active() {
		for _, kind := range sweepScheds {
			for _, b := range sweepBatches {
				adapts = append(adapts, runOne(kind, b, true))
			}
		}
	}

	fmt.Printf("sweep: %d streams, %d executors, %.1fs, seed %d (same arrivals every row)\n\n",
		base.Streams, base.Executors, base.Duration, base.Seed)
	hdr := "sched     batch  ctrl      served/offered  drop%   qserved   spread%  p50       p99       tput_fps  util%"
	if len(adapts) > 0 {
		hdr += "  pareto"
	}
	fmt.Println(hdr)
	row := func(e entry, note string) {
		fl := e.res.Fleet
		fmt.Printf("%-9s %5d  %-8s  %6d/%-7d  %5.1f  %8.2f  %7.1f  %-8s  %-8s  %8.1f  %5.1f%s\n",
			e.kind, e.b, e.ctrl, fl.Served, fl.Arrived, 100*fl.DropRate,
			fl.QualityServed(), 100*e.res.DropSpread(),
			msStr(fl.Latency.P50), msStr(fl.Latency.P99),
			fl.Throughput, 100*e.res.Utilization, note)
	}
	for _, s := range statics {
		note := ""
		if len(adapts) > 0 {
			note = "      -"
			sq, sp := s.res.Fleet.QualityServed(), s.res.Fleet.Latency.P99
			for _, a := range adapts {
				aq, ap := a.res.Fleet.QualityServed(), a.res.Fleet.Latency.P99
				if aq >= sq && ap <= sp && (aq > sq || ap < sp) {
					note = "      dom"
					break
				}
			}
		}
		row(s, note)
	}
	for _, a := range adapts {
		row(a, "")
	}
	fmt.Println("\nqserved weights each served frame by its mode's accuracy proxy")
	fmt.Println("(full 1.0, cascade 0.95, proposal-only 0.6); spread% is max-min")
	fmt.Println("per-stream drop rate. Batched rows pay the per-launch constant b")
	fmt.Println("once per batch (alpha*SUM(W) + b).")
	if len(adapts) > 0 {
		fmt.Println("Static rows marked dom are strictly Pareto-dominated on the")
		fmt.Println("(qserved, p99) plane by an adaptive row: the controller serves")
		fmt.Println("no less quality at no more tail latency.")
	}
}

// runPresetSweep replays the same fleet and fault config against every
// scenario pack and prints one comparison row per pack: how the same
// serving stack fares under a dense crowd, a high-speed highway, a
// drone top-down, a low-light night feed and a fast-pan sports camera.
func runPresetSweep(base serve.Config) {
	fmt.Printf("preset sweep: %d streams, %d executors, %.1fs, seed %d (same fleet every row)\n\n",
		base.Streams, base.Executors, base.Duration, base.Seed)
	fmt.Println("preset       served/offered  drop%   reconn  pills  p50       p99       tput_fps  util%")
	for _, name := range video.PresetNames() {
		p, err := video.PresetByName(name)
		if err != nil {
			log.Fatal(err)
		}
		cfg := base
		cfg.Preset = p
		res, err := serve.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fl := res.Fleet
		fmt.Printf("%-12s %6d/%-7d  %5.1f  %6d  %5d  %-8s  %-8s  %8.1f  %5.1f\n",
			name, fl.Served, fl.Arrived, 100*fl.DropRate, fl.Reconnects, fl.DroppedPoison,
			msStr(fl.Latency.P50), msStr(fl.Latency.P99), fl.Throughput, 100*res.Utilization)
	}
	fmt.Println("\nEach pack is a distinct world distribution (density, object size,")
	fmt.Println("apparent speed); night additionally degrades the detectors' noise.")
}

// runCluster is the -shards entry point: one sharded scenario (text or
// JSON, optionally traced) or the static-vs-elastic capacity sweep.
func runCluster(cfg cluster.Config, sweep, jsonOut bool, trace string) {
	if trace != "" {
		if sweep {
			log.Fatal("-trace streams one scenario's events; it does not combine with -sweep")
		}
		if trace == "-" && jsonOut {
			log.Fatal("-trace - and -json would interleave two machine formats on stdout; trace to a file instead")
		}
		w := io.Writer(os.Stdout)
		if trace != "-" {
			f, err := os.Create(trace)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			w = f
		}
		enc := json.NewEncoder(w)
		cfg.Sink = cluster.SinkFunc(func(e cluster.Event) {
			if err := enc.Encode(e); err != nil {
				log.Fatalf("trace: %v", err)
			}
		})
	}
	if sweep {
		if jsonOut {
			log.Fatal("-sweep prints a text comparison table; it has no -json form")
		}
		runClusterSweep(cfg)
		return
	}
	res, err := cluster.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}
	res.WriteText(os.Stdout)
}

// runClusterSweep replays the exact same offered load under static
// per-shard executor counts 1..4 and under the elastic autoscaler, and
// prints one economics row per capacity plan. The -autoscale flag (or
// its defaults) shapes the elastic row; static rows force it off.
func runClusterSweep(base cluster.Config) {
	n := base.Normalized()
	fmt.Printf("cluster sweep: %d streams over %d shards (%s), %.1fs, seed %d (same arrivals every row)\n\n",
		n.Base.Streams, n.Shards, strings.Join(n.GPUTiers, ","), n.Base.Duration, n.Base.Seed)
	fmt.Println("capacity    served/offered  drop%   p50       p99       migr  resz  cost$     served/$")
	row := func(label string, cfg cluster.Config) {
		res, err := cluster.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fl := res.Fleet
		fmt.Printf("%-10s  %6d/%-7d  %5.1f  %-8s  %-8s  %4d  %4d  %8.4f  %8.1f\n",
			label, fl.Served, fl.Arrived, 100*fl.DropRate,
			msStr(fl.Latency.P50), msStr(fl.Latency.P99),
			res.Migrations, res.Resizes, res.Cost, res.ServedPerDollar)
	}
	for execs := 1; execs <= 4; execs++ {
		cfg := base
		cfg.Autoscale = cluster.Autoscale{}
		cfg.Base.Executors = execs
		row(fmt.Sprintf("static x%d", execs), cfg)
	}
	elastic := base
	elastic.Autoscale.Enabled = true
	row("elastic", elastic)
	fmt.Println("\nstatic rows pin every shard at n executors for the whole scenario;")
	fmt.Println("the elastic row rents per-shard capacity from live queue depth, so")
	fmt.Println("cost follows load. served/$ is the economic headline: served frames")
	fmt.Println("per modeled rental dollar at the shard tiers' prices.")
}

// parseNames parses a comma-separated name list ("" = nil).
func parseNames(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i, p := range parts {
		parts[i] = strings.TrimSpace(p)
	}
	return parts
}

// parseAutoscale parses the -autoscale flag: "" (off), "on" (defaults),
// or a comma-separated k=v list ("min=0,max=2,interval=0.25,up-queue=4,
// down-idle=1,p99=0.5"). Range checking is cluster.Config.Validate's
// job; this only maps names to fields.
func parseAutoscale(s string) (cluster.Autoscale, error) {
	var a cluster.Autoscale
	if s == "" {
		return a, nil
	}
	a.Enabled = true
	if s == "on" {
		return a, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		key, val, hasVal := strings.Cut(part, "=")
		if !hasVal {
			return a, fmt.Errorf("autoscale: %q is not k=v (keys: min, max, interval, up-queue, down-idle, p99)", part)
		}
		val = strings.TrimSpace(val)
		switch key {
		case "interval", "p99":
			v, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return a, fmt.Errorf("autoscale: bad value in %q: %v", part, err)
			}
			if key == "interval" {
				a.Interval = v
			} else {
				a.P99 = v
			}
		case "min", "max", "up-queue", "down-idle":
			v, err := strconv.Atoi(val)
			if err != nil {
				return a, fmt.Errorf("autoscale: bad value in %q: %v", part, err)
			}
			switch key {
			case "min":
				a.Min = v
			case "max":
				a.Max = v
			case "up-queue":
				a.UpQueue = v
			case "down-idle":
				a.DownIdle = v
			}
		default:
			return a, fmt.Errorf("autoscale: unknown key %q (keys: min, max, interval, up-queue, down-idle, p99)", key)
		}
	}
	return a, nil
}

// parseFaults maps the failure-injection flags onto a cluster
// FaultPlan: -kill and -revive take comma-separated shard@t entries,
// -add-shard takes t or t:tier entries, -mtbf/-mttr shape the seeded
// stochastic process and -failover names the seized-frame policy.
// Range checking (shard bounds, tier names, policy enum) is
// cluster.Config.Validate's job; this only parses the grammar.
func parseFaults(kill, revive, addShard string, mtbf, mttr float64, failover string) (cluster.FaultPlan, error) {
	plan := cluster.FaultPlan{
		MTBF:     mtbf,
		MTTR:     mttr,
		Failover: cluster.FailoverPolicy(failover),
	}
	shardAt := func(name string, list string, kind cluster.FaultKind) error {
		if list == "" {
			return nil
		}
		for _, part := range strings.Split(list, ",") {
			part = strings.TrimSpace(part)
			s, at, ok := strings.Cut(part, "@")
			if !ok {
				return fmt.Errorf("%s: %q is not shard@t (e.g. \"0@5\")", name, part)
			}
			shard, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("%s: bad shard in %q: %v", name, part, err)
			}
			t, err := strconv.ParseFloat(strings.TrimSpace(at), 64)
			if err != nil {
				return fmt.Errorf("%s: bad time in %q: %v", name, part, err)
			}
			plan.Faults = append(plan.Faults, cluster.Fault{Time: t, Kind: kind, Shard: shard})
		}
		return nil
	}
	if err := shardAt("kill", kill, cluster.FaultKill); err != nil {
		return plan, err
	}
	if err := shardAt("revive", revive, cluster.FaultRevive); err != nil {
		return plan, err
	}
	if addShard != "" {
		for _, part := range strings.Split(addShard, ",") {
			part = strings.TrimSpace(part)
			at, tier, _ := strings.Cut(part, ":")
			t, err := strconv.ParseFloat(strings.TrimSpace(at), 64)
			if err != nil {
				return plan, fmt.Errorf("add-shard: bad time in %q (want t or t:tier): %v", part, err)
			}
			plan.Faults = append(plan.Faults, cluster.Fault{Time: t, Kind: cluster.FaultAddShard, Tier: strings.TrimSpace(tier)})
		}
	}
	return plan, nil
}

// parseChaos parses the -chaos flag: a comma-separated k=v list
// ("dropout=30,len=0.6,renumber,jitter=0.15,skew=0.08,poison=0.04").
// "" means no chaos. Range checking is Config.Validate's job; this
// only maps names to fields.
func parseChaos(s string) (serve.Chaos, error) {
	var ch serve.Chaos
	if s == "" {
		return ch, nil
	}
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		key, val, hasVal := strings.Cut(part, "=")
		if key == "renumber" {
			if hasVal {
				return ch, fmt.Errorf("chaos: renumber is a bare switch, got %q", part)
			}
			ch.Renumber = true
			continue
		}
		if !hasVal {
			return ch, fmt.Errorf("chaos: %q is not k=v (keys: dropout, len, renumber, jitter, skew, poison)", part)
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return ch, fmt.Errorf("chaos: bad value in %q: %v", part, err)
		}
		switch key {
		case "dropout":
			ch.DropoutRate = v
		case "len":
			ch.DropoutMeanLen = v
		case "jitter":
			ch.FPSJitter = v
		case "skew":
			ch.ClockSkew = v
		case "poison":
			ch.PoisonRate = v
		default:
			return ch, fmt.Errorf("chaos: unknown key %q (keys: dropout, len, renumber, jitter, skew, poison)", key)
		}
	}
	return ch, nil
}

func msStr(s float64) string { return fmt.Sprintf("%.1fms", 1000*s) }

// parseInts parses a comma-separated integer list ("" = nil).
func parseInts(s string) []int {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			log.Fatalf("bad integer list entry %q: %v", p, err)
		}
		out[i] = v
	}
	return out
}

// parseFloats parses a comma-separated float list ("" = nil).
func parseFloats(s string) []float64 {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			log.Fatalf("bad float list entry %q: %v", p, err)
		}
		out[i] = v
	}
	return out
}
