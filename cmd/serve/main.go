// Command serve is a load generator for the online multi-stream
// serving simulator: it offers N concurrent video streams to a fleet
// of simulated GPU executors and reports throughput, drop rate, queue
// depth and p50/p95/p99 end-to-end latency. The same flags and seed
// always print byte-identical output, at any executor count.
//
// Examples:
//
//	serve -streams 8 -executors 2
//	serve -streams 8 -fps 30 -arrivals poisson -policy drop-oldest -queue-cap 16
//	serve -streams 16 -executors 2 -stale 0.3 -degrade-depth 8 -json
//	serve -system single -refinement resnet50 -streams 8 -executors 2
package main

import (
	"encoding/json"
	"flag"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/video"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("serve: ")

	system := flag.String("system", "catdet", "system kind: single | cascaded | catdet")
	proposal := flag.String("proposal", "resnet10a", "proposal network (cascaded/catdet)")
	refinement := flag.String("refinement", "resnet50", "refinement network (or the single model)")
	preset := flag.String("preset", "kitti", "synthetic world: kitti | citypersons | mini")
	streams := flag.Int("streams", 4, "number of concurrent video streams")
	fps := flag.Float64("fps", 0, "per-stream frame rate (0 = preset native)")
	arrivals := flag.String("arrivals", "fixed", "arrival process: fixed | poisson")
	duration := flag.Float64("duration", 30, "virtual seconds of offered load")
	executors := flag.Int("executors", 1, "number of GPU executors")
	queueCap := flag.Int("queue-cap", 0, "shared queue cap (0 = 4*streams, negative = unbounded)")
	policy := flag.String("policy", "drop-oldest", "queue overflow policy: drop-oldest | drop-newest")
	stale := flag.Float64("stale", 0, "skip frames older than this many seconds at admission (0 = off)")
	degradeDepth := flag.Int("degrade-depth", 0, "degrade to proposal-only when this many frames wait behind the admitted one (0 = off)")
	seed := flag.Int64("seed", 1, "world and arrival seed")
	jsonOut := flag.Bool("json", false, "emit the full machine-readable result instead of text")
	flag.Parse()

	var p video.Preset
	switch *preset {
	case "kitti":
		p = video.KITTIPreset()
	case "citypersons":
		p = video.CityPersonsPreset()
	case "mini":
		p = video.MiniKITTIPreset()
	default:
		log.Fatalf("unknown preset %q", *preset)
	}

	cfg := serve.Config{
		Spec: sim.SystemSpec{
			Kind:       sim.SystemKind(*system),
			Proposal:   *proposal,
			Refinement: *refinement,
			Cfg:        core.DefaultConfig(),
		},
		Preset:       p,
		Seed:         *seed,
		Streams:      *streams,
		FPS:          *fps,
		Arrivals:     serve.ArrivalKind(*arrivals),
		Duration:     *duration,
		Executors:    *executors,
		QueueCap:     *queueCap,
		Drop:         serve.DropKind(*policy),
		MaxStaleness: *stale,
		DegradeDepth: *degradeDepth,
	}
	res, err := serve.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			log.Fatal(err)
		}
		return
	}
	res.WriteText(os.Stdout)
}
