package main

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/sim"
	"repro/internal/video"
)

// TestPresetResolution pins the registry-backed preset lookup: every
// registered pack resolves, and an unknown name fails with an error
// that lists every valid choice (the old switch silently knew only
// three names and its error named none).
func TestPresetResolution(t *testing.T) {
	for _, name := range video.PresetNames() {
		if _, err := video.PresetByName(name); err != nil {
			t.Errorf("registered preset %q does not resolve: %v", name, err)
		}
	}
	_, err := video.PresetByName("dashcam")
	if err == nil {
		t.Fatal("unknown preset resolved")
	}
	for _, name := range video.PresetNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-preset error %q does not list %q", err, name)
		}
	}
}

// TestParseChaos pins the -chaos flag grammar.
func TestParseChaos(t *testing.T) {
	ch, err := parseChaos("dropout=30,len=0.6,renumber,jitter=0.15,skew=0.08,poison=0.04")
	if err != nil {
		t.Fatal(err)
	}
	want := serve.Chaos{
		DropoutRate: 30, DropoutMeanLen: 0.6, Renumber: true,
		FPSJitter: 0.15, ClockSkew: 0.08, PoisonRate: 0.04,
	}
	if ch != want {
		t.Errorf("parseChaos = %+v, want %+v", ch, want)
	}
	if ch, err := parseChaos(""); err != nil || ch != (serve.Chaos{}) {
		t.Errorf("empty spec: got %+v, %v; want zero chaos, nil", ch, err)
	}
	for _, bad := range []string{"dropout", "renumber=1", "rate=3", "jitter=fast"} {
		if _, err := parseChaos(bad); err == nil {
			t.Errorf("parseChaos(%q) accepted a malformed spec", bad)
		}
	}
}

// TestChaosKnobErrorsCarryFieldPaths pins that a chaos misconfiguration
// assembled from the flags surfaces as a Config.Validate field-path
// error, naming the knob to fix.
func TestChaosKnobErrorsCarryFieldPaths(t *testing.T) {
	ch, err := parseChaos("dropout=30,renumber")
	if err != nil {
		t.Fatal(err)
	}
	spec := sim.SystemSpec{Kind: sim.CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: core.DefaultConfig()}
	cfg := serve.Config{Spec: spec, Chaos: ch} // reconnect left at the rejecting default
	err = cfg.Validate()
	if err == nil {
		t.Fatal("Validate accepted renumbering chaos under the rejecting reconnect policy")
	}
	if !strings.Contains(err.Error(), "serve: Chaos.Renumber") {
		t.Errorf("error %q does not carry the Chaos.Renumber field path", err)
	}
}
