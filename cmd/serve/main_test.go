package main

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/serve/cluster"
	"repro/internal/serve/control"
	"repro/internal/sim"
	"repro/internal/video"
)

// TestPresetResolution pins the registry-backed preset lookup: every
// registered pack resolves, and an unknown name fails with an error
// that lists every valid choice (the old switch silently knew only
// three names and its error named none).
func TestPresetResolution(t *testing.T) {
	for _, name := range video.PresetNames() {
		if _, err := video.PresetByName(name); err != nil {
			t.Errorf("registered preset %q does not resolve: %v", name, err)
		}
	}
	_, err := video.PresetByName("dashcam")
	if err == nil {
		t.Fatal("unknown preset resolved")
	}
	for _, name := range video.PresetNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-preset error %q does not list %q", err, name)
		}
	}
}

// TestParseChaos pins the -chaos flag grammar.
func TestParseChaos(t *testing.T) {
	ch, err := parseChaos("dropout=30,len=0.6,renumber,jitter=0.15,skew=0.08,poison=0.04")
	if err != nil {
		t.Fatal(err)
	}
	want := serve.Chaos{
		DropoutRate: 30, DropoutMeanLen: 0.6, Renumber: true,
		FPSJitter: 0.15, ClockSkew: 0.08, PoisonRate: 0.04,
	}
	if ch != want {
		t.Errorf("parseChaos = %+v, want %+v", ch, want)
	}
	if ch, err := parseChaos(""); err != nil || ch != (serve.Chaos{}) {
		t.Errorf("empty spec: got %+v, %v; want zero chaos, nil", ch, err)
	}
	for _, bad := range []string{"dropout", "renumber=1", "rate=3", "jitter=fast"} {
		if _, err := parseChaos(bad); err == nil {
			t.Errorf("parseChaos(%q) accepted a malformed spec", bad)
		}
	}
}

// TestChaosKnobErrorsCarryFieldPaths pins that a chaos misconfiguration
// assembled from the flags surfaces as a Config.Validate field-path
// error, naming the knob to fix.
func TestChaosKnobErrorsCarryFieldPaths(t *testing.T) {
	ch, err := parseChaos("dropout=30,renumber")
	if err != nil {
		t.Fatal(err)
	}
	spec := sim.SystemSpec{Kind: sim.CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: core.DefaultConfig()}
	cfg := serve.Config{Spec: spec, Chaos: ch} // reconnect left at the rejecting default
	err = cfg.Validate()
	if err == nil {
		t.Fatal("Validate accepted renumbering chaos under the rejecting reconnect policy")
	}
	if !strings.Contains(err.Error(), "serve: Chaos.Renumber") {
		t.Errorf("error %q does not carry the Chaos.Renumber field path", err)
	}
}

// TestControllerFlagErrorsCarryFieldPaths pins that incoherent
// -controller / -control-tick combinations assembled from the flags
// surface as Config.Validate field-path errors naming the control
// knob to fix.
func TestControllerFlagErrorsCarryFieldPaths(t *testing.T) {
	spec := sim.SystemSpec{Kind: sim.CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: core.DefaultConfig()}
	cases := []struct {
		name      string
		ctrl      string
		tick      float64
		wantField string
	}{
		{"tick without controller", "", 0.25, "serve: Control.Interval"},
		{"unknown controller", "pid", 0, "serve: Control.Kind"},
		{"negative tick", "baseline", -1, "serve: Control.Interval"},
	}
	for _, tc := range cases {
		cfg := serve.Config{
			Spec:    spec,
			Control: control.Config{Kind: control.Kind(tc.ctrl), Interval: tc.tick},
		}
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted -controller=%q -control-tick=%v", tc.name, tc.ctrl, tc.tick)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantField) {
			t.Errorf("%s: error %q does not carry field path %q", tc.name, err, tc.wantField)
		}
	}
	ok := serve.Config{
		Spec:    spec,
		Control: control.Config{Kind: control.KindBaseline, Interval: 0.1},
	}
	if err := ok.Validate(); err != nil {
		t.Errorf("-controller baseline -control-tick 0.1 rejected: %v", err)
	}
	nop := serve.Config{Spec: spec, Control: control.Config{Kind: control.KindNop}}
	if err := nop.Validate(); err != nil {
		t.Errorf("-controller nop rejected: %v", err)
	}
}

// TestParseFaults pins the failure-injection flag grammar: -kill and
// -revive take shard@t lists, -add-shard takes t or t:tier, and the
// scalars map straight onto the FaultPlan.
func TestParseFaults(t *testing.T) {
	plan, err := parseFaults("0@5,2@9.5", "0@12", "10:v100,20", 30, 4, "degrade")
	if err != nil {
		t.Fatal(err)
	}
	want := cluster.FaultPlan{
		Faults: []cluster.Fault{
			{Time: 5, Kind: cluster.FaultKill, Shard: 0},
			{Time: 9.5, Kind: cluster.FaultKill, Shard: 2},
			{Time: 12, Kind: cluster.FaultRevive, Shard: 0},
			{Time: 10, Kind: cluster.FaultAddShard, Tier: "v100"},
			{Time: 20, Kind: cluster.FaultAddShard},
		},
		MTBF: 30, MTTR: 4, Failover: cluster.FailoverDegrade,
	}
	if !reflect.DeepEqual(plan, want) {
		t.Errorf("parseFaults = %+v, want %+v", plan, want)
	}
	empty, err := parseFaults("", "", "", 0, 0, "")
	if err != nil || empty.Enabled() {
		t.Errorf("no fault flags: got %+v, %v; want a disabled plan, nil", empty, err)
	}
	bad := []struct{ kill, revive, add string }{
		{kill: "0"},        // missing @t
		{kill: "a@5"},      // bad shard
		{kill: "0@fast"},   // bad time
		{revive: "1"},      // missing @t
		{add: "soon:v100"}, // bad time
	}
	for _, tc := range bad {
		if _, err := parseFaults(tc.kill, tc.revive, tc.add, 0, 0, ""); err == nil {
			t.Errorf("parseFaults(%q, %q, %q) accepted a malformed spec", tc.kill, tc.revive, tc.add)
		}
	}
}

// TestFaultFlagErrorsCarryFieldPaths pins that fault misconfigurations
// assembled from the flags surface as cluster.Config.Validate
// field-path errors naming the knob to fix.
func TestFaultFlagErrorsCarryFieldPaths(t *testing.T) {
	spec := sim.SystemSpec{Kind: sim.CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: core.DefaultConfig()}
	base := serve.Config{Spec: spec, Streams: 4}
	cases := []struct {
		name              string
		kill, revive, add string
		mtbf, mttr        float64
		failover          string
		wantField         string
	}{
		{name: "unknown failover", kill: "0@1", failover: "teleport", wantField: "Faults.Failover"},
		{name: "shard out of range", kill: "9@1", wantField: "Faults.Faults[0].Shard"},
		{name: "negative time", revive: "0@-2", wantField: "Faults.Faults[0].Time"},
		{name: "unknown tier", add: "1:tpu", wantField: "Faults.Faults[0].Tier"},
		{name: "negative mtbf", mtbf: -1, wantField: "Faults.MTBF"},
		{name: "negative mttr", mtbf: 2, mttr: -1, wantField: "Faults.MTTR"},
	}
	for _, tc := range cases {
		plan, err := parseFaults(tc.kill, tc.revive, tc.add, tc.mtbf, tc.mttr, tc.failover)
		if err != nil {
			t.Fatalf("%s: grammar rejected %v", tc.name, err)
		}
		cfg := cluster.Config{Base: base, Shards: 2, Faults: plan}
		err = cfg.Validate()
		if err == nil {
			t.Errorf("%s: Validate accepted the plan %+v", tc.name, plan)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantField) {
			t.Errorf("%s: error %q does not carry field path %q", tc.name, err, tc.wantField)
		}
	}
	plan, err := parseFaults("0@5", "0@8", "", 0, 0, "replay")
	if err != nil {
		t.Fatal(err)
	}
	ok := cluster.Config{Base: base, Shards: 2, Faults: plan}
	if err := ok.Validate(); err != nil {
		t.Errorf("-kill 0@5 -revive 0@8 -failover replay rejected: %v", err)
	}
}
