// Command gen-data generates a synthetic dataset and writes it to a
// JSON (optionally gzip-compressed) file so experiments can be re-run
// against a fixed copy.
//
// Example:
//
//	gen-data -preset kitti -seed 1 -o kitti-sim.json.gz
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/video"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("gen-data: ")

	preset := flag.String("preset", "kitti", "world preset: kitti | citypersons | mini")
	seqs := flag.Int("seqs", 0, "override sequence count (0 = preset default)")
	frames := flag.Int("frames", 0, "override frames per sequence (0 = preset default)")
	seed := flag.Int64("seed", 1, "world seed")
	out := flag.String("o", "dataset.json.gz", "output path (.gz for compression)")
	flag.Parse()

	var p video.Preset
	switch *preset {
	case "kitti":
		p = video.KITTIPreset()
	case "citypersons":
		p = video.CityPersonsPreset()
	case "mini":
		p = video.MiniKITTIPreset()
	default:
		log.Fatalf("unknown preset %q", *preset)
	}
	if *seqs > 0 {
		p.NumSequences = *seqs
	}
	if *frames > 0 {
		p.FramesPerSeq = *frames
	}

	ds := video.Generate(p, *seed)
	if err := ds.Validate(); err != nil {
		log.Fatal(err)
	}
	if err := ds.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d sequences, %d frames (%d labeled), %d objects\n",
		*out, len(ds.Sequences), ds.NumFrames(), ds.NumLabeledFrames(), ds.NumObjects())
}
