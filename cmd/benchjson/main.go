// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON benchmark trajectory. It reads the standard
// benchmark lines —
//
//	BenchmarkServeOverload  3  4504965 ns/op  76.11 drop_pct  1812085 B/op  12121 allocs/op
//
// — and emits one record per benchmark with the harness quantities
// (ns/op, B/op, allocs/op) as typed fields and every b.ReportMetric
// custom unit under "metrics" (see internal/benchfmt for the schema).
// CI runs it after the benchmark smoke pass (see `make bench-json`) and
// uploads the result, so the repo accumulates a per-PR performance
// trajectory that cmd/benchdiff gates without scraping text.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem ./... | benchjson -o BENCH_PR7.json
//
// Non-benchmark lines (goos/pkg/PASS/ok and test chatter) are ignored,
// so piping the whole `go test` output is fine.
package main

import (
	"encoding/json"
	"flag"
	"io"
	"log"
	"os"

	"repro/internal/benchfmt"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "-", "output file (\"-\" = stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		log.Fatal("at most one input file (default stdin)")
	}

	rep, err := benchfmt.ParseText(in)
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found in input")
	}

	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
}
