// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON benchmark trajectory. It reads the standard
// benchmark lines —
//
//	BenchmarkServeOverload  3  4504965 ns/op  76.11 drop_pct  1812085 B/op  12121 allocs/op
//
// — and emits one record per benchmark with the harness quantities
// (ns/op, B/op, allocs/op) as typed fields and every b.ReportMetric
// custom unit under "metrics". CI runs it after the benchmark smoke
// pass (see `make bench-json`) and uploads the result, so the repo
// accumulates a per-PR performance trajectory that tooling can diff
// without scraping text.
//
// Usage:
//
//	go test -run '^$' -bench . -benchtime 1x -benchmem ./... | benchjson -o BENCH_PR5.json
//
// Non-benchmark lines (goos/pkg/PASS/ok and test chatter) are ignored,
// so piping the whole `go test` output is fine.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark as printed, sub-benchmarks and any
	// -cpu suffix included (e.g. "BenchmarkServeParallelStep/workers=1-8").
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the harness quantities;
	// BytesPerOp/AllocsPerOp are present only under -benchmem.
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every custom b.ReportMetric unit on the line.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file-level envelope.
type Report struct {
	// Context lines captured from the bench output header.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`

	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("o", "-", "output file (\"-\" = stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		log.Fatal("at most one input file (default stdin)")
	}

	rep, err := parse(in)
	if err != nil {
		log.Fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		log.Fatal("no benchmark lines found in input")
	}

	w := io.Writer(os.Stdout)
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		log.Fatal(err)
	}
}

// parse scans the bench output for header context and benchmark lines.
func parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// parseBenchLine parses one "BenchmarkName N value unit ..." line.
// ok=false for Benchmark-prefixed lines that are not results (e.g. a
// bare name echoed by -v).
func parseBenchLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false, nil
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil
	}
	b := Benchmark{Name: fields[0], Iterations: n}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("bad value %q on line %q", fields[i], line)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
			seenNs = true
		case "B/op":
			v := val
			b.BytesPerOp = &v
		case "allocs/op":
			v := val
			b.AllocsPerOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	if !seenNs {
		return Benchmark{}, false, nil
	}
	return b, true, nil
}
