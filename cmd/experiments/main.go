// Command experiments regenerates every table and figure of the CaTDet
// paper's evaluation section on the synthetic worlds.
//
// Usage:
//
//	experiments                 # everything (takes a few minutes)
//	experiments -table 2        # one table (1-8)
//	experiments -figure 6       # one figure (6 or 7)
//	experiments -seqs 8         # reduced dataset for a quick look
//	experiments -workers 8      # shard runs across 8 workers (same output)
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/dataset"
	"repro/internal/sim"
	"repro/internal/video"
)

func main() {
	table := flag.Int("table", 0, "regenerate one table (1-8); 0 = all")
	figure := flag.Int("figure", 0, "regenerate one figure (6 or 7); 0 = all")
	seqs := flag.Int("seqs", 0, "override the number of KITTI sequences (0 = full 21)")
	citySeqs := flag.Int("city-seqs", 0, "override the number of CityPersons snippets (0 = full preset)")
	seed := flag.Int64("seed", 1, "world seed")
	ablations := flag.Bool("ablations", false, "also run the tracker design ablations")
	jsonOut := flag.String("json", "", "write the full machine-readable report (all tables and figures) to this path and exit")
	workers := flag.Int("workers", 0, "sequence-shard worker count (0 = GOMAXPROCS); results are identical for any value")
	flag.Parse()

	eng := sim.Engine{Workers: *workers}

	kittiPreset := video.KITTIPreset()
	if *seqs > 0 {
		kittiPreset.NumSequences = *seqs
	}
	cityPreset := video.CityPersonsPreset()
	if *citySeqs > 0 {
		cityPreset.NumSequences = *citySeqs
	}

	var kitti, city *dataset.Dataset
	needKITTI := func() *dataset.Dataset {
		if kitti == nil {
			kitti = video.Generate(kittiPreset, *seed)
			fmt.Fprintf(os.Stderr, "generated %s: %d frames, %d objects\n",
				kitti.Name, kitti.NumFrames(), kitti.NumObjects())
		}
		return kitti
	}
	needCity := func() *dataset.Dataset {
		if city == nil {
			city = video.Generate(cityPreset, *seed)
			fmt.Fprintf(os.Stderr, "generated %s: %d frames (%d labeled), %d objects\n",
				city.Name, city.NumFrames(), city.NumLabeledFrames(), city.NumObjects())
		}
		return city
	}

	if *jsonOut != "" {
		rep := eng.RunAll(needKITTI(), needCity(), *seed)
		f, err := os.Create(*jsonOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := rep.WriteJSON(f); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		if violations := rep.ShapeCheck(); len(violations) > 0 {
			fmt.Fprintln(os.Stderr, "shape check violations:")
			for _, v := range violations {
				fmt.Fprintln(os.Stderr, " -", v)
			}
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "wrote %s; all shape checks passed\n", *jsonOut)
		return
	}

	all := *table == 0 && *figure == 0
	want := func(t int) bool { return all || *table == t }
	wantFig := func(f int) bool { return all || *figure == f }

	section := func(title string, f func()) {
		start := time.Now()
		fmt.Printf("=== %s ===\n", title)
		f()
		fmt.Printf("(%.1fs)\n\n", time.Since(start).Seconds())
	}

	if want(1) {
		section("Table 1: proposal-net specs and full-frame ops (KITTI, 300 proposals)", func() {
			sim.WriteTable1(os.Stdout, sim.Table1())
		})
	}
	if want(2) {
		section("Table 2: KITTI main results", func() {
			sim.WriteTable2(os.Stdout, eng.Table2(needKITTI()))
		})
	}
	if want(3) {
		section("Table 3: operation break-down (Gops)", func() {
			sim.WriteTable3(os.Stdout, eng.Table3(needKITTI()))
		})
	}
	if want(4) {
		section("Table 4: proposal-network study (KITTI Hard, refinement Res50)", func() {
			sim.WriteStudy(os.Stdout, eng.Table4(needKITTI()))
		})
	}
	if want(5) {
		section("Table 5: refinement-network study (KITTI Hard, proposal Res10b)", func() {
			sim.WriteStudy(os.Stdout, eng.Table5(needKITTI()))
		})
	}
	if want(6) {
		section("Table 6: CityPersons results", func() {
			sim.WriteTable6(os.Stdout, eng.Table6(needCity()))
		})
	}
	if want(7) {
		section("Table 7: estimated GPU-platform timing (Appendix I model)", func() {
			sim.WriteTable7(os.Stdout, eng.Table7(needKITTI()))
		})
	}
	if want(8) {
		section("Table 8: RetinaNet-based CaTDet (KITTI Moderate, Appendix II)", func() {
			sim.WriteStudy(os.Stdout, eng.Table8(needKITTI()))
		})
	}
	if wantFig(6) {
		section("Figure 6: mAP and mD@0.8 vs proposal C-thresh, with/without tracker", func() {
			sim.WriteFigure6(os.Stdout, eng.Figure6(needKITTI(), nil))
		})
	}
	if wantFig(7) {
		section("Figure 7: recall & delay vs precision, per class", func() {
			ds := needKITTI()
			sim.WriteFigure7(os.Stdout, eng.Figure7(ds), ds.Classes)
		})
	}
	if *ablations {
		section("Ablations: tracker design choices (not in the paper's tables)", func() {
			sim.WriteAblations(os.Stdout, eng.Ablations(needKITTI()))
		})
	}
}
