// Live ingestion: the serving fleet as an open component instead of a
// closed-loop simulator. Three caller-owned goroutines play camera
// feeds — each paces its own jittered ~15 fps cadence and pushes
// frames into a shared channel — and the fleet consumes them through a
// channel-backed source. While frames stream in, the main goroutine
// polls live stats (throughput, drop rate, queue depth, sliding-window
// p50/p95/p99) and a sink counts per-frame outcomes as the engine
// decides them; Drain then runs the backlog dry and reconciles the
// live books against the final result.
package main

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	catdet "repro"
)

const (
	streams   = 3
	fps       = 15.0
	perStream = 150
)

func main() {
	var served, dropped atomic.Int64
	srv, err := catdet.NewServer(catdet.ServeConfig{
		Spec: catdet.SystemSpec{
			Kind: catdet.CaTDet, Proposal: "resnet10a", Refinement: "resnet50",
			Cfg: catdet.DefaultConfig(),
		},
		Preset:       catdet.MiniKITTIPreset(),
		Seed:         1,
		Streams:      streams,
		FPS:          fps,
		Executors:    1,
		QueueCap:     6,
		MaxStaleness: 0.4,
		StatsWindow:  64,
		Sink: catdet.ServeSinkFunc(func(e catdet.ServeEvent) {
			if e.Kind == catdet.ServeEventServed {
				served.Add(1)
			} else {
				dropped.Add(1)
			}
		}),
	})
	if err != nil {
		panic(err)
	}
	defer srv.Close()

	// Caller-owned feeds: each goroutine paces its own cadence in real
	// time (a few ms per frame so the demo finishes quickly) and stamps
	// arrivals on the virtual clock. The channel serializes the pushes;
	// per-stream times are monotone, which is all Submit requires.
	ch := make(chan catdet.ServeArrival, 16)
	var feeds sync.WaitGroup
	for s := 0; s < streams; s++ {
		feeds.Add(1)
		go func(s int) {
			defer feeds.Done()
			rng := rand.New(rand.NewSource(int64(s) + 1))
			at := rng.Float64() / fps
			for k := 0; k < perStream; k++ {
				ch <- catdet.ServeArrival{Stream: s, Frame: k, At: at}
				at += (0.5 + rng.Float64()) / fps // jittered camera cadence
				time.Sleep(2 * time.Millisecond)  // real-time pacing
			}
		}(s)
	}
	go func() { feeds.Wait(); close(ch) }()

	ingested := make(chan error, 1)
	go func() { ingested <- srv.Ingest(catdet.ServeChannelSource(ch)) }()

	fmt.Printf("live ingest: %d feeds x ~%.0f fps into 1 executor (queue cap 6, stale 0.4s)\n\n", streams, fps)
	fmt.Println("t_virtual  arrived  served  dropped  depth  tput_fps  drop%   win_p50   win_p99")
	ticker := time.NewTicker(150 * time.Millisecond)
	defer ticker.Stop()
	for live := true; live; {
		select {
		case err := <-ingested:
			if err != nil {
				panic(err)
			}
			live = false
		case <-ticker.C:
		}
		st := srv.Stats()
		fmt.Printf("%8.2fs  %7d  %6d  %7d  %5d  %8.1f  %5.1f  %7.1fms %8.1fms\n",
			st.Now, st.Arrived, st.Served, st.DroppedQueue+st.DroppedStale, st.QueueDepth,
			st.Throughput, 100*st.DropRate, 1000*st.Window.P50, 1000*st.Window.P99)
	}

	res, err := srv.Drain(context.Background())
	if err != nil {
		panic(err)
	}
	fl := res.Fleet
	fmt.Printf("\ndrained: %d/%d served, drop rate %.1f%%, p99 %.1fms over %.1fs of virtual load\n",
		fl.Served, fl.Arrived, 100*fl.DropRate, 1000*fl.Latency.P99, res.LastEventAt)
	fmt.Printf("sink saw %d served + %d dropped events = %d arrivals (books balance: %v)\n",
		served.Load(), dropped.Load(), fl.Arrived,
		int(served.Load()+dropped.Load()) == fl.Arrived)
	fmt.Println("\nthe same engine, scheduler and backpressure policies as catdet.Serve —")
	fmt.Println("but the arrival process belongs to the caller: any source that can")
	fmt.Println("stamp (stream, frame, time) can drive the fleet, and stats/events")
	fmt.Println("stream out while it runs instead of after it drains.")
}
