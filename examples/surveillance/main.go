// Surveillance scenario: high-resolution pedestrian detection on a
// CityPersons-like world with sparse annotation (one labeled frame per
// 30-frame snippet). Shows why the tracker matters most here: small,
// frequently occluded pedestrians are exactly what a plain cascade's
// proposal network keeps missing.
package main

import (
	"fmt"

	catdet "repro"
)

func main() {
	preset := catdet.CityPersonsPreset()
	preset.NumSequences = 40 // subset for a quick run
	ds := catdet.Generate(preset, 1)
	fmt.Printf("surveillance world: %d snippets at %dx%d, %d labeled frames\n\n",
		len(ds.Sequences), preset.Width, preset.Height, ds.NumLabeledFrames())

	specs := []catdet.SystemSpec{
		{Kind: catdet.Single, Refinement: "resnet50"},
		{Kind: catdet.Cascaded, Proposal: "resnet10b", Refinement: "resnet50", Cfg: catdet.DefaultConfig()},
		{Kind: catdet.CaTDet, Proposal: "resnet10b", Refinement: "resnet50", Cfg: catdet.DefaultConfig()},
	}
	fmt.Println("system                                    Gops/frame   person AP")
	for _, spec := range specs {
		sys := catdet.MustSystem(spec, ds.Classes)
		run := catdet.Run(sys, ds)
		ev := catdet.Evaluate(ds, run, catdet.Hard, 0.8)
		fmt.Printf("%-42s %8.1f   %.3f\n", sys.Name(), run.AvgGops(), ev.MAP)
	}

	fmt.Println("\nthe plain cascade loses several points of AP on this workload —")
	fmt.Println("occluded pedestrians drop out of the proposal stream and stay lost.")
	fmt.Println("CaTDet's tracker keeps feeding their regions to the refinement net,")
	fmt.Println("recovering most of the gap at ~13x fewer operations than the baseline.")
}
