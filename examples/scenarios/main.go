// Scenario-pack tour: every registered world distribution offered to
// the same CaTDet fleet under identical operational chaos — camera
// dropouts with restarted frame numbering (resumed server-side), FPS
// jitter, skewed clocks and in-transit corruption dropped as poison.
// One fleet, one fault model, eight worlds: the spread across rows is
// purely what the scene statistics (density, object size, apparent
// speed, sensor noise) do to the cascade under load.
package main

import (
	"fmt"

	catdet "repro"
)

func main() {
	spec := catdet.SystemSpec{
		Kind: catdet.CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: catdet.DefaultConfig(),
	}
	base := catdet.ServeConfig{
		Spec:         spec,
		Seed:         1,
		Streams:      3,
		FPS:          10,
		Duration:     6,
		Executors:    1,
		QueueCap:     8,
		MaxStaleness: 0.4,
		Reconnect:    catdet.ServeReconnectResume,
		Poison:       catdet.ServePoisonDrop,
		Chaos: catdet.ServeChaos{
			DropoutRate: 30, DropoutMeanLen: 0.6, Renumber: true,
			FPSJitter: 0.15, ClockSkew: 0.08, PoisonRate: 0.04,
		},
	}
	fmt.Printf("chaotic fleet: %d streams x %.0f fps, %.0fs on %d executor, dropouts+renumber+jitter+skew+poison\n\n",
		base.Streams, base.FPS, base.Duration, base.Executors)
	fmt.Println("pack          served      drop%  reconn  pills  p50      p99      tput")
	for _, name := range catdet.PresetNames() {
		p, err := catdet.PresetByName(name)
		if err != nil {
			panic(err)
		}
		cfg := base
		cfg.Preset = p
		res, err := catdet.Serve(cfg)
		if err != nil {
			panic(err)
		}
		fl := res.Fleet
		fmt.Printf("%-12s %5d/%-5d %5.1f  %6d %6d  %6.1fms %6.1fms %5.1f\n",
			name, fl.Served, fl.Arrived, 100*fl.DropRate, fl.Reconnects, fl.DroppedPoison,
			1000*fl.Latency.P50, 1000*fl.Latency.P99, fl.Throughput)
	}

	fmt.Println("\nsame fleet, same faults, different worlds: crowd's 85 objects per")
	fmt.Println("frame saturate the refinement pass and shed most of the load, while")
	fmt.Println("highway's sparse fast traffic sails through; night trades objects for")
	fmt.Println("sensor noise. reconn/pills count spliced reconnects and swallowed")
	fmt.Println("corruption — chaos perturbs the offered load, never the books.")
}
