// One-shot detector scenario (paper Appendix II): CaTDet is a general
// framework, not a Faster R-CNN trick. Here the refinement network is a
// RetinaNet — a fully convolutional one-shot detector whose entire
// workload (backbone, FPN and subnets) scales with the selected-region
// area instead of a per-RoI head.
package main

import (
	"fmt"

	catdet "repro"
)

func main() {
	preset := catdet.KITTIPreset()
	preset.NumSequences = 6
	ds := catdet.Generate(preset, 1)

	single := catdet.MustSystem(catdet.SystemSpec{
		Kind: catdet.Single, Refinement: "retinanet-res50",
	}, ds.Classes)
	cat := catdet.MustSystem(catdet.SystemSpec{
		Kind:       catdet.CaTDet,
		Proposal:   "resnet10a",
		Refinement: "retinanet-res50",
		Cfg:        catdet.DefaultConfig(),
	}, ds.Classes)

	fmt.Println("RetinaNet as the refinement network (KITTI Moderate, as in Table 8):")
	for _, sys := range []catdet.System{single, cat} {
		run := catdet.Run(sys, ds)
		ev := catdet.Evaluate(ds, run, catdet.Moderate, 0.8)
		fmt.Printf("%-45s %6.1f Gops/frame   mAP %.3f   mD@0.8 %.1f\n",
			sys.Name(), run.AvgGops(), ev.MAP, ev.MeanDelay)
	}

	fmt.Println("\nwith selected regions the one-shot detector's cost drops with covered")
	fmt.Println("area alone — no proposal-count term — and accuracy holds, matching the")
	fmt.Println("paper's conclusion that CaTDet generalizes across detector families.")
}
