// Cluster scenario: one serving load sharded across a fleet of
// independent Servers. A Router partitions the streams by consistent
// hashing, a hot stream migrates off its saturated shard exactly once,
// mixed GPU tiers price each shard's capacity differently, and the
// autoscaler turns a bursty load into rented-on-demand executors that
// beat every static provisioning plan on served frames per dollar.
package main

import (
	"context"
	"fmt"

	catdet "repro"
)

func base() catdet.ServeConfig {
	return catdet.ServeConfig{
		Spec: catdet.SystemSpec{
			Kind: catdet.CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: catdet.DefaultConfig(),
		},
		Preset:   catdet.MiniKITTIPreset(),
		Seed:     1,
		Streams:  6,
		FPS:      15,
		Duration: 6,
		QueueCap: 256,
	}
}

func row(label string, res *catdet.ClusterResult) {
	fl := res.Fleet
	fmt.Printf("%-22s %5d/%-5d %5.1f  %8.1fms  %4d  %4d  $%.4f  %9.1f\n",
		label, fl.Served, fl.Arrived, 100*fl.DropRate, 1000*fl.Latency.P99,
		res.Migrations, res.Resizes, res.Cost, res.ServedPerDollar)
}

func main() {
	// One hot stream (90 fps against 15) saturates its shard; at the
	// migration trigger depth the Router drains it on the source and
	// re-admits it on the least-loaded shard under a bumped epoch, with
	// every off-home frame paying the modeled cross-node hop.
	hot := base()
	hot.StreamFPS = []float64{90, 15, 15, 15, 15, 15}
	var moved []catdet.ClusterEvent
	cfg := catdet.ClusterConfig{
		Base:      hot,
		Shards:    2,
		Migration: catdet.ClusterMigration{QueueDepth: 4},
		Sink: catdet.ClusterSinkFunc(func(e catdet.ClusterEvent) {
			if e.Kind == catdet.ClusterEventMigrate {
				moved = append(moved, e)
			}
		}),
	}
	res, err := catdet.ServeCluster(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("hot stream on a 2-shard cluster (migration depth 4):\n\n")
	fmt.Println("capacity               served      drop%  p99         migr  resz  cost     served/$")
	row("2 shards + migration", res)
	fmt.Println()
	for _, m := range moved {
		fmt.Printf("  t=%.2fs stream %d migrated shard %d -> %d (epoch %d)\n",
			m.Time, m.Stream, m.From, m.To, m.Epoch)
	}
	for _, b := range res.PerShard {
		fmt.Printf("  shard %d (%s): served %d, owns streams %v\n",
			b.Shard, b.Tier, b.Result.Fleet.Served, b.Streams)
	}

	// Heterogeneous hardware: the same load on a v100 shard and a k80
	// shard. The tier scales the GPU side of the Appendix I timing model
	// and prices the rental, so the books show the fast shard serving
	// more frames at a higher dollar rate.
	mixed := cfg
	mixed.Sink = nil
	mixed.GPUTiers = []string{"v100", "k80"}
	res, err = catdet.ServeCluster(mixed)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nsame load, mixed tiers (v100 + k80):\n\n")
	for _, b := range res.PerShard {
		tier, _ := catdet.GPUTierByName(b.Tier)
		fmt.Printf("  shard %d (%-6s %.2fx, $%.2f/h): served %4d  util %5.1f%%  $%.4f\n",
			b.Shard, b.Tier, tier.Speed, tier.DollarsPerHour,
			b.Result.Fleet.Served, 100*b.Result.Utilization, b.Cost)
	}

	// Elastic economics: a bursty load (load only 1/8 of each 4s window)
	// is the autoscaler's home turf. Static plans pay for idle capacity
	// between bursts; the elastic cluster parks at zero executors and
	// rents capacity when the queue builds, so it serves every frame at
	// a fraction of the rental.
	bursty := base()
	bursty.Arrivals = catdet.Burst
	bursty.BurstPeriod = 4
	bursty.BurstDuty = 0.125
	bursty.Duration = 12
	fmt.Printf("\nbursty load (15 fps x 1/8 duty), static vs elastic capacity:\n\n")
	fmt.Println("capacity               served      drop%  p99         migr  resz  cost     served/$")
	for execs := 1; execs <= 3; execs++ {
		c := catdet.ClusterConfig{Base: bursty, Shards: 2}
		c.Base.Executors = execs
		r, err := catdet.ServeCluster(c)
		if err != nil {
			panic(err)
		}
		row(fmt.Sprintf("static x%d", execs), r)
	}
	elastic := catdet.ClusterConfig{
		Base:   bursty,
		Shards: 2,
		Autoscale: catdet.ClusterAutoscale{
			Enabled: true, Min: 0, Max: 2, Interval: 0.25, UpQueue: 4, DownIdle: 1,
		},
	}
	// The Router is push-based like the Server: drive it by hand to
	// watch the control plane rent and release executors mid-load.
	router, err := catdet.NewCluster(elastic)
	if err != nil {
		panic(err)
	}
	defer router.Close()
	if err := router.Ingest(catdet.ServeScheduleSource(router.Config().Base)); err != nil {
		panic(err)
	}
	live := router.Stats()
	eres, err := router.Drain(context.Background())
	if err != nil {
		panic(err)
	}
	row("elastic (0..2/shard)", eres)
	fmt.Printf("\n  live before drain: %d arrived, %d executors rented, per-shard queues %v\n",
		live.Arrived, live.Executors, live.PerShardQueue)

	// Failure injection: kill a shard mid-run and revive it later. The
	// survivors inherit its streams through the resized hash ring, the
	// seized in-flight and queued frames replay on the new owners, and
	// the revival's bulk rebalance spreads ownership back out. The
	// books gain a failure ledger: downtime, recovery latency and
	// availability-adjusted economics.
	faulty := catdet.ClusterConfig{
		Base:     base(),
		Shards:   2,
		GPUTiers: []string{"titanx", "v100"},
		Faults: catdet.ClusterFaultPlan{
			Faults: []catdet.ClusterFault{
				{Time: 2, Kind: catdet.ClusterFaultKill, Shard: 0},
				{Time: 4, Kind: catdet.ClusterFaultRevive, Shard: 0},
			},
			Failover: catdet.ClusterFailoverReplay,
		},
	}
	fres, err := catdet.ServeCluster(faulty)
	if err != nil {
		panic(err)
	}
	fb := fres.Faults
	fmt.Printf("\nshard 0 killed at t=2s, revived at t=4s (replay failover):\n\n")
	fmt.Println("capacity               served      drop%  p99         migr  resz  cost     served/$")
	row("2 shards + failover", fres)
	fmt.Printf("\n  %d kill, %d revival: %d seized frames replayed, %d ownership moves\n",
		fb.Kills, fb.Revivals, fb.Replayed, fb.Replaced+fb.Rebalanced)
	sb := fres.PerShard[0].Fault
	fmt.Printf("  shard 0 downtime %.2fs, recovery latencies %v\n", sb.Downtime, sb.RecoveryLatencies)
	fmt.Printf("  availability %.1f%%, %0.1f availability-adjusted served/$\n",
		100*fb.Availability, fb.AvailServedPerDollar)

	fmt.Println("\nsame seed, same arrivals, same worlds — the cluster layer only moves")
	fmt.Println("streams and capacity. Migration relocates the hot stream after its")
	fmt.Println("backlog builds, mixed tiers trade dollars for speed on the same books,")
	fmt.Println("and on bursty load the autoscaler beats every static plan on served")
	fmt.Println("frames per modeled dollar. Every number above is byte-reproducible.")
}
