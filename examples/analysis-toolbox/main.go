// Analysis toolbox: the extension features beyond the paper's headline
// experiments — per-layer operation reports, tracklet recording, exit
// delay, and COCO-protocol mAP (the official CityPersons metric).
package main

import (
	"fmt"
	"os"

	catdet "repro"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detector"
	"repro/internal/geom"
	"repro/internal/metrics"
	"repro/internal/ops"
	"repro/internal/sim"
	"repro/internal/tracker"
)

func main() {
	// 1. Where do a proposal network's operations go? Per-layer report
	// of ResNet-10b at KITTI resolution.
	fmt.Println("--- per-layer ops, resnet10b trunk at 1242x375 ---")
	backbone := ops.BuildSmallResNet(ops.Table1Specs[2]) // resnet10b
	backbone.Trunk.WriteReport(os.Stdout, 1242, 375)

	// 2. Tracklets: run the tracker on ground truth and dump the three
	// longest trajectories.
	fmt.Println("\n--- tracklets from the CaTDet tracker ---")
	ds := catdet.Generate(catdet.MiniKITTIPreset(), 11)
	seq := &ds.Sequences[0]
	trk := tracker.New(tracker.DefaultConfig(), float64(seq.Width), float64(seq.Height))
	trk.EnableTracklets()
	for fi := range seq.Frames {
		var dets []geom.Scored
		for _, o := range seq.Frames[fi].Objects {
			dets = append(dets, geom.Scored{Box: o.Box, Score: 1, Class: int(o.Class)})
		}
		trk.Observe(dets)
	}
	tls := trk.Tracklets(20)
	for i, tl := range tls {
		if i >= 3 {
			break
		}
		first, last := tl.Boxes[0], tl.Boxes[len(tl.Boxes)-1]
		fmt.Printf("track %3d (%s): %3d observations, frames %d-%d, %v -> %v\n",
			tl.ID, dataset.Class(tl.Class), tl.Len(), tl.Frames[0], tl.Frames[len(tl.Frames)-1], first, last)
	}

	// 3. Entry vs exit delay for CaTDet: how late are objects found,
	// and how early are they lost?
	fmt.Println("\n--- entry vs exit delay (CaTDet 10a+50, Hard, precision 0.8) ---")
	sys := catdet.MustSystem(catdet.SystemSpec{
		Kind: catdet.CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: core.DefaultConfig(),
	}, ds.Classes)
	run := sim.Run(sys, ds)
	entry, _, thr := metrics.MeanDelayAtPrecision(ds, run.Detections, dataset.Hard, 0.8)
	exit, _, _ := metrics.MeanExitDelayAtPrecision(ds, run.Detections, dataset.Hard, 0.8)
	fmt.Printf("entry delay %.1f frames, exit delay %.1f frames (threshold %.2f)\n", entry, exit, thr)

	// 4. VOC-style vs COCO-style mAP: the strict-IoU average punishes
	// localization noise much harder.
	fmt.Println("\n--- VOC vs COCO protocol (same detections) ---")
	voc, _ := metrics.MAP(ds, run.Detections, dataset.Hard)
	coco, perIoU := metrics.COCOMAP(ds, run.Detections, dataset.Hard)
	fmt.Printf("VOC (KITTI thresholds): %.3f\n", voc)
	fmt.Printf("COCO mAP@[.5:.95]:      %.3f  (mAP@0.5 %.3f, mAP@0.75 %.3f, mAP@0.95 %.3f)\n",
		coco, perIoU[0.50], perIoU[0.75], perIoU[0.95])

	// 5. The oracle upper bound: perfect detector through the same
	// cascade plumbing must be lossless.
	fmt.Println("\n--- oracle upper bound ---")
	oracle := func() *detector.Detector {
		o := detector.NewOracle(detector.FreeCost{})
		o.Classes = ds.Classes
		return o
	}
	osys := core.NewCaTDet(oracle(), oracle(), core.DefaultConfig())
	orun := sim.Run(osys, ds)
	omAP, _ := metrics.MAP(ds, orun.Detections, dataset.Hard)
	fmt.Printf("oracle CaTDet mAP: %.3f (the cascade machinery loses nothing)\n", omAP)
}
