// Autonomous driving scenario: the paper's motivating use case. Runs
// CaTDet on the full KITTI-like world and inspects the delay metric —
// the number of frames between a car or pedestrian entering the scene
// and the system first detecting it — across operating points, the
// quantity that matters for a braking decision.
package main

import (
	"fmt"

	catdet "repro"
)

func main() {
	preset := catdet.KITTIPreset()
	preset.NumSequences = 6 // a subset for a quick run; raise for the full benchmark
	ds := catdet.Generate(preset, 1)
	fmt.Printf("street world: %d sequences, %d frames at %d fps\n\n",
		len(ds.Sequences), ds.NumFrames(), int(ds.Sequences[0].FPS))

	system := catdet.MustSystem(catdet.SystemSpec{
		Kind:       catdet.CaTDet,
		Proposal:   "resnet10a",
		Refinement: "resnet50",
		Cfg:        catdet.DefaultConfig(),
	}, ds.Classes)

	run := catdet.Run(system, ds)

	// The delay/accuracy trade-off: measure the mean entry delay at
	// several precision operating points. A self-driving stack picks
	// the point matching its tolerable false-alarm rate.
	fmt.Println("precision level -> mean entry delay (frames @ 10 fps)")
	for _, beta := range []float64{0.6, 0.7, 0.8, 0.9} {
		ev := catdet.Evaluate(ds, run, catdet.Hard, beta)
		fmt.Printf("  mD@%.1f = %5.1f frames  (threshold %.2f)", beta, ev.MeanDelay, ev.Threshold)
		for _, c := range ds.Classes {
			fmt.Printf("   %s %.1f", c, ev.PerClassDelay[c])
		}
		fmt.Println()
	}

	ev := catdet.Evaluate(ds, run, catdet.Hard, 0.8)
	fmt.Printf("\naccuracy: mAP(Hard) %.3f at %.1f Gops/frame (single Res50 needs 254.3)\n",
		ev.MAP, run.AvgGops())
	fmt.Println("pedestrians are smaller and harder, so their delay is typically higher —")
	fmt.Println("the same asymmetry as the paper's Figure 7.")
}
