// Serving scenario: the same live multi-stream load offered to a
// CaTDet fleet and to a single-model Res50 fleet. Offline, Table 7
// says a CaTDet frame is ~3x cheaper in GPU seconds; online, that
// margin is the difference between a healthy fleet and a saturated
// one — cheaper frames drain the shared queue faster, so CaTDet holds
// latency and drop rate where the single model sheds most of the load.
package main

import (
	"fmt"

	catdet "repro"
)

func report(label string, cfg catdet.ServeConfig) *catdet.ServeResult {
	res, err := catdet.Serve(cfg)
	if err != nil {
		panic(err)
	}
	fl := res.Fleet
	fmt.Printf("%-28s %5d/%-5d %5.1f  %7.1fms %7.1fms %7.1fms  %5.1f\n",
		label, fl.Served, fl.Arrived, 100*fl.DropRate,
		1000*fl.Latency.P50, 1000*fl.Latency.P95, 1000*fl.Latency.P99, 100*res.Utilization)
	return res
}

func main() {
	catdetSpec := catdet.SystemSpec{
		Kind: catdet.CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: catdet.DefaultConfig(),
	}
	singleSpec := catdet.SystemSpec{Kind: catdet.Single, Refinement: "resnet50"}

	load := catdet.ServeConfig{
		Preset:    catdet.KITTIPreset(),
		Seed:      1,
		Streams:   4,
		FPS:       5,
		Arrivals:  catdet.Poisson,
		Duration:  20,
		Executors: 2,
		QueueCap:  12,
	}
	fmt.Printf("moderate load: %d streams x %.0f fps (%s), %.0fs on %d executors, queue cap %d\n\n",
		load.Streams, load.FPS, load.Arrivals, load.Duration, load.Executors, load.QueueCap)
	fmt.Println("system                       served      drop%  p50      p95      p99      util%")
	cfg := load
	cfg.Spec = catdetSpec
	report("catdet (10a+50)", cfg)
	cfg.Spec = singleSpec
	report("single res50", cfg)

	// Crank the same fleet past CaTDet's capacity and turn the policy
	// hooks on: stale frames are skipped at admission and deep queues
	// shed the refinement pass, which caps the tail latency instead of
	// letting the queue carry it.
	heavy := load
	heavy.Spec = catdetSpec
	heavy.Streams = 8
	heavy.FPS = 10
	fmt.Printf("\nheavy load: %d streams x %.0f fps on the same fleet\n\n", heavy.Streams, heavy.FPS)
	fmt.Println("system                       served      drop%  p50      p95      p99      util%")
	report("catdet, no backpressure", heavy)
	heavy.MaxStaleness = 0.25
	heavy.DegradeDepth = 8
	res := report("catdet + stale/degrade", heavy)
	fmt.Printf("\n(backpressure row: %d frames served proposal-only, %d skipped stale)\n",
		res.Fleet.Degraded, res.Fleet.DroppedStale)

	fmt.Println("\nsame seed, same arrivals, same worlds — only the system under load")
	fmt.Println("differs. At moderate load CaTDet's cheaper frames keep the queue")
	fmt.Println("shallow while the single model saturates both executors and sheds")
	fmt.Println("most of the offered frames. Past CaTDet's own capacity, the stale-skip")
	fmt.Println("and degrade-to-proposal-only policies bound the p99 tail.")
}
