// Serving scenario: the same live multi-stream load offered to a
// CaTDet fleet and to a single-model Res50 fleet. Offline, Table 7
// says a CaTDet frame is ~3x cheaper in GPU seconds; online, that
// margin is the difference between a healthy fleet and a saturated
// one — cheaper frames drain the shared queue faster, so CaTDet holds
// latency and drop rate where the single model sheds most of the load.
package main

import (
	"context"
	"fmt"

	catdet "repro"
)

func report(label string, cfg catdet.ServeConfig) *catdet.ServeResult {
	res, err := catdet.Serve(cfg)
	if err != nil {
		panic(err)
	}
	fl := res.Fleet
	fmt.Printf("%-28s %5d/%-5d %5.1f  %7.1fms %7.1fms %7.1fms  %5.1f\n",
		label, fl.Served, fl.Arrived, 100*fl.DropRate,
		1000*fl.Latency.P50, 1000*fl.Latency.P95, 1000*fl.Latency.P99, 100*res.Utilization)
	return res
}

func main() {
	catdetSpec := catdet.SystemSpec{
		Kind: catdet.CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: catdet.DefaultConfig(),
	}
	singleSpec := catdet.SystemSpec{Kind: catdet.Single, Refinement: "resnet50"}

	load := catdet.ServeConfig{
		Preset:    catdet.KITTIPreset(),
		Seed:      1,
		Streams:   4,
		FPS:       5,
		Arrivals:  catdet.Poisson,
		Duration:  20,
		Executors: 2,
		QueueCap:  12,
	}
	fmt.Printf("moderate load: %d streams x %.0f fps (%s), %.0fs on %d executors, queue cap %d\n\n",
		load.Streams, load.FPS, load.Arrivals, load.Duration, load.Executors, load.QueueCap)
	fmt.Println("system                       served      drop%  p50      p95      p99      util%")
	cfg := load
	cfg.Spec = catdetSpec
	report("catdet (10a+50)", cfg)
	cfg.Spec = singleSpec
	report("single res50", cfg)

	// Crank the same fleet past CaTDet's capacity and turn the policy
	// hooks on: stale frames are skipped at admission and deep queues
	// shed the refinement pass, which caps the tail latency instead of
	// letting the queue carry it.
	heavy := load
	heavy.Spec = catdetSpec
	heavy.Streams = 8
	heavy.FPS = 10
	fmt.Printf("\nheavy load: %d streams x %.0f fps on the same fleet\n\n", heavy.Streams, heavy.FPS)
	fmt.Println("system                       served      drop%  p50      p95      p99      util%")
	report("catdet, no backpressure", heavy)
	heavy.MaxStaleness = 0.25
	heavy.DegradeDepth = 8
	res := report("catdet + stale/degrade", heavy)
	fmt.Printf("\n(backpressure row: %d frames served proposal-only, %d skipped stale)\n",
		res.Fleet.Degraded, res.Fleet.DroppedStale)

	// The scheduling/batching axis: the same overload, first with one
	// hot stream under fifo vs fair (who eats the drops?), then with
	// cross-frame batching amortizing the per-launch constant b.
	hot := heavy
	hot.StreamFPS = []float64{40, 10, 10, 10, 10, 10, 10, 10}
	fmt.Printf("\none hot stream (40 fps vs 10): scheduler decides who starves\n\n")
	fmt.Println("system                       served      drop%  p50      p95      p99      util%")
	hot.Scheduler = catdet.SchedFIFO
	fifoRes := report("catdet, sched=fifo", hot)
	hot.Scheduler = catdet.SchedFair
	fairRes := report("catdet, sched=fair", hot)
	fmt.Printf("\n(hot-stream drop rate: fifo %.1f%% -> fair %.1f%%; worst quiet stream: fifo %.1f%% -> fair %.1f%%)\n",
		100*fifoRes.PerStream[0].DropRate, 100*fairRes.PerStream[0].DropRate,
		100*worstQuiet(fifoRes), 100*worstQuiet(fairRes))

	batched := heavy
	fmt.Printf("\nbatched executors: alpha*sum(W) + b pays the launch constant once per batch\n\n")
	fmt.Println("system                       served      drop%  p50      p95      p99      util%")
	report("catdet, batch=1", batched)
	batched.BatchSize = 4
	report("catdet, batch=4", batched)

	// The serving API is push-based under the hood: catdet.Serve is a
	// thin driver that replays the preset arrival schedule through
	// Server.Submit. Driving the Server by hand reproduces the driver
	// exactly — and exposes live stats and per-frame events while the
	// load plays.
	var events int
	pushCfg := load
	pushCfg.Spec = catdetSpec
	pushCfg.Sink = catdet.ServeSinkFunc(func(catdet.ServeEvent) { events++ })
	srv, err := catdet.NewServer(pushCfg)
	if err != nil {
		panic(err)
	}
	defer srv.Close()
	if err := srv.Ingest(catdet.ServeScheduleSource(srv.Config())); err != nil {
		panic(err)
	}
	mid := srv.Stats()
	pushed, err := srv.Drain(context.Background())
	if err != nil {
		panic(err)
	}
	driverCfg := load
	driverCfg.Spec = catdetSpec
	driver, err := catdet.Serve(driverCfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\npush-based Server vs closed-loop driver (same config):\n")
	fmt.Printf("  served %d vs %d, p99 %.1fms vs %.1fms — identical: %v\n",
		pushed.Fleet.Served, driver.Fleet.Served,
		1000*pushed.Fleet.Latency.P99, 1000*driver.Fleet.Latency.P99,
		pushed.Fleet == driver.Fleet)
	fmt.Printf("  live while loading: %d arrived, %d in queue, window p99 %.1fms; %d sink events total\n",
		mid.Arrived, mid.QueueDepth, 1000*mid.Window.P99, events)

	fmt.Println("\nsame seed, same arrivals, same worlds — only the system under load")
	fmt.Println("differs. At moderate load CaTDet's cheaper frames keep the queue")
	fmt.Println("shallow while the single model saturates both executors and sheds")
	fmt.Println("most of the offered frames. Past CaTDet's own capacity, the stale-skip")
	fmt.Println("and degrade-to-proposal-only policies bound the p99 tail, the fair")
	fmt.Println("scheduler makes the hot stream absorb its own burst, and batching")
	fmt.Println("turns the per-launch overhead into extra served frames.")
}

// worstQuiet is the highest drop rate among the non-hot streams.
func worstQuiet(r *catdet.ServeResult) float64 {
	worst := 0.0
	for _, st := range r.PerStream[1:] {
		if st.DropRate > worst {
			worst = st.DropRate
		}
	}
	return worst
}
