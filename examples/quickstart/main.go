// Quickstart: build a CaTDet system, run it on a small synthetic world
// and compare it with the single-model baseline.
package main

import (
	"fmt"

	catdet "repro"
)

func main() {
	// A small KITTI-like world: 3 sequences, 120 frames each.
	ds := catdet.Generate(catdet.MiniKITTIPreset(), 42)
	fmt.Printf("world: %d frames, %d labeled objects\n\n", ds.NumFrames(), ds.NumObjects())

	// The single-model baseline: ResNet-50 Faster R-CNN on every frame.
	baseline := catdet.MustSystem(catdet.SystemSpec{
		Kind: catdet.Single, Refinement: "resnet50",
	}, ds.Classes)

	// CaTDet: a cheap ResNet-10a proposal network scans every frame, a
	// tracker predicts where known objects will be, and the expensive
	// ResNet-50 refinement network only looks at those regions.
	system := catdet.MustSystem(catdet.SystemSpec{
		Kind:       catdet.CaTDet,
		Proposal:   "resnet10a",
		Refinement: "resnet50",
		Cfg:        catdet.DefaultConfig(),
	}, ds.Classes)

	for _, sys := range []catdet.System{baseline, system} {
		run := catdet.Run(sys, ds)
		ev := catdet.Evaluate(ds, run, catdet.Hard, 0.8)
		fmt.Printf("%-35s %6.1f Gops/frame   mAP %.3f   mD@0.8 %.1f frames\n",
			sys.Name(), run.AvgGops(), ev.MAP, ev.MeanDelay)
	}

	fmt.Println("\nCaTDet should match the baseline's accuracy at a fraction of the cost.")
}
