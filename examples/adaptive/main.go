// Adaptive serving scenario: the closed-loop control plane against
// static policies on a sustained overload. Three dense crowd streams
// offer more load than one executor's cascade capacity, so a static
// fleet must pick its poison up front — serve everything late (huge
// tail), or degrade everything for the whole run. The baseline
// controller instead watches each stream's sliding-window backlog and
// latency at virtual-clock control ticks and sheds exactly while the
// queue is deep, recovering the cascade as soon as it drains: more
// quality-weighted frames served at a lower p99 than any static
// setting of the same fleet.
package main

import (
	"fmt"

	catdet "repro"
)

func quality(r *catdet.ServeResult) float64 { return r.Fleet.QualityServed() }

func report(label string, cfg catdet.ServeConfig) *catdet.ServeResult {
	res, err := catdet.Serve(cfg)
	if err != nil {
		panic(err)
	}
	fl := res.Fleet
	extra := ""
	if res.Control != nil {
		extra = fmt.Sprintf("  (%d ticks, %d mode switches)", res.ControlTicks, res.ModeSwitches)
	}
	fmt.Printf("%-26s %5d/%-5d  qserved %6.2f  p99 %7.1fms  degraded %3d%s\n",
		label, fl.Served, fl.Arrived, quality(res), 1000*fl.Latency.P99, fl.Degraded, extra)
	return res
}

func main() {
	crowd, err := catdet.PresetByName("crowd")
	if err != nil {
		panic(err)
	}
	base := catdet.ServeConfig{
		Spec: catdet.SystemSpec{
			Kind: catdet.CaTDet, Proposal: "resnet10a", Refinement: "resnet50",
			Cfg: catdet.DefaultConfig(),
		},
		Preset:      crowd,
		Seed:        1,
		Streams:     3,
		FPS:         4,
		Arrivals:    catdet.Poisson,
		Duration:    6,
		Executors:   1,
		QueueCap:    16,
		StatsWindow: 8, // short window: control signals track the current burst
	}
	fmt.Printf("crowd overload: %d streams x %.0f fps (%s), %.0fs on %d executor\n",
		base.Streams, base.FPS, base.Arrivals, base.Duration, base.Executors)
	fmt.Println("qserved weights each served frame by its mode's accuracy proxy")
	fmt.Println("(cascade 0.95, proposal-only 0.6)")
	fmt.Println()

	// The static menu: serve everything in full cascade, or shed with
	// the fleet-wide DegradeDepth threshold.
	report("static, no shedding", base)
	shed := base
	shed.DegradeDepth = 4
	report("static, degrade-depth 4", shed)

	// The adaptive row: the baseline hysteresis controller, ticking
	// every 100ms of virtual time. HighDepth/LowDepth bound the
	// per-stream backlog band (shed at 3, recover at <=1 once the
	// window median is back under LowP99); every decision keys only on
	// the virtual clock and the per-stream windows, so the run is as
	// deterministic as the static ones.
	adaptive := base
	adaptive.BatchSize = 4 // let the controller's ramp fuse backlog bursts
	adaptive.Control = catdet.ControlConfig{
		Kind:     catdet.ControllerBaseline,
		Interval: 0.1, Cooldown: 0.1,
		HighDepth: 3, LowDepth: 1,
		HighP99: 2.5, LowP99: 1.6,
		MaxBatch: 4, BatchDepth: 8,
	}
	res := report("adaptive baseline", adaptive)

	// Where did the controller spend its budget? Per-stream modes at
	// the end of the run.
	fmt.Println("\nper-stream outcome (adaptive row):")
	for _, st := range res.PerStream {
		fmt.Printf("  %-18s served %3d  degraded %3d  p99 %7.1fms\n",
			st.ID, st.Served, st.Degraded, 1000*st.Latency.P99)
	}

	// The nop controller is the control plane's identity element: it
	// schedules no ticks and decides nothing, so its result is
	// byte-identical to the controller-less run above.
	nop := base
	nop.Control = catdet.ControlConfig{Kind: catdet.ControllerNop}
	nres, err := catdet.Serve(nop)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nnop controller: served %d, qserved %.2f — identical to the static row\n",
		nres.Fleet.Served, quality(nres))
}
