package ops

// NumAnchors is the RPN anchor count per feature-map location: 3 anchor
// types with 4 scales each (Section 4.2 of the paper).
const NumAnchors = 12

// DefaultProposals is the standard Faster R-CNN proposal count after NMS.
const DefaultProposals = 300

// FasterRCNN is the operation cost model of a Faster R-CNN detector. The
// total cost splits into an area-dependent part (trunk + RPN, which scan
// the image or its selected regions) and a proposal-count-dependent part
// (the per-RoI head). featScale and headScale calibrate the two parts to
// the paper's published totals; see Calibrate and zoo.go.
type FasterRCNN struct {
	Backbone     Backbone
	NumProposals int

	featScale float64
	headScale float64

	// rpn is the RPN stack built once against the backbone at
	// construction. FeatureOps sits inside per-frame (and, via region
	// merging, per-candidate-rectangle) pricing loops; rebuilding the
	// net there allocated on every call and dominated the serving heap
	// profile. Precomputed, it is read-only and safe to share across
	// the serving loop's parallel step workers.
	rpn Net
}

// NewFasterRCNN builds an uncalibrated cost model (scales = 1) with the
// default 300-proposal configuration. The Backbone must not be mutated
// after construction (the RPN stack is derived from it here).
func NewFasterRCNN(b Backbone) *FasterRCNN {
	return &FasterRCNN{
		Backbone:     b,
		NumProposals: DefaultProposals,
		featScale:    1,
		headScale:    1,
		rpn:          rpnNet(b),
	}
}

// rpnNet returns the RPN stack attached to the trunk output: a 3x3 conv
// preserving channels plus 1x1 objectness and box-regression heads.
func rpnNet(b Backbone) Net {
	c := b.Trunk.OutChannels()
	return Net{Name: b.Name + ".rpn", Layers: []Layer{
		{Name: "rpn.conv", Kind: Conv, Kernel: 3, Stride: 1, InCh: c, OutCh: c},
		{Name: "rpn.cls", Kind: Conv, Kernel: 1, Stride: 1, InCh: c, OutCh: 2 * NumAnchors},
		{Name: "rpn.reg", Kind: Conv, Kernel: 1, Stride: 1, InCh: c, OutCh: 4 * NumAnchors},
	}}
}

// FeatureOps returns the area-dependent operations (trunk + RPN) for a
// full w-by-h frame, after calibration.
func (m *FasterRCNN) FeatureOps(w, h int) float64 {
	trunk := m.Backbone.Trunk.Ops(w, h)
	stride := m.Backbone.Trunk.OutputStride()
	rpn := m.rpn.Ops((w+stride-1)/stride, (h+stride-1)/stride)
	return (trunk + rpn) * m.featScale
}

// HeadOpsPerProposal returns the per-RoI head cost after calibration.
func (m *FasterRCNN) HeadOpsPerProposal() float64 {
	return m.Backbone.Head.Ops(m.Backbone.RoISize, m.Backbone.RoISize) * m.headScale
}

// HeadOps returns the head cost for n proposals.
func (m *FasterRCNN) HeadOps(n int) float64 {
	if n < 0 {
		n = 0
	}
	return float64(n) * m.HeadOpsPerProposal()
}

// FullFrameOps returns the operations for standard full-frame inference
// with the model's configured proposal count.
func (m *FasterRCNN) FullFrameOps(w, h int) float64 {
	return m.FeatureOps(w, h) + m.HeadOps(m.NumProposals)
}

// RegionOps returns the operations for selected-region inference: the
// trunk and RPN only compute features over the covered fraction of the
// frame, and the head runs once per supplied proposal. This is the
// refinement-network mode of Section 4.3.
func (m *FasterRCNN) RegionOps(w, h int, coveredFrac float64, nProposals int) float64 {
	if coveredFrac < 0 {
		coveredFrac = 0
	}
	if coveredFrac > 1 {
		coveredFrac = 1
	}
	return m.FeatureOps(w, h)*coveredFrac + m.HeadOps(nProposals)
}

// Calibrate fits featScale and headScale so the model's full-frame totals
// reproduce published anchors. With one anchor the two scales are set
// equal (uniform scaling); with two anchors at different resolutions the
// area-dependent and proposal-dependent parts are solved separately,
// which is possible because the head cost does not vary with resolution.
//
// Anchors are expressed in raw operations for full-frame inference at the
// model's configured proposal count.
func (m *FasterRCNN) Calibrate(anchors []OpsAnchor) {
	m.featScale, m.headScale = 1, 1
	switch len(anchors) {
	case 0:
		return
	case 1:
		a := anchors[0]
		analytic := m.FullFrameOps(a.W, a.H)
		if analytic > 0 {
			s := a.Ops / analytic
			m.featScale, m.headScale = s, s
		}
	default:
		a, b := anchors[0], anchors[1]
		fa := m.FeatureOps(a.W, a.H)
		fb := m.FeatureOps(b.W, b.H)
		head := m.HeadOps(m.NumProposals)
		if fa == fb || head == 0 {
			m.Calibrate(anchors[:1])
			return
		}
		fs := (b.Ops - a.Ops) / (fb - fa)
		hs := (a.Ops - fs*fa) / head
		if fs <= 0 || hs <= 0 {
			m.Calibrate(anchors[:1])
			return
		}
		m.featScale, m.headScale = fs, hs
	}
}

// OpsAnchor is a published full-frame operation count at a resolution.
type OpsAnchor struct {
	W, H int
	Ops  float64
}
