package ops

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"
)

// LayerCost is one row of a per-layer operation report.
type LayerCost struct {
	Name       string
	Kind       Kind
	OutW, OutH int
	Ops        float64
}

// Report returns the per-layer operation counts of a forward pass over
// a w-by-h input, in execution order. Pooling rows appear with zero
// ops (they only change spatial dimensions), matching the paper's rule
// of counting only conv and FC layers.
func (n Net) Report(w, h int) []LayerCost {
	fw, fh := float64(w), float64(h)
	out := make([]LayerCost, 0, len(n.Layers))
	for _, l := range n.Layers {
		cost := 0.0
		switch l.Kind {
		case Conv:
			if l.Stride > 1 {
				fw = math.Ceil(fw / float64(l.Stride))
				fh = math.Ceil(fh / float64(l.Stride))
			}
			cost = float64(l.Kernel*l.Kernel) * float64(l.InCh) * float64(l.OutCh) * fw * fh * OpsPerMAC
		case FC:
			cost = float64(l.InCh) * float64(l.OutCh) * OpsPerMAC
		case MaxPool:
			if l.Stride > 1 {
				fw = math.Ceil(fw / float64(l.Stride))
				fh = math.Ceil(fh / float64(l.Stride))
			}
		case GlobalPool:
			fw, fh = 1, 1
		}
		out = append(out, LayerCost{Name: l.Name, Kind: l.Kind, OutW: int(fw), OutH: int(fh), Ops: cost})
	}
	return out
}

// WriteReport renders a per-layer report of the net at the input size.
func (n Net) WriteReport(w io.Writer, inW, inH int) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "layer\tout\tGops\n")
	total := 0.0
	for _, lc := range n.Report(inW, inH) {
		fmt.Fprintf(tw, "%s\t%dx%d\t%.3f\n", lc.Name, lc.OutW, lc.OutH, lc.Ops/Giga)
		total += lc.Ops
	}
	fmt.Fprintf(tw, "total (%s)\t\t%.3f\n", n.Name, total/Giga)
	tw.Flush()
}
