// Package ops provides the arithmetic-operation cost models CaTDet uses
// to report workload. The paper counts only the operations in
// convolutional and fully-connected layers (Section 6.3); we reproduce
// that by building each backbone layer-by-layer from the channel specs in
// Table 1 and counting multiply-accumulates analytically.
//
// Because the authors' exact RoI-head configurations are not fully
// specified, each cost model carries two calibration scales (feature-side
// and head-side) fitted to the paper's published full-frame operation
// counts; the scales are derived in zoo.go and documented in
// EXPERIMENTS.md. All region- and proposal-dependent behaviour comes from
// the analytic structure, never from the anchors.
package ops

import "math"

// Kind discriminates the layer types the cost model understands.
type Kind int

// Layer kinds. Only Conv and FC contribute operations, matching the
// paper's counting rule; pooling layers only change spatial dimensions.
const (
	Conv Kind = iota
	FC
	MaxPool
	GlobalPool
)

// Layer describes one parameterized layer of a network.
type Layer struct {
	Name   string
	Kind   Kind
	Kernel int // spatial kernel size (k x k); ignored for FC/GlobalPool
	Stride int // spatial stride; ignored for FC/GlobalPool
	InCh   int
	OutCh  int // for FC: output features; InCh: input features
}

// Net is an ordered stack of layers with a name, evaluated on an input of
// arbitrary spatial size.
type Net struct {
	Name   string
	Layers []Layer
}

// OpsPerMAC converts multiply-accumulate counts into "operations" as the
// paper reports them (a MAC is a multiply plus an add).
const OpsPerMAC = 2.0

// Giga is the scale of the paper's reported numbers.
const Giga = 1e9

// Ops returns the operation count for one forward pass over a w-by-h
// input, in raw operations (not Gops). Spatial dimensions shrink with
// layer strides using ceiling division, the convention of padded convs.
func (n Net) Ops(w, h int) float64 {
	fw, fh := float64(w), float64(h)
	total := 0.0
	for _, l := range n.Layers {
		switch l.Kind {
		case Conv:
			if l.Stride > 1 {
				fw = math.Ceil(fw / float64(l.Stride))
				fh = math.Ceil(fh / float64(l.Stride))
			}
			macs := float64(l.Kernel*l.Kernel) * float64(l.InCh) * float64(l.OutCh) * fw * fh
			total += macs * OpsPerMAC
		case FC:
			total += float64(l.InCh) * float64(l.OutCh) * OpsPerMAC
		case MaxPool:
			if l.Stride > 1 {
				fw = math.Ceil(fw / float64(l.Stride))
				fh = math.Ceil(fh / float64(l.Stride))
			}
		case GlobalPool:
			fw, fh = 1, 1
		}
	}
	return total
}

// OutputStride returns the cumulative spatial stride of the stack.
func (n Net) OutputStride() int {
	s := 1
	for _, l := range n.Layers {
		if (l.Kind == Conv || l.Kind == MaxPool) && l.Stride > 1 {
			s *= l.Stride
		}
	}
	return s
}

// OutChannels returns the channel count produced by the last conv layer,
// or 0 when the stack has none.
func (n Net) OutChannels() int {
	for i := len(n.Layers) - 1; i >= 0; i-- {
		if n.Layers[i].Kind == Conv || n.Layers[i].Kind == FC {
			return n.Layers[i].OutCh
		}
	}
	return 0
}

// Concat returns a new Net consisting of n's layers followed by m's.
func (n Net) Concat(m Net) Net {
	out := Net{Name: n.Name + "+" + m.Name}
	out.Layers = append(append([]Layer{}, n.Layers...), m.Layers...)
	return out
}
