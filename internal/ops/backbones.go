package ops

import "fmt"

// Backbone is a feature-extraction trunk split at the point where Faster
// R-CNN divides work: Trunk runs once over the (selected regions of the)
// image and produces the shared feature map; Head runs once per RoI on a
// pooled RoISize x RoISize patch. For the ResNet family the split is
// after conv4 (stride 16), with conv5 as the per-RoI head, the standard
// Faster R-CNN arrangement; VGG-16 uses conv1-5 as trunk and the FC
// layers as head.
type Backbone struct {
	Name  string
	Trunk Net
	Head  Net
	// RoISize is the spatial size of the pooled patch fed to the head.
	RoISize int
}

// basicBlock appends a ResNet basic block (two 3x3 convs plus a 1x1
// projection when shape changes) to the layer list.
func basicBlock(layers []Layer, name string, inCh, outCh, stride int) []Layer {
	layers = append(layers,
		Layer{Name: name + ".conv1", Kind: Conv, Kernel: 3, Stride: stride, InCh: inCh, OutCh: outCh},
		Layer{Name: name + ".conv2", Kind: Conv, Kernel: 3, Stride: 1, InCh: outCh, OutCh: outCh},
	)
	if stride != 1 || inCh != outCh {
		// The projection shortcut runs in parallel with the main path and
		// produces the block output; in this sequential cost model it is
		// counted at the output resolution with stride 1 (same MAC count,
		// and it must not shrink the spatial dims a second time).
		layers = append(layers, Layer{Name: name + ".down", Kind: Conv, Kernel: 1, Stride: 1, InCh: inCh, OutCh: outCh})
	}
	return layers
}

// bottleneckBlock appends a ResNet bottleneck block (1x1 reduce, 3x3,
// 1x1 expand x4) to the layer list.
func bottleneckBlock(layers []Layer, name string, inCh, midCh, stride int) []Layer {
	outCh := midCh * 4
	layers = append(layers,
		Layer{Name: name + ".conv1", Kind: Conv, Kernel: 1, Stride: 1, InCh: inCh, OutCh: midCh},
		Layer{Name: name + ".conv2", Kind: Conv, Kernel: 3, Stride: stride, InCh: midCh, OutCh: midCh},
		Layer{Name: name + ".conv3", Kind: Conv, Kernel: 1, Stride: 1, InCh: midCh, OutCh: outCh},
	)
	if stride != 1 || inCh != outCh {
		// Parallel projection shortcut; see basicBlock for why stride 1.
		layers = append(layers, Layer{Name: name + ".down", Kind: Conv, Kernel: 1, Stride: 1, InCh: inCh, OutCh: outCh})
	}
	return layers
}

// stem appends the standard ResNet stem: 7x7/2 conv then 3x3/2 max pool.
func stem(layers []Layer, outCh int) []Layer {
	return append(layers,
		Layer{Name: "conv1", Kind: Conv, Kernel: 7, Stride: 2, InCh: 3, OutCh: outCh},
		Layer{Name: "pool1", Kind: MaxPool, Kernel: 3, Stride: 2},
	)
}

// SmallResNetSpec captures one column of the paper's Table 1: the channel
// widths of the stem and the four block stages, plus how many times each
// block repeats (2 for ResNet-18, 1 for the ResNet-10 variants).
type SmallResNetSpec struct {
	Name    string
	Conv1   int
	Blocks  [4]int
	Repeats int
}

// Table1Specs are the proposal-network architectures of the paper's
// Table 1, verbatim.
var Table1Specs = []SmallResNetSpec{
	{Name: "resnet18", Conv1: 64, Blocks: [4]int{64, 128, 256, 512}, Repeats: 2},
	{Name: "resnet10a", Conv1: 48, Blocks: [4]int{48, 96, 168, 512}, Repeats: 1},
	{Name: "resnet10b", Conv1: 32, Blocks: [4]int{32, 64, 128, 256}, Repeats: 1},
	{Name: "resnet10c", Conv1: 24, Blocks: [4]int{24, 48, 96, 192}, Repeats: 1},
}

// BuildSmallResNet constructs a basic-block ResNet backbone from a Table 1
// spec, split after stage 3 for the Faster R-CNN trunk/head division.
func BuildSmallResNet(spec SmallResNetSpec) Backbone {
	var trunk []Layer
	trunk = stem(trunk, spec.Conv1)
	in := spec.Conv1
	for stage := 0; stage < 3; stage++ {
		ch := spec.Blocks[stage]
		stride := 1
		if stage > 0 {
			stride = 2
		}
		for rep := 0; rep < spec.Repeats; rep++ {
			name := fmt.Sprintf("stage%d.block%d", stage+1, rep)
			s := 1
			if rep == 0 {
				s = stride
			}
			trunk = basicBlock(trunk, name, in, ch, s)
			in = ch
		}
	}
	var head []Layer
	ch := spec.Blocks[3]
	for rep := 0; rep < spec.Repeats; rep++ {
		name := fmt.Sprintf("stage4.block%d", rep)
		s := 1
		if rep == 0 {
			s = 2
		}
		head = basicBlock(head, name, in, ch, s)
		in = ch
	}
	return Backbone{
		Name:    spec.Name,
		Trunk:   Net{Name: spec.Name + ".trunk", Layers: trunk},
		Head:    Net{Name: spec.Name + ".head", Layers: head},
		RoISize: 14,
	}
}

// BuildResNet50 constructs the standard ResNet-50 bottleneck backbone,
// split after conv4 (trunk) with conv5 as the per-RoI head.
func BuildResNet50() Backbone {
	var trunk []Layer
	trunk = stem(trunk, 64)
	in := 64
	stages := []struct {
		mid, blocks, stride int
	}{
		{64, 3, 1},
		{128, 4, 2},
		{256, 6, 2},
	}
	for si, st := range stages {
		for rep := 0; rep < st.blocks; rep++ {
			s := 1
			if rep == 0 {
				s = st.stride
			}
			trunk = bottleneckBlock(trunk, fmt.Sprintf("stage%d.block%d", si+1, rep), in, st.mid, s)
			in = st.mid * 4
		}
	}
	var head []Layer
	for rep := 0; rep < 3; rep++ {
		s := 1
		if rep == 0 {
			s = 2
		}
		head = bottleneckBlock(head, fmt.Sprintf("stage4.block%d", rep), in, 512, s)
		in = 512 * 4
	}
	return Backbone{
		Name:    "resnet50",
		Trunk:   Net{Name: "resnet50.trunk", Layers: trunk},
		Head:    Net{Name: "resnet50.head", Layers: head},
		RoISize: 14,
	}
}

// BuildVGG16 constructs the VGG-16 backbone used by the original Faster
// R-CNN: conv1-conv5 as trunk, the two 4096-wide FC layers as per-RoI
// head over a 7x7x512 pooled patch.
func BuildVGG16() Backbone {
	cfg := []struct {
		ch, n int
	}{
		{64, 2}, {128, 2}, {256, 3}, {512, 3}, {512, 3},
	}
	var trunk []Layer
	in := 3
	for si, c := range cfg {
		for rep := 0; rep < c.n; rep++ {
			trunk = append(trunk, Layer{
				Name: fmt.Sprintf("conv%d_%d", si+1, rep+1), Kind: Conv,
				Kernel: 3, Stride: 1, InCh: in, OutCh: c.ch,
			})
			in = c.ch
		}
		// VGG pools after every stage, but Faster R-CNN drops the final
		// pool so the trunk output stride is 16.
		if si < len(cfg)-1 {
			trunk = append(trunk, Layer{Name: fmt.Sprintf("pool%d", si+1), Kind: MaxPool, Kernel: 2, Stride: 2})
		}
	}
	head := []Layer{
		{Name: "fc6", Kind: FC, InCh: 7 * 7 * 512, OutCh: 4096},
		{Name: "fc7", Kind: FC, InCh: 4096, OutCh: 4096},
	}
	return Backbone{
		Name:    "vgg16",
		Trunk:   Net{Name: "vgg16.trunk", Layers: trunk},
		Head:    Net{Name: "vgg16.head", Layers: head},
		RoISize: 7,
	}
}
