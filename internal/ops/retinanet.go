package ops

// RetinaNet is the cost model for the one-shot detector of the paper's
// Appendix II. Unlike Faster R-CNN it has no per-proposal head: the whole
// network (backbone, feature pyramid, classification and box subnets) is
// fully convolutional, so under selected-region inference *all* of its
// operations scale with the covered area ("RetinaNet only operates at the
// regions of interest ... reduces the number of operations for both
// Feature Pyramid Network and Classifier Subnets").
type RetinaNet struct {
	Backbone Backbone
	scale    float64
}

// NewRetinaNet builds an uncalibrated RetinaNet cost model.
func NewRetinaNet(b Backbone) *RetinaNet {
	return &RetinaNet{Backbone: b, scale: 1}
}

const fpnCh = 256

// retinaSubnet and retinaLateral are the fixed FPN nets, built once:
// fpnAndSubnets sits inside pricing loops (via RegionOps) and must not
// allocate per call. retinaStrides are the pyramid levels P3..P7.
var (
	// Subnets: 4 3x3x256 convs plus a prediction conv, run on every
	// pyramid level, twice (classification and regression).
	retinaSubnet = Net{Name: "subnet", Layers: []Layer{
		{Kind: Conv, Kernel: 3, Stride: 1, InCh: fpnCh, OutCh: fpnCh},
		{Kind: Conv, Kernel: 3, Stride: 1, InCh: fpnCh, OutCh: fpnCh},
		{Kind: Conv, Kernel: 3, Stride: 1, InCh: fpnCh, OutCh: fpnCh},
		{Kind: Conv, Kernel: 3, Stride: 1, InCh: fpnCh, OutCh: fpnCh},
		{Kind: Conv, Kernel: 3, Stride: 1, InCh: fpnCh, OutCh: 9 * 4},
	}}
	retinaLateral = Net{Name: "lateral", Layers: []Layer{
		{Kind: Conv, Kernel: 1, Stride: 1, InCh: 1024, OutCh: fpnCh},
		{Kind: Conv, Kernel: 3, Stride: 1, InCh: fpnCh, OutCh: fpnCh},
	}}
	retinaStrides = [...]int{8, 16, 32, 64, 128}
)

// fpnAndSubnets returns the FPN lateral/output convs plus the class and
// box subnets evaluated over the pyramid levels P3..P7. Costs are
// expressed per level and summed with the appropriate strides.
func (m *RetinaNet) fpnAndSubnets(w, h int) float64 {
	total := 0.0
	for _, stride := range retinaStrides {
		lw, lh := (w+stride-1)/stride, (h+stride-1)/stride
		total += retinaLateral.Ops(lw, lh) + 2*retinaSubnet.Ops(lw, lh)
	}
	return total
}

// backboneOps runs the full backbone (trunk and final stage) over the
// image; RetinaNet keeps conv5 in the image pass because the FPN taps it.
func (m *RetinaNet) backboneOps(w, h int) float64 {
	trunk := m.Backbone.Trunk.Ops(w, h)
	stride := m.Backbone.Trunk.OutputStride()
	head := m.Backbone.Head.Ops((w+stride-1)/stride, (h+stride-1)/stride)
	return trunk + head
}

// FullFrameOps returns calibrated full-frame operations.
func (m *RetinaNet) FullFrameOps(w, h int) float64 {
	return (m.backboneOps(w, h) + m.fpnAndSubnets(w, h)) * m.scale
}

// RegionOps returns calibrated operations when the network only computes
// over the covered fraction of the frame. The nProposals argument exists
// so RetinaNet satisfies the same interface as FasterRCNN but has no
// effect: one-shot detectors have no proposal-dependent cost.
func (m *RetinaNet) RegionOps(w, h int, coveredFrac float64, nProposals int) float64 {
	if coveredFrac < 0 {
		coveredFrac = 0
	}
	if coveredFrac > 1 {
		coveredFrac = 1
	}
	return m.FullFrameOps(w, h) * coveredFrac
}

// Calibrate fits the uniform scale to the first anchor.
func (m *RetinaNet) Calibrate(anchors []OpsAnchor) {
	m.scale = 1
	if len(anchors) == 0 {
		return
	}
	analytic := m.FullFrameOps(anchors[0].W, anchors[0].H)
	if analytic > 0 {
		m.scale = anchors[0].Ops / analytic
	}
}
