package ops

import "fmt"

// CostModel is the interface both detector families implement: full-frame
// cost and selected-region cost (covered area fraction plus an explicit
// proposal count for models with per-RoI heads).
type CostModel interface {
	FullFrameOps(w, h int) float64
	RegionOps(w, h int, coveredFrac float64, nProposals int) float64
}

// Image resolutions of the two evaluation datasets.
const (
	KITTIWidth  = 1242
	KITTIHeight = 375

	CityPersonsWidth  = 2048
	CityPersonsHeight = 1024
)

// Published full-frame operation anchors from the paper, in Gops, used to
// calibrate the analytic models. Sources: Table 1 (proposal nets),
// Table 2 + Table 6 (ResNet-50 at both resolutions), Table 5 (VGG-16),
// Table 8 (RetinaNet).
var paperAnchors = map[string][]OpsAnchor{
	"resnet18":  {{W: KITTIWidth, H: KITTIHeight, Ops: 138.3 * Giga}},
	"resnet10a": {{W: KITTIWidth, H: KITTIHeight, Ops: 20.7 * Giga}},
	"resnet10b": {{W: KITTIWidth, H: KITTIHeight, Ops: 7.5 * Giga}},
	"resnet10c": {{W: KITTIWidth, H: KITTIHeight, Ops: 4.5 * Giga}},
	"resnet50": {
		{W: KITTIWidth, H: KITTIHeight, Ops: 254.3 * Giga},
		{W: CityPersonsWidth, H: CityPersonsHeight, Ops: 597 * Giga},
	},
	"vgg16":           {{W: KITTIWidth, H: KITTIHeight, Ops: 179 * Giga}},
	"retinanet-res50": {{W: KITTIWidth, H: KITTIHeight, Ops: 96.7 * Giga}},
}

// NewCostModel returns the calibrated cost model for a named detector.
// Known names: resnet18, resnet10a, resnet10b, resnet10c, resnet50,
// vgg16 (Faster R-CNN family) and retinanet-res50.
func NewCostModel(name string) (CostModel, error) {
	switch name {
	case "resnet18", "resnet10a", "resnet10b", "resnet10c":
		for _, spec := range Table1Specs {
			if spec.Name == name {
				m := NewFasterRCNN(BuildSmallResNet(spec))
				m.Calibrate(paperAnchors[name])
				return m, nil
			}
		}
		panic("ops: Table1Specs out of sync with NewCostModel")
	case "resnet50":
		m := NewFasterRCNN(BuildResNet50())
		m.Calibrate(paperAnchors[name])
		return m, nil
	case "vgg16":
		m := NewFasterRCNN(BuildVGG16())
		m.Calibrate(paperAnchors[name])
		return m, nil
	case "retinanet-res50":
		m := NewRetinaNet(BuildResNet50())
		m.Calibrate(paperAnchors[name])
		return m, nil
	default:
		return nil, fmt.Errorf("ops: unknown model %q", name)
	}
}

// MustCostModel is NewCostModel for static names; it panics on error.
func MustCostModel(name string) CostModel {
	m, err := NewCostModel(name)
	if err != nil {
		panic(err)
	}
	return m
}

// ModelNames lists every model the zoo can build, in a stable order.
func ModelNames() []string {
	return []string{"resnet18", "resnet10a", "resnet10b", "resnet10c", "resnet50", "vgg16", "retinanet-res50"}
}

// Gops converts raw operations to the paper's Gops unit.
func Gops(rawOps float64) float64 { return rawOps / Giga }
