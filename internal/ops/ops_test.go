package ops

import (
	"math"
	"testing"
)

func TestNetOpsSingleConv(t *testing.T) {
	n := Net{Layers: []Layer{{Kind: Conv, Kernel: 3, Stride: 1, InCh: 16, OutCh: 32}}}
	// 3*3*16*32*10*10 MACs * 2 ops
	want := 9.0 * 16 * 32 * 100 * OpsPerMAC
	if got := n.Ops(10, 10); got != want {
		t.Fatalf("Ops = %v, want %v", got, want)
	}
}

func TestNetOpsStrideShrinksSpatial(t *testing.T) {
	n := Net{Layers: []Layer{
		{Kind: Conv, Kernel: 3, Stride: 2, InCh: 3, OutCh: 8},
		{Kind: Conv, Kernel: 3, Stride: 1, InCh: 8, OutCh: 8},
	}}
	// First conv output is ceil(10/2)=5 -> 25 px for both layers.
	want := (9.0*3*8*25 + 9.0*8*8*25) * OpsPerMAC
	if got := n.Ops(10, 10); got != want {
		t.Fatalf("Ops = %v, want %v", got, want)
	}
}

func TestNetOpsFCIndependentOfSpatial(t *testing.T) {
	n := Net{Layers: []Layer{{Kind: FC, InCh: 100, OutCh: 10}}}
	if n.Ops(10, 10) != n.Ops(1000, 1000) {
		t.Fatal("FC ops should not depend on input size")
	}
	if got := n.Ops(5, 5); got != 100*10*OpsPerMAC {
		t.Fatalf("FC ops = %v", got)
	}
}

func TestNetOpsPoolingCostsNothing(t *testing.T) {
	n := Net{Layers: []Layer{{Kind: MaxPool, Kernel: 3, Stride: 2}}}
	if got := n.Ops(100, 100); got != 0 {
		t.Fatalf("pool ops = %v, want 0", got)
	}
}

func TestOutputStride(t *testing.T) {
	b := BuildSmallResNet(Table1Specs[0]) // resnet18
	if s := b.Trunk.OutputStride(); s != 16 {
		t.Fatalf("trunk stride = %d, want 16", s)
	}
	full := b.Trunk.Concat(b.Head)
	if s := full.OutputStride(); s != 32 {
		t.Fatalf("full stride = %d, want 32", s)
	}
}

func TestBackboneChannelsMatchTable1(t *testing.T) {
	for _, spec := range Table1Specs {
		b := BuildSmallResNet(spec)
		if got := b.Trunk.OutChannels(); got != spec.Blocks[2] {
			t.Errorf("%s trunk out channels = %d, want %d", spec.Name, got, spec.Blocks[2])
		}
		if got := b.Head.OutChannels(); got != spec.Blocks[3] {
			t.Errorf("%s head out channels = %d, want %d", spec.Name, got, spec.Blocks[3])
		}
	}
	r50 := BuildResNet50()
	if got := r50.Trunk.OutChannels(); got != 1024 {
		t.Errorf("resnet50 trunk channels = %d, want 1024", got)
	}
	if got := r50.Head.OutChannels(); got != 2048 {
		t.Errorf("resnet50 head channels = %d, want 2048", got)
	}
}

// After calibration the zoo must reproduce every published full-frame
// anchor exactly (they are the fit targets).
func TestZooReproducesPaperAnchors(t *testing.T) {
	for name, anchors := range paperAnchors {
		m := MustCostModel(name)
		for _, a := range anchors {
			got := Gops(m.FullFrameOps(a.W, a.H))
			want := a.Ops / Giga
			if math.Abs(got-want)/want > 1e-6 {
				t.Errorf("%s at %dx%d: %.2f Gops, want %.2f", name, a.W, a.H, got, want)
			}
		}
	}
}

// The ResNet-50 dual-anchor calibration implies a concrete split between
// area-dependent and proposal-dependent cost; verify the split is sane
// and that scaling to CityPersons resolution emerges from area scaling.
func TestResNet50DualAnchorSplit(t *testing.T) {
	m := MustCostModel("resnet50").(*FasterRCNN)
	feat := Gops(m.FeatureOps(KITTIWidth, KITTIHeight))
	head := Gops(m.HeadOps(DefaultProposals))
	if math.Abs(feat+head-254.3) > 0.1 {
		t.Fatalf("feat %.1f + head %.1f != 254.3", feat, head)
	}
	if feat <= 0 || head <= 0 {
		t.Fatalf("degenerate split: feat=%.1f head=%.1f", feat, head)
	}
	// Head cost per proposal should be well under the full feature cost
	// (300 proposals together are comparable to the trunk).
	per := Gops(m.HeadOpsPerProposal())
	if per <= 0 || per > 5 {
		t.Fatalf("per-proposal head cost %.2f Gops implausible", per)
	}
}

func TestRegionOpsScaling(t *testing.T) {
	m := MustCostModel("resnet50").(*FasterRCNN)
	full := m.FullFrameOps(KITTIWidth, KITTIHeight)
	// Full coverage with the default proposal count equals full frame.
	r := m.RegionOps(KITTIWidth, KITTIHeight, 1.0, DefaultProposals)
	if math.Abs(r-full)/full > 1e-9 {
		t.Fatalf("RegionOps(1.0, 300) = %v != full %v", r, full)
	}
	// Zero coverage and zero proposals cost nothing.
	if got := m.RegionOps(KITTIWidth, KITTIHeight, 0, 0); got != 0 {
		t.Fatalf("RegionOps(0,0) = %v", got)
	}
	// Cost is monotone in both coverage and proposals.
	prev := 0.0
	for _, f := range []float64{0.1, 0.3, 0.5, 0.9} {
		cur := m.RegionOps(KITTIWidth, KITTIHeight, f, 10)
		if cur <= prev {
			t.Fatalf("RegionOps not monotone in coverage at %v", f)
		}
		prev = cur
	}
	if m.RegionOps(KITTIWidth, KITTIHeight, 0.2, 10) >= m.RegionOps(KITTIWidth, KITTIHeight, 0.2, 50) {
		t.Fatal("RegionOps not monotone in proposals")
	}
	// Coverage outside [0,1] clamps.
	if m.RegionOps(KITTIWidth, KITTIHeight, 1.7, 0) != m.RegionOps(KITTIWidth, KITTIHeight, 1.0, 0) {
		t.Fatal("coverage > 1 not clamped")
	}
	if m.RegionOps(KITTIWidth, KITTIHeight, -0.5, 0) != 0 {
		t.Fatal("negative coverage not clamped")
	}
}

func TestRetinaNetRegionScalesEverything(t *testing.T) {
	m := MustCostModel("retinanet-res50")
	full := m.FullFrameOps(KITTIWidth, KITTIHeight)
	half := m.RegionOps(KITTIWidth, KITTIHeight, 0.5, 999)
	if math.Abs(half-full/2)/full > 1e-9 {
		t.Fatalf("RetinaNet half-coverage = %v, want %v", half, full/2)
	}
}

// Table 1's ordering must hold for the raw analytic models too (before
// calibration): bigger specs cost more.
func TestProposalNetOrderingUncalibrated(t *testing.T) {
	var prev float64 = math.Inf(1)
	for _, spec := range Table1Specs { // ordered 18, 10a, 10b, 10c
		m := NewFasterRCNN(BuildSmallResNet(spec))
		got := m.FullFrameOps(KITTIWidth, KITTIHeight)
		if got >= prev {
			t.Fatalf("%s analytic ops %.2e not smaller than previous %.2e", spec.Name, got, prev)
		}
		prev = got
	}
}

func TestUnknownModel(t *testing.T) {
	if _, err := NewCostModel("alexnet"); err == nil {
		t.Fatal("expected error for unknown model")
	}
}

func TestModelNamesAllBuild(t *testing.T) {
	for _, name := range ModelNames() {
		m := MustCostModel(name)
		if ops := m.FullFrameOps(KITTIWidth, KITTIHeight); ops <= 0 {
			t.Errorf("%s full-frame ops = %v", name, ops)
		}
	}
}

func TestCalibrateSingleAnchorUniform(t *testing.T) {
	m := NewFasterRCNN(BuildSmallResNet(Table1Specs[1]))
	m.Calibrate([]OpsAnchor{{W: 100, H: 100, Ops: 1e9}})
	if got := m.FullFrameOps(100, 100); math.Abs(got-1e9) > 1 {
		t.Fatalf("calibrated ops = %v, want 1e9", got)
	}
}

func TestCalibrateNoAnchorsIdentity(t *testing.T) {
	m := NewFasterRCNN(BuildSmallResNet(Table1Specs[1]))
	before := m.FullFrameOps(100, 100)
	m.Calibrate(nil)
	if after := m.FullFrameOps(100, 100); after != before {
		t.Fatalf("no-anchor calibration changed ops %v -> %v", before, after)
	}
}
