package ops

import (
	"bytes"
	"strings"
	"testing"
)

func TestReportSumsToOps(t *testing.T) {
	for _, spec := range Table1Specs {
		b := BuildSmallResNet(spec)
		net := b.Trunk.Concat(b.Head)
		total := 0.0
		for _, lc := range net.Report(KITTIWidth, KITTIHeight) {
			total += lc.Ops
		}
		want := net.Ops(KITTIWidth, KITTIHeight)
		if diff := total - want; diff > 1 || diff < -1 {
			t.Errorf("%s: report total %.0f != Ops %.0f", spec.Name, total, want)
		}
	}
}

func TestReportSpatialDims(t *testing.T) {
	b := BuildResNet50()
	rep := b.Trunk.Report(1242, 375)
	last := rep[len(rep)-1]
	// Trunk stride 16: 1242/16 -> 78, 375/16 -> 24 (ceil at each stage).
	if last.OutW < 75 || last.OutW > 82 || last.OutH < 22 || last.OutH > 26 {
		t.Fatalf("trunk output dims = %dx%d", last.OutW, last.OutH)
	}
	// Pooling rows exist with zero ops.
	foundPool := false
	for _, lc := range rep {
		if lc.Kind == MaxPool {
			foundPool = true
			if lc.Ops != 0 {
				t.Fatal("pool layer charged ops")
			}
		}
	}
	if !foundPool {
		t.Fatal("stem pool missing from report")
	}
}

func TestWriteReportRenders(t *testing.T) {
	b := BuildVGG16()
	var buf bytes.Buffer
	b.Trunk.WriteReport(&buf, 224, 224)
	s := buf.String()
	if !strings.Contains(s, "conv1_1") || !strings.Contains(s, "total") {
		t.Fatalf("report missing content:\n%s", s)
	}
}
