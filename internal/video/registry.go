package video

import (
	"fmt"
	"sort"
	"strings"
)

// registry maps the short CLI name of every preset to its constructor.
// Constructors (not values) so each lookup hands the caller a fresh,
// mutation-safe Preset.
var registry = map[string]func() Preset{
	"kitti":       KITTIPreset,
	"citypersons": CityPersonsPreset,
	"mini":        MiniKITTIPreset,
	"crowd":       CrowdSurgePreset,
	"highway":     HighwayPreset,
	"drone":       DronePreset,
	"night":       NightPreset,
	"sports":      SportsPanPreset,
}

// PresetNames lists every registered preset's short name, sorted.
func PresetNames() []string {
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// PresetByName resolves a short preset name to a fresh Preset. An
// unknown name fails with the full valid-name list, so a caller that
// surfaces the error verbatim (cmd/serve does) never strands the user
// guessing — there is no silent fallback.
func PresetByName(name string) (Preset, error) {
	build, ok := registry[name]
	if !ok {
		return Preset{}, fmt.Errorf("video: unknown preset %q (valid: %s)",
			name, strings.Join(PresetNames(), ", "))
	}
	return build(), nil
}
