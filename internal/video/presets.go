package video

import "repro/internal/dataset"

// KITTIPreset mirrors the KITTI tracking benchmark used by the paper:
// 21 sequences, ~8000 frames total at 10 fps and 1242x375, with Car and
// Pedestrian classes densely labeled. Cars dominate, pedestrians are
// smaller and harder (Section 6.1, Figure 7 discussion).
func KITTIPreset() Preset {
	return Preset{
		Name:         "kitti-sim",
		Width:        1242,
		Height:       375,
		FPS:          10,
		NumSequences: 21,
		FramesPerSeq: 381, // 21 * 381 = 8001 ~ "8008 frames"
		LabelEvery:   1,
		EgoDrift:     2.0,
		HorizonY:     0.45,
		Classes: []ClassSpec{
			{
				Class:            dataset.Car,
				SpawnRate:        0.042,
				MinWidth:         15,
				MaxWidth:         150,
				Aspect:           0.62,
				AspectJitter:     0.08,
				SpeedStd:         2.2,
				GrowthMean:       0.020,
				GrowthStd:        0.012,
				MeanLife:         85,
				OcclusionRate:    0.028,
				OcclusionMeanLen: 10,
				HeavyOcclusionP:  0.45,
			},
			{
				Class:            dataset.Pedestrian,
				SpawnRate:        0.024,
				MinWidth:         8,
				MaxWidth:         48,
				Aspect:           2.4,
				AspectJitter:     0.25,
				SpeedStd:         1.1,
				GrowthMean:       0.013,
				GrowthStd:        0.010,
				MeanLife:         100,
				OcclusionRate:    0.032,
				OcclusionMeanLen: 9,
				HeavyOcclusionP:  0.50,
			},
		},
	}
}

// CityPersonsPreset mirrors CityPersons: 2048x1024 at 30 fps, Person
// only, denser and smaller pedestrians with heavier occlusion, organized
// in 30-frame snippets with only the 20th frame labeled (Section 7.1).
// The detection system runs on every frame; only labeled frames are
// evaluated, and delay cannot be measured.
func CityPersonsPreset() Preset {
	return Preset{
		Name:         "citypersons-sim",
		Width:        2048,
		Height:       1024,
		FPS:          30,
		NumSequences: 120,
		FramesPerSeq: 30,
		LabelEvery:   30,
		LabelOffset:  19, // the 20th frame
		EgoDrift:     1.2,
		HorizonY:     0.48,
		Classes: []ClassSpec{
			{
				Class:            dataset.Pedestrian,
				SpawnRate:        0.11,
				MinWidth:         11,
				MaxWidth:         110,
				Aspect:           2.45,
				AspectJitter:     0.3,
				SpeedStd:         1.6,
				GrowthMean:       0.010,
				GrowthStd:        0.010,
				MeanLife:         75,
				OcclusionRate:    0.040,
				OcclusionMeanLen: 10,
				HeavyOcclusionP:  0.50,
			},
		},
	}
}

// MiniKITTIPreset is a scaled-down KITTI world for fast unit tests and
// the quickstart example: same statistics, 3 sequences of 120 frames.
func MiniKITTIPreset() Preset {
	p := KITTIPreset()
	p.Name = "kitti-mini"
	p.NumSequences = 3
	p.FramesPerSeq = 120
	return p
}
