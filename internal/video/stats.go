package video

import "math"

// WorldStats summarizes the population statistics of one generated
// sequence: the three axes along which the scenario packs are required
// to be distinguishable. All values are deterministic in (preset,
// seed) — Measure is a pure function — so tests can pin exact
// relationships between presets.
type WorldStats struct {
	Frames int `json:"frames"`
	// MeanObjects is the mean number of labeled objects per frame.
	MeanObjects float64 `json:"mean_objects"`
	// MeanHeight is the mean box height in pixels — the size axis the
	// detectors' recall curves key on.
	MeanHeight float64 `json:"mean_height_px"`
	// MeanSpeed is the mean per-object apparent motion in pixels per
	// second: consecutive-frame center displacement of each persisting
	// track, scaled by the preset FPS. Ego motion (camera pan/drift)
	// is included — it is apparent motion the tracker must follow.
	MeanSpeed float64 `json:"mean_speed_px_s"`
}

// Measure generates sequence 0 of the preset at the given seed and
// length and folds it into WorldStats.
func Measure(p Preset, seed int64, frames int) WorldStats {
	g := NewGrower(p, seed, 0)
	g.Grow(frames)
	seq := g.Sequence()
	st := WorldStats{Frames: frames}
	objects, heightSum := 0, 0.0
	moves, moveSum := 0, 0.0
	prev := map[int][2]float64{}
	cur := map[int][2]float64{}
	for f := 0; f < frames && f < len(seq.Frames); f++ {
		for _, o := range seq.Frames[f].Objects {
			objects++
			heightSum += o.Box.Height()
			cx, cy := o.Box.Center()
			if p0, ok := prev[o.TrackID]; ok {
				dx, dy := cx-p0[0], cy-p0[1]
				moveSum += math.Hypot(dx, dy)
				moves++
			}
			cur[o.TrackID] = [2]float64{cx, cy}
		}
		prev, cur = cur, prev
		clear(cur)
	}
	if objects > 0 {
		st.MeanObjects = float64(objects) / float64(st.Frames)
		st.MeanHeight = heightSum / float64(objects)
	}
	if moves > 0 {
		st.MeanSpeed = moveSum / float64(moves) * p.FPS
	}
	return st
}
