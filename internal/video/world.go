// Package video synthesizes ground-truth video sequences with the
// temporal statistics the CaTDet paper relies on: objects enter the
// scene small or at the boundary, move smoothly with ego-camera drift,
// grow as they approach, suffer occlusion episodes, and exit. Pixel
// content is never generated — the detector layer is simulated at the
// bounding-box level — so a sequence is exactly a dataset.Sequence of
// per-frame labeled objects.
//
// Every sequence is deterministic in (preset, seed, sequence index).
package video

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// ClassSpec controls the population model of one object class.
type ClassSpec struct {
	Class dataset.Class

	// SpawnRate is the expected number of new objects per frame.
	SpawnRate float64

	// Spawn geometry: width is drawn log-uniformly in [MinWidth,
	// MaxWidth]; aspect (height/width) is Gaussian around Aspect with
	// AspectJitter std.
	MinWidth, MaxWidth float64
	Aspect             float64
	AspectJitter       float64

	// Motion: per-frame velocity std (pixels/frame) at spawn, and the
	// relative growth rate distribution (mean, std per frame). Positive
	// growth models approaching objects.
	SpeedStd   float64
	GrowthMean float64
	GrowthStd  float64

	// MeanLife is the expected lifetime in frames (exponential);
	// objects also die when they leave the frame.
	MeanLife float64

	// Occlusion: per-frame probability of starting an occlusion
	// episode, the episode's mean length in frames, and the probability
	// that an episode is heavy (KITTI level 2 rather than 1).
	OcclusionRate    float64
	OcclusionMeanLen float64
	HeavyOcclusionP  float64
}

// Preset fully describes a synthetic dataset.
type Preset struct {
	Name   string
	Width  int
	Height int
	FPS    float64

	NumSequences int
	FramesPerSeq int

	// Labeling: a frame f is labeled iff f % LabelEvery == LabelOffset.
	// LabelEvery <= 1 means every frame is labeled (KITTI-style dense
	// annotation).
	LabelEvery  int
	LabelOffset int

	// EgoDrift is the std of the camera's lateral random-walk velocity
	// in pixels/frame; it translates every object coherently.
	EgoDrift float64

	// HorizonY is the vertical center of spawn positions (objects appear
	// around the horizon line), as a fraction of frame height.
	HorizonY float64

	// DetectorNoise scales the detector noise channels (confidence
	// noise, localization jitter, false-positive rate, per-track bias)
	// of every model serving this preset: 0 or 1 means the calibrated
	// daylight profiles, >1 models degraded imaging — low light, rain,
	// motion blur — where the same network sees a harder input
	// distribution. The world's ground truth is unaffected; only the
	// simulated perception degrades. See detector.Profile.ScaleNoise.
	DetectorNoise float64

	Classes []ClassSpec
}

// object is the generator's internal mutable state for one live track.
type object struct {
	id      int
	spec    *ClassSpec
	cx, cy  float64
	w       float64
	aspect  float64
	vx, vy  float64
	growth  float64
	ttl     int // frames of life remaining
	occLeft int // frames of occlusion episode remaining
	occLvl  int
}

// Generate builds the full dataset for the preset. The same (preset,
// seed) always yields the same dataset.
func Generate(p Preset, seed int64) *dataset.Dataset {
	d := &dataset.Dataset{
		Name:    p.Name,
		Classes: classList(p),
	}
	for s := 0; s < p.NumSequences; s++ {
		d.Sequences = append(d.Sequences, *GenerateSequence(p, seed, s))
	}
	return d
}

// GenerateSequence builds a single sequence (index s) of the preset.
func GenerateSequence(p Preset, seed int64, s int) *dataset.Sequence {
	g := NewGrower(p, seed, s)
	g.Grow(p.FramesPerSeq)
	return g.Sequence()
}

// Grower incrementally extends one synthetic sequence. It owns the
// world's live generator state (RNG stream, live objects, ego motion),
// so growing a sequence frame by frame consumes the randomness in
// exactly the order a from-scratch generation at the final length
// would: every frame the grower emits is byte-identical to the same
// frame of GenerateSequence at any sufficient FramesPerSeq (the
// prefix-stability the serving layer's open-ended worlds rely on),
// while extension costs O(new frames) instead of the former
// regenerate-at-doubled-length O(n) per growth step.
type Grower struct {
	g   *generator
	seq *dataset.Sequence
}

// NewGrower prepares the world of sequence s of the preset (warm-up
// included) with zero frames emitted; Preset.FramesPerSeq is ignored —
// callers grow to whatever length they need.
func NewGrower(p Preset, seed int64, s int) *Grower {
	rng := rand.New(rand.NewSource(seed*1_000_003 + int64(s)*7919 + 17))
	seq := &dataset.Sequence{
		ID:     fmt.Sprintf("%s-%04d", p.Name, s),
		Width:  p.Width,
		Height: p.Height,
		FPS:    p.FPS,
	}
	g := &generator{p: p, rng: rng, nextID: 1}

	// Warm-up: populate the scene before frame 0 so sequences do not
	// start empty; objects alive at frame 0 have FirstFrame 0, matching
	// how a real clip starts mid-traffic.
	warm := int(3 * meanLifetime(p))
	for t := 0; t < warm; t++ {
		g.step()
	}
	return &Grower{g: g, seq: seq}
}

// Sequence returns the grown sequence. The same pointer is returned
// every time and Grow extends its Frames in place, so holders (e.g. a
// detection session Reset on it) observe the growth.
func (w *Grower) Sequence() *dataset.Sequence { return w.seq }

// Grow extends the sequence to at least n frames; shorter or equal
// targets are no-ops. Frames already emitted are never touched.
func (w *Grower) Grow(n int) {
	for f := len(w.seq.Frames); f < n; f++ {
		w.g.step()
		frame := dataset.Frame{Index: f, Labeled: isLabeled(w.g.p, f)}
		for _, o := range w.g.live {
			frame.Objects = append(frame.Objects, w.g.observe(o))
		}
		w.seq.Frames = append(w.seq.Frames, frame)
	}
}

type generator struct {
	p      Preset
	rng    *rand.Rand
	live   []*object
	nextID int
	egoVX  float64
}

// step advances the world by one frame: ego drift, motion, lifecycle.
func (g *generator) step() {
	p := g.p
	// Ego velocity random walk, mildly mean-reverting.
	g.egoVX = 0.95*g.egoVX + g.rng.NormFloat64()*p.EgoDrift*0.3

	kept := g.live[:0]
	for _, o := range g.live {
		o.cx += o.vx + g.egoVX
		o.cy += o.vy
		o.w *= 1 + o.growth
		// Velocity and growth wander slightly.
		o.vx += g.rng.NormFloat64() * o.spec.SpeedStd * 0.1
		o.vy += g.rng.NormFloat64() * o.spec.SpeedStd * 0.05
		o.growth += g.rng.NormFloat64() * o.spec.GrowthStd * 0.1
		o.ttl--
		// Occlusion episode lifecycle.
		if o.occLeft > 0 {
			o.occLeft--
			if o.occLeft == 0 {
				o.occLvl = dataset.FullyVisible
			}
		} else if g.rng.Float64() < o.spec.OcclusionRate {
			o.occLeft = 1 + g.rng.Intn(int(2*o.spec.OcclusionMeanLen)+1)
			o.occLvl = dataset.PartlyOccluded
			if g.rng.Float64() < o.spec.HeavyOcclusionP {
				o.occLvl = dataset.LargelyOccluded
			}
		}
		if g.alive(o) {
			kept = append(kept, o)
		}
	}
	g.live = kept

	// Spawns: Poisson via Bernoulli thinning (rates are well below 1).
	for ci := range p.Classes {
		spec := &p.Classes[ci]
		n := poisson(g.rng, spec.SpawnRate)
		for i := 0; i < n; i++ {
			g.live = append(g.live, g.spawn(spec))
		}
	}
}

// alive reports whether the object should stay in the scene.
func (g *generator) alive(o *object) bool {
	if o.ttl <= 0 || o.w < 2 || o.w > float64(g.p.Width) {
		return false
	}
	b := o.box()
	vis := geom.CoverFraction(b, geom.NewBox(0, 0, float64(g.p.Width), float64(g.p.Height)))
	return vis > 0.15
}

// spawn creates a new object of the class. Objects enter either small
// near the horizon (approaching traffic) or at a lateral frame edge.
func (g *generator) spawn(spec *ClassSpec) *object {
	p := g.p
	rng := g.rng
	o := &object{
		id:     g.nextID,
		spec:   spec,
		aspect: math.Max(0.3, spec.Aspect+rng.NormFloat64()*spec.AspectJitter),
		ttl:    1 + int(rng.ExpFloat64()*spec.MeanLife),
	}
	g.nextID++

	logMin, logMax := math.Log(spec.MinWidth), math.Log(spec.MaxWidth)
	fromEdge := rng.Float64() < 0.4
	if fromEdge {
		// Edge entries are larger (nearby objects walking/driving in)
		// and start mostly outside the frame, so they appear heavily
		// truncated at first.
		o.w = math.Exp(logMin + (0.35+0.35*rng.Float64())*(logMax-logMin))
		if rng.Float64() < 0.5 {
			o.cx = -o.w * 0.32
			o.vx = math.Abs(rng.NormFloat64()*spec.SpeedStd) + spec.SpeedStd
		} else {
			o.cx = float64(p.Width) + o.w*0.32
			o.vx = -math.Abs(rng.NormFloat64()*spec.SpeedStd) - spec.SpeedStd
		}
		o.cy = float64(p.Height) * (p.HorizonY + 0.25*rng.Float64())
		o.growth = rng.NormFloat64() * spec.GrowthStd
	} else {
		// Horizon entries start small and mostly grow (approaching).
		o.w = math.Exp(logMin + 0.12*rng.Float64()*(logMax-logMin))
		o.cx = float64(p.Width) * rng.Float64()
		o.cy = float64(p.Height) * (p.HorizonY + 0.1*rng.NormFloat64())
		o.vx = rng.NormFloat64() * spec.SpeedStd
		o.vy = rng.NormFloat64() * spec.SpeedStd * 0.3
		o.growth = math.Abs(spec.GrowthMean + rng.NormFloat64()*spec.GrowthStd)
	}
	return o
}

func (o *object) box() geom.Box {
	return geom.NewBoxCenter(o.cx, o.cy, o.w, o.w*o.aspect)
}

// observe converts internal state to the labeled ground-truth object,
// computing truncation from frame overlap and clipping the box.
func (g *generator) observe(o *object) dataset.Object {
	full := o.box()
	frame := geom.NewBox(0, 0, float64(g.p.Width), float64(g.p.Height))
	clipped := full.Intersect(frame)
	trunc := 0.0
	if full.Area() > 0 {
		trunc = 1 - clipped.Area()/full.Area()
	}
	if trunc < 0 {
		trunc = 0
	}
	if trunc > 1 {
		trunc = 1
	}
	if clipped.Empty() {
		// alive() keeps visibility above 15%, so this should not occur;
		// guard anyway with a sliver at the boundary.
		clipped = geom.NewBox(0, 0, 2, 2)
		trunc = 1
	}
	return dataset.Object{
		TrackID:    o.id,
		Class:      o.spec.Class,
		Box:        clipped,
		Occlusion:  o.occLvl,
		Truncation: trunc,
	}
}

func isLabeled(p Preset, f int) bool {
	if p.LabelEvery <= 1 {
		return true
	}
	return f%p.LabelEvery == p.LabelOffset
}

// Rescale returns a copy of the preset whose per-frame dynamics are
// recalibrated for playback at fps frames per second instead of p.FPS:
// one frame of the rescaled preset advances the world by 1/fps seconds
// of the original preset's per-second statistics. Velocities, growth,
// spawn and occlusion rates scale by p.FPS/fps; lifetimes and episode
// lengths (in frames) scale by the inverse, so mean object lifetime,
// population density and motion in *seconds* are preserved. Rescaling
// to the preset's own rate returns the preset unchanged, so same-rate
// worlds stay byte-identical.
func (p Preset) Rescale(fps float64) Preset {
	if fps <= 0 || p.FPS <= 0 || fps == p.FPS {
		return p
	}
	q := p.FPS / fps // seconds per new frame, in old-frame units
	p.EgoDrift *= q
	classes := make([]ClassSpec, len(p.Classes))
	for i, c := range p.Classes {
		c.SpawnRate *= q
		c.SpeedStd *= q
		c.GrowthMean *= q
		c.GrowthStd *= q
		c.MeanLife /= q
		c.OcclusionRate *= q
		c.OcclusionMeanLen /= q
		classes[i] = c
	}
	p.Classes = classes
	p.FPS = fps
	return p
}

// ClassList returns the preset's class vocabulary in declaration
// order, deduplicated — the same list Generate records on the dataset.
func (p Preset) ClassList() []dataset.Class { return classList(p) }

func classList(p Preset) []dataset.Class {
	seen := map[dataset.Class]bool{}
	var out []dataset.Class
	for _, c := range p.Classes {
		if !seen[c.Class] {
			seen[c.Class] = true
			out = append(out, c.Class)
		}
	}
	return out
}

func meanLifetime(p Preset) float64 {
	if len(p.Classes) == 0 {
		return 1
	}
	total := 0.0
	for _, c := range p.Classes {
		total += c.MeanLife
	}
	return total / float64(len(p.Classes))
}

// poisson draws a Poisson variate via Knuth's method; rates here are
// small (< 1) so this is efficient.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
