package video

import (
	"reflect"
	"strings"
	"testing"
)

// TestRegistryResolvesEveryName pins the registry surface: every
// listed name builds a preset whose native rate and classes are sane,
// and lookups hand out fresh copies (mutating one cannot poison the
// next).
func TestRegistryResolvesEveryName(t *testing.T) {
	want := []string{"citypersons", "crowd", "drone", "highway", "kitti", "mini", "night", "sports"}
	if got := PresetNames(); !reflect.DeepEqual(got, want) {
		t.Fatalf("PresetNames() = %v, want %v", got, want)
	}
	for _, name := range PresetNames() {
		p, err := PresetByName(name)
		if err != nil {
			t.Fatalf("PresetByName(%q): %v", name, err)
		}
		if p.Name == "" || p.FPS <= 0 || len(p.Classes) == 0 || p.Width <= 0 || p.Height <= 0 {
			t.Errorf("preset %q is malformed: %+v", name, p)
		}
		p.Classes[0].SpawnRate = -1
		fresh, _ := PresetByName(name)
		if fresh.Classes[0].SpawnRate < 0 {
			t.Errorf("preset %q: registry handed out a shared Classes slice", name)
		}
	}
}

// TestUnknownPresetListsValidNames pins the no-silent-fallback
// contract: an unknown name fails, and the error carries every valid
// name so the caller can print it verbatim.
func TestUnknownPresetListsValidNames(t *testing.T) {
	_, err := PresetByName("kittty")
	if err == nil {
		t.Fatal("PresetByName accepted an unknown name")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"kittty"`) {
		t.Errorf("error %q does not echo the bad name", msg)
	}
	for _, name := range PresetNames() {
		if !strings.Contains(msg, name) {
			t.Errorf("error %q does not list valid preset %q", msg, name)
		}
	}
}

// TestMeasureDeterministic pins Measure as a pure function of
// (preset, seed): the golden-metrics cross-check in internal/serve
// relies on it.
func TestMeasureDeterministic(t *testing.T) {
	p := HighwayPreset()
	a := Measure(p, 3, 120)
	b := Measure(p, 3, 120)
	if a != b {
		t.Errorf("Measure not deterministic: %+v vs %+v", a, b)
	}
	c := Measure(p, 4, 120)
	if a == c {
		t.Errorf("Measure ignored the seed: %+v", a)
	}
	if a.MeanObjects <= 0 || a.MeanHeight <= 0 || a.MeanSpeed <= 0 {
		t.Errorf("degenerate stats: %+v", a)
	}
}

// TestNightElevatesDetectorNoise pins the night pack's defining knob
// and that rate-rescaling carries it (a 30fps mobile client watching
// the night world still sees night imaging).
func TestNightElevatesDetectorNoise(t *testing.T) {
	p := NightPreset()
	if p.DetectorNoise <= 1 {
		t.Fatalf("night preset DetectorNoise = %v, want > 1", p.DetectorNoise)
	}
	if r := p.Rescale(30); r.DetectorNoise != p.DetectorNoise {
		t.Errorf("Rescale dropped DetectorNoise: %v -> %v", p.DetectorNoise, r.DetectorNoise)
	}
	for _, name := range []string{"kitti", "crowd", "highway", "drone", "sports"} {
		q, err := PresetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if q.DetectorNoise != 0 {
			t.Errorf("preset %q sets DetectorNoise %v; only night models degraded imaging", name, q.DetectorNoise)
		}
	}
}
