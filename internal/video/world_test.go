package video

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func TestGenerateDeterministic(t *testing.T) {
	p := MiniKITTIPreset()
	a := Generate(p, 42)
	b := Generate(p, 42)
	if a.NumObjects() != b.NumObjects() || a.NumFrames() != b.NumFrames() {
		t.Fatal("same seed produced different datasets")
	}
	for si := range a.Sequences {
		for fi := range a.Sequences[si].Frames {
			fa, fb := a.Sequences[si].Frames[fi], b.Sequences[si].Frames[fi]
			if len(fa.Objects) != len(fb.Objects) {
				t.Fatalf("seq %d frame %d object count differs", si, fi)
			}
			for oi := range fa.Objects {
				if fa.Objects[oi] != fb.Objects[oi] {
					t.Fatalf("seq %d frame %d object %d differs", si, fi, oi)
				}
			}
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	p := MiniKITTIPreset()
	a := Generate(p, 1)
	b := Generate(p, 2)
	if a.NumObjects() == b.NumObjects() {
		// Counts could coincide; compare first non-empty frame contents.
		same := true
	outer:
		for si := range a.Sequences {
			for fi := range a.Sequences[si].Frames {
				fa, fb := a.Sequences[si].Frames[fi], b.Sequences[si].Frames[fi]
				if len(fa.Objects) != len(fb.Objects) {
					same = false
					break outer
				}
				for oi := range fa.Objects {
					if fa.Objects[oi] != fb.Objects[oi] {
						same = false
						break outer
					}
				}
			}
		}
		if same {
			t.Fatal("different seeds produced identical datasets")
		}
	}
}

func TestGeneratedDatasetValidates(t *testing.T) {
	d := Generate(MiniKITTIPreset(), 7)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestKITTIPresetShape(t *testing.T) {
	p := KITTIPreset()
	if p.NumSequences != 21 {
		t.Fatalf("KITTI sequences = %d, want 21", p.NumSequences)
	}
	total := p.NumSequences * p.FramesPerSeq
	if total < 7800 || total > 8200 {
		t.Fatalf("KITTI total frames = %d, want ~8008", total)
	}
	if p.Width != 1242 || p.Height != 375 {
		t.Fatalf("KITTI resolution = %dx%d", p.Width, p.Height)
	}
}

func TestKITTIPopulationStatistics(t *testing.T) {
	p := KITTIPreset()
	p.NumSequences = 4
	d := Generate(p, 3)
	frames, objects := 0, 0
	perClass := map[dataset.Class]int{}
	for si := range d.Sequences {
		for fi := range d.Sequences[si].Frames {
			frames++
			objects += len(d.Sequences[si].Frames[fi].Objects)
			for _, o := range d.Sequences[si].Frames[fi].Objects {
				perClass[o.Class]++
			}
		}
	}
	mean := float64(objects) / float64(frames)
	if mean < 2 || mean > 14 {
		t.Fatalf("mean objects/frame = %.2f, want a busy but plausible street scene", mean)
	}
	if perClass[dataset.Car] <= perClass[dataset.Pedestrian] {
		t.Fatalf("cars (%d) should outnumber pedestrians (%d) in the KITTI world",
			perClass[dataset.Car], perClass[dataset.Pedestrian])
	}
}

func TestObjectsStayWithinFrame(t *testing.T) {
	p := MiniKITTIPreset()
	d := Generate(p, 11)
	frame := geom.NewBox(0, 0, float64(p.Width), float64(p.Height))
	for si := range d.Sequences {
		for fi := range d.Sequences[si].Frames {
			for _, o := range d.Sequences[si].Frames[fi].Objects {
				if !frame.ContainsBox(o.Box) {
					t.Fatalf("seq %d frame %d: box %v outside frame", si, fi, o.Box)
				}
			}
		}
	}
}

// Temporal coherence is what CaTDet exploits: the same track in adjacent
// frames must overlap substantially most of the time.
func TestTemporalCoherence(t *testing.T) {
	p := MiniKITTIPreset()
	d := Generate(p, 5)
	var ious []float64
	for si := range d.Sequences {
		seq := &d.Sequences[si]
		for fi := 1; fi < len(seq.Frames); fi++ {
			prev := map[int]geom.Box{}
			for _, o := range seq.Frames[fi-1].Objects {
				prev[o.TrackID] = o.Box
			}
			for _, o := range seq.Frames[fi].Objects {
				if pb, ok := prev[o.TrackID]; ok {
					ious = append(ious, geom.IoU(pb, o.Box))
				}
			}
		}
	}
	if len(ious) < 100 {
		t.Fatalf("too few adjacent-frame pairs: %d", len(ious))
	}
	sum, positive := 0.0, 0
	for _, v := range ious {
		sum += v
		if v > 0.3 {
			positive++
		}
	}
	meanIoU := sum / float64(len(ious))
	fracCoherent := float64(positive) / float64(len(ious))
	if meanIoU < 0.5 {
		t.Fatalf("mean adjacent-frame IoU = %.3f, want >= 0.5", meanIoU)
	}
	if fracCoherent < 0.85 {
		t.Fatalf("only %.0f%% of adjacent-frame pairs overlap > 0.3", 100*fracCoherent)
	}
}

// Tracks must persist: delay measurement needs multi-frame lifetimes.
func TestTrackLifetimes(t *testing.T) {
	p := MiniKITTIPreset()
	d := Generate(p, 9)
	total, count := 0, 0
	for si := range d.Sequences {
		for _, span := range d.Sequences[si].Tracks() {
			total += span.LastFrame - span.FirstFrame + 1
			count++
		}
	}
	if count == 0 {
		t.Fatal("no tracks generated")
	}
	mean := float64(total) / float64(count)
	if mean < 10 {
		t.Fatalf("mean track lifetime = %.1f frames, too short for delay evaluation", mean)
	}
}

// New tracks must keep appearing mid-sequence (the delay metric measures
// time-to-first-detection of *new* objects).
func TestNewTracksAppearMidSequence(t *testing.T) {
	p := MiniKITTIPreset()
	d := Generate(p, 13)
	lateStarts := 0
	for si := range d.Sequences {
		for _, span := range d.Sequences[si].Tracks() {
			if span.FirstFrame > 10 {
				lateStarts++
			}
		}
	}
	if lateStarts < 10 {
		t.Fatalf("only %d tracks start after frame 10; the world is too static", lateStarts)
	}
}

// Objects entering at the horizon must grow over their lifetime, so that
// weak detectors detect them late — the mechanism behind the paper's
// delay differences.
func TestApproachingObjectsGrow(t *testing.T) {
	p := MiniKITTIPreset()
	d := Generate(p, 21)
	grew, shrank := 0, 0
	for si := range d.Sequences {
		seq := &d.Sequences[si]
		first := map[int]float64{}
		last := map[int]float64{}
		for fi := range seq.Frames {
			for _, o := range seq.Frames[fi].Objects {
				if _, ok := first[o.TrackID]; !ok {
					first[o.TrackID] = o.Box.Height()
				}
				last[o.TrackID] = o.Box.Height()
			}
		}
		for id := range first {
			if last[id] > first[id]*1.2 {
				grew++
			} else if last[id] < first[id]*0.8 {
				shrank++
			}
		}
	}
	if grew == 0 {
		t.Fatal("no tracks grew; horizon-entry growth model broken")
	}
	if grew < shrank {
		t.Fatalf("grew=%d < shrank=%d; forward-driving world should mostly grow", grew, shrank)
	}
}

func TestOcclusionEpisodesOccur(t *testing.T) {
	p := KITTIPreset()
	p.NumSequences = 4
	d := Generate(p, 17)
	occ := map[int]int{}
	for si := range d.Sequences {
		for fi := range d.Sequences[si].Frames {
			for _, o := range d.Sequences[si].Frames[fi].Objects {
				occ[o.Occlusion]++
			}
		}
	}
	if occ[dataset.PartlyOccluded] == 0 || occ[dataset.LargelyOccluded] == 0 {
		t.Fatalf("occlusion histogram %v lacks episodes", occ)
	}
	totalOcc := occ[dataset.PartlyOccluded] + occ[dataset.LargelyOccluded]
	frac := float64(totalOcc) / float64(totalOcc+occ[dataset.FullyVisible])
	if frac < 0.02 || frac > 0.5 {
		t.Fatalf("occluded fraction = %.3f, implausible", frac)
	}
}

func TestTruncationAtBoundary(t *testing.T) {
	p := MiniKITTIPreset()
	d := Generate(p, 23)
	truncated := 0
	for si := range d.Sequences {
		for fi := range d.Sequences[si].Frames {
			for _, o := range d.Sequences[si].Frames[fi].Objects {
				if o.Truncation > 0.05 {
					truncated++
					// A truncated object must touch the boundary.
					b := o.Box
					touches := b.X1 <= 1 || b.Y1 <= 1 ||
						b.X2 >= float64(p.Width)-1 || b.Y2 >= float64(p.Height)-1
					if !touches {
						t.Fatalf("truncated object %v not at boundary", o)
					}
				}
			}
		}
	}
	if truncated == 0 {
		t.Fatal("no truncated objects; edge entries broken")
	}
}

func TestCityPersonsSparseLabeling(t *testing.T) {
	p := CityPersonsPreset()
	p.NumSequences = 5
	d := Generate(p, 31)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	for si := range d.Sequences {
		for fi := range d.Sequences[si].Frames {
			f := d.Sequences[si].Frames[fi]
			wantLabeled := fi == 19
			if f.Labeled != wantLabeled {
				t.Fatalf("seq %d frame %d labeled=%v, want %v", si, fi, f.Labeled, wantLabeled)
			}
		}
	}
	if d.NumLabeledFrames() != 5 {
		t.Fatalf("labeled frames = %d, want 5", d.NumLabeledFrames())
	}
	// Person-only dataset.
	for si := range d.Sequences {
		for fi := range d.Sequences[si].Frames {
			for _, o := range d.Sequences[si].Frames[fi].Objects {
				if o.Class != dataset.Pedestrian {
					t.Fatalf("CityPersons world contains class %v", o.Class)
				}
			}
		}
	}
}

func TestCityPersonsHarderThanKITTI(t *testing.T) {
	kp := KITTIPreset()
	kp.NumSequences = 3
	cp := CityPersonsPreset()
	cp.NumSequences = 40
	kitti := Generate(kp, 1)
	city := Generate(cp, 1)

	smallFrac := func(d *dataset.Dataset, h float64, class dataset.Class) float64 {
		small, total := 0, 0
		for si := range d.Sequences {
			for fi := range d.Sequences[si].Frames {
				for _, o := range d.Sequences[si].Frames[fi].Objects {
					if o.Class != class {
						continue
					}
					total++
					if o.Box.Height() < h {
						small++
					}
				}
			}
		}
		if total == 0 {
			return math.NaN()
		}
		return float64(small) / float64(total)
	}
	// CityPersons pedestrians: denser occlusion (fraction occluded).
	occFrac := func(d *dataset.Dataset) float64 {
		occ, total := 0, 0
		for si := range d.Sequences {
			for fi := range d.Sequences[si].Frames {
				for _, o := range d.Sequences[si].Frames[fi].Objects {
					if o.Class != dataset.Pedestrian {
						continue
					}
					total++
					if o.Occlusion > 0 {
						occ++
					}
				}
			}
		}
		if total == 0 {
			return math.NaN()
		}
		return float64(occ) / float64(total)
	}
	if o1, o2 := occFrac(city), occFrac(kitti); !(o1 > o2) {
		t.Fatalf("CityPersons occlusion %.3f should exceed KITTI %.3f", o1, o2)
	}
	_ = smallFrac
}

func TestPoissonMean(t *testing.T) {
	p := MiniKITTIPreset()
	_ = p
	// poisson() is internal; exercise through spawn statistics instead:
	// expected spawns per frame ~ sum of rates.
	kp := KITTIPreset()
	kp.NumSequences = 6
	d := Generate(kp, 99)
	tracks := 0
	for si := range d.Sequences {
		tracks += len(d.Sequences[si].Tracks())
	}
	frames := d.NumFrames()
	rate := float64(tracks) / float64(frames)
	wantRate := 0.0
	for _, c := range kp.Classes {
		wantRate += c.SpawnRate
	}
	// Warm-up population and boundary deaths blur this; accept 2x band.
	if rate < wantRate/2 || rate > wantRate*2.5 {
		t.Fatalf("observed track birth rate %.3f vs configured %.3f", rate, wantRate)
	}
}

// TestRescaleSameRateIdentical pins the byte-identity contract the
// serving layer relies on: rescaling a preset to its own native rate
// (or to a non-positive one) is a no-op, so same-rate worlds never
// move.
func TestRescaleSameRateIdentical(t *testing.T) {
	p := MiniKITTIPreset()
	a := Generate(p, 7)
	b := Generate(p.Rescale(p.FPS), 7)
	c := Generate(p.Rescale(0), 7)
	for _, other := range []*dataset.Dataset{b, c} {
		for si := range a.Sequences {
			fa, fo := a.Sequences[si].Frames, other.Sequences[si].Frames
			if len(fa) != len(fo) {
				t.Fatalf("seq %d frame count differs", si)
			}
			for fi := range fa {
				if len(fa[fi].Objects) != len(fo[fi].Objects) {
					t.Fatalf("seq %d frame %d differs after no-op rescale", si, fi)
				}
				for oi := range fa[fi].Objects {
					if fa[fi].Objects[oi] != fo[fi].Objects[oi] {
						t.Fatalf("seq %d frame %d object %d differs after no-op rescale", si, fi, oi)
					}
				}
			}
		}
	}
}

// TestGeneratePrefixStable pins the grow-on-demand property of the
// serving layer's lazy worlds: generating a longer sequence keeps every
// earlier frame byte-identical, so a world can be extended mid-run.
func TestGeneratePrefixStable(t *testing.T) {
	p := MiniKITTIPreset()
	short := GenerateSequence(p, 7, 1)
	p.FramesPerSeq *= 3
	long := GenerateSequence(p, 7, 1)
	for fi := range short.Frames {
		fs, fl := short.Frames[fi], long.Frames[fi]
		if len(fs.Objects) != len(fl.Objects) {
			t.Fatalf("frame %d object count changed when the sequence grew", fi)
		}
		for oi := range fs.Objects {
			if fs.Objects[oi] != fl.Objects[oi] {
				t.Fatalf("frame %d object %d changed when the sequence grew", fi, oi)
			}
		}
	}
}

// TestGrowerMatchesGenerate pins incremental growth against
// from-scratch generation: growing a sequence in small irregular
// chunks yields frames byte-identical to GenerateSequence at the final
// length, and Grow never disturbs frames already emitted.
func TestGrowerMatchesGenerate(t *testing.T) {
	p := MiniKITTIPreset()
	const total = 97
	pLong := p
	pLong.FramesPerSeq = total
	want := GenerateSequence(pLong, 7, 1)

	g := NewGrower(p, 7, 1)
	seq := g.Sequence()
	if len(seq.Frames) != 0 {
		t.Fatalf("fresh grower has %d frames, want 0", len(seq.Frames))
	}
	for _, target := range []int{1, 2, 7, 7, 30, 29, 64, total} { // repeats and shrinks are no-ops
		g.Grow(target)
	}
	if g.Sequence() != seq {
		t.Fatal("Grow moved the sequence pointer")
	}
	if len(seq.Frames) != total {
		t.Fatalf("grown to %d frames, want %d", len(seq.Frames), total)
	}
	if seq.ID != want.ID || seq.Width != want.Width || seq.Height != want.Height || seq.FPS != want.FPS {
		t.Fatal("sequence identity differs from GenerateSequence")
	}
	for fi := range want.Frames {
		fw, fg := want.Frames[fi], seq.Frames[fi]
		if fw.Index != fg.Index || fw.Labeled != fg.Labeled || len(fw.Objects) != len(fg.Objects) {
			t.Fatalf("frame %d header/object count differs from from-scratch generation", fi)
		}
		for oi := range fw.Objects {
			if fw.Objects[oi] != fg.Objects[oi] {
				t.Fatalf("frame %d object %d differs from from-scratch generation", fi, oi)
			}
		}
	}
}

// TestRescalePreservesPerSecondStats generates the same world at the
// native rate and at 3x the frame rate and compares per-second
// statistics: object density per frame (a per-instant quantity) and
// mean track lifetime in seconds must agree within sampling noise, and
// per-second displacement of tracked objects must match in scale.
func TestRescalePreservesPerSecondStats(t *testing.T) {
	base := KITTIPreset()
	base.NumSequences = 4
	base.FramesPerSeq = 600
	fast := base.Rescale(3 * base.FPS)
	fast.FramesPerSeq = 3 * base.FramesPerSeq

	type stats struct{ density, lifeSec, speedSec float64 }
	collect := func(p Preset) stats {
		ds := Generate(p, 11)
		var objs, frames int
		first := map[[2]int]int{} // (seq, track) -> first frame
		last := map[[2]int]int{}  // (seq, track) -> last frame
		firstX := map[[2]int]float64{}
		lastX := map[[2]int]float64{}
		for si := range ds.Sequences {
			for fi, fr := range ds.Sequences[si].Frames {
				frames++
				objs += len(fr.Objects)
				for _, o := range fr.Objects {
					key := [2]int{si, o.TrackID}
					if _, ok := first[key]; !ok {
						first[key] = fi
						firstX[key] = centerX(o.Box)
					}
					last[key] = fi
					lastX[key] = centerX(o.Box)
				}
			}
		}
		var lifeFrames, disp float64
		var tracks int
		for key, f0 := range first {
			span := last[key] - f0
			if span < int(p.FPS) { // ignore sub-second flickers
				continue
			}
			lifeFrames += float64(span)
			disp += math.Abs(lastX[key]-firstX[key]) / (float64(span) / p.FPS)
			tracks++
		}
		return stats{
			density:  float64(objs) / float64(frames),
			lifeSec:  lifeFrames / float64(tracks) / p.FPS,
			speedSec: disp / float64(tracks),
		}
	}

	a, b := collect(base), collect(fast)
	within := func(name string, x, y, tol float64) {
		t.Helper()
		if ratio := x / y; ratio < 1-tol || ratio > 1+tol {
			t.Errorf("%s diverged after rescale: native %.3f vs 3x %.3f", name, x, y)
		}
	}
	within("object density", a.density, b.density, 0.25)
	within("mean lifetime (s)", a.lifeSec, b.lifeSec, 0.25)
	within("per-second speed", a.speedSec, b.speedSec, 0.35)
}

func centerX(b geom.Box) float64 { x, _ := b.Center(); return x }
