package video

import "repro/internal/dataset"

// Scenario preset packs: synthetic worlds with deliberately different
// statistics from the KITTI/CityPersons family, so the serving layer's
// backpressure, degrade and scheduling policies are exercised under
// genuinely heterogeneous workloads instead of one. Each pack is a
// plain Preset — deterministic in (preset, seed, sequence) like every
// other world — and each is calibrated to be statistically
// distinguishable from the rest in at least one of mean object count,
// mean object size and mean object speed (pinned by the golden-metrics
// cross-check in internal/serve).

// CrowdSurgePreset models a dense pedestrian surge — a station
// concourse or stadium exit. Many small-to-medium people at shuffling
// speeds with long dwell times and constant mutual occlusion; the
// camera is near-static. The load profile is the opposite of KITTI:
// per-frame object count is an order of magnitude higher, so proposal
// counts, region merging and NMS all run hot.
func CrowdSurgePreset() Preset {
	return Preset{
		Name:         "crowd-surge",
		Width:        1920,
		Height:       1080,
		FPS:          25,
		NumSequences: 24,
		FramesPerSeq: 250,
		LabelEvery:   1,
		EgoDrift:     0.4,
		HorizonY:     0.42,
		Classes: []ClassSpec{
			{
				Class:            dataset.Pedestrian,
				SpawnRate:        0.55,
				MinWidth:         12,
				MaxWidth:         70,
				Aspect:           2.4,
				AspectJitter:     0.25,
				SpeedStd:         0.8,
				GrowthMean:       0.004,
				GrowthStd:        0.004,
				MeanLife:         160,
				OcclusionRate:    0.09,
				OcclusionMeanLen: 14,
				HeavyOcclusionP:  0.6,
			},
		},
	}
}

// HighwayPreset models a roadside highway camera: sparse but fast
// traffic, objects small (distant, foreshortened) and short-lived —
// a car crosses the field of view in a second or two. High closing
// speeds stress the tracker's motion model and make stale frames
// worthless quickly.
func HighwayPreset() Preset {
	return Preset{
		Name:         "highway-speed",
		Width:        1280,
		Height:       720,
		FPS:          30,
		NumSequences: 24,
		FramesPerSeq: 300,
		LabelEvery:   1,
		EgoDrift:     3.5,
		HorizonY:     0.40,
		Classes: []ClassSpec{
			{
				Class:            dataset.Car,
				SpawnRate:        0.09,
				MinWidth:         8,
				MaxWidth:         60,
				Aspect:           0.60,
				AspectJitter:     0.08,
				SpeedStd:         6.5,
				GrowthMean:       0.030,
				GrowthStd:        0.015,
				MeanLife:         38,
				OcclusionRate:    0.015,
				OcclusionMeanLen: 4,
				HeavyOcclusionP:  0.3,
			},
		},
	}
}

// DronePreset models a top-down drone survey at fixed altitude: tiny
// objects of near-constant size (no approach growth), negligible
// occlusion (nothing overlaps from above), smooth nadir motion. Both
// classes appear; everything sits near the detector's recall floor,
// so small-object sensitivity dominates accuracy.
func DronePreset() Preset {
	return Preset{
		Name:         "drone-topdown",
		Width:        1024,
		Height:       1024,
		FPS:          24,
		NumSequences: 24,
		FramesPerSeq: 240,
		LabelEvery:   1,
		EgoDrift:     1.6,
		HorizonY:     0.50,
		Classes: []ClassSpec{
			{
				Class:            dataset.Car,
				SpawnRate:        0.11,
				MinWidth:         7,
				MaxWidth:         26,
				Aspect:           1.0,
				AspectJitter:     0.12,
				SpeedStd:         1.6,
				GrowthMean:       0.0,
				GrowthStd:        0.002,
				MeanLife:         140,
				OcclusionRate:    0.002,
				OcclusionMeanLen: 2,
				HeavyOcclusionP:  0.1,
			},
			{
				Class:            dataset.Pedestrian,
				SpawnRate:        0.07,
				MinWidth:         5,
				MaxWidth:         14,
				Aspect:           1.0,
				AspectJitter:     0.15,
				SpeedStd:         0.7,
				GrowthMean:       0.0,
				GrowthStd:        0.002,
				MeanLife:         170,
				OcclusionRate:    0.002,
				OcclusionMeanLen: 2,
				HeavyOcclusionP:  0.1,
			},
		},
	}
}

// NightPreset models a low-light urban intersection at a low capture
// rate (long exposures): sparse, larger objects — only nearby,
// headlight-lit traffic registers — moving moderately. The scene
// statistics are easy; the catch is DetectorNoise: every model's
// confidence noise, localization jitter, false-positive rate and
// per-track bias run at 2.5x their calibrated daylight values, so the
// serving layer sees cheap frames with unreliable perception.
func NightPreset() Preset {
	return Preset{
		Name:          "night-lowlight",
		Width:         1280,
		Height:        720,
		FPS:           12,
		NumSequences:  24,
		FramesPerSeq:  150,
		LabelEvery:    1,
		EgoDrift:      1.0,
		HorizonY:      0.45,
		DetectorNoise: 2.5,
		Classes: []ClassSpec{
			{
				Class:            dataset.Car,
				SpawnRate:        0.016,
				MinWidth:         28,
				MaxWidth:         170,
				Aspect:           0.62,
				AspectJitter:     0.08,
				SpeedStd:         1.9,
				GrowthMean:       0.016,
				GrowthStd:        0.010,
				MeanLife:         70,
				OcclusionRate:    0.02,
				OcclusionMeanLen: 8,
				HeavyOcclusionP:  0.4,
			},
			{
				Class:            dataset.Pedestrian,
				SpawnRate:        0.008,
				MinWidth:         18,
				MaxWidth:         80,
				Aspect:           2.4,
				AspectJitter:     0.25,
				SpeedStd:         0.9,
				GrowthMean:       0.010,
				GrowthStd:        0.008,
				MeanLife:         80,
				OcclusionRate:    0.025,
				OcclusionMeanLen: 8,
				HeavyOcclusionP:  0.5,
			},
		},
	}
}

// SportsPanPreset models a broadcast sports camera: a moderate number
// of medium-sized players at sprint speeds, with the dominant motion
// being the camera itself — fast pans sweep every object coherently
// across the frame at tens of pixels per frame, truncating tracks at
// the frame edge. High capture rate, violent apparent motion.
func SportsPanPreset() Preset {
	return Preset{
		Name:         "sports-pan",
		Width:        1920,
		Height:       1080,
		FPS:          50,
		NumSequences: 24,
		FramesPerSeq: 500,
		LabelEvery:   1,
		EgoDrift:     9.0,
		HorizonY:     0.55,
		Classes: []ClassSpec{
			{
				Class:            dataset.Pedestrian,
				SpawnRate:        0.08,
				MinWidth:         22,
				MaxWidth:         95,
				Aspect:           2.2,
				AspectJitter:     0.2,
				SpeedStd:         3.5,
				GrowthMean:       0.002,
				GrowthStd:        0.006,
				MeanLife:         70,
				OcclusionRate:    0.05,
				OcclusionMeanLen: 5,
				HeavyOcclusionP:  0.35,
			},
		},
	}
}
