package serve

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/video"
)

// testConfig is a small CaTDet scenario on the mini world; tests tweak
// the returned copy.
func testConfig() Config {
	return Config{
		Spec: sim.SystemSpec{
			Kind: sim.CaTDet, Proposal: "resnet10a", Refinement: "resnet50",
			Cfg: core.DefaultConfig(),
		},
		Preset:   video.MiniKITTIPreset(),
		Seed:     1,
		Streams:  4,
		FPS:      15,
		Arrivals: Poisson,
		Duration: 4,
	}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func marshal(t *testing.T, r *Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDeterminism reruns the same scenario at 1, 2 and 8 executors and
// requires byte-identical JSON each time: the event loop has no hidden
// scheduling, wall-clock or map-order dependence.
func TestDeterminism(t *testing.T) {
	for _, executors := range []int{1, 2, 8} {
		cfg := testConfig()
		cfg.Executors = executors
		first := marshal(t, mustRun(t, cfg))
		again := marshal(t, mustRun(t, cfg))
		if !bytes.Equal(first, again) {
			t.Errorf("executors=%d: rerun not byte-identical\n first: %s\nsecond: %s",
				executors, first, again)
		}
	}
}

// TestMoreExecutorsServeNoLess sanity-checks the fleet axis: adding
// executors to an overloaded fleet cannot reduce the served count.
func TestMoreExecutorsServeNoLess(t *testing.T) {
	cfg := testConfig()
	cfg.Executors = 1
	one := mustRun(t, cfg)
	cfg.Executors = 4
	four := mustRun(t, cfg)
	if four.Fleet.Served < one.Fleet.Served {
		t.Errorf("served fell from %d to %d when executors went 1 -> 4",
			one.Fleet.Served, four.Fleet.Served)
	}
	if one.Fleet.Arrived != four.Fleet.Arrived {
		t.Errorf("offered load changed with executors: %d vs %d arrivals",
			one.Fleet.Arrived, four.Fleet.Arrived)
	}
}

// TestOverloadDropBoundedTail overloads one executor far past capacity
// and asserts the backpressure policies engage: frames drop, the queue
// respects its cap, and p99 stays bounded by staleness + one service.
func TestOverloadDropBoundedTail(t *testing.T) {
	cfg := testConfig()
	cfg.Streams = 6
	cfg.FPS = 30
	cfg.Executors = 1
	cfg.QueueCap = 4
	cfg.MaxStaleness = 0.3
	one := mustRun(t, cfg)

	if one.Fleet.DroppedQueue == 0 {
		t.Error("overload did not engage the queue drop policy")
	}
	if one.Fleet.DropRate <= 0 {
		t.Errorf("drop rate %v under 6x30fps on one executor", one.Fleet.DropRate)
	}
	if one.MaxQueueDepth > cfg.QueueCap+1 {
		t.Errorf("queue depth %d exceeded cap %d", one.MaxQueueDepth, cfg.QueueCap)
	}
	// A served frame waits at most MaxStaleness (else it is skipped at
	// admission) and then runs for at most MaxService.
	bound := cfg.MaxStaleness + one.MaxService + 1e-9
	if one.Fleet.Latency.P99 > bound {
		t.Errorf("p99 %v not bounded by staleness+service %v", one.Fleet.Latency.P99, bound)
	}
	if one.Fleet.Latency.Max > bound {
		t.Errorf("max latency %v not bounded by staleness+service %v", one.Fleet.Latency.Max, bound)
	}
}

// TestDropNewestRespectsCap checks the tail-drop variant: the queue
// never grows past its cap and drops are charged to arriving frames.
func TestDropNewestRespectsCap(t *testing.T) {
	cfg := testConfig()
	cfg.Streams = 6
	cfg.FPS = 30
	cfg.Executors = 1
	cfg.QueueCap = 2
	cfg.Drop = DropNewest
	r := mustRun(t, cfg)
	if r.MaxQueueDepth > cfg.QueueCap+1 {
		t.Errorf("queue depth %d exceeded cap %d", r.MaxQueueDepth, cfg.QueueCap)
	}
	if r.Fleet.DroppedQueue == 0 {
		t.Error("tail drop never engaged under overload")
	}
}

// TestDegradeShedsLoad checks the proposal-only degraded mode: under
// overload it engages, and shedding the refinement pass lets the fleet
// serve strictly more frames than the same scenario without it.
func TestDegradeShedsLoad(t *testing.T) {
	cfg := testConfig()
	cfg.Streams = 6
	cfg.FPS = 30
	cfg.Executors = 1
	cfg.QueueCap = 8
	full := mustRun(t, cfg)
	cfg.DegradeDepth = 2
	degraded := mustRun(t, cfg)

	if degraded.Fleet.Degraded == 0 {
		t.Fatal("degrade policy never engaged under overload")
	}
	if degraded.Fleet.Served <= full.Fleet.Served {
		t.Errorf("degraded fleet served %d <= full fleet %d",
			degraded.Fleet.Served, full.Fleet.Served)
	}
}

// TestSingleModelCostsMore compares CaTDet against the single Res50
// model under the same light load: the cascade's p50 must undercut the
// single model's, which is the serving-layer restatement of Table 7.
func TestSingleModelCostsMore(t *testing.T) {
	cfg := testConfig()
	cfg.Streams = 1
	cfg.FPS = 2 // light load: latency ~ service time
	cat := mustRun(t, cfg)

	cfg.Spec = sim.SystemSpec{Kind: sim.Single, Refinement: "resnet50"}
	single := mustRun(t, cfg)

	if single.Fleet.Degraded != 0 {
		t.Errorf("single-model stream reported %d degraded frames; degrade must not apply", single.Fleet.Degraded)
	}
	if cat.Fleet.Latency.P50 >= single.Fleet.Latency.P50 {
		t.Errorf("CaTDet p50 %v not below single-model p50 %v",
			cat.Fleet.Latency.P50, single.Fleet.Latency.P50)
	}
}

// TestArrivalScheduleIndependentOfFleet pins the open-loop property:
// policies and executors never change the offered load.
func TestArrivalScheduleIndependentOfFleet(t *testing.T) {
	cfg := testConfig()
	cfg.Executors = 1
	base := mustRun(t, cfg)
	cfg.Executors = 8
	cfg.QueueCap = 1
	cfg.MaxStaleness = 0.01
	cfg.DegradeDepth = 1
	stressed := mustRun(t, cfg)
	for i := range base.PerStream {
		if base.PerStream[i].Arrived != stressed.PerStream[i].Arrived {
			t.Errorf("stream %d offered load changed: %d vs %d",
				i, base.PerStream[i].Arrived, stressed.PerStream[i].Arrived)
		}
	}
}

// TestConfigValidation rejects the invalid corners.
func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("Run accepted a zero Config without a system spec")
	}
	cfg := testConfig()
	cfg.Arrivals = "bursty"
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted an unknown arrival process")
	}
	cfg = testConfig()
	cfg.Drop = "drop-random"
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted an unknown drop policy")
	}
	cfg = testConfig()
	cfg.Spec.Refinement = "no-such-model"
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted an unknown refinement model")
	}
}
