package serve

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/core"
	"repro/internal/serve/sched"
	"repro/internal/sim"
	"repro/internal/video"
)

// testConfig is a small CaTDet scenario on the mini world; tests tweak
// the returned copy.
func testConfig() Config {
	return Config{
		Spec: sim.SystemSpec{
			Kind: sim.CaTDet, Proposal: "resnet10a", Refinement: "resnet50",
			Cfg: core.DefaultConfig(),
		},
		Preset:   video.MiniKITTIPreset(),
		Seed:     1,
		Streams:  4,
		FPS:      15,
		Arrivals: Poisson,
		Duration: 4,
	}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func marshal(t *testing.T, r *Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestDeterminism reruns the same scenario under every scheduler, at
// 1, 2 and 8 executors, at batch sizes 1 and 4, and at step-worker
// counts 1, 2 and 8, and requires byte-identical JSON each time: no
// policy's event loop has hidden scheduling, wall-clock or map-order
// dependence, and the parallel step fan-out merges back into exactly
// the serial engine's output (workers=1 is the fully serial path the
// golden files pin).
func TestDeterminism(t *testing.T) {
	for _, kind := range []sched.Kind{sched.FIFO, sched.Fair, sched.Priority, sched.EDF} {
		for _, executors := range []int{1, 2, 8} {
			for _, batch := range []int{1, 4} {
				cfg := testConfig()
				cfg.Scheduler = kind
				cfg.Executors = executors
				cfg.BatchSize = batch
				cfg.MaxStaleness = 0.4
				if kind == sched.Priority {
					cfg.Priorities = []int{1, 0, 1, 0}
				}
				cfg.StepWorkers = 1
				first := marshal(t, mustRun(t, cfg))
				again := marshal(t, mustRun(t, cfg))
				if !bytes.Equal(first, again) {
					t.Errorf("sched=%s executors=%d batch=%d: rerun not byte-identical\n first: %s\nsecond: %s",
						kind, executors, batch, first, again)
				}
				for _, workers := range []int{2, 8} {
					cfg.StepWorkers = workers
					par := marshal(t, mustRun(t, cfg))
					if !bytes.Equal(first, par) {
						t.Errorf("sched=%s executors=%d batch=%d: StepWorkers=%d not byte-identical to serial\nserial:   %s\nparallel: %s",
							kind, executors, batch, workers, first, par)
					}
				}
			}
		}
	}
}

// TestMoreExecutorsServeNoLess sanity-checks the fleet axis: adding
// executors to an overloaded fleet cannot reduce the served count.
func TestMoreExecutorsServeNoLess(t *testing.T) {
	cfg := testConfig()
	cfg.Executors = 1
	one := mustRun(t, cfg)
	cfg.Executors = 4
	four := mustRun(t, cfg)
	if four.Fleet.Served < one.Fleet.Served {
		t.Errorf("served fell from %d to %d when executors went 1 -> 4",
			one.Fleet.Served, four.Fleet.Served)
	}
	if one.Fleet.Arrived != four.Fleet.Arrived {
		t.Errorf("offered load changed with executors: %d vs %d arrivals",
			one.Fleet.Arrived, four.Fleet.Arrived)
	}
}

// TestOverloadDropBoundedTail overloads one executor far past capacity
// and asserts the backpressure policies engage: frames drop, the queue
// respects its cap, and p99 stays bounded by staleness + one service.
func TestOverloadDropBoundedTail(t *testing.T) {
	cfg := testConfig()
	cfg.Streams = 6
	cfg.FPS = 30
	cfg.Executors = 1
	cfg.QueueCap = 4
	cfg.MaxStaleness = 0.3
	one := mustRun(t, cfg)

	if one.Fleet.DroppedQueue == 0 {
		t.Error("overload did not engage the queue drop policy")
	}
	if one.Fleet.DropRate <= 0 {
		t.Errorf("drop rate %v under 6x30fps on one executor", one.Fleet.DropRate)
	}
	if one.MaxQueueDepth > cfg.QueueCap+1 {
		t.Errorf("queue depth %d exceeded cap %d", one.MaxQueueDepth, cfg.QueueCap)
	}
	// A served frame waits at most MaxStaleness (else it is skipped at
	// admission) and then runs for at most MaxService.
	bound := cfg.MaxStaleness + one.MaxService + 1e-9
	if one.Fleet.Latency.P99 > bound {
		t.Errorf("p99 %v not bounded by staleness+service %v", one.Fleet.Latency.P99, bound)
	}
	if one.Fleet.Latency.Max > bound {
		t.Errorf("max latency %v not bounded by staleness+service %v", one.Fleet.Latency.Max, bound)
	}
}

// TestDropNewestRespectsCap checks the tail-drop variant: the queue
// never grows past its cap and drops are charged to arriving frames.
func TestDropNewestRespectsCap(t *testing.T) {
	cfg := testConfig()
	cfg.Streams = 6
	cfg.FPS = 30
	cfg.Executors = 1
	cfg.QueueCap = 2
	cfg.Drop = DropNewest
	r := mustRun(t, cfg)
	if r.MaxQueueDepth > cfg.QueueCap+1 {
		t.Errorf("queue depth %d exceeded cap %d", r.MaxQueueDepth, cfg.QueueCap)
	}
	if r.Fleet.DroppedQueue == 0 {
		t.Error("tail drop never engaged under overload")
	}
}

// TestDegradeShedsLoad checks the proposal-only degraded mode: under
// overload it engages, and shedding the refinement pass lets the fleet
// serve strictly more frames than the same scenario without it.
func TestDegradeShedsLoad(t *testing.T) {
	cfg := testConfig()
	cfg.Streams = 6
	cfg.FPS = 30
	cfg.Executors = 1
	cfg.QueueCap = 8
	full := mustRun(t, cfg)
	cfg.DegradeDepth = 2
	degraded := mustRun(t, cfg)

	if degraded.Fleet.Degraded == 0 {
		t.Fatal("degrade policy never engaged under overload")
	}
	if degraded.Fleet.Served <= full.Fleet.Served {
		t.Errorf("degraded fleet served %d <= full fleet %d",
			degraded.Fleet.Served, full.Fleet.Served)
	}
}

// TestSingleModelCostsMore compares CaTDet against the single Res50
// model under the same light load: the cascade's p50 must undercut the
// single model's, which is the serving-layer restatement of Table 7.
func TestSingleModelCostsMore(t *testing.T) {
	cfg := testConfig()
	cfg.Streams = 1
	cfg.FPS = 2 // light load: latency ~ service time
	cat := mustRun(t, cfg)

	cfg.Spec = sim.SystemSpec{Kind: sim.Single, Refinement: "resnet50"}
	single := mustRun(t, cfg)

	if single.Fleet.Degraded != 0 {
		t.Errorf("single-model stream reported %d degraded frames; degrade must not apply", single.Fleet.Degraded)
	}
	if cat.Fleet.Latency.P50 >= single.Fleet.Latency.P50 {
		t.Errorf("CaTDet p50 %v not below single-model p50 %v",
			cat.Fleet.Latency.P50, single.Fleet.Latency.P50)
	}
}

// TestArrivalScheduleIndependentOfFleet pins the open-loop property:
// policies and executors never change the offered load.
func TestArrivalScheduleIndependentOfFleet(t *testing.T) {
	cfg := testConfig()
	cfg.Executors = 1
	base := mustRun(t, cfg)
	cfg.Executors = 8
	cfg.QueueCap = 1
	cfg.MaxStaleness = 0.01
	cfg.DegradeDepth = 1
	stressed := mustRun(t, cfg)
	for i := range base.PerStream {
		if base.PerStream[i].Arrived != stressed.PerStream[i].Arrived {
			t.Errorf("stream %d offered load changed: %d vs %d",
				i, base.PerStream[i].Arrived, stressed.PerStream[i].Arrived)
		}
	}
}

// TestMetricHorizon pins the one-horizon semantics this PR fixes: in
// an overloaded fleet whose drain extends well past Duration, every
// time-averaged metric — throughput, average queue depth, utilization
// — is normalized over the makespan (LastEventAt), not over the
// offered-load window.
func TestMetricHorizon(t *testing.T) {
	cfg := testConfig()
	cfg.Streams = 6
	cfg.FPS = 30
	cfg.Executors = 1
	cfg.QueueCap = -1 // unbounded: the queue drains long after load ends
	r := mustRun(t, cfg)

	if r.LastEventAt <= r.Duration {
		t.Fatalf("drain did not extend past Duration: makespan %v <= %v (scenario not overloaded?)",
			r.LastEventAt, r.Duration)
	}
	wantTput := float64(r.Fleet.Served) / r.LastEventAt
	if r.Fleet.Throughput != wantTput {
		t.Errorf("fleet throughput %v != served/makespan %v", r.Fleet.Throughput, wantTput)
	}
	for _, st := range r.PerStream {
		if want := float64(st.Served) / r.LastEventAt; st.Throughput != want {
			t.Errorf("%s throughput %v != served/makespan %v", st.ID, st.Throughput, want)
		}
	}
	// One executor saturated for (almost) the whole makespan: the busy
	// integral over the same horizon must be near 1, and can never
	// exceed it. (Under the old Duration-based horizon this quantity
	// was inconsistent with throughput by the drain factor.)
	if r.Utilization > 1 || r.Utilization < 0.9 {
		t.Errorf("utilization %v outside (0.9, 1] for a saturated executor over the makespan", r.Utilization)
	}
	if r.AvgQueueDepth <= 0 {
		t.Errorf("avg queue depth %v not positive under overload", r.AvgQueueDepth)
	}
}

// TestFairBoundsStarvation drives one hot Poisson stream against five
// quiet ones on a saturated two-executor fleet. Under the shared FIFO
// the hot stream's frames flood the queue and the quiet streams starve
// along with it; fair gives each stream its round-robin share and
// evicts from the longest (hot) backlog, so every quiet stream keeps a
// strictly lower drop rate and the hot stream absorbs its own burst.
// (The hot stream's world is generated at its own 60 fps rate — the
// per-stream recalibration this PR adds — so its frame content matches
// its cadence.)
func TestFairBoundsStarvation(t *testing.T) {
	cfg := testConfig()
	cfg.Streams = 6
	cfg.FPS = 12
	cfg.StreamFPS = []float64{60, 12, 12, 12, 12, 12}
	cfg.Executors = 2
	cfg.Duration = 10
	cfg.MaxStaleness = 0.8

	cfg.Scheduler = sched.FIFO
	fifo := mustRun(t, cfg)
	cfg.Scheduler = sched.Fair
	fair := mustRun(t, cfg)

	if fifo.Fleet.Arrived != fair.Fleet.Arrived {
		t.Fatalf("offered load changed with the scheduler: %d vs %d", fifo.Fleet.Arrived, fair.Fleet.Arrived)
	}
	if fair.PerStream[0].DropRate <= fifo.PerStream[0].DropRate {
		t.Errorf("hot stream drop rate %v under fair not above fifo's %v (burst not absorbed by the burster)",
			fair.PerStream[0].DropRate, fifo.PerStream[0].DropRate)
	}
	for s := 1; s < cfg.Streams; s++ {
		if fair.PerStream[s].DropRate >= fifo.PerStream[s].DropRate {
			t.Errorf("quiet stream %d: fair drop rate %v not below fifo's %v",
				s, fair.PerStream[s].DropRate, fifo.PerStream[s].DropRate)
		}
	}
}

// TestFairReducesDropSpread pins the acceptance scenario: equal-rate
// bursty Poisson streams overloading one executor. FIFO sheds by queue
// luck, so per-stream drop rates scatter; fair's round-robin service
// plus longest-queue eviction is a feedback equalizer, and the max-min
// drop-rate spread contracts.
func TestFairReducesDropSpread(t *testing.T) {
	cfg := testConfig()
	cfg.Streams = 6
	cfg.FPS = 20
	cfg.Executors = 1
	cfg.Duration = 10
	cfg.MaxStaleness = 0.4

	cfg.Scheduler = sched.FIFO
	fifo := mustRun(t, cfg)
	cfg.Scheduler = sched.Fair
	fair := mustRun(t, cfg)

	if fair.DropSpread() >= fifo.DropSpread() {
		t.Errorf("fair drop-rate spread %v not below fifo's %v", fair.DropSpread(), fifo.DropSpread())
	}
}

// TestEDFDropsFewerStale compares EDF against FIFO under tail drop at
// equal load: FIFO keeps doomed head-of-line frames that expire as
// stale drops at admission, while EDF's overflow evicts the earliest
// deadline — the frame nearest expiry — so far fewer frames rot in the
// queue.
func TestEDFDropsFewerStale(t *testing.T) {
	cfg := testConfig()
	cfg.Streams = 6
	cfg.FPS = 20
	cfg.Executors = 1
	cfg.Duration = 8
	cfg.QueueCap = 12
	cfg.MaxStaleness = 0.25
	cfg.Drop = DropNewest

	cfg.Scheduler = sched.FIFO
	fifo := mustRun(t, cfg)
	cfg.Scheduler = sched.EDF
	edf := mustRun(t, cfg)

	if fifo.Fleet.Arrived != edf.Fleet.Arrived {
		t.Fatalf("offered load changed with the scheduler: %d vs %d", fifo.Fleet.Arrived, edf.Fleet.Arrived)
	}
	if fifo.Fleet.DroppedStale == 0 {
		t.Fatal("scenario never engaged the stale skip under fifo; it cannot discriminate")
	}
	if edf.Fleet.DroppedStale >= fifo.Fleet.DroppedStale {
		t.Errorf("EDF dropped %d stale frames, fifo %d; EDF must drop fewer at equal load",
			edf.Fleet.DroppedStale, fifo.Fleet.DroppedStale)
	}
}

// TestPriorityProtectsHighClass checks the priority scheduler under
// overload: per-class stats are emitted, the classes partition the
// fleet, and the high class keeps a lower drop rate than the low one.
func TestPriorityProtectsHighClass(t *testing.T) {
	cfg := testConfig()
	cfg.Streams = 6
	cfg.FPS = 20
	cfg.Executors = 1
	cfg.Duration = 6
	cfg.MaxStaleness = 0.4
	cfg.Scheduler = sched.Priority
	cfg.Priorities = []int{1, 1, 1, 0, 0, 0}
	r := mustRun(t, cfg)

	if len(r.PerClass) != 2 {
		t.Fatalf("PerClass has %d rows, want 2", len(r.PerClass))
	}
	hi, lo := r.PerClass[0], r.PerClass[1]
	if hi.ID != "class-1" || lo.ID != "class-0" {
		t.Fatalf("PerClass order %q, %q; want class-1 then class-0", hi.ID, lo.ID)
	}
	if hi.Arrived+lo.Arrived != r.Fleet.Arrived || hi.Served+lo.Served != r.Fleet.Served {
		t.Errorf("classes do not partition the fleet: %d+%d arrived vs %d, %d+%d served vs %d",
			hi.Arrived, lo.Arrived, r.Fleet.Arrived, hi.Served, lo.Served, r.Fleet.Served)
	}
	if hi.DropRate >= lo.DropRate {
		t.Errorf("high class drop rate %v not below low class %v under overload", hi.DropRate, lo.DropRate)
	}

	// Non-priority schedulers never emit per-class rows.
	cfg.Scheduler = sched.FIFO
	if r := mustRun(t, cfg); len(r.PerClass) != 0 {
		t.Errorf("fifo emitted %d per-class rows", len(r.PerClass))
	}
}

// TestBatchingIncreasesThroughput pins the acceptance scenario: on an
// overloaded fleet, fusing four frames per launch amortizes the
// per-launch constant b and the fleet strictly serves more frames —
// the cross-frame counterpart of the appendix's region merging.
func TestBatchingIncreasesThroughput(t *testing.T) {
	cfg := testConfig()
	cfg.Streams = 6
	cfg.FPS = 30
	cfg.Executors = 1
	cfg.QueueCap = 8
	one := mustRun(t, cfg)
	cfg.BatchSize = 4
	four := mustRun(t, cfg)

	if one.Fleet.Arrived != four.Fleet.Arrived {
		t.Fatalf("offered load changed with batch size: %d vs %d", one.Fleet.Arrived, four.Fleet.Arrived)
	}
	if four.Fleet.Served <= one.Fleet.Served {
		t.Errorf("batch=4 served %d <= batch=1 served %d", four.Fleet.Served, one.Fleet.Served)
	}
	if four.Fleet.Throughput <= one.Fleet.Throughput {
		t.Errorf("batch=4 throughput %v <= batch=1 throughput %v", four.Fleet.Throughput, one.Fleet.Throughput)
	}
	if four.Batches >= four.Fleet.Served {
		t.Errorf("batch=4 made %d launches for %d served frames; frames were not fused", four.Batches, four.Fleet.Served)
	}
	if one.Batches != one.Fleet.Served {
		t.Errorf("batch=1 made %d launches for %d served frames; must be one per frame", one.Batches, one.Fleet.Served)
	}
}

// TestStreamFPSValidation rejects malformed per-stream rates.
func TestStreamFPSValidation(t *testing.T) {
	cfg := testConfig()
	cfg.StreamFPS = []float64{10, 10}
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted StreamFPS with the wrong length")
	}
	cfg = testConfig()
	cfg.StreamFPS = []float64{10, 10, -1, 10}
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted a non-positive per-stream rate")
	}
	cfg = testConfig()
	cfg.Priorities = []int{1}
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted Priorities with the wrong length")
	}
	cfg = testConfig()
	cfg.Scheduler = "lifo"
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted an unknown scheduler")
	}
}

// TestConfigValidation rejects the invalid corners.
func TestConfigValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("Run accepted a zero Config without a system spec")
	}
	cfg := testConfig()
	cfg.Arrivals = "bursty"
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted an unknown arrival process")
	}
	cfg = testConfig()
	cfg.Drop = "drop-random"
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted an unknown drop policy")
	}
	cfg = testConfig()
	cfg.Spec.Refinement = "no-such-model"
	if _, err := Run(cfg); err == nil {
		t.Error("Run accepted an unknown refinement model")
	}
}
