package serve

import (
	"context"
	"testing"

	"repro/internal/video"
)

// TestIncrementalWorldMatchesFromScratch pins the serving layer's lazy
// world growth: a Server whose streams are grown frame by frame (and in
// one submission jump) holds sequences byte-identical to a from-scratch
// GenerateSequence at the final length. This is the regrowth-
// equivalence guarantee that replaced the regenerate-at-doubled-length
// scheme: served frames are never regenerated, only extended.
func TestIncrementalWorldMatchesFromScratch(t *testing.T) {
	cfg := testConfig()
	cfg.Streams = 2
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Stream 0 grows frame by frame; stream 1 jumps straight to a high
	// frame index (sparse submission must still materialize the prefix).
	const last = 130
	for fr := 0; fr <= last; fr++ {
		if err := srv.Submit(0, fr, float64(fr)/cfg.FPS); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.Submit(1, last, float64(last)/cfg.FPS); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Drain(context.Background()); err != nil {
		t.Fatal(err)
	}

	norm := srv.Config()
	base := norm.Preset
	base.FPS = norm.FPS
	for s := 0; s < cfg.Streams; s++ {
		p := base
		p.FramesPerSeq = last + 1
		want := video.GenerateSequence(p, norm.Seed, s)
		got := srv.f.seqs[s]
		if len(got.Frames) != last+1 {
			t.Fatalf("stream %d grew to %d frames, want %d", s, len(got.Frames), last+1)
		}
		if got.ID != want.ID {
			t.Fatalf("stream %d sequence ID %q, want %q", s, got.ID, want.ID)
		}
		for fi := range want.Frames {
			fw, fg := want.Frames[fi], got.Frames[fi]
			if fw.Index != fg.Index || len(fw.Objects) != len(fg.Objects) {
				t.Fatalf("stream %d frame %d differs from from-scratch generation", s, fi)
			}
			for oi := range fw.Objects {
				if fw.Objects[oi] != fg.Objects[oi] {
					t.Fatalf("stream %d frame %d object %d differs from from-scratch generation", s, fi, oi)
				}
			}
		}
	}
}
