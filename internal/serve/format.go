package serve

import (
	"fmt"
	"io"
)

// ms renders seconds as milliseconds for the text report.
func ms(s float64) string { return fmt.Sprintf("%.1fms", 1000*s) }

// WriteText prints the human-readable scenario report. Every value is
// derived from the Result alone, so the text — like the JSON — is
// byte-identical across reruns of the same Config.
func (r *Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "system:      %s\n", r.System)
	fmt.Fprintf(w, "load:        %d streams x %.1f fps (%s), %.1fs, preset %s, seed %d\n",
		r.Streams, r.FPS, r.Arrivals, r.Duration, r.Preset, r.Seed)
	stale := "off"
	if r.MaxStaleness > 0 {
		stale = ms(r.MaxStaleness)
	}
	degrade := "off"
	if r.DegradeDepth > 0 {
		degrade = fmt.Sprintf("depth>=%d", r.DegradeDepth)
	}
	fmt.Fprintf(w, "fleet:       %d executors, sched %s, batch %d, queue cap %d, %s, stale %s, degrade %s\n",
		r.Executors, r.Scheduler, r.BatchSize, r.QueueCap, r.Drop, stale, degrade)
	if r.ReconnectPolicy != "" || r.PoisonPolicy != "" {
		rec, poi := r.ReconnectPolicy, r.PoisonPolicy
		if rec == "" {
			rec = ReconnectReject
		}
		if poi == "" {
			poi = PoisonError
		}
		fmt.Fprintf(w, "faults:      reconnect %s, poison %s (%d reconnects, %d pills dropped)\n",
			rec, poi, r.Fleet.Reconnects, r.Fleet.DroppedPoison)
	}
	if ch := r.Chaos; ch != nil {
		fmt.Fprintf(w, "chaos:       dropout %.1f/min (mean %.1fs, renumber %v), fps jitter %.2f, clock skew %.2fs, poison rate %.2f\n",
			ch.DropoutRate, ch.DropoutMeanLen, ch.Renumber, ch.FPSJitter, ch.ClockSkew, ch.PoisonRate)
	}
	if c := r.Control; c != nil {
		fmt.Fprintf(w, "adaptive:    controller %s, tick %s (%d ticks, %d mode switches, quality served %.2f)\n",
			c.Kind, ms(c.Interval), r.ControlTicks, r.ModeSwitches, r.Fleet.QualityServed())
	}
	fl := r.Fleet
	fmt.Fprintf(w, "served:      %d/%d frames in %d launches (throughput %.1f fps, drop rate %.1f%%, degraded %d)\n",
		fl.Served, fl.Arrived, r.Batches, fl.Throughput, 100*fl.DropRate, fl.Degraded)
	fmt.Fprintf(w, "latency:     p50 %s  p95 %s  p99 %s  max %s  (mean %s)\n",
		ms(fl.Latency.P50), ms(fl.Latency.P95), ms(fl.Latency.P99), ms(fl.Latency.Max), ms(fl.Latency.Mean))
	fmt.Fprintf(w, "queue:       avg depth %.2f, max %d; executor utilization %.1f%%; makespan %.2fs\n",
		r.AvgQueueDepth, r.MaxQueueDepth, 100*r.Utilization, r.LastEventAt)
	if len(r.PerClass) > 0 {
		fmt.Fprintln(w, "per-class:")
		for _, st := range r.PerClass {
			fmt.Fprintf(w, "  %-18s served %4d/%-4d  drop %5.1f%%  p50 %8s  p99 %8s\n",
				st.ID, st.Served, st.Arrived, 100*st.DropRate, ms(st.Latency.P50), ms(st.Latency.P99))
		}
	}
	fmt.Fprintln(w, "per-stream:")
	for _, st := range r.PerStream {
		fmt.Fprintf(w, "  %-18s served %4d/%-4d  drop %5.1f%%  p50 %8s  p99 %8s\n",
			st.ID, st.Served, st.Arrived, 100*st.DropRate, ms(st.Latency.P50), ms(st.Latency.P99))
	}
}
