package serve

import "sort"

// LatencySummary condenses a latency sample set. All values are
// seconds; percentiles use the nearest-rank method (P50 of n samples is
// the ceil(0.50*n)-th smallest), so every reported value is an actual
// observed latency.
type LatencySummary struct {
	Count int     `json:"count"`
	Mean  float64 `json:"mean_s"`
	P50   float64 `json:"p50_s"`
	P95   float64 `json:"p95_s"`
	P99   float64 `json:"p99_s"`
	Max   float64 `json:"max_s"`
}

// percentile returns the nearest-rank q-th percentile (q in (0,1]) of
// an ascending-sorted sample set; 0 when empty.
func percentile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	i := ceilRank(q, n) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return sorted[i]
}

// ceilRank computes ceil(q*n) in exact integer arithmetic for the
// quantiles used here (avoids float64 ceil landing one rank high when
// q*n is representable exactly, e.g. 0.5*4).
func ceilRank(q float64, n int) int {
	r := int(q * float64(n))
	if float64(r) < q*float64(n) {
		r++
	}
	if r < 1 {
		r = 1
	}
	return r
}

// Stats is a live snapshot of a Server, as returned by Server.Stats.
// Totals are cumulative since New; Throughput and DropRate cover the
// elapsed makespan (Now), so after a full Drain they equal the final
// Result's fleet row; Window summarizes only the most recent
// Config.StatsWindow served frames.
type Stats struct {
	// Now is the engine's virtual clock: the time of the last event
	// played so far (the makespan so far).
	Now float64 `json:"now_s"`
	// Cumulative frame counters, summed over every stream.
	// DroppedPoison and Reconnects count fault-tolerance incidents
	// (PoisonDrop swallows, accepted camera reconnects); both stay 0
	// under the strict default policies.
	Arrived       int `json:"arrived"`
	Served        int `json:"served"`
	DroppedQueue  int `json:"dropped_queue"`
	DroppedStale  int `json:"dropped_stale"`
	DroppedPoison int `json:"dropped_poison,omitempty"`
	Reconnects    int `json:"reconnects,omitempty"`
	// FailedOver counts frames seized by Server.FailAt — queued or
	// in-flight when the shard's hardware died; 0 unless the server
	// belongs to a cluster with an active FaultPlan.
	FailedOver int `json:"failed_over,omitempty"`
	Degraded   int `json:"degraded"`
	// Instantaneous fleet state: frames waiting in the scheduler,
	// executors currently serving a launch, and the current executor
	// count (equal to Config.Executors until Server.ResizeAt changes
	// it). PerStreamQueue breaks QueueDepth down by stream — the
	// backlog signal the cluster router's migration policy keys on.
	QueueDepth     int   `json:"queue_depth"`
	BusyExecutors  int   `json:"busy_executors"`
	Executors      int   `json:"executors"`
	PerStreamQueue []int `json:"per_stream_queue,omitempty"`
	// Throughput is Served/Now (frames per second over the makespan so
	// far); DropRate is (DroppedQueue+DroppedStale)/Arrived.
	Throughput float64 `json:"throughput_fps"`
	DropRate   float64 `json:"drop_rate"`
	// Window summarizes end-to-end latency over the sliding window of
	// the most recent Config.StatsWindow served frames.
	Window LatencySummary `json:"window_latency"`
	// PerStreamWindow breaks the sliding-window view down by stream —
	// the per-stream signal set the adaptive control plane
	// (serve/control) observes at its ticks. Every window is a bounded
	// ring capped at Config.StatsWindow samples, so the memory cost is
	// O(Streams * StatsWindow) regardless of run length.
	PerStreamWindow []StreamWindow `json:"per_stream_window,omitempty"`
}

// StreamWindow is one stream's sliding-window snapshot within Stats.
type StreamWindow struct {
	// Queue is the stream's current backlog in the shared scheduler.
	Queue int `json:"queue"`
	// ArrivalRate is the stream's offered rate in frames/s over its
	// most recent StatsWindow arrivals (0 until two have been seen).
	ArrivalRate float64 `json:"arrival_rate_fps"`
	// Window summarizes end-to-end latency over the stream's most
	// recent StatsWindow served frames.
	Window LatencySummary `json:"window_latency"`
	// Mode is the stream's current operating mode, empty while the
	// stream runs the legacy automatic policy (see serve/control).
	Mode string `json:"mode,omitempty"`
}

// latWindow is a fixed-capacity ring over the most recent served-frame
// latencies, feeding the sliding-window percentiles of Stats. The
// window size is stored explicitly because make() may round a slice's
// capacity up to an allocation size class.
type latWindow struct {
	buf []float64
	max int // window size
	n   int // total samples ever added
}

func newLatWindow(capacity int) *latWindow {
	if capacity < 1 {
		capacity = 1
	}
	return &latWindow{buf: make([]float64, 0, capacity), max: capacity}
}

func (w *latWindow) add(v float64) {
	if len(w.buf) < w.max {
		w.buf = append(w.buf, v)
	} else {
		w.buf[w.n%w.max] = v
	}
	w.n++
}

func (w *latWindow) summary() LatencySummary { return Summarize(w.buf) }

// quantiles returns the window's p50 and p99 without building a full
// summary — the two signals a control tick reads per stream.
func (w *latWindow) quantiles() (p50, p99 float64) {
	if len(w.buf) == 0 {
		return 0, 0
	}
	sorted := make([]float64, len(w.buf))
	copy(sorted, w.buf)
	sort.Float64s(sorted)
	return percentile(sorted, 0.50), percentile(sorted, 0.99)
}

// stampWindow is a fixed-capacity ring over the most recent arrival
// instants of one stream, feeding the windowed arrival-rate signal.
type stampWindow struct {
	buf []float64
	max int // window size
	n   int // total stamps ever added
}

func newStampWindow(capacity int) *stampWindow {
	if capacity < 2 {
		capacity = 2
	}
	return &stampWindow{buf: make([]float64, 0, capacity), max: capacity}
}

func (w *stampWindow) add(t float64) {
	if len(w.buf) < w.max {
		w.buf = append(w.buf, t)
	} else {
		w.buf[w.n%w.max] = t
	}
	w.n++
}

// rate is the windowed arrival rate: (count-1) arrivals over the span
// from the oldest to the newest stamp in the ring, in frames/s. 0
// until two arrivals have been seen or while the span is zero.
func (w *stampWindow) rate() float64 {
	k := len(w.buf)
	if k < 2 {
		return 0
	}
	newest := w.buf[(w.n-1)%w.max]
	oldest := w.buf[0]
	if k == w.max {
		oldest = w.buf[w.n%w.max]
	}
	span := newest - oldest
	if span <= 0 {
		return 0
	}
	return float64(k-1) / span
}

// Summarize computes the latency summary of a sample set. The input is
// not modified.
func Summarize(samples []float64) LatencySummary {
	s := LatencySummary{Count: len(samples)}
	if len(samples) == 0 {
		return s
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	sum := 0.0
	for _, v := range sorted {
		sum += v
	}
	s.Mean = sum / float64(len(sorted))
	s.P50 = percentile(sorted, 0.50)
	s.P95 = percentile(sorted, 0.95)
	s.P99 = percentile(sorted, 0.99)
	s.Max = sorted[len(sorted)-1]
	return s
}
