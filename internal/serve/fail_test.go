package serve

import (
	"bytes"
	"context"
	"testing"

	"repro/internal/serve/control"
)

// TestFailAtSeizesBacklog pins the seizure contract of FailAt: on the
// overloaded golden scenario the kill returns both the in-flight launch
// and the queued backlog in dispatch-then-queue order, the books
// reconcile (arrived = served + drops + failed over), and the dead
// server drains cleanly at zero capacity.
func TestFailAtSeizesBacklog(t *testing.T) {
	cfg := goldenConfig()
	cfg.FailableExecutors = true
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	sched := ScheduleSource(cfg)
	for a, ok := sched.Next(); ok && a.At <= 2; a, ok = sched.Next() {
		if err := srv.Submit(a.Stream, a.Frame, a.At); err != nil {
			t.Fatal(err)
		}
	}
	seized, err := srv.FailAt(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(seized) == 0 {
		t.Fatal("overloaded server died with nothing to seize")
	}
	// Per-stream frame order is preserved across the seizure.
	last := map[int]int{}
	for _, f := range seized {
		if prev, ok := last[f.Stream]; ok && f.Frame <= prev {
			t.Fatalf("stream %d seized out of order: frame %d after %d", f.Stream, f.Frame, prev)
		}
		last[f.Stream] = f.Frame
	}
	st := srv.Stats()
	if st.FailedOver != len(seized) {
		t.Errorf("stats book %d failed-over frames, seizure returned %d", st.FailedOver, len(seized))
	}
	if st.QueueDepth != 0 || st.BusyExecutors != 0 {
		t.Errorf("dead server still holds work: queue %d, busy %d", st.QueueDepth, st.BusyExecutors)
	}
	if got := st.Served + st.DroppedQueue + st.DroppedStale + st.FailedOver; got != st.Arrived {
		t.Errorf("books do not reconcile: served %d + drops %d+%d + failed over %d = %d != arrived %d",
			st.Served, st.DroppedQueue, st.DroppedStale, st.FailedOver, got, st.Arrived)
	}
	r, err := srv.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Fleet.Served + r.Fleet.DroppedQueue + r.Fleet.DroppedStale + r.Fleet.FailedOver; got != r.Fleet.Arrived {
		t.Errorf("drained books do not reconcile: %d != arrived %d", got, r.Fleet.Arrived)
	}
	if r.Fleet.FailedOver != len(seized) {
		t.Errorf("drained result books %d failed-over frames, want %d", r.Fleet.FailedOver, len(seized))
	}
}

// TestFailAtRequiresFailable pins the guard: dispatch-time accounting
// cannot seize in-flight frames back, so FailAt refuses.
func TestFailAtRequiresFailable(t *testing.T) {
	srv, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if _, err := srv.FailAt(1); err == nil {
		t.Fatal("FailAt accepted a server without FailableExecutors")
	}
}

// TestCompletionAccountingMatchesDispatch pins the zero-cost guarantee
// behind the cluster's empty-FaultPlan byte contract: switching the
// engine to completion-time accounting (FailableExecutors) without ever
// calling FailAt changes when the books are written, never what they
// say — the full Result is byte-identical on the overload golden and on
// a batched elastic scenario.
func TestCompletionAccountingMatchesDispatch(t *testing.T) {
	scenarios := map[string]Config{"golden": goldenConfig()}
	batched := goldenConfig()
	batched.Executors = 2
	batched.BatchSize = 4
	batched.Scheduler = "edf"
	scenarios["batched-edf"] = batched
	for name, cfg := range scenarios {
		t.Run(name, func(t *testing.T) {
			plain := marshal(t, mustRun(t, cfg))
			cfg.FailableExecutors = true
			failable := marshal(t, mustRun(t, cfg))
			if !bytes.Equal(plain, failable) {
				t.Error("completion-time accounting moved the books without any failure injected")
			}
		})
	}
}

// TestPinModeOverridesControl pins the PinMode surface the degrade
// failover rides on: a stream pinned to proposal-only serves every
// subsequent frame degraded, and unpinning with ModeAuto hands the
// stream back.
func TestPinModeOverridesControl(t *testing.T) {
	cfg := testConfig()
	cfg.FailableExecutors = true
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.PinMode(0, control.ModeProposal); err != nil {
		t.Fatal(err)
	}
	if err := srv.PinMode(99, control.ModeProposal); err == nil {
		t.Error("PinMode accepted an out-of-range stream")
	}
	if err := srv.PinMode(0, "warp"); err == nil {
		t.Error("PinMode accepted an unknown mode")
	}
	if err := srv.Ingest(ScheduleSource(cfg)); err != nil {
		t.Fatal(err)
	}
	r, err := srv.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	pinned := r.PerStream[0]
	if pinned.Served == 0 {
		t.Fatal("pinned stream served nothing")
	}
	if pinned.Degraded != pinned.Served {
		t.Errorf("pinned stream served %d frames but only %d degraded — the pin did not hold", pinned.Served, pinned.Degraded)
	}
	for _, row := range r.PerStream[1:] {
		if row.Degraded != 0 {
			t.Errorf("unpinned stream %s degraded %d frames on an unloaded fleet", row.ID, row.Degraded)
		}
	}
}
