package serve

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/internal/video"
)

// eventLog is a test sink recording every event in emission order.
type eventLog struct{ events []Event }

func (l *eventLog) ServeEvent(e Event) { l.events = append(l.events, e) }

func (l *eventLog) byKind(kind EventKind) []Event {
	var out []Event
	for _, e := range l.events {
		if e.Kind == kind {
			out = append(out, e)
		}
	}
	return out
}

// submitAll submits (frame, at) pairs to one stream, failing the test
// on any error.
func submitAll(t *testing.T, srv *Server, stream int, frames []int, times []float64) {
	t.Helper()
	for i, fr := range frames {
		if err := srv.Submit(stream, fr, times[i]); err != nil {
			t.Fatalf("Submit(%d, %d, %v): %v", stream, fr, times[i], err)
		}
	}
}

// TestReconnectResume pins the resume-with-gap semantics: a camera that
// drops out and comes back with restarted wire numbering continues its
// world where the outage interrupted it. Wire frames 0..4 then 0..2
// serve as effective frames 0..7, one reconnect is booked, and the
// session epoch never changes.
func TestReconnectResume(t *testing.T) {
	log := &eventLog{}
	cfg := testConfig()
	cfg.Streams = 1
	cfg.Reconnect = ReconnectResume
	cfg.Sink = log
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	submitAll(t, srv, 0,
		[]int{0, 1, 2, 3, 4, 0, 1, 2},
		[]float64{0.0, 0.1, 0.2, 0.3, 0.4, 1.0, 1.1, 1.2})
	r, err := srv.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	wantEff := []int{0, 1, 2, 3, 4, 5, 6, 7}
	served := log.byKind(EventServed)
	if len(served) != len(wantEff) {
		t.Fatalf("served %d frames, want %d (events: %+v)", len(served), len(wantEff), log.events)
	}
	for i, e := range served {
		if e.Frame != wantEff[i] || e.Epoch != 0 {
			t.Errorf("served[%d] = frame %d epoch %d, want frame %d epoch 0", i, e.Frame, e.Epoch, wantEff[i])
		}
	}
	recs := log.byKind(EventReconnect)
	if len(recs) != 1 || recs[0].Frame != 5 || recs[0].Epoch != 0 {
		t.Errorf("reconnect events = %+v, want one at effective frame 5, epoch 0", recs)
	}
	if r.Fleet.Reconnects != 1 || r.PerStream[0].Reconnects != 1 {
		t.Errorf("Reconnects fleet=%d stream=%d, want 1/1", r.Fleet.Reconnects, r.PerStream[0].Reconnects)
	}
	if r.ReconnectPolicy != ReconnectResume {
		t.Errorf("Result.ReconnectPolicy = %q, want %q", r.ReconnectPolicy, ReconnectResume)
	}
	if r.Fleet.Arrived != 8 || r.Fleet.Served != 8 {
		t.Errorf("books: arrived %d served %d, want 8/8", r.Fleet.Arrived, r.Fleet.Served)
	}
}

// TestReconnectReset pins the reset-session semantics: the reconnect
// starts a new capture session that replays the wire indices literally
// — effective frames 0..4 in epoch 0, then 0..2 again in epoch 1.
func TestReconnectReset(t *testing.T) {
	log := &eventLog{}
	cfg := testConfig()
	cfg.Streams = 1
	cfg.Reconnect = ReconnectReset
	cfg.Sink = log
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	submitAll(t, srv, 0,
		[]int{0, 1, 2, 3, 4, 0, 1, 2},
		[]float64{0.0, 0.1, 0.2, 0.3, 0.4, 1.0, 1.1, 1.2})
	r, err := srv.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	want := []struct{ frame, epoch int }{
		{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0},
		{0, 1}, {1, 1}, {2, 1},
	}
	served := log.byKind(EventServed)
	if len(served) != len(want) {
		t.Fatalf("served %d frames, want %d", len(served), len(want))
	}
	for i, e := range served {
		if e.Frame != want[i].frame || e.Epoch != want[i].epoch {
			t.Errorf("served[%d] = frame %d epoch %d, want frame %d epoch %d",
				i, e.Frame, e.Epoch, want[i].frame, want[i].epoch)
		}
	}
	recs := log.byKind(EventReconnect)
	if len(recs) != 1 || recs[0].Frame != 0 || recs[0].Epoch != 1 {
		t.Errorf("reconnect events = %+v, want one at frame 0, epoch 1", recs)
	}
	if r.Fleet.Reconnects != 1 {
		t.Errorf("Fleet.Reconnects = %d, want 1", r.Fleet.Reconnects)
	}
}

// TestReconnectSkewedClock pins the clock-forgiveness rider of the
// non-rejecting policies: a reconnecting camera whose stamps went
// backwards is re-stamped to the stream's last accepted arrival
// instead of failing the feed — and the books stay monotone.
func TestReconnectSkewedClock(t *testing.T) {
	cfg := testConfig()
	cfg.Streams = 1
	cfg.Reconnect = ReconnectResume
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Submit(0, 0, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(0, 1, 0.4); err != nil {
		t.Errorf("backwards stamp rejected under %s: %v", ReconnectResume, err)
	}
	r, err := srv.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Fleet.Arrived != 2 || r.Fleet.Served != 2 {
		t.Errorf("books: arrived %d served %d, want 2/2", r.Fleet.Arrived, r.Fleet.Served)
	}
	// The rejecting default still enforces the strict contract.
	strict, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer strict.Close()
	if err := strict.Submit(0, 0, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := strict.Submit(0, 1, 0.4); err == nil {
		t.Error("backwards stamp accepted under the rejecting default")
	}
}

// TestPoisonIsolation pins the PoisonDrop promise: a run with pills —
// every pill class: negative frame, frame past MaxFrame, NaN and Inf
// stamps — produces books identical to the pill-free run except for
// the DroppedPoison counters, and each pill is sunk as its own event
// kind without perturbing clock, session or stats.
func TestPoisonIsolation(t *testing.T) {
	run := func(pills bool) (*Result, *eventLog) {
		log := &eventLog{}
		cfg := testConfig()
		cfg.Streams = 2
		cfg.Poison = PoisonDrop
		cfg.Sink = log
		srv, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		for k := 0; k < 8; k++ {
			at := 0.1 * float64(k)
			if pills && k == 3 {
				for _, pill := range []struct {
					frame int
					at    float64
				}{
					{-1, at},
					{srv.Config().MaxFrame + 1, at},
					{k, math.NaN()},
					{k, math.Inf(1)},
				} {
					if err := srv.Submit(0, pill.frame, pill.at); err != nil {
						t.Fatalf("pill (%d, %v) not swallowed: %v", pill.frame, pill.at, err)
					}
				}
			}
			for s := 0; s < 2; s++ {
				if err := srv.Submit(s, k, at); err != nil {
					t.Fatal(err)
				}
			}
		}
		r, err := srv.Drain(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return r, log
	}

	clean, _ := run(false)
	poisoned, log := run(true)

	if got := poisoned.Fleet.DroppedPoison; got != 4 {
		t.Errorf("Fleet.DroppedPoison = %d, want 4", got)
	}
	if got := poisoned.PerStream[0].DroppedPoison; got != 4 {
		t.Errorf("stream 0 DroppedPoison = %d, want 4", got)
	}
	if got := len(log.byKind(EventDroppedPoison)); got != 4 {
		t.Errorf("sink saw %d dropped-poison events, want 4", got)
	}
	for _, e := range log.byKind(EventDroppedPoison) {
		if math.IsNaN(e.Arrive) || math.IsInf(e.Arrive, 0) {
			t.Errorf("poison event leaked a non-finite arrival stamp: %+v", e)
		}
	}
	// Scrub the poison counters; everything else must match byte for
	// byte — the pills bought nothing and poisoned nothing.
	scrub := func(r *Result) *Result {
		r.Fleet.DroppedPoison = 0
		for i := range r.PerStream {
			r.PerStream[i].DroppedPoison = 0
		}
		return r
	}
	if got, want := marshal(t, scrub(poisoned)), marshal(t, scrub(clean)); !bytes.Equal(got, want) {
		t.Errorf("pills perturbed the books\nwith pills: %s\n   without: %s", got, want)
	}
}

// TestPoisonErrorDefault pins the strict default: every pill class is
// a Submit error when Poison is unset.
func TestPoisonErrorDefault(t *testing.T) {
	srv, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for _, pill := range []struct {
		frame int
		at    float64
	}{
		{-1, 0}, {DefaultMaxFrame + 1, 0}, {0, math.NaN()}, {0, math.Inf(-1)},
	} {
		if err := srv.Submit(0, pill.frame, pill.at); err == nil {
			t.Errorf("Submit(0, %d, %v) accepted a pill under PoisonError", pill.frame, pill.at)
		}
	}
}

// chaosModes are the fault cocktails the determinism matrix runs: each
// exercises a different subset of the chaos channels and reconnect
// policies.
func chaosModes() map[string]func(*Config) {
	return map[string]func(*Config){
		"jitter-skew": func(c *Config) {
			c.Chaos = Chaos{FPSJitter: 0.3, ClockSkew: 0.1}
		},
		"dropout-resume": func(c *Config) {
			c.Reconnect = ReconnectResume
			c.Chaos = Chaos{DropoutRate: 40, DropoutMeanLen: 0.5, Renumber: true}
		},
		"full-reset": func(c *Config) {
			c.Reconnect = ReconnectReset
			c.Poison = PoisonDrop
			c.Chaos = Chaos{DropoutRate: 30, DropoutMeanLen: 0.4, Renumber: true,
				FPSJitter: 0.2, ClockSkew: 0.08, PoisonRate: 0.05}
		},
	}
}

// TestChaosDeterminism extends the determinism contract to the chaos
// layer: for every scenario pack and fault cocktail, the same config +
// seed produces byte-identical Results across reruns and step-worker
// counts. Chaos perturbs the offered load deterministically; it must
// never introduce scheduling, map-order or wall-clock dependence.
func TestChaosDeterminism(t *testing.T) {
	presets := []string{"crowd", "highway", "drone", "night", "sports"}
	for _, name := range presets {
		p, err := video.PresetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		for mode, apply := range chaosModes() {
			cfg := testConfig()
			cfg.Preset = p
			cfg.Streams = 3
			cfg.FPS = 8
			cfg.Duration = 3
			cfg.StepWorkers = 1
			apply(&cfg)
			first := marshal(t, mustRun(t, cfg))
			again := marshal(t, mustRun(t, cfg))
			if !bytes.Equal(first, again) {
				t.Errorf("%s/%s: rerun not byte-identical", name, mode)
			}
			cfg.StepWorkers = 4
			par := marshal(t, mustRun(t, cfg))
			if !bytes.Equal(first, par) {
				t.Errorf("%s/%s: StepWorkers=4 not byte-identical to serial", name, mode)
			}
		}
	}
}

// TestChaosPerturbsOnlyOfferedLoad pins the layering: chaos changes
// the schedule, not the engine. A chaotic schedule replayed through a
// clean server books exactly the arrivals the source offered.
func TestChaosPerturbsOnlyOfferedLoad(t *testing.T) {
	cfg := testConfig()
	cfg.Reconnect = ReconnectResume
	cfg.Poison = PoisonDrop
	cfg.Chaos = Chaos{DropoutRate: 30, DropoutMeanLen: 0.5, Renumber: true, PoisonRate: 0.1}
	src := ScheduleSource(cfg)
	offered, pills := 0, 0
	for {
		a, ok := src.Next()
		if !ok {
			break
		}
		if a.Frame < 0 {
			pills++
		} else {
			offered++
		}
	}
	if pills == 0 {
		t.Fatal("chaos with PoisonRate 0.1 injected no pills (rate plumbing broken?)")
	}
	r := mustRun(t, cfg)
	if r.Fleet.Arrived != offered {
		t.Errorf("Arrived = %d, schedule offered %d usable frames", r.Fleet.Arrived, offered)
	}
	if r.Fleet.DroppedPoison != pills {
		t.Errorf("DroppedPoison = %d, schedule carried %d pills", r.Fleet.DroppedPoison, pills)
	}
	clean := testConfig()
	cleanN := 0
	for src := ScheduleSource(clean); ; {
		if _, ok := src.Next(); !ok {
			break
		}
		cleanN++
	}
	if offered+pills >= cleanN {
		t.Errorf("dropouts removed nothing: chaotic %d+%d vs clean %d arrivals", offered, pills, cleanN)
	}
}
