package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/video"
)

// presetPacks are the scenario packs the golden harness pins — the
// four new packs plus the night pack's elevated-noise sibling set.
var presetPacks = []string{"crowd", "highway", "drone", "night", "sports"}

// presetGoldenConfig is the one chaotic serving scenario every pack is
// pinned under: a camera fleet with dropouts and restarted numbering
// (resumed server-side), wandering encoder rates, skewed clocks and
// in-transit corruption — every fault channel and both relaxed
// policies on at once, so the goldens cover the full chaos surface.
func presetGoldenConfig(p video.Preset) Config {
	return Config{
		Spec: sim.SystemSpec{
			Kind: sim.CaTDet, Proposal: "resnet10a", Refinement: "resnet50",
			Cfg: core.DefaultConfig(),
		},
		Preset:       p,
		Seed:         7,
		Streams:      3,
		FPS:          10,
		Duration:     2.5,
		Executors:    1,
		QueueCap:     5,
		MaxStaleness: 0.35,
		Reconnect:    ReconnectResume,
		Poison:       PoisonDrop,
		Chaos: Chaos{
			DropoutRate: 30, DropoutMeanLen: 0.6, Renumber: true,
			FPSJitter: 0.15, ClockSkew: 0.08, PoisonRate: 0.04,
		},
	}
}

// TestGoldenPresets pins the full chaotic serving output of every
// scenario pack byte-for-byte against testdata/golden_<preset>.json.
// Run with -update to rewrite after an intentional change; anything
// else that moves these bytes is a regression in a pack's world
// statistics, the chaos transform, or the reconnect/poison engine.
func TestGoldenPresets(t *testing.T) {
	for _, name := range presetPacks {
		t.Run(name, func(t *testing.T) {
			p, err := video.PresetByName(name)
			if err != nil {
				t.Fatal(err)
			}
			r := mustRun(t, presetGoldenConfig(p))
			got, err := json.MarshalIndent(r, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			path := filepath.Join("testdata", fmt.Sprintf("golden_%s.json", name))
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("preset %s output drifted from %s (run with -update if intentional)\ngot:\n%s", name, path, got)
			}
			// The chaos channels must have actually fired in the pinned
			// scenario, or the goldens silently stop covering them.
			if r.Fleet.DroppedPoison == 0 {
				t.Errorf("preset %s golden has no poison drops — the pinned scenario no longer exercises PoisonDrop", name)
			}
			if r.Fleet.Reconnects == 0 {
				t.Errorf("preset %s golden has no reconnects — the pinned scenario no longer exercises resume-with-gap", name)
			}
		})
	}
}

// TestPresetsStatisticallyDistinct is the cross-check behind the packs'
// reason to exist: no two packs (the new five plus the original KITTI
// world) may be statistically indistinguishable. Every pair must
// differ by at least 25% in mean object count, mean box height, or
// mean apparent speed — the three axes the serving metrics key on.
func TestPresetsStatisticallyDistinct(t *testing.T) {
	names := append([]string{"kitti"}, presetPacks...)
	stats := make(map[string]video.WorldStats, len(names))
	for _, name := range names {
		p, err := video.PresetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		stats[name] = video.Measure(p, 1, 120)
		t.Logf("%-8s %.2f obj/frame, %.1f px height, %.1f px/s", name,
			stats[name].MeanObjects, stats[name].MeanHeight, stats[name].MeanSpeed)
	}
	relDiff := func(a, b float64) float64 {
		if m := math.Max(math.Abs(a), math.Abs(b)); m > 0 {
			return math.Abs(a-b) / m
		}
		return 0
	}
	const threshold = 0.25
	for i, a := range names {
		for _, b := range names[i+1:] {
			sa, sb := stats[a], stats[b]
			if relDiff(sa.MeanObjects, sb.MeanObjects) < threshold &&
				relDiff(sa.MeanHeight, sb.MeanHeight) < threshold &&
				relDiff(sa.MeanSpeed, sb.MeanSpeed) < threshold {
				t.Errorf("presets %q and %q are statistically indistinguishable (<%.0f%% apart on every axis):\n  %+v\n  %+v",
					a, b, 100*threshold, sa, sb)
			}
		}
	}
}

// TestNightNoiseReachesServing pins the plumbing from the night pack's
// DetectorNoise knob through the serving fleet: the same scenario on
// the night world with the knob zeroed out books different detections
// (more noise means different service times and books), while the
// timing-independent identity fields stay equal.
func TestNightNoiseReachesServing(t *testing.T) {
	night, err := video.PresetByName("night")
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig()
	cfg.Preset = night
	cfg.Duration = 3
	noisy := mustRun(t, cfg)

	calm := night
	calm.DetectorNoise = 0
	cfg.Preset = calm
	clean := mustRun(t, cfg)

	if noisy.Fleet.Arrived != clean.Fleet.Arrived {
		t.Fatalf("DetectorNoise changed the offered load: %d vs %d arrivals",
			noisy.Fleet.Arrived, clean.Fleet.Arrived)
	}
	if bytes.Equal(marshal(t, noisy), marshal(t, clean)) {
		t.Error("zeroing night DetectorNoise left the serving books identical — the noise knob never reached the detectors")
	}
}
