package control

import (
	"reflect"
	"strings"
	"testing"
)

// view builds a one-knob fleet view: n cascade streams all showing the
// same backlog and window p99.
func view(n, queue int, p99 float64) View {
	v := View{
		QueueDepth: n * queue,
		Executors:  1,
		Batch:      1,
		BaseBatch:  1,
		Cascade:    true,
		Streams:    make([]StreamSignal, n),
	}
	for s := range v.Streams {
		v.Streams[s] = StreamSignal{Stream: s, Queue: queue, P99: p99}
	}
	return v
}

func mustBaseline(t *testing.T, cfg Config) Controller {
	t.Helper()
	cfg.Kind = KindBaseline
	cfg = cfg.WithDefaults()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestWithDefaultsZeroStaysZero(t *testing.T) {
	var zero Config
	if got := zero.WithDefaults(); got != zero {
		t.Errorf("zero Config gained defaults: %+v", got)
	}
	if zero.Enabled() || zero.Active() {
		t.Error("zero Config must select no controller")
	}
}

func TestWithDefaultsFillsBaseline(t *testing.T) {
	cfg := Config{Kind: KindBaseline}.WithDefaults()
	if cfg.Interval != DefaultInterval {
		t.Errorf("Interval = %v, want %v", cfg.Interval, DefaultInterval)
	}
	if cfg.Cooldown != 2*DefaultInterval {
		t.Errorf("Cooldown = %v, want %v", cfg.Cooldown, 2*DefaultInterval)
	}
	if cfg.HighDepth != DefaultHighDepth || cfg.LowDepth != DefaultLowDepth {
		t.Errorf("depth band = [%d,%d], want [%d,%d]", cfg.LowDepth, cfg.HighDepth, DefaultLowDepth, DefaultHighDepth)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("defaulted baseline config invalid: %v", err)
	}
}

// TestValidateFieldPaths pins the field-path form of every validation
// error: incoherent combos must name the offending field.
func TestValidateFieldPaths(t *testing.T) {
	cases := []struct {
		cfg  Config
		path string
	}{
		{Config{Kind: "pid"}, "Control.Kind"},
		{Config{Interval: 0.5}, "Control.Interval"}, // interval without a controller
		{Config{Kind: KindBaseline}, "Control.Interval"},
		{Config{Kind: KindBaseline, Interval: -1}, "Control.Interval"},
		{Config{Kind: KindBaseline, Interval: 0.25, Cooldown: -1}, "Control.Cooldown"},
		{Config{Kind: KindBaseline, Interval: 0.25, Cooldown: 0.5, HighDepth: -2}, "Control.HighDepth"},
		{Config{Kind: KindBaseline, Interval: 0.25, Cooldown: 0.5, HighDepth: 2, LowDepth: 2,
			HighP99: 0.3, LowP99: 0.1, MaxBatch: 4, TightenScale: 0.6, FullTicks: 2}, "Control.LowDepth"},
		{Config{Kind: KindBaseline, Interval: 0.25, Cooldown: 0.5, HighDepth: 3, LowDepth: 1,
			HighP99: 0.1, LowP99: 0.3, MaxBatch: 4, TightenScale: 0.6, FullTicks: 2}, "Control.LowP99"},
		{Config{Kind: KindBaseline, Interval: 0.25, Cooldown: 0.5, HighDepth: 3, LowDepth: 1,
			HighP99: 0.3, LowP99: 0.1, MaxBatch: 4, BatchDepth: -1, FullTicks: 2}, "Control.BatchDepth"},
		{Config{Kind: KindBaseline, Interval: 0.25, Cooldown: 0.5, HighDepth: 3, LowDepth: 1,
			HighP99: 0.3, LowP99: 0.1, MaxBatch: 4, BatchDepth: 6, TightenScale: 1.5, FullTicks: 2}, "Control.TightenScale"},
	}
	for _, tc := range cases {
		err := tc.cfg.Validate()
		if err == nil {
			t.Errorf("%+v: want error at %s, got nil", tc.cfg, tc.path)
			continue
		}
		if !strings.Contains(err.Error(), tc.path+":") {
			t.Errorf("%+v: error %q does not name %s", tc.cfg, err, tc.path)
		}
	}
}

func TestNewUnknownKind(t *testing.T) {
	if _, err := New(Config{Kind: "pid"}); err == nil {
		t.Error("New accepted an unknown kind")
	}
}

func TestNopIsInert(t *testing.T) {
	n := Nop{}
	if n.Name() != "nop" {
		t.Errorf("Name = %q", n.Name())
	}
	if acts := n.Tick(1.0, view(4, 10, 1.0)); acts != nil {
		t.Errorf("nop emitted %v", acts)
	}
	if (Config{Kind: KindNop}).Active() {
		t.Error("nop config reports Active — the engine would schedule ticks for it")
	}
}

func TestQualityWeights(t *testing.T) {
	if ModeFull.Quality() != 1.0 || ModeProposal.Quality() != 0.60 {
		t.Errorf("anchor weights moved: full=%v proposal=%v", ModeFull.Quality(), ModeProposal.Quality())
	}
	if ModeCascade.Quality() != ModeAuto.Quality() {
		t.Error("auto and cascade must share a quality weight (auto frames are cascade frames)")
	}
	if !(ModeFull.Quality() > ModeCascade.Quality() && ModeCascade.Quality() > ModeProposal.Quality()) {
		t.Error("quality weights are not ordered full > cascade > proposal")
	}
}

// TestBaselineStepsDownWhenHot walks the mode ladder under sustained
// overload: a deep backlog sheds cascade -> proposal and demotes full
// -> cascade, while a tail-only signal (high window p99 with an empty
// queue) may revoke a ModeFull promotion but never sheds a stream
// below its baseline tier.
func TestBaselineStepsDownWhenHot(t *testing.T) {
	c := mustBaseline(t, Config{Interval: 0.25, Cooldown: 0.25})
	acts := c.Tick(0.25, view(1, 10, 1.0))
	if len(acts) == 0 || acts[0].Policy.Mode != ModeProposal {
		t.Fatalf("deep-backlog cascade stream: got %v, want step down to proposal", acts)
	}
	// A stream already at proposal has nowhere further to go.
	v := view(1, 10, 1.0)
	v.Streams[0].Mode = ModeProposal
	if acts := c.Tick(10, v); len(acts) != 0 {
		t.Errorf("hot proposal stream stepped again: %v", acts)
	}
	v.Streams[0].Mode = ModeFull
	acts = c.Tick(20, v)
	if len(acts) == 0 || acts[0].Policy.Mode != ModeCascade {
		t.Errorf("hot full stream: got %v, want step down to cascade", acts)
	}
	// Tail-only pressure: p99 over HighP99 but no backlog. A full
	// stream is demoted (its own expensive frames are the likely
	// cause) — a cascade stream holds its tier.
	tail := view(1, 0, 10.0)
	tail.Streams[0].P50 = 10.0 // not calm either
	tail.Streams[0].Mode = ModeFull
	acts = c.Tick(30, tail)
	if len(acts) == 0 || acts[0].Policy.Mode != ModeCascade {
		t.Errorf("tail-hot full stream: got %v, want demotion to cascade", acts)
	}
	tail.Streams[0].Mode = ModeCascade
	if acts := c.Tick(40, tail); len(acts) != 0 {
		t.Errorf("tail-hot cascade stream shed below baseline: %v", acts)
	}
}

// TestBaselineRecoversWhenCalm steps a degraded stream back up once
// both hysteresis signals clear.
func TestBaselineRecoversWhenCalm(t *testing.T) {
	c := mustBaseline(t, Config{Interval: 0.25, Cooldown: 0.25})
	v := view(1, 0, 0.01)
	v.Streams[0].Mode = ModeProposal
	acts := c.Tick(0.25, v)
	if len(acts) == 0 || acts[0].Policy.Mode != ModeCascade {
		t.Fatalf("calm proposal stream: got %v, want recovery to cascade", acts)
	}
	// Between the bands nothing moves in either direction.
	v.Streams[0].Mode = ModeCascade
	v.Streams[0].Queue = 2 // between LowDepth 1 and HighDepth 3
	if acts := c.Tick(10, v); len(acts) != 0 {
		t.Errorf("in-band stream moved: %v", acts)
	}
}

// TestBaselineAntiFlap oscillates one stream between hard overload and
// total calm every tick and requires the cooldown to bound the switch
// count: at most one switch per cooldown window, not one per tick.
func TestBaselineAntiFlap(t *testing.T) {
	const interval, cooldown = 0.25, 1.0
	c := mustBaseline(t, Config{Interval: interval, Cooldown: cooldown})
	switches := 0
	ticks := 64
	for i := 1; i <= ticks; i++ {
		now := float64(i) * interval
		v := view(1, 10, 1.0) // hot
		if i%2 == 0 {
			v = view(1, 0, 0.01) // calm
		}
		for _, a := range c.Tick(now, v) {
			if a.Stream == 0 && a.Policy.Mode != ModeAuto {
				switches++
			}
		}
	}
	elapsed := float64(ticks) * interval
	// One switch per cooldown window at most (jitter only stretches the
	// window), plus the initial switch.
	maxSwitches := int(elapsed/cooldown) + 1
	if switches > maxSwitches {
		t.Errorf("oscillating load produced %d mode switches in %.1fs (cooldown %.2fs allows at most %d)",
			switches, elapsed, cooldown, maxSwitches)
	}
	if switches == 0 {
		t.Error("oscillating load produced no switches at all — hysteresis thresholds dead")
	}
}

// TestBaselineBatchHysteresis drives the fleet queue over the raise
// threshold and back under the restore threshold.
func TestBaselineBatchHysteresis(t *testing.T) {
	c := mustBaseline(t, Config{Interval: 0.25, Cooldown: 100, MaxBatch: 8})
	deep := view(4, 2, 0) // total queue 8 >= BatchDepth default (2*HighDepth = 6)
	deep.BaseBatch, deep.Batch = 2, 2
	var batch []int
	for _, a := range c.Tick(0.25, deep) {
		if a.Stream == Fleet {
			batch = append(batch, a.Batch)
		}
	}
	if !reflect.DeepEqual(batch, []int{8}) {
		t.Fatalf("deep queue: fleet batch actions %v, want [8]", batch)
	}
	// Same depth again: no repeated emission.
	for _, a := range c.Tick(0.5, deep) {
		if a.Stream == Fleet {
			t.Fatalf("unchanged depth re-emitted batch action %+v", a)
		}
	}
	drained := view(4, 0, 0)
	drained.BaseBatch, drained.Batch = 2, 8
	batch = batch[:0]
	for _, a := range c.Tick(0.75, drained) {
		if a.Stream == Fleet {
			batch = append(batch, a.Batch)
		}
	}
	if !reflect.DeepEqual(batch, []int{2}) {
		t.Errorf("drained queue: fleet batch actions %v, want restore to [2]", batch)
	}
}

// TestBaselineDeadlineTightening: under EDF with half the fleet hot,
// priority streams get their budget tightened; calm relaxes it back.
func TestBaselineDeadlineTightening(t *testing.T) {
	c := mustBaseline(t, Config{Interval: 0.25, Cooldown: 100, TightenScale: 0.6})
	hot := view(4, 10, 1.0)
	hot.EDF, hot.MaxStaleness = true, 0.3
	hot.Streams[1].Class = 1
	hot.Streams[3].Class = 2
	var scales []float64
	for _, a := range c.Tick(0.25, hot) {
		if a.Policy.DeadlineScale != 0 {
			scales = append(scales, a.Policy.DeadlineScale)
			if a.Stream != 1 && a.Stream != 3 {
				t.Errorf("deadline action for class-0 stream %d", a.Stream)
			}
		}
	}
	if !reflect.DeepEqual(scales, []float64{0.6, 0.6}) {
		t.Fatalf("hot fleet deadline scales %v, want [0.6 0.6]", scales)
	}
	calm := view(4, 0, 0.01)
	calm.EDF, calm.MaxStaleness = true, 0.3
	calm.Streams[1].Class = 1
	calm.Streams[3].Class = 2
	scales = scales[:0]
	for _, a := range c.Tick(0.5, calm) {
		if a.Policy.DeadlineScale != 0 {
			scales = append(scales, a.Policy.DeadlineScale)
		}
	}
	if !reflect.DeepEqual(scales, []float64{1, 1}) {
		t.Errorf("calm fleet deadline scales %v, want relax to [1 1]", scales)
	}
}

// TestBaselineUpgradeFull: with the promotion enabled, a persistently
// calm cascade stream reaches ModeFull after FullTicks calm ticks.
func TestBaselineUpgradeFull(t *testing.T) {
	c := mustBaseline(t, Config{Interval: 0.25, Cooldown: 0.25, UpgradeFull: true, FullTicks: 3})
	var got Mode
	for i := 1; i <= 10; i++ {
		for _, a := range c.Tick(float64(i)*0.25, view(1, 0, 0.01)) {
			got = a.Policy.Mode
		}
		if got == ModeFull {
			break
		}
	}
	if got != ModeFull {
		t.Errorf("persistently calm stream never promoted to full (last action mode %q)", got)
	}
}

// TestBaselineDeterministicReplay: two independent instances fed the
// same tick sequence emit identical action streams — the controller
// keys only on virtual time, config and views.
func TestBaselineDeterministicReplay(t *testing.T) {
	run := func() [][]Action {
		c := mustBaseline(t, Config{Interval: 0.25, Seed: 7, TightenScale: 0.6, UpgradeFull: true})
		var all [][]Action
		for i := 1; i <= 40; i++ {
			queue := 0
			p99 := 0.01
			if i%5 < 3 {
				queue, p99 = 6, 0.8
			}
			v := view(3, queue, p99)
			v.EDF, v.MaxStaleness = true, 0.3
			v.Streams[2].Class = 1
			all = append(all, append([]Action(nil), c.Tick(float64(i)*0.25, v)...))
		}
		return all
	}
	if a, b := run(), run(); !reflect.DeepEqual(a, b) {
		t.Error("identical tick sequences produced different action streams")
	}
}

// TestBaselineSkipsPinnedStreams: a stream whose mode the serving layer
// pinned (degrade failover) is off-limits to the per-stream policy —
// the controller neither sheds nor recovers it — while its backlog
// still counts toward the fleet pressure driving unpinned peers.
func TestBaselineSkipsPinnedStreams(t *testing.T) {
	c := mustBaseline(t, Config{Interval: 0.25, Cooldown: 0.25})
	v := view(2, 10, 1.0)
	v.Streams[0].Pinned = true
	acts := c.Tick(0.25, v)
	var touchedUnpinned bool
	for _, a := range acts {
		if a.Stream == 0 {
			t.Fatalf("controller acted on the pinned stream: %+v", a)
		}
		if a.Stream == 1 {
			touchedUnpinned = true
		}
	}
	if !touchedUnpinned {
		t.Error("hot unpinned stream saw no action alongside a pinned peer")
	}
}
