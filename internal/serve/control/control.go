// Package control is the serving fleet's adaptive control plane: a
// Controller observes per-stream sliding-window statistics at
// virtual-clock control ticks and emits per-stream Policy actions —
// switching a stream between full-refinement / cascaded /
// proposal-only operation, resizing the effective batched-launch
// ceiling under overload, and tightening or relaxing EDF deadline
// budgets for priority classes. It generalizes the binary fleet-wide
// DegradeDepth threshold (PR 2) into the closed-loop per-stream
// mechanism ROADMAP item 1 asks for, extending the per-shard
// autoscaler pattern of serve/cluster (PR 7) down to individual
// streams.
//
// The determinism contract is the serving engine's own, restated for
// controllers: a Controller may key decisions only on the virtual
// clock, its Config (seed included) and the View it is handed — never
// on the wall clock, global rand, or map iteration order. Ticks fire
// at fixed multiples of Config.Interval on the virtual clock, so the
// same scenario replays the same tick instants, the same Views and
// the same actions at any executor count, StepWorkers fan-out or
// shard count; the package is registered in the detlint
// deterministic-package lists to keep that statically checked.
package control

import "fmt"

// Mode selects how a cascade stream's admitted frames are priced by
// the timing model. Like DegradeDepth, a mode is a timing-model shed
// (or un-shed): the detection session always steps in full, only the
// modeled GPU launches change — see serve.Config.DegradeDepth for
// what that does and does not model.
type Mode string

// The per-stream operating modes, cheapest last.
const (
	// ModeAuto is the zero value and the legacy behavior: the fleet-wide
	// DegradeDepth threshold decides per admission whether the frame
	// runs cascaded or proposal-only. Streams stay in ModeAuto until a
	// controller explicitly moves them, which is what keeps a
	// controller-less (or nop-controlled) run byte-identical to the
	// historical engine.
	ModeAuto Mode = ""
	// ModeFull runs the refinement network on the entire frame (the
	// proposal launch still runs, feeding the tracker): CaTDet's region
	// gating is given up for maximum refinement coverage. The highest
	// quality tier, and the most expensive.
	ModeFull Mode = "full"
	// ModeCascade is the paper's CaTDet cascade: proposal pass plus
	// merged refinement regions. The default quality tier.
	ModeCascade Mode = "cascade"
	// ModeProposal sheds the refinement pass entirely (the DegradeDepth
	// degraded mode, now addressable per stream).
	ModeProposal Mode = "proposal"
)

// Quality is the mode's accuracy proxy: the modeled fraction of
// full-refinement detection quality a frame served in this mode
// retains. The anchors follow the paper's tradeoff: full-frame
// refinement is the reference, the cascade gives up a little recall
// outside its gated regions, and proposal-only keeps only the cheap
// network's quality. ModeAuto frames are cascade frames unless the
// DegradeDepth threshold degraded them, so it carries the cascade
// weight.
func (m Mode) Quality() float64 {
	switch m {
	case ModeFull:
		return 1.0
	case ModeProposal:
		return 0.60
	default:
		return 0.95
	}
}

// valid reports whether m is a known mode.
func (m Mode) valid() bool {
	switch m {
	case ModeAuto, ModeFull, ModeCascade, ModeProposal:
		return true
	}
	return false
}

// Fleet is the Action.Stream value addressing the whole fleet rather
// than one stream (batch resizing is a fleet-wide decision: executors
// gather from the shared queue).
const Fleet = -1

// Policy is the per-stream knob set a controller drives.
type Policy struct {
	// Mode moves the stream to this operating mode; ModeAuto leaves the
	// stream's current mode unchanged (controllers that only want to
	// retime deadlines emit it).
	Mode Mode
	// DeadlineScale, when positive, rescales the stream's effective
	// staleness budget to scale * Config.MaxStaleness: its frames'
	// EDF deadlines tighten (the scheduler serves them sooner) and
	// their stale-drop bound tightens with it (served fresh or not at
	// all). 1 restores the configured budget; 0 leaves it unchanged.
	// A no-op when MaxStaleness is off.
	DeadlineScale float64
}

// Action is one decision of a control tick: a per-stream policy, or a
// fleet-wide batch resize when Stream is Fleet.
type Action struct {
	// Stream is the target stream index, or Fleet.
	Stream int
	// Policy applies to stream-addressed actions.
	Policy Policy
	// Batch, on a Fleet action, sets the effective fused-launch size —
	// how many queued frames one executor may gather into a single
	// batched launch — clamped by the engine to [1, Config.MaxBatch].
	// 0 leaves it unchanged.
	Batch int
}

// StreamSignal is one stream's sliding-window observation, the
// per-stream row of a View. Window statistics cover the most recent
// serve.Config.StatsWindow samples (ring buffers, bounded memory).
type StreamSignal struct {
	// Stream is the stream index; Class its configured priority class.
	Stream, Class int
	// Mode is the stream's current operating mode (ModeAuto until a
	// controller moves it).
	Mode Mode
	// Pinned reports the stream's mode is pinned by the serving layer
	// (serve.Server.PinMode — the cluster's degrade failover holds
	// re-placed streams at proposal-only until their shard recovers).
	// A pinned stream's mode is not the controller's to move: policy
	// controllers skip it and its mode field reflects the pre-pin
	// state, not what frames are actually running.
	Pinned bool
	// Queue is the stream's backlog: its frames waiting in the shared
	// scheduler right now.
	Queue int
	// ArrivalRate is the stream's offered rate in frames/s over its
	// arrival window (0 until two arrivals have been seen).
	ArrivalRate float64
	// P50 and P99 are the stream's end-to-end latency percentiles over
	// its served-frame window, in seconds (0 while the window is empty).
	P50, P99 float64
	// Cumulative per-stream outcome counters.
	Served, DroppedQueue, DroppedStale int
}

// View is the fleet state a control tick observes. Slices index by
// stream; the engine reuses the backing arrays between ticks, so
// controllers must not retain them past the Tick call.
type View struct {
	// QueueDepth is the shared queue's total backlog; Busy and
	// Executors the in-service and configured executor counts.
	QueueDepth, Busy, Executors int
	// Batch is the current effective fused-launch ceiling; BaseBatch
	// the configured serve.Config.BatchSize it resets to.
	Batch, BaseBatch int
	// EDF reports the earliest-deadline-first scheduler is active
	// (deadline actions only reorder service under it); MaxStaleness
	// is the configured staleness budget (0 = off).
	EDF          bool
	MaxStaleness float64
	// Cascade reports the fleet serves a cascade system: mode actions
	// are meaningful (single-model streams have exactly one tier).
	Cascade bool
	// Streams is the per-stream signal set, indexed by stream.
	Streams []StreamSignal
}

// Controller is the adaptive control plane's decision procedure,
// invoked by the serving engine at every control tick with the
// current virtual time and fleet view. Implementations must be
// deterministic (see the package comment) and fast: ticks run
// synchronously on the engine under the Server's lock.
type Controller interface {
	// Name identifies the controller (the Config.Kind that built it).
	Name() string
	// Tick observes the fleet at virtual time now and returns the
	// actions to apply, in application order. Returning nil means no
	// change. The View's backing arrays are only valid during the call.
	Tick(now float64, v View) []Action
}

// Kind names a controller implementation.
type Kind string

// The built-in controllers.
const (
	// KindNop selects the do-nothing controller: the engine schedules
	// no control ticks for it, so a nop-controlled run is byte-identical
	// to a controller-less one — the golden-compatibility anchor.
	KindNop Kind = "nop"
	// KindBaseline selects the deterministic seeded hysteresis
	// controller (see Config's threshold fields).
	KindBaseline Kind = "baseline"
)

// Default control parameters.
const (
	// DefaultInterval is the control-tick spacing in virtual seconds.
	DefaultInterval = 0.25
	// DefaultHighDepth / DefaultLowDepth are the per-stream backlog
	// hysteresis thresholds: a stream is overloaded at or above High,
	// calm at or below Low.
	DefaultHighDepth = 3
	DefaultLowDepth  = 1
	// DefaultHighP99 / DefaultLowP99 are the latency hysteresis
	// thresholds in seconds: a stream is overloaded when its window
	// p99 (the tail) reaches HighP99 and calm when its window p50
	// (the median) is back under LowP99 — the tail detects overload
	// first, the median recovers first.
	DefaultHighP99 = 0.30
	DefaultLowP99  = 0.12
	// DefaultMaxBatch bounds the effective fused-launch size the
	// controller may raise the fleet to.
	DefaultMaxBatch = 8
	// DefaultTightenScale is the deadline-budget scale applied to
	// priority (class > 0) streams while the fleet is overloaded.
	DefaultTightenScale = 0.6
	// DefaultFullTicks is how many consecutive calm ticks a stream must
	// string together before the baseline upgrades it to ModeFull
	// (only when UpgradeFull is set).
	DefaultFullTicks = 4
)

// Config selects and parameterizes a controller. It is declarative
// plain data (JSON-able, copyable): the serving engine constructs the
// stateful Controller instance itself, so a cluster sharding one
// serve.Config across N shards gets N independent per-shard
// controllers for free. The zero value means no controller; every
// field is omitempty so echoing the config into a Result never
// perturbs controller-less golden bytes.
type Config struct {
	// Kind selects the controller ("" = none).
	Kind Kind `json:"kind,omitempty"`
	// Interval is the control-tick spacing in virtual seconds
	// (default DefaultInterval). Ticks fire at fixed multiples of the
	// interval, so decision instants are stable under any fleet shape.
	Interval float64 `json:"interval_s,omitempty"`
	// Seed drives the baseline's per-stream cooldown jitter (and any
	// future seeded choices); it composes with the scenario seed.
	Seed int64 `json:"seed,omitempty"`

	// Baseline hysteresis thresholds (see the Default* constants). A
	// stream at or above HighDepth backlog — or whose window p99
	// meets HighP99 — steps down one quality tier; one at or below
	// LowDepth with its window p50 at or below LowP99 steps back up.
	HighDepth int     `json:"high_depth,omitempty"`
	LowDepth  int     `json:"low_depth,omitempty"`
	HighP99   float64 `json:"high_p99_s,omitempty"`
	LowP99    float64 `json:"low_p99_s,omitempty"`
	// Cooldown is the minimum virtual seconds between two mode
	// switches of the same stream (default 2*Interval), the anti-flap
	// guarantee: a stream switches at most once per cooldown however
	// hard the load oscillates.
	Cooldown float64 `json:"cooldown_s,omitempty"`
	// MaxBatch bounds the effective fused-launch size (default
	// DefaultMaxBatch; never below the configured BatchSize).
	MaxBatch int `json:"max_batch,omitempty"`
	// BatchDepth is the fleet-wide queue depth at or above which the
	// baseline raises the effective batch to MaxBatch (default
	// 2*HighDepth). It decouples the fleet batch trigger from the
	// per-stream hysteresis band so a config can ramp the launch size
	// under backlog without ever stepping stream modes down.
	BatchDepth int `json:"batch_depth,omitempty"`
	// TightenScale is the deadline-budget scale for priority streams
	// under fleet overload (default DefaultTightenScale); 1 disables
	// tightening.
	TightenScale float64 `json:"tighten_scale,omitempty"`
	// UpgradeFull lets the baseline promote a persistently calm stream
	// to ModeFull (off by default: full-frame refinement prices well
	// above the cascade, so promotion only pays on very light fleets).
	UpgradeFull bool `json:"upgrade_full,omitempty"`
	// FullTicks is the consecutive-calm-tick streak required for the
	// ModeFull promotion (default DefaultFullTicks).
	FullTicks int `json:"full_ticks,omitempty"`
}

// Enabled reports whether a controller is selected at all (nop
// included).
func (c Config) Enabled() bool { return c.Kind != "" }

// Active reports whether the controller actually drives policy: the
// engine schedules control ticks only for active controllers, which
// is what lets KindNop reproduce controller-less goldens byte for
// byte.
func (c Config) Active() bool { return c.Kind != "" && c.Kind != KindNop }

// WithDefaults fills every unset field with its documented default.
// The zero Config stays zero (no controller selected, nothing to
// default).
func (c Config) WithDefaults() Config {
	if c.Kind == "" {
		return c
	}
	if c.Interval == 0 {
		c.Interval = DefaultInterval
	}
	if c.HighDepth == 0 {
		c.HighDepth = DefaultHighDepth
	}
	if c.LowDepth == 0 {
		// Default below HighDepth: with HighDepth 1 the only coherent
		// low threshold is an empty backlog, which is also what an
		// explicit LowDepth 0 means.
		c.LowDepth = DefaultLowDepth
		if c.LowDepth >= c.HighDepth {
			c.LowDepth = c.HighDepth - 1
		}
	}
	if c.HighP99 == 0 {
		c.HighP99 = DefaultHighP99
	}
	if c.LowP99 == 0 {
		c.LowP99 = DefaultLowP99
	}
	if c.Cooldown == 0 {
		c.Cooldown = 2 * c.Interval
	}
	if c.MaxBatch == 0 {
		c.MaxBatch = DefaultMaxBatch
	}
	if c.BatchDepth == 0 {
		c.BatchDepth = 2 * c.HighDepth
	}
	if c.TightenScale == 0 {
		c.TightenScale = DefaultTightenScale
	}
	if c.FullTicks == 0 {
		c.FullTicks = DefaultFullTicks
	}
	return c
}

// Validate checks an already-defaulted config and reports the first
// violation as a field-path error rooted at "Control" (the serve
// package prefixes its own package path). The zero value is valid.
func (c Config) Validate() error {
	fail := func(field, format string, args ...any) error {
		return fmt.Errorf("Control.%s: %s", field, fmt.Sprintf(format, args...))
	}
	switch c.Kind {
	case "", KindNop, KindBaseline:
	default:
		return fail("Kind", "unknown controller %q (want %q or %q)", c.Kind, KindNop, KindBaseline)
	}
	if c.Kind == "" {
		if c.Interval != 0 {
			return fail("Interval", "control tick %v set but no controller selected (set Kind)", c.Interval)
		}
		return nil
	}
	if c.Interval <= 0 {
		return fail("Interval", "control tick must be positive, got %v", c.Interval)
	}
	if c.Cooldown < 0 {
		return fail("Cooldown", "must be non-negative, got %v", c.Cooldown)
	}
	if c.HighDepth < 1 {
		return fail("HighDepth", "must be at least 1, got %d", c.HighDepth)
	}
	if c.LowDepth < 0 || c.LowDepth >= c.HighDepth {
		return fail("LowDepth", "hysteresis band inverted: LowDepth %d not below HighDepth %d", c.LowDepth, c.HighDepth)
	}
	if c.HighP99 <= 0 {
		return fail("HighP99", "must be positive, got %v", c.HighP99)
	}
	if c.LowP99 < 0 || c.LowP99 >= c.HighP99 {
		return fail("LowP99", "hysteresis band inverted: LowP99 %v not below HighP99 %v", c.LowP99, c.HighP99)
	}
	if c.MaxBatch < 1 {
		return fail("MaxBatch", "must be at least 1, got %d", c.MaxBatch)
	}
	if c.BatchDepth < 1 {
		return fail("BatchDepth", "must be at least 1, got %d", c.BatchDepth)
	}
	if c.TightenScale <= 0 || c.TightenScale > 1 {
		return fail("TightenScale", "outside (0,1], got %v", c.TightenScale)
	}
	if c.FullTicks < 1 {
		return fail("FullTicks", "must be at least 1, got %d", c.FullTicks)
	}
	return nil
}

// New builds the configured controller. The config must already carry
// its defaults (WithDefaults) and validate; serve.Config.Validate
// guarantees both for configs that reached the engine.
func New(cfg Config) (Controller, error) {
	switch cfg.Kind {
	case KindNop:
		return Nop{}, nil
	case KindBaseline:
		return newBaseline(cfg), nil
	}
	return nil, fmt.Errorf("control: unknown controller kind %q", cfg.Kind)
}

// Nop is the do-nothing controller: it observes nothing and emits
// nothing. The serving engine schedules no control ticks for it
// (Config.Active is false), so a nop-controlled run's agenda — and
// its Result — is byte-identical to a controller-less run: the
// golden-compatibility anchor every adaptive change is measured
// against.
type Nop struct{}

// Name implements Controller.
func (Nop) Name() string { return string(KindNop) }

// Tick implements Controller.
func (Nop) Tick(float64, View) []Action { return nil }
