package control

import "math/rand"

// baseline is the deterministic seeded hysteresis controller: a
// two-threshold band per signal (backlog depth, window p99) with
// per-stream cooldowns.
//
// Per stream, every tick compares backlog depth and the window
// latency percentiles against a two-threshold hysteresis band. A
// backlog at or above HighDepth sheds one quality tier (cascade ->
// proposal); a window p99 at or above HighP99 additionally revokes a
// ModeFull promotion (full -> cascade) — but never sheds below the
// baseline tier, because full-frame refinement inflates the measured
// tail itself (see Tick). A calm stream (backlog at or below
// LowDepth, window p50 at or below LowP99) steps back up; the band
// between the thresholds changes nothing, and a stream that just
// switched is frozen for its cooldown.
//
// Fleet-wide, the controller raises the effective fused-launch size
// to MaxBatch while the shared queue sits at or above BatchDepth
// (amortizing the per-launch constant exactly when there is a backlog
// to fuse) and restores the configured BatchSize when the queue
// drains to LowDepth; under the EDF scheduler it additionally
// tightens the deadline budget of priority (class > 0) streams to
// TightenScale while at least half the fleet is hot — their frames
// are served first and dropped if they cannot be served fresh — and
// relaxes it back at calm.
//
// Determinism: decisions key only on the virtual time and the View.
// The per-stream cooldown jitter (which desynchronizes switches of
// identically-loaded streams) is drawn from a per-stream seeded
// source at first sight of the stream, never from global rand, so
// any tick order over any fleet shape draws identical jitter.
type baseline struct {
	cfg Config

	// Per-stream state, grown on first sight: the virtual time of the
	// stream's last mode switch, its seeded cooldown jitter, and its
	// consecutive-calm-tick streak (for the optional ModeFull
	// promotion).
	lastSwitch []float64
	jitter     []float64
	calmTicks  []int

	// batch is the fleet batch ceiling last emitted (0 until the first
	// tick); dlScale the deadline scale last emitted (1 until
	// tightened).
	batch   int
	dlScale float64

	acts []Action // reused between ticks
}

func newBaseline(cfg Config) *baseline {
	return &baseline{cfg: cfg, dlScale: 1}
}

// Name implements Controller.
func (b *baseline) Name() string { return string(KindBaseline) }

// ensure grows the per-stream state to n streams, drawing each new
// stream's cooldown jitter from its own seeded source (deterministic
// regardless of when the fleet shape is first observed).
func (b *baseline) ensure(n int) {
	for s := len(b.jitter); s < n; s++ {
		rng := rand.New(rand.NewSource(b.cfg.Seed*2_147_483_647 + int64(s)*92_821 + 13))
		b.jitter = append(b.jitter, rng.Float64()*0.5*b.cfg.Cooldown)
		b.lastSwitch = append(b.lastSwitch, -1e18)
		b.calmTicks = append(b.calmTicks, 0)
	}
}

// Tick implements Controller.
func (b *baseline) Tick(now float64, v View) []Action {
	b.ensure(len(v.Streams))
	b.acts = b.acts[:0]

	hotStreams := 0
	for i := range v.Streams {
		sig := &v.Streams[i]
		// Two pressure signals with different authority. Backlog depth
		// (shedHot) is the only trigger allowed to push a stream BELOW
		// its baseline tier (cascade -> proposal): a deep queue is
		// unambiguous overload. The window p99 (demoteHot) additionally
		// revokes a ModeFull promotion — and only that — because full-
		// frame refinement inflates the very tail being measured, so a
		// p99-keyed shed would chase its own wake: slow full frames sit
		// in the window for a full StatsWindow after demotion and would
		// otherwise walk the stream all the way down to proposal. Calm
		// keys on the median (window p50): a small window's p99 is its
		// max, where one burst straggler would pin the stream "not
		// calm" long after the burst ends — the median recovers as soon
		// as service does.
		shedHot := sig.Queue >= b.cfg.HighDepth
		demoteHot := shedHot || (sig.P99 > 0 && sig.P99 >= b.cfg.HighP99)
		calm := sig.Queue <= b.cfg.LowDepth && sig.P50 <= b.cfg.LowP99
		if demoteHot {
			hotStreams++
		}
		if !v.Cascade {
			continue // single-model streams have one tier
		}
		if sig.Pinned {
			// The serving layer pinned this stream's mode (degrade
			// failover); it still counts toward fleet pressure above,
			// but its mode is not ours to move.
			continue
		}
		if calm {
			b.calmTicks[i]++
		} else {
			b.calmTicks[i] = 0
		}
		if now-b.lastSwitch[i] < b.cfg.Cooldown+b.jitter[i] {
			continue
		}
		cur := sig.Mode
		if cur == ModeAuto {
			cur = ModeCascade
		}
		next := cur
		switch {
		case demoteHot && cur == ModeFull:
			next = ModeCascade
		case shedHot && cur == ModeCascade:
			next = ModeProposal
		case calm && cur == ModeProposal:
			next = ModeCascade
		case calm && cur == ModeCascade && b.cfg.UpgradeFull && b.calmTicks[i] >= b.cfg.FullTicks:
			next = ModeFull
		}
		if next != cur {
			b.acts = append(b.acts, Action{Stream: sig.Stream, Policy: Policy{Mode: next}})
			b.lastSwitch[i] = now
			b.calmTicks[i] = 0
		}
	}

	// Fleet batch sizing: fuse while there is a backlog worth fusing.
	if b.batch == 0 {
		b.batch = v.Batch
	}
	want := b.batch
	switch {
	case v.QueueDepth >= b.cfg.BatchDepth:
		want = b.cfg.MaxBatch
		if want < v.BaseBatch {
			want = v.BaseBatch
		}
	case v.QueueDepth <= b.cfg.LowDepth:
		want = v.BaseBatch
	}
	if want != b.batch {
		b.acts = append(b.acts, Action{Stream: Fleet, Batch: want})
		b.batch = want
	}

	// EDF deadline policy: tighten priority streams while at least half
	// the fleet is hot, relax when the pressure clears. Only meaningful
	// under EDF with a staleness budget; skipped otherwise.
	if v.EDF && v.MaxStaleness > 0 && b.cfg.TightenScale < 1 {
		scale := 1.0
		if 2*hotStreams >= len(v.Streams) && hotStreams > 0 {
			scale = b.cfg.TightenScale
		}
		if scale != b.dlScale {
			b.dlScale = scale
			for i := range v.Streams {
				if v.Streams[i].Class > 0 {
					b.acts = append(b.acts, Action{Stream: v.Streams[i].Stream, Policy: Policy{DeadlineScale: scale}})
				}
			}
		}
	}
	return b.acts
}
