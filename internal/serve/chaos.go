package serve

import (
	"math"
	"math/rand"
)

// ReconnectPolicy selects how Submit treats a per-stream frame-index
// regression — the signature of a camera that dropped out and
// reconnected with restarted numbering. Under the default reject
// policy a regression (and a per-stream arrival-time regression) is a
// hard error, the contract since the Server API landed; the other two
// policies accept the reconnect, count it in StreamStats.Reconnects,
// emit an EventReconnect, and re-stamp a backwards per-stream clock at
// the stream's last arrival instead of erroring (reconnecting cameras
// come back with skewed clocks).
type ReconnectPolicy string

// The reconnect policies.
const (
	// ReconnectReject keeps the strict Submit contract: frame indices
	// strictly increasing, arrival times nondecreasing, anything else
	// is an error.
	ReconnectReject ReconnectPolicy = "reject"
	// ReconnectResume treats the stream as the same camera rebased:
	// the reconnecting frame is renumbered to continue the stream's
	// timeline (wire index w maps to lastFrame+1, w+1 to lastFrame+2,
	// and so on), the detection session keeps its tracker state, and
	// the world continues — the outage is a gap in time, not a new
	// scene.
	ReconnectResume ReconnectPolicy = "resume-with-gap"
	// ReconnectReset treats the reconnect as a new capture session:
	// the stream's detection session is reset (fresh tracker state, in
	// step order so queued pre-reconnect frames still step against the
	// old session) and the wire indices are taken literally, replaying
	// the stream's world from the reconnecting index.
	ReconnectReset ReconnectPolicy = "reset-session"
)

// PoisonPolicy selects how Submit treats a corrupt submission — a
// poison pill: a non-finite arrival time, a negative frame index, or a
// frame index beyond Config.MaxFrame. Pills carry no usable frame, so
// there is nothing to serve; the policies differ in who absorbs the
// damage.
type PoisonPolicy string

// The poison policies.
const (
	// PoisonError fails the Submit call (the strict historical
	// contract; an Ingest feeding corrupt arrivals stops at the pill).
	PoisonError PoisonPolicy = "error"
	// PoisonDrop swallows the pill: Submit returns nil, the pill is
	// counted in StreamStats.DroppedPoison and emitted as an
	// EventDroppedPoison, and the stream's session, causality state
	// and stats are untouched — subsequent frames of the same stream
	// serve exactly as if the pill never arrived.
	PoisonDrop PoisonPolicy = "drop"
)

// DefaultMaxFrame bounds the frame index Submit accepts when
// Config.MaxFrame is zero: about ten hours of 30fps video. Without a
// bound, one corrupt submission with a huge index would force the
// lazily-grown synthetic world (memory and CPU linear in the largest
// index) to swallow it — a denial of service by typo.
const DefaultMaxFrame = 1 << 20

// Chaos describes operational faults injected into the preset arrival
// schedule: camera dropouts, variable-fps clients, skewed client
// clocks and corrupt-frame poison pills. The zero value is fully off.
// Chaos perturbs only the offered load — it is applied inside
// ScheduleSource as a pure function of (Config, Seed), so a chaotic
// scenario is exactly as deterministic as a clean one: same config +
// seed means byte-identical results at any executor, batch or
// step-worker count.
type Chaos struct {
	// DropoutRate is the expected number of camera dropouts per stream
	// per minute of offered load; DropoutMeanLen is the mean outage
	// length in seconds (exponential; defaults to 2 when a rate is set
	// and no length is). Frames falling inside an outage are never
	// offered.
	DropoutRate    float64 `json:"dropout_rate_min,omitempty"`
	DropoutMeanLen float64 `json:"dropout_mean_len_s,omitempty"`
	// Renumber restarts each camera's wire frame numbering at 0 after
	// every outage — the realistic reconnect, and the one that needs a
	// server-side Reconnect policy other than the rejecting default
	// (Config.Validate enforces the pairing).
	Renumber bool `json:"renumber,omitempty"`
	// FPSJitter is the standard deviation of the log-normal factor
	// applied to each inter-arrival gap: variable-fps mobile clients
	// whose encoder rate wanders. 0 is a metronome; 0.2 is a phone on
	// a flaky uplink.
	FPSJitter float64 `json:"fps_jitter,omitempty"`
	// ClockSkew is the standard deviation, in seconds, of a constant
	// per-stream offset added to every arrival stamp: fleets of
	// cameras that disagree about what time it is. Skew reorders
	// arrivals across streams while preserving each stream's own
	// order; stamps are clamped at 0.
	ClockSkew float64 `json:"clock_skew_s,omitempty"`
	// PoisonRate is the probability that each surviving frame is
	// replaced in transit by a corrupt poison pill (submitted with
	// frame index -1). Requires Config.Poison == PoisonDrop, or the
	// schedule would fail at the first pill.
	PoisonRate float64 `json:"poison_rate,omitempty"`
}

// enabled reports whether any chaos channel is on.
func (c Chaos) enabled() bool {
	return c.DropoutRate > 0 || c.FPSJitter > 0 || c.ClockSkew > 0 || c.PoisonRate > 0
}

// chaosStream perturbs one stream's clean arrival instants into the
// chaotic wire schedule: jittered spacing, outage-dropped spans with
// optional renumbering, poison substitution and a skewed clock. One
// private RNG per stream, seeded from (cfg.Seed, s) only, so the chaos
// a stream suffers is independent of every fleet knob.
func chaosStream(cfg Config, s int, ts []float64) []Arrival {
	ch := cfg.Chaos
	rng := rand.New(rand.NewSource(cfg.Seed*9_176_941 + int64(s)*15_485_863 + 101))

	// Variable-fps client: each inter-arrival gap is scaled by an
	// independent log-normal factor, preserving order and positivity.
	if ch.FPSJitter > 0 {
		jittered := make([]float64, len(ts))
		prevBase, prev := 0.0, 0.0
		for k, t := range ts {
			gap := t - prevBase
			prevBase = t
			prev += gap * math.Exp(rng.NormFloat64()*ch.FPSJitter)
			jittered[k] = prev
		}
		ts = jittered
	}

	// Camera dropout episodes: Poisson count over the load window,
	// uniform starts, exponential lengths.
	type span struct{ from, to float64 }
	var outages []span
	if ch.DropoutRate > 0 {
		n := poissonVariate(rng, ch.DropoutRate/60*cfg.Duration)
		for i := 0; i < n; i++ {
			from := rng.Float64() * cfg.Duration
			outages = append(outages, span{from, from + rng.ExpFloat64()*ch.DropoutMeanLen})
		}
	}
	inOutage := func(t float64) bool {
		for _, o := range outages {
			if t >= o.from && t < o.to {
				return true
			}
		}
		return false
	}

	// Constant per-stream clock skew. Clamping at zero preserves
	// per-stream order (max is monotone).
	skew := 0.0
	if ch.ClockSkew > 0 {
		skew = rng.NormFloat64() * ch.ClockSkew
	}

	out := make([]Arrival, 0, len(ts))
	wire, dropped := 0, false
	for k, t := range ts {
		if inOutage(t) {
			dropped = true
			continue
		}
		if dropped && ch.Renumber {
			wire = 0
		}
		dropped = false
		frame := k
		if ch.Renumber {
			frame = wire
		}
		wire++
		if ch.PoisonRate > 0 && rng.Float64() < ch.PoisonRate {
			// Corrupted in transit: the camera sent the frame (its
			// numbering advances) but the server receives garbage.
			frame = -1
		}
		out = append(out, Arrival{Stream: s, Frame: frame, At: math.Max(0, t+skew)})
	}
	return out
}

// poissonVariate draws a Poisson count via Knuth's method; chaos rates
// are small, so the loop is short.
func poissonVariate(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
