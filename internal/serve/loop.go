package serve

import (
	"container/heap"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detector"
	"repro/internal/gpumodel"
	"repro/internal/ops"
	"repro/internal/serve/control"
	"repro/internal/serve/sched"
	"repro/internal/sim"
	"repro/internal/video"
)

// Event kinds. At equal virtual times completions sort before resizes,
// resizes before control ticks and control ticks before arrivals, so an
// executor freed at t can serve a frame arriving at t, a capacity
// change effective at t governs that frame's dispatch, and a control
// tick at t observes the fleet after completions and resizes but
// before the instant's arrivals — the same before-Submit ordering the
// cluster control plane runs its shard ticks in.
const (
	evCompletion = iota
	evResize
	evControl
	evArrival
)

// event is one entry of the virtual-clock agenda. (t, kind, stream,
// frame, epoch) is a total order: a stream never has two events of the
// same kind for the same frame (a batch completion is keyed by its
// first frame) — except across reset-session reconnects, where frame
// indices restart and the epoch breaks the tie — so heap order, and
// with it the whole simulation, is deterministic. arrive is the
// frame's arrival stamp: normally equal to t, earlier only for a frame
// submitted behind the clock (see Server.Submit), whose latency still
// counts from the true arrival. frame is always the effective (world)
// index, post any reconnect rebase.
type event struct {
	t             float64
	kind          int
	stream, frame int
	arrive        float64
	epoch         int
	// execs is the target executor count of an evResize event (see
	// Server.ResizeAt); zero and ignored for the other kinds.
	execs int
}

type agenda []event

func (a agenda) Len() int { return len(a) }
func (a agenda) Less(i, j int) bool {
	if a[i].t != a[j].t {
		return a[i].t < a[j].t
	}
	if a[i].kind != a[j].kind {
		return a[i].kind < a[j].kind
	}
	if a[i].stream != a[j].stream {
		return a[i].stream < a[j].stream
	}
	if a[i].frame != a[j].frame {
		return a[i].frame < a[j].frame
	}
	if a[i].epoch != a[j].epoch {
		return a[i].epoch < a[j].epoch
	}
	return a[i].execs < a[j].execs
}
func (a agenda) Swap(i, j int) { a[i], a[j] = a[j], a[i] }
func (a *agenda) Push(x any)   { *a = append(*a, x.(event)) }
func (a *agenda) Pop() any     { old := *a; n := len(old); e := old[n-1]; *a = old[:n-1]; return e }
func (a *agenda) add(e event)  { heap.Push(a, e) }
func (a *agenda) next() event  { return heap.Pop(a).(event) }

// admitted is one frame an executor pulled from the scheduler, together
// with the operating mode resolved at its admission (the per-stream
// policy, or the legacy DegradeDepth decision under control.ModeAuto)
// and, once the step phase has run, the frame's pricing component: the
// full dispatch price under per-frame launches (effective batch <= 1),
// or the frame's workload feeding the fused-launch price under
// batching.
type admitted struct {
	job     sched.Job
	mode    control.Mode
	service float64 // effective batch <= 1: this frame's dispatch price
	work    float64 // effective batch > 1: this frame's ops for BatchFrames
}

// degraded reports the frame ran proposal-only (the refinement pass
// was shed), whether by the legacy DegradeDepth threshold or an
// explicit per-stream ModeProposal policy.
func (a *admitted) degraded() bool { return a.mode == control.ModeProposal }

// streamAcc accumulates one stream's counters during the run.
type streamAcc struct {
	arrived, served            int
	droppedQueue, droppedStale int
	droppedPoison, reconnects  int
	failedOver                 int
	degraded, modeFull         int
	latencies                  []float64
}

// pendingBatch is one in-flight launch under completion accounting
// (Config.FailableExecutors): the frames of a dispatched batch, held
// unrecorded until the completion event fires so a failAt between
// dispatch and completion can seize them as if the launch never
// happened. (t, stream, frame, epoch) mirrors the evCompletion event's
// identity; batch is the dispatch ordinal the served events carry.
type pendingBatch struct {
	t      float64
	stream int
	frame  int
	epoch  int
	batch  int
	frames []admitted
}

// arrivalTimes precomputes every stream's frame arrival instants within
// cfg.Duration. The schedule depends only on (seed, stream index,
// arrival process, rate), never on executors or policies, so changing
// the fleet shape replays the exact same offered load.
func arrivalTimes(cfg Config) [][]float64 {
	out := make([][]float64, cfg.Streams)
	for s := range out {
		rate := cfg.FPS
		if len(cfg.StreamFPS) > 0 {
			rate = cfg.StreamFPS[s]
		}
		rng := rand.New(rand.NewSource(cfg.Seed*2_654_435 + int64(s)*104_729 + 37))
		var ts []float64
		switch cfg.Arrivals {
		case Poisson:
			t := rng.ExpFloat64() / rate
			for t < cfg.Duration {
				ts = append(ts, t)
				t += rng.ExpFloat64() / rate
			}
		case Burst:
			// The FixedFPS grid gated through the fleet-wide on/off
			// square wave: all streams share the window boundaries (a
			// synchronized rush hour), each keeps its own seeded phase
			// within it.
			phase := rng.Float64() / rate
			on := cfg.BurstDuty * cfg.BurstPeriod
			for k := 0; ; k++ {
				t := phase + float64(k)/rate
				if t >= cfg.Duration {
					break
				}
				if math.Mod(t, cfg.BurstPeriod) < on {
					ts = append(ts, t)
				}
			}
		default: // FixedFPS
			phase := rng.Float64() / rate
			for k := 0; ; k++ {
				t := phase + float64(k)/rate
				if t >= cfg.Duration {
					break
				}
				ts = append(ts, t)
			}
		}
		out[s] = ts
	}
	return out
}

// fleet is the single-threaded serving engine: the virtual-clock agenda,
// the scheduler, the executors and the per-stream sessions and worlds.
// Server wraps it behind a mutex; nothing here is concurrency-safe on
// its own.
type fleet struct {
	cfg     Config
	seed    int64
	gpu     gpumodel.Model
	refCost ops.CostModel
	cascade bool

	// Per-stream state. presets[s] is the (possibly rate-rescaled)
	// world preset of stream s; growers[s] incrementally extends its
	// synthetic sequence seqs[s] (frames exist up to the largest index
	// submitted so far). sessEpoch[s] is the capture-session
	// generation sessions[s] currently holds: when a frame from a
	// later epoch (a reset-session reconnect) reaches its step, the
	// session is Reset first — lazily, at step time, so frames queued
	// before the reconnect still step against the session that
	// watched them.
	presets   []video.Preset
	sessions  []core.System
	growers   []*video.Grower
	seqs      []*dataset.Sequence
	sessEpoch []int

	agenda  agenda
	sched   sched.Scheduler
	busy    int
	batches int

	// Failover machinery (inert unless Config.FailableExecutors).
	// failable selects completion-time accounting; pend holds the
	// in-flight launches awaiting their completion events (at most the
	// executor count, matched linearly); pinned[s], when not ModeAuto,
	// overrides both the control plane and the DegradeDepth policy for
	// stream s — the cluster's degrade failover holds re-placed streams
	// at proposal-only with it until their dead shard recovers. The
	// slice is allocated lazily on the first Server.PinMode call, so a
	// never-pinned fleet pays nothing for it.
	failable bool
	pend     []pendingBatch
	pinned   []control.Mode

	// queued[s] counts stream s's frames currently waiting in the
	// scheduler (admitted, not yet popped) — the per-stream backlog the
	// cluster router's migration policy keys on. resized flips on the
	// first applied evResize; resizes counts them; capInt integrates
	// the executor-count curve (the capacity a per-executor price
	// multiplies, and the utilization denominator once capacity is no
	// longer constant).
	queued  []int
	resized bool
	resizes int
	capInt  float64
	execs0  int // Config.Executors at construction (Result identity)

	// workers is Config.StepWorkers: the fan-out width of the step
	// phase. poolWork feeds the persistent step workers one active
	// stream index at a time (started lazily on the first parallel
	// round, released by closePool); poolWG is the round barrier. The
	// remaining fields are the dispatch round's reused scratch: the
	// flat list of admitted frames, the [start,end) bounds of each
	// gathered batch within it, the per-stream step groups with the
	// list of active streams, and the workload vector for batched
	// pricing.
	workers     int
	poolWork    chan int
	poolWG      sync.WaitGroup
	adm         []admitted
	batchBounds [][2]int
	byStream    [][]*admitted
	active      []int
	works       []float64

	sink Sink
	win  *latWindow

	// Per-stream sliding windows, always maintained: latWinS[s] rings
	// the stream's most recent served-frame latencies and arrWin[s] its
	// most recent arrival instants, both capped at Config.StatsWindow —
	// the signals Stats.PerStreamWindow exposes and the control plane's
	// View is built from.
	latWinS []*latWindow
	arrWin  []*stampWindow

	// Adaptive control plane (nil/inert without an active
	// Config.Control). ctrl is the per-fleet controller instance; mode,
	// effStale and effBatch are the policy state its actions drive —
	// under ModeAuto, the configured MaxStaleness and BatchSize they
	// are initialized to, so a controller-less run's arithmetic is
	// untouched. tickArmed tracks whether an evControl event is on the
	// agenda: ticks self-reschedule while work is pending and go
	// dormant on an idle fleet (so Drain terminates), re-armed by the
	// next arrival at the next fixed Interval multiple.
	ctrl         control.Controller
	mode         []control.Mode
	effStale     []float64
	effBatch     int
	tickArmed    bool
	controlTicks int
	modeSwitches int
	view         control.View // reused tick scratch

	now, lastT        float64
	depthInt, busyInt float64 // time integrals of queue depth / busy executors
	maxDepth          int
	maxService        float64
	acc               []streamAcc
}

// newFleet builds the engine for a normalized, validated config.
func newFleet(cfg Config) (*fleet, error) {
	f := &fleet{
		cfg:      cfg,
		seed:     cfg.Seed,
		gpu:      gpumodel.Default(),
		cascade:  cfg.Spec.Kind != sim.Single,
		sink:     cfg.Sink,
		win:      newLatWindow(cfg.StatsWindow),
		workers:  cfg.StepWorkers,
		execs0:   cfg.Executors,
		failable: cfg.FailableExecutors,
	}
	if cfg.GPU != nil {
		f.gpu = *cfg.GPU
	}
	var err error
	f.sched, err = sched.New(cfg.Scheduler, sched.Config{
		Cap:        cfg.QueueCap,
		DropNewest: cfg.Drop == DropNewest,
		Streams:    cfg.Streams,
	})
	if err != nil {
		return nil, err
	}
	if f.cascade {
		ref, err := detector.New(cfg.Spec.Refinement)
		if err != nil {
			return nil, err
		}
		f.refCost = ref.Cost
	}

	// The base world preset runs at the offered rate: frame k of a
	// stream is the world 1/FPS seconds after frame k-1. A stream whose
	// StreamFPS overrides the rate gets its own preset rescaled to that
	// rate, so its frame content and arrival cadence agree — the same
	// per-second motion, lifetime and density statistics as its
	// same-rate neighbors, sampled at its own cadence.
	base := cfg.Preset
	base.FPS = cfg.FPS
	f.presets = make([]video.Preset, cfg.Streams)
	for s := range f.presets {
		p := base
		if len(cfg.StreamFPS) > 0 && cfg.StreamFPS[s] != cfg.FPS {
			p = base.Rescale(cfg.StreamFPS[s])
		}
		f.presets[s] = p
	}

	// A preset that models degraded imaging (night/low-light packs)
	// scales every detector's noise channels; the knob composes with
	// any scale the caller already put on the spec.
	spec := cfg.Spec
	if n := cfg.Preset.DetectorNoise; n > 0 && n != 1 {
		if spec.NoiseScale <= 0 {
			spec.NoiseScale = 1
		}
		spec.NoiseScale *= n
	}
	factory := spec.Factory(base.ClassList())
	f.sessions = make([]core.System, cfg.Streams)
	f.growers = make([]*video.Grower, cfg.Streams)
	f.seqs = make([]*dataset.Sequence, cfg.Streams)
	f.sessEpoch = make([]int, cfg.Streams)
	f.acc = make([]streamAcc, cfg.Streams)
	f.queued = make([]int, cfg.Streams)
	f.mode = make([]control.Mode, cfg.Streams)
	f.effStale = make([]float64, cfg.Streams)
	f.effBatch = cfg.BatchSize
	f.latWinS = make([]*latWindow, cfg.Streams)
	f.arrWin = make([]*stampWindow, cfg.Streams)
	for s := range f.effStale {
		f.effStale[s] = cfg.MaxStaleness
		f.latWinS[s] = newLatWindow(cfg.StatsWindow)
		f.arrWin[s] = newStampWindow(cfg.StatsWindow)
	}
	if cfg.Control.Active() {
		ctrl, err := control.New(cfg.Control)
		if err != nil {
			return nil, err
		}
		f.ctrl = ctrl
		f.view.Streams = make([]control.StreamSignal, cfg.Streams)
	}
	for s := 0; s < cfg.Streams; s++ {
		sys, err := factory()
		if err != nil {
			return nil, err
		}
		f.growers[s] = video.NewGrower(f.presets[s], f.seed, s)
		f.seqs[s] = f.growers[s].Sequence()
		sys.Reset(f.seqs[s])
		f.sessions[s] = sys
	}
	return f, nil
}

// ensureFrame grows stream s's world so frame exists. The grower
// extends the sequence in place, emitting only the missing frames —
// frames already served are never touched (generation is
// prefix-stable), total work over a Server's lifetime is linear in the
// largest frame index actually submitted (the former
// regenerate-at-doubled-length scheme redid the whole prefix on every
// growth, O(n²) total), and memory stays proportional to that index.
func (f *fleet) ensureFrame(s, frame int) {
	f.growers[s].Grow(frame + 1)
}

// advanceTo processes every agenda event up to and including virtual
// time t, in (t, kind, stream, frame) order.
func (f *fleet) advanceTo(t float64) {
	for f.agenda.Len() > 0 && f.agenda[0].t <= t {
		f.handle(f.agenda.next())
	}
}

// handle plays one event: advance the clock, apply the event, then let
// idle executors pull work.
func (f *fleet) handle(e event) {
	f.tick(e.t)
	switch e.kind {
	case evArrival:
		f.acc[e.stream].arrived++
		f.arrWin[e.stream].add(e.t)
		f.admit(f.job(e.stream, e.frame, e.arrive, e.epoch))
		f.armTick(e.t)
	case evCompletion:
		f.busy--
		if f.failable {
			f.settle(e)
		}
	case evControl:
		f.controlTick(e.t)
	case evResize:
		// Capacity changes take effect on the virtual clock like any
		// other event; the dispatch below immediately puts grown
		// capacity to work on the backlog. Shrinking never preempts a
		// running batch — busy executors finish and then stay idle.
		f.resized = true
		if e.execs != f.cfg.Executors {
			f.cfg.Executors = e.execs
			f.resizes++
		}
	}
	f.dispatch()
}

// emit hands an event to the sink, if any. Sinks run synchronously on
// the engine (under the Server's lock): they must be fast and must not
// call back into the Server.
func (f *fleet) emit(e Event) {
	if f.sink != nil {
		f.sink.ServeEvent(e)
	}
}

// tick advances the virtual clock to t, integrating the queue-depth and
// busy-executor curves over the elapsed interval.
func (f *fleet) tick(t float64) {
	dt := t - f.lastT
	f.depthInt += dt * float64(f.sched.Len())
	f.busyInt += dt * float64(f.busy)
	f.capInt += dt * float64(f.cfg.Executors)
	f.lastT = t
	f.now = t
}

// armTick puts the next control tick on the agenda, if a controller is
// active and none is pending. Ticks fire at fixed multiples of the
// control interval — the first strict grid point after now — so the
// decision instants of a scenario are stable regardless of when load
// arrives, the property the determinism tests pin. Called on every
// arrival: while the fleet has work the tick self-reschedules, and
// when it goes dormant on an idle fleet the next arrival re-arms it
// here.
func (f *fleet) armTick(now float64) {
	if f.ctrl == nil || f.tickArmed {
		return
	}
	iv := f.cfg.Control.Interval
	t := (math.Floor(now/iv) + 1) * iv
	if t <= now { // guard float edge at exact grid points
		t += iv
	}
	f.agenda.add(event{t: t, kind: evControl})
	f.tickArmed = true
}

// controlTick runs one control decision: build the sliding-window view,
// let the controller emit actions, apply them, and re-arm the next
// tick while queued or in-flight work remains. With the fleet idle the
// tick chain goes dormant instead of self-rescheduling — an armed tick
// on an empty agenda would make Server.Drain spin forever — and the
// next arrival re-arms it on the same fixed grid.
func (f *fleet) controlTick(t float64) {
	f.controlTicks++
	f.tickArmed = false
	for _, a := range f.ctrl.Tick(t, f.buildView()) {
		f.apply(a, t)
	}
	if f.sched.Len() > 0 || f.busy > 0 {
		f.agenda.add(event{t: t + f.cfg.Control.Interval, kind: evControl})
		f.tickArmed = true
	}
}

// buildView assembles the control.View for a tick from the per-stream
// sliding windows, reusing the fleet's scratch (controllers must not
// retain it).
func (f *fleet) buildView() control.View {
	f.view.QueueDepth = f.sched.Len()
	f.view.Busy = f.busy
	f.view.Executors = f.cfg.Executors
	f.view.Batch = f.effBatch
	f.view.BaseBatch = f.cfg.BatchSize
	f.view.EDF = f.cfg.Scheduler == sched.EDF
	f.view.MaxStaleness = f.cfg.MaxStaleness
	f.view.Cascade = f.cascade
	for s := range f.view.Streams {
		sig := &f.view.Streams[s]
		sig.Stream = s
		sig.Class = 0
		if len(f.cfg.Priorities) > 0 {
			sig.Class = f.cfg.Priorities[s]
		}
		sig.Mode = f.mode[s]
		sig.Pinned = f.pin(s) != control.ModeAuto
		sig.Queue = f.queued[s]
		sig.ArrivalRate = f.arrWin[s].rate()
		sig.P50, sig.P99 = f.latWinS[s].quantiles()
		a := &f.acc[s]
		sig.Served = a.served
		sig.DroppedQueue = a.droppedQueue
		sig.DroppedStale = a.droppedStale
	}
	return f.view
}

// apply commits one controller action, clamping defensively: out-of-
// range streams are ignored, batch requests clamp to [1, MaxBatch].
// Mode switches are counted and sunk (EventModeSwitch) at the decision
// instant.
func (f *fleet) apply(a control.Action, now float64) {
	if a.Stream == control.Fleet {
		if a.Batch > 0 {
			b := a.Batch
			if b > f.cfg.Control.MaxBatch {
				b = f.cfg.Control.MaxBatch
			}
			f.effBatch = b
		}
		return
	}
	if a.Stream < 0 || a.Stream >= f.cfg.Streams {
		return
	}
	if m := a.Policy.Mode; m != control.ModeAuto && m != f.mode[a.Stream] && f.cascade {
		f.mode[a.Stream] = m
		f.modeSwitches++
		f.emit(Event{Kind: EventModeSwitch, Stream: a.Stream, Time: now, Mode: string(m)})
	}
	if s := a.Policy.DeadlineScale; s > 0 && f.cfg.MaxStaleness > 0 {
		f.effStale[a.Stream] = f.cfg.MaxStaleness * s
	}
}

// admit offers an arriving frame to the scheduler and charges the
// victim, if the policy evicted one to stay under the cap.
func (f *fleet) admit(j sched.Job) {
	f.queued[j.Stream]++
	if victim, dropped := f.sched.Admit(j); dropped {
		f.queued[victim.Stream]--
		f.acc[victim.Stream].droppedQueue++
		f.emit(Event{
			Kind: EventDroppedQueue, Stream: victim.Stream, Frame: victim.Frame,
			Arrive: victim.Arrive, Time: f.now, Epoch: victim.Epoch,
		})
	}
	if d := f.sched.Len(); d > f.maxDepth {
		f.maxDepth = d
	}
}

// dispatch hands queued frames to idle executors until one of the two
// runs out, in three phases. Phase 1 (serial): gather every batch the
// round's idle executors can take — up to BatchSize frames each, with
// the stale-skip and degrade policies applied per frame as it pops —
// exactly as the serial engine would, since gathering touches only the
// scheduler and the clock, never the step results. Phase 2 (parallel):
// step every admitted frame's session, fanned out per stream across
// StepWorkers goroutines (see stepRound for why this cannot change the
// output). Phase 3 (serial): price, schedule completions and account
// every batch in gather order, which is the exact event order the
// serial engine produced.
//
// With multiple executors freed at one instant, the only observable
// reordering against the pre-parallel engine is that all of the
// round's stale-skip sink events now precede its served sink events
// (phase 1 runs before phase 3); both carry the same decision instant,
// so the sink's nondecreasing-time contract is unchanged, and with one
// executor (at most one batch per round) the event stream is
// byte-identical.
func (f *fleet) dispatch() {
	f.adm = f.adm[:0]
	f.batchBounds = f.batchBounds[:0]
	for f.busy < f.cfg.Executors && f.sched.Len() > 0 {
		start := len(f.adm)
		f.gather()
		if len(f.adm) == start {
			continue // every candidate was stale; re-check the queue
		}
		f.busy++
		f.batchBounds = append(f.batchBounds, [2]int{start, len(f.adm)})
	}
	if len(f.batchBounds) == 0 {
		return
	}
	f.stepRound()
	for _, bb := range f.batchBounds {
		batch := f.adm[bb[0]:bb[1]]
		service := f.priceBatch(batch)
		if service > f.maxService {
			f.maxService = service
		}
		f.batches++
		head := batch[0].job
		f.agenda.add(event{t: f.now + service, kind: evCompletion, stream: head.Stream, frame: head.Frame, epoch: head.Epoch})
		if f.failable {
			// Completion accounting: hold the launch unrecorded until
			// its completion event fires (settle), so a failAt between
			// now and then can seize the frames as never-served.
			f.pend = append(f.pend, pendingBatch{
				t: f.now + service, stream: head.Stream, frame: head.Frame,
				epoch: head.Epoch, batch: f.batches,
				frames: append([]admitted(nil), batch...),
			})
			continue
		}
		f.account(batch, f.now+service, f.batches)
	}
}

// account records a launch's frames as served at its completion instant
// done: per-stream counters, latency samples, sliding windows and the
// EventServed emissions. Under dispatch accounting (the default) it
// runs inside dispatch with done = now + service — the historical byte
// order every golden pins; under completion accounting
// (Config.FailableExecutors) settle calls it when the completion event
// fires, with identical values but emission deferred to the instant
// the launch actually finishes.
func (f *fleet) account(batch []admitted, done float64, batchNo int) {
	for i := range batch {
		adm := &batch[i]
		a := &f.acc[adm.job.Stream]
		a.served++
		if adm.degraded() {
			a.degraded++
		}
		if adm.mode == control.ModeFull {
			a.modeFull++
		}
		lat := done - adm.job.Arrive
		a.latencies = append(a.latencies, lat)
		f.win.add(lat)
		f.latWinS[adm.job.Stream].add(lat)
		ev := Event{
			Kind: EventServed, Stream: adm.job.Stream, Frame: adm.job.Frame,
			Arrive: adm.job.Arrive, Time: done,
			Latency: lat, Degraded: adm.degraded(), Batch: batchNo,
			Epoch: adm.job.Epoch,
		}
		if f.ctrl != nil {
			// Mode attribution only matters — and only changes trace
			// bytes — on controlled runs.
			ev.Mode = string(adm.mode)
		}
		f.emit(ev)
	}
}

// settle performs completion accounting for the launch whose completion
// event just fired and forgets it. At most Executors launches are in
// flight, so the linear match is cheap; the (t, stream, frame, epoch)
// key is unique among live launches — a head frame can only reappear
// after the launch holding it was seized by failAt, which removes it
// from pend first.
func (f *fleet) settle(e event) {
	for i := range f.pend {
		p := &f.pend[i]
		if p.t == e.t && p.stream == e.stream && p.frame == e.frame && p.epoch == e.epoch {
			f.account(p.frames, p.t, p.batch)
			f.pend = append(f.pend[:i], f.pend[i+1:]...)
			return
		}
	}
}

// failAt kills the fleet's hardware at virtual time t: pending launches
// are cancelled (their frames were never recorded — under completion
// accounting the launch simply never happened), queued frames are
// popped, the agenda is cleared (completions, provisioning resizes and
// the armed control tick die with the machine) and the executor count
// drops to zero until a later ResizeAt revives it. The seized frames
// come back in dispatch-then-queue order — which preserves per-stream
// frame order, so a caller replaying them elsewhere keeps every
// stream's timeline monotone — each counted in StreamStats.FailedOver
// and emitted as an EventFailedOver at the failure instant. Requires
// completion accounting: under dispatch accounting in-flight frames
// are already in the books and could not be seized.
func (f *fleet) failAt(t float64) []FailedFrame {
	f.tick(t)
	var seized []FailedFrame
	grab := func(j sched.Job) {
		f.acc[j.Stream].failedOver++
		f.emit(Event{
			Kind: EventFailedOver, Stream: j.Stream, Frame: j.Frame,
			Arrive: j.Arrive, Time: t, Epoch: j.Epoch,
		})
		seized = append(seized, FailedFrame{Stream: j.Stream, Frame: j.Frame, Arrive: j.Arrive, Epoch: j.Epoch})
	}
	for i := range f.pend {
		for j := range f.pend[i].frames {
			grab(f.pend[i].frames[j].job)
		}
	}
	f.pend = f.pend[:0]
	for f.sched.Len() > 0 {
		j, ok := f.sched.Next()
		if !ok {
			break
		}
		f.queued[j.Stream]--
		grab(j)
	}
	f.agenda = f.agenda[:0]
	f.tickArmed = false
	f.busy = 0
	f.resized = true
	if f.cfg.Executors != 0 {
		f.cfg.Executors = 0
		f.resizes++
	}
	return seized
}

// gather pulls up to the effective batch size of servable frames from
// the scheduler into f.adm, applying the stale-skip and mode policies
// per frame as it pops. A stream in control.ModeAuto keeps the legacy
// fleet-wide behavior — degrade to proposal-only when DegradeDepth
// frames still wait behind the admitted one — while an explicit
// per-stream mode set by the control plane overrides that threshold
// entirely. The stale bound is the stream's effective staleness
// budget (the configured MaxStaleness until a controller rescales
// it), checked in the same subtraction form as always so a unit-scale
// budget is bit-identical to the historical arithmetic.
func (f *fleet) gather() {
	start := len(f.adm)
	for len(f.adm)-start < f.effBatch && f.sched.Len() > 0 {
		j, ok := f.sched.Next()
		if !ok {
			break
		}
		f.queued[j.Stream]--
		if f.cfg.MaxStaleness > 0 && f.now-j.Arrive > f.effStale[j.Stream] {
			f.acc[j.Stream].droppedStale++
			f.emit(Event{
				Kind: EventDroppedStale, Stream: j.Stream, Frame: j.Frame,
				Arrive: j.Arrive, Time: f.now, Epoch: j.Epoch,
			})
			continue
		}
		mode := control.ModeAuto
		if f.cascade {
			if p := f.pin(j.Stream); p != control.ModeAuto {
				// A pinned stream ignores both the control plane and the
				// DegradeDepth policy until unpinned (see Server.PinMode).
				mode = p
			} else if mode = f.mode[j.Stream]; mode == control.ModeAuto &&
				f.cfg.DegradeDepth > 0 && f.sched.Len() >= f.cfg.DegradeDepth {
				mode = control.ModeProposal
			}
		}
		f.adm = append(f.adm, admitted{job: j, mode: mode})
	}
}

// pin reads stream s's pinned mode; ModeAuto (the zero value) when the
// fleet was never pinned.
func (f *fleet) pin(s int) control.Mode {
	if f.pinned == nil {
		return control.ModeAuto
	}
	return f.pinned[s]
}

// stepRound runs the round's real CPU work — stepping each admitted
// frame's detection session and pricing the frame — across StepWorkers
// goroutines. Determinism survives the fan-out because the work
// decomposes per stream: each stream's session is private (its own
// detectors, tracker and scratch), frames of one stream are stepped
// sequentially in gather order (every scheduler preserves per-stream
// arrival order), the frame prices depend only on the step output and
// read-only shared state (gpu model, world dimensions), and phase 3
// consumes the results in gather order regardless of which worker
// produced them when. Workers share nothing mutable, so the fan-out is
// also race-free by construction.
func (f *fleet) stepRound() {
	if f.workers <= 1 || len(f.adm) == 1 {
		for i := range f.adm {
			f.stepAdmitted(&f.adm[i])
		}
		return
	}
	if f.byStream == nil {
		f.byStream = make([][]*admitted, f.cfg.Streams)
	}
	f.active = f.active[:0]
	for i := range f.adm {
		s := f.adm[i].job.Stream
		if len(f.byStream[s]) == 0 {
			f.active = append(f.active, s)
		}
		f.byStream[s] = append(f.byStream[s], &f.adm[i])
	}
	if len(f.active) <= 1 {
		for i := range f.adm {
			f.stepAdmitted(&f.adm[i])
		}
	} else {
		if f.poolWork == nil {
			f.startPool()
		}
		f.poolWG.Add(len(f.active))
		for _, s := range f.active {
			f.poolWork <- s
		}
		f.poolWG.Wait()
	}
	for _, s := range f.active {
		f.byStream[s] = f.byStream[s][:0]
	}
}

// startPool launches the persistent step workers, lazily on the first
// round that has cross-stream work. Rounds are frequent (one per
// agenda event that frees an executor), so the pool amortizes the
// goroutine spawn across the fleet's lifetime: a round costs one
// channel send per active stream plus the WaitGroup barrier. The send
// happens-before the worker's read of byStream, and poolWG.Wait
// happens-after every stepAdmitted write, so phase 3 reads the step
// results race-free. Idle workers block on the channel; closePool
// releases them.
func (f *fleet) startPool() {
	f.poolWork = make(chan int)
	// Workers range over a captured copy of the channel: reading the
	// field would race with closePool nilling it, since nothing orders
	// a worker's startup read against a later Close.
	work := f.poolWork
	for w := 0; w < f.workers; w++ {
		go func() {
			for s := range work {
				for _, adm := range f.byStream[s] {
					f.stepAdmitted(adm)
				}
				f.poolWG.Done()
			}
		}()
	}
}

// closePool releases the step workers. Idempotent; called by
// Server.Close. A fleet that never went parallel has no pool.
func (f *fleet) closePool() {
	if f.poolWork != nil {
		close(f.poolWork)
		f.poolWork = nil
	}
}

// step advances the frame's stream session. Sessions are stepped in
// per-stream arrival order (every scheduler preserves it), which keeps
// the tracker causal; dropped frames are simply never seen, so the
// tracker coasts across them.
func (f *fleet) step(j sched.Job) core.FrameOutput {
	seq := f.seqs[j.Stream]
	return f.sessions[j.Stream].Step(detector.Frame{
		SeqID:   seq.ID,
		Index:   j.Frame,
		Width:   seq.Width,
		Height:  seq.Height,
		Objects: seq.Frames[j.Frame].Objects,
	})
}

// stepAdmitted advances the frame's session and computes its pricing
// component in place: the full launch-by-launch dispatch price under
// BatchSize 1 (byte-identical to the PR 2 path), or the frame's total
// operations for the fused BatchFrames launch under batching. Pricing
// happens here, at step time, because FrameOutput.Regions aliases the
// session's scratch and is only valid until that session's next Step —
// and because the price is a pure function of the step output and
// read-only state, computing it on the worker is deterministic and
// parallelizes the region-merge arithmetic for free.
//
// Degraded frames are a timing-model shed only: the session still
// steps in full (the tracker keeps its refinement-fed state) and just
// the price switches to the proposal-only launch — see
// Config.DegradeDepth for what that does and does not model.
func (f *fleet) stepAdmitted(adm *admitted) {
	if s := adm.job.Stream; adm.job.Epoch != f.sessEpoch[s] {
		// The stream reconnected under reset-session between this
		// frame's epoch and the session's: start the new capture
		// session here, in per-stream step order, so every frame steps
		// against the session generation that watched it. Safe under
		// the parallel fan-out — a stream's frames step on one worker.
		f.sessions[s].Reset(f.seqs[s])
		f.sessEpoch[s] = adm.job.Epoch
	}
	out := f.step(adm.job)
	seq := f.seqs[adm.job.Stream]
	if f.effBatch <= 1 {
		switch {
		case !f.cascade:
			adm.service = f.gpu.SingleModelFrame(out.Ops.Refinement).Total
		case adm.degraded():
			adm.service = f.gpu.ProposalOnlyFrame(out.Ops.Proposal).Total
		case adm.mode == control.ModeFull:
			adm.service = f.gpu.FullCascadeFrame(out.Ops.Proposal,
				f.refCost.RegionOps(seq.Width, seq.Height, 1, out.NumProposals)).Total
		default:
			adm.service = f.gpu.CaTDetFrame(out.Ops.Proposal, out.Regions,
				float64(seq.Width), float64(seq.Height), f.refCost, out.NumProposals).Total
		}
		return
	}
	switch {
	case !f.cascade:
		adm.work = out.Ops.Refinement
	case adm.degraded():
		adm.work = out.Ops.Proposal
	case adm.mode == control.ModeFull:
		adm.work = out.Ops.Proposal + f.refCost.RegionOps(seq.Width, seq.Height, 1, out.NumProposals)
	default:
		ft := f.gpu.CaTDetFrame(out.Ops.Proposal, out.Regions,
			float64(seq.Width), float64(seq.Height), f.refCost, out.NumProposals)
		adm.work = out.Ops.Proposal + ft.MergedWorkload
	}
}

// priceBatch folds the batch's precomputed step results into the
// dispatch's service time. A single-frame dispatch under effective
// batch 1 keeps the per-frame, launch-by-launch pricing of PR 2;
// larger batches fuse into one launch via gpumodel.Model.BatchFrames.
// The effective batch size only moves at control ticks, which are
// agenda events — never mid-dispatch — so gather, step and pricing
// always agree on the form.
func (f *fleet) priceBatch(batch []admitted) float64 {
	if f.effBatch <= 1 {
		return batch[0].service
	}
	f.works = f.works[:0]
	for i := range batch {
		f.works = append(f.works, batch[i].work)
	}
	cpu := f.gpu.CPUOverheadCaTDet
	if !f.cascade {
		cpu = f.gpu.CPUOverheadSingle
	}
	return f.gpu.BatchFrames(f.works, cpu).Total
}

// job builds the scheduler job for an arriving frame: the deadline is
// arrive plus the stream's effective staleness budget (arrive itself
// when staleness is off), the class is the stream's configured
// priority, and the epoch its capture-session generation. The
// effective budget is MaxStaleness until the control plane rescales
// it (Policy.DeadlineScale), which moves both the EDF ordering and
// the stale-drop bound together.
func (f *fleet) job(stream, frame int, arrive float64, epoch int) sched.Job {
	j := sched.Job{Stream: stream, Frame: frame, Arrive: arrive, Deadline: arrive, Epoch: epoch}
	if f.cfg.MaxStaleness > 0 {
		j.Deadline += f.effStale[stream]
	}
	if len(f.cfg.Priorities) > 0 {
		j.Class = f.cfg.Priorities[stream]
	}
	return j
}

// dropPoison charges a poison pill to its stream and sinks it. Pills
// deliberately leave the virtual clock, the causality state and the
// session untouched, so a run's books with and without a pill are
// identical — the isolation the PoisonDrop policy promises. A
// non-finite arrival stamp is re-stamped to the current clock for the
// sink (NaN would break JSON trace encoders downstream).
func (f *fleet) dropPoison(stream, frame int, arrive float64, epoch int) {
	f.acc[stream].droppedPoison++
	if math.IsNaN(arrive) || math.IsInf(arrive, 0) {
		arrive = f.now
	}
	f.emit(Event{
		Kind: EventDroppedPoison, Stream: stream, Frame: frame,
		Arrive: arrive, Time: f.now, Epoch: epoch,
	})
}

// noteReconnect charges an accepted camera reconnect to its stream and
// sinks it at the decision instant (the current clock — the
// reconnecting frame's own arrival, possibly later, follows it).
func (f *fleet) noteReconnect(stream, eff int, arrive float64, epoch int) {
	f.acc[stream].reconnects++
	f.emit(Event{
		Kind: EventReconnect, Stream: stream, Frame: eff,
		Arrive: arrive, Time: f.now, Epoch: epoch,
	})
}

// stats folds the live counters into a snapshot. Totals count since
// New; the latency summary covers the sliding window of the most
// recent StatsWindow served frames.
func (f *fleet) stats() Stats {
	st := Stats{
		Now:            f.lastT,
		QueueDepth:     f.sched.Len(),
		BusyExecutors:  f.busy,
		Executors:      f.cfg.Executors,
		PerStreamQueue: append([]int(nil), f.queued...),
		Window:         f.win.summary(),
	}
	st.PerStreamWindow = make([]StreamWindow, len(f.acc))
	for s := range st.PerStreamWindow {
		w := &st.PerStreamWindow[s]
		w.Queue = f.queued[s]
		w.ArrivalRate = f.arrWin[s].rate()
		w.Window = f.latWinS[s].summary()
		w.Mode = string(f.mode[s])
	}
	for s := range f.acc {
		a := &f.acc[s]
		st.Arrived += a.arrived
		st.Served += a.served
		st.DroppedQueue += a.droppedQueue
		st.DroppedStale += a.droppedStale
		st.DroppedPoison += a.droppedPoison
		st.Reconnects += a.reconnects
		st.FailedOver += a.failedOver
		st.Degraded += a.degraded
	}
	if st.Now > 0 {
		st.Throughput = float64(st.Served) / st.Now
	}
	if st.Arrived > 0 {
		st.DropRate = float64(st.DroppedQueue+st.DroppedStale) / float64(st.Arrived)
	}
	return st
}

// result folds the accumulated counters into the Result, in stream
// order. Every time-averaged metric — throughput, average queue
// depth, utilization — is normalized over the makespan (LastEventAt),
// the one shared horizon.
func (f *fleet) result() *Result {
	cfg := f.cfg
	r := &Result{
		Preset:        cfg.Preset.Name,
		Seed:          cfg.Seed,
		Streams:       cfg.Streams,
		FPS:           cfg.FPS,
		StreamFPS:     cfg.StreamFPS,
		Arrivals:      cfg.Arrivals,
		Duration:      cfg.Duration,
		Executors:     f.execs0,
		Scheduler:     cfg.Scheduler,
		Priorities:    cfg.Priorities,
		BatchSize:     cfg.BatchSize,
		QueueCap:      cfg.QueueCap,
		Drop:          cfg.Drop,
		MaxStaleness:  cfg.MaxStaleness,
		DegradeDepth:  cfg.DegradeDepth,
		LastEventAt:   f.lastT,
		Batches:       f.batches,
		MaxQueueDepth: f.maxDepth,
		MaxService:    f.maxService,
	}
	// Echo the fault-tolerance identity only when it departs from the
	// strict defaults, keeping fault-free results byte-identical to
	// their historical encoding.
	if cfg.Reconnect != ReconnectReject {
		r.ReconnectPolicy = cfg.Reconnect
	}
	if cfg.Poison != PoisonError {
		r.PoisonPolicy = cfg.Poison
	}
	if cfg.MaxFrame != DefaultMaxFrame {
		r.MaxFrame = cfg.MaxFrame
	}
	if cfg.Chaos.enabled() {
		ch := cfg.Chaos
		r.Chaos = &ch
	}
	if cfg.Arrivals == Burst {
		r.BurstPeriod = cfg.BurstPeriod
		r.BurstDuty = cfg.BurstDuty
	}
	if f.resized {
		r.Resizes = f.resizes
		r.ExecutorSeconds = f.capInt
	}
	if f.ctrl != nil {
		// Echo the control-plane identity and totals only for actively
		// controlled runs: controller-less and nop-controlled results
		// keep their historical encoding byte for byte.
		cc := cfg.Control
		r.Control = &cc
		r.ControlTicks = f.controlTicks
		r.ModeSwitches = f.modeSwitches
	}
	if len(f.sessions) > 0 {
		r.System = f.sessions[0].Name()
	}
	horizon := f.lastT
	rate := func(n int) float64 {
		if horizon <= 0 {
			return 0
		}
		return float64(n) / horizon
	}
	var all []float64
	fleetRow := StreamStats{ID: "fleet"}
	for s := range f.acc {
		a := &f.acc[s]
		row := StreamStats{
			ID:            f.seqs[s].ID,
			Arrived:       a.arrived,
			Served:        a.served,
			DroppedQueue:  a.droppedQueue,
			DroppedStale:  a.droppedStale,
			DroppedPoison: a.droppedPoison,
			Reconnects:    a.reconnects,
			FailedOver:    a.failedOver,
			Degraded:      a.degraded,
			ModeFull:      a.modeFull,
			Throughput:    rate(a.served),
			Latency:       Summarize(a.latencies),
		}
		if a.arrived > 0 {
			row.DropRate = float64(a.droppedQueue+a.droppedStale) / float64(a.arrived)
		}
		r.PerStream = append(r.PerStream, row)
		fleetRow.Arrived += a.arrived
		fleetRow.Served += a.served
		fleetRow.DroppedQueue += a.droppedQueue
		fleetRow.DroppedStale += a.droppedStale
		fleetRow.DroppedPoison += a.droppedPoison
		fleetRow.Reconnects += a.reconnects
		fleetRow.FailedOver += a.failedOver
		fleetRow.Degraded += a.degraded
		fleetRow.ModeFull += a.modeFull
		all = append(all, a.latencies...)
	}
	fleetRow.Throughput = rate(fleetRow.Served)
	if fleetRow.Arrived > 0 {
		fleetRow.DropRate = float64(fleetRow.DroppedQueue+fleetRow.DroppedStale) / float64(fleetRow.Arrived)
	}
	fleetRow.Latency = Summarize(all)
	r.Fleet = fleetRow
	if cfg.Scheduler == sched.Priority {
		r.PerClass = f.perClass(rate)
	}
	if horizon > 0 {
		r.AvgQueueDepth = f.depthInt / horizon
		if f.resized {
			// Capacity was a step function, not a constant: utilization
			// is the busy integral over the capacity integral (which can
			// transiently exceed 1 when a scale-down preempts capacity
			// under in-flight batches).
			if f.capInt > 0 {
				r.Utilization = f.busyInt / f.capInt
			}
		} else {
			r.Utilization = f.busyInt / (horizon * float64(cfg.Executors))
		}
	}
	return r
}

// perClass aggregates the per-stream counters by priority class,
// highest class first.
func (f *fleet) perClass(rate func(int) float64) []StreamStats {
	classOf := func(s int) int {
		if len(f.cfg.Priorities) > 0 {
			return f.cfg.Priorities[s]
		}
		return 0
	}
	classes := map[int]*StreamStats{}
	var order []int
	var lats = map[int][]float64{}
	for s := range f.acc {
		c := classOf(s)
		row, ok := classes[c]
		if !ok {
			row = &StreamStats{ID: fmt.Sprintf("class-%d", c)}
			classes[c] = row
			order = append(order, c)
		}
		a := &f.acc[s]
		row.Arrived += a.arrived
		row.Served += a.served
		row.DroppedQueue += a.droppedQueue
		row.DroppedStale += a.droppedStale
		row.DroppedPoison += a.droppedPoison
		row.Reconnects += a.reconnects
		row.FailedOver += a.failedOver
		row.Degraded += a.degraded
		row.ModeFull += a.modeFull
		lats[c] = append(lats[c], a.latencies...)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(order)))
	out := make([]StreamStats, 0, len(order))
	for _, c := range order {
		row := classes[c]
		row.Throughput = rate(row.Served)
		if row.Arrived > 0 {
			row.DropRate = float64(row.DroppedQueue+row.DroppedStale) / float64(row.Arrived)
		}
		row.Latency = Summarize(lats[c])
		out = append(out, *row)
	}
	return out
}
