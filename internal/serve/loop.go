package serve

import (
	"container/heap"
	"math/rand"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detector"
	"repro/internal/gpumodel"
	"repro/internal/ops"
	"repro/internal/sim"
	"repro/internal/video"
)

// Event kinds. At equal virtual times completions sort before arrivals,
// so an executor freed at t can serve a frame arriving at t.
const (
	evCompletion = iota
	evArrival
)

// event is one entry of the virtual-clock agenda. (t, kind, stream,
// frame) is a total order — a stream never has two events of the same
// kind for the same frame — so heap order, and with it the whole
// simulation, is deterministic.
type event struct {
	t             float64
	kind          int
	stream, frame int
}

type agenda []event

func (a agenda) Len() int { return len(a) }
func (a agenda) Less(i, j int) bool {
	if a[i].t != a[j].t {
		return a[i].t < a[j].t
	}
	if a[i].kind != a[j].kind {
		return a[i].kind < a[j].kind
	}
	if a[i].stream != a[j].stream {
		return a[i].stream < a[j].stream
	}
	return a[i].frame < a[j].frame
}
func (a agenda) Swap(i, j int) { a[i], a[j] = a[j], a[i] }
func (a *agenda) Push(x any)   { *a = append(*a, x.(event)) }
func (a *agenda) Pop() any     { old := *a; n := len(old); e := old[n-1]; *a = old[:n-1]; return e }
func (a *agenda) add(e event)  { heap.Push(a, e) }
func (a *agenda) next() event  { return heap.Pop(a).(event) }

// job is a frame waiting in (or admitted from) the shared queue.
type job struct {
	stream, frame int
	arrive        float64
}

// streamAcc accumulates one stream's counters during the run.
type streamAcc struct {
	arrived, served            int
	droppedQueue, droppedStale int
	degraded                   int
	latencies                  []float64
}

// arrivalTimes precomputes every stream's frame arrival instants within
// cfg.Duration. The schedule depends only on (seed, stream index,
// arrival process), never on executors or policies, so changing the
// fleet shape replays the exact same offered load.
func arrivalTimes(cfg Config) [][]float64 {
	out := make([][]float64, cfg.Streams)
	for s := range out {
		rng := rand.New(rand.NewSource(cfg.Seed*2_654_435 + int64(s)*104_729 + 37))
		var ts []float64
		switch cfg.Arrivals {
		case Poisson:
			t := rng.ExpFloat64() / cfg.FPS
			for t < cfg.Duration {
				ts = append(ts, t)
				t += rng.ExpFloat64() / cfg.FPS
			}
		default: // FixedFPS
			phase := rng.Float64() / cfg.FPS
			for k := 0; ; k++ {
				t := phase + float64(k)/cfg.FPS
				if t >= cfg.Duration {
					break
				}
				ts = append(ts, t)
			}
		}
		out[s] = ts
	}
	return out
}

// fleet is the mutable state of the event loop.
type fleet struct {
	cfg      Config
	gpu      gpumodel.Model
	refCost  ops.CostModel
	cascade  bool
	sessions []core.System
	seqs     []*dataset.Sequence

	agenda agenda
	queue  []job // shared FIFO; index 0 is the oldest waiting frame
	busy   int

	now, lastT        float64
	depthInt, busyInt float64 // time integrals of queue depth / busy executors
	maxDepth          int
	maxService        float64
	acc               []streamAcc
}

// tick advances the virtual clock to t, integrating the queue-depth and
// busy-executor curves over the elapsed interval.
func (f *fleet) tick(t float64) {
	dt := t - f.lastT
	f.depthInt += dt * float64(len(f.queue))
	f.busyInt += dt * float64(f.busy)
	f.lastT = t
	f.now = t
}

// enqueue admits an arriving frame to the shared queue, applying the
// overflow policy when the cap is exceeded.
func (f *fleet) enqueue(j job) {
	f.queue = append(f.queue, j)
	if f.cfg.QueueCap >= 0 && len(f.queue) > f.cfg.QueueCap {
		switch f.cfg.Drop {
		case DropNewest:
			victim := f.queue[len(f.queue)-1]
			f.queue = f.queue[:len(f.queue)-1]
			f.acc[victim.stream].droppedQueue++
		default: // DropOldest
			victim := f.queue[0]
			f.queue = f.queue[1:]
			f.acc[victim.stream].droppedQueue++
		}
	}
	if len(f.queue) > f.maxDepth {
		f.maxDepth = len(f.queue)
	}
}

// dispatch hands queued frames to idle executors until one of the two
// runs out. Stale frames are skipped at admission; the degrade policy
// looks at how many frames are still waiting behind the admitted one.
func (f *fleet) dispatch() {
	for f.busy < f.cfg.Executors && len(f.queue) > 0 {
		j := f.queue[0]
		f.queue = f.queue[1:]
		if f.cfg.MaxStaleness > 0 && f.now-j.arrive > f.cfg.MaxStaleness {
			f.acc[j.stream].droppedStale++
			continue
		}
		degraded := f.cascade && f.cfg.DegradeDepth > 0 && len(f.queue) >= f.cfg.DegradeDepth
		service := f.serve(j, degraded)
		if service > f.maxService {
			f.maxService = service
		}
		f.busy++
		f.agenda.add(event{t: f.now + service, kind: evCompletion, stream: j.stream, frame: j.frame})
		a := &f.acc[j.stream]
		a.served++
		if degraded {
			a.degraded++
		}
		a.latencies = append(a.latencies, f.now+service-j.arrive)
	}
}

// serve steps the stream's session on the admitted frame and prices the
// service time with the GPU model. Sessions are stepped in per-stream
// arrival order (the FIFO queue preserves it), which keeps the tracker
// causal; dropped frames are simply never seen, so the tracker coasts
// across them.
//
// Degraded frames are a timing-model shed only: the session still
// steps in full (the tracker keeps its refinement-fed state) and just
// the price switches to the proposal-only launch — see
// Config.DegradeDepth for what that does and does not model.
func (f *fleet) serve(j job, degraded bool) float64 {
	seq := f.seqs[j.stream]
	out := f.sessions[j.stream].Step(detector.Frame{
		SeqID:   seq.ID,
		Index:   j.frame,
		Width:   seq.Width,
		Height:  seq.Height,
		Objects: seq.Frames[j.frame].Objects,
	})
	switch {
	case !f.cascade:
		return f.gpu.SingleModelFrame(out.Ops.Refinement).Total
	case degraded:
		return f.gpu.ProposalOnlyFrame(out.Ops.Proposal).Total
	default:
		return f.gpu.CaTDetFrame(out.Ops.Proposal, out.Regions,
			float64(seq.Width), float64(seq.Height), f.refCost, out.NumProposals).Total
	}
}

// Run executes one serving scenario on the virtual clock and returns
// its deterministic Result.
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}

	// Offered load first: the schedule fixes how many world frames each
	// stream needs, independent of fleet shape.
	schedule := arrivalTimes(cfg)
	frames := 1
	for _, ts := range schedule {
		if len(ts) > frames {
			frames = len(ts)
		}
	}
	preset := cfg.Preset
	preset.NumSequences = cfg.Streams
	preset.FramesPerSeq = frames
	preset.FPS = cfg.FPS
	ds := video.Generate(preset, cfg.Seed)

	f := &fleet{cfg: cfg, gpu: gpumodel.Default(), cascade: cfg.Spec.Kind != sim.Single}
	if cfg.GPU != nil {
		f.gpu = *cfg.GPU
	}
	if f.cascade {
		ref, err := detector.New(cfg.Spec.Refinement)
		if err != nil {
			return nil, err
		}
		f.refCost = ref.Cost
	}
	factory := cfg.Spec.Factory(ds.Classes)
	f.sessions = make([]core.System, cfg.Streams)
	f.seqs = make([]*dataset.Sequence, cfg.Streams)
	f.acc = make([]streamAcc, cfg.Streams)
	for s := 0; s < cfg.Streams; s++ {
		sys, err := factory()
		if err != nil {
			return nil, err
		}
		f.seqs[s] = &ds.Sequences[s]
		sys.Reset(f.seqs[s])
		f.sessions[s] = sys
	}

	for s, ts := range schedule {
		for k, t := range ts {
			f.agenda.add(event{t: t, kind: evArrival, stream: s, frame: k})
		}
	}

	for f.agenda.Len() > 0 {
		e := f.agenda.next()
		f.tick(e.t)
		switch e.kind {
		case evArrival:
			f.acc[e.stream].arrived++
			f.enqueue(job{stream: e.stream, frame: e.frame, arrive: e.t})
		case evCompletion:
			f.busy--
		}
		f.dispatch()
	}

	return f.result(ds), nil
}

// result folds the accumulated counters into the Result, in stream
// order.
func (f *fleet) result(ds *dataset.Dataset) *Result {
	cfg := f.cfg
	r := &Result{
		Preset:        cfg.Preset.Name,
		Seed:          cfg.Seed,
		Streams:       cfg.Streams,
		FPS:           cfg.FPS,
		Arrivals:      cfg.Arrivals,
		Duration:      cfg.Duration,
		Executors:     cfg.Executors,
		QueueCap:      cfg.QueueCap,
		Drop:          cfg.Drop,
		MaxStaleness:  cfg.MaxStaleness,
		DegradeDepth:  cfg.DegradeDepth,
		MaxQueueDepth: f.maxDepth,
		MaxService:    f.maxService,
	}
	if len(f.sessions) > 0 {
		r.System = f.sessions[0].Name()
	}
	var all []float64
	fleetRow := StreamStats{ID: "fleet"}
	for s := range f.acc {
		a := &f.acc[s]
		row := StreamStats{
			ID:           ds.Sequences[s].ID,
			Arrived:      a.arrived,
			Served:       a.served,
			DroppedQueue: a.droppedQueue,
			DroppedStale: a.droppedStale,
			Degraded:     a.degraded,
			Throughput:   float64(a.served) / cfg.Duration,
			Latency:      Summarize(a.latencies),
		}
		if a.arrived > 0 {
			row.DropRate = float64(a.droppedQueue+a.droppedStale) / float64(a.arrived)
		}
		r.PerStream = append(r.PerStream, row)
		fleetRow.Arrived += a.arrived
		fleetRow.Served += a.served
		fleetRow.DroppedQueue += a.droppedQueue
		fleetRow.DroppedStale += a.droppedStale
		fleetRow.Degraded += a.degraded
		all = append(all, a.latencies...)
	}
	fleetRow.Throughput = float64(fleetRow.Served) / cfg.Duration
	if fleetRow.Arrived > 0 {
		fleetRow.DropRate = float64(fleetRow.DroppedQueue+fleetRow.DroppedStale) / float64(fleetRow.Arrived)
	}
	fleetRow.Latency = Summarize(all)
	r.Fleet = fleetRow
	if f.lastT > 0 {
		r.AvgQueueDepth = f.depthInt / f.lastT
		r.Utilization = f.busyInt / (f.lastT * float64(cfg.Executors))
	}
	return r
}
