package serve

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detector"
	"repro/internal/gpumodel"
	"repro/internal/ops"
	"repro/internal/serve/sched"
	"repro/internal/sim"
	"repro/internal/video"
)

// Event kinds. At equal virtual times completions sort before arrivals,
// so an executor freed at t can serve a frame arriving at t.
const (
	evCompletion = iota
	evArrival
)

// event is one entry of the virtual-clock agenda. (t, kind, stream,
// frame) is a total order — a stream never has two events of the same
// kind for the same frame (a batch completion is keyed by its first
// frame) — so heap order, and with it the whole simulation, is
// deterministic. arrive is the frame's arrival stamp: normally equal to
// t, earlier only for a frame submitted behind the clock (see
// Server.Submit), whose latency still counts from the true arrival.
type event struct {
	t             float64
	kind          int
	stream, frame int
	arrive        float64
}

type agenda []event

func (a agenda) Len() int { return len(a) }
func (a agenda) Less(i, j int) bool {
	if a[i].t != a[j].t {
		return a[i].t < a[j].t
	}
	if a[i].kind != a[j].kind {
		return a[i].kind < a[j].kind
	}
	if a[i].stream != a[j].stream {
		return a[i].stream < a[j].stream
	}
	return a[i].frame < a[j].frame
}
func (a agenda) Swap(i, j int) { a[i], a[j] = a[j], a[i] }
func (a *agenda) Push(x any)   { *a = append(*a, x.(event)) }
func (a *agenda) Pop() any     { old := *a; n := len(old); e := old[n-1]; *a = old[:n-1]; return e }
func (a *agenda) add(e event)  { heap.Push(a, e) }
func (a *agenda) next() event  { return heap.Pop(a).(event) }

// admitted is one frame an executor pulled from the scheduler,
// together with the degrade decision taken at its admission.
type admitted struct {
	job      sched.Job
	degraded bool
}

// streamAcc accumulates one stream's counters during the run.
type streamAcc struct {
	arrived, served            int
	droppedQueue, droppedStale int
	degraded                   int
	latencies                  []float64
}

// arrivalTimes precomputes every stream's frame arrival instants within
// cfg.Duration. The schedule depends only on (seed, stream index,
// arrival process, rate), never on executors or policies, so changing
// the fleet shape replays the exact same offered load.
func arrivalTimes(cfg Config) [][]float64 {
	out := make([][]float64, cfg.Streams)
	for s := range out {
		rate := cfg.FPS
		if len(cfg.StreamFPS) > 0 {
			rate = cfg.StreamFPS[s]
		}
		rng := rand.New(rand.NewSource(cfg.Seed*2_654_435 + int64(s)*104_729 + 37))
		var ts []float64
		switch cfg.Arrivals {
		case Poisson:
			t := rng.ExpFloat64() / rate
			for t < cfg.Duration {
				ts = append(ts, t)
				t += rng.ExpFloat64() / rate
			}
		default: // FixedFPS
			phase := rng.Float64() / rate
			for k := 0; ; k++ {
				t := phase + float64(k)/rate
				if t >= cfg.Duration {
					break
				}
				ts = append(ts, t)
			}
		}
		out[s] = ts
	}
	return out
}

// fleet is the single-threaded serving engine: the virtual-clock agenda,
// the scheduler, the executors and the per-stream sessions and worlds.
// Server wraps it behind a mutex; nothing here is concurrency-safe on
// its own.
type fleet struct {
	cfg     Config
	seed    int64
	gpu     gpumodel.Model
	refCost ops.CostModel
	cascade bool

	// Per-stream state. presets[s] is the (possibly rate-rescaled)
	// world preset of stream s; seqs[s] is its lazily grown synthetic
	// sequence (frames exist up to the largest index submitted so far).
	presets  []video.Preset
	sessions []core.System
	seqs     []*dataset.Sequence

	agenda  agenda
	sched   sched.Scheduler
	busy    int
	batches int

	sink Sink
	win  *latWindow

	now, lastT        float64
	depthInt, busyInt float64 // time integrals of queue depth / busy executors
	maxDepth          int
	maxService        float64
	acc               []streamAcc
}

// newFleet builds the engine for a normalized, validated config.
func newFleet(cfg Config) (*fleet, error) {
	f := &fleet{
		cfg:     cfg,
		seed:    cfg.Seed,
		gpu:     gpumodel.Default(),
		cascade: cfg.Spec.Kind != sim.Single,
		sink:    cfg.Sink,
		win:     newLatWindow(cfg.StatsWindow),
	}
	if cfg.GPU != nil {
		f.gpu = *cfg.GPU
	}
	var err error
	f.sched, err = sched.New(cfg.Scheduler, sched.Config{
		Cap:        cfg.QueueCap,
		DropNewest: cfg.Drop == DropNewest,
		Streams:    cfg.Streams,
	})
	if err != nil {
		return nil, err
	}
	if f.cascade {
		ref, err := detector.New(cfg.Spec.Refinement)
		if err != nil {
			return nil, err
		}
		f.refCost = ref.Cost
	}

	// The base world preset runs at the offered rate: frame k of a
	// stream is the world 1/FPS seconds after frame k-1. A stream whose
	// StreamFPS overrides the rate gets its own preset rescaled to that
	// rate, so its frame content and arrival cadence agree — the same
	// per-second motion, lifetime and density statistics as its
	// same-rate neighbors, sampled at its own cadence.
	base := cfg.Preset
	base.FPS = cfg.FPS
	f.presets = make([]video.Preset, cfg.Streams)
	for s := range f.presets {
		p := base
		if len(cfg.StreamFPS) > 0 && cfg.StreamFPS[s] != cfg.FPS {
			p = base.Rescale(cfg.StreamFPS[s])
		}
		f.presets[s] = p
	}

	factory := cfg.Spec.Factory(base.ClassList())
	f.sessions = make([]core.System, cfg.Streams)
	f.seqs = make([]*dataset.Sequence, cfg.Streams)
	f.acc = make([]streamAcc, cfg.Streams)
	for s := 0; s < cfg.Streams; s++ {
		sys, err := factory()
		if err != nil {
			return nil, err
		}
		p := f.presets[s]
		p.FramesPerSeq = 0
		f.seqs[s] = video.GenerateSequence(p, f.seed, s)
		sys.Reset(f.seqs[s])
		f.sessions[s] = sys
	}
	return f, nil
}

// ensureFrame grows stream s's world so frame exists. Sequences are
// regenerated with doubled length — generation is prefix-stable, so
// frames already served never change — which keeps the open Server's
// memory proportional to the largest frame index actually submitted.
func (f *fleet) ensureFrame(s, frame int) {
	seq := f.seqs[s]
	if frame < len(seq.Frames) {
		return
	}
	n := len(seq.Frames)
	if n < 64 {
		n = 64
	}
	for n <= frame {
		n *= 2
	}
	p := f.presets[s]
	p.FramesPerSeq = n
	*seq = *video.GenerateSequence(p, f.seed, s)
}

// advanceTo processes every agenda event up to and including virtual
// time t, in (t, kind, stream, frame) order.
func (f *fleet) advanceTo(t float64) {
	for f.agenda.Len() > 0 && f.agenda[0].t <= t {
		f.handle(f.agenda.next())
	}
}

// handle plays one event: advance the clock, apply the event, then let
// idle executors pull work.
func (f *fleet) handle(e event) {
	f.tick(e.t)
	switch e.kind {
	case evArrival:
		f.acc[e.stream].arrived++
		f.admit(f.job(e.stream, e.frame, e.arrive))
	case evCompletion:
		f.busy--
	}
	f.dispatch()
}

// emit hands an event to the sink, if any. Sinks run synchronously on
// the engine (under the Server's lock): they must be fast and must not
// call back into the Server.
func (f *fleet) emit(e Event) {
	if f.sink != nil {
		f.sink.ServeEvent(e)
	}
}

// tick advances the virtual clock to t, integrating the queue-depth and
// busy-executor curves over the elapsed interval.
func (f *fleet) tick(t float64) {
	dt := t - f.lastT
	f.depthInt += dt * float64(f.sched.Len())
	f.busyInt += dt * float64(f.busy)
	f.lastT = t
	f.now = t
}

// admit offers an arriving frame to the scheduler and charges the
// victim, if the policy evicted one to stay under the cap.
func (f *fleet) admit(j sched.Job) {
	if victim, dropped := f.sched.Admit(j); dropped {
		f.acc[victim.Stream].droppedQueue++
		f.emit(Event{
			Kind: EventDroppedQueue, Stream: victim.Stream, Frame: victim.Frame,
			Arrive: victim.Arrive, Time: f.now,
		})
	}
	if d := f.sched.Len(); d > f.maxDepth {
		f.maxDepth = d
	}
}

// dispatch hands queued frames to idle executors until one of the two
// runs out. Each dispatch gathers up to BatchSize frames into one
// launch; stale frames are skipped at admission, and the degrade
// policy looks at how many frames are still waiting behind the
// admitted one.
func (f *fleet) dispatch() {
	for f.busy < f.cfg.Executors && f.sched.Len() > 0 {
		batch := f.gather()
		if len(batch) == 0 {
			continue // every candidate was stale; re-check the queue
		}
		service := f.serveBatch(batch)
		if service > f.maxService {
			f.maxService = service
		}
		f.busy++
		f.batches++
		head := batch[0].job
		f.agenda.add(event{t: f.now + service, kind: evCompletion, stream: head.Stream, frame: head.Frame})
		for _, adm := range batch {
			a := &f.acc[adm.job.Stream]
			a.served++
			if adm.degraded {
				a.degraded++
			}
			lat := f.now + service - adm.job.Arrive
			a.latencies = append(a.latencies, lat)
			f.win.add(lat)
			f.emit(Event{
				Kind: EventServed, Stream: adm.job.Stream, Frame: adm.job.Frame,
				Arrive: adm.job.Arrive, Time: f.now + service,
				Latency: lat, Degraded: adm.degraded, Batch: f.batches,
			})
		}
	}
}

// gather pulls up to BatchSize servable frames from the scheduler,
// applying the stale-skip and degrade policies per frame as it pops.
func (f *fleet) gather() []admitted {
	var batch []admitted
	for len(batch) < f.cfg.BatchSize && f.sched.Len() > 0 {
		j, ok := f.sched.Next()
		if !ok {
			break
		}
		if f.cfg.MaxStaleness > 0 && f.now-j.Arrive > f.cfg.MaxStaleness {
			f.acc[j.Stream].droppedStale++
			f.emit(Event{
				Kind: EventDroppedStale, Stream: j.Stream, Frame: j.Frame,
				Arrive: j.Arrive, Time: f.now,
			})
			continue
		}
		degraded := f.cascade && f.cfg.DegradeDepth > 0 && f.sched.Len() >= f.cfg.DegradeDepth
		batch = append(batch, admitted{job: j, degraded: degraded})
	}
	return batch
}

// step advances the frame's stream session. Sessions are stepped in
// per-stream arrival order (every scheduler preserves it), which keeps
// the tracker causal; dropped frames are simply never seen, so the
// tracker coasts across them.
func (f *fleet) step(j sched.Job) core.FrameOutput {
	seq := f.seqs[j.Stream]
	return f.sessions[j.Stream].Step(detector.Frame{
		SeqID:   seq.ID,
		Index:   j.Frame,
		Width:   seq.Width,
		Height:  seq.Height,
		Objects: seq.Frames[j.Frame].Objects,
	})
}

// serveBatch steps every frame of the batch and prices the dispatch.
// A single-frame dispatch under BatchSize 1 keeps the per-frame,
// launch-by-launch pricing of PR 2 (byte-identical results); larger
// batches fuse into one launch via gpumodel.Model.BatchFrames.
func (f *fleet) serveBatch(batch []admitted) float64 {
	if f.cfg.BatchSize <= 1 {
		return f.serveOne(batch[0])
	}
	works := make([]float64, len(batch))
	for i, adm := range batch {
		works[i] = f.stepWork(adm.job, adm.degraded)
	}
	cpu := f.gpu.CPUOverheadCaTDet
	if !f.cascade {
		cpu = f.gpu.CPUOverheadSingle
	}
	return f.gpu.BatchFrames(works, cpu).Total
}

// serveOne prices one frame as its own dispatch, launch by launch.
//
// Degraded frames are a timing-model shed only: the session still
// steps in full (the tracker keeps its refinement-fed state) and just
// the price switches to the proposal-only launch — see
// Config.DegradeDepth for what that does and does not model.
func (f *fleet) serveOne(adm admitted) float64 {
	out := f.step(adm.job)
	seq := f.seqs[adm.job.Stream]
	switch {
	case !f.cascade:
		return f.gpu.SingleModelFrame(out.Ops.Refinement).Total
	case adm.degraded:
		return f.gpu.ProposalOnlyFrame(out.Ops.Proposal).Total
	default:
		return f.gpu.CaTDetFrame(out.Ops.Proposal, out.Regions,
			float64(seq.Width), float64(seq.Height), f.refCost, out.NumProposals).Total
	}
}

// stepWork steps the frame's session and returns the frame's total
// operations for batched pricing: the full workload that one fused
// launch must execute for this frame.
func (f *fleet) stepWork(j sched.Job, degraded bool) float64 {
	out := f.step(j)
	seq := f.seqs[j.Stream]
	switch {
	case !f.cascade:
		return out.Ops.Refinement
	case degraded:
		return out.Ops.Proposal
	default:
		ft := f.gpu.CaTDetFrame(out.Ops.Proposal, out.Regions,
			float64(seq.Width), float64(seq.Height), f.refCost, out.NumProposals)
		return out.Ops.Proposal + ft.MergedWorkload
	}
}

// job builds the scheduler job for an arriving frame: the deadline is
// arrive + MaxStaleness (arrive itself when staleness is off), and the
// class is the stream's configured priority.
func (f *fleet) job(stream, frame int, arrive float64) sched.Job {
	j := sched.Job{Stream: stream, Frame: frame, Arrive: arrive, Deadline: arrive}
	if f.cfg.MaxStaleness > 0 {
		j.Deadline += f.cfg.MaxStaleness
	}
	if len(f.cfg.Priorities) > 0 {
		j.Class = f.cfg.Priorities[stream]
	}
	return j
}

// stats folds the live counters into a snapshot. Totals count since
// New; the latency summary covers the sliding window of the most
// recent StatsWindow served frames.
func (f *fleet) stats() Stats {
	st := Stats{
		Now:           f.lastT,
		QueueDepth:    f.sched.Len(),
		BusyExecutors: f.busy,
		Window:        f.win.summary(),
	}
	for s := range f.acc {
		a := &f.acc[s]
		st.Arrived += a.arrived
		st.Served += a.served
		st.DroppedQueue += a.droppedQueue
		st.DroppedStale += a.droppedStale
		st.Degraded += a.degraded
	}
	if st.Now > 0 {
		st.Throughput = float64(st.Served) / st.Now
	}
	if st.Arrived > 0 {
		st.DropRate = float64(st.DroppedQueue+st.DroppedStale) / float64(st.Arrived)
	}
	return st
}

// result folds the accumulated counters into the Result, in stream
// order. Every time-averaged metric — throughput, average queue
// depth, utilization — is normalized over the makespan (LastEventAt),
// the one shared horizon.
func (f *fleet) result() *Result {
	cfg := f.cfg
	r := &Result{
		Preset:        cfg.Preset.Name,
		Seed:          cfg.Seed,
		Streams:       cfg.Streams,
		FPS:           cfg.FPS,
		StreamFPS:     cfg.StreamFPS,
		Arrivals:      cfg.Arrivals,
		Duration:      cfg.Duration,
		Executors:     cfg.Executors,
		Scheduler:     cfg.Scheduler,
		Priorities:    cfg.Priorities,
		BatchSize:     cfg.BatchSize,
		QueueCap:      cfg.QueueCap,
		Drop:          cfg.Drop,
		MaxStaleness:  cfg.MaxStaleness,
		DegradeDepth:  cfg.DegradeDepth,
		LastEventAt:   f.lastT,
		Batches:       f.batches,
		MaxQueueDepth: f.maxDepth,
		MaxService:    f.maxService,
	}
	if len(f.sessions) > 0 {
		r.System = f.sessions[0].Name()
	}
	horizon := f.lastT
	rate := func(n int) float64 {
		if horizon <= 0 {
			return 0
		}
		return float64(n) / horizon
	}
	var all []float64
	fleetRow := StreamStats{ID: "fleet"}
	for s := range f.acc {
		a := &f.acc[s]
		row := StreamStats{
			ID:           f.seqs[s].ID,
			Arrived:      a.arrived,
			Served:       a.served,
			DroppedQueue: a.droppedQueue,
			DroppedStale: a.droppedStale,
			Degraded:     a.degraded,
			Throughput:   rate(a.served),
			Latency:      Summarize(a.latencies),
		}
		if a.arrived > 0 {
			row.DropRate = float64(a.droppedQueue+a.droppedStale) / float64(a.arrived)
		}
		r.PerStream = append(r.PerStream, row)
		fleetRow.Arrived += a.arrived
		fleetRow.Served += a.served
		fleetRow.DroppedQueue += a.droppedQueue
		fleetRow.DroppedStale += a.droppedStale
		fleetRow.Degraded += a.degraded
		all = append(all, a.latencies...)
	}
	fleetRow.Throughput = rate(fleetRow.Served)
	if fleetRow.Arrived > 0 {
		fleetRow.DropRate = float64(fleetRow.DroppedQueue+fleetRow.DroppedStale) / float64(fleetRow.Arrived)
	}
	fleetRow.Latency = Summarize(all)
	r.Fleet = fleetRow
	if cfg.Scheduler == sched.Priority {
		r.PerClass = f.perClass(rate)
	}
	if horizon > 0 {
		r.AvgQueueDepth = f.depthInt / horizon
		r.Utilization = f.busyInt / (horizon * float64(cfg.Executors))
	}
	return r
}

// perClass aggregates the per-stream counters by priority class,
// highest class first.
func (f *fleet) perClass(rate func(int) float64) []StreamStats {
	classOf := func(s int) int {
		if len(f.cfg.Priorities) > 0 {
			return f.cfg.Priorities[s]
		}
		return 0
	}
	classes := map[int]*StreamStats{}
	var order []int
	var lats = map[int][]float64{}
	for s := range f.acc {
		c := classOf(s)
		row, ok := classes[c]
		if !ok {
			row = &StreamStats{ID: fmt.Sprintf("class-%d", c)}
			classes[c] = row
			order = append(order, c)
		}
		a := &f.acc[s]
		row.Arrived += a.arrived
		row.Served += a.served
		row.DroppedQueue += a.droppedQueue
		row.DroppedStale += a.droppedStale
		row.Degraded += a.degraded
		lats[c] = append(lats[c], a.latencies...)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(order)))
	out := make([]StreamStats, 0, len(order))
	for _, c := range order {
		row := classes[c]
		row.Throughput = rate(row.Served)
		if row.Arrived > 0 {
			row.DropRate = float64(row.DroppedQueue+row.DroppedStale) / float64(row.Arrived)
		}
		row.Latency = Summarize(lats[c])
		out = append(out, *row)
	}
	return out
}
