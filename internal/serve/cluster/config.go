// Package cluster scales the single-fleet serving model of
// internal/serve out to a sharded cluster: a Router partitions the
// streams of one serve.Config across N shard Servers by consistent
// hashing (with a load-aware placement override), migrates a stream off
// a saturated shard at most a bounded number of times — the source
// drains the stream's queued frames, the target re-admits it under a
// bumped cluster epoch, and every frame served off its hash-home shard
// pays a modeled cross-node hop latency on its arrival stamp — and an
// optional autoscaler grows and shrinks each shard's executor count
// from live Stats signals (queue depth, busy executors, sliding-window
// p99) with hysteresis, modeled scale-up latency and rental cost priced
// by the shard's gpumodel.Tier.
//
// The determinism contract is the single-fleet one, cluster-wide: the
// same Config (seed, shards, tiers, policies) produces byte-identical
// merged books on any machine, at any Base.StepWorkers fan-out, because
// every control decision keys on virtual-clock state reached by the
// same deterministic event order. A one-shard cluster with migration
// and autoscaling off reproduces serve.Run byte for byte.
package cluster

import (
	"fmt"
	"math"

	"repro/internal/gpumodel"
	"repro/internal/serve"
)

// FailoverPolicy selects what happens to the frames a shard kill
// seizes — everything queued or in flight on the dead shard at the
// failure instant.
type FailoverPolicy string

// The failover policies.
const (
	// FailoverReplay re-submits every seized frame to its stream's new
	// owner shard at the failure tick (re-stamped arrival, hop latency
	// charged off-home); the merged books subtract each replay from
	// Arrived so offered load stays the schedule's. Default.
	FailoverReplay FailoverPolicy = "replay"
	// FailoverDrop abandons seized frames: each is counted in the
	// stream's DroppedFailover channel and never served.
	FailoverDrop FailoverPolicy = "drop"
	// FailoverDegrade replays like FailoverReplay but additionally pins
	// the dead shard's streams to proposal-only mode on their fallback
	// shards until the dead shard revives (see serve.Server.PinMode).
	FailoverDegrade FailoverPolicy = "degrade"
)

// FaultKind classifies one scheduled fault.
type FaultKind string

// The fault kinds.
const (
	// FaultKill takes a shard's hardware down: in-flight and queued
	// frames are seized (see FailoverPolicy), its streams re-place
	// through the live consistent-hash ring, and its executor count
	// drops to zero until a revival.
	FaultKill FaultKind = "kill"
	// FaultRevive brings a killed shard back: capacity returns after
	// the tier's scale-up latency, the ring resizes back, and the bulk
	// rebalancer re-spreads streams across the live shards.
	FaultRevive FaultKind = "revive"
	// FaultAddShard grows the cluster online: a new shard joins the
	// ring (on Fault.Tier, or the config's tier rotation) and the bulk
	// rebalancer shifts streams toward it by tier speed.
	FaultAddShard FaultKind = "add-shard"
)

// Fault is one scheduled fault. Faults execute at the first control
// tick at or after Time, in (Time, declaration order); every field
// carries omitempty so fault-free books stay byte-identical.
type Fault struct {
	// Time is the virtual second the fault becomes due.
	Time float64 `json:"time_s,omitempty"`
	// Kind selects the fault.
	Kind FaultKind `json:"kind,omitempty"`
	// Shard is the victim of a kill or revival. It may name a shard
	// added earlier by an add-shard fault (index Shards, Shards+1, ...);
	// killing a shard not yet born is a no-op.
	Shard int `json:"shard,omitempty"`
	// Tier names the gpumodel tier of an add-shard fault; empty
	// continues the config's GPUTiers rotation.
	Tier string `json:"tier,omitempty"`
}

// FaultPlan is the cluster's deterministic failure schedule: explicit
// scheduled faults, plus an optional seeded stochastic kill/revive
// process. The zero value disables failure injection entirely and
// leaves the cluster byte-identical to a fault-free build.
type FaultPlan struct {
	// Faults are the explicit scheduled faults.
	Faults []Fault `json:"faults,omitempty"`
	// MTBF, when positive, turns on the stochastic process: shard
	// kills arrive with exponentially distributed inter-arrival times
	// of this mean (seconds), each targeting a seeded-uniform victim
	// among the initial shards, until Base.Duration.
	MTBF float64 `json:"mtbf_s,omitempty"`
	// MTTR is the mean of the exponentially distributed downtime each
	// stochastic kill schedules its revival after (default 1 when MTBF
	// is set).
	MTTR float64 `json:"mttr_s,omitempty"`
	// Failover selects the seized-frame policy (default FailoverReplay).
	Failover FailoverPolicy `json:"failover,omitempty"`
	// Seed seeds the stochastic process; 0 uses Base.Seed. The whole
	// schedule is pre-generated at New, so the same plan yields the
	// same faults on any machine at any worker count.
	Seed int64 `json:"seed,omitempty"`
}

// Enabled reports whether the plan injects any fault.
func (p FaultPlan) Enabled() bool { return len(p.Faults) > 0 || p.MTBF > 0 }

// Migration bounds when and how often the Router moves a stream off a
// saturated shard. The zero value disables migration.
type Migration struct {
	// QueueDepth arms migration: a stream becomes a candidate when its
	// per-stream backlog on its shard reaches this depth at a control
	// tick. 0 disables migration entirely.
	QueueDepth int `json:"queue_depth"`
	// Cooldown is the minimum virtual seconds between two migrations
	// off the same source shard (default 2).
	Cooldown float64 `json:"cooldown_s"`
	// MaxPerStream caps how many times one stream may migrate over the
	// scenario (default 1: a hot stream moves once and settles).
	MaxPerStream int `json:"max_per_stream"`
	// MinGain is the minimum total-backlog gap (source queue depth
	// minus target queue depth, in frames) that justifies a move; the
	// gap must exceed it strictly. 0 demands any strict improvement.
	MinGain int `json:"min_gain"`
}

// Autoscale configures the per-shard elastic capacity loop. The zero
// value (Enabled false) pins every shard at Base.Executors.
type Autoscale struct {
	// Enabled turns the autoscaler on. Elastic shards start at Min
	// executors — capacity is rented on demand, not provisioned ahead.
	Enabled bool `json:"enabled"`
	// Interval is the control-tick spacing in virtual seconds (default
	// 0.5). Migration shares the same tick grid.
	Interval float64 `json:"interval_s"`
	// Min and Max bound each shard's executor count (defaults 0 and 8).
	// Min 0 lets an idle shard park completely: frames queue, nothing
	// serves, and no rental cost accrues until load returns.
	Min int `json:"min"`
	Max int `json:"max"`
	// UpQueue is the queue depth that triggers growth (default 3): at
	// depth d >= UpQueue the shard adds d/UpQueue executors (at least
	// one), clamped to Max, effective after the tier's ScaleUpLatency.
	UpQueue int `json:"up_queue"`
	// DownIdle is the hysteresis for release: after this many
	// consecutive fully-idle control ticks (empty queue, no busy
	// executor) the shard drops straight to Min (default 2).
	DownIdle int `json:"down_idle"`
	// P99, when positive, also triggers growth whenever the shard's
	// sliding-window p99 latency exceeds this many seconds.
	P99 float64 `json:"p99_s,omitempty"`
}

// Config describes one cluster scenario: the Base single-fleet scenario
// whose streams are partitioned, plus the cluster topology and control
// policies.
type Config struct {
	// Base is the serving scenario to shard. Every shard Server is
	// built over the full normalized Base (same preset, seed and stream
	// space, so every shard regenerates identical worlds); the Router
	// routes each stream's frames to exactly one shard at a time.
	// Base.Executors is each shard's static executor count (and the
	// identity echoed in the books); Base.Sink is ignored — use
	// Config.Sink, which sees every shard's events with attribution.
	Base serve.Config

	// Shards is the number of shard Servers (default 2).
	Shards int

	// VirtualNodes is the number of ring points per shard for the
	// consistent-hash placement (default 64).
	VirtualNodes int

	// PlacementLoadFactor caps initial placement skew: no shard is
	// assigned more than ceil(factor * Streams/Shards) streams at
	// construction; overflow walks the ring to the next shard under the
	// cap (default 1.25). Streams placed off their hash home this way
	// pay the hop latency like migrated ones.
	PlacementLoadFactor float64

	// HopLatency is the modeled cross-node forwarding delay in seconds,
	// added to the arrival stamp of every frame routed to a shard other
	// than its stream's hash home (default 0.002).
	HopLatency float64

	// GPUTiers names the gpumodel tier each shard runs on: one name for
	// a homogeneous cluster, or exactly Shards names. Empty means the
	// reference "titanx" on every shard (which keeps shard timing
	// byte-identical to the untiered Base).
	GPUTiers []string

	// Migration and Autoscale are the control policies; both key on
	// live shard Stats at the shared control-tick grid.
	Migration Migration
	Autoscale Autoscale

	// Faults is the failure-injection plan: scheduled and stochastic
	// shard kills, revivals and online shard additions, executed
	// deterministically on the control-tick grid. The zero value keeps
	// the cluster fault-free and its books byte-identical to a build
	// without the subsystem.
	Faults FaultPlan

	// Sink, when non-nil, receives cluster events: every shard's
	// per-frame serve.Event wrapped with its shard index, plus
	// migration and resize decisions. Like serve.Config.Sink it runs
	// synchronously on the engine and must not call back into the
	// Router.
	Sink Sink
}

// withDefaults fills every unset field with its documented default.
func (c Config) withDefaults() Config {
	if c.Faults.Enabled() {
		if c.Faults.Failover == "" {
			c.Faults.Failover = FailoverReplay
		}
		if c.Faults.MTBF > 0 && c.Faults.MTTR == 0 {
			c.Faults.MTTR = 1
		}
		// Replay re-enters seized frames through Submit on the target
		// shard, where their world indices can collide with the
		// target's own session — exactly the regression the resume
		// reconnect policy interprets. Default it in before the Base
		// normalization freezes "" to the strict reject.
		if c.Faults.Failover != FailoverDrop && c.Base.Reconnect == "" {
			c.Base.Reconnect = serve.ReconnectResume
		}
		// Seizing in-flight launches needs completion-time accounting
		// on every shard (see serve.Config.FailableExecutors).
		c.Base.FailableExecutors = true
	}
	c.Base = c.Base.Normalized()
	c.Base.Sink = nil
	if c.Shards <= 0 {
		c.Shards = 2
	}
	if c.VirtualNodes <= 0 {
		c.VirtualNodes = 64
	}
	if c.PlacementLoadFactor <= 0 {
		c.PlacementLoadFactor = 1.25
	}
	if c.HopLatency == 0 {
		c.HopLatency = 0.002
	}
	if len(c.GPUTiers) == 0 {
		c.GPUTiers = []string{"titanx"}
	}
	if c.Migration.QueueDepth > 0 {
		if c.Migration.Cooldown <= 0 {
			c.Migration.Cooldown = 2
		}
		if c.Migration.MaxPerStream <= 0 {
			c.Migration.MaxPerStream = 1
		}
	}
	if c.Autoscale.Enabled {
		if c.Autoscale.Interval <= 0 {
			c.Autoscale.Interval = 0.5
		}
		if c.Autoscale.Max <= 0 {
			c.Autoscale.Max = 8
		}
		if c.Autoscale.UpQueue <= 0 {
			c.Autoscale.UpQueue = 3
		}
		if c.Autoscale.DownIdle <= 0 {
			c.Autoscale.DownIdle = 2
		}
	} else if (c.Migration.QueueDepth > 0 || c.Faults.Enabled()) && c.Autoscale.Interval <= 0 {
		// Migration and failure injection share the control-tick grid
		// even with the autoscaler off.
		c.Autoscale.Interval = 0.5
	}
	return c
}

// Normalized returns the config as New and Run execute it.
func (c Config) Normalized() Config { return c.withDefaults() }

// Validate checks the config exactly as New would see it (defaults
// applied to a copy first) and reports the first violation as a
// field-path error, e.g. "serve/cluster: GPUTiers: len 3 != Shards 2".
func (c Config) Validate() error {
	return c.withDefaults().validate()
}

func (c Config) validate() error {
	fail := func(field, format string, args ...any) error {
		return fmt.Errorf("serve/cluster: %s: %s", field, fmt.Sprintf(format, args...))
	}
	if err := c.Base.Validate(); err != nil {
		return fmt.Errorf("serve/cluster: Base: %w", err)
	}
	if c.HopLatency < 0 {
		return fail("HopLatency", "must be non-negative, got %v", c.HopLatency)
	}
	if len(c.GPUTiers) != 1 && len(c.GPUTiers) != c.Shards {
		return fail("GPUTiers", "len %d != Shards %d (or 1 for a homogeneous cluster)", len(c.GPUTiers), c.Shards)
	}
	for i, name := range c.GPUTiers {
		if _, err := gpumodel.TierByName(name); err != nil {
			return fail(fmt.Sprintf("GPUTiers[%d]", i), "%v", err)
		}
	}
	if m := c.Migration; m.QueueDepth > 0 {
		if m.QueueDepth < 0 || m.MinGain < 0 {
			return fail("Migration.MinGain", "must be non-negative, got %d", m.MinGain)
		}
	} else if m.QueueDepth < 0 {
		return fail("Migration.QueueDepth", "must be non-negative, got %d", m.QueueDepth)
	}
	if a := c.Autoscale; a.Enabled {
		if a.Min < 0 {
			return fail("Autoscale.Min", "must be non-negative, got %d", a.Min)
		}
		if a.Max < a.Min {
			return fail("Autoscale.Max", "%d below Min %d", a.Max, a.Min)
		}
		if a.P99 < 0 {
			return fail("Autoscale.P99", "must be non-negative, got %v", a.P99)
		}
	}
	// The rate checks run even when the plan is otherwise disabled: a
	// negative MTBF never enables the stochastic process, but silently
	// ignoring it would hide a config typo.
	if f := c.Faults; f.MTBF < 0 || math.IsNaN(f.MTBF) || math.IsInf(f.MTBF, 0) {
		return fail("Faults.MTBF", "must be a non-negative finite time, got %v", f.MTBF)
	} else if f.MTTR < 0 || math.IsNaN(f.MTTR) || math.IsInf(f.MTTR, 0) {
		return fail("Faults.MTTR", "must be a non-negative finite time, got %v", f.MTTR)
	}
	if f := c.Faults; f.Enabled() {
		switch f.Failover {
		case FailoverReplay, FailoverDrop, FailoverDegrade:
		default:
			return fail("Faults.Failover", "unknown policy %q (want %q, %q or %q)",
				f.Failover, FailoverReplay, FailoverDrop, FailoverDegrade)
		}
		adds := 0
		for _, ft := range f.Faults {
			if ft.Kind == FaultAddShard {
				adds++
			}
		}
		for i, ft := range f.Faults {
			field := fmt.Sprintf("Faults.Faults[%d]", i)
			if ft.Time < 0 || math.IsNaN(ft.Time) || math.IsInf(ft.Time, 0) {
				return fail(field+".Time", "must be a non-negative finite time, got %v", ft.Time)
			}
			switch ft.Kind {
			case FaultKill, FaultRevive:
				if ft.Shard < 0 || ft.Shard >= c.Shards+adds {
					return fail(field+".Shard", "%d out of range [0,%d) (%d configured shards + %d add-shard faults)",
						ft.Shard, c.Shards+adds, c.Shards, adds)
				}
			case FaultAddShard:
				if ft.Tier != "" {
					if _, err := gpumodel.TierByName(ft.Tier); err != nil {
						return fail(field+".Tier", "%v", err)
					}
				}
			default:
				return fail(field+".Kind", "unknown fault kind %q (want %q, %q or %q)",
					ft.Kind, FaultKill, FaultRevive, FaultAddShard)
			}
		}
		if (f.Failover == FailoverReplay || f.Failover == FailoverDegrade) && c.Base.Reconnect == serve.ReconnectReject {
			return fail("Faults.Failover", "%q replays seized frames into surviving shards, which Base.Reconnect %q rejects; use %q or %q, or the %q failover",
				f.Failover, serve.ReconnectReject, serve.ReconnectResume, serve.ReconnectReset, FailoverDrop)
		}
	}
	return nil
}

// controlled reports whether any control policy needs the tick grid.
func (c Config) controlled() bool {
	return c.Autoscale.Enabled || c.Migration.QueueDepth > 0 || c.Faults.Enabled()
}
