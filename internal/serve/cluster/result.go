package cluster

import (
	"fmt"
	"io"

	"repro/internal/serve"
)

// ShardBook is one shard's share of the cluster outcome: its tier, the
// streams it owned when the scenario ended, its rental cost and its
// full single-fleet Result (whose PerStream rows cover the entire
// stream space — streams the shard never served show zero rows, so the
// books partition the cluster totals exactly).
type ShardBook struct {
	Shard int    `json:"shard"`
	Tier  string `json:"tier"`
	// Streams are the stream indices owned by this shard at the end of
	// the scenario (migrations included), ascending.
	Streams []int `json:"streams"`
	// Cost is the shard's modeled rental in dollars: the capacity
	// integral ∫ executors(t) dt times the tier's per-second price. For
	// a never-resized shard the integral is Executors times the shard
	// makespan.
	Cost   float64       `json:"cost_dollars"`
	Result *serve.Result `json:"result"`
	// Fault is the shard's failure ledger, present only under an active
	// FaultPlan (fault-free books keep their historical bytes).
	Fault *ShardFaultBook `json:"fault,omitempty"`
}

// ShardFaultBook is one shard's failure ledger. Every field carries
// omitempty so an untouched shard's book stays minimal.
type ShardFaultBook struct {
	// Kills counts the shard's failures; Downtime the virtual seconds
	// it spent dead (kill to effective revival, or to the cluster
	// makespan if never revived).
	Kills    int     `json:"kills,omitempty"`
	Downtime float64 `json:"downtime_s,omitempty"`
	// RecoveryLatencies are the kill-to-first-served-frame latencies of
	// each completed recovery, in kill order.
	RecoveryLatencies []float64 `json:"recovery_latencies_s,omitempty"`
	// BornAt is when an add-shard fault created the shard (0 for the
	// initial topology); Down marks a shard still dead at the end.
	BornAt float64 `json:"born_at_s,omitempty"`
	Down   bool    `json:"down,omitempty"`
}

// FaultBook is the cluster-wide failure ledger, present in Result only
// under an active FaultPlan.
type FaultBook struct {
	// Failover echoes the seized-frame policy the run used.
	Failover FailoverPolicy `json:"failover,omitempty"`
	// Kills, Revivals and ShardsAdded count the executed faults;
	// Replaced counts failover re-placements through the live ring and
	// Rebalanced the bulk-planner moves after membership gains;
	// RingEpoch counts online ring resizes.
	Kills       int `json:"kills,omitempty"`
	Revivals    int `json:"revivals,omitempty"`
	ShardsAdded int `json:"shards_added,omitempty"`
	Replaced    int `json:"replaced,omitempty"`
	Rebalanced  int `json:"rebalanced,omitempty"`
	RingEpoch   int `json:"ring_epoch,omitempty"`
	// Replayed counts seized frames re-submitted to survivors (each is
	// subtracted from the merged Arrived so offered load stays the
	// schedule's); DroppedFailover the seized frames abandoned under
	// the drop policy.
	Replayed        int `json:"replayed,omitempty"`
	DroppedFailover int `json:"dropped_failover,omitempty"`
	// Downtime sums the per-shard dead seconds. Availability is the
	// uptime fraction, 1 - Downtime/sum of per-shard lifespans; the
	// availability-adjusted economics headline scales ServedPerDollar
	// by it.
	Downtime             float64 `json:"downtime_s,omitempty"`
	Availability         float64 `json:"availability,omitempty"`
	AvailServedPerDollar float64 `json:"avail_served_per_dollar,omitempty"`
}

// Result is the merged outcome of one cluster scenario: plain data with
// a deterministic JSON encoding, byte-identical across reruns and
// Base.StepWorkers settings.
type Result struct {
	// Scenario identity: the Base headline plus the cluster topology.
	System              string            `json:"system"`
	Preset              string            `json:"preset"`
	Seed                int64             `json:"seed"`
	Streams             int               `json:"streams"`
	FPS                 float64           `json:"fps"`
	Arrivals            serve.ArrivalKind `json:"arrivals"`
	Duration            float64           `json:"duration_s"`
	Executors           int               `json:"executors"`
	Shards              int               `json:"shards"`
	VirtualNodes        int               `json:"virtual_nodes"`
	PlacementLoadFactor float64           `json:"placement_load_factor"`
	HopLatency          float64           `json:"hop_latency_s"`
	GPUTiers            []string          `json:"gpu_tiers"`
	Migration           *Migration        `json:"migration,omitempty"`
	Autoscale           *Autoscale        `json:"autoscale,omitempty"`

	// Fleet aggregates every stream across every shard; PerStream is
	// indexed by stream and merges each stream's rows across shards
	// (latency percentiles are recomputed from the union of served
	// latencies, not averaged from shard summaries).
	Fleet     serve.StreamStats   `json:"fleet"`
	PerStream []serve.StreamStats `json:"per_stream"`

	// Control-plane totals. ControlTicks and ModeSwitches sum the
	// per-shard adaptive-controller activity (serve/control) and stay
	// absent while no controller is configured.
	Migrations   int `json:"migrations"`
	Resizes      int `json:"resizes"`
	ControlTicks int `json:"control_ticks,omitempty"`
	ModeSwitches int `json:"mode_switches,omitempty"`

	PerShard []ShardBook `json:"per_shard"`

	// Faults is the failure ledger, absent without an active FaultPlan.
	Faults *FaultBook `json:"faults,omitempty"`

	// Cost sums the shard rentals; ServedPerDollar is the cluster's
	// economic headline, Fleet.Served/Cost (0 when the cost is 0).
	Cost            float64 `json:"cost_dollars"`
	ServedPerDollar float64 `json:"served_per_dollar"`

	// LastEventAt is the cluster makespan: the latest shard makespan.
	LastEventAt float64 `json:"last_event_at_s"`
}

// merge folds the per-shard books into the cluster Result. Called with
// r.mu held; books is indexed by shard.
func (r *Router) merge(books []*serve.Result) *Result {
	cfg := r.cfg
	base := books[0]
	res := &Result{
		System:              base.System,
		Preset:              base.Preset,
		Seed:                base.Seed,
		Streams:             base.Streams,
		FPS:                 base.FPS,
		Arrivals:            base.Arrivals,
		Duration:            base.Duration,
		Executors:           base.Executors,
		Shards:              cfg.Shards,
		VirtualNodes:        cfg.VirtualNodes,
		PlacementLoadFactor: cfg.PlacementLoadFactor,
		HopLatency:          cfg.HopLatency,
		GPUTiers:            append([]string(nil), cfg.GPUTiers...),
		Migrations:          r.migrations,
		Resizes:             r.resizes,
		PerStream:           make([]serve.StreamStats, cfg.Base.Streams),
		PerShard:            make([]ShardBook, len(books)),
	}
	if cfg.Migration.QueueDepth > 0 {
		m := cfg.Migration
		res.Migration = &m
	}
	if cfg.Autoscale.Enabled {
		a := cfg.Autoscale
		res.Autoscale = &a
	}
	for _, b := range books {
		if b.LastEventAt > res.LastEventAt {
			res.LastEventAt = b.LastEventAt
		}
		res.ControlTicks += b.ControlTicks
		res.ModeSwitches += b.ModeSwitches
	}
	for s, b := range books {
		seconds := b.ExecutorSeconds
		if b.Resizes == 0 && !cfg.Autoscale.Enabled {
			seconds = float64(b.Executors) * b.LastEventAt
		}
		cost := seconds * r.tiers[s].DollarsPerSecond()
		var owned []int
		for stream, o := range r.owner {
			if o == s {
				owned = append(owned, stream)
			}
		}
		res.PerShard[s] = ShardBook{
			Shard:   s,
			Tier:    r.tiers[s].Name,
			Streams: owned,
			Cost:    cost,
			Result:  b,
		}
		res.Cost += cost
	}
	var all []float64
	for i := range res.PerStream {
		row := &res.PerStream[i]
		for _, b := range books {
			sr := b.PerStream[i]
			row.ID = sr.ID
			row.Arrived += sr.Arrived
			row.Served += sr.Served
			row.DroppedQueue += sr.DroppedQueue
			row.DroppedStale += sr.DroppedStale
			row.DroppedPoison += sr.DroppedPoison
			row.Reconnects += sr.Reconnects
			row.FailedOver += sr.FailedOver
			row.Degraded += sr.Degraded
			row.ModeFull += sr.ModeFull
		}
		// A replayed frame arrived twice — once on the shard that died
		// holding it, once on the survivor that served it. Subtracting
		// the replays keeps the merged Arrived equal to the offered
		// schedule, so arrived == served + drops + dropped_failover
		// holds cluster-wide under any FailoverPolicy.
		row.Replayed = r.replayed[i]
		row.DroppedFailover = r.dropFail[i]
		row.Arrived -= r.replayed[i]
		row.Latency = serve.Summarize(r.lat[i])
		all = append(all, r.lat[i]...)
		if res.LastEventAt > 0 {
			row.Throughput = float64(row.Served) / res.LastEventAt
		}
		if row.Arrived > 0 {
			row.DropRate = float64(row.DroppedQueue+row.DroppedStale) / float64(row.Arrived)
		}
		fl := &res.Fleet
		fl.Arrived += row.Arrived
		fl.Served += row.Served
		fl.DroppedQueue += row.DroppedQueue
		fl.DroppedStale += row.DroppedStale
		fl.DroppedPoison += row.DroppedPoison
		fl.Reconnects += row.Reconnects
		fl.FailedOver += row.FailedOver
		fl.Replayed += row.Replayed
		fl.DroppedFailover += row.DroppedFailover
		fl.Degraded += row.Degraded
		fl.ModeFull += row.ModeFull
	}
	res.Fleet.ID = "cluster"
	res.Fleet.Latency = serve.Summarize(all)
	if res.LastEventAt > 0 {
		res.Fleet.Throughput = float64(res.Fleet.Served) / res.LastEventAt
	}
	if res.Fleet.Arrived > 0 {
		res.Fleet.DropRate = float64(res.Fleet.DroppedQueue+res.Fleet.DroppedStale) / float64(res.Fleet.Arrived)
	}
	if res.Cost > 0 {
		res.ServedPerDollar = float64(res.Fleet.Served) / res.Cost
	}
	if cfg.Faults.Enabled() {
		fb := &FaultBook{
			Failover:        cfg.Faults.Failover,
			Kills:           r.kills,
			Revivals:        r.revivals,
			ShardsAdded:     r.added,
			Replaced:        r.replaced,
			Rebalanced:      r.rebalanced,
			RingEpoch:       r.ringEpoch,
			Replayed:        res.Fleet.Replayed,
			DroppedFailover: res.Fleet.DroppedFailover,
		}
		lifespan := 0.0
		for s := range books {
			down := r.downtime[s]
			if !r.alive[s] {
				// Still dead at the end: downtime runs to the makespan.
				if d := res.LastEventAt - r.downSince[s]; d > 0 {
					down += d
				}
			}
			fb.Downtime += down
			if span := res.LastEventAt - r.bornAt[s]; span > 0 {
				lifespan += span
			}
			res.PerShard[s].Fault = &ShardFaultBook{
				Kills:             r.killCount[s],
				Downtime:          down,
				RecoveryLatencies: append([]float64(nil), r.recoveries[s]...),
				BornAt:            r.bornAt[s],
				Down:              !r.alive[s],
			}
		}
		if lifespan > 0 {
			fb.Availability = 1 - fb.Downtime/lifespan
		}
		fb.AvailServedPerDollar = res.ServedPerDollar * fb.Availability
		res.Faults = fb
	}
	return res
}

// ms renders seconds as milliseconds for the text report.
func ms(s float64) string { return fmt.Sprintf("%.1fms", 1000*s) }

// WriteText prints the human-readable cluster report. Like the JSON it
// is byte-identical across reruns of the same Config.
func (r *Result) WriteText(w io.Writer) {
	fmt.Fprintf(w, "system:      %s\n", r.System)
	fmt.Fprintf(w, "load:        %d streams x %.1f fps (%s), %.1fs, preset %s, seed %d\n",
		r.Streams, r.FPS, r.Arrivals, r.Duration, r.Preset, r.Seed)
	mig := "off"
	if r.Migration != nil {
		mig = fmt.Sprintf("depth>=%d (cooldown %.1fs, max %d/stream)",
			r.Migration.QueueDepth, r.Migration.Cooldown, r.Migration.MaxPerStream)
	}
	auto := "off"
	if r.Autoscale != nil {
		auto = fmt.Sprintf("[%d,%d] execs, tick %.2fs, up@depth>=%d, down after %d idle",
			r.Autoscale.Min, r.Autoscale.Max, r.Autoscale.Interval, r.Autoscale.UpQueue, r.Autoscale.DownIdle)
	}
	fmt.Fprintf(w, "cluster:     %d shards (vnodes %d, load factor %.2f, hop %s), tiers %v\n",
		r.Shards, r.VirtualNodes, r.PlacementLoadFactor, ms(r.HopLatency), r.GPUTiers)
	fmt.Fprintf(w, "control:     migration %s; autoscale %s\n", mig, auto)
	if r.ControlTicks > 0 {
		fmt.Fprintf(w, "adaptive:    %d control ticks, %d mode switches across shards\n",
			r.ControlTicks, r.ModeSwitches)
	}
	fl := r.Fleet
	fmt.Fprintf(w, "served:      %d/%d frames (throughput %.1f fps, drop rate %.1f%%, degraded %d); %d migrations, %d resizes\n",
		fl.Served, fl.Arrived, fl.Throughput, 100*fl.DropRate, fl.Degraded, r.Migrations, r.Resizes)
	if f := r.Faults; f != nil {
		fmt.Fprintf(w, "failures:    %d kills, %d revivals, %d shards added (%s failover): %d replayed, %d dropped, %d replaced + %d rebalanced moves; downtime %.2fs, availability %.1f%%, %.1f avail-adjusted served/$\n",
			f.Kills, f.Revivals, f.ShardsAdded, f.Failover, f.Replayed, f.DroppedFailover,
			f.Replaced, f.Rebalanced, f.Downtime, 100*f.Availability, f.AvailServedPerDollar)
	}
	fmt.Fprintf(w, "latency:     p50 %s  p95 %s  p99 %s  max %s  (mean %s)\n",
		ms(fl.Latency.P50), ms(fl.Latency.P95), ms(fl.Latency.P99), ms(fl.Latency.Max), ms(fl.Latency.Mean))
	fmt.Fprintf(w, "economics:   $%.4f total, %.1f served frames per dollar; makespan %.2fs\n",
		r.Cost, r.ServedPerDollar, r.LastEventAt)
	fmt.Fprintln(w, "per-shard:")
	for _, b := range r.PerShard {
		fmt.Fprintf(w, "  shard-%d (%s)%*s served %4d/%-4d  util %5.1f%%  $%.4f  streams %v\n",
			b.Shard, b.Tier, 8-len(b.Tier), "", b.Result.Fleet.Served, b.Result.Fleet.Arrived,
			100*b.Result.Utilization, b.Cost, b.Streams)
	}
	fmt.Fprintln(w, "per-stream:")
	for _, st := range r.PerStream {
		fmt.Fprintf(w, "  %-18s served %4d/%-4d  drop %5.1f%%  p50 %8s  p99 %8s\n",
			st.ID, st.Served, st.Arrived, 100*st.DropRate, ms(st.Latency.P50), ms(st.Latency.P99))
	}
}
