package cluster

import "sort"

// rebalance is the tier-aware bulk planner that runs after a membership
// gain (revival or shard addition): it extends PR 7's one-stream-per-
// tick migration policy to a batch plan that moves ownership toward the
// fast tiers in a single control decision.
//
// Each live shard's target stream count is proportional to its tier
// speed (largest-remainder apportionment, ties to the lower shard
// index). Overloaded donors then hand their lowest-index streams to the
// fastest underloaded receivers; every move bumps the stream's cluster
// epoch and books an EventRebalance, and — like the migration policy —
// moves only future arrivals: frames already queued on the donor drain
// there. Called with r.mu held; deterministic because targets, donors
// and receivers all derive from virtual-clock state in fixed order.
func (r *Router) rebalance(e float64) {
	var live []int
	for s := range r.shards {
		if r.alive[s] {
			live = append(live, s)
		}
	}
	if len(live) < 2 {
		return
	}
	total := r.cfg.Base.Streams
	sum := 0.0
	for _, s := range live {
		sum += r.tiers[s].Speed
	}
	if sum <= 0 {
		return
	}
	// Largest-remainder apportionment of the stream count by speed.
	target := make([]int, len(r.shards))
	type rem struct {
		s    int
		frac float64
	}
	rems := make([]rem, 0, len(live))
	assigned := 0
	for _, s := range live {
		q := float64(total) * r.tiers[s].Speed / sum
		target[s] = int(q)
		assigned += target[s]
		rems = append(rems, rem{s: s, frac: q - float64(target[s])})
	}
	sort.SliceStable(rems, func(i, j int) bool { return rems[i].frac > rems[j].frac })
	for i := 0; assigned < total; i++ {
		target[rems[i%len(rems)].s]++
		assigned++
	}
	counts := make([]int, len(r.shards))
	for _, o := range r.owner {
		counts[o]++
	}
	// Receivers in fastest-first order (ties to the lower index).
	recv := append([]int(nil), live...)
	sort.SliceStable(recv, func(i, j int) bool { return r.tiers[recv[i]].Speed > r.tiers[recv[j]].Speed })
	for i := 0; i < total; i++ {
		d := r.owner[i]
		if !r.alive[d] || counts[d] <= target[d] {
			continue
		}
		for _, rc := range recv {
			if rc == d || counts[rc] >= target[rc] {
				continue
			}
			counts[d]--
			counts[rc]++
			r.rebalanced++
			r.moveOwner(i, d, rc, e)
			break
		}
	}
}
