package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/serve"
	"repro/internal/serve/control"
	"repro/internal/sim"
	"repro/internal/video"
)

// baseConfig is a small CaTDet scenario on the mini world; tests tweak
// the returned copy.
func baseConfig() serve.Config {
	return serve.Config{
		Spec: sim.SystemSpec{
			Kind: sim.CaTDet, Proposal: "resnet10a", Refinement: "resnet50",
			Cfg: core.DefaultConfig(),
		},
		Preset:   video.MiniKITTIPreset(),
		Seed:     1,
		Streams:  6,
		FPS:      15,
		Arrivals: serve.Poisson,
		Duration: 4,
	}
}

func mustRun(t *testing.T, cfg Config) *Result {
	t.Helper()
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func marshal(t *testing.T, r *Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// everythingOn is the kitchen-sink cluster scenario the determinism
// matrix pins: bursty load, heterogeneous tiers, migration and the
// autoscaler all at once.
func everythingOn() Config {
	base := baseConfig()
	base.Arrivals = serve.Burst
	base.BurstPeriod = 1.5
	base.BurstDuty = 0.5
	base.QueueCap = 64
	return Config{
		Base:      base,
		GPUTiers:  []string{"titanx", "v100", "k80"},
		Migration: Migration{QueueDepth: 3},
		Autoscale: Autoscale{Enabled: true, Max: 3},
	}
}

// TestClusterDeterminism is the cluster-wide determinism contract: for
// every (shards, executors) scenario — the identity axes — the merged
// books are byte-identical across reruns and across Base.StepWorkers 1
// and 4 (the execution knob), with migration, autoscaling, tiers and
// burst arrivals all live.
func TestClusterDeterminism(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		for _, executors := range []int{1, 2} {
			t.Run(fmt.Sprintf("shards=%d/executors=%d", shards, executors), func(t *testing.T) {
				var golden []byte
				for _, workers := range []int{1, 4, 1} { // trailing 1 = rerun
					cfg := everythingOn()
					cfg.Shards = shards
					cfg.GPUTiers = []string{"titanx", "v100", "k80", "v100"}[:shards]
					cfg.Base.Executors = executors
					cfg.Base.StepWorkers = workers
					b := marshal(t, mustRun(t, cfg))
					if golden == nil {
						golden = b
					} else if !bytes.Equal(golden, b) {
						t.Fatalf("books diverge at StepWorkers=%d", workers)
					}
				}
			})
		}
	}
}

// TestOneShardMatchesServe pins the degenerate cluster: one shard, no
// control policies — the shard's book is byte-identical to serve.Run of
// the same Base, and the merged rows echo it.
func TestOneShardMatchesServe(t *testing.T) {
	base := baseConfig()
	single, err := serve.Run(base)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(single)
	if err != nil {
		t.Fatal(err)
	}
	r := mustRun(t, Config{Base: base, Shards: 1})
	got, err := json.Marshal(r.PerShard[0].Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, got) {
		t.Errorf("one-shard book differs from serve.Run:\n  serve:   %s\n  cluster: %s", want, got)
	}
	if r.Fleet.Served != single.Fleet.Served || r.Fleet.Arrived != single.Fleet.Arrived {
		t.Errorf("merged fleet (%d/%d) != single fleet (%d/%d)",
			r.Fleet.Served, r.Fleet.Arrived, single.Fleet.Served, single.Fleet.Arrived)
	}
	if r.Migrations != 0 || r.Resizes != 0 {
		t.Errorf("control plane acted on an uncontrolled cluster: %d migrations, %d resizes", r.Migrations, r.Resizes)
	}
	if got, want := r.Cost, float64(single.Executors)*single.LastEventAt*0.0005; got != want {
		t.Errorf("static titanx cost = %v, want executors*makespan*$/s = %v", got, want)
	}
}

// TestMigrationSemantics drives one hot stream (8x the fps of its
// peers) into a two-shard cluster and pins the migration contract: the
// hot stream migrates exactly once, a cluster epoch is minted, frames
// after the move land on the target (the books partition the stream
// across both shards), and the merged totals reconcile with both the
// shard books and the live Stats.
func TestMigrationSemantics(t *testing.T) {
	base := baseConfig()
	base.StreamFPS = []float64{15, 15, 15, 15, 15, 120}
	base.QueueCap = 256
	cfg := Config{
		Base:      base,
		Shards:    2,
		Migration: Migration{QueueDepth: 4},
	}
	var migrations []Event
	cfg.Sink = SinkFunc(func(e Event) {
		if e.Kind == EventMigrate {
			migrations = append(migrations, e)
		}
	})
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Ingest(serve.ScheduleSource(r.Config().Base)); err != nil {
		t.Fatal(err)
	}
	res, err := r.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	const hot = 5
	if res.Migrations != len(migrations) {
		t.Errorf("result books %d migrations, sink saw %d", res.Migrations, len(migrations))
	}
	perStream := make([]int, base.Streams)
	hotMigs := []Event(nil)
	for _, e := range migrations {
		perStream[e.Stream]++
		if e.Stream == hot {
			hotMigs = append(hotMigs, e)
		}
	}
	for i, n := range perStream {
		if n > 1 {
			t.Errorf("stream %d migrated %d times, MaxPerStream is 1", i, n)
		}
	}
	if len(hotMigs) != 1 {
		t.Fatalf("hot stream migrated %d times, want exactly 1 (all migrations: %+v)", len(hotMigs), migrations)
	}
	mig := hotMigs[0]
	if mig.Epoch != 1 {
		t.Errorf("migration epoch = %d, want 1", mig.Epoch)
	}
	if mig.From == mig.To {
		t.Errorf("migration from shard %d to itself", mig.From)
	}
	_, owner := r.Placement()
	if owner[hot] != mig.To {
		t.Errorf("owner[%d] = %d after migration to %d", hot, owner[hot], mig.To)
	}

	// The hot stream's book partitions across both shards: frames
	// before the move on the source, frames after on the target.
	src := res.PerShard[mig.From].Result.PerStream[hot]
	dst := res.PerShard[mig.To].Result.PerStream[hot]
	if src.Arrived == 0 || dst.Arrived == 0 {
		t.Errorf("hot stream not partitioned: source saw %d, target saw %d", src.Arrived, dst.Arrived)
	}
	merged := res.PerStream[hot]
	if merged.Arrived != src.Arrived+dst.Arrived || merged.Served != src.Served+dst.Served {
		t.Errorf("merged hot row (%d/%d) != source+target (%d/%d)",
			merged.Served, merged.Arrived, src.Served+dst.Served, src.Arrived+dst.Arrived)
	}
	for i, row := range res.PerStream {
		sum := 0
		for _, b := range res.PerShard {
			sum += b.Result.PerStream[i].Served
		}
		if row.Served != sum {
			t.Errorf("stream %d merged served %d != shard sum %d", i, row.Served, sum)
		}
	}

	// Live Stats after the drain reconcile with the merged Result.
	st := r.Stats()
	if st.Served != res.Fleet.Served || st.Arrived != res.Fleet.Arrived {
		t.Errorf("Stats (%d/%d) != Result fleet (%d/%d)", st.Served, st.Arrived, res.Fleet.Served, res.Fleet.Arrived)
	}
	if st.QueueDepth != 0 || st.BusyExecutors != 0 {
		t.Errorf("drained cluster still busy: %+v", st)
	}
	if st.Migrations != res.Migrations {
		t.Errorf("Stats.Migrations = %d, Result says %d", st.Migrations, res.Migrations)
	}
}

// TestHopLatencyCharged pins the cross-node tax: a stream served off
// its hash home arrives later by exactly HopLatency, so a forced
// off-home cluster serves every frame no earlier than the on-home one.
func TestHopLatencyCharged(t *testing.T) {
	base := baseConfig()
	base.Arrivals = serve.FixedFPS
	// Load factor 1.0 caps each of the two shards at streams/2; pick
	// the smallest stream count whose (deterministic) hash placement
	// actually overflows the cap, so an off-home stream pays the hop.
	offHome := false
	for n := 2; n <= 8 && !offHome; n++ {
		base.Streams = n
		router, err := New(Config{Base: base, Shards: 2, PlacementLoadFactor: 1.0})
		if err != nil {
			t.Fatal(err)
		}
		home, owner := router.Placement()
		router.Close()
		for i := range home {
			if home[i] != owner[i] {
				offHome = true
			}
		}
	}
	if !offHome {
		t.Fatal("no stream count up to 8 overflowed the cap — placement override is dead code")
	}
	run := func(hop float64) *Result {
		return mustRun(t, Config{Base: base, Shards: 2, HopLatency: hop, PlacementLoadFactor: 1.0})
	}
	cheap, taxed := run(1e-9), run(0.5)
	if cheap.Fleet.Arrived != taxed.Fleet.Arrived {
		t.Fatalf("hop changed offered load: %d vs %d", cheap.Fleet.Arrived, taxed.Fleet.Arrived)
	}
	if taxed.LastEventAt <= cheap.LastEventAt {
		t.Errorf("0.5s hop did not extend the makespan: %v vs %v", taxed.LastEventAt, cheap.LastEventAt)
	}
}

// TestElasticBeatsStatic is the autoscaler's economic acceptance: under
// synchronized bursty load there is a scenario where the elastic
// cluster beats every static executor count on served frames per
// modeled dollar — idle gaps are parked at Min=0 instead of rented.
func TestElasticBeatsStatic(t *testing.T) {
	base := baseConfig()
	base.Arrivals = serve.Burst
	base.BurstPeriod = 4
	base.BurstDuty = 0.125
	base.Duration = 12
	base.QueueCap = 256
	mk := func(execs int, elastic bool) Config {
		b := base
		b.Executors = execs
		cfg := Config{Base: b, Shards: 2}
		if elastic {
			cfg.Autoscale = Autoscale{Enabled: true, Min: 0, Max: 2, Interval: 0.25, UpQueue: 4, DownIdle: 1}
		}
		return cfg
	}
	elastic := mustRun(t, mk(1, true))
	if elastic.ServedPerDollar <= 0 {
		t.Fatalf("elastic cluster has no economics: %+v", elastic.Fleet)
	}
	for _, execs := range []int{1, 2, 3, 4} {
		static := mustRun(t, mk(execs, false))
		if static.ServedPerDollar >= elastic.ServedPerDollar {
			t.Errorf("static %d executors/shard: %.1f served/$ >= elastic %.1f served/$",
				execs, static.ServedPerDollar, elastic.ServedPerDollar)
		}
		// Apples to apples: nobody may shed load to win the ratio.
		if static.Fleet.DroppedQueue+static.Fleet.DroppedStale > 0 || elastic.Fleet.DroppedQueue+elastic.Fleet.DroppedStale > 0 {
			t.Errorf("drops under static %d: static %d, elastic %d", execs,
				static.Fleet.DroppedQueue+static.Fleet.DroppedStale,
				elastic.Fleet.DroppedQueue+elastic.Fleet.DroppedStale)
		}
	}
	if elastic.Resizes < 2 {
		t.Errorf("elastic run resized only %d times — the autoscaler never breathed", elastic.Resizes)
	}
}

// TestClusterValidation pins the field-path errors of the cluster
// config surface.
func TestClusterValidation(t *testing.T) {
	bad := []Config{
		{Base: baseConfig(), GPUTiers: []string{"tpu"}},
		{Base: baseConfig(), Shards: 3, GPUTiers: []string{"titanx", "v100"}},
		{Base: baseConfig(), HopLatency: -1},
		{Base: baseConfig(), Autoscale: Autoscale{Enabled: true, Min: 5, Max: 2}},
		{Base: baseConfig(), Migration: Migration{QueueDepth: 2, MinGain: -1}},
		{Base: serve.Config{}},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d validated: %+v", i, cfg)
		}
	}
	if err := (Config{Base: baseConfig()}).Validate(); err != nil {
		t.Errorf("default cluster config rejected: %v", err)
	}
}

// adaptiveCluster is the kitchen-sink scenario with per-shard adaptive
// controllers live on top of migration and autoscaling: each shard runs
// its own baseline controller over the streams it currently owns.
func adaptiveCluster() Config {
	cfg := everythingOn()
	cfg.Base.FPS = 30
	cfg.Base.Control = control.Config{
		Kind:     control.KindBaseline,
		Interval: 0.1, Cooldown: 0.1,
		HighDepth: 2, LowDepth: 1,
		HighP99: 2.5, LowP99: 1.6,
		MaxBatch: 4, BatchDepth: 8,
	}
	return cfg
}

// TestClusterAdaptiveDeterminism extends the cluster determinism
// contract to the adaptive control plane: with per-shard baseline
// controllers shedding under a bursty overload, the merged books stay
// byte-identical across reruns and Base.StepWorkers at every shard
// count, and the merged result reports the summed controller activity.
func TestClusterAdaptiveDeterminism(t *testing.T) {
	for _, shards := range []int{1, 2} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			var golden []byte
			var first *Result
			for _, workers := range []int{1, 4, 1} { // trailing 1 = rerun
				cfg := adaptiveCluster()
				cfg.Shards = shards
				cfg.GPUTiers = []string{"titanx", "v100"}[:shards]
				cfg.Base.StepWorkers = workers
				r := mustRun(t, cfg)
				b := marshal(t, r)
				if golden == nil {
					golden, first = b, r
				} else if !bytes.Equal(golden, b) {
					t.Fatalf("adaptive books diverge at StepWorkers=%d", workers)
				}
			}
			if first.ControlTicks == 0 {
				t.Error("adaptive cluster merged zero control ticks")
			}
			for _, b := range first.PerShard {
				if b.Result.Control == nil {
					t.Errorf("shard %d book missing its control echo", b.Shard)
				}
			}
		})
	}
}
