package cluster

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/serve"
)

// faultCluster is the frozen kill-recovery scenario the failover matrix
// pins: the kitchen-sink cluster with shard 0 killed mid-burst and
// revived 1.5s later.
func faultCluster(shards int, policy FailoverPolicy) Config {
	cfg := everythingOn()
	cfg.Shards = shards
	cfg.GPUTiers = []string{"titanx", "v100", "k80", "v100"}[:shards]
	cfg.Faults = FaultPlan{
		Faults: []Fault{
			{Time: 1.0, Kind: FaultKill, Shard: 0},
			{Time: 2.5, Kind: FaultRevive, Shard: 0},
		},
		Failover: policy,
	}
	return cfg
}

// checkConservation pins the cluster-wide frame ledger under faults:
// with replays subtracted, every offered frame reaches exactly one
// terminal outcome, and the failover channels reconcile.
func checkConservation(t *testing.T, r *Result) {
	t.Helper()
	rows := append([]serve.StreamStats{r.Fleet}, r.PerStream...)
	for _, row := range rows {
		if got := row.Served + row.DroppedQueue + row.DroppedStale + row.DroppedFailover; got != row.Arrived {
			t.Errorf("%s: served %d + drops %d+%d + dropped_failover %d = %d != arrived %d",
				row.ID, row.Served, row.DroppedQueue, row.DroppedStale, row.DroppedFailover, got, row.Arrived)
		}
		if row.FailedOver != row.Replayed+row.DroppedFailover {
			t.Errorf("%s: failed_over %d != replayed %d + dropped_failover %d",
				row.ID, row.FailedOver, row.Replayed, row.DroppedFailover)
		}
	}
}

// TestFailoverDeterminism is the headline contract of the failure
// subsystem: with shard kills, revivals and every failover policy live,
// the merged books stay byte-identical across reruns and StepWorkers at
// every shard count — including the one-shard cluster, whose kill
// orphans the whole stream space until the revival. A seeded stochastic
// MTBF/MTTR plan pins the same for the generated schedule.
func TestFailoverDeterminism(t *testing.T) {
	for _, policy := range []FailoverPolicy{FailoverReplay, FailoverDrop, FailoverDegrade} {
		for _, shards := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", policy, shards), func(t *testing.T) {
				var golden []byte
				var first *Result
				for _, workers := range []int{1, 4, 1} { // trailing 1 = rerun
					cfg := faultCluster(shards, policy)
					cfg.Base.StepWorkers = workers
					r := mustRun(t, cfg)
					b := marshal(t, r)
					if golden == nil {
						golden, first = b, r
					} else if !bytes.Equal(golden, b) {
						t.Fatalf("faulted books diverge at StepWorkers=%d", workers)
					}
				}
				if first.Faults == nil {
					t.Fatal("faulted run has no fault ledger")
				}
				if first.Faults.Kills != 1 || first.Faults.Revivals != 1 {
					t.Errorf("ledger books %d kills, %d revivals, want 1 and 1", first.Faults.Kills, first.Faults.Revivals)
				}
				if first.Fleet.FailedOver == 0 {
					t.Error("mid-burst kill seized no frames")
				}
				switch policy {
				case FailoverDrop:
					if first.Fleet.Replayed != 0 {
						t.Errorf("drop failover replayed %d frames", first.Fleet.Replayed)
					}
					if first.Fleet.DroppedFailover != first.Fleet.FailedOver {
						t.Errorf("drop failover: dropped %d of %d seized", first.Fleet.DroppedFailover, first.Fleet.FailedOver)
					}
				default:
					if first.Fleet.DroppedFailover != 0 {
						t.Errorf("%s failover dropped %d frames", policy, first.Fleet.DroppedFailover)
					}
					if first.Fleet.Replayed != first.Fleet.FailedOver {
						t.Errorf("%s failover: replayed %d of %d seized", policy, first.Fleet.Replayed, first.Fleet.FailedOver)
					}
				}
				checkConservation(t, first)
			})
		}
	}
	t.Run("stochastic", func(t *testing.T) {
		var golden []byte
		var first *Result
		for _, workers := range []int{1, 4, 1} {
			cfg := everythingOn()
			cfg.Shards = 2
			cfg.GPUTiers = []string{"titanx", "v100"}
			cfg.Faults = FaultPlan{MTBF: 1.2, MTTR: 0.8}
			cfg.Base.StepWorkers = workers
			r := mustRun(t, cfg)
			b := marshal(t, r)
			if golden == nil {
				golden, first = b, r
			} else if !bytes.Equal(golden, b) {
				t.Fatalf("stochastic books diverge at StepWorkers=%d", workers)
			}
		}
		if first.Faults == nil || first.Faults.Kills == 0 {
			t.Fatalf("MTBF 1.2 over 4s injected no kills: %+v", first.Faults)
		}
		checkConservation(t, first)
	})
}

// TestNoFaultPlanMatchesCluster pins the zero-cost guarantee: a cluster
// built with an explicit empty FaultPlan reproduces the pre-subsystem
// golden bytes exactly — no new JSON fields leak into fault-free books,
// no control decision shifts.
func TestNoFaultPlanMatchesCluster(t *testing.T) {
	cfg := everythingOn()
	cfg.Shards = 2
	cfg.GPUTiers = []string{"titanx", "v100"}
	cfg.Faults = FaultPlan{}
	got := marshal(t, mustRun(t, cfg))
	want, err := os.ReadFile(filepath.Join("testdata", "golden_cluster.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("empty FaultPlan diverges from the frozen cluster golden:\n  want: %s\n  got:  %s", want, got)
	}
}

// TestRecoveryLatencyBounded pins the recovery metric: the revived
// shard books one kill, a downtime covering its dead window, and a
// recovery latency (kill to first served frame) that is positive and
// bounded by the scenario.
func TestRecoveryLatencyBounded(t *testing.T) {
	r := mustRun(t, faultCluster(2, FailoverReplay))
	fb := r.PerShard[0].Fault
	if fb == nil {
		t.Fatal("killed shard has no fault ledger")
	}
	if fb.Kills != 1 {
		t.Fatalf("shard 0 books %d kills, want 1", fb.Kills)
	}
	// Killed at 1.0, revived at 2.5, capacity back at 2.5+ScaleUpLatency.
	if fb.Downtime < 1.5 || fb.Downtime > 3 {
		t.Errorf("downtime %.2fs outside the dead window [1.5, 3]", fb.Downtime)
	}
	if len(fb.RecoveryLatencies) != 1 {
		t.Fatalf("recovery latencies %v, want exactly 1 completed recovery", fb.RecoveryLatencies)
	}
	lat := fb.RecoveryLatencies[0]
	if lat <= fb.Downtime {
		t.Errorf("recovery latency %.2fs not after the downtime %.2fs — served while dead?", lat, fb.Downtime)
	}
	if lat > r.LastEventAt {
		t.Errorf("recovery latency %.2fs exceeds the makespan %.2fs", lat, r.LastEventAt)
	}
	if r.Faults.Availability <= 0 || r.Faults.Availability >= 1 {
		t.Errorf("availability %.3f outside (0,1) for a cluster with downtime", r.Faults.Availability)
	}
	if want := r.ServedPerDollar * r.Faults.Availability; r.Faults.AvailServedPerDollar != want {
		t.Errorf("avail-adjusted served/$ = %v, want %v", r.Faults.AvailServedPerDollar, want)
	}
}

// TestBulkRebalanceMovesTowardFastTiers pins the tier-aware planner:
// killing the fast v100 shard piles its streams onto the slow k80, and
// the revival's bulk rebalance hands the majority back to the v100
// (stream targets are apportioned by tier speed, not spread evenly).
func TestBulkRebalanceMovesTowardFastTiers(t *testing.T) {
	cfg := everythingOn()
	cfg.Shards = 2
	cfg.GPUTiers = []string{"k80", "v100"}
	cfg.Faults = FaultPlan{Faults: []Fault{
		{Time: 1.0, Kind: FaultKill, Shard: 1},
		{Time: 2.0, Kind: FaultRevive, Shard: 1},
	}}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Ingest(serve.ScheduleSource(r.Config().Base)); err != nil {
		t.Fatal(err)
	}
	res, err := r.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Rebalanced == 0 {
		t.Fatal("revival triggered no bulk rebalance moves")
	}
	_, owner := r.Placement()
	fast := 0
	for _, o := range owner {
		if o == 1 {
			fast++
		}
	}
	// Speeds 2.3 vs 0.45: the v100's largest-remainder share of 6
	// streams is 5.
	if fast < 4 {
		t.Errorf("v100 owns %d of %d streams after the rebalance, want the fast-tier majority (>=4); owners %v",
			fast, cfg.Base.Streams, owner)
	}
	checkConservation(t, res)
}

// TestLastShardDeathDrains pins the park-guard interaction the failure
// subsystem must not break: when every shard dies and nothing revives,
// Drain still completes — the orphaned backlog is replayed through a
// last-resort revival — and the merged ledger loses no frame.
func TestLastShardDeathDrains(t *testing.T) {
	cfg := everythingOn()
	cfg.Shards = 2
	cfg.GPUTiers = []string{"titanx", "v100"}
	cfg.Faults = FaultPlan{Faults: []Fault{
		{Time: 1.0, Kind: FaultKill, Shard: 0},
		{Time: 1.5, Kind: FaultKill, Shard: 1},
	}}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Ingest(serve.ScheduleSource(r.Config().Base)); err != nil {
		t.Fatal(err)
	}
	res, err := r.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.Kills != 2 {
		t.Errorf("ledger books %d kills, want 2", res.Faults.Kills)
	}
	if res.Faults.Revivals != 1 {
		t.Errorf("last-resort revival not booked: %d revivals", res.Faults.Revivals)
	}
	st := r.Stats()
	if st.Orphaned != 0 {
		t.Errorf("%d frames still orphaned after Drain", st.Orphaned)
	}
	if st.QueueDepth != 0 || st.BusyExecutors != 0 {
		t.Errorf("drained cluster still busy: %+v", st)
	}
	// No frame lost: the drained ledger balances even though every
	// stream crossed at least one dead shard.
	checkConservation(t, res)
	if res.Fleet.Served == 0 {
		t.Error("nothing served — the revival never processed the orphaned backlog")
	}
}

// TestDegradeFailoverPins pins the degrade policy's semantics: the dead
// shard's streams run proposal-only on their fallback shards while it
// is down, so the degrade run serves strictly more degraded frames than
// the plain replay run of the same scenario.
func TestDegradeFailoverPins(t *testing.T) {
	replay := mustRun(t, faultCluster(2, FailoverReplay))
	degrade := mustRun(t, faultCluster(2, FailoverDegrade))
	if degrade.Fleet.Degraded <= replay.Fleet.Degraded {
		t.Errorf("degrade failover served %d degraded frames, replay %d — the pin never bit",
			degrade.Fleet.Degraded, replay.Fleet.Degraded)
	}
	if degrade.Fleet.Arrived != replay.Fleet.Arrived {
		t.Errorf("failover policy changed offered load: %d vs %d", degrade.Fleet.Arrived, replay.Fleet.Arrived)
	}
	checkConservation(t, degrade)
}

// TestOnlineShardAddition pins add-shard: the cluster grows mid-run,
// the new shard joins the ring under a fresh tier, and the bulk
// rebalancer hands it streams.
func TestOnlineShardAddition(t *testing.T) {
	cfg := everythingOn()
	cfg.Shards = 2
	cfg.GPUTiers = []string{"titanx", "titanx"}
	cfg.Faults = FaultPlan{Faults: []Fault{
		{Time: 1.5, Kind: FaultAddShard, Tier: "v100"},
	}}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Ingest(serve.ScheduleSource(r.Config().Base)); err != nil {
		t.Fatal(err)
	}
	res, err := r.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults.ShardsAdded != 1 {
		t.Fatalf("ledger books %d added shards, want 1", res.Faults.ShardsAdded)
	}
	if len(res.PerShard) != 3 {
		t.Fatalf("merged %d shard books, want 3", len(res.PerShard))
	}
	nb := res.PerShard[2]
	if nb.Tier != "v100" {
		t.Errorf("added shard tier %q, want v100", nb.Tier)
	}
	if nb.Fault == nil || nb.Fault.BornAt != 1.5 {
		t.Errorf("added shard fault ledger %+v, want BornAt 1.5", nb.Fault)
	}
	if len(nb.Streams) == 0 {
		t.Error("the rebalancer handed the fast added shard no streams")
	}
	if nb.Result.Fleet.Served == 0 {
		t.Error("added shard never served a frame")
	}
	checkConservation(t, res)
}

// TestFaultPlanValidation pins the field-path errors of the FaultPlan
// config surface.
func TestFaultPlanValidation(t *testing.T) {
	kill := func(shard int, at float64) []Fault {
		return []Fault{{Time: at, Kind: FaultKill, Shard: shard}}
	}
	rejectBase := baseConfig()
	rejectBase.Reconnect = serve.ReconnectReject
	cases := []struct {
		name      string
		cfg       Config
		wantField string
	}{
		{"unknown failover", Config{Base: baseConfig(), Faults: FaultPlan{Faults: kill(0, 1), Failover: "teleport"}}, "Faults.Failover"},
		{"negative mtbf", Config{Base: baseConfig(), Faults: FaultPlan{MTBF: -1}}, "Faults.MTBF"},
		{"negative mttr", Config{Base: baseConfig(), Faults: FaultPlan{MTBF: 2, MTTR: -1}}, "Faults.MTTR"},
		{"negative time", Config{Base: baseConfig(), Faults: FaultPlan{Faults: kill(0, -1)}}, "Faults.Faults[0].Time"},
		{"shard out of range", Config{Base: baseConfig(), Faults: FaultPlan{Faults: kill(7, 1)}}, "Faults.Faults[0].Shard"},
		{"unknown kind", Config{Base: baseConfig(), Faults: FaultPlan{Faults: []Fault{{Time: 1, Kind: "explode"}}}}, "Faults.Faults[0].Kind"},
		{"unknown tier", Config{Base: baseConfig(), Faults: FaultPlan{Faults: []Fault{{Time: 1, Kind: FaultAddShard, Tier: "tpu"}}}}, "Faults.Faults[0].Tier"},
		{"replay vs reject", Config{Base: rejectBase, Faults: FaultPlan{Faults: kill(0, 1)}}, "Faults.Failover"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.cfg.Validate()
			if err == nil {
				t.Fatalf("config validated: %+v", tc.cfg.Faults)
			}
			if !strings.Contains(err.Error(), tc.wantField) {
				t.Errorf("error %q does not name field %q", err, tc.wantField)
			}
		})
	}
	// Killing a shard that an add-shard fault creates later is valid.
	ok := Config{Base: baseConfig(), Faults: FaultPlan{Faults: []Fault{
		{Time: 1, Kind: FaultAddShard},
		{Time: 2, Kind: FaultKill, Shard: 2},
	}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("kill of an added shard rejected: %v", err)
	}
}
