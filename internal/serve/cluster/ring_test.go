package cluster

import "testing"

// TestRingDeterministicAndStable pins the placement hash: the same
// topology always yields the same owners, and growing the cluster by
// one shard moves only a fraction of the keys (the consistent-hashing
// point).
func TestRingDeterministicAndStable(t *testing.T) {
	const keys = 256
	r4a, r4b, r5 := newRing(4, 64), newRing(4, 64), newRing(5, 64)
	moved := 0
	for i := 0; i < keys; i++ {
		k := streamKey(i)
		if r4a.owner(k) != r4b.owner(k) {
			t.Fatalf("ring owner for %s not deterministic", k)
		}
		if r4a.owner(k) != r5.owner(k) {
			moved++
		}
	}
	// Ideal consistent hashing moves ~1/5 of the keys when going 4->5
	// shards; modulo hashing would move ~4/5. Split the difference.
	if moved > keys/2 {
		t.Errorf("%d/%d keys moved adding one shard — placement is not consistent", moved, keys)
	}
	if moved == 0 {
		t.Error("no key moved adding a shard — the new shard owns nothing")
	}
}

// TestRingCoverage pins that every shard owns at least one of a modest
// key population (vnodes spread the ring).
func TestRingCoverage(t *testing.T) {
	const shards = 8
	r := newRing(shards, 64)
	owned := make([]int, shards)
	for i := 0; i < 512; i++ {
		owned[r.owner(streamKey(i))]++
	}
	for s, n := range owned {
		if n == 0 {
			t.Errorf("shard %d owns no stream of 512", s)
		}
	}
}

// TestRingWalk pins the overflow preference order: it starts at the
// key's owner, visits every shard exactly once, and is deterministic.
func TestRingWalk(t *testing.T) {
	r := newRing(4, 16)
	for i := 0; i < 32; i++ {
		k := streamKey(i)
		w := r.walk(k)
		if len(w) != 4 {
			t.Fatalf("walk(%s) = %v, want all 4 shards", k, w)
		}
		if w[0] != r.owner(k) {
			t.Errorf("walk(%s) starts at %d, owner is %d", k, w[0], r.owner(k))
		}
		seen := map[int]bool{}
		for _, s := range w {
			if seen[s] {
				t.Fatalf("walk(%s) repeats shard %d", k, s)
			}
			seen[s] = true
		}
	}
}

// TestPlacementLoadCap pins the load-aware override: no shard exceeds
// ceil(factor*streams/shards) when capacity allows, overflow lands on
// ring-walk successors (charged as off-home), and factor-unconstrained
// placement equals the raw hash homes.
func TestPlacementLoadCap(t *testing.T) {
	r := newRing(4, 64)
	home, owner := place(r, 64, 1.0)
	counts := make([]int, 4)
	for i := range owner {
		counts[owner[i]]++
	}
	for s, n := range counts {
		if n > 16 {
			t.Errorf("shard %d holds %d streams, cap is 16", s, n)
		}
	}
	moved := 0
	for i := range home {
		if home[i] != owner[i] {
			moved++
		}
	}
	t.Logf("placement moved %d/64 streams off-home at factor 1.0", moved)

	home, owner = place(r, 64, 100)
	for i := range home {
		if home[i] != owner[i] {
			t.Fatalf("huge load factor still moved stream %d off its home", i)
		}
	}
}
