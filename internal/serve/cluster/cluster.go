package cluster

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"repro/internal/gpumodel"
	"repro/internal/serve"
)

// ErrClosed is returned by Submit and Drain after Close.
var ErrClosed = errors.New("serve/cluster: router closed")

// EventKind classifies a cluster event.
type EventKind string

// The cluster event kinds.
const (
	// EventServe wraps one shard's per-frame serve.Event.
	EventServe EventKind = "serve"
	// EventMigrate fires when the Router moves a stream between shards;
	// From/To are the shards, Epoch the stream's new cluster epoch.
	EventMigrate EventKind = "migrate"
	// EventResize fires when the autoscaler (or the drain park-guard)
	// requests a shard capacity change; Executors is the new target and
	// Time the virtual instant it becomes effective (decision time plus
	// the tier's ScaleUpLatency for growth).
	EventResize EventKind = "resize"
	// EventKill fires when the FaultPlan takes a shard down; Shard is
	// the victim and Time the failure tick. Seized-frame outcomes
	// follow as the shard's EventFailedOver serve events.
	EventKill EventKind = "kill"
	// EventRevive fires when a killed shard comes back; Executors is
	// the restored capacity and Time the instant it serves again
	// (revival tick plus the tier's ScaleUpLatency).
	EventRevive EventKind = "revive"
	// EventAddShard fires when the FaultPlan grows the cluster; Shard
	// is the new shard's index and Tier its GPU tier.
	EventAddShard EventKind = "add-shard"
	// EventRebalance fires when failover re-placement or the bulk
	// rebalancer moves a stream between shards outside the migration
	// policy; fields as EventMigrate.
	EventRebalance EventKind = "rebalance"
)

// Event is one cluster-level occurrence, reported to Config.Sink.
type Event struct {
	Kind  EventKind `json:"kind"`
	Shard int       `json:"shard"`
	// Serve carries the wrapped per-frame event for EventServe.
	Serve *serve.Event `json:"serve,omitempty"`
	// Stream, From, To and Epoch describe an EventMigrate.
	Stream int `json:"stream,omitempty"`
	From   int `json:"from,omitempty"`
	To     int `json:"to,omitempty"`
	Epoch  int `json:"epoch,omitempty"`
	// Executors is an EventResize's (or EventRevive's) new target count.
	Executors int `json:"executors,omitempty"`
	// Tier names an EventAddShard's GPU tier.
	Tier string `json:"tier,omitempty"`
	// Time is when the event takes effect on the virtual clock.
	Time float64 `json:"time_s"`
}

// Sink receives cluster events. Implementations run synchronously on
// the engine: they must be fast and must not call back into the Router.
type Sink interface {
	ClusterEvent(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// ClusterEvent implements Sink.
func (fn SinkFunc) ClusterEvent(e Event) { fn(e) }

// Router partitions one serving scenario's streams across shard
// Servers and runs the cluster control plane: consistent-hash placement
// with a load cap, bounded stream migration off saturated shards, and
// optional per-shard autoscaling priced by GPU tier. Methods are safe
// for concurrent use; like serve.Server, byte-level determinism is
// guaranteed for time-ordered submission (Run's schedule replay).
type Router struct {
	mu     sync.Mutex
	cfg    Config // normalized
	shards []*serve.Server
	tiers  []gpumodel.Tier

	// Stream routing state: hash home, current owner, cluster epoch
	// (bumped per migration) and migration count per stream.
	home, owner []int
	epoch       []int
	migCount    []int

	// Control-plane state.
	nextTick  float64   // next control tick on the virtual clock
	lastMig   []float64 // last migration time per source shard
	pending   []float64 // per shard: time until which a resize is in flight
	idleTicks []int     // per shard: consecutive fully-idle control ticks

	migrations int
	resizes    int

	// Failure-injection state. The schedule is pre-generated at New
	// (explicit faults merged with the seeded stochastic process) and
	// executed in order on the control-tick grid; the per-shard and
	// per-stream slices below stay all-alive/all-zero without an active
	// FaultPlan, so the fault-free paths never branch on them.
	ring       *ring   // current live consistent-hash ring
	ringEpoch  int     // bumped per online ring resize
	faults     []Fault // merged schedule, (Time, declaration) order
	nextFault  int     // first unexecuted schedule entry
	alive      []bool
	bornAt     []float64   // per shard: when it joined the cluster
	downSince  []float64   // per shard: kill time while dead
	lastKill   []float64   // per shard: most recent kill time
	downtime   []float64   // per shard: accumulated dead seconds
	killCount  []int       // per shard: kills taken
	awaitServe []bool      // per shard: awaiting first post-revival serve
	recoveries [][]float64 // per shard: kill -> first-served latencies
	replayed   []int       // per stream: seized frames re-submitted
	dropFail   []int       // per stream: seized frames dropped
	pinOwner   []int       // per stream: dead shard holding its degrade pin, -1 if none
	orphans    []orphanFrame
	kills      int
	revivals   int
	added      int
	replaced   int // failover re-placements through the live ring
	rebalanced int // bulk-rebalancer moves

	// Merged books: per-stream served latencies collected from every
	// shard's sink (serve summaries cannot be merged after the fact),
	// plus a sliding window over the latest served latencies for Stats.
	lat    [][]float64
	window []float64
	wn     int

	closed bool
}

// orphanFrame is a frame the Router could not place on any live shard:
// either submitted while its stream's owner was dead with no live
// fallback, or seized by a kill that left no survivor. Orphans replay
// on the next membership gain (or Drain's last-resort revival). seized
// marks frames already counted Arrived on the dead shard, whose replay
// must be subtracted from the merged books.
type orphanFrame struct {
	stream, frame int
	at            float64
	seized        bool
}

// shardSink forwards one shard's per-frame events into the Router's
// merged books and the user sink. It runs under the shard server's
// lock, which the Router only takes while already holding its own lock,
// so the unguarded field access is safe.
type shardSink struct {
	r     *Router
	shard int
}

func (s shardSink) ServeEvent(e serve.Event) {
	r := s.r
	if e.Kind == serve.EventServed {
		if r.awaitServe[s.shard] {
			// Recovery latency: kill instant to the first frame the
			// revived shard completes.
			r.awaitServe[s.shard] = false
			r.recoveries[s.shard] = append(r.recoveries[s.shard], e.Time-r.lastKill[s.shard])
		}
		r.lat[e.Stream] = append(r.lat[e.Stream], e.Latency)
		if len(r.window) < cap(r.window) {
			r.window = append(r.window, e.Latency)
		} else {
			r.window[r.wn%cap(r.window)] = e.Latency
		}
		r.wn++
	}
	if r.cfg.Sink != nil {
		ev := e
		r.cfg.Sink.ClusterEvent(Event{Kind: EventServe, Shard: s.shard, Serve: &ev, Time: e.Time})
	}
}

// New builds a Router: the ring, the initial placement and one shard
// Server per shard, each over the full normalized Base (identical
// worlds everywhere — only the routing decides which shard serves a
// stream). Elastic shards are parked at Autoscale.Min from t=0.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rg := newRing(cfg.Shards, cfg.VirtualNodes)
	home, owner := place(rg, cfg.Base.Streams, cfg.PlacementLoadFactor)
	r := &Router{
		cfg:        cfg,
		shards:     make([]*serve.Server, cfg.Shards),
		tiers:      make([]gpumodel.Tier, cfg.Shards),
		home:       home,
		owner:      owner,
		epoch:      make([]int, cfg.Base.Streams),
		migCount:   make([]int, cfg.Base.Streams),
		lastMig:    make([]float64, cfg.Shards),
		pending:    make([]float64, cfg.Shards),
		idleTicks:  make([]int, cfg.Shards),
		ring:       rg,
		faults:     buildFaultSchedule(cfg),
		alive:      make([]bool, cfg.Shards),
		bornAt:     make([]float64, cfg.Shards),
		downSince:  make([]float64, cfg.Shards),
		lastKill:   make([]float64, cfg.Shards),
		downtime:   make([]float64, cfg.Shards),
		killCount:  make([]int, cfg.Shards),
		awaitServe: make([]bool, cfg.Shards),
		recoveries: make([][]float64, cfg.Shards),
		replayed:   make([]int, cfg.Base.Streams),
		dropFail:   make([]int, cfg.Base.Streams),
		pinOwner:   make([]int, cfg.Base.Streams),
		lat:        make([][]float64, cfg.Base.Streams),
		window:     make([]float64, 0, cfg.Base.StatsWindow),
	}
	for s := range r.alive {
		r.alive[s] = true
	}
	for i := range r.pinOwner {
		r.pinOwner[i] = -1
	}
	if cfg.controlled() {
		r.nextTick = cfg.Autoscale.Interval
	} else {
		r.nextTick = math.Inf(1)
	}
	for i := range r.lastMig {
		r.lastMig[i] = math.Inf(-1)
	}
	base := gpumodel.Default()
	if cfg.Base.GPU != nil {
		base = *cfg.Base.GPU
	}
	for s := 0; s < cfg.Shards; s++ {
		tier, err := gpumodel.TierByName(cfg.GPUTiers[s%len(cfg.GPUTiers)])
		if err != nil {
			return nil, err
		}
		r.tiers[s] = tier
		shardCfg := cfg.Base
		shardCfg.Sink = shardSink{r: r, shard: s}
		model := tier.Apply(base)
		shardCfg.GPU = &model
		srv, err := serve.New(shardCfg)
		if err != nil {
			for _, prev := range r.shards {
				if prev != nil {
					prev.Close()
				}
			}
			return nil, err
		}
		r.shards[s] = srv
		if cfg.Autoscale.Enabled {
			if err := srv.ResizeAt(cfg.Autoscale.Min, 0); err != nil {
				return nil, err
			}
		}
	}
	return r, nil
}

// Config returns the router's normalized configuration.
func (r *Router) Config() Config {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cfg
}

// Placement returns each stream's hash-home shard and current owner
// shard (they differ for load-capped placements and migrated streams,
// which pay the hop latency).
func (r *Router) Placement() (home, owner []int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.home...), append([]int(nil), r.owner...)
}

// Submit routes one frame to its stream's current owner shard, first
// running every control tick due at or before the arrival time. Frames
// owned off their hash home pay the configured hop latency on their
// arrival stamp.
func (r *Router) Submit(stream, frame int, arriveAt float64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}
	if stream < 0 || stream >= r.cfg.Base.Streams {
		return fmt.Errorf("serve/cluster: Submit: stream %d out of range [0,%d)", stream, r.cfg.Base.Streams)
	}
	r.controlTo(arriveAt)
	at := arriveAt
	s := r.owner[stream]
	if !r.alive[s] {
		// The owner is dead and no live shard could take the stream (a
		// whole-cluster outage): buffer the frame, keeping its arrival
		// stamp, until a revival or addition restores capacity.
		r.orphans = append(r.orphans, orphanFrame{stream: stream, frame: frame, at: arriveAt})
		return nil
	}
	if s != r.home[stream] && !math.IsNaN(at) {
		at += r.cfg.HopLatency
	}
	return r.shards[s].Submit(stream, frame, at)
}

// Ingest submits every arrival the source yields, in order, stopping at
// the first error.
func (r *Router) Ingest(src serve.Source) error {
	for {
		a, ok := src.Next()
		if !ok {
			return nil
		}
		if err := r.Submit(a.Stream, a.Frame, a.At); err != nil {
			return err
		}
	}
}

// controlTo runs every control tick at or before t: each shard is
// advanced to the tick time so its Stats are current, then the
// autoscaler and the migration policy fire in shard order. Called with
// r.mu held.
func (r *Router) controlTo(t float64) {
	if math.IsNaN(t) {
		return
	}
	for r.nextTick <= t {
		e := r.nextTick
		r.nextTick += r.cfg.Autoscale.Interval
		// Faults fire at tick start, so the autoscaler and the
		// migration policy below observe the post-fault cluster — the
		// survivors' backlog spike is exactly what they exist to shed.
		r.runFaults(e)
		stats := make([]serve.Stats, len(r.shards))
		for s, srv := range r.shards {
			srv.AdvanceTo(e)
			stats[s] = srv.Stats()
		}
		if r.cfg.Autoscale.Enabled {
			for s := range r.shards {
				if r.alive[s] {
					r.autoscaleShard(s, e, stats[s])
				}
			}
		}
		if r.cfg.Migration.QueueDepth > 0 {
			for s := range r.shards {
				if r.alive[s] {
					r.maybeMigrate(s, e, stats)
				}
			}
		}
	}
}

// autoscaleShard applies the elastic policy to one shard at control
// tick e. Called with r.mu held.
func (r *Router) autoscaleShard(s int, e float64, st serve.Stats) {
	a := r.cfg.Autoscale
	if e < r.pending[s] {
		return // a resize is still provisioning; no stacked decisions
	}
	execs := st.Executors
	grow := st.QueueDepth >= a.UpQueue
	if a.P99 > 0 && st.Window.P99 > a.P99 && st.QueueDepth > 0 {
		grow = true
	}
	switch {
	case grow && execs < a.Max:
		add := st.QueueDepth / a.UpQueue
		if add < 1 {
			add = 1
		}
		n := execs + add
		if n > a.Max {
			n = a.Max
		}
		r.resizeShard(s, n, e+r.tiers[s].ScaleUpLatency)
		r.idleTicks[s] = 0
	case st.QueueDepth == 0 && st.BusyExecutors == 0 && execs > a.Min:
		r.idleTicks[s]++
		if r.idleTicks[s] >= a.DownIdle {
			// Release is immediate: handing capacity back has no
			// provisioning latency.
			r.resizeShard(s, a.Min, e)
			r.idleTicks[s] = 0
		}
	default:
		r.idleTicks[s] = 0
	}
}

// resizeShard schedules a shard capacity change and books the event.
// Called with r.mu held.
func (r *Router) resizeShard(s, n int, at float64) {
	if err := r.shards[s].ResizeAt(n, at); err != nil {
		return // only closed/invalid-time, neither reachable here
	}
	r.pending[s] = at
	r.resizes++
	if r.cfg.Sink != nil {
		r.cfg.Sink.ClusterEvent(Event{Kind: EventResize, Shard: s, Executors: n, Time: at})
	}
}

// maybeMigrate moves the hottest migratable stream off shard s when its
// backlog justifies it. Called with r.mu held, stats indexed by shard.
func (r *Router) maybeMigrate(s int, e float64, stats []serve.Stats) {
	m := r.cfg.Migration
	if len(r.shards) < 2 || e-r.lastMig[s] < m.Cooldown {
		return
	}
	// Hottest candidate stream on s: deepest per-stream backlog at or
	// over the arm threshold, migration budget left; lowest index wins
	// ties.
	hot, hotDepth := -1, 0
	for stream, owner := range r.owner {
		if owner != s || r.migCount[stream] >= m.MaxPerStream {
			continue
		}
		d := 0
		if q := stats[s].PerStreamQueue; stream < len(q) {
			d = q[stream]
		}
		if d >= m.QueueDepth && d > hotDepth {
			hot, hotDepth = stream, d
		}
	}
	if hot < 0 {
		return
	}
	// Least-loaded live target by total backlog, then by owned-stream
	// count, then lowest index.
	target := -1
	for t := range r.shards {
		if t == s || !r.alive[t] {
			continue
		}
		if target < 0 {
			target = t
			continue
		}
		if stats[t].QueueDepth != stats[target].QueueDepth {
			if stats[t].QueueDepth < stats[target].QueueDepth {
				target = t
			}
			continue
		}
		if r.ownedCount(t) < r.ownedCount(target) {
			target = t
		}
	}
	if target < 0 || stats[s].QueueDepth-stats[target].QueueDepth <= m.MinGain {
		return
	}
	r.owner[hot] = target
	r.epoch[hot]++
	r.migCount[hot]++
	r.lastMig[s] = e
	r.migrations++
	r.movePin(hot, s, target)
	if r.cfg.Sink != nil {
		r.cfg.Sink.ClusterEvent(Event{
			Kind: EventMigrate, Shard: target, Stream: hot,
			From: s, To: target, Epoch: r.epoch[hot], Time: e,
		})
	}
}

// ownedCount is the number of streams currently owned by shard s.
// Called with r.mu held.
func (r *Router) ownedCount(s int) int {
	n := 0
	for _, o := range r.owner {
		if o == s {
			n++
		}
	}
	return n
}

// Stats returns a live merged snapshot of the cluster.
func (r *Router) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Stats{
		PerShardQueue: make([]int, len(r.shards)),
		Migrations:    r.migrations,
		Resizes:       r.resizes,
	}
	for s, srv := range r.shards {
		ss := srv.Stats()
		if ss.Now > st.Now {
			st.Now = ss.Now
		}
		st.Arrived += ss.Arrived
		st.Served += ss.Served
		st.DroppedQueue += ss.DroppedQueue
		st.DroppedStale += ss.DroppedStale
		st.DroppedPoison += ss.DroppedPoison
		st.Reconnects += ss.Reconnects
		st.FailedOver += ss.FailedOver
		st.Degraded += ss.Degraded
		st.QueueDepth += ss.QueueDepth
		st.BusyExecutors += ss.BusyExecutors
		st.Executors += ss.Executors
		st.PerShardQueue[s] = ss.QueueDepth
		if !r.alive[s] {
			st.DeadShards++
		}
	}
	for i := range r.replayed {
		st.Replayed += r.replayed[i]
		st.DroppedFailover += r.dropFail[i]
	}
	st.Orphaned = len(r.orphans)
	if st.Now > 0 {
		st.Throughput = float64(st.Served) / st.Now
	}
	if st.Arrived > 0 {
		st.DropRate = float64(st.DroppedQueue+st.DroppedStale) / float64(st.Arrived)
	}
	st.Window = serve.Summarize(r.window)
	return st
}

// Stats is a live merged snapshot of a Router, the cluster counterpart
// of serve.Stats.
type Stats struct {
	Now           float64 `json:"now_s"`
	Arrived       int     `json:"arrived"`
	Served        int     `json:"served"`
	DroppedQueue  int     `json:"dropped_queue"`
	DroppedStale  int     `json:"dropped_stale"`
	DroppedPoison int     `json:"dropped_poison,omitempty"`
	Reconnects    int     `json:"reconnects,omitempty"`
	Degraded      int     `json:"degraded"`
	QueueDepth    int     `json:"queue_depth"`
	BusyExecutors int     `json:"busy_executors"`
	Executors     int     `json:"executors"`
	PerShardQueue []int   `json:"per_shard_queue"`
	Migrations    int     `json:"migrations"`
	Resizes       int     `json:"resizes"`
	// Failure-injection counters, all zero (and absent from the JSON)
	// without an active FaultPlan: shards currently dead, frames seized
	// by kills, seized frames replayed elsewhere or dropped, and frames
	// buffered with no live shard to serve them.
	DeadShards      int     `json:"dead_shards,omitempty"`
	FailedOver      int     `json:"failed_over,omitempty"`
	Replayed        int     `json:"replayed,omitempty"`
	DroppedFailover int     `json:"dropped_failover,omitempty"`
	Orphaned        int     `json:"orphaned,omitempty"`
	Throughput      float64 `json:"throughput_fps"`
	DropRate        float64 `json:"drop_rate"`
	// Window summarizes the latest Base.StatsWindow served latencies
	// across every shard.
	Window serve.LatencySummary `json:"window_latency"`
}

// Drain runs every shard's backlog dry and merges the books. A shard
// parked at zero executors with frames still queued is revived to one
// executor first (after its tier's scale-up latency) so every admitted
// frame reaches an outcome — the park-guard a real operator would call
// scale-from-zero. Like serve.Server.Drain it does not close the
// Router; on context cancellation partial shard state is kept.
func (r *Router) Drain(ctx context.Context) (*Result, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, ErrClosed
	}
	// Flush the remaining fault schedule: ticks are driven by Submit,
	// so kills, revivals and additions due after the last arrival would
	// otherwise never fire. Each controlTo call runs exactly one tick.
	for r.nextFault < len(r.faults) {
		r.controlTo(r.nextTick)
	}
	if len(r.orphans) > 0 {
		// Frames still parked with no live shard: the whole cluster died
		// and no revival was scheduled. A real operator's last resort is
		// bringing one node back — revive the lowest-index dead shard at
		// the cluster's current makespan so every admitted frame still
		// reaches an outcome in the merged book.
		now := 0.0
		for _, srv := range r.shards {
			if st := srv.Stats(); st.Now > now {
				now = st.Now
			}
		}
		for s := range r.shards {
			if !r.alive[s] {
				r.reviveShard(s, now)
				break
			}
		}
	}
	for s, srv := range r.shards {
		if !r.alive[s] {
			continue // a dead shard's backlog was seized at the kill
		}
		st := srv.Stats()
		if st.QueueDepth > 0 && st.Executors == 0 {
			n := 1
			if r.cfg.Autoscale.Enabled && r.cfg.Autoscale.Min > n {
				n = r.cfg.Autoscale.Min
			}
			r.resizeShard(s, n, st.Now+r.tiers[s].ScaleUpLatency)
		}
	}
	books := make([]*serve.Result, len(r.shards))
	for s, srv := range r.shards {
		res, err := srv.Drain(ctx)
		if err != nil {
			return nil, err
		}
		books[s] = res
	}
	return r.merge(books), nil
}

// Close closes every shard. Closing twice is a no-op.
func (r *Router) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	for _, srv := range r.shards {
		srv.Close()
	}
	return nil
}

// Run executes one closed-loop cluster scenario: build the Router,
// replay the Base config's preset arrival schedule through it in global
// virtual-time order, drain and merge. The same Config produces a
// byte-identical Result on any machine at any Base.StepWorkers.
func Run(cfg Config) (*Result, error) {
	r, err := New(cfg)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	if err := r.Ingest(serve.ScheduleSource(r.cfg.Base)); err != nil {
		return nil, err
	}
	return r.Drain(context.Background())
}
