package cluster

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/gpumodel"
	"repro/internal/serve"
	"repro/internal/serve/control"
)

// buildFaultSchedule merges the plan's explicit faults with the seeded
// stochastic kill/revive process into one deterministic schedule,
// ordered by (Time, declaration order). The whole schedule is generated
// up front from the plan's seed, so the same Config faults the same
// shards at the same virtual instants on any machine at any
// Base.StepWorkers fan-out.
func buildFaultSchedule(cfg Config) []Fault {
	if !cfg.Faults.Enabled() {
		return nil
	}
	out := append([]Fault(nil), cfg.Faults.Faults...)
	if cfg.Faults.MTBF > 0 {
		seed := cfg.Faults.Seed
		if seed == 0 {
			seed = cfg.Base.Seed
		}
		rng := rand.New(rand.NewSource(seed*1_000_003 + 89))
		t := rng.ExpFloat64() * cfg.Faults.MTBF
		for t < cfg.Base.Duration {
			victim := rng.Intn(cfg.Shards)
			out = append(out, Fault{Time: t, Kind: FaultKill, Shard: victim})
			out = append(out, Fault{Time: t + rng.ExpFloat64()*cfg.Faults.MTTR, Kind: FaultRevive, Shard: victim})
			t += rng.ExpFloat64() * cfg.Faults.MTBF
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// runFaults executes every pending scheduled fault due at or before
// control tick e, in schedule order. Called with r.mu held at tick
// start, before the autoscaler and the migration policy observe the
// cluster.
func (r *Router) runFaults(e float64) {
	for r.nextFault < len(r.faults) && r.faults[r.nextFault].Time <= e {
		f := r.faults[r.nextFault]
		r.nextFault++
		switch f.Kind {
		case FaultKill:
			r.killShard(f.Shard, e)
		case FaultRevive:
			r.reviveShard(f.Shard, e)
		case FaultAddShard:
			r.addShard(f.Tier, e)
		}
	}
}

// killShard takes shard s down at tick e: its in-flight and queued
// frames are seized (serve.Server.FailAt), the live ring resizes
// without it, its streams re-place across the survivors, and the
// seized frames follow the configured FailoverPolicy. Killing a dead
// or not-yet-added shard is a no-op. Called with r.mu held.
func (r *Router) killShard(s int, e float64) {
	if s >= len(r.shards) || !r.alive[s] {
		return
	}
	r.alive[s] = false
	r.kills++
	r.killCount[s]++
	r.downSince[s] = e
	r.lastKill[s] = e
	r.awaitServe[s] = false
	r.pending[s] = 0 // any provisioning resize died with the agenda
	r.idleTicks[s] = 0
	seized, _ := r.shards[s].FailAt(e) // failable plan-wide; cannot fail here
	if r.cfg.Sink != nil {
		r.cfg.Sink.ClusterEvent(Event{Kind: EventKill, Shard: s, Time: e})
	}
	var ownedBefore []int
	if r.cfg.Faults.Failover == FailoverDegrade {
		for stream, o := range r.owner {
			if o == s {
				ownedBefore = append(ownedBefore, stream)
			}
		}
	}
	r.rebuildRing()
	r.replaceDeadOwned(e)
	for _, stream := range ownedBefore {
		// Degrade failover: the dead shard's streams run proposal-only
		// on their fallback shards until it revives.
		r.pinOwner[stream] = s
		if o := r.owner[stream]; r.alive[o] {
			_ = r.shards[o].PinMode(stream, control.ModeProposal)
		}
	}
	r.failover(seized, e)
}

// failover disposes of the frames a kill seized: dropped under
// FailoverDrop, otherwise re-submitted to each stream's new owner at
// the failure tick (hop latency charged off-home; replays are
// subtracted from the merged Arrived). Frames with no live owner park
// as orphans. Called with r.mu held.
func (r *Router) failover(seized []serve.FailedFrame, e float64) {
	for _, f := range seized {
		if r.cfg.Faults.Failover == FailoverDrop {
			r.dropFail[f.Stream]++
			continue
		}
		tgt := r.owner[f.Stream]
		if !r.alive[tgt] {
			r.orphans = append(r.orphans, orphanFrame{stream: f.Stream, frame: f.Frame, at: e, seized: true})
			continue
		}
		at := e
		if tgt != r.home[f.Stream] {
			at += r.cfg.HopLatency
		}
		r.replayed[f.Stream]++
		// The seized world index re-enters Submit as a wire index
		// against the target's own session; a collision is a frame
		// regression the (defaulted) resume reconnect policy absorbs.
		_ = r.shards[tgt].Submit(f.Stream, f.Frame, at)
	}
}

// reviveShard brings shard s back at tick e: capacity returns after
// the tier's scale-up latency, downtime is booked, the ring resizes
// back, degrade pins it caused are lifted, and the bulk rebalancer
// re-spreads streams (replaying any parked orphans). Reviving a live
// shard is a no-op. Called with r.mu held.
func (r *Router) reviveShard(s int, e float64) {
	if s >= len(r.shards) || r.alive[s] {
		return
	}
	r.alive[s] = true
	r.revivals++
	upAt := e + r.tiers[s].ScaleUpLatency
	r.downtime[s] += upAt - r.downSince[s]
	r.downSince[s] = 0
	n := r.reviveExecutors()
	r.resizeShard(s, n, upAt)
	r.awaitServe[s] = true
	if r.cfg.Sink != nil {
		r.cfg.Sink.ClusterEvent(Event{Kind: EventRevive, Shard: s, Executors: n, Time: upAt})
	}
	for stream, po := range r.pinOwner {
		if po != s {
			continue
		}
		r.pinOwner[stream] = -1
		if o := r.owner[stream]; r.alive[o] {
			_ = r.shards[o].PinMode(stream, control.ModeAuto)
		}
	}
	r.rebuildRing()
	r.replaceDeadOwned(e)
	r.rebalance(e)
	r.replayOrphans(e)
}

// reviveExecutors is the capacity a revived or newly added shard comes
// up with: the static Base.Executors, or at least one executor under
// the autoscaler (which then grows or releases it from live signals).
func (r *Router) reviveExecutors() int {
	n := r.cfg.Base.Executors
	if r.cfg.Autoscale.Enabled {
		n = r.cfg.Autoscale.Min
		if n < 1 {
			n = 1
		}
	}
	return n
}

// addShard grows the cluster online at tick e: a new shard Server is
// built over the same Base (on tierName, or the config's tier
// rotation), joins the ring, and the bulk rebalancer shifts streams
// toward it by tier speed. Called with r.mu held.
func (r *Router) addShard(tierName string, e float64) {
	s := len(r.shards)
	if tierName == "" {
		tierName = r.cfg.GPUTiers[s%len(r.cfg.GPUTiers)]
	}
	tier, err := gpumodel.TierByName(tierName)
	if err != nil {
		return // tier names are validated at New
	}
	base := gpumodel.Default()
	if r.cfg.Base.GPU != nil {
		base = *r.cfg.Base.GPU
	}
	shardCfg := r.cfg.Base
	shardCfg.Sink = shardSink{r: r, shard: s}
	model := tier.Apply(base)
	shardCfg.GPU = &model
	srv, err := serve.New(shardCfg)
	if err != nil {
		return // Base was validated at New
	}
	// Born parked: zero capacity from t=0 keeps the cost integral
	// empty until the tier's provisioning completes at e+ScaleUpLatency.
	_ = srv.ResizeAt(0, 0)
	_ = srv.AdvanceTo(e)
	r.shards = append(r.shards, srv)
	r.tiers = append(r.tiers, tier)
	r.lastMig = append(r.lastMig, math.Inf(-1))
	r.pending = append(r.pending, 0)
	r.idleTicks = append(r.idleTicks, 0)
	r.alive = append(r.alive, true)
	r.bornAt = append(r.bornAt, e)
	r.downSince = append(r.downSince, 0)
	r.lastKill = append(r.lastKill, 0)
	r.downtime = append(r.downtime, 0)
	r.killCount = append(r.killCount, 0)
	r.awaitServe = append(r.awaitServe, false)
	r.recoveries = append(r.recoveries, nil)
	r.added++
	n := r.reviveExecutors()
	r.resizeShard(s, n, e+tier.ScaleUpLatency)
	if r.cfg.Sink != nil {
		r.cfg.Sink.ClusterEvent(Event{Kind: EventAddShard, Shard: s, Executors: n, Tier: tier.Name, Time: e})
	}
	r.rebuildRing()
	r.replaceDeadOwned(e)
	r.rebalance(e)
	r.replayOrphans(e)
}

// rebuildRing rebuilds the live consistent-hash ring after a
// membership change and recomputes every stream's hash home. Surviving
// members keep their original vnode keys, so only keys owned by the
// changed member move — the consistent-hashing property that keeps an
// online resize minimal. Called with r.mu held.
func (r *Router) rebuildRing() {
	r.ringEpoch++
	var live []int
	for s := range r.shards {
		if r.alive[s] {
			live = append(live, s)
		}
	}
	if len(live) == 0 {
		r.ring = nil
		return
	}
	r.ring = newRingMembers(live, r.cfg.VirtualNodes)
	for i := range r.home {
		r.home[i] = r.ring.owner(streamKey(i))
	}
}

// replaceDeadOwned re-places every stream owned by a dead shard onto
// the live ring with the same load-aware cap walk as the initial
// placement. Called with r.mu held, after rebuildRing.
func (r *Router) replaceDeadOwned(e float64) {
	if r.ring == nil {
		return // whole-cluster outage: frames park as orphans instead
	}
	capPer := (r.cfg.Base.Streams + r.ring.n - 1) / r.ring.n
	capPer = int(float64(capPer) * r.cfg.PlacementLoadFactor)
	if capPer < 1 {
		capPer = 1
	}
	counts := make([]int, len(r.shards))
	for _, o := range r.owner {
		if r.alive[o] {
			counts[o]++
		}
	}
	for i, o := range r.owner {
		if r.alive[o] {
			continue
		}
		tgt := r.home[i]
		if counts[tgt] >= capPer {
			for _, s := range r.ring.walk(streamKey(i)) {
				if counts[s] < capPer {
					tgt = s
					break
				}
			}
		}
		counts[tgt]++
		r.replaced++
		r.moveOwner(i, o, tgt, e)
	}
}

// moveOwner re-homes one stream outside the migration policy, bumping
// its cluster epoch and carrying any degrade pin along. Called with
// r.mu held.
func (r *Router) moveOwner(stream, from, to int, e float64) {
	r.owner[stream] = to
	r.epoch[stream]++
	r.movePin(stream, from, to)
	if r.cfg.Sink != nil {
		r.cfg.Sink.ClusterEvent(Event{
			Kind: EventRebalance, Shard: to, Stream: stream,
			From: from, To: to, Epoch: r.epoch[stream], Time: e,
		})
	}
}

// movePin carries a stream's degrade pin to its new owner shard when
// ownership changes. Called with r.mu held.
func (r *Router) movePin(stream, from, to int) {
	if r.pinOwner[stream] < 0 || from == to {
		return
	}
	if from >= 0 && from < len(r.shards) && r.alive[from] {
		_ = r.shards[from].PinMode(stream, control.ModeAuto)
	}
	if r.alive[to] {
		_ = r.shards[to].PinMode(stream, control.ModeProposal)
	}
}

// replayOrphans submits every parked orphan to its stream's current
// owner, in buffered order; frames whose owner is still dead stay
// parked. Called with r.mu held after a membership gain.
func (r *Router) replayOrphans(e float64) {
	if len(r.orphans) == 0 {
		return
	}
	pending := r.orphans
	r.orphans = nil
	for _, o := range pending {
		tgt := r.owner[o.stream]
		if !r.alive[tgt] {
			r.orphans = append(r.orphans, o)
			continue
		}
		at := o.at
		if !math.IsNaN(at) {
			if at < e {
				at = e
			}
			if tgt != r.home[o.stream] {
				at += r.cfg.HopLatency
			}
		}
		if o.seized {
			r.replayed[o.stream]++
		}
		_ = r.shards[tgt].Submit(o.stream, o.frame, at)
	}
}
