package cluster

import (
	"fmt"
	"sort"
)

// fnv64a is the 64-bit FNV-1a hash with a murmur-style finalizer,
// inlined so placement never depends on stdlib internals changing. Raw
// FNV-1a avalanches poorly into the high bits on short sequential keys
// like "stream-7" — the ring orders points by the full 64-bit value, so
// without the finalizer whole shard neighborhoods end up empty.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ring is a consistent-hash ring: every shard contributes vnodes points
// and a key is owned by the first point at or after its hash (wrapping).
// Points sort by (hash, shard) so equal hashes — astronomically rare
// but possible — still order deterministically.
type ring struct {
	hashes []uint64
	shards []int
	n      int // member count
	ids    int // max member shard index + 1 (for walk's seen set)
}

func newRing(shards, vnodes int) *ring {
	members := make([]int, shards)
	for s := range members {
		members[s] = s
	}
	return newRingMembers(members, vnodes)
}

// newRingMembers builds the ring over an explicit member set — the live
// shards after kills, revivals and additions. Each member's points hash
// the same "shard-S-vnode-V" keys as the full ring, so removing a shard
// moves only the keys it owned (the consistent-hashing property online
// ring resizing relies on) and re-adding it restores the prior layout.
func newRingMembers(members []int, vnodes int) *ring {
	r := &ring{
		hashes: make([]uint64, 0, len(members)*vnodes),
		shards: make([]int, 0, len(members)*vnodes),
		n:      len(members),
	}
	type point struct {
		h     uint64
		shard int
	}
	pts := make([]point, 0, len(members)*vnodes)
	for _, s := range members {
		if s >= r.ids {
			r.ids = s + 1
		}
		for v := 0; v < vnodes; v++ {
			pts = append(pts, point{fnv64a(fmt.Sprintf("shard-%d-vnode-%d", s, v)), s})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].shard < pts[j].shard
	})
	for _, p := range pts {
		r.hashes = append(r.hashes, p.h)
		r.shards = append(r.shards, p.shard)
	}
	return r
}

// start returns the ring index owning the key's hash.
func (r *ring) start(key string) int {
	h := fnv64a(key)
	i := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	if i == len(r.hashes) {
		i = 0
	}
	return i
}

// owner returns the shard owning the key.
func (r *ring) owner(key string) int {
	return r.shards[r.start(key)]
}

// walk returns the distinct shards in ring order starting from the
// key's owner: the preference order for load-aware placement overflow.
func (r *ring) walk(key string) []int {
	order := make([]int, 0, r.n)
	seen := make([]bool, r.ids)
	for i, k := r.start(key), 0; k < len(r.hashes) && len(order) < r.n; k++ {
		s := r.shards[(i+k)%len(r.hashes)]
		if !seen[s] {
			seen[s] = true
			order = append(order, s)
		}
	}
	return order
}

// streamKey is the ring key of a stream; the books and tests key
// placement on the same string.
func streamKey(stream int) string { return fmt.Sprintf("stream-%d", stream) }

// place assigns every stream an initial shard: its hash home unless the
// home already holds cap streams, in which case the ring walk finds the
// next shard under the cap. cap is ceil(factor*streams/shards); homes
// and owners are returned separately because off-home placement pays
// the hop latency.
func place(r *ring, streams int, factor float64) (home, owner []int) {
	home = make([]int, streams)
	owner = make([]int, streams)
	capPer := (streams + r.n - 1) / r.n // ceil(streams/shards)
	capPer = int(float64(capPer) * factor)
	if capPer < 1 {
		capPer = 1
	}
	counts := make([]int, r.n)
	for i := 0; i < streams; i++ {
		key := streamKey(i)
		home[i] = r.owner(key)
		owner[i] = home[i]
		if counts[home[i]] >= capPer {
			for _, s := range r.walk(key) {
				if counts[s] < capPer {
					owner[i] = s
					break
				}
			}
		}
		counts[owner[i]]++
	}
	return home, owner
}
