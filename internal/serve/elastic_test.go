package serve

import (
	"context"
	"math"
	"testing"
)

// TestBurstArrivalsGated pins the Burst arrival process: every offered
// frame falls inside the on-window of its period, the off-windows are
// genuinely silent, and the burst shape is echoed into the Result
// identity while the other processes keep theirs unchanged.
func TestBurstArrivalsGated(t *testing.T) {
	cfg := testConfig()
	cfg.Arrivals = Burst
	cfg.BurstPeriod = 1.5
	cfg.BurstDuty = 0.4
	norm := cfg.Normalized()
	times := arrivalTimes(norm)
	total := 0
	for s, ts := range times {
		total += len(ts)
		for _, at := range ts {
			if phase := math.Mod(at, norm.BurstPeriod); phase >= norm.BurstDuty*norm.BurstPeriod {
				t.Fatalf("stream %d offers a frame at %v (phase %v): outside the on-window", s, at, phase)
			}
		}
	}
	if total == 0 {
		t.Fatal("burst schedule offered no frames at all")
	}
	fixed := cfg
	fixed.Arrivals = FixedFPS
	nFixed := 0
	for _, ts := range arrivalTimes(fixed.Normalized()) {
		nFixed += len(ts)
	}
	if total >= nFixed {
		t.Errorf("burst gating dropped nothing: %d frames vs %d on the full grid", total, nFixed)
	}

	r := mustRun(t, cfg)
	if r.BurstPeriod != 1.5 || r.BurstDuty != 0.4 {
		t.Errorf("burst identity not echoed: period %v duty %v", r.BurstPeriod, r.BurstDuty)
	}
	if rf := mustRun(t, fixed); rf.BurstPeriod != 0 || rf.BurstDuty != 0 {
		t.Errorf("fixed-rate result leaked burst identity: %+v", rf)
	}
}

// TestBurstValidation pins the field-path errors of the burst knobs.
func TestBurstValidation(t *testing.T) {
	cfg := testConfig()
	cfg.Arrivals = Burst
	cfg.BurstDuty = 1.5
	if err := cfg.Validate(); err == nil {
		t.Error("BurstDuty 1.5 validated")
	}
	cfg.BurstDuty = 0
	if err := cfg.Validate(); err != nil {
		t.Errorf("zero BurstDuty should default, got %v", err)
	}
	cfg.BurstPeriod = math.Inf(1)
	if cfg.Normalized().BurstPeriod != math.Inf(1) {
		t.Error("explicit BurstPeriod overwritten by defaulting")
	}
}

// TestResizeAtElasticity drives the same overloaded scenario statically
// and elastically and pins the resize semantics: scheduled capacity
// changes apply on the virtual clock, growth serves more than the
// undersized static fleet, the capacity integral undercuts the
// oversized one, and the books record the resize trail.
func TestResizeAtElasticity(t *testing.T) {
	base := testConfig()
	base.Streams = 6
	base.FPS = 30
	base.Executors = 1
	base.QueueCap = 64

	small := mustRun(t, base)

	srv, err := New(base)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.ResizeAt(3, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := srv.Ingest(ScheduleSource(srv.Config())); err != nil {
		t.Fatal(err)
	}
	r, err := srv.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Resizes != 1 {
		t.Errorf("resizes = %d, want 1", r.Resizes)
	}
	if r.ExecutorSeconds <= 0 {
		t.Error("no capacity integral recorded after a resize")
	}
	if r.Executors != 1 {
		t.Errorf("result identity executors = %d, want the configured 1", r.Executors)
	}
	if r.Fleet.Served <= small.Fleet.Served {
		t.Errorf("scaling 1->3 at t=1 served %d, static 1 served %d", r.Fleet.Served, small.Fleet.Served)
	}
	// The elastic run was at 1 executor for the first virtual second, so
	// its capacity integral must undercut a static 3-executor fleet over
	// the same horizon.
	if want := 3 * r.LastEventAt; r.ExecutorSeconds >= want {
		t.Errorf("capacity integral %v not below the static-3 %v", r.ExecutorSeconds, want)
	}
	if st := srv.Stats(); st.Executors != 3 {
		t.Errorf("live executor count = %d after resize, want 3", st.Executors)
	}

	if err := srv.ResizeAt(-1, 0); err == nil {
		t.Error("negative executor count accepted")
	}
	if err := srv.ResizeAt(1, math.NaN()); err == nil {
		t.Error("NaN resize time accepted")
	}
}

// TestResizeToZeroParks pins the parked-shard semantics: at 0 executors
// frames queue and nothing serves until capacity returns.
func TestResizeToZeroParks(t *testing.T) {
	cfg := testConfig()
	cfg.QueueCap = -1 // unbounded: parking must not shed load
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.ResizeAt(0, 0); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		if err := srv.Submit(0, k, 0.1*float64(k+1)); err != nil {
			t.Fatal(err)
		}
	}
	st := srv.Stats()
	if st.Served != 0 || st.QueueDepth != 8 {
		t.Fatalf("parked fleet served %d with depth %d, want 0 and 8", st.Served, st.QueueDepth)
	}
	if st.PerStreamQueue[0] != 8 {
		t.Errorf("per-stream backlog = %v, want stream 0 at 8", st.PerStreamQueue)
	}
	if err := srv.ResizeAt(1, 1.0); err != nil {
		t.Fatal(err)
	}
	r, err := srv.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Fleet.Served != 8 {
		t.Errorf("served %d after reviving the fleet, want all 8", r.Fleet.Served)
	}
}

// TestAdvanceTo pins the control-plane clock sync: advancing plays due
// completions (the live snapshot reflects t, not the last submission)
// and never runs the clock backwards.
func TestAdvanceTo(t *testing.T) {
	cfg := testConfig()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Submit(0, 0, 0.1); err != nil {
		t.Fatal(err)
	}
	busyAt := srv.Stats()
	if busyAt.BusyExecutors != 1 {
		t.Fatalf("submitted frame not in service: %+v", busyAt)
	}
	if err := srv.AdvanceTo(100); err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.BusyExecutors != 0 || st.Served != 1 {
		t.Errorf("advance did not complete the in-flight frame: %+v", st)
	}
	if st.Now != 100 {
		t.Errorf("clock at %v after AdvanceTo(100)", st.Now)
	}
	if err := srv.AdvanceTo(50); err != nil {
		t.Fatal(err)
	}
	if got := srv.Stats().Now; got != 100 {
		t.Errorf("AdvanceTo(50) moved the clock backwards to %v", got)
	}
	if err := srv.AdvanceTo(math.Inf(1)); err == nil {
		t.Error("infinite advance time accepted")
	}
}
