package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/serve/control"
	"repro/internal/serve/sched"
	"repro/internal/sim"
	"repro/internal/video"
)

// adaptiveConfig is an overloaded scenario with the baseline controller
// live: enough pressure that the controller actually sheds and
// recovers, so the determinism matrix exercises mode switches, batch
// resizes and tick rearming rather than a quiescent control loop.
func adaptiveConfig() Config {
	cfg := testConfig()
	cfg.Streams = 6
	cfg.FPS = 30
	cfg.QueueCap = 8
	cfg.StatsWindow = 8
	cfg.Control = control.Config{
		Kind:     control.KindBaseline,
		Interval: 0.1, Cooldown: 0.1,
		HighDepth: 2, LowDepth: 1,
		HighP99: 2.5, LowP99: 1.6,
		MaxBatch: 4, BatchDepth: 8,
	}
	return cfg
}

// TestNopControllerMatchesGolden pins the nop controller's whole
// contract: selecting it changes nothing. The golden scenario with
// Kind "nop" must reproduce testdata/golden_fifo.json byte for byte —
// no control ticks on the agenda, no control echo in the Result.
func TestNopControllerMatchesGolden(t *testing.T) {
	cfg := goldenConfig()
	cfg.Control = control.Config{Kind: control.KindNop}
	r := mustRun(t, cfg)
	got, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "golden_fifo.json")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("nop-controlled run drifted from %s:\n%s", path, got)
	}
	if r.Control != nil || r.ControlTicks != 0 || r.ModeSwitches != 0 {
		t.Errorf("nop run echoed a control plane: %+v ticks=%d switches=%d",
			r.Control, r.ControlTicks, r.ModeSwitches)
	}
}

// TestAdaptiveDeterminism is the control plane's determinism contract:
// with the baseline controller live the books are byte-identical
// across reruns and across the execution knobs (StepWorkers, and the
// executor axis at each point), exactly like the controller-less
// matrix in TestDeterminism.
func TestAdaptiveDeterminism(t *testing.T) {
	for _, executors := range []int{1, 2} {
		t.Run(fmt.Sprintf("executors=%d", executors), func(t *testing.T) {
			var golden []byte
			for _, workers := range []int{1, 4, 1} { // trailing 1 = rerun
				cfg := adaptiveConfig()
				cfg.Executors = executors
				cfg.StepWorkers = workers
				b := marshal(t, mustRun(t, cfg))
				if golden == nil {
					golden = b
				} else if !bytes.Equal(golden, b) {
					t.Fatalf("adaptive books diverge at StepWorkers=%d", workers)
				}
			}
		})
	}
}

// TestAdaptiveResultEcho asserts an actively controlled run reports its
// control plane: the config echo, a live tick count, and (for this
// deliberately overloaded scenario) at least one mode switch, with
// degraded frames appearing without any DegradeDepth set.
func TestAdaptiveResultEcho(t *testing.T) {
	r := mustRun(t, adaptiveConfig())
	if r.Control == nil {
		t.Fatal("adaptive run did not echo its control config")
	}
	if r.Control.Kind != control.KindBaseline {
		t.Errorf("echoed kind %q, want %q", r.Control.Kind, control.KindBaseline)
	}
	if r.ControlTicks == 0 {
		t.Error("adaptive run recorded no control ticks")
	}
	if r.ModeSwitches == 0 {
		t.Error("overloaded adaptive run recorded no mode switches")
	}
	if r.DegradeDepth != 0 {
		t.Errorf("DegradeDepth echo = %d, want 0 (shedding is the controller's)", r.DegradeDepth)
	}
	if r.Fleet.Degraded == 0 {
		t.Error("overloaded adaptive run shed no frames")
	}
}

// TestPerStreamWindowsBounded pins the memory contract of the
// per-stream sliding windows: after serving far more frames than
// StatsWindow, every latency ring and arrival-stamp ring still holds
// at most StatsWindow samples, and the snapshot percentiles cover at
// most StatsWindow frames per stream.
func TestPerStreamWindowsBounded(t *testing.T) {
	cfg := adaptiveConfig()
	cfg.StatsWindow = 4
	cfg.Duration = 8
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Ingest(ScheduleSource(s.Config())); err != nil {
		t.Fatal(err)
	}
	r, err := s.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Fleet.Served <= cfg.Streams*cfg.StatsWindow {
		t.Fatalf("scenario too small to exercise the rings: served %d", r.Fleet.Served)
	}
	for i, w := range s.f.latWinS {
		if len(w.buf) > cfg.StatsWindow || w.max != cfg.StatsWindow {
			t.Errorf("stream %d latency ring holds %d/%d samples, want cap %d",
				i, len(w.buf), w.max, cfg.StatsWindow)
		}
	}
	for i, w := range s.f.arrWin {
		if len(w.buf) > cfg.StatsWindow || w.max != cfg.StatsWindow {
			t.Errorf("stream %d stamp ring holds %d/%d samples, want cap %d",
				i, len(w.buf), w.max, cfg.StatsWindow)
		}
	}
	st := s.Stats()
	for i, w := range st.PerStreamWindow {
		if w.Window.Count > cfg.StatsWindow {
			t.Errorf("stream %d window count %d > StatsWindow %d", i, w.Window.Count, cfg.StatsWindow)
		}
	}
}

// paretoPack is one frozen scenario of the adaptive-domination
// headline: a base config plus the adaptive variants claimed to cover
// its static grid.
type paretoPack struct {
	name     string
	base     func() Config
	adaptive []adaptiveVariant
}

type adaptiveVariant struct {
	name  string
	batch int
	ctrl  control.Config
}

// crowdBase is the shared chassis of both packs: three crowd-preset
// streams against one executor, a deep queue, and a short stats window
// so the control signals track the current burst, not ancient history.
func crowdBase() Config {
	p, err := video.PresetByName("crowd")
	if err != nil {
		panic(err)
	}
	return Config{
		Spec: sim.SystemSpec{
			Kind: sim.CaTDet, Proposal: "resnet10a", Refinement: "resnet50",
			Cfg: core.DefaultConfig(),
		},
		Preset:      p,
		Seed:        1,
		Streams:     3,
		Duration:    6,
		Executors:   1,
		QueueCap:    16,
		StatsWindow: 8,
	}
}

// paretoPacks are the two scenario packs the headline sweep pins: the
// crowd preset's expensive refinement pass makes sustained overload
// collapse every static config onto a frontier the queue-keyed
// controller dominates — shedding into bursts, recovering in dips.
func paretoPacks() []paretoPack {
	shed := control.Config{
		Kind:     control.KindBaseline,
		Interval: 0.1, Cooldown: 0.1,
		HighDepth: 2, LowDepth: 1,
		HighP99: 2.5, LowP99: 1.6,
		MaxBatch: 4, BatchDepth: 8,
	}
	shed3 := shed
	shed3.HighDepth = 3
	fast := shed
	fast.Interval = 0.05
	fast.MaxBatch = 1
	return []paretoPack{
		{
			name: "crowd-poisson",
			base: func() Config {
				cfg := crowdBase()
				cfg.FPS = 4
				cfg.Arrivals = Poisson
				return cfg
			},
			adaptive: []adaptiveVariant{
				{"shed-hd2", 4, shed},
				{"shed-hd3", 4, shed3},
			},
		},
		{
			name: "crowd-burst",
			base: func() Config {
				cfg := crowdBase()
				cfg.Seed = 2
				cfg.FPS = 9
				cfg.Arrivals = Burst
				cfg.BurstPeriod = 2.4
				cfg.BurstDuty = 0.4
				return cfg
			},
			adaptive: []adaptiveVariant{
				{"shed-fast", 1, fast},
			},
		},
	}
}

// TestAdaptiveParetoDominatesStatics is the headline claim, frozen: in
// both scenario packs, every static scheduler x batch x degrade config
// is strictly Pareto-dominated on (quality-weighted served, window
// p99) by at least one adaptive run — no static point survives on the
// frontier. The same grid backs cmd/serve -sweep.
func TestAdaptiveParetoDominatesStatics(t *testing.T) {
	if testing.Short() {
		t.Skip("pareto grid is ~40 serve runs")
	}
	for _, pack := range paretoPacks() {
		t.Run(pack.name, func(t *testing.T) {
			type point struct {
				label  string
				q, p99 float64
			}
			var adapts []point
			for _, v := range pack.adaptive {
				cfg := pack.base()
				cfg.Scheduler = sched.FIFO
				cfg.BatchSize = v.batch
				cfg.Control = v.ctrl
				r := mustRun(t, cfg)
				adapts = append(adapts, point{v.name, r.Fleet.QualityServed(), r.Fleet.Latency.P99})
			}
			for _, kind := range []sched.Kind{sched.FIFO, sched.Fair, sched.Priority, sched.EDF} {
				for _, batch := range []int{1, 4} {
					for _, degrade := range []int{0, 4} {
						cfg := pack.base()
						cfg.Scheduler = kind
						if kind == sched.Priority {
							cfg.Priorities = []int{1, 0, 1}
						}
						cfg.BatchSize = batch
						cfg.DegradeDepth = degrade
						r := mustRun(t, cfg)
						s := point{
							fmt.Sprintf("%s/b%d/d%d", kind, batch, degrade),
							r.Fleet.QualityServed(), r.Fleet.Latency.P99,
						}
						dominated := false
						for _, a := range adapts {
							if a.q >= s.q && a.p99 <= s.p99 && (a.q > s.q || a.p99 < s.p99) {
								dominated = true
								break
							}
						}
						if !dominated {
							t.Errorf("static %s (q=%.2f p99=%.3f) undominated by adaptive set %v",
								s.label, s.q, s.p99, adapts)
						}
					}
				}
			}
		})
	}
}
