package serve

import (
	"math"
	"testing"
)

// TestPercentileClosedForm pins the nearest-rank percentiles against
// hand-computed cases.
func TestPercentileClosedForm(t *testing.T) {
	// 1..100 (reversed so Summarize has to sort): pq is exactly the
	// q-th value.
	var big []float64
	for v := 100; v >= 1; v-- {
		big = append(big, float64(v))
	}
	// n=4: ranks are ceil(q*4): p50 -> 2nd, p95 -> 4th, p99 -> 4th.
	small := []float64{40, 10, 30, 20}

	cases := []struct {
		name                     string
		samples                  []float64
		mean, p50, p95, p99, max float64
	}{
		{"hundred", big, 50.5, 50, 95, 99, 100},
		{"four", small, 25, 20, 40, 40, 40},
		{"single", []float64{7}, 7, 7, 7, 7, 7},
	}
	for _, c := range cases {
		s := Summarize(c.samples)
		if s.Count != len(c.samples) {
			t.Errorf("%s: count %d, want %d", c.name, s.Count, len(c.samples))
		}
		for _, got := range []struct {
			label     string
			got, want float64
		}{
			{"mean", s.Mean, c.mean},
			{"p50", s.P50, c.p50},
			{"p95", s.P95, c.p95},
			{"p99", s.P99, c.p99},
			{"max", s.Max, c.max},
		} {
			if math.Abs(got.got-got.want) > 1e-12 {
				t.Errorf("%s: %s = %v, want %v", c.name, got.label, got.got, got.want)
			}
		}
	}
}

// TestSummarizeEmpty keeps the zero-sample path at zero values rather
// than NaN.
func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s != (LatencySummary{}) {
		t.Fatalf("Summarize(nil) = %+v, want zero", s)
	}
}

// TestSummarizeDoesNotMutate guards the documented no-mutation
// contract (callers keep their sample slices).
func TestSummarizeDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Fatalf("Summarize mutated its input: %v", in)
	}
}
