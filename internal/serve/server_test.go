package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestServerMatchesGolden drives a Server by hand — New, per-arrival
// Submit, Drain — over the pinned overload scenario and requires the
// result to reproduce testdata/golden_fifo.json byte for byte: the
// open push-based surface and the closed-loop driver are the same
// machine.
func TestServerMatchesGolden(t *testing.T) {
	srv, err := New(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Ingest(ScheduleSource(srv.Config())); err != nil {
		t.Fatal(err)
	}
	r, err := srv.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	want, err := os.ReadFile(filepath.Join("testdata", "golden_fifo.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("Server-driven run drifted from the golden\ngot:\n%s", got)
	}
}

// TestConcurrentSubmit pushes every stream from its own goroutine —
// the live-ingest topology — and checks the books stay exact: all
// methods are concurrency-safe (the race detector covers this test),
// every submitted frame is accounted exactly once, and totals
// partition into served + dropped.
func TestConcurrentSubmit(t *testing.T) {
	cfg := testConfig()
	cfg.Streams = 4
	cfg.QueueCap = 6
	cfg.MaxStaleness = 0.3
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const perStream = 120
	var wg sync.WaitGroup
	for s := 0; s < cfg.Streams; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for k := 0; k < perStream; k++ {
				at := float64(k)/15 + float64(s)*0.001
				if err := srv.Submit(s, k, at); err != nil {
					t.Errorf("stream %d frame %d: %v", s, k, err)
					return
				}
			}
		}(s)
	}
	// Poll live stats while the submitters run: snapshots must be
	// internally consistent at any instant.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 100; i++ {
			st := srv.Stats()
			if st.Served+st.DroppedQueue+st.DroppedStale > st.Arrived {
				t.Errorf("stats outran arrivals: %+v", st)
				return
			}
		}
	}()
	wg.Wait()
	<-done

	r, err := srv.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := cfg.Streams * perStream; r.Fleet.Arrived != want {
		t.Errorf("arrived %d, submitted %d", r.Fleet.Arrived, want)
	}
	if got := r.Fleet.Served + r.Fleet.DroppedQueue + r.Fleet.DroppedStale; got != r.Fleet.Arrived {
		t.Errorf("served+dropped = %d does not partition arrived %d", got, r.Fleet.Arrived)
	}
	for _, st := range r.PerStream {
		if st.Arrived != perStream {
			t.Errorf("%s arrived %d, submitted %d", st.ID, st.Arrived, perStream)
		}
	}
}

// TestStatsConsistentWithResult pins the snapshot-vs-final contract:
// after a full Drain, Stats' cumulative totals, horizon, throughput
// and drop rate equal the Result's fleet row, and the instantaneous
// state is empty.
func TestStatsConsistentWithResult(t *testing.T) {
	cfg := testConfig()
	cfg.Streams = 6
	cfg.FPS = 30
	cfg.QueueCap = 4
	cfg.MaxStaleness = 0.3
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Ingest(ScheduleSource(srv.Config())); err != nil {
		t.Fatal(err)
	}

	mid := srv.Stats()
	if mid.Arrived == 0 || mid.Served == 0 {
		t.Fatalf("no live progress before Drain: %+v", mid)
	}

	r, err := srv.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if st.Arrived != r.Fleet.Arrived || st.Served != r.Fleet.Served ||
		st.DroppedQueue != r.Fleet.DroppedQueue || st.DroppedStale != r.Fleet.DroppedStale ||
		st.Degraded != r.Fleet.Degraded {
		t.Errorf("drained stats %+v disagree with result fleet %+v", st, r.Fleet)
	}
	if st.Now != r.LastEventAt {
		t.Errorf("stats horizon %v != result makespan %v", st.Now, r.LastEventAt)
	}
	if st.Throughput != r.Fleet.Throughput {
		t.Errorf("stats throughput %v != result %v", st.Throughput, r.Fleet.Throughput)
	}
	if st.DropRate != r.Fleet.DropRate {
		t.Errorf("stats drop rate %v != result %v", st.DropRate, r.Fleet.DropRate)
	}
	if st.QueueDepth != 0 || st.BusyExecutors != 0 {
		t.Errorf("drained server not idle: depth %d busy %d", st.QueueDepth, st.BusyExecutors)
	}
}

// TestStatsWindowBounded pins the sliding window: its sample count
// never exceeds Config.StatsWindow even though far more frames serve.
func TestStatsWindowBounded(t *testing.T) {
	cfg := testConfig()
	cfg.StatsWindow = 8
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Ingest(ScheduleSource(srv.Config())); err != nil {
		t.Fatal(err)
	}
	r, err := srv.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	st := srv.Stats()
	if r.Fleet.Served <= 8 {
		t.Fatalf("scenario served only %d frames; cannot exercise the window", r.Fleet.Served)
	}
	if st.Window.Count != 8 {
		t.Errorf("window holds %d samples, want 8", st.Window.Count)
	}
	if st.Window.Max > r.Fleet.Latency.Max {
		t.Errorf("window max %v exceeds overall max %v", st.Window.Max, r.Fleet.Latency.Max)
	}
}

// TestSinkObservesEveryOutcome wires a counting sink into the golden
// scenario and checks the event stream is complete and exact: one
// served event per served frame (degraded flagged), one drop event per
// dropped frame, latencies matching the Result's books.
func TestSinkObservesEveryOutcome(t *testing.T) {
	cfg := goldenConfig()
	cfg.DegradeDepth = 2
	var events []Event
	cfg.Sink = SinkFunc(func(e Event) { events = append(events, e) })
	r, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	count := map[EventKind]int{}
	degraded, maxLat := 0, 0.0
	for _, e := range events {
		count[e.Kind]++
		if e.Degraded {
			degraded++
		}
		if e.Latency > maxLat {
			maxLat = e.Latency
		}
	}
	if count[EventServed] != r.Fleet.Served {
		t.Errorf("served events %d != served frames %d", count[EventServed], r.Fleet.Served)
	}
	if count[EventDroppedQueue] != r.Fleet.DroppedQueue {
		t.Errorf("queue-drop events %d != dropped %d", count[EventDroppedQueue], r.Fleet.DroppedQueue)
	}
	if count[EventDroppedStale] != r.Fleet.DroppedStale {
		t.Errorf("stale-drop events %d != dropped %d", count[EventDroppedStale], r.Fleet.DroppedStale)
	}
	if degraded != r.Fleet.Degraded {
		t.Errorf("degraded events %d != degraded frames %d", degraded, r.Fleet.Degraded)
	}
	if maxLat != r.Fleet.Latency.Max {
		t.Errorf("max event latency %v != result max %v", maxLat, r.Fleet.Latency.Max)
	}
	for _, e := range events {
		if e.Kind == EventServed && e.Latency != e.Time-e.Arrive {
			t.Fatalf("served event latency %v != time-arrive %v", e.Latency, e.Time-e.Arrive)
		}
		if e.Kind != EventServed && e.Latency != 0 {
			t.Fatalf("drop event carries latency %v", e.Latency)
		}
	}
}

// TestSubmitValidation pins the Submit contract errors.
func TestSubmitValidation(t *testing.T) {
	srv, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(-1, 0, 0); err == nil {
		t.Error("accepted a negative stream")
	}
	if err := srv.Submit(99, 0, 0); err == nil {
		t.Error("accepted an out-of-range stream")
	}
	if err := srv.Submit(0, 3, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(0, 3, 2.0); err == nil {
		t.Error("accepted a repeated frame index")
	}
	if err := srv.Submit(0, 2, 2.0); err == nil {
		t.Error("accepted a regressing frame index")
	}
	if err := srv.Submit(0, 4, 0.5); err == nil {
		t.Error("accepted a regressing per-stream arrival time")
	}
	if err := srv.Submit(0, 4, math.NaN()); err == nil {
		t.Error("accepted a NaN arrival time")
	}
	if err := srv.Submit(0, 4, math.Inf(1)); err == nil {
		t.Error("accepted an infinite arrival time")
	}
	if err := srv.Submit(1, 0, 0.2); err != nil {
		t.Errorf("independent stream rejected: %v", err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(2, 0, 3.0); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close: %v, want ErrClosed", err)
	}
	if _, err := srv.Drain(context.Background()); !errors.Is(err, ErrClosed) {
		t.Errorf("Drain after Close: %v, want ErrClosed", err)
	}
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
}

// TestDrainCancel checks context cancellation: a canceled Drain
// returns the context error, keeps partial state, and a later Drain
// finishes the job with the full books.
func TestDrainCancel(t *testing.T) {
	cfg := testConfig()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.Ingest(ScheduleSource(srv.Config())); err != nil {
		t.Fatal(err)
	}
	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := srv.Drain(canceled); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled Drain returned %v", err)
	}
	r, err := srv.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	want := mustRun(t, cfg)
	if got, wantB := marshal(t, r), marshal(t, want); !bytes.Equal(got, wantB) {
		t.Errorf("post-cancel Drain drifted from Run:\n got: %s\nwant: %s", got, wantB)
	}
}

// TestLateCrossStreamSubmit pins the racy-submission escape hatch: a
// frame submitted behind the engine's clock (possible when concurrent
// sources race across streams) is admitted at the clock but keeps its
// arrival stamp, so the books still partition exactly.
func TestLateCrossStreamSubmit(t *testing.T) {
	cfg := testConfig()
	cfg.MaxStaleness = 0 // keep the late frame servable
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Stream 0 advances the clock far ahead; stream 1 then submits in
	// the past.
	if err := srv.Submit(0, 0, 5.0); err != nil {
		t.Fatal(err)
	}
	if err := srv.Submit(1, 0, 1.0); err != nil {
		t.Fatalf("late cross-stream submit rejected: %v", err)
	}
	r, err := srv.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if r.Fleet.Arrived != 2 || r.Fleet.Served != 2 {
		t.Fatalf("books wrong after late submit: %+v", r.Fleet)
	}
	// The late frame's latency counts from its true arrival (1.0), so
	// it served no earlier than the clock it was admitted at (5.0).
	if lat := r.PerStream[1].Latency.Max; lat < 4.0 {
		t.Errorf("late frame latency %v does not count from its arrival stamp", lat)
	}
}

// TestValidateFieldPaths pins the field-path error format of
// Config.Validate.
func TestValidateFieldPaths(t *testing.T) {
	cases := []struct {
		mutate func(*Config)
		want   string
	}{
		{func(c *Config) { c.Spec.Kind = "" }, "serve: Spec.Kind: required"},
		{func(c *Config) { c.Arrivals = "bursty" }, "serve: Arrivals: unknown arrival process"},
		{func(c *Config) { c.StreamFPS = []float64{1, 2, 3} }, "serve: StreamFPS: len 3 != Streams 4"},
		{func(c *Config) { c.StreamFPS = []float64{1, 2, -3, 4} }, "serve: StreamFPS[2]: must be positive"},
		{func(c *Config) { c.Scheduler = "lifo" }, "serve: Scheduler: unknown scheduler"},
		{func(c *Config) { c.Priorities = []int{1} }, "serve: Priorities: len 1 != Streams 4"},
		{func(c *Config) { c.Drop = "drop-random" }, "serve: Drop: unknown drop policy"},
		{func(c *Config) { c.MaxStaleness = -1 }, "serve: MaxStaleness: must be non-negative"},
		{func(c *Config) { c.DegradeDepth = -1 }, "serve: DegradeDepth: must be non-negative"},
		{func(c *Config) { c.Reconnect = "retry" }, "serve: Reconnect: unknown reconnect policy"},
		{func(c *Config) { c.Poison = "quarantine" }, "serve: Poison: unknown poison policy"},
		{func(c *Config) { c.MaxFrame = -5 }, "serve: MaxFrame: must be positive"},
		{func(c *Config) { c.Chaos.DropoutRate = -1 }, "serve: Chaos.DropoutRate: must be non-negative"},
		{func(c *Config) { c.Chaos.DropoutMeanLen = -1 }, "serve: Chaos.DropoutMeanLen: must be non-negative"},
		{func(c *Config) { c.Chaos.FPSJitter = 3 }, "serve: Chaos.FPSJitter: outside [0,2]"},
		{func(c *Config) { c.Chaos.ClockSkew = -0.1 }, "serve: Chaos.ClockSkew: must be non-negative"},
		{func(c *Config) { c.Chaos.PoisonRate = 1.5 }, "serve: Chaos.PoisonRate: outside [0,1]"},
		{func(c *Config) { c.Chaos.Renumber = true }, "serve: Chaos.Renumber: restarted frame numbering needs Reconnect"},
		{func(c *Config) { c.Chaos.PoisonRate = 0.1 }, "serve: Chaos.PoisonRate: injected pills need Poison"},
	}
	for _, tc := range cases {
		cfg := testConfig()
		tc.mutate(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("Validate accepted a config that should fail with %q", tc.want)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Validate error %q does not carry field path %q", err, tc.want)
		}
		if _, runErr := Run(cfg); runErr == nil {
			t.Errorf("Run accepted a config Validate rejects (%q)", tc.want)
		}
	}
	if err := testConfig().Validate(); err != nil {
		t.Errorf("Validate rejected a good config: %v", err)
	}
}

// TestChannelSource feeds a Server through a caller-owned channel and
// checks Ingest drains it to the same books as direct submission.
func TestChannelSource(t *testing.T) {
	cfg := testConfig()
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ch := make(chan Arrival, 8)
	go func() {
		defer close(ch)
		for k := 0; k < 40; k++ {
			for s := 0; s < cfg.Streams; s++ {
				ch <- Arrival{Stream: s, Frame: k, At: float64(k) / 15}
			}
		}
	}()
	if err := srv.Ingest(ChannelSource(ch)); err != nil {
		t.Fatal(err)
	}
	r, err := srv.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if want := 40 * cfg.Streams; r.Fleet.Arrived != want {
		t.Errorf("arrived %d, sent %d", r.Fleet.Arrived, want)
	}
}
