package serve

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/serve/control"
)

// ErrClosed is returned by Submit, Ingest and Drain after Close.
var ErrClosed = errors.New("serve: server closed")

// EventKind classifies a per-frame serving outcome.
type EventKind string

// The frame outcomes and stream incidents a Sink observes.
const (
	// EventServed fires when a frame is dispatched to an executor; its
	// Time is the completion instant and Latency the end-to-end
	// (arrival to completion) seconds.
	EventServed EventKind = "served"
	// EventDroppedQueue fires when the queue-overflow policy evicts a
	// frame (the victim may be the arriving frame itself under tail
	// drop).
	EventDroppedQueue EventKind = "dropped-queue"
	// EventDroppedStale fires when a frame is skipped at admission for
	// exceeding MaxStaleness.
	EventDroppedStale EventKind = "dropped-stale"
	// EventDroppedPoison fires when a corrupt submission is swallowed
	// under PoisonDrop: Frame is the wire index as submitted (possibly
	// negative), Arrive the submitted stamp (re-stamped to the current
	// clock when non-finite), Time the decision instant. Pills never
	// touch the clock or the stream's session.
	EventDroppedPoison EventKind = "dropped-poison"
	// EventReconnect fires when a frame-index regression is accepted
	// under a non-rejecting Reconnect policy, before the reconnecting
	// frame's own arrival: Frame is the effective (world) index the
	// reconnecting frame was mapped to, and Epoch the session
	// generation it will be served in.
	EventReconnect EventKind = "reconnect"
	// EventModeSwitch fires when the adaptive control plane moves a
	// stream to a new operating mode at a control tick: Mode is the
	// new mode and Time the decision instant (Arrive/Frame are zero —
	// the switch is a stream-level decision, not a frame outcome).
	EventModeSwitch EventKind = "mode-switch"
	// EventFailedOver fires for each frame Server.FailAt seizes from a
	// dying server — queued or in-flight at the failure instant: Frame
	// is the effective (world) index, Arrive the original arrival stamp
	// and Time the failure instant. What happens to the frame next
	// (replay elsewhere, drop) is the seizing caller's policy — see the
	// cluster FaultPlan.
	EventFailedOver EventKind = "failed-over"
)

// Event is one per-frame serving outcome, reported to the configured
// Sink as the engine decides it. Events of one server are emitted in
// nondecreasing decision order on the virtual clock; a served frame's
// Time (its completion instant) may postdate later-emitted drops.
type Event struct {
	Kind   EventKind `json:"kind"`
	Stream int       `json:"stream"`
	Frame  int       `json:"frame"`
	// Arrive is the frame's arrival stamp; Time is when the outcome
	// takes effect on the virtual clock (drop instant, or completion
	// instant for served frames).
	Arrive float64 `json:"arrive_s"`
	Time   float64 `json:"time_s"`
	// Latency is Time-Arrive for served frames, 0 for drops.
	Latency float64 `json:"latency_s,omitempty"`
	// Degraded marks a served frame that ran proposal-only.
	Degraded bool `json:"degraded,omitempty"`
	// Batch is the 1-based dispatch ordinal of a served frame; frames
	// fused into one launch share it.
	Batch int `json:"batch,omitempty"`
	// Epoch is the stream's capture-session generation the frame
	// belongs to: 0 until the stream reconnects under reset-session,
	// then +1 per reset (Frame indices restart within an epoch).
	Epoch int `json:"epoch,omitempty"`
	// Mode attributes the event to a per-stream operating mode (see
	// serve/control): the new mode on a mode-switch event, the mode a
	// served frame ran in on controlled runs. Empty — and the trace
	// bytes unchanged — without an active controller.
	Mode string `json:"mode,omitempty"`
}

// Sink receives per-frame events. Implementations run synchronously on
// the engine, under the server's lock: they must be fast, must not
// block, and must not call back into the Server.
type Sink interface {
	ServeEvent(Event)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Event)

// ServeEvent implements Sink.
func (fn SinkFunc) ServeEvent(e Event) { fn(e) }

// Arrival is one frame offered to a Server: stream's frame index
// arriving at virtual time At.
type Arrival struct {
	Stream, Frame int
	At            float64
}

// Source produces arrivals for Server.Ingest. Next returns ok=false
// when the source is exhausted.
type Source interface {
	Next() (Arrival, bool)
}

// channelSource adapts a caller-owned channel to a Source.
type channelSource struct{ ch <-chan Arrival }

func (c channelSource) Next() (Arrival, bool) { a, ok := <-c.ch; return a, ok }

// ChannelSource wraps a channel as a Source: Ingest submits each
// received arrival until the channel closes. Producer goroutines own
// the channel; the serialization through it gives the server a single
// total submission order, so a channel-fed run is deterministic
// whenever the producers' interleaving is.
func ChannelSource(ch <-chan Arrival) Source { return channelSource{ch} }

// sliceSource replays a fixed schedule.
type sliceSource struct {
	arrivals []Arrival
	i        int
}

func (s *sliceSource) Next() (Arrival, bool) {
	if s.i >= len(s.arrivals) {
		return Arrival{}, false
	}
	a := s.arrivals[s.i]
	s.i++
	return a, true
}

// ScheduleSource precomputes the config's preset arrival schedule —
// every stream's frames within Duration, on the configured arrival
// process, perturbed by the configured Chaos — and replays it in
// global virtual-time order. It is the source Run drives the Server
// with; the schedule depends only on (seed, streams, rates, arrival
// process, duration, chaos), never on the fleet shape, so the same
// config always offers the same load.
//
// The stable sort keys on (At, Stream) only: within a stream, per-
// stream submission order is the generation order, which chaos
// renumbering may take backwards through the wire frame indices — the
// very order the Reconnect policies exist to interpret. Fault-free
// schedules have unique (At, Stream) pairs and increasing frame order
// per stream, so their replay is unchanged byte for byte.
func ScheduleSource(cfg Config) Source {
	cfg = cfg.withDefaults()
	var arrivals []Arrival
	for s, ts := range arrivalTimes(cfg) {
		if cfg.Chaos.enabled() {
			arrivals = append(arrivals, chaosStream(cfg, s, ts)...)
			continue
		}
		for k, t := range ts {
			arrivals = append(arrivals, Arrival{Stream: s, Frame: k, At: t})
		}
	}
	sort.SliceStable(arrivals, func(i, j int) bool {
		a, b := arrivals[i], arrivals[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.Stream < b.Stream
	})
	return &sliceSource{arrivals: arrivals}
}

// Server is a long-lived, push-based serving fleet on a virtual clock:
// the scheduler, batched executors and backpressure policies of the
// simulator, opened up so callers own the arrival process. Frames are
// pushed with Submit (or pulled from a Source with Ingest); per-frame
// outcomes stream to the configured Sink; Stats returns live
// snapshots; Drain runs the backlog dry and reports the cumulative
// Result.
//
// The engine advances eagerly: Submit(_, _, t) plays every pending
// event up to t before returning, so completions, drops and sink
// events interleave with submission instead of waiting for Drain.
// Submissions that are globally nondecreasing in arrival time (any
// single-goroutine driver, e.g. Run's schedule replay) reproduce the
// closed-loop simulator byte for byte. Methods are safe for concurrent
// use; concurrent submitters stay per-stream causal, but when their
// arrival times race across streams the engine may already have
// advanced past a late submission, which is then admitted at the
// clock (keeping its arrival stamp for latency) — totals stay exact,
// byte-level determinism is only guaranteed for time-ordered
// submission.
type Server struct {
	mu sync.Mutex
	f  *fleet // owns the normalized Config the engine runs
	// Per-stream causality state. lastFrame is the last *effective*
	// (world) frame index admitted; lastArrive the last accepted
	// arrival stamp. rebase maps a stream's wire indices to effective
	// ones (eff = wire + rebase; nonzero only after a resume-with-gap
	// reconnect) and epoch counts its reset-session reconnects.
	lastFrame  []int
	lastArrive []float64
	rebase     []int
	epoch      []int
	closed     bool
}

// New builds a Server for the config. Defaults are applied as in Run;
// the config is validated (see Config.Validate) and the per-stream
// sessions and scheduler are constructed up front, so Submit never
// fails on configuration.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f, err := newFleet(cfg)
	if err != nil {
		return nil, err
	}
	s := &Server{
		f:          f,
		lastFrame:  make([]int, cfg.Streams),
		lastArrive: make([]float64, cfg.Streams),
		rebase:     make([]int, cfg.Streams),
		epoch:      make([]int, cfg.Streams),
	}
	for i := range s.lastFrame {
		s.lastFrame[i] = -1
	}
	return s, nil
}

// Config returns the server's normalized configuration (defaults
// applied).
func (s *Server) Config() Config { return s.f.cfg }

// Submit offers one frame of a stream to the fleet at virtual time
// arriveAt. frame is the stream's wire index: under the default
// policies it directly indexes the stream's synthetic world (grown on
// demand, so memory scales with the largest index submitted — bounded
// by Config.MaxFrame) and must be strictly increasing per stream with
// nondecreasing arrival times, the per-stream order that keeps the
// tracker sessions causal.
//
// Config.Poison and Config.Reconnect relax the strict contract for
// faulty inputs. A poison pill — non-finite arriveAt, negative frame,
// or frame beyond MaxFrame — errors under PoisonError and is counted,
// sunk and otherwise ignored under PoisonDrop. A frame-index
// regression errors under ReconnectReject and is accepted as a camera
// reconnect otherwise: ReconnectResume rebases the wire index so the
// stream's world continues where it left off, ReconnectReset starts a
// new session epoch and takes the wire index literally. Under a
// non-rejecting Reconnect policy a backwards per-stream arrival stamp
// (a reconnecting camera's skewed clock) is re-stamped to the
// stream's last accepted stamp instead of erroring.
//
// The engine advances to arriveAt before returning (poison pills
// excepted — they leave the clock untouched).
func (s *Server) Submit(stream, frame int, arriveAt float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	cfg := &s.f.cfg
	if stream < 0 || stream >= cfg.Streams {
		return fmt.Errorf("serve: Submit: stream %d out of range [0,%d)", stream, cfg.Streams)
	}

	// Poison classification comes first: a pill carries no usable
	// frame, so no policy below should see it.
	switch {
	case math.IsNaN(arriveAt) || math.IsInf(arriveAt, 0):
		// A non-finite time would defeat the monotonicity checks below
		// (NaN compares false) and poison the clock's time integrals.
		if cfg.Poison == PoisonDrop {
			s.f.dropPoison(stream, frame, arriveAt, s.epoch[stream])
			return nil
		}
		return fmt.Errorf("serve: Submit: stream %d: arrival %v is not a finite time", stream, arriveAt)
	case frame < 0 || frame > cfg.MaxFrame:
		if cfg.Poison == PoisonDrop {
			s.f.dropPoison(stream, frame, arriveAt, s.epoch[stream])
			return nil
		}
		return fmt.Errorf("serve: Submit: stream %d: frame %d outside [0,%d] (MaxFrame bounds the synthetic world)",
			stream, frame, cfg.MaxFrame)
	}

	// Map the wire index to the effective (world) index and detect the
	// reconnect signature. Nothing is committed until the frame is
	// known to be servable, so a pill-sized rebase result cannot
	// corrupt the stream's causality state.
	eff := frame + s.rebase[stream]
	epoch := s.epoch[stream]
	reconnect := eff <= s.lastFrame[stream]
	if reconnect {
		switch cfg.Reconnect {
		case ReconnectResume:
			// Same camera, restarted numbering: continue the world
			// where the outage interrupted it.
			eff = s.lastFrame[stream] + 1
		case ReconnectReset:
			// New capture session: take the wire index literally and
			// replay the world from there under a fresh session epoch.
			eff = frame
			epoch++
		default:
			return fmt.Errorf("serve: Submit: stream %d: frame %d not after %d (frames must be strictly increasing per stream)",
				stream, frame, s.lastFrame[stream])
		}
		if eff > cfg.MaxFrame {
			if cfg.Poison == PoisonDrop {
				s.f.dropPoison(stream, frame, arriveAt, s.epoch[stream])
				return nil
			}
			return fmt.Errorf("serve: Submit: stream %d: reconnect frame %d maps past MaxFrame %d", stream, frame, cfg.MaxFrame)
		}
	}
	if arriveAt < s.lastArrive[stream] {
		if cfg.Reconnect == ReconnectReject {
			return fmt.Errorf("serve: Submit: stream %d: arrival %v before %v (arrival times must be nondecreasing per stream)",
				stream, arriveAt, s.lastArrive[stream])
		}
		// Reconnecting cameras come back with skewed clocks; keep the
		// stream's timeline monotone instead of failing the feed.
		arriveAt = s.lastArrive[stream]
	}

	t := arriveAt
	if t < s.f.now {
		// A concurrent submitter on another stream already advanced the
		// clock past this arrival: admit it now, keeping the original
		// arrival stamp for latency and staleness.
		t = s.f.now
	}
	if reconnect {
		s.rebase[stream] = eff - frame
		s.epoch[stream] = epoch
		s.f.noteReconnect(stream, eff, arriveAt, epoch)
	}
	s.lastFrame[stream], s.lastArrive[stream] = eff, arriveAt
	s.f.ensureFrame(stream, eff)
	s.f.agenda.add(event{t: t, kind: evArrival, stream: stream, frame: eff, arrive: arriveAt, epoch: epoch})
	s.f.advanceTo(t)
	return nil
}

// Ingest submits every arrival the source yields, in order, stopping
// at the first Submit error.
func (s *Server) Ingest(src Source) error {
	for {
		a, ok := src.Next()
		if !ok {
			return nil
		}
		if err := s.Submit(a.Stream, a.Frame, a.At); err != nil {
			return err
		}
	}
}

// AdvanceTo plays every pending event up to and including virtual time
// t with no new arrival — completions fire, freed executors pull
// backlog — and moves the clock to t, so a following Stats call
// reflects the fleet as it stands at t rather than at the last
// submission. Times at or before the current clock are a no-op. The
// cluster control plane calls this before reading the saturation
// signals its migration and autoscale decisions key on.
func (s *Server) AdvanceTo(t float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("serve: AdvanceTo: %v is not a finite time", t)
	}
	s.f.advanceTo(t)
	if t > s.f.lastT {
		s.f.tick(t)
	}
	return nil
}

// ResizeAt schedules the fleet's executor count to become n at virtual
// time at (the current clock, if at is already past): the elastic
// capacity knob the cluster autoscaler drives, with any modeled
// provisioning latency folded into at. Growth puts the new executors
// to work on the backlog immediately; shrinking never preempts a
// running batch — busy executors finish their dispatch and then stay
// idle. n may be 0 (a fully parked shard: frames queue, nothing
// serves, no capacity accrues in Result.ExecutorSeconds). Once any
// resize applies, Result reports Resizes/ExecutorSeconds and
// Utilization switches to the busy-over-capacity-integral form.
func (s *Server) ResizeAt(n int, at float64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if n < 0 {
		return fmt.Errorf("serve: ResizeAt: executor count %d must be non-negative", n)
	}
	if math.IsNaN(at) || math.IsInf(at, 0) {
		return fmt.Errorf("serve: ResizeAt: %v is not a finite time", at)
	}
	if at < s.f.now {
		at = s.f.now
	}
	s.f.agenda.add(event{t: at, kind: evResize, execs: n})
	return nil
}

// FailedFrame is one frame seized from a failed Server: the stream, the
// effective (world) frame index as this server had admitted it, the
// original arrival stamp and the capture-session epoch — everything a
// cluster needs to replay the frame on a surviving shard (where the
// index re-enters Submit as a wire index against that shard's own
// causality state, so PR 6 reconnect semantics apply on collision).
type FailedFrame struct {
	Stream int
	Frame  int
	Arrive float64
	Epoch  int
}

// FailAt models the server's hardware dying at virtual time t: the
// engine advances to t, then every in-flight launch is cancelled and
// every queued frame popped — the seized frames are returned in
// dispatch-then-queue order (per-stream frame order preserved), each
// counted in StreamStats.FailedOver and emitted as an EventFailedOver —
// the agenda is cleared (pending completions, provisioning resizes and
// the armed control tick die with the machine) and the executor count
// drops to 0 until a later ResizeAt revives the shard. Requires
// Config.FailableExecutors: under the default dispatch-time accounting
// an in-flight launch's frames are already in the books and cannot be
// seized back.
func (s *Server) FailAt(t float64) ([]FailedFrame, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if !s.f.failable {
		return nil, errors.New("serve: FailAt: requires Config.FailableExecutors (completion-time accounting)")
	}
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, fmt.Errorf("serve: FailAt: %v is not a finite time", t)
	}
	if t < s.f.now {
		t = s.f.now
	}
	s.f.advanceTo(t)
	return s.f.failAt(t), nil
}

// PinMode pins a stream's operating mode, overriding both the adaptive
// control plane and the DegradeDepth policy until the stream is
// unpinned with control.ModeAuto. The cluster's degrade failover uses
// it to hold the streams of a dead shard at proposal-only on their
// fallback shards until the home shard recovers. Pins only affect
// cascade systems — a single-model fleet has no cheaper mode — and
// only frames admitted after the pin; queued frames keep the mode
// resolved at their dispatch.
func (s *Server) PinMode(stream int, mode control.Mode) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	if stream < 0 || stream >= s.f.cfg.Streams {
		return fmt.Errorf("serve: PinMode: stream %d out of range [0,%d)", stream, s.f.cfg.Streams)
	}
	switch mode {
	case control.ModeAuto, control.ModeFull, control.ModeCascade, control.ModeProposal:
	default:
		return fmt.Errorf("serve: PinMode: unknown mode %q", mode)
	}
	if s.f.pinned == nil {
		s.f.pinned = make([]control.Mode, s.f.cfg.Streams)
	}
	s.f.pinned[stream] = mode
	return nil
}

// Stats returns a live snapshot: cumulative totals, current queue
// depth and busy executors, throughput and drop rate over the elapsed
// makespan, and latency percentiles over the sliding window of the
// most recent Config.StatsWindow served frames.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.stats()
}

// Drain plays the agenda dry — every queued and in-flight frame runs
// to completion on the virtual clock, with no further arrivals — and
// returns the cumulative Result. The context is checked between
// events; on cancellation the server keeps its partial state and Drain
// can be called again. Drain does not close the server: more frames
// may be submitted afterwards, and a later Drain extends the same
// accumulated scenario.
func (s *Server) Drain(ctx context.Context) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	for s.f.agenda.Len() > 0 {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		s.f.handle(s.f.agenda.next())
	}
	return s.f.result(), nil
}

// Close marks the server closed — subsequent Submit, Ingest and Drain
// calls fail with ErrClosed — and releases the engine's step-worker
// pool. Close does not drain — call Drain first if the backlog's
// results matter. Closing twice is a no-op.
func (s *Server) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	s.f.closePool()
	return nil
}

// Run executes one closed-loop serving scenario: it builds a Server,
// replays the config's preset arrival schedule through Submit
// (ScheduleSource), drains, and returns the deterministic Result. The
// same Config (seed included) produces a byte-identical Result at any
// executor count and on any machine.
func Run(cfg Config) (*Result, error) {
	srv, err := New(cfg)
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	if err := srv.Ingest(ScheduleSource(srv.Config())); err != nil {
		return nil, err
	}
	return srv.Drain(context.Background())
}
