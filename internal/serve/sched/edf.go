package sched

import "container/heap"

// edf is earliest-deadline-first: Next pops the waiting job with the
// smallest deadline (arrive + MaxStaleness). Overflow also evicts the
// earliest deadline — under overload the head-of-line job is the one
// nearest expiry and the least likely to be served in time, so it is
// the cheapest to sacrifice; Config.DropNewest is ignored by design
// (the victim is deadline-chosen, not direction-chosen).
//
// With a uniform relative deadline EDF's service order equals FIFO's
// (same offset preserves arrival order), so it coincides with
// fifo/drop-oldest; it differs from fifo under tail drop — where FIFO
// keeps doomed head-of-line frames that later expire as stale drops,
// EDF evicts them as queue drops and serves fresher frames instead.
type edf struct {
	cfg Config
	h   edfHeap
}

func newEDF(cfg Config) *edf { return &edf{cfg: cfg} }

func (e *edf) Name() Kind { return EDF }
func (e *edf) Len() int   { return len(e.h) }

func (e *edf) Admit(j Job) (Job, bool) {
	heap.Push(&e.h, j)
	if !e.cfg.over(len(e.h)) {
		return Job{}, false
	}
	return heap.Pop(&e.h).(Job), true
}

func (e *edf) Next() (Job, bool) {
	if len(e.h) == 0 {
		return Job{}, false
	}
	return heap.Pop(&e.h).(Job), true
}

// edfHeap orders by (deadline, arrive, stream, frame) — a total order
// over jobs, so heap behavior is deterministic.
type edfHeap []Job

func (h edfHeap) Len() int { return len(h) }
func (h edfHeap) Less(i, j int) bool {
	if h[i].Deadline != h[j].Deadline {
		return h[i].Deadline < h[j].Deadline
	}
	if h[i].Arrive != h[j].Arrive {
		return h[i].Arrive < h[j].Arrive
	}
	if h[i].Stream != h[j].Stream {
		return h[i].Stream < h[j].Stream
	}
	return h[i].Frame < h[j].Frame
}
func (h edfHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *edfHeap) Push(x any)   { *h = append(*h, x.(Job)) }
func (h *edfHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	*h = old[:n-1]
	return j
}
