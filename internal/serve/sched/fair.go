package sched

// fair is deficit round-robin across streams with a unit quantum:
// every stream has a private FIFO, and idle executors cycle over the
// non-empty queues in stream order, taking one frame per visit. Every
// frame is one quantum (service time is not known until it is priced),
// so the deficit counter degenerates to plain round-robin — which is
// exactly the max-min fair share for unit-cost items.
//
// Overflow evicts from the longest per-stream queue (ties to the
// lowest stream index): the burstiest stream pays for its own burst,
// which is what bounds the per-stream drop-rate spread.
type fair struct {
	cfg  Config
	qs   []ring
	next int // stream index the round-robin pointer visits first
	n    int
}

func newFair(cfg Config) *fair {
	return &fair{cfg: cfg, qs: make([]ring, cfg.Streams)}
}

func (f *fair) Name() Kind { return Fair }
func (f *fair) Len() int   { return f.n }

func (f *fair) Admit(j Job) (Job, bool) {
	f.qs[j.Stream].pushBack(j)
	f.n++
	if !f.cfg.over(f.n) {
		return Job{}, false
	}
	longest := 0
	for s := 1; s < len(f.qs); s++ {
		if f.qs[s].len() > f.qs[longest].len() {
			longest = s
		}
	}
	var v Job
	if f.cfg.DropNewest {
		v, _ = f.qs[longest].popBack()
	} else {
		v, _ = f.qs[longest].popFront()
	}
	f.n--
	return v, true
}

func (f *fair) Next() (Job, bool) {
	if f.n == 0 {
		return Job{}, false
	}
	for i := 0; i < len(f.qs); i++ {
		s := (f.next + i) % len(f.qs)
		if j, ok := f.qs[s].popFront(); ok {
			f.next = (s + 1) % len(f.qs)
			f.n--
			return j, true
		}
	}
	return Job{}, false
}
