package sched

// fifo is the PR 2 shared queue, extracted: one global queue in
// arrival order. Overflow evicts the head (drop-oldest, freshest
// first) or rejects the arrival (drop-newest, tail drop).
type fifo struct {
	cfg Config
	q   ring
}

func newFIFO(cfg Config) *fifo { return &fifo{cfg: cfg} }

func (f *fifo) Name() Kind { return FIFO }
func (f *fifo) Len() int   { return f.q.len() }

func (f *fifo) Admit(j Job) (Job, bool) {
	f.q.pushBack(j)
	if !f.cfg.over(f.q.len()) {
		return Job{}, false
	}
	if f.cfg.DropNewest {
		v, _ := f.q.popBack()
		return v, true
	}
	v, _ := f.q.popFront()
	return v, true
}

func (f *fifo) Next() (Job, bool) { return f.q.popFront() }
