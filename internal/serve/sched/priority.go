package sched

import "sort"

// priority serves strictly by class — the highest non-empty priority
// class always goes first, FIFO within a class — and makes the lowest
// class absorb the overflow: when over capacity the victim comes from
// the lowest non-empty class (its oldest frame, or its newest under
// tail drop). A scenario's classes are whatever values appear in
// Config.Priorities; the bucket list is built lazily and kept sorted,
// so iteration order is deterministic.
type priority struct {
	cfg     Config
	classes []int  // distinct classes seen, ascending
	qs      []ring // qs[i] queues class classes[i]
	n       int
}

func newPriority(cfg Config) *priority { return &priority{cfg: cfg} }

func (p *priority) Name() Kind { return Priority }
func (p *priority) Len() int   { return p.n }

// bucket returns the queue index for a class, inserting a new bucket
// in sorted position on first sight.
func (p *priority) bucket(class int) int {
	i := sort.SearchInts(p.classes, class)
	if i < len(p.classes) && p.classes[i] == class {
		return i
	}
	p.classes = append(p.classes, 0)
	copy(p.classes[i+1:], p.classes[i:])
	p.classes[i] = class
	p.qs = append(p.qs, ring{})
	copy(p.qs[i+1:], p.qs[i:])
	p.qs[i] = ring{}
	return i
}

func (p *priority) Admit(j Job) (Job, bool) {
	// bucket may grow p.qs; resolve it before indexing so the slice
	// header is read after the mutation.
	i := p.bucket(j.Class)
	p.qs[i].pushBack(j)
	p.n++
	if !p.cfg.over(p.n) {
		return Job{}, false
	}
	for i := range p.qs { // lowest class first
		if p.qs[i].len() == 0 {
			continue
		}
		var v Job
		if p.cfg.DropNewest {
			v, _ = p.qs[i].popBack()
		} else {
			v, _ = p.qs[i].popFront()
		}
		p.n--
		return v, true
	}
	return Job{}, false
}

func (p *priority) Next() (Job, bool) {
	for i := len(p.qs) - 1; i >= 0; i-- { // highest class first
		if j, ok := p.qs[i].popFront(); ok {
			p.n--
			return j, true
		}
	}
	return Job{}, false
}
