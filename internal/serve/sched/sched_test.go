package sched

import "testing"

func job(stream, frame int, arrive, deadline float64, class int) Job {
	return Job{Stream: stream, Frame: frame, Arrive: arrive, Deadline: deadline, Class: class}
}

// --- ring ---

// TestRingWraparound pushes and pops across many wrap cycles and
// checks FIFO order and the head/tail pops, with no reallocation
// once the buffer has grown to the working-set size.
func TestRingWraparound(t *testing.T) {
	var r ring
	next, out := 0, 0
	for cycle := 0; cycle < 100; cycle++ {
		for i := 0; i < 5; i++ {
			r.pushBack(job(0, next, 0, 0, 0))
			next++
		}
		for i := 0; i < 5; i++ {
			j, ok := r.popFront()
			if !ok || j.Frame != out {
				t.Fatalf("cycle %d: popFront = (%v,%v), want frame %d", cycle, j.Frame, ok, out)
			}
			out++
		}
	}
	if r.len() != 0 {
		t.Fatalf("ring not empty after drain: len=%d", r.len())
	}
	if cap := len(r.buf); cap > 8 {
		t.Errorf("steady-state working set of 5 grew the buffer to %d", cap)
	}
}

func TestRingPopBack(t *testing.T) {
	var r ring
	for i := 0; i < 4; i++ {
		r.pushBack(job(0, i, 0, 0, 0))
	}
	if j, ok := r.popBack(); !ok || j.Frame != 3 {
		t.Fatalf("popBack = (%v,%v), want frame 3", j.Frame, ok)
	}
	if j, ok := r.popFront(); !ok || j.Frame != 0 {
		t.Fatalf("popFront = (%v,%v), want frame 0", j.Frame, ok)
	}
	if r.len() != 2 {
		t.Fatalf("len = %d, want 2", r.len())
	}
	if _, ok := (&ring{}).popFront(); ok {
		t.Error("popFront on empty ring reported ok")
	}
	if _, ok := (&ring{}).popBack(); ok {
		t.Error("popBack on empty ring reported ok")
	}
}

// --- fifo ---

// TestFIFOSemantics pins the seed behavior the fifo scheduler
// extracts: arrival order service, head eviction under drop-oldest,
// arrival rejection under drop-newest.
func TestFIFOSemantics(t *testing.T) {
	s, err := New(FIFO, Config{Cap: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, dropped := s.Admit(job(0, i, float64(i), 0, 0)); dropped {
			t.Fatalf("admit %d dropped under cap", i)
		}
	}
	v, dropped := s.Admit(job(0, 2, 2, 0, 0))
	if !dropped || v.Frame != 0 {
		t.Fatalf("drop-oldest evicted (%v,%v), want frame 0", v.Frame, dropped)
	}
	if j, _ := s.Next(); j.Frame != 1 {
		t.Fatalf("Next = frame %d, want 1", j.Frame)
	}

	s, _ = New(FIFO, Config{Cap: 2, DropNewest: true})
	s.Admit(job(0, 0, 0, 0, 0))
	s.Admit(job(0, 1, 1, 0, 0))
	v, dropped = s.Admit(job(0, 2, 2, 0, 0))
	if !dropped || v.Frame != 2 {
		t.Fatalf("drop-newest evicted (%v,%v), want the arrival (frame 2)", v.Frame, dropped)
	}
	if j, _ := s.Next(); j.Frame != 0 {
		t.Fatalf("Next = frame %d, want 0", j.Frame)
	}
}

// --- fair ---

// TestFairRoundRobin checks the unit-quantum DRR order: one frame per
// non-empty stream per cycle, in stream order.
func TestFairRoundRobin(t *testing.T) {
	s, _ := New(Fair, Config{Cap: -1, Streams: 3})
	// Stream 0 is bursty; streams 1 and 2 have one frame each.
	for i := 0; i < 4; i++ {
		s.Admit(job(0, i, float64(i), 0, 0))
	}
	s.Admit(job(1, 0, 10, 0, 0))
	s.Admit(job(2, 0, 11, 0, 0))

	var got []int
	for {
		j, ok := s.Next()
		if !ok {
			break
		}
		got = append(got, j.Stream)
	}
	want := []int{0, 1, 2, 0, 0, 0}
	if len(got) != len(want) {
		t.Fatalf("served %d jobs, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("service order %v, want %v", got, want)
		}
	}
}

// TestFairEvictsLongestQueue checks overflow lands on the burstiest
// stream, not the arrival.
func TestFairEvictsLongestQueue(t *testing.T) {
	s, _ := New(Fair, Config{Cap: 3, Streams: 2})
	s.Admit(job(0, 0, 0, 0, 0))
	s.Admit(job(0, 1, 1, 0, 0))
	s.Admit(job(0, 2, 2, 0, 0))
	v, dropped := s.Admit(job(1, 0, 3, 0, 0))
	if !dropped || v.Stream != 0 || v.Frame != 0 {
		t.Fatalf("evicted stream %d frame %d, want the hot stream's oldest (0,0)", v.Stream, v.Frame)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
}

// --- priority ---

// TestPriorityOrder checks strict class order with FIFO within class,
// and that overflow evicts from the lowest class.
func TestPriorityOrder(t *testing.T) {
	s, _ := New(Priority, Config{Cap: -1})
	s.Admit(job(0, 0, 0, 0, 0)) // low class
	s.Admit(job(1, 0, 1, 0, 2)) // high class
	s.Admit(job(1, 1, 2, 0, 2))
	s.Admit(job(2, 0, 3, 0, 1))

	wantStreams := []int{1, 1, 2, 0}
	for i, want := range wantStreams {
		j, ok := s.Next()
		if !ok || j.Stream != want {
			t.Fatalf("pop %d = stream %d, want %d", i, j.Stream, want)
		}
	}
}

func TestPriorityEvictsLowestClass(t *testing.T) {
	s, _ := New(Priority, Config{Cap: 2})
	s.Admit(job(0, 0, 0, 0, 0))
	s.Admit(job(1, 0, 1, 0, 5))
	v, dropped := s.Admit(job(1, 1, 2, 0, 5))
	if !dropped || v.Stream != 0 {
		t.Fatalf("evicted stream %d class %d, want the class-0 job", v.Stream, v.Class)
	}
	// Only high-class jobs remain; the next overflow victim is the
	// oldest within that class.
	v, dropped = s.Admit(job(1, 2, 3, 0, 5))
	if !dropped || v.Frame != 0 {
		t.Fatalf("evicted frame %d, want the oldest high-class frame 0", v.Frame)
	}
}

// --- edf ---

// TestEDFOrder checks deadline order regardless of arrival order, and
// that overflow evicts the earliest deadline.
func TestEDFOrder(t *testing.T) {
	s, _ := New(EDF, Config{Cap: -1})
	s.Admit(job(0, 0, 0, 9, 0))
	s.Admit(job(1, 0, 1, 3, 0))
	s.Admit(job(2, 0, 2, 6, 0))

	wantDeadlines := []float64{3, 6, 9}
	for i, want := range wantDeadlines {
		j, ok := s.Next()
		if !ok || j.Deadline != want {
			t.Fatalf("pop %d deadline = %v, want %v", i, j.Deadline, want)
		}
	}

	s, _ = New(EDF, Config{Cap: 2})
	s.Admit(job(0, 0, 0, 9, 0))
	s.Admit(job(1, 0, 1, 3, 0))
	v, dropped := s.Admit(job(2, 0, 2, 6, 0))
	if !dropped || v.Deadline != 3 {
		t.Fatalf("evicted deadline %v, want the earliest (3)", v.Deadline)
	}
}

// --- shared ---

func TestUnknownKind(t *testing.T) {
	if _, err := New("lifo", Config{}); err == nil {
		t.Error("New accepted an unknown scheduler kind")
	}
}

// TestUnboundedCap checks negative caps never evict.
func TestUnboundedCap(t *testing.T) {
	for _, kind := range []Kind{FIFO, Fair, Priority, EDF} {
		s, err := New(kind, Config{Cap: -1, Streams: 1})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 1000; i++ {
			if _, dropped := s.Admit(job(0, i, float64(i), float64(i), 0)); dropped {
				t.Fatalf("%s: unbounded queue evicted at %d", kind, i)
			}
		}
		if s.Len() != 1000 {
			t.Fatalf("%s: Len = %d, want 1000", kind, s.Len())
		}
	}
}

// TestPerStreamOrder checks every policy preserves a stream's arrival
// order — the property that keeps tracker sessions causal.
func TestPerStreamOrder(t *testing.T) {
	for _, kind := range []Kind{FIFO, Fair, Priority, EDF} {
		s, _ := New(kind, Config{Cap: -1, Streams: 3})
		for f := 0; f < 5; f++ {
			for st := 0; st < 3; st++ {
				arrive := float64(f*3 + st)
				s.Admit(job(st, f, arrive, arrive+1, st%2))
			}
		}
		last := map[int]int{0: -1, 1: -1, 2: -1}
		for {
			j, ok := s.Next()
			if !ok {
				break
			}
			if j.Frame <= last[j.Stream] {
				t.Fatalf("%s: stream %d served frame %d after frame %d", kind, j.Stream, j.Frame, last[j.Stream])
			}
			last[j.Stream] = j.Frame
		}
	}
}
