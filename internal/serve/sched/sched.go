// Package sched holds the pluggable frame schedulers of the serving
// layer. A Scheduler owns the set of frames waiting for an executor:
// it decides where an arriving frame queues (Admit), which waiting
// frame is sacrificed when the queue is over capacity (the returned
// victim — drop accounting is policy-owned, not the caller's), and
// which frame an idle executor serves next (Next).
//
// Every implementation is deterministic: state depends only on the
// sequence of Admit/Next calls, never on map iteration order, wall
// clock or goroutine scheduling, so the serving simulator stays
// byte-identical across reruns at any executor count.
//
// All policies preserve per-stream FIFO order — a stream's frames are
// served in arrival order (dropped frames are simply never seen) — so
// the per-stream tracker sessions stay causal under every policy.
package sched

import "fmt"

// Kind names a scheduling policy.
type Kind string

// The four policies.
const (
	// FIFO is one shared queue in global arrival order: the PR 2
	// behavior, extracted verbatim (and backed by a ring buffer).
	FIFO Kind = "fifo"
	// Fair is deficit round-robin across streams with a unit quantum:
	// idle executors cycle over the streams' private queues, so a
	// bursty stream cannot starve the rest; overflow evicts from the
	// longest per-stream queue.
	Fair Kind = "fair"
	// Priority serves strictly by per-stream priority class (higher
	// first, FIFO within a class); overflow evicts from the lowest
	// class first.
	Priority Kind = "priority"
	// EDF is earliest-deadline-first with deadline = arrive +
	// MaxStaleness; overflow evicts the earliest deadline — the frame
	// nearest expiry is the cheapest to sacrifice under overload.
	EDF Kind = "edf"
)

// Job is one frame waiting for (or offered to) an executor.
type Job struct {
	// Stream and Frame identify the frame; Arrive is its arrival
	// instant on the virtual clock.
	Stream, Frame int
	Arrive        float64
	// Deadline is Arrive + the scenario's MaxStaleness (Arrive itself
	// when staleness is off). Only EDF orders by it.
	Deadline float64
	// Class is the stream's priority class (higher serves first).
	// Only Priority looks at it.
	Class int
	// Epoch is the stream's capture-session generation: 0 until the
	// stream reconnects under the reset-session policy, then +1 per
	// reset. No policy orders by it — it rides along so the engine can
	// reset the stream's detection session at the right point of the
	// per-stream FIFO order.
	Epoch int
}

// Config carries the queue shape every policy needs.
type Config struct {
	// Cap bounds the number of waiting jobs; negative means
	// unbounded. (Zero is a valid, fully lossy cap.)
	Cap int
	// DropNewest selects tail drop where the policy honors a
	// direction: the arriving (or newest) job is the victim instead
	// of the oldest. EDF ignores it — its victim is deadline-chosen.
	DropNewest bool
	// Streams is the number of streams (Fair sizes its per-stream
	// queues from it).
	Streams int
}

// Scheduler owns the waiting frames of one serving scenario.
type Scheduler interface {
	// Name returns the policy kind.
	Name() Kind
	// Admit offers an arriving job. When admitting would leave the
	// scheduler over capacity the policy evicts one job — possibly
	// the offered one — and returns it with dropped=true; the caller
	// charges the victim's stream with a queue drop.
	Admit(j Job) (victim Job, dropped bool)
	// Next pops the job an idle executor should serve; ok=false when
	// nothing waits.
	Next() (j Job, ok bool)
	// Len is the number of waiting jobs.
	Len() int
}

// New builds the scheduler for a policy kind.
func New(kind Kind, cfg Config) (Scheduler, error) {
	switch kind {
	case FIFO:
		return newFIFO(cfg), nil
	case Fair:
		return newFair(cfg), nil
	case Priority:
		return newPriority(cfg), nil
	case EDF:
		return newEDF(cfg), nil
	default:
		return nil, fmt.Errorf("sched: unknown scheduler %q", kind)
	}
}

// over reports whether n waiting jobs exceed the cap.
func (c Config) over(n int) bool { return c.Cap >= 0 && n > c.Cap }
