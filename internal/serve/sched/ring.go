package sched

// ring is a FIFO of jobs on a circular buffer: push/pop are O(1) with
// no per-wraparound reallocation, unlike the seed's `q = q[1:]` +
// append pattern, which churned the backing array every time the
// slice's spare capacity ran out.
type ring struct {
	buf  []Job
	head int // index of the oldest job
	n    int // number of jobs held
}

func (r *ring) len() int { return r.n }

// pushBack appends a job, growing the buffer when full.
func (r *ring) pushBack(j Job) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)%len(r.buf)] = j
	r.n++
}

// popFront removes and returns the oldest job; ok=false when empty.
func (r *ring) popFront() (Job, bool) {
	if r.n == 0 {
		return Job{}, false
	}
	j := r.buf[r.head]
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return j, true
}

// popBack removes and returns the newest job; ok=false when empty.
func (r *ring) popBack() (Job, bool) {
	if r.n == 0 {
		return Job{}, false
	}
	r.n--
	return r.buf[(r.head+r.n)%len(r.buf)], true
}

// grow doubles the buffer, compacting the live window to the front.
func (r *ring) grow() {
	next := make([]Job, max(2*len(r.buf), 8))
	for i := 0; i < r.n; i++ {
		next[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = next
	r.head = 0
}
