// Package serve is the online counterpart of internal/sim: a
// deterministic discrete-event model of a serving fleet under live
// multi-stream video load, opened up as a push-based Server. Callers
// push frames with Server.Submit (or feed a Source through Ingest);
// each of the N streams owns a private detection session built from a
// sim.SystemFactory, and frames queue for a configurable number of
// GPU executors whose per-frame service time comes from the Appendix
// I gpumodel (region merging and launch overhead included). A
// pluggable scheduler (package sched: fifo, fair, priority, edf)
// decides which waiting frame runs next and which one a full queue
// evicts, and executors can fuse up to BatchSize frames into one
// batched launch (gpumodel.Model.BatchFrames), amortizing the
// per-launch constant across frames. Backpressure policies — queue
// cap with drop-oldest/drop-newest, stale-frame skip,
// degrade-to-proposal-only under overload — shape the tail.
//
// Per-frame outcomes (served, dropped, degraded) stream to a
// caller-provided Sink as the engine decides them; Server.Stats
// returns live snapshots (throughput, drop rate, queue depth, and
// latency percentiles over a sliding window); Server.Drain runs the
// backlog dry and folds everything into the per-stream, per-class and
// fleet-wide Result.
//
// The closed-loop simulator survives as one driver on top: Run builds
// a Server, replays the config's preset arrival schedule through
// Submit, and drains. Everything runs on a virtual clock; the same
// Config (seed included) always produces a byte-identical Result, at
// any executor count, any Config.StepWorkers fan-out — the engine's
// real CPU work, stepping the per-stream detection sessions, is
// parallelized across streams within each dispatch round and merged
// back in deterministic order — and on any machine.
package serve

import (
	"fmt"
	"runtime"

	"repro/internal/gpumodel"
	"repro/internal/serve/control"
	"repro/internal/serve/sched"
	"repro/internal/sim"
	"repro/internal/video"
)

// ArrivalKind selects the per-stream frame arrival process.
type ArrivalKind string

// Arrival processes.
const (
	// FixedFPS emits frames at exactly 1/FPS spacing, with a seeded
	// per-stream phase so streams do not arrive in lockstep.
	FixedFPS ArrivalKind = "fixed"
	// Poisson draws exponential inter-arrival times with mean 1/FPS
	// (bursty camera uplinks, network jitter).
	Poisson ArrivalKind = "poisson"
	// Burst gates the FixedFPS grid through a fleet-wide on/off square
	// wave: every stream offers frames at FPS during the first
	// BurstDuty fraction of each BurstPeriod window and goes silent for
	// the rest — the synchronized rush-hour/diurnal load shape that
	// elastic capacity (see serve/cluster) exists to exploit.
	Burst ArrivalKind = "burst"
)

// DropKind selects which frame a full queue evicts.
type DropKind string

// Queue-overflow policies.
const (
	// DropOldest evicts the head of the queue (the frame that has
	// waited longest) to admit the incoming one: freshest-first.
	DropOldest DropKind = "drop-oldest"
	// DropNewest rejects the incoming frame: tail drop.
	DropNewest DropKind = "drop-newest"
)

// Config describes one serving scenario. The zero value of most fields
// selects a sensible default (see Run); Spec is required.
type Config struct {
	// Spec names the detection system every stream runs (one private
	// instance per stream, so tracker state never crosses streams).
	Spec sim.SystemSpec

	// Preset is the synthetic world each stream draws frames from
	// (stream i plays sequence i of the preset). Zero value means
	// video.KITTIPreset().
	Preset video.Preset

	// Seed drives the world generation and the arrival processes.
	Seed int64

	// Streams is the number of concurrent video streams (default 4).
	Streams int

	// FPS is the per-stream frame arrival rate; 0 means the preset's
	// native rate. The world preset is regenerated at this rate so
	// frame content and arrival cadence agree.
	FPS float64

	// StreamFPS overrides the arrival rate per stream (heterogeneous
	// load, e.g. one hot stream among quiet ones). Empty means every
	// stream arrives at FPS; when set, its length must equal Streams
	// and every rate must be positive.
	//
	// A rate-overridden stream's world is regenerated at its own rate
	// (video.Preset.Rescale), so frame content and arrival cadence
	// agree per stream: objects move, live and spawn with the same
	// per-second statistics as the FPS-rate streams, sampled at the
	// override cadence. Streams at exactly FPS keep the base world
	// byte-identical.
	StreamFPS []float64

	// Arrivals selects the arrival process (default FixedFPS).
	Arrivals ArrivalKind

	// BurstPeriod and BurstDuty shape the Burst arrival process: each
	// BurstPeriod-second window offers load only during its first
	// BurstDuty fraction. Defaults (when Arrivals is Burst) are 2s and
	// 0.5; both are ignored by the other arrival processes.
	BurstPeriod float64
	BurstDuty   float64

	// Duration is the virtual seconds of load offered (default 30).
	// Frames in flight when the load ends are drained and counted.
	Duration float64

	// Executors is the number of identical GPU executors fed from the
	// scheduler (default 1).
	Executors int

	// StepWorkers is the number of goroutines the engine fans the real
	// CPU work of a dispatch round — stepping the per-stream detection
	// sessions — out to (default: GOMAXPROCS). Executors are virtual
	// (they shape the discrete-event timeline); StepWorkers is what
	// maps the simulation onto physical cores. Frames gathered in one
	// round are grouped by stream, streams are stepped concurrently
	// (sessions are private per stream), per-stream frame order is
	// preserved, and results merge back in dispatch order — so every
	// value, including 1 (the fully serial engine), produces
	// byte-identical Results. Like sim.Engine.Workers it is an
	// execution knob, not scenario identity, and is never serialized
	// into the Result.
	StepWorkers int

	// Scheduler selects the queue discipline deciding which waiting
	// frame an idle executor serves next and which frame a full queue
	// evicts (default sched.FIFO; see package sched for the policies).
	Scheduler sched.Kind

	// Priorities assigns each stream a priority class (higher is
	// served first); only the priority scheduler reads it. Empty
	// means every stream is class 0; when set, its length must equal
	// Streams.
	Priorities []int

	// BatchSize is the maximum number of queued frames one executor
	// fuses into a single batched launch (default 1: the per-frame
	// service of PR 2, priced launch by launch). At 2+, a dispatch
	// gathers up to this many frames and prices them as one launch
	// via gpumodel.Model.BatchFrames — alpha*ΣW + b — amortizing the
	// per-launch constant b across the batch exactly like region
	// merging amortizes it across regions within a frame.
	BatchSize int

	// QueueCap bounds the number of frames waiting in the shared
	// queue (frames in service excluded). 0 means 4*Streams; negative
	// means unbounded.
	QueueCap int

	// Drop is the queue-overflow policy (default DropOldest).
	Drop DropKind

	// MaxStaleness, when positive, skips any frame that has waited
	// longer than this many seconds at the moment an executor would
	// start it (the result would be too old to act on).
	MaxStaleness float64

	// Reconnect selects how Submit treats a per-stream frame-index
	// regression — a camera that dropped out and came back with
	// restarted numbering (default ReconnectReject, the strict
	// historical contract; see ReconnectPolicy for the alternatives).
	Reconnect ReconnectPolicy

	// Poison selects how Submit treats a corrupt submission — a
	// non-finite arrival time, a negative frame index, or a frame
	// index beyond MaxFrame (default PoisonError; PoisonDrop swallows
	// pills without touching the stream's session or stats).
	Poison PoisonPolicy

	// MaxFrame bounds the frame index Submit accepts; larger indices
	// are poison (the synthetic world grows lazily to the largest
	// index submitted, so an unbounded index is an unbounded
	// allocation). 0 means DefaultMaxFrame.
	MaxFrame int

	// Chaos injects operational faults — camera dropouts, variable-fps
	// clients, clock skew, poison pills — into the preset arrival
	// schedule replayed by Run/ScheduleSource. The zero value is off.
	// Chaos is a pure function of (Config, Seed): a chaotic scenario
	// is exactly as deterministic as a clean one.
	Chaos Chaos

	// FailableExecutors switches the engine to completion-time
	// accounting: a dispatched launch's frames are recorded as served
	// (counters, latency samples, sink events) only when its completion
	// event fires, instead of at dispatch. The two orderings price and
	// count frames identically on a healthy server; the switch exists so
	// Server.FailAt can seize in-flight launches — under dispatch
	// accounting their frames are already in the books the instant they
	// launch, and a failure could not take them back. The cluster router
	// sets it for every shard of a cluster with an active FaultPlan;
	// leave it off otherwise, as the ordering shift can perturb
	// floating-point latency aggregation against historical goldens.
	FailableExecutors bool

	// DegradeDepth, when positive, degrades service to the proposal
	// network only (the refinement pass is shed) whenever at least
	// this many frames are still waiting behind the one being
	// admitted. Only cascade systems can degrade; single-model
	// streams always run in full.
	//
	// Degradation is a timing-model shed: the frame is priced as a
	// proposal-only launch, but the session still steps in full, so
	// tracker state and detection quality are those of the undegraded
	// system. The reported latency/throughput/drop numbers are what a
	// shedding fleet would see on its queues; the accuracy cost of
	// shedding (worse tracks after an overload burst, hence larger
	// refinement regions while recovering) is not modeled.
	DegradeDepth int

	// Control configures the adaptive control plane (see package
	// serve/control): a controller invoked at virtual-clock control
	// ticks that observes the per-stream sliding-window stats and
	// retunes per-stream policy online — operating mode (full /
	// cascade / proposal-only, generalizing the binary DegradeDepth
	// threshold), effective batch size, and EDF deadline budgets. The
	// zero value is off; Kind "nop" selects a controller that decides
	// nothing and schedules nothing, reproducing the controller-less
	// engine byte for byte.
	Control control.Config

	// GPU overrides the timing model; nil means gpumodel.Default().
	GPU *gpumodel.Model

	// Sink, when non-nil, receives one Event per frame outcome
	// (served, dropped, degraded) as the engine decides it. Sinks run
	// synchronously under the server's lock: they must be fast and
	// must not call back into the Server. Never serialized into the
	// Result.
	Sink Sink

	// StatsWindow is the number of most recent served frames whose
	// latencies feed the sliding-window percentiles of Server.Stats
	// (default 256). It does not affect the Result.
	StatsWindow int
}

// withDefaults fills every unset field with its documented default.
// Defaulting never fails; Validate reports what remains invalid.
func (c Config) withDefaults() Config {
	if c.Preset.Name == "" {
		c.Preset = video.KITTIPreset()
	}
	if c.Streams <= 0 {
		c.Streams = 4
	}
	if c.FPS <= 0 {
		c.FPS = c.Preset.FPS
	}
	if c.Arrivals == "" {
		c.Arrivals = FixedFPS
	}
	if c.Arrivals == Burst {
		if c.BurstPeriod <= 0 {
			c.BurstPeriod = 2
		}
		if c.BurstDuty <= 0 {
			c.BurstDuty = 0.5
		}
	}
	if c.Duration <= 0 {
		c.Duration = 30
	}
	if c.Executors <= 0 {
		c.Executors = 1
	}
	if c.StepWorkers <= 0 {
		c.StepWorkers = runtime.GOMAXPROCS(0)
	}
	if c.Scheduler == "" {
		c.Scheduler = sched.FIFO
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 1
	}
	if c.QueueCap == 0 {
		c.QueueCap = 4 * c.Streams
	}
	if c.Drop == "" {
		c.Drop = DropOldest
	}
	if c.Reconnect == "" {
		c.Reconnect = ReconnectReject
	}
	if c.Poison == "" {
		c.Poison = PoisonError
	}
	if c.MaxFrame == 0 {
		c.MaxFrame = DefaultMaxFrame
	}
	if c.Chaos.DropoutRate > 0 && c.Chaos.DropoutMeanLen <= 0 {
		c.Chaos.DropoutMeanLen = 2
	}
	if c.StatsWindow <= 0 {
		c.StatsWindow = 256
	}
	c.Control = c.Control.WithDefaults()
	return c
}

// Normalized returns the config as New and Run actually execute it:
// every unset field replaced by its documented default. Useful for
// layers that build derived configs (serve/cluster shards every stream
// of the normalized base across its shard servers) and for asserting
// what a partially-specified scenario will really run.
func (c Config) Normalized() Config { return c.withDefaults() }

// Validate checks the config exactly as New and Run would see it
// (defaults applied to a copy first) and reports the first violation
// as a field-path error, e.g. "serve: StreamFPS: len 3 != Streams 4".
// A nil error means New will accept the config, short of unknown model
// names — those surface from the detector zoo when the sessions are
// built.
func (c Config) Validate() error {
	return c.withDefaults().validate()
}

// validate checks an already-defaulted config.
func (c Config) validate() error {
	fail := func(field, format string, args ...any) error {
		return fmt.Errorf("serve: %s: %s", field, fmt.Sprintf(format, args...))
	}
	if c.Spec.Kind == "" {
		return fail("Spec.Kind", "required")
	}
	switch c.Spec.Kind {
	case sim.Single, sim.Cascaded, sim.CaTDet:
	default:
		return fail("Spec.Kind", "unknown system kind %q", c.Spec.Kind)
	}
	if c.FPS <= 0 {
		return fail("FPS", "preset %q has no native rate and FPS is unset", c.Preset.Name)
	}
	if c.Arrivals != FixedFPS && c.Arrivals != Poisson && c.Arrivals != Burst {
		return fail("Arrivals", "unknown arrival process %q", c.Arrivals)
	}
	if c.Arrivals == Burst {
		if c.BurstPeriod <= 0 {
			return fail("BurstPeriod", "must be positive, got %v", c.BurstPeriod)
		}
		if c.BurstDuty <= 0 || c.BurstDuty > 1 {
			return fail("BurstDuty", "outside (0,1], got %v", c.BurstDuty)
		}
	}
	if len(c.StreamFPS) > 0 && len(c.StreamFPS) != c.Streams {
		return fail("StreamFPS", "len %d != Streams %d", len(c.StreamFPS), c.Streams)
	}
	for s, fps := range c.StreamFPS {
		if fps <= 0 {
			return fail(fmt.Sprintf("StreamFPS[%d]", s), "must be positive, got %v", fps)
		}
	}
	switch c.Scheduler {
	case sched.FIFO, sched.Fair, sched.Priority, sched.EDF:
	default:
		return fail("Scheduler", "unknown scheduler %q", c.Scheduler)
	}
	if len(c.Priorities) > 0 && len(c.Priorities) != c.Streams {
		return fail("Priorities", "len %d != Streams %d", len(c.Priorities), c.Streams)
	}
	if c.Drop != DropOldest && c.Drop != DropNewest {
		return fail("Drop", "unknown drop policy %q", c.Drop)
	}
	if c.MaxStaleness < 0 {
		return fail("MaxStaleness", "must be non-negative, got %v", c.MaxStaleness)
	}
	if c.DegradeDepth < 0 {
		return fail("DegradeDepth", "must be non-negative, got %v", c.DegradeDepth)
	}
	switch c.Reconnect {
	case ReconnectReject, ReconnectResume, ReconnectReset:
	default:
		return fail("Reconnect", "unknown reconnect policy %q", c.Reconnect)
	}
	switch c.Poison {
	case PoisonError, PoisonDrop:
	default:
		return fail("Poison", "unknown poison policy %q", c.Poison)
	}
	if c.MaxFrame <= 0 {
		return fail("MaxFrame", "must be positive, got %d", c.MaxFrame)
	}
	if c.Chaos.DropoutRate < 0 {
		return fail("Chaos.DropoutRate", "must be non-negative, got %v", c.Chaos.DropoutRate)
	}
	if c.Chaos.DropoutMeanLen < 0 {
		return fail("Chaos.DropoutMeanLen", "must be non-negative, got %v", c.Chaos.DropoutMeanLen)
	}
	if c.Chaos.FPSJitter < 0 || c.Chaos.FPSJitter > 2 {
		return fail("Chaos.FPSJitter", "outside [0,2], got %v", c.Chaos.FPSJitter)
	}
	if c.Chaos.ClockSkew < 0 {
		return fail("Chaos.ClockSkew", "must be non-negative, got %v", c.Chaos.ClockSkew)
	}
	if c.Chaos.PoisonRate < 0 || c.Chaos.PoisonRate > 1 {
		return fail("Chaos.PoisonRate", "outside [0,1], got %v", c.Chaos.PoisonRate)
	}
	if c.Chaos.Renumber && c.Reconnect == ReconnectReject {
		return fail("Chaos.Renumber", "restarted frame numbering needs Reconnect %q or %q, not %q",
			ReconnectResume, ReconnectReset, c.Reconnect)
	}
	if c.Chaos.PoisonRate > 0 && c.Poison != PoisonDrop {
		return fail("Chaos.PoisonRate", "injected pills need Poison %q, not %q", PoisonDrop, c.Poison)
	}
	if err := c.Control.Validate(); err != nil {
		// control.Config.Validate already roots its message at
		// "Control.<Field>"; prefix the package path like every other
		// field-path error here ("serve: Control.Interval: ...").
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

// StreamStats is the outcome of one stream (or, for Result.Fleet, of
// every stream combined).
type StreamStats struct {
	// ID is the stream's sequence identity ("fleet" for the combined
	// row).
	ID string `json:"id"`
	// Arrived is the number of frames the stream offered.
	Arrived int `json:"arrived"`
	// Served is the number of frames that completed service
	// (degraded frames included).
	Served int `json:"served"`
	// DroppedQueue counts frames evicted by the queue-overflow
	// policy; DroppedStale counts frames skipped for exceeding
	// MaxStaleness at admission.
	DroppedQueue int `json:"dropped_queue"`
	DroppedStale int `json:"dropped_stale"`
	// DroppedPoison counts corrupt submissions swallowed under
	// PoisonDrop; pills never reach the queue, so they are outside
	// Arrived and DropRate. Reconnects counts accepted camera
	// reconnects (frame-index regressions) under a non-rejecting
	// Reconnect policy. Both are omitted when zero, which is always
	// the case for a fault-free scenario.
	DroppedPoison int `json:"dropped_poison,omitempty"`
	Reconnects    int `json:"reconnects,omitempty"`
	// FailedOver counts frames seized from this server by a shard kill
	// (Server.FailAt): queued or in-flight when the hardware died,
	// handed back to the cluster to replay or drop. Replayed and
	// DroppedFailover are filled only in merged cluster rows: frames
	// re-submitted to a surviving shard (each replay is subtracted from
	// the merged Arrived so offered load stays the schedule's), and
	// seized frames discarded under the drop failover policy. All three
	// stay 0 — and omitted — on fault-free runs.
	FailedOver      int `json:"failed_over,omitempty"`
	Replayed        int `json:"replayed,omitempty"`
	DroppedFailover int `json:"dropped_failover,omitempty"`
	// Degraded counts served frames that ran proposal-only.
	Degraded int `json:"degraded"`
	// ModeFull counts served frames that ran full-frame refinement
	// (control.ModeFull); zero — and omitted — unless the adaptive
	// control plane promoted the stream.
	ModeFull int `json:"mode_full,omitempty"`
	// Throughput is Served divided by the scenario makespan
	// (Result.LastEventAt), in frames per second. The makespan — not
	// Duration — is the horizon of every time-averaged metric: under
	// overload the drain of in-flight frames extends service well
	// past the offered-load window, and dividing by Duration would
	// overstate the rate the fleet actually sustained.
	Throughput float64 `json:"throughput_fps"`
	// DropRate is (DroppedQueue+DroppedStale)/Arrived.
	DropRate float64 `json:"drop_rate"`
	// Latency summarizes end-to-end (arrival to completion) seconds
	// over served frames.
	Latency LatencySummary `json:"latency"`
}

// Result is the full outcome of one serving scenario. It is plain data
// with a deterministic JSON encoding: rerunning the same Config yields
// byte-identical output.
type Result struct {
	// Scenario identity.
	System       string      `json:"system"`
	Preset       string      `json:"preset"`
	Seed         int64       `json:"seed"`
	Streams      int         `json:"streams"`
	FPS          float64     `json:"fps"`
	StreamFPS    []float64   `json:"stream_fps,omitempty"`
	Arrivals     ArrivalKind `json:"arrivals"`
	BurstPeriod  float64     `json:"burst_period_s,omitempty"`
	BurstDuty    float64     `json:"burst_duty,omitempty"`
	Duration     float64     `json:"duration_s"`
	Executors    int         `json:"executors"`
	Scheduler    sched.Kind  `json:"scheduler"`
	Priorities   []int       `json:"priorities,omitempty"`
	BatchSize    int         `json:"batch_size"`
	QueueCap     int         `json:"queue_cap"`
	Drop         DropKind    `json:"drop_policy"`
	MaxStaleness float64     `json:"max_staleness_s"`
	DegradeDepth int         `json:"degrade_depth"`

	// Fault-tolerance identity, echoed only when it departs from the
	// strict defaults (so fault-free results keep their historical
	// encoding byte for byte): the reconnect and poison policies, a
	// non-default MaxFrame, and the chaos channels when any is on.
	ReconnectPolicy ReconnectPolicy `json:"reconnect_policy,omitempty"`
	PoisonPolicy    PoisonPolicy    `json:"poison_policy,omitempty"`
	MaxFrame        int             `json:"max_frame,omitempty"`
	Chaos           *Chaos          `json:"chaos,omitempty"`

	// Fleet aggregates every stream; PerStream is indexed by stream.
	Fleet     StreamStats   `json:"fleet"`
	PerStream []StreamStats `json:"per_stream"`

	// PerClass aggregates streams by priority class, highest class
	// first (IDs are "class-N"). Present only under the priority
	// scheduler.
	PerClass []StreamStats `json:"per_class,omitempty"`

	// LastEventAt is the scenario makespan: the virtual time of the
	// last event (the final drain completion under overload, the
	// last arrival otherwise). Throughput, AvgQueueDepth and
	// Utilization are all normalized over [0, LastEventAt] — one
	// shared horizon, so the three metrics are mutually consistent.
	LastEventAt float64 `json:"last_event_at_s"`

	// Elasticity bookkeeping, present only when Server.ResizeAt ever
	// ran (a static fleet keeps its historical encoding byte for
	// byte): Resizes counts applied executor-count changes and
	// ExecutorSeconds is the capacity integral ∫ executors(t) dt over
	// the makespan — the quantity a per-executor price multiplies
	// (see gpumodel.Tier and serve/cluster). Utilization divides the
	// busy integral by this capacity integral, so it can transiently
	// exceed 1 when a scale-down preempts capacity under in-flight
	// batches.
	Resizes         int     `json:"resizes,omitempty"`
	ExecutorSeconds float64 `json:"executor_seconds,omitempty"`

	// Adaptive-control bookkeeping, present only when an active
	// controller ran (controller-less and nop-controlled results keep
	// their historical encoding byte for byte): the control config,
	// the number of control ticks fired, and the number of per-stream
	// mode switches applied.
	Control      *control.Config `json:"control,omitempty"`
	ControlTicks int             `json:"control_ticks,omitempty"`
	ModeSwitches int             `json:"mode_switches,omitempty"`

	// Batches counts executor dispatches (batched launches); with
	// BatchSize 1 it equals Fleet.Served.
	Batches int `json:"batches"`

	// Queue and executor diagnostics: time-weighted mean and peak
	// depth of the shared queue, busy fraction of the executors, and
	// the largest single service time observed. The time averages
	// integrate over the makespan (LastEventAt).
	AvgQueueDepth float64 `json:"avg_queue_depth"`
	MaxQueueDepth int     `json:"max_queue_depth"`
	Utilization   float64 `json:"utilization"`
	MaxService    float64 `json:"max_service_s"`
}

// QualityServed is the row's accuracy-proxy headline: served frames
// weighted by the modeled detection quality of the mode each ran in
// (control.Mode.Quality — full 1.0, cascaded 0.95, proposal-only
// 0.60). Two configs serving the same frame count can differ sharply
// here: a fleet that sheds to proposal-only early serves more frames
// at less quality each, and this weighted count is the axis the
// adaptive-vs-static Pareto comparison plots against tail latency.
func (s StreamStats) QualityServed() float64 {
	cascaded := s.Served - s.Degraded - s.ModeFull
	return float64(s.ModeFull)*control.ModeFull.Quality() +
		float64(cascaded)*control.ModeCascade.Quality() +
		float64(s.Degraded)*control.ModeProposal.Quality()
}

// DropSpread is the max-min spread of the per-stream drop rates: the
// fairness headline of a scenario. 0 means every stream shed the same
// fraction of its offered load; a large spread means the scheduler let
// some streams starve while others sailed through.
func (r *Result) DropSpread() float64 {
	if len(r.PerStream) == 0 {
		return 0
	}
	lo, hi := r.PerStream[0].DropRate, r.PerStream[0].DropRate
	for _, st := range r.PerStream[1:] {
		if st.DropRate < lo {
			lo = st.DropRate
		}
		if st.DropRate > hi {
			hi = st.DropRate
		}
	}
	return hi - lo
}
