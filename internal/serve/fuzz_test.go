package serve

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/video"
)

// FuzzSubmit drives Server.Submit with adversarial (stream, frame,
// arriveAt) triples — regressing frames, negative and huge indices,
// NaN/Inf/negative stamps — under every reconnect × poison policy
// combination, and checks the engine's invariants instead of its
// outputs: Submit never panics, a rejected submission leaves the
// server usable, Drain always succeeds, and the books always
// partition (arrived = served + dropped-by-queue + dropped-stale,
// with poison pills counted strictly outside the partition).
//
// The corpus seeds are the historical Submit validation cases; the CI
// smoke run replays the corpus plus a short -fuzztime exploration.
func FuzzSubmit(f *testing.F) {
	// One tuple is two submissions to exercise per-stream ordering,
	// plus the policy selectors.
	seed := func(s1, f1 int, t1 float64, s2, f2 int, t2 float64) {
		for rec := byte(0); rec < 3; rec++ {
			f.Add(s1, f1, t1, s2, f2, t2, rec, true)
		}
		f.Add(s1, f1, t1, s2, f2, t2, byte(0), false)
	}
	seed(0, 0, 0.0, 0, 1, 0.1)                 // clean pair
	seed(0, 5, 1.0, 0, 3, 2.0)                 // frame regression
	seed(0, 0, 1.0, 0, 1, 0.5)                 // time regression
	seed(0, -1, 0.0, 1, 0, 0.0)                // negative frame
	seed(0, 1<<30, 0.0, 0, 2, 0.0)             // frame past MaxFrame
	seed(0, 0, math.NaN(), 0, 0, math.Inf(1))  // non-finite stamps
	seed(-3, 0, 0.0, 99, 0, 0.0)               // streams out of range
	seed(1, 0, -5.0, 1, 0, -5.0)               // negative time, equal frame
	seed(0, 2, 0.0, 0, 2, 0.0)                 // duplicate frame
	seed(1, 4096, 0.25, 1, 4097, math.Inf(-1)) // boundary of the fuzz MaxFrame

	policies := []ReconnectPolicy{ReconnectReject, ReconnectResume, ReconnectReset}
	f.Fuzz(func(t *testing.T, s1, f1 int, t1 float64, s2, f2 int, t2 float64, rec byte, drop bool) {
		cfg := Config{
			Spec: sim.SystemSpec{
				Kind: sim.CaTDet, Proposal: "resnet10a", Refinement: "resnet50",
				Cfg: core.DefaultConfig(),
			},
			Preset:   video.MiniKITTIPreset(),
			Seed:     1,
			Streams:  2,
			FPS:      4,
			Duration: 1,
			// A tight world bound so a fuzzed huge-but-legal index
			// cannot grow a million-frame world per iteration.
			MaxFrame:  4096,
			Reconnect: policies[int(rec)%len(policies)],
		}
		if drop {
			cfg.Poison = PoisonDrop
		}
		srv, err := New(cfg)
		if err != nil {
			t.Fatalf("New rejected a valid config: %v", err)
		}
		defer srv.Close()

		okSubmits := 0
		for _, sub := range []struct {
			stream, frame int
			at            float64
		}{{s1, f1, t1}, {s2, f2, t2}} {
			if err := srv.Submit(sub.stream, sub.frame, sub.at); err == nil {
				okSubmits++
			} else if sub.stream >= 0 && sub.stream < cfg.Streams && drop &&
				(sub.frame < 0 || sub.frame > cfg.MaxFrame || math.IsNaN(sub.at) || math.IsInf(sub.at, 0)) {
				t.Errorf("PoisonDrop did not swallow pill (%d, %d, %v): %v", sub.stream, sub.frame, sub.at, err)
			}
		}
		// A rejected submission must leave the server usable. Under a
		// non-rejecting reconnect policy with PoisonDrop, Submit on an
		// in-range stream can never fail — regressions reconnect,
		// backwards clocks re-stamp, garbage is swallowed — so the
		// follow-up must go through no matter what was fuzzed before
		// it. (Under the strict policies a fuzzed input can legally pin
		// the stream at MaxFrame or a near-max stamp, leaving no
		// acceptable successor, so there is nothing to assert.)
		extra := 0
		if cfg.Reconnect != ReconnectReject && drop {
			if err := srv.Submit(0, cfg.MaxFrame, math.MaxFloat64/2); err != nil {
				t.Errorf("server unusable after fuzzed submissions: %v", err)
			}
			extra = 1
		}
		r, err := srv.Drain(context.Background())
		if err != nil {
			t.Fatalf("Drain failed: %v", err)
		}
		if got := r.Fleet.Served + r.Fleet.DroppedQueue + r.Fleet.DroppedStale; got != r.Fleet.Arrived {
			t.Errorf("books do not partition: served %d + droppedQ %d + droppedStale %d != arrived %d",
				r.Fleet.Served, r.Fleet.DroppedQueue, r.Fleet.DroppedStale, r.Fleet.Arrived)
		}
		if r.Fleet.Arrived > okSubmits+extra {
			t.Errorf("arrived %d exceeds the %d accepted submissions", r.Fleet.Arrived, okSubmits+extra)
		}
		st := srv.Stats()
		if st.Arrived != r.Fleet.Arrived || st.DroppedPoison != r.Fleet.DroppedPoison {
			t.Errorf("Stats (%d arrived, %d poison) disagree with Result (%d, %d)",
				st.Arrived, st.DroppedPoison, r.Fleet.Arrived, r.Fleet.DroppedPoison)
		}
	})
}
