package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/video"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current output")

// goldenConfig is the overload scenario pinned since PR 2: six hot
// streams on one executor with a tight queue cap and stale skip, so
// every backpressure path is exercised.
func goldenConfig() Config {
	return Config{
		Spec: sim.SystemSpec{
			Kind: sim.CaTDet, Proposal: "resnet10a", Refinement: "resnet50",
			Cfg: core.DefaultConfig(),
		},
		Preset:       video.MiniKITTIPreset(),
		Seed:         1,
		Streams:      6,
		FPS:          30,
		Arrivals:     Poisson,
		Duration:     4,
		Executors:    1,
		QueueCap:     4,
		MaxStaleness: 0.3,
	}
}

// TestGoldenFIFO pins the full serving output at sched=fifo, batch=1
// byte-for-byte. Run with -update to rewrite the golden after an
// intentional change; anything else that moves these bytes is a
// regression in the scheduler extraction.
func TestGoldenFIFO(t *testing.T) {
	r := mustRun(t, goldenConfig())
	got, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	path := filepath.Join("testdata", "golden_fifo.json")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("sched=fifo batch=1 output drifted from %s (run with -update if intentional)\ngot:\n%s", path, got)
	}
}

// TestPR2DynamicsUnchanged replays the golden scenario against the
// output captured from the PR 2 loop (before the scheduler was
// extracted) and requires every event-loop quantity — served/dropped
// counts, latencies, drop rates, queue depth, utilization — to match
// exactly. Throughput is excluded by design: PR 2 divided it by
// Duration while depth/utilization divided by the makespan (the mixed
// time horizons this PR fixes); the dynamics it derives from are
// checked via Served.
func TestPR2DynamicsUnchanged(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "golden_pr2.json"))
	if err != nil {
		t.Fatal(err)
	}
	var want Result
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}

	got := mustRun(t, goldenConfig())
	sameStats := func(label string, g, w StreamStats) {
		t.Helper()
		g.Throughput, w.Throughput = 0, 0
		gb := marshal(t, &Result{Fleet: g})
		wb := marshal(t, &Result{Fleet: w})
		if !bytes.Equal(gb, wb) {
			t.Errorf("%s: dynamics drifted from PR 2\n got: %s\nwant: %s", label, gb, wb)
		}
	}
	sameStats("fleet", got.Fleet, want.Fleet)
	if len(got.PerStream) != len(want.PerStream) {
		t.Fatalf("per-stream rows: %d vs %d", len(got.PerStream), len(want.PerStream))
	}
	for i := range want.PerStream {
		sameStats(got.PerStream[i].ID, got.PerStream[i], want.PerStream[i])
	}
	if got.AvgQueueDepth != want.AvgQueueDepth {
		t.Errorf("AvgQueueDepth %v, PR 2 had %v", got.AvgQueueDepth, want.AvgQueueDepth)
	}
	if got.Utilization != want.Utilization {
		t.Errorf("Utilization %v, PR 2 had %v", got.Utilization, want.Utilization)
	}
	if got.MaxQueueDepth != want.MaxQueueDepth {
		t.Errorf("MaxQueueDepth %v, PR 2 had %v", got.MaxQueueDepth, want.MaxQueueDepth)
	}
	if got.MaxService != want.MaxService {
		t.Errorf("MaxService %v, PR 2 had %v", got.MaxService, want.MaxService)
	}
}
