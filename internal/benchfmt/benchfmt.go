// Package benchfmt is the shared schema and parser for the repo's
// benchmark trajectory: the JSON shape of the committed BENCH_PR*.json
// files, the `go test -bench` text parser that produces it (cmd/
// benchjson), and the regression comparison that gates CI (cmd/
// benchdiff).
package benchfmt

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark as printed, sub-benchmarks and any
	// -cpu suffix included (e.g. "BenchmarkServeParallelStep/workers=1-8").
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// NsPerOp, BytesPerOp and AllocsPerOp are the harness quantities;
	// BytesPerOp/AllocsPerOp are present only under -benchmem.
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	// Metrics holds every custom b.ReportMetric unit on the line.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report is the file-level envelope.
type Report struct {
	// Context lines captured from the bench output header.
	Goos   string `json:"goos,omitempty"`
	Goarch string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`

	Benchmarks []Benchmark `json:"benchmarks"`
}

// SameHost reports whether two reports carry identical host context
// (goos, goarch, cpu). Nanosecond comparisons across different hosts
// are noise; allocation counts are not.
func (r *Report) SameHost(o *Report) bool {
	return r.Goos == o.Goos && r.Goarch == o.Goarch && r.CPU == o.CPU
}

// ParseText scans `go test -bench` text output for header context and
// benchmark lines. Non-benchmark lines (pkg/PASS/ok and test chatter)
// are ignored, so whole `go test` output is fine.
func ParseText(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseBenchLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// Read sniffs the input format — a BENCH_*.json report or raw `go test
// -bench` text — and parses accordingly.
func Read(r io.Reader) (*Report, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	trimmed := bytes.TrimLeft(buf, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '{' {
		rep := &Report{}
		if err := json.Unmarshal(buf, rep); err != nil {
			return nil, err
		}
		return rep, nil
	}
	return ParseText(bytes.NewReader(buf))
}

// ReadFile reads one report from a JSON or bench-text file.
func ReadFile(path string) (*Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := Read(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// parseBenchLine parses one "BenchmarkName N value unit ..." line.
// ok=false for Benchmark-prefixed lines that are not results (e.g. a
// bare name echoed by -v).
func parseBenchLine(line string) (Benchmark, bool, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || len(fields)%2 != 0 {
		return Benchmark{}, false, nil
	}
	n, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false, nil
	}
	b := Benchmark{Name: fields[0], Iterations: n}
	seenNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false, fmt.Errorf("bad value %q on line %q", fields[i], line)
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsPerOp = val
			seenNs = true
		case "B/op":
			v := val
			b.BytesPerOp = &v
		case "allocs/op":
			v := val
			b.AllocsPerOp = &v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = val
		}
	}
	if !seenNs {
		return Benchmark{}, false, nil
	}
	return b, true, nil
}

// best folds duplicate entries of one benchmark (e.g. -count runs) into
// the minimum of each quantity: the least-noisy observation.
type best struct {
	ns     float64
	allocs *float64
}

func index(rep *Report) map[string]best {
	m := make(map[string]best, len(rep.Benchmarks))
	for _, b := range rep.Benchmarks {
		cur, ok := m[b.Name]
		if !ok {
			m[b.Name] = best{ns: b.NsPerOp, allocs: b.AllocsPerOp}
			continue
		}
		if b.NsPerOp < cur.ns {
			cur.ns = b.NsPerOp
		}
		if b.AllocsPerOp != nil && (cur.allocs == nil || *b.AllocsPerOp < *cur.allocs) {
			cur.allocs = b.AllocsPerOp
		}
		m[b.Name] = cur
	}
	return m
}

// Regression is one gate violation found by Diff.
type Regression struct {
	Name   string
	Metric string // "ns/op" or "allocs/op"
	Base   float64
	Head   float64
	// Ratio is Head/Base (0 when Base is 0).
	Ratio float64
	// Advisory regressions are reported but do not fail the gate: an
	// ns/op comparison across different hosts is noise, not signal.
	Advisory bool
}

func (r Regression) String() string {
	tag := "FAIL"
	if r.Advisory {
		tag = "warn"
	}
	return fmt.Sprintf("%s  %-55s %-10s %12.0f -> %12.0f  (%+.1f%%)",
		tag, r.Name, r.Metric, r.Base, r.Head, 100*(r.Ratio-1))
}

// allocsJitter is the fractional tolerance of the allocs/op gate.
// Allocation counts are machine-independent but not perfectly
// schedule-independent: benchmarks that fan work across goroutines
// (the parallel engine, step workers) grow per-worker scratch in an
// order that varies run to run, moving totals by a few parts per
// million. 0.1% forgives that jitter while keeping the gate exact
// where it matters — on a hot-path benchmark with a few hundred
// allocs/op, a single extra allocation still fails.
const allocsJitter = 0.001

// Diff gates head against base over the benchmarks both reports pin
// (intersection by name, duplicates folded to their minimum): ns/op may
// not regress by more than threshold (fractional, e.g. 0.15), and
// allocs/op may not regress beyond the allocsJitter guard — allocation
// counts are exact and machine-independent, so there is no noise
// budget beyond scheduling jitter to spend. When the reports come from
// different hosts the ns/op violations are downgraded to advisory;
// allocs/op violations never are. Results are sorted by benchmark
// name. matched reports how many benchmarks were compared.
func Diff(base, head *Report, threshold float64) (regs []Regression, matched int) {
	bi, hi := index(base), index(head)
	sameHost := base.SameHost(head)
	names := make([]string, 0, len(hi))
	for name := range hi {
		if _, ok := bi[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	matched = len(names)
	for _, name := range names {
		b, h := bi[name], hi[name]
		if b.ns > 0 && h.ns > b.ns*(1+threshold) {
			regs = append(regs, Regression{
				Name: name, Metric: "ns/op", Base: b.ns, Head: h.ns,
				Ratio: h.ns / b.ns, Advisory: !sameHost,
			})
		}
		if b.allocs != nil && h.allocs != nil && *h.allocs > *b.allocs*(1+allocsJitter) {
			ratio := 0.0
			if *b.allocs > 0 {
				ratio = *h.allocs / *b.allocs
			}
			regs = append(regs, Regression{
				Name: name, Metric: "allocs/op", Base: *b.allocs, Head: *h.allocs,
				Ratio: ratio,
			})
		}
	}
	return regs, matched
}
