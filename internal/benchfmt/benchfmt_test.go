package benchfmt

import (
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro/internal/serve
cpu: AMD EPYC 7B13
BenchmarkServeOverload  	       3	 4504965 ns/op	       76.11 drop_pct	 1812085 B/op	   12121 allocs/op
BenchmarkServeSteady/fifo-8     	     100	   52104 ns/op	    9200 B/op	      80 allocs/op
BenchmarkNoMem          	     500	    1000 ns/op
garbage line
PASS
ok  	repro/internal/serve	1.2s
`

func parseSample(t *testing.T, text string) *Report {
	t.Helper()
	rep, err := ParseText(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestParseText pins the text parser: header context, harness
// quantities, custom metrics, and tolerance for non-benchmark chatter.
func TestParseText(t *testing.T) {
	rep := parseSample(t, sample)
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.CPU != "AMD EPYC 7B13" {
		t.Errorf("host context wrong: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b := rep.Benchmarks[0]
	if b.Name != "BenchmarkServeOverload" || b.Iterations != 3 || b.NsPerOp != 4504965 {
		t.Errorf("first benchmark wrong: %+v", b)
	}
	if b.AllocsPerOp == nil || *b.AllocsPerOp != 12121 {
		t.Errorf("allocs/op not parsed: %+v", b)
	}
	if b.Metrics["drop_pct"] != 76.11 {
		t.Errorf("custom metric not parsed: %+v", b.Metrics)
	}
	if rep.Benchmarks[2].AllocsPerOp != nil {
		t.Errorf("no-benchmem line grew an allocs pointer: %+v", rep.Benchmarks[2])
	}
}

// TestReadSniffsJSON pins the format sniffing: the same report survives
// a text -> JSON -> Read round trip.
func TestReadSniffsJSON(t *testing.T) {
	rep, err := Read(strings.NewReader(`{"goos":"linux","benchmarks":[{"name":"BenchmarkX","iterations":1,"ns_per_op":42}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 1 || rep.Benchmarks[0].NsPerOp != 42 {
		t.Errorf("JSON read wrong: %+v", rep)
	}
	rep, err = Read(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 3 {
		t.Errorf("text read found %d benchmarks, want 3", len(rep.Benchmarks))
	}
}

// TestDiffGates pins the regression gate: a 2x ns/op slowdown and any
// allocs/op growth fail, small ns drift and improvements pass, and
// benchmarks missing from either side are ignored.
func TestDiffGates(t *testing.T) {
	base := parseSample(t, sample)
	head := parseSample(t, strings.NewReplacer(
		"4504965 ns/op", "9009930 ns/op", // 2x slowdown
		"80 allocs/op", "81 allocs/op", // one extra allocation
		"1000 ns/op", "1100 ns/op", // +10%: inside the 15% budget
	).Replace(sample))
	regs, matched := Diff(base, head, 0.15)
	if matched != 3 {
		t.Errorf("matched %d benchmarks, want 3", matched)
	}
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %+v", len(regs), regs)
	}
	if regs[0].Name != "BenchmarkServeOverload" || regs[0].Metric != "ns/op" || regs[0].Advisory {
		t.Errorf("2x slowdown not gated: %+v", regs[0])
	}
	if regs[1].Name != "BenchmarkServeSteady/fifo-8" || regs[1].Metric != "allocs/op" {
		t.Errorf("alloc growth not gated: %+v", regs[1])
	}

	// Improvements and unchanged benchmarks are clean.
	if regs, _ := Diff(base, base, 0.15); len(regs) != 0 {
		t.Errorf("self-diff found regressions: %+v", regs)
	}
}

// TestDiffHostMismatchDowngrades pins the cross-machine rule: ns/op
// violations become advisory, allocs/op violations never do.
func TestDiffHostMismatchDowngrades(t *testing.T) {
	base := parseSample(t, sample)
	head := parseSample(t, strings.NewReplacer(
		"cpu: AMD EPYC 7B13", "cpu: Apple M2",
		"4504965 ns/op", "9009930 ns/op",
		"80 allocs/op", "81 allocs/op",
	).Replace(sample))
	regs, _ := Diff(base, head, 0.15)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %+v", len(regs), regs)
	}
	if !regs[0].Advisory {
		t.Errorf("cross-host ns/op regression not advisory: %+v", regs[0])
	}
	if regs[1].Advisory {
		t.Errorf("allocs/op regression downgraded by host mismatch: %+v", regs[1])
	}
}

// TestDiffAllocsJitterGuard pins the allocs gate tolerance: a
// few-allocation wobble on a benchmark with hundreds of thousands of
// allocs/op (goroutine scheduling jitter in the fan-out benchmarks) is
// forgiven, while growth beyond 0.1% — and a single extra allocation on
// a small-count hot-path benchmark — still fails.
func TestDiffAllocsJitterGuard(t *testing.T) {
	base := parseSample(t, "BenchmarkBig 1 1000 ns/op 777350 allocs/op\nBenchmarkHot 100 50 ns/op 16 allocs/op\n")

	jitter := parseSample(t, "BenchmarkBig 1 1000 ns/op 777352 allocs/op\nBenchmarkHot 100 50 ns/op 16 allocs/op\n")
	if regs, _ := Diff(base, jitter, 0.15); len(regs) != 0 {
		t.Errorf("scheduling jitter (+2 in 777k allocs) failed the gate: %+v", regs)
	}

	grown := parseSample(t, "BenchmarkBig 1 1000 ns/op 779000 allocs/op\nBenchmarkHot 100 50 ns/op 17 allocs/op\n")
	regs, _ := Diff(base, grown, 0.15)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %+v", len(regs), regs)
	}
	if regs[0].Name != "BenchmarkBig" || regs[0].Metric != "allocs/op" {
		t.Errorf("+0.2%% alloc growth not gated: %+v", regs[0])
	}
	if regs[1].Name != "BenchmarkHot" || regs[1].Metric != "allocs/op" {
		t.Errorf("single extra hot-path allocation not gated: %+v", regs[1])
	}
}

// TestDiffMinOfCounts pins duplicate folding: -count reruns compare by
// their minimum, so a single noisy rerun cannot fail the gate.
func TestDiffMinOfCounts(t *testing.T) {
	base := parseSample(t, "BenchmarkX 10 1000 ns/op 5 allocs/op\n")
	head := parseSample(t, "BenchmarkX 10 5000 ns/op 5 allocs/op\nBenchmarkX 10 1050 ns/op 5 allocs/op\n")
	if regs, _ := Diff(base, head, 0.15); len(regs) != 0 {
		t.Errorf("min-of-counts not applied: %+v", regs)
	}
}
