// Package core implements the paper's detection systems (Figure 1):
// the single-model detector, the two-stage cascaded detector, and
// CaTDet — the cascade with a tracker feeding temporal regions of
// interest back into the refinement network. It also implements the
// operation accounting of Tables 2-3, including the overlapping
// from-tracker / from-proposal-net breakdown of the refinement work.
package core

import (
	"strings"

	"repro/internal/dataset"
	"repro/internal/detector"
	"repro/internal/geom"
	"repro/internal/tracker"
)

// Margin is the pixel margin appended around every proposal before
// feature extraction, "to maintain enough information for the ConvNet"
// (Section 4.3).
const Margin = 30

// OpsBreakdown is the per-frame arithmetic-operation accounting of
// Table 3. RefinementFromTracker and RefinementFromProposal measure the
// refinement cost attributable to each proposal source alone; because
// the sources overlap spatially, they sum to more than Refinement.
type OpsBreakdown struct {
	Proposal               float64
	Refinement             float64
	RefinementFromTracker  float64
	RefinementFromProposal float64
}

// Total returns the system's actual operation count for the frame.
func (b OpsBreakdown) Total() float64 { return b.Proposal + b.Refinement }

// Add accumulates another frame's breakdown.
func (b *OpsBreakdown) Add(o OpsBreakdown) {
	b.Proposal += o.Proposal
	b.Refinement += o.Refinement
	b.RefinementFromTracker += o.RefinementFromTracker
	b.RefinementFromProposal += o.RefinementFromProposal
}

// Scale divides the accumulated breakdown by n (e.g. to report per-frame
// averages).
func (b OpsBreakdown) Scale(n float64) OpsBreakdown {
	if n == 0 {
		return b
	}
	return OpsBreakdown{
		Proposal:               b.Proposal / n,
		Refinement:             b.Refinement / n,
		RefinementFromTracker:  b.RefinementFromTracker / n,
		RefinementFromProposal: b.RefinementFromProposal / n,
	}
}

// FrameOutput is one frame's detections plus cost accounting.
type FrameOutput struct {
	Detections []geom.Scored
	Ops        OpsBreakdown
	// NumProposals is the number of per-RoI head invocations charged to
	// the refinement network (0 for the single-model system).
	NumProposals int
	// Coverage is the fraction of the frame processed by the refinement
	// network (1 for the single-model system).
	Coverage float64
	// Regions are the margin-expanded boxes handed to the refinement
	// network (nil for the single-model system). The GPU timing model
	// merges these into rectangular launches.
	//
	// Ownership: Regions aliases the System's per-frame scratch and is
	// valid only until the System's next Step. Consumers that need it
	// longer (none in this repo do) must copy; Detections is always a
	// fresh slice and safe to retain.
	Regions []geom.Box
}

// System is a causal video detector: Reset begins a sequence, Step
// consumes frames strictly in order.
type System interface {
	Name() string
	Reset(seq *dataset.Sequence)
	Step(f detector.Frame) FrameOutput
}

// scoredOf strips simulation metadata from detector output. The result
// is always freshly allocated — FrameOutput.Detections is retained by
// callers (the experiment harness accumulates it per run).
func scoredOf(dets []detector.Detection) []geom.Scored {
	out := make([]geom.Scored, len(dets))
	for i, d := range dets {
		out[i] = d.Scored
	}
	return out
}

// filterScored appends the Scored views of the detections at or above
// thresh to dst — the fused scoredOf+FilterScore of the cascade hot
// path, so the intermediate copy never materializes.
func filterScored(dst []geom.Scored, dets []detector.Detection, thresh float64) []geom.Scored {
	for _, d := range dets {
		if d.Score >= thresh {
			dst = append(dst, d.Scored)
		}
	}
	return dst
}

// SingleModel runs one detector on every full frame (Figure 1a).
type SingleModel struct {
	Detector *detector.Detector
	name     string
}

// NewSingleModel wraps a detector as a System.
func NewSingleModel(d *detector.Detector) *SingleModel {
	family := "Faster R-CNN"
	if strings.HasPrefix(d.Profile.Name, "retinanet") {
		family = "RetinaNet"
	}
	return &SingleModel{Detector: d, name: d.Profile.Name + ", " + family}
}

// Name implements System.
func (s *SingleModel) Name() string { return s.name }

// Reset implements System; the single-model detector is stateless.
func (s *SingleModel) Reset(*dataset.Sequence) {}

// Step implements System.
func (s *SingleModel) Step(f detector.Frame) FrameOutput {
	r := s.Detector.DetectFull(f)
	return FrameOutput{
		Detections: scoredOf(r.Detections),
		Ops:        OpsBreakdown{Proposal: 0, Refinement: r.Ops},
		Coverage:   1,
	}
}

// Config holds the cascade hyper-parameters shared by Cascaded and
// CaTDet.
type Config struct {
	// CThresh is the proposal network's output confidence threshold;
	// proposals below it are not forwarded (Section 4.3, Figure 6).
	CThresh float64
	// TrackThresh is the confidence threshold for the tracker's input:
	// only refinement detections at or above it update the tracker.
	TrackThresh float64
	// Margin is the pixel margin around proposals; 0 means the paper's
	// default of 30.
	Margin float64
	// MaskCell overrides the region-mask granularity in pixels (0 =
	// geom.DefaultCell).
	MaskCell float64
	// Tracker configures the CaTDet tracker; zero value means
	// tracker.DefaultConfig().
	Tracker *tracker.Config
}

// DefaultConfig returns the settings used for the paper's main tables.
func DefaultConfig() Config {
	return Config{CThresh: 0.1, TrackThresh: 0.25, Margin: Margin}
}

func (c Config) margin() float64 {
	if c.Margin <= 0 {
		return Margin
	}
	return c.Margin
}

// Cascaded is the two-model cascade without a tracker (Figure 1b). A
// system instance carries per-frame scratch, so it must not be stepped
// from multiple goroutines concurrently (sim.SystemFactory builds one
// instance per worker).
type Cascaded struct {
	Proposal   *detector.Detector
	Refinement *detector.Detector
	Cfg        Config
	name       string

	w, h int

	// Per-frame scratch reused across Steps: the region occupancy mask
	// (word-zeroed between frames), the margin-expanded region list
	// returned via FrameOutput.Regions, and the thresholded proposals.
	mask    *geom.Mask
	regions []geom.Box
	props   []geom.Scored
}

// NewCascaded builds the cascade system.
func NewCascaded(proposal, refinement *detector.Detector, cfg Config) *Cascaded {
	return &Cascaded{
		Proposal:   proposal,
		Refinement: refinement,
		Cfg:        cfg,
		name:       proposal.Profile.Name + ", " + refinement.Profile.Name + ", Cascaded",
	}
}

// Name implements System.
func (s *Cascaded) Name() string { return s.name }

// Reset implements System.
func (s *Cascaded) Reset(seq *dataset.Sequence) { s.w, s.h = seq.Width, seq.Height }

// Step implements System.
func (s *Cascaded) Step(f detector.Frame) FrameOutput {
	prop := s.Proposal.DetectFull(f)
	proposals := filterScored(s.props[:0], prop.Detections, s.Cfg.CThresh)
	s.props = proposals

	s.mask = geom.ReuseMask(s.mask, float64(f.Width), float64(f.Height), s.Cfg.MaskCell)
	mask := s.mask
	frame := geom.NewBox(0, 0, float64(f.Width), float64(f.Height))
	regions := s.regions[:0]
	for _, p := range proposals {
		r := p.Box.Expand(s.Cfg.margin()).Intersect(frame)
		mask.AddBox(r)
		regions = append(regions, r)
	}
	s.regions = regions
	ref := s.Refinement.DetectRegions(f, mask, len(proposals))
	return FrameOutput{
		Detections: scoredOf(ref.Detections),
		Ops: OpsBreakdown{
			Proposal:               prop.Ops,
			Refinement:             ref.Ops,
			RefinementFromProposal: ref.Ops,
		},
		NumProposals: len(proposals),
		Coverage:     ref.Coverage,
		Regions:      regions,
	}
}

// CaTDet is the full system of Figure 1c: the cascade plus a tracker
// that predicts regions of interest from historic detections. A system
// instance carries per-frame scratch, so it must not be stepped from
// multiple goroutines concurrently (sim.SystemFactory builds one
// instance per worker).
type CaTDet struct {
	Proposal   *detector.Detector
	Refinement *detector.Detector
	Cfg        Config
	name       string

	trk *tracker.Tracker
	w   int
	h   int

	// Per-frame scratch reused across Steps: the region occupancy mask
	// and the single-source mask of the Table 3 attribution pass (both
	// word-zeroed between uses), the region list returned via
	// FrameOutput.Regions, the thresholded proposals, the tracker's
	// predictions and the confident detections fed back to it.
	mask    *geom.Mask
	srcMask *geom.Mask
	regions []geom.Box
	props   []geom.Scored
	tracked []geom.Scored
	trackIn []geom.Scored
}

// NewCaTDet builds the full CaTDet system.
func NewCaTDet(proposal, refinement *detector.Detector, cfg Config) *CaTDet {
	return &CaTDet{
		Proposal:   proposal,
		Refinement: refinement,
		Cfg:        cfg,
		name:       proposal.Profile.Name + ", " + refinement.Profile.Name + ", CaTDet",
	}
}

// Name implements System.
func (s *CaTDet) Name() string { return s.name }

// Reset implements System: tracker state never crosses sequences.
func (s *CaTDet) Reset(seq *dataset.Sequence) {
	s.w, s.h = seq.Width, seq.Height
	cfg := tracker.DefaultConfig()
	if s.Cfg.Tracker != nil {
		cfg = *s.Cfg.Tracker
	}
	s.trk = tracker.New(cfg, float64(seq.Width), float64(seq.Height))
}

// Tracker exposes the live tracker (nil before Reset); tests and the
// GPU-timing model read it.
func (s *CaTDet) Tracker() *tracker.Tracker { return s.trk }

// Step implements System. The execution loop of Figure 2:
//
//  1. the tracker predicts current-frame locations of known objects;
//  2. the proposal network scans the full frame for new candidates;
//  3. the union of both, with margins, forms the refinement regions;
//  4. the refinement network detects inside the regions only;
//  5. its (confident) detections update the tracker for the next frame.
func (s *CaTDet) Step(f detector.Frame) FrameOutput {
	if s.trk == nil {
		// Step before Reset: synthesize a tracker from frame dims.
		s.Reset(&dataset.Sequence{Width: f.Width, Height: f.Height})
	}
	tracked := s.trk.PredictAppend(s.tracked[:0])
	s.tracked = tracked

	prop := s.Proposal.DetectFull(f)
	proposals := filterScored(s.props[:0], prop.Detections, s.Cfg.CThresh)
	s.props = proposals

	margin := s.Cfg.margin()
	s.mask = geom.ReuseMask(s.mask, float64(f.Width), float64(f.Height), s.Cfg.MaskCell)
	mask := s.mask
	frame := geom.NewBox(0, 0, float64(f.Width), float64(f.Height))
	regions := s.regions[:0]
	for _, p := range proposals {
		r := p.Box.Expand(margin).Intersect(frame)
		mask.AddBox(r)
		regions = append(regions, r)
	}
	for _, p := range tracked {
		r := p.Box.Expand(margin).Intersect(frame)
		mask.AddBox(r)
		regions = append(regions, r)
	}
	s.regions = regions
	nProps := len(proposals) + len(tracked)
	ref := s.Refinement.DetectRegions(f, mask, nProps)
	dets := scoredOf(ref.Detections)

	// Attribution accounting (Table 3): cost if each source had been the
	// only supplier of regions. Overlap makes these sum to more than the
	// actual refinement cost.
	fromTracker := s.sourceOps(f, tracked, margin)
	fromProposal := s.sourceOps(f, proposals, margin)

	// Temporal feedback: confident detections update the tracker.
	s.trackIn = geom.FilterScoreAppend(s.trackIn[:0], dets, s.Cfg.TrackThresh)
	s.trk.Observe(s.trackIn)

	return FrameOutput{
		Detections: dets,
		Ops: OpsBreakdown{
			Proposal:               prop.Ops,
			Refinement:             ref.Ops,
			RefinementFromTracker:  fromTracker,
			RefinementFromProposal: fromProposal,
		},
		NumProposals: nProps,
		Coverage:     ref.Coverage,
		Regions:      regions,
	}
}

// sourceOps prices the refinement work one proposal source would cause
// alone.
func (s *CaTDet) sourceOps(f detector.Frame, boxes []geom.Scored, margin float64) float64 {
	if len(boxes) == 0 {
		return 0
	}
	s.srcMask = geom.ReuseMask(s.srcMask, float64(f.Width), float64(f.Height), s.Cfg.MaskCell)
	m := s.srcMask
	for _, b := range boxes {
		m.AddBox(b.Box.Expand(margin))
	}
	return s.Refinement.Cost.RegionOps(f.Width, f.Height, m.CoveredFraction(), len(boxes))
}
