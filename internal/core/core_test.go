package core

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/detector"
	"repro/internal/geom"
	"repro/internal/video"
)

func miniSeq(t *testing.T) *dataset.Sequence {
	t.Helper()
	p := video.MiniKITTIPreset()
	d := video.Generate(p, 3)
	return &d.Sequences[0]
}

func frameOf(seq *dataset.Sequence, fi int) detector.Frame {
	return detector.Frame{
		SeqID: seq.ID, Index: fi, Width: seq.Width, Height: seq.Height,
		Objects: seq.Frames[fi].Objects,
	}
}

func TestSingleModelOpsConstant(t *testing.T) {
	seq := miniSeq(t)
	sys := NewSingleModel(detector.MustNew("resnet50"))
	sys.Reset(seq)
	want := 254.3e9
	for fi := 0; fi < 10; fi++ {
		out := sys.Step(frameOf(seq, fi))
		if math.Abs(out.Ops.Total()-want)/want > 1e-6 {
			t.Fatalf("frame %d: ops = %.3e, want %.3e", fi, out.Ops.Total(), want)
		}
		if out.Coverage != 1 {
			t.Fatalf("single-model coverage = %v", out.Coverage)
		}
	}
}

func TestCascadedCheaperThanSingle(t *testing.T) {
	seq := miniSeq(t)
	single := NewSingleModel(detector.MustNew("resnet50"))
	casc := NewCascaded(detector.MustNew("resnet10a"), detector.MustNew("resnet50"), DefaultConfig())
	single.Reset(seq)
	casc.Reset(seq)
	var sOps, cOps float64
	for fi := 0; fi < 60; fi++ {
		sOps += single.Step(frameOf(seq, fi)).Ops.Total()
		cOps += casc.Step(frameOf(seq, fi)).Ops.Total()
	}
	if cOps >= sOps/2 {
		t.Fatalf("cascade ops %.3e not well below single %.3e", cOps, sOps)
	}
}

func TestCascadedBreakdownConsistency(t *testing.T) {
	seq := miniSeq(t)
	casc := NewCascaded(detector.MustNew("resnet10a"), detector.MustNew("resnet50"), DefaultConfig())
	casc.Reset(seq)
	for fi := 0; fi < 30; fi++ {
		out := casc.Step(frameOf(seq, fi))
		if out.Ops.Proposal <= 0 {
			t.Fatal("no proposal cost charged")
		}
		if math.Abs(out.Ops.Total()-(out.Ops.Proposal+out.Ops.Refinement)) > 1 {
			t.Fatal("total != proposal + refinement")
		}
		if out.Ops.RefinementFromTracker != 0 {
			t.Fatal("cascade has no tracker contribution")
		}
	}
}

func TestCaTDetBreakdownOverlap(t *testing.T) {
	seq := miniSeq(t)
	cat := NewCaTDet(detector.MustNew("resnet10a"), detector.MustNew("resnet50"), DefaultConfig())
	cat.Reset(seq)
	sawTrackerWork := false
	for fi := 0; fi < 80; fi++ {
		out := cat.Step(frameOf(seq, fi))
		// The two attribution components must each be <= the actual
		// refinement cost, and together cover it (they can only
		// overlap, never miss area).
		if out.Ops.RefinementFromTracker > out.Ops.Refinement+1 {
			t.Fatalf("frame %d: tracker share %.3e exceeds refinement %.3e",
				fi, out.Ops.RefinementFromTracker, out.Ops.Refinement)
		}
		if out.Ops.RefinementFromProposal > out.Ops.Refinement+1 {
			t.Fatalf("frame %d: proposal share exceeds refinement", fi)
		}
		if sum := out.Ops.RefinementFromTracker + out.Ops.RefinementFromProposal; sum < out.Ops.Refinement-1 {
			t.Fatalf("frame %d: shares %.3e fail to cover refinement %.3e", fi, sum, out.Ops.Refinement)
		}
		if out.Ops.RefinementFromTracker > 0 {
			sawTrackerWork = true
		}
	}
	if !sawTrackerWork {
		t.Fatal("tracker never contributed regions in 80 frames")
	}
}

func TestCaTDetResetClearsTracker(t *testing.T) {
	seq := miniSeq(t)
	cat := NewCaTDet(detector.MustNew("resnet10a"), detector.MustNew("resnet50"), DefaultConfig())
	cat.Reset(seq)
	for fi := 0; fi < 30; fi++ {
		cat.Step(frameOf(seq, fi))
	}
	if len(cat.Tracker().Tracks()) == 0 {
		t.Fatal("no tracks formed in 30 frames")
	}
	cat.Reset(seq)
	if len(cat.Tracker().Tracks()) != 0 {
		t.Fatal("Reset leaked tracker state across sequences")
	}
}

func TestCaTDetStepBeforeResetDoesNotPanic(t *testing.T) {
	seq := miniSeq(t)
	cat := NewCaTDet(detector.MustNew("resnet10b"), detector.MustNew("resnet50"), DefaultConfig())
	out := cat.Step(frameOf(seq, 0)) // no Reset
	if out.Ops.Total() <= 0 {
		t.Fatal("no work charged")
	}
}

func TestCaTDetCoverageSmall(t *testing.T) {
	seq := miniSeq(t)
	cat := NewCaTDet(detector.MustNew("resnet10a"), detector.MustNew("resnet50"), DefaultConfig())
	cat.Reset(seq)
	sum := 0.0
	const frames = 60
	for fi := 0; fi < frames; fi++ {
		sum += cat.Step(frameOf(seq, fi)).Coverage
	}
	avg := sum / frames
	if avg <= 0 || avg > 0.6 {
		t.Fatalf("average refinement coverage = %.3f, want small fraction", avg)
	}
}

func TestCaTDetHigherCThreshReducesOps(t *testing.T) {
	seq := miniSeq(t)
	run := func(cthresh float64) float64 {
		cfg := DefaultConfig()
		cfg.CThresh = cthresh
		cat := NewCaTDet(detector.MustNew("resnet10a"), detector.MustNew("resnet50"), cfg)
		cat.Reset(seq)
		total := 0.0
		for fi := 0; fi < 60; fi++ {
			total += cat.Step(frameOf(seq, fi)).Ops.Total()
		}
		return total
	}
	low, high := run(0.01), run(0.6)
	if high >= low {
		t.Fatalf("raising C-thresh did not reduce ops: %.3e -> %.3e", low, high)
	}
}

func TestSystemNames(t *testing.T) {
	p, r := detector.MustNew("resnet10a"), detector.MustNew("resnet50")
	if NewSingleModel(r).Name() == "" || NewCascaded(p, r, DefaultConfig()).Name() == "" ||
		NewCaTDet(p, r, DefaultConfig()).Name() == "" {
		t.Fatal("empty system name")
	}
}

func TestMarginDefault(t *testing.T) {
	c := Config{}
	if c.margin() != Margin {
		t.Fatalf("default margin = %v", c.margin())
	}
	c.Margin = 10
	if c.margin() != 10 {
		t.Fatalf("explicit margin = %v", c.margin())
	}
}

func TestOpsBreakdownArithmetic(t *testing.T) {
	var b OpsBreakdown
	b.Add(OpsBreakdown{Proposal: 10, Refinement: 20, RefinementFromTracker: 8, RefinementFromProposal: 15})
	b.Add(OpsBreakdown{Proposal: 10, Refinement: 20, RefinementFromTracker: 8, RefinementFromProposal: 15})
	if b.Total() != 60 {
		t.Fatalf("total = %v", b.Total())
	}
	s := b.Scale(2)
	if s.Proposal != 10 || s.RefinementFromProposal != 15 {
		t.Fatalf("scale = %+v", s)
	}
	if z := b.Scale(0); z != b {
		t.Fatal("scale by zero should be identity")
	}
}

// The tracker must rescue objects the proposal network misses: compare
// the set of ground-truth tracks ever detected by Cascaded vs CaTDet
// with the same weak proposal network.
func TestCaTDetRecallsMoreTracksThanCascaded(t *testing.T) {
	p := video.KITTIPreset()
	p.NumSequences = 2
	p.FramesPerSeq = 250
	ds := video.Generate(p, 11)

	detected := func(sysName string) map[[2]int]bool {
		found := map[[2]int]bool{}
		for si := range ds.Sequences {
			seq := &ds.Sequences[si]
			var sys System
			prop, ref := detector.MustNew("resnet10b"), detector.MustNew("resnet50")
			if sysName == "cascaded" {
				sys = NewCascaded(prop, ref, DefaultConfig())
			} else {
				sys = NewCaTDet(prop, ref, DefaultConfig())
			}
			sys.Reset(seq)
			for fi := range seq.Frames {
				out := sys.Step(frameOf(seq, fi))
				for _, o := range seq.Frames[fi].Objects {
					if !dataset.Hard.Eligible(o) {
						continue
					}
					for _, det := range out.Detections {
						if det.Class == int(o.Class) && det.Score >= 0.5 &&
							geom.IoU(det.Box, o.Box) >= o.Class.MatchIoU() {
							found[[2]int{si, o.TrackID}] = true
							break
						}
					}
				}
			}
		}
		return found
	}
	casc := detected("cascaded")
	cat := detected("catdet")
	if len(cat) < len(casc) {
		t.Fatalf("CaTDet found %d tracks, cascaded %d — temporal feedback should help", len(cat), len(casc))
	}
}
