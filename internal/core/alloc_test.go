package core

import (
	"testing"

	"repro/internal/detector"
)

// stepBudget measures the steady-state per-frame allocation count of a
// system over the mini world after a warm-up pass.
func stepBudget(t *testing.T, sys System) float64 {
	t.Helper()
	seq := miniSeq(t)
	sys.Reset(seq)
	n := len(seq.Frames)
	for fi := 0; fi < n; fi++ { // warm every scratch buffer
		sys.Step(frameOf(seq, fi))
	}
	sys.Reset(seq)
	fi := 0
	return testing.AllocsPerRun(n-1, func() {
		sys.Step(frameOf(seq, fi))
		fi = (fi + 1) % n
	})
}

// TestStepAllocBudgets pins the steady-state per-frame allocation
// budget of each system's Step. The remaining allocations are the
// caller-retained Detections slices (one per detector pass plus the
// stripped copy) and occasional track spawns; the former per-frame
// churn — masks, cost matrices, NMS bookkeeping, region lists — must
// stay on reused scratch. Budgets have ~2x headroom over current
// measurements so real regressions fail while noise does not.
func TestStepAllocBudgets(t *testing.T) {
	cases := []struct {
		name   string
		sys    System
		budget float64
	}{
		{"single", NewSingleModel(detector.MustNew("resnet50")), 4},
		{"cascaded", NewCascaded(detector.MustNew("resnet10a"), detector.MustNew("resnet50"), DefaultConfig()), 8},
		{"catdet", NewCaTDet(detector.MustNew("resnet10a"), detector.MustNew("resnet50"), DefaultConfig()), 16},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if n := stepBudget(t, c.sys); n > c.budget {
				t.Errorf("%s Step allocates %v per frame at steady state, budget is %v", c.name, n, c.budget)
			}
		})
	}
}
