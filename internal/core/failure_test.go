package core

// Failure-injection and edge-case tests: the systems must behave
// sensibly on degenerate inputs — empty frames, empty sequences,
// single-frame clips, objectless worlds — because real deployments hit
// all of these.

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/detector"
	"repro/internal/geom"
)

func emptyFrame(fi int) detector.Frame {
	return detector.Frame{SeqID: "empty", Index: fi, Width: 1242, Height: 375}
}

func allSystems() []System {
	cfg := DefaultConfig()
	return []System{
		NewSingleModel(detector.MustNew("resnet50")),
		NewCascaded(detector.MustNew("resnet10a"), detector.MustNew("resnet50"), cfg),
		NewCaTDet(detector.MustNew("resnet10a"), detector.MustNew("resnet50"), cfg),
	}
}

func TestSystemsHandleObjectlessFrames(t *testing.T) {
	seq := &dataset.Sequence{ID: "empty", Width: 1242, Height: 375}
	for _, sys := range allSystems() {
		sys.Reset(seq)
		for fi := 0; fi < 20; fi++ {
			out := sys.Step(emptyFrame(fi))
			if out.Ops.Total() < 0 {
				t.Fatalf("%s: negative ops", sys.Name())
			}
			// False positives may appear; no true detections should
			// match anything, and nothing should panic.
			for _, d := range out.Detections {
				if !d.Box.Valid() {
					t.Fatalf("%s: invalid detection box", sys.Name())
				}
			}
		}
	}
}

func TestCascadeZeroProposalsCostsOnlyProposalNet(t *testing.T) {
	// With an impossibly high C-thresh nothing is forwarded: the
	// refinement must cost zero and the output must be empty.
	cfg := DefaultConfig()
	cfg.CThresh = 1.1
	sys := NewCascaded(detector.MustNew("resnet10a"), detector.MustNew("resnet50"), cfg)
	seq := &dataset.Sequence{ID: "s", Width: 1242, Height: 375}
	sys.Reset(seq)
	out := sys.Step(detector.Frame{SeqID: "s", Index: 0, Width: 1242, Height: 375,
		Objects: []dataset.Object{{TrackID: 1, Class: dataset.Car, Box: bigBox()}}})
	if out.Ops.Refinement != 0 {
		t.Fatalf("refinement charged %.2e with zero proposals", out.Ops.Refinement)
	}
	if len(out.Detections) != 0 {
		t.Fatalf("detections from an empty region set: %v", out.Detections)
	}
	if out.Ops.Proposal <= 0 {
		t.Fatal("proposal net must still be charged")
	}
}

func TestCaTDetRecoversAfterBlackout(t *testing.T) {
	// Inject a "sensor blackout": frames with no objects mid-sequence.
	// The tracker must drain its tracks and the system must re-detect
	// afterwards without residue from before the blackout.
	sys := NewCaTDet(detector.MustNew("resnet10a"), detector.MustNew("resnet50"), DefaultConfig())
	seq := &dataset.Sequence{ID: "blk", Width: 1242, Height: 375}
	sys.Reset(seq)
	obj := dataset.Object{TrackID: 9, Class: dataset.Car, Box: bigBox()}
	for fi := 0; fi < 15; fi++ {
		sys.Step(detector.Frame{SeqID: "blk", Index: fi, Width: 1242, Height: 375,
			Objects: []dataset.Object{obj}})
	}
	if len(sys.Tracker().Tracks()) == 0 {
		t.Fatal("no track before blackout")
	}
	for fi := 15; fi < 40; fi++ {
		sys.Step(detector.Frame{SeqID: "blk", Index: fi, Width: 1242, Height: 375})
	}
	if n := len(sys.Tracker().Tracks()); n != 0 {
		t.Fatalf("%d stale tracks survived a 25-frame blackout", n)
	}
	detected := false
	for fi := 40; fi < 60 && !detected; fi++ {
		out := sys.Step(detector.Frame{SeqID: "blk", Index: fi, Width: 1242, Height: 375,
			Objects: []dataset.Object{obj}})
		detected = len(out.Detections) > 0
	}
	if !detected {
		t.Fatal("system never re-detected after blackout")
	}
}

func TestSingleFrameSequence(t *testing.T) {
	seq := &dataset.Sequence{ID: "one", Width: 1242, Height: 375,
		Frames: []dataset.Frame{{Index: 0, Labeled: true}}}
	for _, sys := range allSystems() {
		sys.Reset(seq)
		out := sys.Step(detector.Frame{SeqID: "one", Index: 0, Width: 1242, Height: 375})
		if out.Ops.Total() < 0 {
			t.Fatalf("%s failed on a single-frame sequence", sys.Name())
		}
	}
}

func TestTinyFrameDimensions(t *testing.T) {
	// A 16x16 frame: masks, costs and detectors must not divide by zero.
	seq := &dataset.Sequence{ID: "tiny", Width: 16, Height: 16}
	for _, sys := range allSystems() {
		sys.Reset(seq)
		out := sys.Step(detector.Frame{SeqID: "tiny", Index: 0, Width: 16, Height: 16})
		if out.Ops.Total() < 0 || out.Coverage < 0 || out.Coverage > 1 {
			t.Fatalf("%s: bad output on tiny frame: %+v", sys.Name(), out.Ops)
		}
	}
}

func bigBox() geom.Box {
	return geom.NewBox(400, 150, 560, 250)
}
