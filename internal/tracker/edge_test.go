package tracker

// Edge-case and failure-injection tests for the tracker: degenerate
// boxes, duplicate detections, adversarial flicker, and load.

import (
	"testing"

	"repro/internal/geom"
)

func TestDegenerateDetectionIgnored(t *testing.T) {
	tr := New(DefaultConfig(), 1242, 375)
	tr.Observe([]geom.Scored{{Box: geom.Box{X1: 100, Y1: 100, X2: 100, Y2: 150}, Score: 0.9, Class: 0}})
	if len(tr.Tracks()) != 0 {
		t.Fatal("zero-width detection spawned a track")
	}
}

func TestDuplicateDetectionsSpawnSeparateTracks(t *testing.T) {
	// Two identical detections in one frame: one matches (or spawns),
	// the other must not silently vanish into the same track — the
	// Hungarian assignment uses each detection at most once.
	tr := New(DefaultConfig(), 1242, 375)
	d0 := det(100, 100, 40, 30, 0)
	tr.Observe([]geom.Scored{d0, d0})
	if len(tr.Tracks()) != 2 {
		t.Fatalf("duplicate detections produced %d tracks, want 2", len(tr.Tracks()))
	}
	// On the next frame with a single detection, exactly one track
	// matches; the other decays away.
	tr.Observe([]geom.Scored{det(102, 100, 40, 30, 0)})
	tr.Observe(nil)
	tr.Observe(nil)
	tr.Observe(nil)
	if n := len(tr.Tracks()); n > 1 {
		t.Fatalf("%d tracks survive, want <= 1", n)
	}
}

func TestFlickeringDetectionSurvivesWithConfidence(t *testing.T) {
	// A detection appearing every other frame: the adaptive confidence
	// scheme (+1 match / -1 miss) should keep the track alive once
	// established.
	tr := New(DefaultConfig(), 1242, 375)
	alivePortion := 0
	for fi := 0; fi < 40; fi++ {
		if fi%2 == 0 {
			tr.Observe([]geom.Scored{det(100+float64(fi), 100, 40, 30, 0)})
		} else {
			tr.Observe(nil)
		}
		if fi >= 4 && len(tr.Tracks()) > 0 {
			alivePortion++
		}
	}
	if alivePortion < 30 {
		t.Fatalf("flickering object tracked in only %d/36 established frames", alivePortion)
	}
	// Identity must be stable: exactly one track ID used.
	if tr.nextID > 3 {
		t.Fatalf("flicker fragmented into %d track IDs", tr.nextID-1)
	}
}

func TestManySimultaneousObjects(t *testing.T) {
	// 100 well-separated objects per frame: association must stay
	// correct and not explode combinatorially.
	tr := New(DefaultConfig(), 10000, 10000)
	mk := func(off float64) []geom.Scored {
		var dets []geom.Scored
		for i := 0; i < 100; i++ {
			x := float64(i%10)*900 + 50 + off
			y := float64(i/10)*900 + 50
			dets = append(dets, geom.Scored{Box: geom.NewBoxCenter(x, y, 60, 40), Score: 0.9, Class: i % 2})
		}
		return dets
	}
	tr.Observe(mk(0))
	if len(tr.Tracks()) != 100 {
		t.Fatalf("tracks = %d, want 100", len(tr.Tracks()))
	}
	tr.Observe(mk(5))
	if len(tr.Tracks()) != 100 {
		t.Fatalf("after second frame tracks = %d, want 100 (no fragmentation)", len(tr.Tracks()))
	}
}

func TestNegativeCoordinatesHandled(t *testing.T) {
	// Predictions can extrapolate off-frame; observing boxes partially
	// outside the frame must not corrupt state.
	tr := New(DefaultConfig(), 1242, 375)
	tr.Observe([]geom.Scored{{Box: geom.NewBox(-20, 100, 40, 150), Score: 0.9, Class: 0}})
	tr.Observe([]geom.Scored{{Box: geom.NewBox(-30, 100, 30, 150), Score: 0.9, Class: 0}})
	for _, tk := range tr.Tracks() {
		if tk.S <= 0 {
			t.Fatal("track width went non-positive")
		}
	}
	// Prediction moves further out and is eventually filtered.
	preds := tr.Predict()
	for _, p := range preds {
		if !p.Box.Valid() {
			t.Fatal("invalid prediction box")
		}
	}
}

func TestShrinkingTrackClampsWidth(t *testing.T) {
	// A rapidly shrinking object: the predicted width S+VS could go
	// negative; PredictedBox must clamp it.
	tr := New(DefaultConfig(), 1242, 375)
	tr.Observe([]geom.Scored{det(100, 100, 60, 40, 0)})
	tr.Observe([]geom.Scored{det(100, 100, 20, 14, 0)})
	tr.Observe([]geom.Scored{det(100, 100, 4, 3, 0)})
	for _, tk := range tr.Tracks() {
		b := tk.PredictedBox()
		if b.Width() < 0 || !b.Valid() {
			t.Fatalf("invalid predicted box %v", b)
		}
	}
}
