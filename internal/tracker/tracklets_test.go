package tracker

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/video"
)

func TestTrackletsDisabledByDefault(t *testing.T) {
	tr := New(DefaultConfig(), 1242, 375)
	tr.Observe([]geom.Scored{det(100, 100, 40, 30, 0)})
	tr.Observe([]geom.Scored{det(105, 100, 40, 30, 0)})
	if got := tr.Tracklets(0); got != nil {
		t.Fatalf("tracklets recorded without EnableTracklets: %v", got)
	}
}

func TestTrackletRecordsTrajectory(t *testing.T) {
	tr := New(DefaultConfig(), 1242, 375)
	tr.EnableTracklets()
	for i := 0; i < 5; i++ {
		tr.Observe([]geom.Scored{det(100+float64(i)*10, 100, 40, 30, 0)})
	}
	tls := tr.Tracklets(1)
	if len(tls) != 1 {
		t.Fatalf("tracklets = %d, want 1", len(tls))
	}
	tl := tls[0]
	if tl.Len() != 5 {
		t.Fatalf("observations = %d, want 5", tl.Len())
	}
	for i := 1; i < tl.Len(); i++ {
		if tl.Frames[i] != tl.Frames[i-1]+1 {
			t.Fatalf("frames not consecutive: %v", tl.Frames)
		}
		cx0, _ := tl.Boxes[i-1].Center()
		cx1, _ := tl.Boxes[i].Center()
		if cx1 <= cx0 {
			t.Fatalf("trajectory not moving right: %v -> %v", cx0, cx1)
		}
	}
}

func TestTrackletGapsOnMiss(t *testing.T) {
	tr := New(DefaultConfig(), 1242, 375)
	tr.EnableTracklets()
	tr.Observe([]geom.Scored{det(100, 100, 40, 30, 0)})
	tr.Observe([]geom.Scored{det(105, 100, 40, 30, 0)})
	tr.Observe([]geom.Scored{det(110, 100, 40, 30, 0)})
	tr.Observe(nil) // miss
	tr.Observe([]geom.Scored{det(120, 100, 40, 30, 0)})
	tls := tr.Tracklets(1)
	if len(tls) != 1 {
		t.Fatalf("tracklets = %d, want 1 (re-acquired)", len(tls))
	}
	frames := tls[0].Frames
	want := []int{0, 1, 2, 4}
	if len(frames) != len(want) {
		t.Fatalf("frames = %v, want %v", frames, want)
	}
	for i := range want {
		if frames[i] != want[i] {
			t.Fatalf("frames = %v, want %v", frames, want)
		}
	}
}

func TestTrackletsMinLengthFilter(t *testing.T) {
	tr := New(DefaultConfig(), 1242, 375)
	tr.EnableTracklets()
	// A persistent object and a one-frame blip.
	tr.Observe([]geom.Scored{det(100, 100, 40, 30, 0), det(800, 200, 30, 30, 1)})
	tr.Observe([]geom.Scored{det(105, 100, 40, 30, 0)})
	tr.Observe([]geom.Scored{det(110, 100, 40, 30, 0)})
	if got := len(tr.Tracklets(2)); got != 1 {
		t.Fatalf("min-length filter kept %d, want 1", got)
	}
	if got := len(tr.Tracklets(1)); got != 2 {
		t.Fatalf("unfiltered = %d, want 2", got)
	}
}

func TestTrackletsClearedOnReset(t *testing.T) {
	tr := New(DefaultConfig(), 1242, 375)
	tr.EnableTracklets()
	tr.Observe([]geom.Scored{det(100, 100, 40, 30, 0)})
	tr.Reset()
	if got := tr.Tracklets(0); got != nil {
		t.Fatalf("tracklets survived Reset: %v", got)
	}
	// Recording remains enabled after Reset.
	tr.Observe([]geom.Scored{det(100, 100, 40, 30, 0)})
	if got := len(tr.Tracklets(1)); got != 1 {
		t.Fatalf("recording disabled by Reset")
	}
}

// Feeding ground truth from the synthetic world, tracklet identities
// should be stable: the number of tracklets should be comparable to
// the number of ground-truth tracks, not explode with fragmentation.
func TestTrackletFragmentationBounded(t *testing.T) {
	p := video.MiniKITTIPreset()
	d := video.Generate(p, 5)
	seq := &d.Sequences[0]
	tr := New(DefaultConfig(), float64(seq.Width), float64(seq.Height))
	tr.EnableTracklets()
	for fi := range seq.Frames {
		var dets []geom.Scored
		for _, o := range seq.Frames[fi].Objects {
			dets = append(dets, geom.Scored{Box: o.Box, Score: 1, Class: int(o.Class)})
		}
		tr.Observe(dets)
	}
	gtTracks := len(seq.Tracks())
	got := len(tr.Tracklets(2))
	if got > 2*gtTracks {
		t.Fatalf("%d tracklets for %d ground-truth tracks: heavy fragmentation", got, gtTracks)
	}
	if got == 0 {
		t.Fatal("no tracklets recorded")
	}
}
