// Package tracker implements CaTDet's SORT-inspired tracker (Section
// 4.1): per-class Hungarian association on negative-IoU costs, an
// exponential-decay motion model (Eq. 1-3) in place of SORT's Kalman
// filter, an adaptive match/miss confidence scheme for track retention,
// and prediction filtering tuned to minimize the refinement network's
// workload. A Kalman-filter motion model is included for the ablation
// benches.
//
// Unlike a typical tracking system, the tracker's *output* here is the
// predicted next-frame locations — the regions of interest handed to the
// refinement network — not tracklets.
package tracker

import (
	"sort"

	"repro/internal/geom"
	"repro/internal/hungarian"
)

// MotionModel selects the state-update rule.
type MotionModel int

// Motion models. ExponentialDecay is the paper's choice; Kalman is the
// SORT original, kept for the ablation study.
const (
	ExponentialDecay MotionModel = iota
	Kalman
)

// Config holds the tracker hyper-parameters. The defaults are the
// paper's published settings.
type Config struct {
	// Eta is the exponential-decay coefficient of Eq. 1. The paper sets
	// 0.7 and notes robustness to a wide range.
	Eta float64

	// IoUThreshold is beta: association pairs with IoU <= beta are
	// non-relevant regardless of the Hungarian solution. The paper uses 0.
	IoUThreshold float64

	// Confidence scheme: a new track starts at InitialConfidence; every
	// match adds 1 up to MaxConfidence; every miss subtracts 1; the
	// track is discarded when confidence drops below zero.
	InitialConfidence int
	MaxConfidence     int

	// Prediction filters (Section 4.1): predictions narrower than
	// MinPredWidth pixels, or with less than MinVisibleFrac of their
	// area inside the frame, are not forwarded to the refinement net.
	MinPredWidth   float64
	MinVisibleFrac float64

	// PerClass associates detections class-by-class (the paper's rule).
	// Setting it false merges all classes into one assignment problem
	// (ablation).
	PerClass bool

	// Motion selects the state-update rule.
	Motion MotionModel

	// Kalman noise parameters (used only with Motion == Kalman).
	KalmanProcessNoise     float64
	KalmanMeasurementNoise float64
}

// DefaultConfig returns the paper's settings.
func DefaultConfig() Config {
	return Config{
		Eta:                    0.7,
		IoUThreshold:           0,
		InitialConfidence:      1,
		MaxConfidence:          3,
		MinPredWidth:           10,
		MinVisibleFrac:         0.5,
		PerClass:               true,
		Motion:                 ExponentialDecay,
		KalmanProcessNoise:     1.0,
		KalmanMeasurementNoise: 1.0,
	}
}

// Track is the internal state of one tracked object: position vector
// x = [x, y, s] (center and width), velocity, aspect ratio r, and the
// adaptive confidence counter.
type Track struct {
	ID    int
	Class int

	X, Y, S    float64 // state x (center, width)
	VX, VY, VS float64 // state x-dot
	R          float64 // aspect (height / width)

	Confidence int
	Age        int // frames since creation
	Matches    int // total matched frames
	Misses     int // consecutive missed frames

	// Kalman covariance diagonals (position, velocity) per dimension;
	// used only under the Kalman motion model.
	pvar, vvar float64
}

// PredictedBox returns the track's predicted location for the next
// frame: x' = x + x-dot, r' = r (Eq. 2-3).
func (t *Track) PredictedBox() geom.Box {
	w := t.S + t.VS
	if w < 0 {
		w = 0
	}
	return geom.NewBoxCenter(t.X+t.VX, t.Y+t.VY, w, w*t.R)
}

// CurrentBox returns the track's current-frame box estimate.
func (t *Track) CurrentBox() geom.Box {
	return geom.NewBoxCenter(t.X, t.Y, t.S, t.S*t.R)
}

// Tracker carries the live tracks for one video sequence. A Tracker
// owns per-frame scratch buffers, so one instance must not be observed
// from multiple goroutines concurrently.
type Tracker struct {
	cfg    Config
	frameW float64
	frameH float64
	tracks []*Track
	nextID int

	// Per-frame scratch, reused across Observe/Predict calls so the
	// steady-state association path allocates nothing: the assignment
	// solver workspace, the flat cost matrix, candidate index lists,
	// match flags, the per-frame class list and the prediction buffer.
	scratch struct {
		solver                   hungarian.Solver
		cost                     []float64
		ti, di                   []int
		matchedTrack, matchedDet []bool
		classes                  []int
	}

	// Optional tracklet recording (see tracklets.go).
	recordTracklets bool
	tracklets       map[int]*Tracklet
	trackletOrder   []int
	frameCounter    int
}

// New creates a tracker for a frameW-by-frameH video.
func New(cfg Config, frameW, frameH float64) *Tracker {
	return &Tracker{cfg: cfg, frameW: frameW, frameH: frameH, nextID: 1}
}

// Reset discards all tracks and recorded tracklets (call between
// sequences).
func (t *Tracker) Reset() {
	t.tracks = nil
	t.nextID = 1
	t.tracklets = nil
	t.trackletOrder = nil
	t.frameCounter = 0
}

// Tracks exposes the live tracks (read-only use expected).
func (t *Tracker) Tracks() []*Track { return t.tracks }

// Observe ingests the current frame's detections: it associates them
// with the tracks' predictions, updates matched tracks, coasts missed
// tracks, spawns emerging ones and discards tracks whose confidence
// falls below zero.
//
//detlint:allocfree
func (t *Tracker) Observe(dets []geom.Scored) {
	defer func() { t.frameCounter++ }()
	matchedTrack := resetBools(&t.scratch.matchedTrack, len(t.tracks))
	matchedDet := resetBools(&t.scratch.matchedDet, len(dets))

	if t.cfg.PerClass {
		// Classes participate independently — a class's assignment only
		// touches that class's tracks and detections — so the iteration
		// order across classes cannot change the outcome. Sorted unique
		// classes in a reused buffer replace the former per-frame map.
		classes := t.scratch.classes[:0]
		for _, tr := range t.tracks {
			classes = append(classes, tr.Class)
		}
		for _, d := range dets {
			classes = append(classes, d.Class)
		}
		sort.Ints(classes)
		t.scratch.classes = classes
		for i, c := range classes {
			if i > 0 && classes[i-1] == c {
				continue
			}
			t.associate(dets, matchedTrack, matchedDet, &c)
		}
	} else {
		t.associate(dets, matchedTrack, matchedDet, nil)
	}

	// Missed tracks: keep motion constant (coast along the prediction)
	// and decay confidence.
	kept := t.tracks[:0]
	for i, tr := range t.tracks {
		tr.Age++
		if !matchedTrack[i] {
			tr.Misses++
			tr.Confidence--
			if tr.Confidence < 0 {
				continue
			}
			// Coast: adopt the prediction as the new state; velocity
			// unchanged ("the motion is kept constant").
			tr.X += tr.VX
			tr.Y += tr.VY
			if tr.S+tr.VS > 0 {
				tr.S += tr.VS
			}
		}
		kept = append(kept, tr)
	}
	t.tracks = kept

	// Emerging objects: unmatched detections start new tracks with zero
	// motion.
	for j, d := range dets {
		if matchedDet[j] {
			continue
		}
		w := d.Box.Width()
		if w <= 0 {
			continue
		}
		cx, cy := d.Box.Center()
		//detlint:ok spawning an emerging track is the cold path; steady state spawns none (alloc budget pins 0)
		tr := &Track{
			ID: t.nextID, Class: d.Class,
			X: cx, Y: cy, S: w, R: d.Box.AspectRatio(),
			Confidence: t.cfg.InitialConfidence,
			pvar:       t.cfg.KalmanMeasurementNoise,
			vvar:       10 * t.cfg.KalmanProcessNoise,
		}
		//detlint:ok track-list growth happens only when a track spawns, which is itself cold
		t.tracks = append(t.tracks, tr)
		t.nextID++
		t.recordMatch(tr, d.Box)
	}
}

// associate runs one Hungarian assignment between track predictions and
// detections. If class is non-nil only that class participates. The
// candidate index lists, the flat cost matrix and the solver workspace
// are all reused scratch.
//
//detlint:allocfree
func (t *Tracker) associate(dets []geom.Scored, matchedTrack, matchedDet []bool, class *int) {
	ti, di := t.scratch.ti[:0], t.scratch.di[:0]
	for i, tr := range t.tracks {
		if !matchedTrack[i] && (class == nil || tr.Class == *class) {
			ti = append(ti, i)
		}
	}
	for j, d := range dets {
		if !matchedDet[j] && (class == nil || d.Class == *class) {
			di = append(di, j)
		}
	}
	t.scratch.ti, t.scratch.di = ti, di
	if len(ti) == 0 || len(di) == 0 {
		return
	}
	if cap(t.scratch.cost) < len(ti)*len(di) {
		t.scratch.cost = make([]float64, len(ti)*len(di))
	}
	cost := t.scratch.cost[:len(ti)*len(di)]
	for a, i := range ti {
		pred := t.tracks[i].PredictedBox()
		row := cost[a*len(di):]
		for b, j := range di {
			iou := geom.IoU(pred, dets[j].Box)
			if iou <= t.cfg.IoUThreshold {
				row[b] = hungarian.Disallowed
			} else {
				row[b] = -iou
			}
		}
	}
	assign := t.scratch.solver.Solve(cost, len(ti), len(di))
	for a, b := range assign {
		if b < 0 {
			continue
		}
		i, j := ti[a], di[b]
		t.update(t.tracks[i], dets[j])
		matchedTrack[i] = true
		matchedDet[j] = true
	}
}

// resetBools resizes *buf to n false entries, reusing its backing array.
//
//detlint:allocfree
func resetBools(buf *[]bool, n int) []bool {
	b := *buf
	if cap(b) < n {
		b = make([]bool, n)
	}
	b = b[:n]
	for i := range b {
		b[i] = false
	}
	*buf = b
	return b
}

// update applies the motion model to a matched track.
func (t *Tracker) update(tr *Track, d geom.Scored) {
	cx, cy := d.Box.Center()
	w := d.Box.Width()
	switch t.cfg.Motion {
	case Kalman:
		t.kalmanUpdate(tr, cx, cy, w)
	default:
		// Exponential decay, Eq. 1: x-dot' = eta*x-dot + (1-eta)*(x_new - x_old).
		eta := t.cfg.Eta
		tr.VX = eta*tr.VX + (1-eta)*(cx-tr.X)
		tr.VY = eta*tr.VY + (1-eta)*(cy-tr.Y)
		tr.VS = eta*tr.VS + (1-eta)*(w-tr.S)
		tr.X, tr.Y, tr.S = cx, cy, w
	}
	tr.R = d.Box.AspectRatio()
	tr.Matches++
	tr.Misses = 0
	tr.Confidence++
	if tr.Confidence > t.cfg.MaxConfidence {
		tr.Confidence = t.cfg.MaxConfidence
	}
	t.recordMatch(tr, d.Box)
}

// kalmanUpdate runs one predict+correct cycle of a constant-velocity
// Kalman filter, applied independently per dimension of [x, y, s] with
// shared scalar covariances — the SORT-style alternative the paper
// replaced with exponential decay.
func (t *Tracker) kalmanUpdate(tr *Track, cx, cy, w float64) {
	q := t.cfg.KalmanProcessNoise
	r := t.cfg.KalmanMeasurementNoise

	// Predict step: state advances by velocity; covariances grow.
	px, py, ps := tr.X+tr.VX, tr.Y+tr.VY, tr.S+tr.VS
	pvar := tr.pvar + tr.vvar + q
	vvar := tr.vvar + q

	// Correct step (position measurement).
	k := pvar / (pvar + r)
	tr.X = px + k*(cx-px)
	tr.Y = py + k*(cy-py)
	tr.S = ps + k*(w-ps)
	tr.pvar = (1 - k) * pvar

	// Velocity pseudo-measurement from innovation.
	kv := vvar / (vvar + r)
	tr.VX += kv * (cx - px)
	tr.VY += kv * (cy - py)
	tr.VS += kv * (w - ps)
	tr.vvar = (1 - kv) * vvar
}

// Predict returns the tracks' predicted next-frame locations after the
// workload filters of Section 4.1: too-narrow predictions and
// predictions largely chopped by the frame boundary are dropped. The
// Score carries the track confidence normalized to [0, 1]. The caller
// owns the returned slice; per-frame hot paths should prefer
// PredictAppend with a reused buffer.
func (t *Tracker) Predict() []geom.Scored {
	return t.PredictAppend(nil)
}

// PredictAppend appends the filtered predictions of Predict to dst and
// returns the extended slice, allocating only when dst lacks capacity.
//
//detlint:allocfree
func (t *Tracker) PredictAppend(dst []geom.Scored) []geom.Scored {
	frame := geom.NewBox(0, 0, t.frameW, t.frameH)
	out := dst
	for _, tr := range t.tracks {
		b := tr.PredictedBox()
		if b.Width() < t.cfg.MinPredWidth {
			continue
		}
		if geom.CoverFraction(b, frame) < t.cfg.MinVisibleFrac {
			continue
		}
		score := float64(tr.Confidence) / float64(t.cfg.MaxConfidence)
		if score > 1 {
			score = 1
		}
		//detlint:ok appends into the caller's reused buffer; grows only when dst lacks capacity, per the documented contract
		out = append(out, geom.Scored{Box: b, Score: score, Class: tr.Class})
	}
	return out
}

// PredictUnfiltered returns every live track's prediction, bypassing the
// workload filters (ablation support).
func (t *Tracker) PredictUnfiltered() []geom.Scored {
	var out []geom.Scored
	for _, tr := range t.tracks {
		out = append(out, geom.Scored{Box: tr.PredictedBox(), Score: 1, Class: tr.Class})
	}
	return out
}
