package tracker

import "repro/internal/geom"

// Tracklet is a tracked object's recorded trajectory. The paper notes
// that "tracking algorithms usually output tracked sequences of
// detected objects, and the predicted locations are intermediate
// results" — CaTDet inverts that, but the tracklets are still useful
// byproducts (for visualization, downstream analytics, or MOT-style
// evaluation), so the tracker can record them on request.
type Tracklet struct {
	ID    int
	Class int
	// Frames[i] is the frame counter (number of Observe calls at
	// record time, 0-based) of Boxes[i]. Only matched frames are
	// recorded; coasted (missed) frames leave gaps.
	Frames []int
	Boxes  []geom.Box
}

// Len returns the number of recorded observations.
func (t *Tracklet) Len() int { return len(t.Frames) }

// EnableTracklets turns on trajectory recording. Call before the first
// Observe. Recording survives Reset (which clears recorded data).
func (t *Tracker) EnableTracklets() { t.recordTracklets = true }

// Tracklets returns the recorded trajectories of all tracks — finished
// and live — with at least minLength observations, in creation order.
func (t *Tracker) Tracklets(minLength int) []Tracklet {
	var out []Tracklet
	for _, id := range t.trackletOrder {
		tl := t.tracklets[id]
		if tl.Len() >= minLength {
			out = append(out, *tl)
		}
	}
	return out
}

// recordMatch appends a matched observation to the track's tracklet.
func (t *Tracker) recordMatch(tr *Track, box geom.Box) {
	if !t.recordTracklets {
		return
	}
	if t.tracklets == nil {
		t.tracklets = map[int]*Tracklet{}
	}
	tl, ok := t.tracklets[tr.ID]
	if !ok {
		tl = &Tracklet{ID: tr.ID, Class: tr.Class}
		t.tracklets[tr.ID] = tl
		t.trackletOrder = append(t.trackletOrder, tr.ID)
	}
	tl.Frames = append(tl.Frames, t.frameCounter)
	tl.Boxes = append(tl.Boxes, box)
}
