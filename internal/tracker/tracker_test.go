package tracker

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/video"
)

func det(x, y, w, h float64, class int) geom.Scored {
	return geom.Scored{Box: geom.NewBoxCenter(x, y, w, h), Score: 0.9, Class: class}
}

func TestEmergingObjectCreatesTrack(t *testing.T) {
	tr := New(DefaultConfig(), 1242, 375)
	tr.Observe([]geom.Scored{det(100, 100, 40, 30, 0)})
	if len(tr.Tracks()) != 1 {
		t.Fatalf("tracks = %d, want 1", len(tr.Tracks()))
	}
	tk := tr.Tracks()[0]
	if tk.VX != 0 || tk.VY != 0 || tk.VS != 0 {
		t.Fatal("emerging object must start with zero motion (Section 4.1)")
	}
	if tk.Confidence != DefaultConfig().InitialConfidence {
		t.Fatalf("initial confidence = %d", tk.Confidence)
	}
}

func TestMatchUpdatesVelocityWithDecay(t *testing.T) {
	cfg := DefaultConfig()
	tr := New(cfg, 1242, 375)
	tr.Observe([]geom.Scored{det(100, 100, 40, 30, 0)})
	tr.Observe([]geom.Scored{det(110, 100, 40, 30, 0)})
	tk := tr.Tracks()[0]
	// Eq. 1 with eta=0.7, previous velocity 0: v = 0.3 * (110-100) = 3.
	if math.Abs(tk.VX-3) > 1e-9 {
		t.Fatalf("VX = %v, want 3 (exponential decay)", tk.VX)
	}
	if tk.X != 110 {
		t.Fatalf("X = %v, want 110", tk.X)
	}
	// Second step: v = 0.7*3 + 0.3*10 = 5.1.
	tr.Observe([]geom.Scored{det(120, 100, 40, 30, 0)})
	if math.Abs(tk.VX-5.1) > 1e-9 {
		t.Fatalf("VX = %v, want 5.1", tk.VX)
	}
}

func TestPredictionExtrapolates(t *testing.T) {
	tr := New(DefaultConfig(), 1242, 375)
	tr.Observe([]geom.Scored{det(100, 100, 40, 30, 0)})
	tr.Observe([]geom.Scored{det(110, 100, 40, 30, 0)})
	preds := tr.Predict()
	if len(preds) != 1 {
		t.Fatalf("predictions = %d, want 1", len(preds))
	}
	cx, _ := preds[0].Box.Center()
	if math.Abs(cx-113) > 1e-9 { // x' = 110 + 3
		t.Fatalf("predicted cx = %v, want 113", cx)
	}
	if preds[0].Class != 0 {
		t.Fatal("prediction lost class")
	}
}

func TestAspectRatioCarriedForward(t *testing.T) {
	tr := New(DefaultConfig(), 1242, 375)
	tr.Observe([]geom.Scored{det(100, 100, 40, 30, 0)})
	preds := tr.Predict()
	if math.Abs(preds[0].Box.AspectRatio()-0.75) > 1e-9 {
		t.Fatalf("prediction aspect = %v, want 0.75 (r' = r)", preds[0].Box.AspectRatio())
	}
}

func TestMissedTrackCoastsAndDies(t *testing.T) {
	cfg := DefaultConfig()
	tr := New(cfg, 1242, 375)
	// Build confidence with 3 matches (caps at 3).
	tr.Observe([]geom.Scored{det(100, 100, 40, 30, 0)})
	tr.Observe([]geom.Scored{det(110, 100, 40, 30, 0)})
	tr.Observe([]geom.Scored{det(120, 100, 40, 30, 0)})
	tk := tr.Tracks()[0]
	if tk.Confidence != cfg.MaxConfidence {
		t.Fatalf("confidence = %d, want capped %d", tk.Confidence, cfg.MaxConfidence)
	}
	x0 := tk.X
	// Miss: track coasts with constant motion.
	tr.Observe(nil)
	if len(tr.Tracks()) != 1 {
		t.Fatal("track died too early")
	}
	if tk.X <= x0 {
		t.Fatal("missed track did not coast forward")
	}
	// Confidence 3 -> survives 3 more misses, dies on the 4th.
	tr.Observe(nil)
	tr.Observe(nil)
	tr.Observe(nil)
	if len(tr.Tracks()) != 0 {
		t.Fatalf("track should be discarded after confidence < 0, have %d", len(tr.Tracks()))
	}
}

func TestOneFrameFalsePositiveDiesQuickly(t *testing.T) {
	cfg := DefaultConfig()
	tr := New(cfg, 1242, 375)
	tr.Observe([]geom.Scored{det(500, 200, 30, 30, 0)}) // spurious
	tr.Observe(nil)
	tr.Observe(nil)
	if len(tr.Tracks()) != 0 {
		t.Fatalf("unconfirmed track survived %d frames", 2)
	}
}

func TestReacquisitionAfterOcclusion(t *testing.T) {
	// An object that disappears for two frames and returns nearby must
	// re-match the same track, not spawn a new one.
	tr := New(DefaultConfig(), 1242, 375)
	tr.Observe([]geom.Scored{det(100, 100, 40, 30, 0)})
	tr.Observe([]geom.Scored{det(105, 100, 40, 30, 0)})
	tr.Observe([]geom.Scored{det(110, 100, 40, 30, 0)})
	id := tr.Tracks()[0].ID
	tr.Observe(nil) // occluded
	tr.Observe(nil) // occluded
	tr.Observe([]geom.Scored{det(122, 100, 40, 30, 0)})
	if len(tr.Tracks()) != 1 {
		t.Fatalf("tracks = %d, want 1 (re-acquired)", len(tr.Tracks()))
	}
	if tr.Tracks()[0].ID != id {
		t.Fatal("occluded object spawned a new track instead of re-matching")
	}
}

func TestPerClassAssociation(t *testing.T) {
	// A car track must not match a pedestrian detection even at high IoU.
	tr := New(DefaultConfig(), 1242, 375)
	tr.Observe([]geom.Scored{det(100, 100, 40, 30, 0)})
	tr.Observe([]geom.Scored{det(100, 100, 40, 30, 1)})
	if len(tr.Tracks()) != 2 {
		t.Fatalf("tracks = %d, want 2 (class-separated)", len(tr.Tracks()))
	}
}

func TestClassAgnosticAblation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.PerClass = false
	tr := New(cfg, 1242, 375)
	tr.Observe([]geom.Scored{det(100, 100, 40, 30, 0)})
	tr.Observe([]geom.Scored{det(100, 100, 40, 30, 1)})
	if len(tr.Tracks()) != 1 {
		t.Fatalf("class-agnostic tracker made %d tracks, want 1", len(tr.Tracks()))
	}
}

func TestAssociationPrefersHigherIoU(t *testing.T) {
	tr := New(DefaultConfig(), 1242, 375)
	tr.Observe([]geom.Scored{det(100, 100, 40, 30, 0), det(300, 100, 40, 30, 0)})
	a, b := tr.Tracks()[0].ID, tr.Tracks()[1].ID
	// Next frame both moved slightly right; matching must keep identity.
	tr.Observe([]geom.Scored{det(305, 100, 40, 30, 0), det(105, 100, 40, 30, 0)})
	if len(tr.Tracks()) != 2 {
		t.Fatalf("tracks = %d, want 2", len(tr.Tracks()))
	}
	for _, tk := range tr.Tracks() {
		if tk.ID == a && math.Abs(tk.X-105) > 1 {
			t.Fatalf("track %d jumped to %v", a, tk.X)
		}
		if tk.ID == b && math.Abs(tk.X-305) > 1 {
			t.Fatalf("track %d jumped to %v", b, tk.X)
		}
	}
}

func TestZeroIoUNotAssociated(t *testing.T) {
	// beta = 0: disjoint boxes must not match even if they are the only
	// candidates.
	tr := New(DefaultConfig(), 1242, 375)
	tr.Observe([]geom.Scored{det(100, 100, 40, 30, 0)})
	tr.Observe([]geom.Scored{det(900, 300, 40, 30, 0)})
	if len(tr.Tracks()) != 2 {
		t.Fatalf("disjoint detection matched existing track; tracks = %d", len(tr.Tracks()))
	}
}

func TestPredictionFilters(t *testing.T) {
	cfg := DefaultConfig()
	tr := New(cfg, 1242, 375)
	// Narrow track: width 8 < 10 must be filtered from predictions.
	tr.Observe([]geom.Scored{det(100, 100, 8, 20, 0)})
	if preds := tr.Predict(); len(preds) != 0 {
		t.Fatalf("narrow prediction not filtered: %v", preds)
	}
	// Boundary-chopped track.
	tr2 := New(cfg, 1242, 375)
	tr2.Observe([]geom.Scored{{Box: geom.NewBoxCenter(-8, 100, 60, 40), Score: 0.9, Class: 0}})
	if preds := tr2.Predict(); len(preds) != 0 {
		t.Fatalf("boundary-chopped prediction not filtered: %v", preds)
	}
	// Unfiltered variant returns them.
	if preds := tr2.PredictUnfiltered(); len(preds) != 1 {
		t.Fatalf("PredictUnfiltered = %d, want 1", len(preds))
	}
}

func TestReset(t *testing.T) {
	tr := New(DefaultConfig(), 1242, 375)
	tr.Observe([]geom.Scored{det(100, 100, 40, 30, 0)})
	tr.Reset()
	if len(tr.Tracks()) != 0 {
		t.Fatal("reset did not clear tracks")
	}
	tr.Observe([]geom.Scored{det(100, 100, 40, 30, 0)})
	if tr.Tracks()[0].ID != 1 {
		t.Fatal("reset did not restart IDs")
	}
}

func TestKalmanMotionModel(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Motion = Kalman
	tr := New(cfg, 1242, 375)
	// Constant-velocity object; after several updates the filter should
	// predict close to the true next position.
	for i := 0; i < 10; i++ {
		tr.Observe([]geom.Scored{det(100+float64(i)*10, 100, 40, 30, 0)})
	}
	preds := tr.Predict()
	if len(preds) != 1 {
		t.Fatalf("predictions = %d", len(preds))
	}
	cx, _ := preds[0].Box.Center()
	if math.Abs(cx-200) > 5 {
		t.Fatalf("kalman predicted cx = %v, want ~200", cx)
	}
}

// On ground-truth boxes from the synthetic world the tracker's
// predictions should overlap next-frame truth most of the time — the
// property that makes tracker regions useful to the refinement network.
func TestPredictionQualityOnWorld(t *testing.T) {
	p := video.MiniKITTIPreset()
	d := video.Generate(p, 5)
	cfg := DefaultConfig()
	hits, total := 0, 0
	for si := range d.Sequences {
		seq := &d.Sequences[si]
		tr := New(cfg, float64(seq.Width), float64(seq.Height))
		for fi := range seq.Frames {
			if fi > 0 {
				preds := tr.Predict()
				for _, o := range seq.Frames[fi].Objects {
					// Only consider objects that existed in the
					// previous frame (the tracker can't predict
					// objects it has never seen).
					existed := false
					for _, po := range seq.Frames[fi-1].Objects {
						if po.TrackID == o.TrackID {
							existed = true
							break
						}
					}
					if !existed || o.Box.Width() < 12 {
						continue
					}
					total++
					for _, pr := range preds {
						if pr.Class == int(o.Class) && geom.IoU(pr.Box, o.Box) > 0.3 {
							hits++
							break
						}
					}
				}
			}
			// Feed ground truth as "detections".
			var dets []geom.Scored
			for _, o := range seq.Frames[fi].Objects {
				dets = append(dets, geom.Scored{Box: o.Box, Score: 1, Class: int(o.Class)})
			}
			tr.Observe(dets)
		}
	}
	if total < 500 {
		t.Fatalf("too few prediction opportunities: %d", total)
	}
	if frac := float64(hits) / float64(total); frac < 0.85 {
		t.Fatalf("prediction hit rate %.2f < 0.85 on ground truth", frac)
	}
}

// The track count must stay bounded when fed noisy detections — the
// confidence scheme must prune phantom tracks.
func TestTrackPopulationBounded(t *testing.T) {
	tr := New(DefaultConfig(), 1242, 375)
	for fi := 0; fi < 300; fi++ {
		var dets []geom.Scored
		// Two persistent objects plus two random FPs per frame.
		dets = append(dets, det(300+float64(fi), 150, 60, 40, 0))
		dets = append(dets, det(800, 200, 50, 90, 1))
		dets = append(dets, det(float64((fi*97)%1100)+50, float64((fi*61)%300)+30, 25, 25, 0))
		dets = append(dets, det(float64((fi*131)%1100)+50, float64((fi*43)%300)+30, 25, 25, 1))
		tr.Observe(dets)
		if n := len(tr.Tracks()); n > 20 {
			t.Fatalf("frame %d: %d live tracks; phantom tracks not pruned", fi, n)
		}
	}
}
