package tracker

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// driftScene synthesizes one frame of detections for a persistent set
// of objects drifting right, so tracks match frame after frame — the
// steady state the allocation budget is about.
func driftScene(frame int, n int) []geom.Scored {
	rng := rand.New(rand.NewSource(int64(frame)*131 + 7))
	dets := make([]geom.Scored, 0, n)
	for i := 0; i < n; i++ {
		x := 50 + float64(i)*90 + 2*float64(frame) + rng.Float64()
		y := 100 + 20*float64(i%3) + rng.Float64()
		dets = append(dets, geom.Scored{
			Box:   geom.NewBox(x, y, x+60, y+45),
			Score: 0.6 + 0.4*rng.Float64(),
			Class: i % 2,
		})
	}
	return dets
}

// TestObserveAllocBudget pins the steady-state allocation budget of the
// per-frame tracker update: once every object is tracked and the
// scratch buffers are warm, Observe + PredictAppend allocate nothing.
func TestObserveAllocBudget(t *testing.T) {
	trk := New(DefaultConfig(), 1242, 375)
	for f := 0; f < 10; f++ { // establish tracks, warm scratch
		trk.Observe(driftScene(f, 8))
	}
	scenes := make([][]geom.Scored, 101) // pre-generate: only tracker work is measured
	for i := range scenes {
		scenes[i] = driftScene(10+i, 8)
	}
	pred := make([]geom.Scored, 0, 16)
	i := 0
	n := testing.AllocsPerRun(100, func() {
		trk.Observe(scenes[i%len(scenes)])
		pred = trk.PredictAppend(pred[:0])
		i++
	})
	if n > 0 {
		t.Errorf("steady-state Observe+PredictAppend allocates %v per frame, want 0", n)
	}
	if len(pred) == 0 {
		t.Fatal("no predictions in steady state; scene not tracked")
	}
}

// TestPredictAppendMatchesPredict pins the append variant against the
// allocating one.
func TestPredictAppendMatchesPredict(t *testing.T) {
	trk := New(DefaultConfig(), 1242, 375)
	for f := 0; f < 6; f++ {
		trk.Observe(driftScene(f, 5))
	}
	want := trk.Predict()
	got := trk.PredictAppend(make([]geom.Scored, 0, 1))
	if len(got) != len(want) {
		t.Fatalf("PredictAppend returned %d predictions, Predict %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("prediction %d differs: %+v vs %+v", i, got[i], want[i])
		}
	}
}

// TestObserveMatchesReference replays the same detection stream through
// the optimized tracker and a fresh reference run and requires
// identical track state frame by frame — the flat cost matrix, solver
// reuse and sorted class iteration must not change a single float.
func TestObserveMatchesReference(t *testing.T) {
	run := func() []Track {
		trk := New(DefaultConfig(), 1242, 375)
		for f := 0; f < 40; f++ {
			n := 4 + f%5 // churn the population so tracks spawn and die
			trk.Observe(driftScene(f, n))
		}
		out := make([]Track, 0, len(trk.Tracks()))
		for _, tr := range trk.Tracks() {
			c := *tr
			out = append(out, c)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("track counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("track %d state differs across identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}
