package hungarian

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSolveIdentity(t *testing.T) {
	cost := [][]float64{
		{0, 9, 9},
		{9, 0, 9},
		{9, 9, 0},
	}
	got := Solve(cost)
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Solve = %v, want %v", got, want)
		}
	}
	if c := TotalCost(cost, got); c != 0 {
		t.Fatalf("total = %v, want 0", c)
	}
}

func TestSolveKnownOptimum(t *testing.T) {
	// Classic example: optimal assignment is (0->1, 1->0, 2->2) cost 5+3+2=10?
	// Verify against brute force instead of a hand-derived answer.
	cost := [][]float64{
		{4, 1, 3},
		{2, 0, 5},
		{3, 2, 2},
	}
	got := Solve(cost)
	if TotalCost(cost, got) != bruteForceMin(cost) {
		t.Fatalf("Solve cost %v != brute force %v (match %v)", TotalCost(cost, got), bruteForceMin(cost), got)
	}
}

func TestSolveRectangularWide(t *testing.T) {
	// 2 rows, 4 columns: both rows must be matched to distinct columns.
	cost := [][]float64{
		{5, 1, 9, 9},
		{1, 5, 9, 9},
	}
	got := Solve(cost)
	if got[0] != 1 || got[1] != 0 {
		t.Fatalf("Solve = %v, want [1 0]", got)
	}
}

func TestSolveRectangularTall(t *testing.T) {
	// 4 rows, 2 columns: exactly 2 rows matched, others -1.
	cost := [][]float64{
		{9, 9},
		{1, 9},
		{9, 1},
		{9, 9},
	}
	got := Solve(cost)
	if got[1] != 0 || got[2] != 1 {
		t.Fatalf("Solve = %v, want rows 1,2 matched to 0,1", got)
	}
	if got[0] != -1 && got[3] != -1 {
		t.Fatalf("expected two unmatched rows, got %v", got)
	}
	matched := 0
	for _, j := range got {
		if j >= 0 {
			matched++
		}
	}
	if matched != 2 {
		t.Fatalf("matched %d rows, want 2", matched)
	}
}

func TestSolveEmpty(t *testing.T) {
	if got := Solve(nil); got != nil {
		t.Fatalf("Solve(nil) = %v", got)
	}
	got := Solve([][]float64{{}, {}})
	if len(got) != 2 || got[0] != -1 || got[1] != -1 {
		t.Fatalf("Solve(zero cols) = %v", got)
	}
}

func TestSolveDisallowedEdges(t *testing.T) {
	cost := [][]float64{
		{Disallowed, 1},
		{Disallowed, Disallowed},
	}
	got := Solve(cost)
	if got[0] != 1 {
		t.Fatalf("row 0 should match col 1: %v", got)
	}
	if got[1] != -1 {
		t.Fatalf("row 1 has only disallowed options, want -1: %v", got)
	}
}

func TestSolveAllDisallowed(t *testing.T) {
	cost := [][]float64{{Disallowed, Disallowed}}
	got := Solve(cost)
	if got[0] != -1 {
		t.Fatalf("all-disallowed row matched: %v", got)
	}
}

func TestSolveRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on ragged matrix")
		}
	}()
	Solve([][]float64{{1, 2}, {1}})
}

// bruteForceMin enumerates all assignments of rows to distinct columns and
// returns the minimum total cost (excluding Disallowed pairs).
func bruteForceMin(cost [][]float64) float64 {
	n := len(cost)
	if n == 0 {
		return 0
	}
	m := len(cost[0])
	usedCols := make([]bool, m)
	best := Disallowed * float64(n)
	var rec func(row int, acc float64, matched int)
	rec = func(row int, acc float64, matched int) {
		if row == n {
			// Require the maximum possible matching size.
			maxMatch := n
			if m < n {
				maxMatch = m
			}
			if matched == maxMatch && acc < best {
				best = acc
			}
			return
		}
		for j := 0; j < m; j++ {
			if !usedCols[j] && cost[row][j] < Disallowed/2 {
				usedCols[j] = true
				rec(row+1, acc+cost[row][j], matched+1)
				usedCols[j] = false
			}
		}
		rec(row+1, acc, matched) // leave this row unmatched
	}
	rec(0, 0, 0)
	return best
}

// Property: on random square matrices up to 6x6, Solve matches brute force.
func TestSolveMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = float64(rng.Intn(20))
			}
		}
		got := Solve(cost)
		want := bruteForceMin(cost)
		if g := TotalCost(cost, got); g != want {
			t.Fatalf("trial %d (%dx%d): Solve cost %v != brute %v\ncost=%v match=%v",
				trial, n, m, g, want, cost, got)
		}
	}
}

// Property: the assignment is always a valid partial matching (no column
// reused, indexes in range).
func TestSolveIsMatching(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m := 1+rng.Intn(10), 1+rng.Intn(10)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = rng.Float64() * 100
			}
		}
		match := Solve(cost)
		if len(match) != n {
			return false
		}
		seen := make(map[int]bool)
		for _, j := range match {
			if j < -1 || j >= m {
				return false
			}
			if j >= 0 {
				if seen[j] {
					return false
				}
				seen[j] = true
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSolverMatchesSolve pins the reusable flat-matrix Solver against
// the nested-slice wrapper on random rectangular matrices (both
// orientations, with Disallowed edges mixed in): identical assignments
// entry for entry, including across reuses of one Solver.
func TestSolverMatchesSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s Solver
	for trial := 0; trial < 300; trial++ {
		n, m := rng.Intn(9), rng.Intn(9)
		nested := make([][]float64, n)
		flat := make([]float64, 0, n*m)
		for i := range nested {
			nested[i] = make([]float64, m)
			for j := range nested[i] {
				c := rng.Float64() * 50
				if rng.Intn(6) == 0 {
					c = Disallowed
				}
				nested[i][j] = c
			}
			flat = append(flat, nested[i]...)
		}
		want := Solve(nested)
		got := s.Solve(flat, n, m)
		if len(got) != len(want) {
			t.Fatalf("trial %d (%dx%d): solver returned %d rows, Solve %d", trial, n, m, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d (%dx%d): solver %v != Solve %v", trial, n, m, got, want)
			}
		}
	}
}

// TestSolverZeroAlloc pins the steady-state allocation budget: after
// the workspace has grown to the problem size, Solve allocates nothing.
func TestSolverZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n, m = 12, 7 // rows > cols exercises the transpose scratch too
	flat := make([]float64, n*m)
	for i := range flat {
		flat[i] = rng.Float64()
	}
	var s Solver
	s.Solve(flat, n, m) // warm the workspace
	if a := testing.AllocsPerRun(100, func() { s.Solve(flat, n, m) }); a > 0 {
		t.Errorf("Solver.Solve allocates %v per run after warm-up, want 0", a)
	}
}

// TestSolverShapePanics rejects a mis-shaped flat matrix.
func TestSolverShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mis-shaped flat matrix")
		}
	}()
	var s Solver
	s.Solve(make([]float64, 5), 2, 3)
}

func BenchmarkSolve50x50(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	cost := make([][]float64, 50)
	for i := range cost {
		cost[i] = make([]float64, 50)
		for j := range cost[i] {
			cost[i][j] = rng.Float64()
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Solve(cost)
	}
}
