// Package hungarian implements the Kuhn–Munkres assignment algorithm for
// rectangular cost matrices. CaTDet's tracker uses it to associate
// detections across adjacent frames with negative-IoU costs, exactly as
// SORT does (Bewley et al., 2016).
//
// The solver runs in O(n^3) using the potential/augmenting-path
// formulation, which is the standard production variant.
package hungarian

import "math"

// Disallowed is a sentinel cost marking a pair that must never be matched.
// It is large enough that any assignment avoiding it is preferred, but
// finite so the potentials stay well-conditioned.
const Disallowed = 1e30

// Solve finds a minimum-cost assignment for the given cost matrix, where
// cost[i][j] is the cost of assigning row i to column j. The matrix may be
// rectangular; at most min(rows, cols) pairs are matched and every row and
// column is used at most once.
//
// The returned slice has one entry per row: rowMatch[i] is the column
// assigned to row i, or -1 if the row is unmatched (more rows than
// columns) or its only available pairings were Disallowed.
//
// All rows of cost must have equal length; Solve panics otherwise, since
// a ragged matrix is a programming error, not an input condition.
func Solve(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	m := len(cost[0])
	for i := range cost {
		if len(cost[i]) != m {
			panic("hungarian: ragged cost matrix")
		}
	}
	if m == 0 {
		out := make([]int, n)
		for i := range out {
			out[i] = -1
		}
		return out
	}

	// The classic formulation requires rows <= cols; transpose if needed.
	transposed := false
	work := cost
	if n > m {
		transposed = true
		work = make([][]float64, m)
		for j := 0; j < m; j++ {
			work[j] = make([]float64, n)
			for i := 0; i < n; i++ {
				work[j][i] = cost[i][j]
			}
		}
		n, m = m, n
	}

	// Potentials u (rows) and v (columns), 1-indexed internally with a
	// virtual 0th row/column as in the standard e-maxx formulation.
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1) // p[j] = row matched to column j (1-indexed), 0 = free
	way := make([]int, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := -1
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := work[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowMatch := make([]int, n)
	for i := range rowMatch {
		rowMatch[i] = -1
	}
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			rowMatch[p[j]-1] = j - 1
		}
	}
	// Strip matches that only exist because the solver was forced through
	// a Disallowed edge.
	for i, j := range rowMatch {
		if j >= 0 && work[i][j] >= Disallowed/2 {
			rowMatch[i] = -1
		}
	}

	if !transposed {
		return rowMatch
	}
	// Invert the row/column roles back to the caller's orientation.
	out := make([]int, m)
	for i := range out {
		out[i] = -1
	}
	for i, j := range rowMatch {
		if j >= 0 {
			out[j] = i
		}
	}
	return out
}

// TotalCost sums the cost of an assignment produced by Solve, counting
// only matched rows.
func TotalCost(cost [][]float64, rowMatch []int) float64 {
	total := 0.0
	for i, j := range rowMatch {
		if j >= 0 {
			total += cost[i][j]
		}
	}
	return total
}
