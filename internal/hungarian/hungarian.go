// Package hungarian implements the Kuhn–Munkres assignment algorithm for
// rectangular cost matrices. CaTDet's tracker uses it to associate
// detections across adjacent frames with negative-IoU costs, exactly as
// SORT does (Bewley et al., 2016).
//
// The solver runs in O(n^3) using the potential/augmenting-path
// formulation, which is the standard production variant. The core works
// on a flat row-major matrix through a reusable Solver workspace, so
// per-frame association in the tracker allocates nothing at steady
// state; the package-level Solve remains the convenient nested-slice
// entry point.
package hungarian

import "math"

// Disallowed is a sentinel cost marking a pair that must never be matched.
// It is large enough that any assignment avoiding it is preferred, but
// finite so the potentials stay well-conditioned.
const Disallowed = 1e30

// Solver holds the workspace for repeated assignment problems. The zero
// value is ready to use; buffers grow to the largest problem seen and
// are reused, so steady-state Solve calls allocate nothing. A Solver is
// not safe for concurrent use.
type Solver struct {
	u, v, minv []float64
	p, way     []int
	used       []bool
	work       []float64 // transposed copy when rows > cols
	rowMatch   []int
	out        []int
}

// Solve finds a minimum-cost assignment for the n-by-m cost matrix given
// in row-major flat form: cost[i*m+j] is the cost of assigning row i to
// column j. At most min(n, m) pairs are matched and every row and column
// is used at most once.
//
// The returned slice has one entry per row: rowMatch[i] is the column
// assigned to row i, or -1 if the row is unmatched (more rows than
// columns) or its only available pairings were Disallowed. The slice is
// owned by the Solver and valid until its next call.
//
// cost must hold exactly n*m entries; Solve panics otherwise, since a
// mis-shaped matrix is a programming error, not an input condition.
//
//detlint:allocfree
func (s *Solver) Solve(cost []float64, n, m int) []int {
	if len(cost) != n*m {
		panic("hungarian: cost length does not match n*m")
	}
	if n == 0 {
		return nil
	}
	if m == 0 {
		s.out = fillNeg(s.out, n)
		return s.out
	}

	// The classic formulation requires rows <= cols; transpose into the
	// reused scratch if needed. work is indexed [i*stride+j] throughout.
	origN := n
	transposed := false
	work := cost
	if n > m {
		transposed = true
		if cap(s.work) < n*m {
			s.work = make([]float64, n*m)
		}
		s.work = s.work[:n*m]
		for j := 0; j < m; j++ {
			for i := 0; i < n; i++ {
				s.work[j*n+i] = cost[i*m+j]
			}
		}
		work = s.work
		n, m = m, n
	}
	stride := m

	// Potentials u (rows) and v (columns), 1-indexed internally with a
	// virtual 0th row/column as in the standard e-maxx formulation.
	s.u = fillZeroF(s.u, n+1)
	s.v = fillZeroF(s.v, m+1)
	s.p = fillZeroI(s.p, m+1) // p[j] = row matched to column j (1-indexed), 0 = free
	s.way = fillZeroI(s.way, m+1)
	if cap(s.minv) < m+1 {
		s.minv = make([]float64, m+1)
	}
	if cap(s.used) < m+1 {
		s.used = make([]bool, m+1)
	}
	u, v, p, way := s.u, s.v, s.p, s.way

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := s.minv[:m+1]
		used := s.used[:m+1]
		for j := range minv {
			minv[j] = math.Inf(1)
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := -1
			row := work[(i0-1)*stride:]
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := row[j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowMatch := fillNeg(s.rowMatch, n)
	s.rowMatch = rowMatch
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			rowMatch[p[j]-1] = j - 1
		}
	}
	// Strip matches that only exist because the solver was forced through
	// a Disallowed edge.
	for i, j := range rowMatch {
		if j >= 0 && work[i*stride+j] >= Disallowed/2 {
			rowMatch[i] = -1
		}
	}

	if !transposed {
		s.out = append(s.out[:0], rowMatch...)
		return s.out
	}
	// Invert the row/column roles back to the caller's orientation.
	out := fillNeg(s.out, origN)
	s.out = out
	for i, j := range rowMatch {
		if j >= 0 {
			out[j] = i
		}
	}
	return out
}

// fillNeg resizes buf to n entries of -1, reusing its backing array.
//
//detlint:allocfree
func fillNeg(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = -1
	}
	return buf
}

// fillZeroF resizes buf to n zeros, reusing its backing array.
//
//detlint:allocfree
func fillZeroF(buf []float64, n int) []float64 {
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// fillZeroI resizes buf to n zeros, reusing its backing array.
//
//detlint:allocfree
func fillZeroI(buf []int, n int) []int {
	if cap(buf) < n {
		buf = make([]int, n)
	}
	buf = buf[:n]
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// Solve finds a minimum-cost assignment for the given cost matrix, where
// cost[i][j] is the cost of assigning row i to column j. The matrix may be
// rectangular; at most min(rows, cols) pairs are matched and every row and
// column is used at most once.
//
// The returned slice has one entry per row: rowMatch[i] is the column
// assigned to row i, or -1 if the row is unmatched (more rows than
// columns) or its only available pairings were Disallowed.
//
// All rows of cost must have equal length; Solve panics otherwise, since
// a ragged matrix is a programming error, not an input condition.
//
// Solve is the convenience wrapper over Solver for one-shot problems; it
// flattens the matrix and returns a caller-owned slice. Hot paths that
// solve every frame should hold a Solver and pass flat matrices.
func Solve(cost [][]float64) []int {
	n := len(cost)
	if n == 0 {
		return nil
	}
	m := len(cost[0])
	for i := range cost {
		if len(cost[i]) != m {
			panic("hungarian: ragged cost matrix")
		}
	}
	flat := make([]float64, 0, n*m)
	for i := range cost {
		flat = append(flat, cost[i]...)
	}
	var s Solver
	return s.Solve(flat, n, m)
}

// TotalCost sums the cost of an assignment produced by Solve, counting
// only matched rows.
func TotalCost(cost [][]float64, rowMatch []int) float64 {
	total := 0.0
	for i, j := range rowMatch {
		if j >= 0 {
			total += cost[i][j]
		}
	}
	return total
}
