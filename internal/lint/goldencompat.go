package lint

import (
	"go/ast"
	"reflect"
	"sort"
	"strconv"
	"strings"
)

// GoldenCompat guards the committed golden serving books: in the
// packages that marshal them (serve, serve/cluster), every exported
// struct field that reaches JSON must either carry omitempty or belong
// to the frozen baseline schema in Config.GoldenBaseline. A new
// always-present field changes the marshalled bytes of every golden
// fixture and every byte-identity determinism test at once; omitempty
// keeps the field invisible until a scenario actually exercises it —
// the rule that let PR 6 and PR 7 extend the books without touching a
// single golden. Exported fields without any json tag are also flagged:
// encoding/json marshals them under the field name, silently entering
// the schema.
var GoldenCompat = &Analyzer{
	Name: "goldencompat",
	Doc:  "new JSON fields in golden-book structs must be omitempty (baseline schema is frozen in config)",
	Run:  runGoldenCompat,
}

func runGoldenCompat(pass *Pass) {
	pkgSuffix := ""
	for _, s := range pass.Config.Golden {
		if pkgMatch(pass.PkgPath, s) {
			pkgSuffix = s
			break
		}
	}
	if pkgSuffix == "" {
		return
	}
	forEachGoldenField(pass, func(structName string, field *ast.Field, name string, tagName string, hasTag, omitempty bool) {
		key := pkgSuffix + "." + structName + "." + name
		if pass.Config.GoldenBaseline[key] {
			return
		}
		if !hasTag {
			pass.Report(field.Pos(),
				"exported field %s.%s has no json tag and marshals as %q, silently extending the golden schema; tag it (with omitempty) or json:\"-\"",
				structName, name, name)
			return
		}
		if !omitempty {
			pass.Report(field.Pos(),
				"field %s.%s (json %q) is not in the frozen golden baseline and lacks omitempty; a zero value would rewrite every committed golden",
				structName, name, tagName)
		}
	})
}

// forEachGoldenField visits every exported field of every struct in the
// package that participates in the JSON schema (structs with at least
// one json-tagged field). Fields tagged json:"-" are excluded from
// marshalling and skipped.
func forEachGoldenField(pass *Pass, visit func(structName string, field *ast.Field, name, tagName string, hasTag, omitempty bool)) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || !hasJSONTag(st) {
				return true
			}
			for _, field := range st.Fields.List {
				tagName, hasTag, omitempty, skip := jsonTag(field)
				if skip {
					continue
				}
				names := field.Names
				if len(names) == 0 {
					// Embedded field: marshalled inline (or under the
					// type name when tagged); visit under the type name.
					if id := embeddedName(field.Type); id != "" {
						if !ast.IsExported(id) {
							continue
						}
						visit(ts.Name.Name, field, id, tagName, hasTag, omitempty)
					}
					continue
				}
				for _, nm := range names {
					if !ast.IsExported(nm.Name) {
						continue
					}
					visit(ts.Name.Name, field, nm.Name, tagName, hasTag, omitempty)
				}
			}
			return true
		})
	}
}

func hasJSONTag(st *ast.StructType) bool {
	for _, field := range st.Fields.List {
		if _, hasTag, _, _ := jsonTag(field); hasTag {
			return true
		}
	}
	return false
}

// jsonTag parses a field's json struct tag. skip is true for json:"-".
func jsonTag(field *ast.Field) (name string, hasTag, omitempty, skip bool) {
	if field.Tag == nil {
		return "", false, false, false
	}
	raw, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		return "", false, false, false
	}
	tag, ok := reflect.StructTag(raw).Lookup("json")
	if !ok {
		return "", false, false, false
	}
	parts := strings.Split(tag, ",")
	if parts[0] == "-" && len(parts) == 1 {
		return "", true, false, true
	}
	for _, opt := range parts[1:] {
		if opt == "omitempty" {
			omitempty = true
		}
	}
	return parts[0], true, omitempty, false
}

func embeddedName(t ast.Expr) string {
	switch e := t.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return embeddedName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// DumpGoldenBaseline returns the sorted baseline keys for the current
// tree: every golden-schema field that marshals without omitempty.
// cmd/detlint -dump-golden-baseline prints them in the form pasted into
// goldenbaseline.go, making a deliberate schema extension a one-command
// regeneration instead of hand-bookkeeping.
func DumpGoldenBaseline(pkgs []*Package, cfg *Config) []string {
	var keys []string
	for _, pkg := range pkgs {
		pkgSuffix := ""
		for _, s := range cfg.Golden {
			if pkgMatch(pkg.PkgPath, s) {
				pkgSuffix = s
				break
			}
		}
		if pkgSuffix == "" {
			continue
		}
		pass := &Pass{Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info, PkgPath: pkg.PkgPath, Config: cfg}
		forEachGoldenField(pass, func(structName string, _ *ast.Field, name, _ string, hasTag, omitempty bool) {
			if hasTag && !omitempty {
				keys = append(keys, pkgSuffix+"."+structName+"."+name)
			}
		})
	}
	sort.Strings(keys)
	return keys
}
