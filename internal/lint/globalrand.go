package lint

import (
	"go/ast"
	"go/types"
)

// GlobalRand forbids the package-level math/rand functions in
// deterministic packages: they draw from the process-global source,
// which is shared across every caller (and auto-seeded since Go 1.20),
// so two runs — or two goroutines — interleave draws unpredictably.
// Deterministic code injects a seeded *rand.Rand instead, the way
// arrivalTimes and the chaos transform derive theirs from Config.Seed.
// rand.New and rand.NewSource are exactly how that injection is built,
// so they stay legal.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "no package-level math/rand draws in deterministic packages; inject a seeded *rand.Rand",
	Run:  runGlobalRand,
}

func runGlobalRand(pass *Pass) {
	if !pkgIn(pass.PkgPath, pass.Config.Deterministic) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "math/rand" {
				return true
			}
			// Constructors for injected sources are the sanctioned use;
			// everything else on the package (Intn, Float64, Perm,
			// Shuffle, Seed, …) hits the global source.
			switch sel.Sel.Name {
			case "New", "NewSource", "NewZipf", "Rand", "Source", "Source64", "Zipf":
				return true
			}
			pass.Report(sel.Pos(),
				"rand.%s draws from the global math/rand source; use an injected seeded *rand.Rand (rand.New(rand.NewSource(seed)))",
				sel.Sel.Name)
			return true
		})
	}
}
