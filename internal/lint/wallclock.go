package lint

import (
	"go/ast"
	"go/types"
)

// WallClock forbids reading or sleeping on the machine clock in
// virtual-clock packages: every timestamp there must derive from the
// simulated clock (Config.Duration, arrival stamps, AdvanceTo ticks),
// or reruns stop being byte-identical and CI timing starts leaking
// into the books.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "no wall-clock reads (time.Now/Since/Sleep/After/Tick/Timer/Ticker) in virtual-clock packages",
	Run:  runWallClock,
}

// wallClockFuncs are the package time entry points that observe or wait
// on real time. Pure conversions and constructors (time.Duration,
// time.Unix) stay legal.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

func runWallClock(pass *Pass) {
	if !pkgIn(pass.PkgPath, pass.Config.VirtualClock) {
		return
	}
	forbiddenPkgFuncs(pass, "time", wallClockFuncs,
		"time.%s reads the wall clock in a virtual-clock package; derive time from the simulated clock or suppress with //detlint:ok <reason>")
}

// forbiddenPkgFuncs reports every use of a listed function from the
// named stdlib package. Resolution goes through the type checker's Uses
// map, so a local variable or package alias named "time" cannot confuse
// it.
func forbiddenPkgFuncs(pass *Pass, pkgPath string, names map[string]bool, format string) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.Info.Uses[id].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != pkgPath {
				return true
			}
			if names[sel.Sel.Name] {
				pass.Report(sel.Pos(), format, sel.Sel.Name)
			}
			return true
		})
	}
}
