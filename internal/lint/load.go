package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// listedPkg is the slice of `go list -json` output the loader needs.
type listedPkg struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
	Imports    []string
	Module     *struct{ Path string }
}

// Load enumerates the packages matching patterns with `go list`, parses
// their (non-test) sources and type-checks them in dependency order.
// Intra-module imports resolve against the packages being checked;
// stdlib imports type-check from GOROOT source, so the loader works on
// a bare toolchain with no export data and no third-party dependencies
// — the same zero-dependency constraint the module itself keeps.
func Load(dir string, patterns []string) ([]*Package, error) {
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	// Close over intra-module imports that the patterns missed, so a
	// single-package invocation still type-checks.
	byPath := map[string]*listedPkg{}
	for i := range listed {
		byPath[listed[i].ImportPath] = &listed[i]
	}
	modPath := ""
	for _, p := range listed {
		if p.Module != nil {
			modPath = p.Module.Path
			break
		}
	}
	for {
		var missing []string
		for _, p := range byPath {
			for _, imp := range p.Imports {
				if modPath != "" && inModule(imp, modPath) && byPath[imp] == nil {
					missing = append(missing, imp)
				}
			}
		}
		if len(missing) == 0 {
			break
		}
		sort.Strings(missing)
		more, err := goList(dir, missing)
		if err != nil {
			return nil, err
		}
		for i := range more {
			byPath[more[i].ImportPath] = &more[i]
		}
	}

	order, err := topoOrder(byPath)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	imp := &moduleImporter{
		std:   importer.ForCompiler(fset, "source", nil),
		local: map[string]*types.Package{},
	}

	var pkgs []*Package
	for _, path := range order {
		lp := byPath[path]
		if len(lp.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: parse: %w", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: type-check %s: %w", path, err)
		}
		imp.local[path] = tpkg
		pkgs = append(pkgs, &Package{
			PkgPath: path,
			Fset:    fset,
			Files:   files,
			Types:   tpkg,
			Info:    info,
		})
	}
	return pkgs, nil
}

func goList(dir string, patterns []string) ([]listedPkg, error) {
	args := append([]string{"list", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, errb.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(&out)
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decode go list output: %w", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

func inModule(importPath, modPath string) bool {
	return importPath == modPath || strings.HasPrefix(importPath, modPath+"/")
}

// topoOrder sorts the packages so every package follows its
// intra-module imports, surfacing import cycles as errors (the compiler
// would reject them anyway, but a lint driver should not hang on bad
// input).
func topoOrder(byPath map[string]*listedPkg) ([]string, error) {
	var order []string
	state := map[string]int{} // 0 unvisited, 1 in progress, 2 done
	var visit func(path string) error
	visit = func(path string) error {
		switch state[path] {
		case 1:
			return fmt.Errorf("lint: import cycle through %s", path)
		case 2:
			return nil
		}
		state[path] = 1
		p := byPath[path]
		var deps []string
		for _, imp := range p.Imports {
			if byPath[imp] != nil {
				deps = append(deps, imp)
			}
		}
		sort.Strings(deps)
		for _, dep := range deps {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[path] = 2
		order = append(order, path)
		return nil
	}
	paths := make([]string, 0, len(byPath))
	for path := range byPath {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	for _, path := range paths {
		if err := visit(path); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// moduleImporter resolves intra-module imports from the packages
// type-checked so far (Load's topological order guarantees they exist)
// and everything else — the stdlib — from source.
type moduleImporter struct {
	std   types.Importer
	local map[string]*types.Package
}

func (m *moduleImporter) Import(path string) (*types.Package, error) {
	if p, ok := m.local[path]; ok {
		return p, nil
	}
	return m.std.Import(path)
}
