package lint

import "strings"

// Config scopes each analyzer to the packages whose contract it
// encodes. Package entries are module-relative path suffixes
// ("internal/serve" matches "repro/internal/serve" and nothing else:
// matching is by whole path components, so "internal/serve" does not
// cover "internal/serve/cluster" — subpackages are listed explicitly,
// keeping every scoping decision visible in one place).
type Config struct {
	// Deterministic packages carry the byte-identical output contract:
	// maporder and globalrand apply here.
	Deterministic []string
	// VirtualClock packages model time on a virtual clock: wallclock
	// forbids reading or sleeping on the machine clock here.
	VirtualClock []string
	// GoHygiene packages may only spawn goroutines from the approved
	// worker-pool sites in GoAllowed.
	GoHygiene []string
	// GoAllowed lists the approved goroutine-spawn sites as
	// "<pkg-suffix>.<func>", e.g. "internal/serve.(*fleet).startPool".
	GoAllowed []string
	// Golden packages marshal the golden-pinned serving books:
	// goldencompat applies to their JSON-tagged structs.
	Golden []string
	// GoldenBaseline is the frozen pre-existing schema: fields (as
	// "<pkg-suffix>.<Struct>.<Field>") that predate the golden harness
	// and legitimately marshal without omitempty. Any JSON-tagged field
	// not listed here must carry omitempty so adding it cannot perturb
	// committed golden bytes. Regenerate with detlint -dump-golden-baseline
	// after deliberately extending the always-present schema.
	GoldenBaseline map[string]bool
}

// DefaultConfig is the repo's contract map, the single source of truth
// for which package owes which invariant.
func DefaultConfig() *Config {
	det := []string{
		"internal/serve",
		"internal/serve/sched",
		"internal/serve/cluster",
		"internal/serve/control",
		"internal/sim",
		"internal/core",
		"internal/video",
		"internal/tracker",
		"internal/hungarian",
		"internal/geom",
		"internal/detector",
		"internal/benchfmt",
	}
	return &Config{
		Deterministic: det,
		VirtualClock:  det,
		GoHygiene:     det,
		GoAllowed: []string{
			// The serve step pool (PR 5) and the sim engine's sequence
			// pool (PR 1) are the two blessed fan-out points; the
			// cluster router deliberately runs shards serially on the
			// virtual clock and spawns nothing.
			"internal/serve.(*fleet).startPool",
			"internal/sim.mapSequences",
		},
		Golden:         []string{"internal/serve", "internal/serve/cluster", "internal/serve/control"},
		GoldenBaseline: goldenBaseline,
	}
}

// pkgMatch reports whether pkgPath ends with suffix on whole path
// components: "internal/serve" matches "repro/internal/serve" but not
// "repro/internal/serve/cluster" or "repro/myinternal/serve".
func pkgMatch(pkgPath, suffix string) bool {
	if pkgPath == suffix {
		return true
	}
	return strings.HasSuffix(pkgPath, "/"+suffix)
}

func pkgIn(pkgPath string, list []string) bool {
	for _, s := range list {
		if pkgMatch(pkgPath, s) {
			return true
		}
	}
	return false
}

// goAllowed reports whether the function name fn in pkgPath is an
// approved goroutine-spawn site.
func (c *Config) goAllowed(pkgPath, fn string) bool {
	for _, entry := range c.GoAllowed {
		dot := strings.LastIndex(entry, ".")
		// Method entries contain dots inside "(*Recv)": split at the
		// first dot after the package path instead — the package part
		// never contains parentheses.
		if i := strings.IndexAny(entry, "("); i > 0 && i < dot {
			dot = i - 1 // the dot preceding "(*Recv)"
		}
		if dot <= 0 {
			continue
		}
		pkg, name := entry[:dot], entry[dot+1:]
		if pkgMatch(pkgPath, pkg) && name == fn {
			return true
		}
	}
	return false
}
