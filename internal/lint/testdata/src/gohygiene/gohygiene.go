package gohygiene

func work() {}

// rogue spawns outside any approved pool site.
func rogue() {
	go work() // want "outside the approved worker-pool sites"
}

func closureRogue() {
	go func() { // want "outside the approved worker-pool sites"
		work()
	}()
}

// approvedPool is listed in the fixture config's GoAllowed.
func approvedPool(n int) {
	for i := 0; i < n; i++ {
		go work()
	}
}

type pool struct{ jobs chan int }

// start is listed as the method form "(*pool).start".
func (p *pool) start(n int) {
	for i := 0; i < n; i++ {
		go func() {
			for range p.jobs {
				work()
			}
		}()
	}
}
