package suppress

// trailing suppression with a reason: silenced.
func trailing(m map[string]int) int {
	total := 0
	for _, v := range m { //detlint:ok integer summation is commutative; order cannot change the total
		total += v
	}
	return total
}

// suppression on the line above: silenced.
func above(m map[string]int) int {
	total := 0
	//detlint:ok integer summation is commutative; order cannot change the total
	for _, v := range m {
		total += v
	}
	return total
}

// bare suppression: the finding stays AND the reasonless comment is
// itself reported.
func bare(m map[string]int) int {
	total := 0
	for _, v := range m { //detlint:ok
		total += v
	}
	return total
}
