package wallclock

import "time"

func stamp() float64 {
	start := time.Now()                // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond)       // want "time.Sleep reads the wall clock"
	return time.Since(start).Seconds() // want "time.Since reads the wall clock"
}

func waiting(ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-time.After(time.Second): // want "time.After reads the wall clock"
		return 0
	}
}

// durations and conversions are pure arithmetic on the time package's
// types — legal anywhere.
func pureDurations(frames int, fps float64) time.Duration {
	return time.Duration(float64(frames) / fps * float64(time.Second))
}
