package maporder

import "sort"

// sumValues depends on nothing order-sensitive mathematically, but the
// analyzer cannot prove commutativity — floating-point folds in this
// repo are order-sensitive — so a plain value range is flagged.
func sumValues(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "range over map"
		total += v
	}
	return total
}

// firstKey is order-dependent in the most direct way.
func firstKey(m map[string]int) string {
	for k := range m { // want "range over map"
		return k
	}
	return ""
}

// collectAndSort is the blessed idiom: the loop only appends, the sort
// restores determinism.
func collectAndSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// collectGuarded appends under a filter, still collection-only.
func collectGuarded(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k, v := range m {
		if v > 0 {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// sliceRange is not a map range at all.
func sliceRange(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
