package allocfree

import "fmt"

type point struct{ x, y int }

type buffer struct {
	ints  []int
	items []point
}

func sink(v interface{}) { _ = v }

// hot is annotated: every allocating construct is a diagnostic.
//
//detlint:allocfree
func hot(b *buffer, n int, s, t string) {
	xs := make([]int, n) // want "unguarded make"
	_ = xs
	p := new(point) // want "new allocates"
	_ = p
	q := &point{x: 1} // want "heap-allocates"
	_ = q
	b.ints = append(b.ints, n)   // want "append to b.ints may grow"
	f := func() int { return n } // want "closure in allocfree function hot allocates"
	_ = f
	_ = fmt.Sprint(n) // want "fmt.Sprint allocates"
	_ = s + t         // want "string concatenation"
	_ = []byte(s)     // want "copies its payload"
	sink(n)           // want "boxes it into an interface"
}

// reuse exercises every exempt idiom: grow-guarded make, appends into
// scratch re-sliced to zero, deferred closures, constant interface
// arguments.
//
//detlint:allocfree
func reuse(b *buffer, pts []point) []point {
	defer func() { _ = recover() }()
	if cap(b.ints) < len(pts) {
		b.ints = make([]int, len(pts))
	}
	out := b.items[:0]
	for i, p := range pts {
		b.ints[i] = p.x
		out = append(out, p)
	}
	b.items = append(b.items[:0], out...)
	sink("constant strings live in static data")
	return out
}

// cold is not annotated: the analyzer leaves it alone.
func cold(n int) []int {
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, i)
	}
	return out
}
