package goldencompat

// Result mimics a golden-marshalled book: Served is frozen in the
// fixture baseline, Extra opted into omitempty, the rest violate the
// schema contract one way each.
type Result struct {
	Served  int     `json:"served"`
	Dropped int     `json:"dropped"` // want "lacks omitempty"
	Extra   float64 `json:"extra,omitempty"`
	Ignored int     `json:"-"`
	Naked   int     // want "has no json tag"
	hidden  int
}

// scratch has no json tags anywhere, so it is not part of the
// marshalled schema and stays unchecked.
type scratch struct {
	Buf []int
	N   int
}

var _ = Result{hidden: 0}
var _ = scratch{}
