package globalrand

import "math/rand"

func jitter() float64 {
	return rand.Float64() // want "draws from the global math/rand source"
}

func pick(n int) int {
	return rand.Intn(n) // want "draws from the global math/rand source"
}

func reseed(seed int64) {
	rand.Seed(seed) // want "draws from the global math/rand source"
}

// seeded injection is exactly what the rule demands.
func injected(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}
