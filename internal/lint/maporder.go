package lint

import (
	"go/ast"
	"go/types"
)

// MapOrder flags `for … range` over a map in deterministic packages:
// Go randomizes map iteration order, so any map-order-dependent output
// breaks the byte-identical books/report contract. The one exempt shape
// is the collect-and-sort idiom — a loop body that does nothing but
// append keys/values to a slice (possibly under an if), which is
// order-independent once the collected slice is sorted; the analyzer
// trusts the sort because the slice the loop builds is inert until
// used. Anything else needs sorted keys or a //detlint:ok reason.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "no map-iteration-order dependence in deterministic packages (collect-and-sort is exempt)",
	Run:  runMapOrder,
}

func runMapOrder(pass *Pass) {
	if !pkgIn(pass.PkgPath, pass.Config.Deterministic) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			if collectOnly(rng.Body) {
				return true
			}
			pass.Report(rng.Pos(),
				"range over map %s: iteration order is randomized; collect keys and sort, or suppress with //detlint:ok <reason>",
				types.ExprString(rng.X))
			return true
		})
	}
}

// collectOnly reports whether every statement in the block is part of
// the collect-and-sort idiom: appends into a slice, optionally guarded
// by if statements, plus bare continues.
func collectOnly(block *ast.BlockStmt) bool {
	if len(block.List) == 0 {
		return false // an empty body ranges for the count; order-free but pointless — not the idiom
	}
	for _, stmt := range block.List {
		if !collectStmt(stmt) {
			return false
		}
	}
	return true
}

func collectStmt(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.AssignStmt:
		// x = append(x, …) (or := variant), single assignment only.
		if len(s.Rhs) != 1 {
			return false
		}
		call, ok := s.Rhs[0].(*ast.CallExpr)
		if !ok {
			return false
		}
		fn, ok := call.Fun.(*ast.Ident)
		return ok && fn.Name == "append"
	case *ast.IfStmt:
		if !collectOnly(s.Body) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return collectOnly(e)
		case *ast.IfStmt:
			return collectStmt(e)
		}
		return false
	case *ast.BranchStmt:
		return s.Label == nil // bare continue/break
	}
	return false
}
