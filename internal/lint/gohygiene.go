package lint

import "go/ast"

// GoHygiene flags `go` statements outside the approved worker-pool
// sites. The PR 7 pool race (workers re-reading a field that Close
// nils) got in through exactly this door: an unreviewed goroutine in a
// package whose determinism proof assumes all concurrency is confined
// to the blessed pools whose ordering barriers are documented. New
// fan-out points are added by listing them in Config.GoAllowed, which
// makes the addition reviewable in one place.
var GoHygiene = &Analyzer{
	Name: "gohygiene",
	Doc:  "goroutines only at approved worker-pool sites (serve step pool, sim engine) in deterministic packages",
	Run:  runGoHygiene,
}

func runGoHygiene(pass *Pass) {
	if !pkgIn(pass.PkgPath, pass.Config.GoHygiene) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			fd := enclosingFunc(f, g.Pos())
			if fd != nil && pass.Config.goAllowed(pass.PkgPath, funcName(fd)) {
				return true
			}
			where := "package scope"
			if fd != nil {
				where = funcName(fd)
			}
			pass.Report(g.Pos(),
				"go statement in %s is outside the approved worker-pool sites; route the work through an approved pool or add the site to lint.Config.GoAllowed",
				where)
			return true
		})
	}
}
