package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

// Fixtures live under testdata/src/<name>/ and are loaded as the fake
// import path "fixture/<name>", which fixtureConfig scopes the
// analyzers to. Expected findings are trailing comments of the form
//
//	// want "substring" ["substring" ...]
//
// on the offending line; every diagnostic must be wanted and every
// want must be diagnosed, the same contract as x/tools' analysistest
// but built on the same stdlib-only loader the driver uses.

var (
	fixtureMu    sync.Mutex
	fixtureFset  *token.FileSet
	fixtureStd   types.Importer
	fixtureCache = map[string]*Package{}
)

func fixtureConfig() *Config {
	return &Config{
		Deterministic: []string{"fixture/maporder", "fixture/globalrand", "fixture/suppress"},
		VirtualClock:  []string{"fixture/wallclock"},
		GoHygiene:     []string{"fixture/gohygiene"},
		GoAllowed: []string{
			"fixture/gohygiene.approvedPool",
			"fixture/gohygiene.(*pool).start",
		},
		Golden: []string{"fixture/goldencompat"},
		GoldenBaseline: map[string]bool{
			"fixture/goldencompat.Result.Served": true,
		},
	}
}

// loadFixture parses and type-checks testdata/src/<name>. The fileset
// and stdlib source importer are shared across fixtures so the stdlib
// is type-checked once per test binary, not once per fixture.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	fixtureMu.Lock()
	defer fixtureMu.Unlock()
	if pkg, ok := fixtureCache[name]; ok {
		return pkg
	}
	if fixtureFset == nil {
		fixtureFset = token.NewFileSet()
		fixtureStd = importer.ForCompiler(fixtureFset, "source", nil)
	}
	dir := filepath.Join("testdata", "src", name)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read fixture dir: %v", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fixtureFset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("fixture %s has no Go files", name)
	}
	pkgPath := "fixture/" + name
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: fixtureStd}
	tpkg, err := conf.Check(pkgPath, fixtureFset, files, info)
	if err != nil {
		t.Fatalf("type-check fixture %s: %v", name, err)
	}
	pkg := &Package{PkgPath: pkgPath, Fset: fixtureFset, Files: files, Types: tpkg, Info: info}
	fixtureCache[name] = pkg
	return pkg
}

var wantRE = regexp.MustCompile(`//\s*want\s+(.*)`)
var wantArgRE = regexp.MustCompile(`"([^"]*)"`)

type wantKey struct {
	file string
	line int
	sub  string
}

// collectWants extracts every `// want "..."` expectation from the
// fixture's comments, keyed by the comment's own line.
func collectWants(pkg *Package) map[wantKey]bool {
	wants := map[wantKey]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					wants[wantKey{pos.Filename, pos.Line, arg[1]}] = false
				}
			}
		}
	}
	return wants
}

// runFixture applies the full suite to the fixture under the fixture
// config and matches diagnostics against the want comments exactly.
func runFixture(t *testing.T, name string) {
	t.Helper()
	pkg := loadFixture(t, name)
	diags := RunPackage(pkg, fixtureConfig(), All())
	wants := collectWants(pkg)

	var unexpected []string
	for _, d := range diags {
		matched := false
		for key, used := range wants {
			if used || key.file != d.File || key.line != d.Line {
				continue
			}
			if strings.Contains(d.Message, key.sub) {
				wants[key] = true
				matched = true
				break
			}
		}
		if !matched {
			unexpected = append(unexpected, d.String())
		}
	}
	for _, u := range unexpected {
		t.Errorf("unexpected diagnostic: %s", u)
	}
	var missing []string
	for key, used := range wants {
		if !used {
			missing = append(missing, fmt.Sprintf("%s:%d: no diagnostic containing %q", key.file, key.line, key.sub))
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("missing diagnostic: %s", m)
	}
}

func TestMapOrderFixture(t *testing.T)     { runFixture(t, "maporder") }
func TestWallClockFixture(t *testing.T)    { runFixture(t, "wallclock") }
func TestGlobalRandFixture(t *testing.T)   { runFixture(t, "globalrand") }
func TestGoHygieneFixture(t *testing.T)    { runFixture(t, "gohygiene") }
func TestAllocFreeFixture(t *testing.T)    { runFixture(t, "allocfree") }
func TestGoldenCompatFixture(t *testing.T) { runFixture(t, "goldencompat") }

// TestSuppression pins the suppression contract directly (the want
// mechanism cannot annotate //detlint:ok lines — trailing text would
// become the reason): reasoned suppressions silence the finding whether
// trailing or on the line above; a bare //detlint:ok silences nothing
// and is itself reported.
func TestSuppression(t *testing.T) {
	pkg := loadFixture(t, "suppress")
	diags := RunPackage(pkg, fixtureConfig(), All())
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2:\n%s", len(diags), renderDiags(diags))
	}
	// Both surviving findings sit inside func bare: the unsuppressed
	// map range and the reasonless comment on the same line.
	byAnalyzer := map[string]Diagnostic{}
	for _, d := range diags {
		byAnalyzer[d.Analyzer] = d
	}
	mo, ok := byAnalyzer["maporder"]
	if !ok {
		t.Fatalf("missing maporder diagnostic:\n%s", renderDiags(diags))
	}
	sup, ok := byAnalyzer["suppress"]
	if !ok {
		t.Fatalf("missing suppress diagnostic:\n%s", renderDiags(diags))
	}
	if mo.Line != sup.Line {
		t.Errorf("maporder (line %d) and suppress (line %d) should flag the same bare-suppression line", mo.Line, sup.Line)
	}
	if !strings.Contains(sup.Message, "needs a reason") {
		t.Errorf("suppress message = %q, want it to demand a reason", sup.Message)
	}
}

func renderDiags(diags []Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		b.WriteString(d.String())
		b.WriteByte('\n')
	}
	return b.String()
}
