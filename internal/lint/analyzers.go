package lint

// All returns every analyzer in the suite, in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		MapOrder,
		WallClock,
		GlobalRand,
		GoHygiene,
		AllocFree,
		GoldenCompat,
	}
}
