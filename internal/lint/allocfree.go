package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AllocFree checks functions annotated with //detlint:allocfree in
// their doc comment — the PR 5 zero-alloc surfaces whose steady-state
// budgets are pinned by testing.AllocsPerRun — and rejects allocating
// constructs in their bodies: new, make, growing append, closures,
// fmt.* calls, string concatenation, string<->[]byte conversions,
// &T{...} literals and interface boxing at call sites.
//
// Two idioms the hot paths are built on are recognized and exempt:
//
//   - the grow-guard: make/append inside an `if cap(buf) < n { … }`
//     block is the documented cold-path growth of reusable scratch;
//   - the reuse append: append whose destination is scratch re-sliced
//     to zero length (`append(s.out[:0], …)` or a variable bound from
//     `buf[:0]`) refills capacity instead of growing it.
//
// Closures invoked directly by defer are also exempt (open-coded
// defers keep them off the heap). Everything else is a diagnostic:
// either the construct moves to a cold path, or the site carries a
// //detlint:ok reason documenting why the allocation budget tolerates
// it.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc:  "functions annotated //detlint:allocfree must not allocate outside grow-guard and scratch-reuse idioms",
	Run:  runAllocFree,
}

// allocFreeAnnotation marks a function for checking when it appears as
// its own line inside the function's doc comment.
const allocFreeAnnotation = "//detlint:allocfree"

func runAllocFree(pass *Pass) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !annotatedAllocFree(fd.Doc) {
				continue
			}
			checkAllocFree(pass, fd)
		}
	}
}

func annotatedAllocFree(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == allocFreeAnnotation {
			return true
		}
	}
	return false
}

// allocChecker carries the per-function context: which variables are
// rebound scratch, which spans are grow-guarded, which closures are
// deferred.
type allocChecker struct {
	pass      *Pass
	reuseVars map[types.Object]bool
	guards    []span
	deferred  map[*ast.FuncLit]bool
}

type span struct{ lo, hi token.Pos }

func checkAllocFree(pass *Pass, fd *ast.FuncDecl) {
	c := &allocChecker{
		pass:      pass,
		reuseVars: map[types.Object]bool{},
		deferred:  map[*ast.FuncLit]bool{},
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if len(s.Lhs) != len(s.Rhs) {
				return true
			}
			for i, rhs := range s.Rhs {
				if !slicedToZero(rhs) {
					continue
				}
				if id, ok := s.Lhs[i].(*ast.Ident); ok {
					if obj := c.objOf(id); obj != nil {
						c.reuseVars[obj] = true
					}
				}
			}
		case *ast.IfStmt:
			if callsCap(pass, s.Cond) {
				c.guards = append(c.guards, span{s.Body.Pos(), s.Body.End()})
			}
		case *ast.DeferStmt:
			if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
				c.deferred[fl] = true
			}
		}
		return true
	})

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.CallExpr:
			c.checkCall(e)
		case *ast.FuncLit:
			if !c.deferred[e] {
				c.pass.Report(e.Pos(), "closure in allocfree function %s allocates", fd.Name.Name)
			}
		case *ast.UnaryExpr:
			if e.Op == token.AND {
				if _, ok := e.X.(*ast.CompositeLit); ok {
					c.pass.Report(e.Pos(), "&composite literal in allocfree function %s heap-allocates", fd.Name.Name)
				}
			}
		case *ast.BinaryExpr:
			if e.Op == token.ADD && c.isString(e) && !c.isConst(e) {
				c.pass.Report(e.Pos(), "string concatenation in allocfree function %s allocates", fd.Name.Name)
			}
		case *ast.AssignStmt:
			if e.Tok == token.ADD_ASSIGN && len(e.Lhs) == 1 && c.isString(e.Lhs[0]) {
				c.pass.Report(e.Pos(), "string += in allocfree function %s allocates", fd.Name.Name)
			}
		}
		return true
	})
}

func (c *allocChecker) checkCall(call *ast.CallExpr) {
	pass := c.pass

	// Builtins: new, make, append.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, ok := pass.Info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "new":
				if !c.guarded(call.Pos()) {
					pass.Report(call.Pos(), "new allocates; reuse scratch behind a cap grow-guard")
				}
			case "make":
				if !c.guarded(call.Pos()) {
					pass.Report(call.Pos(), "unguarded make allocates; grow scratch under `if cap(buf) < n` instead")
				}
			case "append":
				if len(call.Args) > 0 && !c.guarded(call.Pos()) && !c.reuseDst(call.Args[0]) {
					pass.Report(call.Pos(), "append to %s may grow; append into scratch re-sliced to [:0] or grow under a cap guard",
						types.ExprString(call.Args[0]))
				}
			}
			return
		}
	}

	// Conversions: string <-> []byte/[]rune copy their payload.
	if tv, ok := pass.Info.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		to, from := tv.Type, pass.Info.Types[call.Args[0]].Type
		if from != nil && stringBytesConversion(to, from) && !c.isConst(call.Args[0]) {
			pass.Report(call.Pos(), "%s conversion copies its payload", types.ExprString(call.Fun))
		}
		return
	}

	// fmt.* — every entry point formats through reflection and
	// allocates.
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if pn, ok := pass.Info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == "fmt" {
				pass.Report(call.Pos(), "fmt.%s allocates; hot paths format nothing", sel.Sel.Name)
				return
			}
		}
	}

	// Interface boxing: a non-constant concrete argument passed to an
	// interface parameter escapes to the heap.
	tv, ok := pass.Info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			if st, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = st.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		atv := pass.Info.Types[arg]
		if atv.Type == nil || atv.Value != nil || atv.IsNil() || types.IsInterface(atv.Type) {
			continue
		}
		pass.Report(arg.Pos(), "passing %s as %s boxes it into an interface, which allocates",
			types.ExprString(arg), pt.String())
	}
}

func (c *allocChecker) objOf(id *ast.Ident) types.Object {
	if obj := c.pass.Info.Defs[id]; obj != nil {
		return obj
	}
	return c.pass.Info.Uses[id]
}

func (c *allocChecker) guarded(pos token.Pos) bool {
	for _, g := range c.guards {
		if g.lo <= pos && pos < g.hi {
			return true
		}
	}
	return false
}

// reuseDst reports whether an append destination is reused scratch:
// literally `x[:0]`, or a variable bound from such a slice.
func (c *allocChecker) reuseDst(dst ast.Expr) bool {
	if slicedToZero(dst) {
		return true
	}
	if id, ok := dst.(*ast.Ident); ok {
		if obj := c.objOf(id); obj != nil && c.reuseVars[obj] {
			return true
		}
	}
	return false
}

func (c *allocChecker) isString(e ast.Expr) bool {
	tv, ok := c.pass.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func (c *allocChecker) isConst(e ast.Expr) bool {
	tv, ok := c.pass.Info.Types[e]
	return ok && tv.Value != nil
}

// stringBytesConversion reports whether a conversion between to and
// from crosses the string/[]byte (or []rune) boundary, which copies the
// payload.
func stringBytesConversion(to, from types.Type) bool {
	return (isStringType(to) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Uint8 || e.Kind() == types.Int32)
}

// slicedToZero matches `x[:0]` and `x[0:0]`.
func slicedToZero(e ast.Expr) bool {
	s, ok := e.(*ast.SliceExpr)
	if !ok || s.Slice3 {
		return false
	}
	return zeroOrNil(s.High) && s.High != nil && zeroOrNil(s.Low)
}

func zeroOrNil(e ast.Expr) bool {
	if e == nil {
		return true
	}
	lit, ok := e.(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// callsCap reports whether the expression tree contains a call to the
// cap builtin — the shape of the scratch grow-guard condition.
func callsCap(pass *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok {
			if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "cap" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
