// Package lint is the project's static-analysis framework: a small,
// stdlib-only (go/ast, go/parser, go/types, go/token) multichecker that
// encodes the repo's determinism and hot-path contracts as analyzers
// instead of trusting runtime tests to happen to exercise the offending
// path. cmd/detlint is the command-line driver; `make lint-det` runs it
// over ./... and CI gates the repro artifacts on it.
//
// Suppression: a finding is silenced by a comment on the flagged line,
// or on the line directly above it, of the form
//
//	//detlint:ok <reason>
//
// The reason is mandatory — a bare //detlint:ok is itself reported —
// so every accepted violation documents why it is safe. The allocfree
// analyzer is opt-in per function via a //detlint:allocfree annotation
// in the function's doc comment.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: an analyzer name, a position and a
// human-readable message.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// Analyzer is one named check. Run inspects the package behind pass and
// reports findings via pass.Report.
type Analyzer struct {
	Name string
	// Doc is the one-line contract the analyzer encodes, shown by
	// `detlint -list`.
	Doc string
	Run func(pass *Pass)
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the import path ("repro/internal/serve").
	PkgPath string
	Config  *Config

	diags *[]Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// RunPackage applies every analyzer to pkg under cfg, then filters the
// findings through the //detlint:ok suppression comments. Suppressions
// without a reason are reported as findings of the "suppress" pseudo
// analyzer and cannot themselves be suppressed. Diagnostics come back
// sorted by file, line, column, analyzer.
func RunPackage(pkg *Package, cfg *Config, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
			PkgPath:  pkg.PkgPath,
			Config:   cfg,
			diags:    &diags,
		}
		a.Run(pass)
	}

	sup := collectSuppressions(pkg)
	kept := diags[:0]
	for _, d := range diags {
		if s, ok := sup.lookup(d.File, d.Line); ok && s.reason != "" {
			continue
		}
		kept = append(kept, d)
	}
	diags = kept

	// A suppression with no reason is a contract violation in its own
	// right: the comment's entire value is the documented why.
	for _, s := range sup.all {
		if s.reason == "" {
			pos := pkg.Fset.Position(s.pos)
			diags = append(diags, Diagnostic{
				Analyzer: "suppress",
				Pos:      pos,
				File:     pos.Filename,
				Line:     pos.Line,
				Col:      pos.Column,
				Message:  "//detlint:ok needs a reason (//detlint:ok <why this is safe>)",
			})
		}
	}

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// okPrefix introduces a suppression comment; annotation comments such
// as //detlint:allocfree share the namespace but are not suppressions.
const okPrefix = "//detlint:ok"

type suppression struct {
	pos    token.Pos
	reason string
}

// suppressions indexes //detlint:ok comments by file and line.
type suppressions struct {
	byLine map[string]map[int]suppression
	all    []suppression
}

// lookup finds a suppression covering line: one on the line itself
// (trailing comment) or on the line directly above it.
func (s suppressions) lookup(file string, line int) (suppression, bool) {
	m := s.byLine[file]
	if sup, ok := m[line]; ok {
		return sup, true
	}
	sup, ok := m[line-1]
	return sup, ok
}

func collectSuppressions(pkg *Package) suppressions {
	out := suppressions{byLine: make(map[string]map[int]suppression)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, okPrefix) {
					continue
				}
				rest := text[len(okPrefix):]
				// Require a word boundary so //detlint:okay or a future
				// //detlint:ok-foo directive is not misread.
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue
				}
				sup := suppression{pos: c.Pos(), reason: strings.TrimSpace(rest)}
				pos := pkg.Fset.Position(c.Pos())
				m := out.byLine[pos.Filename]
				if m == nil {
					m = make(map[int]suppression)
					out.byLine[pos.Filename] = m
				}
				m[pos.Line] = sup
				out.all = append(out.all, sup)
			}
		}
	}
	return out
}

// funcName renders the qualified name of a declaration the way config
// allowlists spell it: "Func" for plain functions, "(*Recv).Method" or
// "Recv.Method" for methods.
func funcName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return decl.Name.Name
	}
	recv := decl.Recv.List[0].Type
	switch t := recv.(type) {
	case *ast.StarExpr:
		if id, ok := t.X.(*ast.Ident); ok {
			return "(*" + id.Name + ")." + decl.Name.Name
		}
	case *ast.Ident:
		return t.Name + "." + decl.Name.Name
	case *ast.IndexExpr: // generic receiver
		if id, ok := t.X.(*ast.Ident); ok {
			return id.Name + "." + decl.Name.Name
		}
	}
	return decl.Name.Name
}

// enclosingFunc returns the innermost FuncDecl in file whose body spans
// pos, or nil.
func enclosingFunc(file *ast.File, pos token.Pos) *ast.FuncDecl {
	var found *ast.FuncDecl
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Pos() <= pos && pos < fd.End() {
			found = fd
		}
	}
	return found
}
