package geom

// CostFunc estimates the execution cost of processing a rectangular
// region. The paper's GPU appendix models the execution time of a CNN
// workload W as T = alpha*W + b, where the constant b penalizes each
// separately-launched region; under such a model merging nearby boxes can
// reduce total time even though the merged box covers more pixels.
type CostFunc func(b Box) float64

// GreedyMerge implements the greedy bounding-box merging algorithm from
// the paper's Appendix I: two boxes are merged whenever the estimated
// execution cost of their union is smaller than the sum of their
// individual costs. Merging repeats until no profitable pair remains.
// The input is not modified; the result holds the merged regions.
func GreedyMerge(boxes []Box, cost CostFunc) []Box {
	out := make([]Box, 0, len(boxes))
	for _, b := range boxes {
		if !b.Empty() {
			out = append(out, b)
		}
	}
	for {
		bestI, bestJ := -1, -1
		bestGain := 0.0
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				merged := out[i].Union(out[j])
				gain := cost(out[i]) + cost(out[j]) - cost(merged)
				if gain > bestGain {
					bestGain, bestI, bestJ = gain, i, j
				}
			}
		}
		if bestI < 0 {
			return out
		}
		out[bestI] = out[bestI].Union(out[bestJ])
		out[bestJ] = out[len(out)-1]
		out = out[:len(out)-1]
	}
}

// UnionArea returns the exact area of the union of the boxes via a sweep
// over the distinct x-intervals. It is used by tests to validate the
// grid-mask approximation and by cost models that need exact coverage.
func UnionArea(boxes []Box) float64 {
	events := make([]float64, 0, 2*len(boxes))
	for _, b := range boxes {
		if b.Empty() {
			continue
		}
		events = append(events, b.X1, b.X2)
	}
	if len(events) == 0 {
		return 0
	}
	sortFloats(events)
	total := 0.0
	for i := 0; i+1 < len(events); i++ {
		x0, x1 := events[i], events[i+1]
		if x1 <= x0 {
			continue
		}
		// Collect y-intervals of boxes spanning this x-slab and sum
		// their merged length.
		var ys []yiv
		for _, b := range boxes {
			if b.X1 <= x0 && b.X2 >= x1 && !b.Empty() {
				ys = append(ys, yiv{b.Y1, b.Y2})
			}
		}
		total += mergedLength(ys) * (x1 - x0)
	}
	return total
}

type yiv struct{ lo, hi float64 }

func mergedLength(ivs []yiv) float64 {
	if len(ivs) == 0 {
		return 0
	}
	// Insertion sort by lo; interval counts here are small.
	for i := 1; i < len(ivs); i++ {
		for j := i; j > 0 && ivs[j].lo < ivs[j-1].lo; j-- {
			ivs[j], ivs[j-1] = ivs[j-1], ivs[j]
		}
	}
	total := 0.0
	curLo, curHi := ivs[0].lo, ivs[0].hi
	for _, iv := range ivs[1:] {
		if iv.lo > curHi {
			total += curHi - curLo
			curLo, curHi = iv.lo, iv.hi
			continue
		}
		if iv.hi > curHi {
			curHi = iv.hi
		}
	}
	return total + (curHi - curLo)
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
