package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randBox derives a plausible in-frame box from four uint16 seeds.
func randBox(a, b, c, d uint16) Box {
	x := float64(a%1200) + 1
	y := float64(b%360) + 1
	w := float64(c%200) + 2
	h := float64(d%150) + 2
	return NewBox(x, y, x+w, y+h)
}

// Property: expanding a box never reduces IoU with itself pre-expansion
// below the area ratio, and the expanded box always contains the
// original.
func TestExpandContainsOriginal(t *testing.T) {
	f := func(a, b, c, d uint16, m uint8) bool {
		box := randBox(a, b, c, d)
		ex := box.Expand(float64(m % 60))
		return ex.ContainsBox(box)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: clipping is idempotent and the result lies within frame.
func TestClipIdempotent(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		box := randBox(a, b, c, d).Translate(-200, -100)
		clipped := box.Clip(1242, 375)
		if clipped != clipped.Clip(1242, 375) {
			return false
		}
		frame := NewBox(0, 0, 1242, 375)
		return clipped.Empty() || frame.ContainsBox(clipped)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: a mask containing a box reports full coverage for any box
// inside it.
func TestMaskCoverageContainment(t *testing.T) {
	f := func(a, b, c, d uint16) bool {
		box := randBox(a, b, c, d).Clip(1242, 375)
		if box.Empty() {
			return true
		}
		m := NewMask(1242, 375, 8)
		m.AddBox(box)
		return m.BoxCoverage(box) == 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: mask covered fraction is monotone under adding boxes.
func TestMaskMonotoneUnderUnion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := NewMask(1242, 375, 8)
		prev := 0.0
		for i := 0; i < 10; i++ {
			m.AddBox(randBox(uint16(rng.Uint32()), uint16(rng.Uint32()), uint16(rng.Uint32()), uint16(rng.Uint32())))
			cur := m.CoveredFraction()
			if cur < prev {
				return false
			}
			prev = cur
		}
		return prev <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: NMS output size never exceeds input size, and filtering at
// a higher threshold keeps a subset.
func TestNMSAndFilterProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var dets []Scored
		for i := 0; i < 30; i++ {
			dets = append(dets, Scored{
				Box:   randBox(uint16(rng.Uint32()), uint16(rng.Uint32()), uint16(rng.Uint32()), uint16(rng.Uint32())),
				Score: rng.Float64(),
				Class: rng.Intn(2),
			})
		}
		kept := NMS(dets, 0.5)
		if len(kept) > len(dets) {
			return false
		}
		lo := FilterScore(kept, 0.3)
		hi := FilterScore(kept, 0.7)
		if len(hi) > len(lo) {
			return false
		}
		// hi must be a subset of lo.
		for _, h := range hi {
			found := false
			for _, l := range lo {
				if l == h {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: GreedyMerge never increases the estimated total cost.
func TestGreedyMergeNeverWorse(t *testing.T) {
	cost := func(b Box) float64 { return 0.5 + b.Area()/1e5 }
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var boxes []Box
		for i := 0; i < 8; i++ {
			boxes = append(boxes, randBox(uint16(rng.Uint32()), uint16(rng.Uint32()), uint16(rng.Uint32()), uint16(rng.Uint32())))
		}
		before := 0.0
		for _, b := range boxes {
			before += cost(b)
		}
		after := 0.0
		for _, b := range GreedyMerge(boxes, cost) {
			after += cost(b)
		}
		return after <= before+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
