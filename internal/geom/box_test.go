package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestNewBoxNormalizesCorners(t *testing.T) {
	b := NewBox(10, 20, 2, 4)
	if b.X1 != 2 || b.Y1 != 4 || b.X2 != 10 || b.Y2 != 20 {
		t.Fatalf("corners not normalized: %v", b)
	}
}

func TestBoxBasics(t *testing.T) {
	b := NewBox(0, 0, 4, 2)
	if b.Width() != 4 || b.Height() != 2 {
		t.Fatalf("width/height = %v/%v", b.Width(), b.Height())
	}
	if b.Area() != 8 {
		t.Fatalf("area = %v, want 8", b.Area())
	}
	cx, cy := b.Center()
	if cx != 2 || cy != 1 {
		t.Fatalf("center = (%v,%v)", cx, cy)
	}
	if b.AspectRatio() != 0.5 {
		t.Fatalf("aspect = %v, want 0.5", b.AspectRatio())
	}
	if b.Empty() {
		t.Fatal("non-degenerate box reported empty")
	}
}

func TestBoxDegenerate(t *testing.T) {
	b := Box{X1: 3, Y1: 3, X2: 3, Y2: 7}
	if !b.Empty() {
		t.Fatal("zero-width box should be empty")
	}
	if b.Area() != 0 {
		t.Fatalf("area of empty box = %v", b.Area())
	}
	if b.AspectRatio() != 0 {
		t.Fatalf("aspect of zero-width box = %v", b.AspectRatio())
	}
}

func TestBoxValid(t *testing.T) {
	if !(Box{0, 0, 1, 1}).Valid() {
		t.Fatal("unit box should be valid")
	}
	if (Box{1, 0, 0, 1}).Valid() {
		t.Fatal("reversed box should be invalid")
	}
	if (Box{math.NaN(), 0, 1, 1}).Valid() {
		t.Fatal("NaN box should be invalid")
	}
	if (Box{0, 0, math.Inf(1), 1}).Valid() {
		t.Fatal("Inf box should be invalid")
	}
}

func TestTranslateScaleExpand(t *testing.T) {
	b := NewBox(0, 0, 10, 10)
	tr := b.Translate(5, -2)
	if tr.X1 != 5 || tr.Y1 != -2 || tr.X2 != 15 || tr.Y2 != 8 {
		t.Fatalf("translate = %v", tr)
	}
	sc := b.Scale(2, 0.5)
	if sc.Width() != 20 || sc.Height() != 5 {
		t.Fatalf("scale dims = %v x %v", sc.Width(), sc.Height())
	}
	scx, scy := sc.Center()
	if scx != 5 || scy != 5 {
		t.Fatalf("scale moved center to (%v,%v)", scx, scy)
	}
	ex := b.Expand(30)
	if ex.X1 != -30 || ex.Y2 != 40 {
		t.Fatalf("expand = %v", ex)
	}
}

func TestIntersectUnion(t *testing.T) {
	a := NewBox(0, 0, 10, 10)
	b := NewBox(5, 5, 15, 15)
	in := a.Intersect(b)
	if in.Area() != 25 {
		t.Fatalf("intersection area = %v, want 25", in.Area())
	}
	un := a.Union(b)
	if un.X1 != 0 || un.Y1 != 0 || un.X2 != 15 || un.Y2 != 15 {
		t.Fatalf("union = %v", un)
	}
	// Disjoint intersection is empty.
	c := NewBox(20, 20, 30, 30)
	if !a.Intersect(c).Empty() {
		t.Fatal("disjoint boxes should have empty intersection")
	}
	// Union with empty returns the other operand.
	if got := a.Union(Box{}); got != a {
		t.Fatalf("union with empty = %v", got)
	}
	if got := (Box{}).Union(a); got != a {
		t.Fatalf("empty union a = %v", got)
	}
}

func TestClipContains(t *testing.T) {
	b := NewBox(-10, -10, 50, 50).Clip(40, 30)
	if b.X1 != 0 || b.Y1 != 0 || b.X2 != 40 || b.Y2 != 30 {
		t.Fatalf("clip = %v", b)
	}
	if !b.Contains(0, 0) || b.Contains(40, 10) {
		t.Fatal("Contains boundary semantics wrong (half-open)")
	}
	if !b.ContainsBox(NewBox(1, 1, 5, 5)) || b.ContainsBox(NewBox(-1, 0, 5, 5)) {
		t.Fatal("ContainsBox wrong")
	}
}

func TestIoUKnownValues(t *testing.T) {
	a := NewBox(0, 0, 10, 10)
	cases := []struct {
		b    Box
		want float64
	}{
		{a, 1.0},
		{NewBox(0, 0, 5, 10), 0.5},
		{NewBox(10, 10, 20, 20), 0.0},
		{NewBox(5, 0, 15, 10), 50.0 / 150.0},
	}
	for i, c := range cases {
		if got := IoU(a, c.b); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("case %d: IoU = %v, want %v", i, got, c.want)
		}
	}
}

func TestCoverFraction(t *testing.T) {
	a := NewBox(0, 0, 10, 10)
	if got := CoverFraction(a, NewBox(0, 0, 10, 5)); !almostEqual(got, 0.5, 1e-12) {
		t.Fatalf("cover = %v, want 0.5", got)
	}
	if got := CoverFraction(Box{}, a); got != 0 {
		t.Fatalf("cover of empty = %v", got)
	}
}

// Property: IoU is symmetric, bounded in [0,1], and exactly 1 on identical
// non-degenerate boxes.
func TestIoUProperties(t *testing.T) {
	f := func(x1, y1, w1, h1, x2, y2, w2, h2 float64) bool {
		a := NewBox(mod(x1, 100), mod(y1, 100), mod(x1, 100)+1+mod(w1, 50), mod(y1, 100)+1+mod(h1, 50))
		b := NewBox(mod(x2, 100), mod(y2, 100), mod(x2, 100)+1+mod(w2, 50), mod(y2, 100)+1+mod(h2, 50))
		ab, ba := IoU(a, b), IoU(b, a)
		if !almostEqual(ab, ba, 1e-9) {
			return false
		}
		if ab < 0 || ab > 1+1e-9 {
			return false
		}
		return almostEqual(IoU(a, a), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: intersection area is never larger than either operand's area,
// and union always contains both operands.
func TestIntersectUnionProperties(t *testing.T) {
	f := func(x1, y1, w1, h1, x2, y2, w2, h2 float64) bool {
		a := NewBox(mod(x1, 100), mod(y1, 100), mod(x1, 100)+1+mod(w1, 50), mod(y1, 100)+1+mod(h1, 50))
		b := NewBox(mod(x2, 100), mod(y2, 100), mod(x2, 100)+1+mod(w2, 50), mod(y2, 100)+1+mod(h2, 50))
		in := a.Intersect(b)
		if in.Area() > a.Area()+1e-9 || in.Area() > b.Area()+1e-9 {
			return false
		}
		un := a.Union(b)
		return un.ContainsBox(a) && un.ContainsBox(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func mod(x, m float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0
	}
	v := math.Mod(math.Abs(x), m)
	return v
}
