// Package geom provides the geometric primitives used throughout CaTDet:
// axis-aligned bounding boxes, intersection-over-union, non-maximum
// suppression, pixel-region masks for selected-region inference, and the
// greedy box-merging heuristic from the paper's GPU appendix.
//
// Coordinates follow the image convention: x grows rightwards, y grows
// downwards, and a box is the half-open region [X1,X2) x [Y1,Y2) in
// floating-point pixel units.
package geom

import (
	"fmt"
	"math"
)

// Box is an axis-aligned bounding box in pixel coordinates.
// X1 <= X2 and Y1 <= Y2 hold for every valid box.
type Box struct {
	X1, Y1, X2, Y2 float64
}

// NewBox returns the box spanning the two corner points, normalizing the
// corner order so the result is valid even if the corners are swapped.
func NewBox(x1, y1, x2, y2 float64) Box {
	if x1 > x2 {
		x1, x2 = x2, x1
	}
	if y1 > y2 {
		y1, y2 = y2, y1
	}
	return Box{X1: x1, Y1: y1, X2: x2, Y2: y2}
}

// NewBoxCenter returns the box with the given center, width and height.
func NewBoxCenter(cx, cy, w, h float64) Box {
	return Box{X1: cx - w/2, Y1: cy - h/2, X2: cx + w/2, Y2: cy + h/2}
}

// Width returns the horizontal extent of the box.
func (b Box) Width() float64 { return b.X2 - b.X1 }

// Height returns the vertical extent of the box.
func (b Box) Height() float64 { return b.Y2 - b.Y1 }

// Area returns the area of the box; zero-or-negative extents yield 0.
func (b Box) Area() float64 {
	w, h := b.Width(), b.Height()
	if w <= 0 || h <= 0 {
		return 0
	}
	return w * h
}

// Center returns the center point of the box.
func (b Box) Center() (x, y float64) {
	return (b.X1 + b.X2) / 2, (b.Y1 + b.Y2) / 2
}

// AspectRatio returns height divided by width, the "r" state variable of
// the paper's tracker. It returns 0 for degenerate boxes.
func (b Box) AspectRatio() float64 {
	w := b.Width()
	if w <= 0 {
		return 0
	}
	return b.Height() / w
}

// Empty reports whether the box has no area.
func (b Box) Empty() bool { return b.Width() <= 0 || b.Height() <= 0 }

// Valid reports whether the box coordinates are ordered and finite.
func (b Box) Valid() bool {
	for _, v := range [...]float64{b.X1, b.Y1, b.X2, b.Y2} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return b.X1 <= b.X2 && b.Y1 <= b.Y2
}

// Translate returns the box shifted by (dx, dy).
func (b Box) Translate(dx, dy float64) Box {
	return Box{X1: b.X1 + dx, Y1: b.Y1 + dy, X2: b.X2 + dx, Y2: b.Y2 + dy}
}

// Scale returns the box scaled about its own center by the given factors.
func (b Box) Scale(sx, sy float64) Box {
	cx, cy := b.Center()
	return NewBoxCenter(cx, cy, b.Width()*sx, b.Height()*sy)
}

// Expand returns the box grown by margin pixels on every side. The paper
// appends a 30-pixel margin around proposals before feature extraction.
func (b Box) Expand(margin float64) Box {
	return Box{X1: b.X1 - margin, Y1: b.Y1 - margin, X2: b.X2 + margin, Y2: b.Y2 + margin}
}

// Intersect returns the overlapping region of two boxes. The result may be
// empty (zero area) when the boxes do not overlap.
func (b Box) Intersect(o Box) Box {
	r := Box{
		X1: math.Max(b.X1, o.X1),
		Y1: math.Max(b.Y1, o.Y1),
		X2: math.Min(b.X2, o.X2),
		Y2: math.Min(b.Y2, o.Y2),
	}
	if r.X1 >= r.X2 || r.Y1 >= r.Y2 {
		return Box{}
	}
	return r
}

// Union returns the smallest box containing both boxes.
func (b Box) Union(o Box) Box {
	if b.Empty() {
		return o
	}
	if o.Empty() {
		return b
	}
	return Box{
		X1: math.Min(b.X1, o.X1),
		Y1: math.Min(b.Y1, o.Y1),
		X2: math.Max(b.X2, o.X2),
		Y2: math.Max(b.Y2, o.Y2),
	}
}

// Clip returns the box clipped to the frame [0,w) x [0,h).
func (b Box) Clip(w, h float64) Box {
	r := Box{
		X1: math.Max(0, math.Min(b.X1, w)),
		Y1: math.Max(0, math.Min(b.Y1, h)),
		X2: math.Max(0, math.Min(b.X2, w)),
		Y2: math.Max(0, math.Min(b.Y2, h)),
	}
	return r
}

// Contains reports whether the point (x, y) lies inside the box.
func (b Box) Contains(x, y float64) bool {
	return x >= b.X1 && x < b.X2 && y >= b.Y1 && y < b.Y2
}

// ContainsBox reports whether o lies entirely within b.
func (b Box) ContainsBox(o Box) bool {
	return o.X1 >= b.X1 && o.Y1 >= b.Y1 && o.X2 <= b.X2 && o.Y2 <= b.Y2
}

// IoU returns the intersection-over-union of two boxes in [0, 1].
func IoU(a, b Box) float64 {
	inter := a.Intersect(b).Area()
	if inter <= 0 {
		return 0
	}
	union := a.Area() + b.Area() - inter
	if union <= 0 {
		return 0
	}
	return inter / union
}

// CoverFraction returns the fraction of a's area covered by b, in [0, 1].
// It is used to decide whether a ground-truth object is visible inside a
// selected inference region.
func CoverFraction(a, b Box) float64 {
	area := a.Area()
	if area <= 0 {
		return 0
	}
	return a.Intersect(b).Area() / area
}

// String implements fmt.Stringer.
func (b Box) String() string {
	return fmt.Sprintf("[%.1f,%.1f,%.1f,%.1f]", b.X1, b.Y1, b.X2, b.Y2)
}
