package geom

import (
	"math"
	"math/bits"
)

// Mask is a coarse occupancy grid over an image, used to represent the
// (possibly non-rectangular) union of regions of interest handed to the
// refinement network. The paper computes the real number of operations
// needed to extract features over the union of proposal regions, which
// requires area accounting that does not double-count overlapping
// proposals; a grid at feature-map granularity does exactly that.
type Mask struct {
	w, h   float64 // frame size in pixels
	cell   float64 // cell edge length in pixels
	nx, ny int     // grid dimensions
	bits   []uint64
}

// DefaultCell is the default mask granularity in pixels. It matches the
// effective stride of the conv4 feature map the FasterR-CNN head reads.
const DefaultCell = 8.0

// NewMask returns an empty mask over a w-by-h pixel frame with the given
// cell size. Cell sizes <= 0 fall back to DefaultCell.
func NewMask(w, h, cell float64) *Mask {
	if cell <= 0 {
		cell = DefaultCell
	}
	nx := int(math.Ceil(w / cell))
	ny := int(math.Ceil(h / cell))
	if nx < 1 {
		nx = 1
	}
	if ny < 1 {
		ny = 1
	}
	words := (nx*ny + 63) / 64
	return &Mask{w: w, h: h, cell: cell, nx: nx, ny: ny, bits: make([]uint64, words)}
}

// ReuseMask returns an empty mask over a w-by-h pixel frame with the
// given cell size, recycling m's allocation when it already has exactly
// that geometry (word-zeroed via Reset) and allocating a fresh mask
// otherwise. It is the per-frame variant of NewMask for hot paths that
// rebuild a mask every step over a fixed-size frame.
func ReuseMask(m *Mask, w, h, cell float64) *Mask {
	if cell <= 0 {
		cell = DefaultCell
	}
	if m == nil || m.w != w || m.h != h || m.cell != cell {
		return NewMask(w, h, cell)
	}
	m.Reset()
	return m
}

// FrameWidth returns the pixel width of the underlying frame.
func (m *Mask) FrameWidth() float64 { return m.w }

// FrameHeight returns the pixel height of the underlying frame.
func (m *Mask) FrameHeight() float64 { return m.h }

func (m *Mask) index(cx, cy int) (word int, bit uint) {
	i := cy*m.nx + cx
	return i / 64, uint(i % 64)
}

func (m *Mask) set(cx, cy int) {
	w, b := m.index(cx, cy)
	m.bits[w] |= 1 << b
}

func (m *Mask) get(cx, cy int) bool {
	w, b := m.index(cx, cy)
	return m.bits[w]&(1<<b) != 0
}

// cellRange converts a pixel box to the clipped inclusive cell range it
// touches. ok is false when the box misses the frame entirely.
func (m *Mask) cellRange(b Box) (x0, y0, x1, y1 int, ok bool) {
	b = b.Clip(m.w, m.h)
	if b.Empty() {
		return 0, 0, 0, 0, false
	}
	x0 = int(b.X1 / m.cell)
	y0 = int(b.Y1 / m.cell)
	x1 = int(math.Ceil(b.X2/m.cell)) - 1
	y1 = int(math.Ceil(b.Y2/m.cell)) - 1
	if x1 >= m.nx {
		x1 = m.nx - 1
	}
	if y1 >= m.ny {
		y1 = m.ny - 1
	}
	return x0, y0, x1, y1, true
}

// AddBox marks every cell touched by the box (clipped to the frame).
func (m *Mask) AddBox(b Box) {
	x0, y0, x1, y1, ok := m.cellRange(b)
	if !ok {
		return
	}
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			m.set(cx, cy)
		}
	}
}

// AddBoxes marks all boxes, each expanded by margin pixels per side.
func (m *Mask) AddBoxes(boxes []Box, margin float64) {
	for _, b := range boxes {
		m.AddBox(b.Expand(margin))
	}
}

// CoveredCells returns the number of marked cells.
func (m *Mask) CoveredCells() int {
	n := 0
	for _, w := range m.bits {
		n += popcount(w)
	}
	return n
}

// CoveredFraction returns the fraction of the frame area that is marked,
// in [0, 1]. This is the scale factor applied to the feature-extractor
// operation count under selected-region inference.
func (m *Mask) CoveredFraction() float64 {
	total := m.nx * m.ny
	if total == 0 {
		return 0
	}
	return float64(m.CoveredCells()) / float64(total)
}

// BoxCoverage returns the fraction of the box's cells that are marked, in
// [0, 1]. An object whose box coverage is low cannot be detected by a
// detector restricted to this mask.
func (m *Mask) BoxCoverage(b Box) float64 {
	x0, y0, x1, y1, ok := m.cellRange(b)
	if !ok {
		return 0
	}
	covered, total := 0, 0
	for cy := y0; cy <= y1; cy++ {
		for cx := x0; cx <= x1; cx++ {
			total++
			if m.get(cx, cy) {
				covered++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(covered) / float64(total)
}

// Reset clears all marked cells, retaining the allocation.
//
//detlint:allocfree
func (m *Mask) Reset() {
	for i := range m.bits {
		m.bits[i] = 0
	}
}

func popcount(x uint64) int { return bits.OnesCount64(x) }
