package geom

import (
	"math/rand"
	"testing"
)

func TestNMSSuppressesOverlaps(t *testing.T) {
	dets := []Scored{
		{Box: NewBox(0, 0, 10, 10), Score: 0.9, Class: 0},
		{Box: NewBox(1, 1, 11, 11), Score: 0.8, Class: 0}, // overlaps first
		{Box: NewBox(50, 50, 60, 60), Score: 0.7, Class: 0},
	}
	out := NMS(dets, 0.5)
	if len(out) != 2 {
		t.Fatalf("kept %d, want 2: %v", len(out), out)
	}
	if out[0].Score != 0.9 || out[1].Score != 0.7 {
		t.Fatalf("wrong survivors: %v", out)
	}
}

func TestNMSKeepsDifferentClasses(t *testing.T) {
	dets := []Scored{
		{Box: NewBox(0, 0, 10, 10), Score: 0.9, Class: 0},
		{Box: NewBox(0, 0, 10, 10), Score: 0.8, Class: 1},
	}
	if out := NMS(dets, 0.5); len(out) != 2 {
		t.Fatalf("class-aware NMS suppressed across classes: %v", out)
	}
	if out := NMSClassAgnostic(dets, 0.5); len(out) != 1 {
		t.Fatalf("class-agnostic NMS kept both: %v", out)
	}
}

func TestNMSEmpty(t *testing.T) {
	if out := NMS(nil, 0.5); out != nil {
		t.Fatalf("NMS(nil) = %v", out)
	}
}

func TestNMSOutputSortedByScore(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var dets []Scored
	for i := 0; i < 100; i++ {
		x := rng.Float64() * 500
		y := rng.Float64() * 300
		dets = append(dets, Scored{
			Box:   NewBox(x, y, x+20+rng.Float64()*30, y+20+rng.Float64()*30),
			Score: rng.Float64(),
			Class: rng.Intn(2),
		})
	}
	out := NMS(dets, 0.4)
	for i := 1; i < len(out); i++ {
		if out[i].Score > out[i-1].Score {
			t.Fatalf("output not sorted at %d", i)
		}
	}
	// No two kept boxes of the same class may exceed the threshold.
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[i].Class == out[j].Class && IoU(out[i].Box, out[j].Box) > 0.4 {
				t.Fatalf("kept overlapping pair %d,%d IoU=%v", i, j, IoU(out[i].Box, out[j].Box))
			}
		}
	}
}

func TestFilterScore(t *testing.T) {
	dets := []Scored{{Score: 0.1}, {Score: 0.5}, {Score: 0.9}}
	out := FilterScore(dets, 0.5)
	if len(out) != 2 || out[0].Score != 0.5 {
		t.Fatalf("FilterScore = %v", out)
	}
}

func TestSortByScoreDoesNotMutate(t *testing.T) {
	dets := []Scored{{Score: 0.1}, {Score: 0.9}}
	out := SortByScore(dets)
	if dets[0].Score != 0.1 {
		t.Fatal("input mutated")
	}
	if out[0].Score != 0.9 {
		t.Fatalf("not sorted: %v", out)
	}
}
