package geom

import (
	"math/rand"
	"testing"
)

func TestNMSSuppressesOverlaps(t *testing.T) {
	dets := []Scored{
		{Box: NewBox(0, 0, 10, 10), Score: 0.9, Class: 0},
		{Box: NewBox(1, 1, 11, 11), Score: 0.8, Class: 0}, // overlaps first
		{Box: NewBox(50, 50, 60, 60), Score: 0.7, Class: 0},
	}
	out := NMS(dets, 0.5)
	if len(out) != 2 {
		t.Fatalf("kept %d, want 2: %v", len(out), out)
	}
	if out[0].Score != 0.9 || out[1].Score != 0.7 {
		t.Fatalf("wrong survivors: %v", out)
	}
}

func TestNMSKeepsDifferentClasses(t *testing.T) {
	dets := []Scored{
		{Box: NewBox(0, 0, 10, 10), Score: 0.9, Class: 0},
		{Box: NewBox(0, 0, 10, 10), Score: 0.8, Class: 1},
	}
	if out := NMS(dets, 0.5); len(out) != 2 {
		t.Fatalf("class-aware NMS suppressed across classes: %v", out)
	}
	if out := NMSClassAgnostic(dets, 0.5); len(out) != 1 {
		t.Fatalf("class-agnostic NMS kept both: %v", out)
	}
}

func TestNMSEmpty(t *testing.T) {
	if out := NMS(nil, 0.5); out != nil {
		t.Fatalf("NMS(nil) = %v", out)
	}
}

func TestNMSOutputSortedByScore(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var dets []Scored
	for i := 0; i < 100; i++ {
		x := rng.Float64() * 500
		y := rng.Float64() * 300
		dets = append(dets, Scored{
			Box:   NewBox(x, y, x+20+rng.Float64()*30, y+20+rng.Float64()*30),
			Score: rng.Float64(),
			Class: rng.Intn(2),
		})
	}
	out := NMS(dets, 0.4)
	for i := 1; i < len(out); i++ {
		if out[i].Score > out[i-1].Score {
			t.Fatalf("output not sorted at %d", i)
		}
	}
	// No two kept boxes of the same class may exceed the threshold.
	for i := range out {
		for j := i + 1; j < len(out); j++ {
			if out[i].Class == out[j].Class && IoU(out[i].Box, out[j].Box) > 0.4 {
				t.Fatalf("kept overlapping pair %d,%d IoU=%v", i, j, IoU(out[i].Box, out[j].Box))
			}
		}
	}
}

// crowdedDets builds a dense random detection set with many same-class
// overlaps, the worst case for suppression bookkeeping.
func crowdedDets(n int, seed int64) []Scored {
	rng := rand.New(rand.NewSource(seed))
	dets := make([]Scored, 0, n)
	for i := 0; i < n; i++ {
		x := rng.Float64() * 200 // tight frame: heavy overlap
		y := rng.Float64() * 120
		dets = append(dets, Scored{
			Box:   NewBox(x, y, x+15+rng.Float64()*40, y+15+rng.Float64()*40),
			Score: rng.Float64(),
			Class: rng.Intn(3),
		})
	}
	return dets
}

// TestNMSIndicesMatchesNMS pins the index variant against the value
// variant on crowded frames: same survivors, same order, and the
// indices actually point at the kept inputs.
func TestNMSIndicesMatchesNMS(t *testing.T) {
	var buf NMSBuffer
	for seed := int64(1); seed <= 5; seed++ {
		dets := crowdedDets(150, seed)
		want := NMS(dets, 0.5)
		idx := buf.Indices(dets, 0.5)
		if len(idx) != len(want) {
			t.Fatalf("seed %d: kept %d indices, NMS kept %d", seed, len(idx), len(want))
		}
		for k, i := range idx {
			if dets[i] != want[k] {
				t.Fatalf("seed %d: index %d -> %v, NMS kept %v at position %d", seed, i, dets[i], want[k], k)
			}
		}
	}
}

// TestNMSIndicesZeroAlloc pins the allocation budget of the reused
// buffer: after warm-up, suppression allocates nothing per frame.
func TestNMSIndicesZeroAlloc(t *testing.T) {
	var buf NMSBuffer
	dets := crowdedDets(120, 3)
	buf.Indices(dets, 0.5) // warm the scratch
	if n := testing.AllocsPerRun(50, func() { buf.Indices(dets, 0.5) }); n > 0 {
		t.Errorf("NMSBuffer.Indices allocates %v per run after warm-up, want 0", n)
	}
}

// TestReuseMask pins the recycle-vs-reallocate rule and the word-zeroed
// reset: same geometry reuses the allocation empty, any geometry change
// returns a fresh mask.
func TestReuseMask(t *testing.T) {
	m := NewMask(640, 480, 8)
	m.AddBox(NewBox(0, 0, 64, 64))
	if m.CoveredCells() == 0 {
		t.Fatal("setup: mask empty after AddBox")
	}
	r := ReuseMask(m, 640, 480, 8)
	if r != m {
		t.Error("same geometry did not reuse the mask")
	}
	if r.CoveredCells() != 0 {
		t.Error("reused mask not reset")
	}
	if ReuseMask(m, 640, 480, 16) == m {
		t.Error("cell-size change reused the mask")
	}
	if ReuseMask(m, 320, 480, 8) == m {
		t.Error("frame-size change reused the mask")
	}
	if ReuseMask(nil, 640, 480, 8) == nil {
		t.Error("nil mask did not allocate")
	}
	if n := testing.AllocsPerRun(50, func() { ReuseMask(m, 640, 480, 8) }); n > 0 {
		t.Errorf("ReuseMask allocates %v per run on the reuse path, want 0", n)
	}
}

func TestFilterScore(t *testing.T) {
	dets := []Scored{{Score: 0.1}, {Score: 0.5}, {Score: 0.9}}
	out := FilterScore(dets, 0.5)
	if len(out) != 2 || out[0].Score != 0.5 {
		t.Fatalf("FilterScore = %v", out)
	}
	buf := make([]Scored, 0, 4)
	app := FilterScoreAppend(buf, dets, 0.5)
	if len(app) != 2 || app[0].Score != 0.5 || app[1].Score != 0.9 {
		t.Fatalf("FilterScoreAppend = %v", app)
	}
}

func TestSortByScoreDoesNotMutate(t *testing.T) {
	dets := []Scored{{Score: 0.1}, {Score: 0.9}}
	out := SortByScore(dets)
	if dets[0].Score != 0.1 {
		t.Fatal("input mutated")
	}
	if out[0].Score != 0.9 {
		t.Fatalf("not sorted: %v", out)
	}
}
