package geom

import "sort"

// Scored pairs a box with a confidence score and a class label, the unit
// of data flowing between detector stages. Class is an opaque small-int
// label owned by the dataset layer.
type Scored struct {
	Box   Box
	Score float64
	Class int
}

// NMSBuffer holds reusable scratch for allocation-free non-maximum
// suppression. The zero value is ready to use; a buffer is not safe for
// concurrent use.
type NMSBuffer struct {
	order []int
	kept  []int
}

// Indices performs the same class-aware suppression as NMS but returns
// the kept detections as indices into dets, in descending score order
// (ties keep input order). The returned slice is owned by the buffer
// and valid until its next call; it aliases no caller memory, so the
// input is never modified. Steady-state calls allocate nothing.
//
//detlint:allocfree
func (b *NMSBuffer) Indices(dets []Scored, iouThresh float64) []int {
	if len(dets) == 0 {
		return nil
	}
	if cap(b.order) < len(dets) {
		b.order = make([]int, len(dets))
	}
	order := b.order[:len(dets)]
	for i := range order {
		order[i] = i
	}
	// Stable insertion sort by descending score: identical permutation
	// to sort.SliceStable without its closure/swapper allocations.
	// Per-frame detection sets are small, so quadratic worst case is a
	// non-issue and the nearly-sorted common case is linear.
	for i := 1; i < len(order); i++ {
		j := i
		for j > 0 && dets[order[j]].Score > dets[order[j-1]].Score {
			order[j], order[j-1] = order[j-1], order[j]
			j--
		}
	}
	kept := b.kept[:0]
	for _, i := range order {
		d := dets[i]
		suppressed := false
		for _, k := range kept {
			if dets[k].Class == d.Class && IoU(dets[k].Box, d.Box) > iouThresh {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, i)
		}
	}
	b.kept = kept
	return kept
}

// NMS performs class-aware non-maximum suppression: within each class,
// boxes are visited in descending score order and a box is suppressed if
// its IoU with an already-kept box of the same class exceeds iouThresh.
// The returned slice is ordered by descending score. The input is not
// modified.
func NMS(dets []Scored, iouThresh float64) []Scored {
	var b NMSBuffer
	idx := b.Indices(dets, iouThresh)
	if idx == nil {
		return nil
	}
	kept := make([]Scored, len(idx))
	for k, i := range idx {
		kept[k] = dets[i]
	}
	return kept
}

// NMSClassAgnostic suppresses across classes: a high-scoring box of any
// class suppresses overlapping boxes of every class. Used by the
// class-agnostic ablation.
func NMSClassAgnostic(dets []Scored, iouThresh float64) []Scored {
	if len(dets) == 0 {
		return nil
	}
	idx := make([]int, len(dets))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return dets[idx[a]].Score > dets[idx[b]].Score
	})
	kept := make([]Scored, 0, len(dets))
	for _, i := range idx {
		d := dets[i]
		suppressed := false
		for _, k := range kept {
			if IoU(k.Box, d.Box) > iouThresh {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// FilterScore returns the detections whose score is >= thresh, preserving
// order. The input is not modified.
func FilterScore(dets []Scored, thresh float64) []Scored {
	return FilterScoreAppend(make([]Scored, 0, len(dets)), dets, thresh)
}

// FilterScoreAppend appends the detections whose score is >= thresh to
// dst, preserving order, and returns the extended slice — the
// allocation-free variant of FilterScore for callers that reuse a
// scratch buffer across frames.
//
//detlint:allocfree
func FilterScoreAppend(dst []Scored, dets []Scored, thresh float64) []Scored {
	for _, d := range dets {
		if d.Score >= thresh {
			//detlint:ok appends into the caller's reused buffer; grows only when dst lacks capacity, per the documented contract
			dst = append(dst, d)
		}
	}
	return dst
}

// SortByScore returns a copy of dets sorted by descending score.
func SortByScore(dets []Scored) []Scored {
	out := append([]Scored(nil), dets...)
	sort.SliceStable(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out
}
