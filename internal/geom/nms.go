package geom

import "sort"

// Scored pairs a box with a confidence score and a class label, the unit
// of data flowing between detector stages. Class is an opaque small-int
// label owned by the dataset layer.
type Scored struct {
	Box   Box
	Score float64
	Class int
}

// NMS performs class-aware non-maximum suppression: within each class,
// boxes are visited in descending score order and a box is suppressed if
// its IoU with an already-kept box of the same class exceeds iouThresh.
// The returned slice is ordered by descending score. The input is not
// modified.
func NMS(dets []Scored, iouThresh float64) []Scored {
	if len(dets) == 0 {
		return nil
	}
	idx := make([]int, len(dets))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return dets[idx[a]].Score > dets[idx[b]].Score
	})
	kept := make([]Scored, 0, len(dets))
	for _, i := range idx {
		d := dets[i]
		suppressed := false
		for _, k := range kept {
			if k.Class == d.Class && IoU(k.Box, d.Box) > iouThresh {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// NMSClassAgnostic suppresses across classes: a high-scoring box of any
// class suppresses overlapping boxes of every class. Used by the
// class-agnostic ablation.
func NMSClassAgnostic(dets []Scored, iouThresh float64) []Scored {
	if len(dets) == 0 {
		return nil
	}
	idx := make([]int, len(dets))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return dets[idx[a]].Score > dets[idx[b]].Score
	})
	kept := make([]Scored, 0, len(dets))
	for _, i := range idx {
		d := dets[i]
		suppressed := false
		for _, k := range kept {
			if IoU(k.Box, d.Box) > iouThresh {
				suppressed = true
				break
			}
		}
		if !suppressed {
			kept = append(kept, d)
		}
	}
	return kept
}

// FilterScore returns the detections whose score is >= thresh, preserving
// order. The input is not modified.
func FilterScore(dets []Scored, thresh float64) []Scored {
	out := make([]Scored, 0, len(dets))
	for _, d := range dets {
		if d.Score >= thresh {
			out = append(out, d)
		}
	}
	return out
}

// SortByScore returns a copy of dets sorted by descending score.
func SortByScore(dets []Scored) []Scored {
	out := append([]Scored(nil), dets...)
	sort.SliceStable(out, func(a, b int) bool { return out[a].Score > out[b].Score })
	return out
}
