package geom

import (
	"math/rand"
	"testing"
)

func TestMaskEmpty(t *testing.T) {
	m := NewMask(1242, 375, 8)
	if m.CoveredCells() != 0 || m.CoveredFraction() != 0 {
		t.Fatal("fresh mask should be empty")
	}
}

func TestMaskFullFrame(t *testing.T) {
	m := NewMask(100, 100, 10)
	m.AddBox(NewBox(0, 0, 100, 100))
	if got := m.CoveredFraction(); got != 1 {
		t.Fatalf("full-frame coverage = %v, want 1", got)
	}
}

func TestMaskHalfFrame(t *testing.T) {
	m := NewMask(100, 100, 10)
	m.AddBox(NewBox(0, 0, 50, 100))
	if got := m.CoveredFraction(); got != 0.5 {
		t.Fatalf("half coverage = %v, want 0.5", got)
	}
}

func TestMaskOverlapNotDoubleCounted(t *testing.T) {
	m := NewMask(100, 100, 10)
	m.AddBox(NewBox(0, 0, 60, 100))
	m.AddBox(NewBox(40, 0, 100, 100)) // overlaps 20px band
	if got := m.CoveredFraction(); got != 1 {
		t.Fatalf("union coverage = %v, want 1", got)
	}
}

func TestMaskBoxCoverage(t *testing.T) {
	m := NewMask(100, 100, 10)
	m.AddBox(NewBox(0, 0, 50, 100))
	if got := m.BoxCoverage(NewBox(10, 10, 40, 40)); got != 1 {
		t.Fatalf("inside coverage = %v, want 1", got)
	}
	if got := m.BoxCoverage(NewBox(60, 60, 90, 90)); got != 0 {
		t.Fatalf("outside coverage = %v, want 0", got)
	}
	half := m.BoxCoverage(NewBox(30, 0, 70, 100))
	if half <= 0.3 || half >= 0.7 {
		t.Fatalf("straddling coverage = %v, want ~0.5", half)
	}
}

func TestMaskClipsOutOfFrame(t *testing.T) {
	m := NewMask(100, 100, 10)
	m.AddBox(NewBox(-50, -50, -10, -10)) // fully outside
	if m.CoveredCells() != 0 {
		t.Fatal("out-of-frame box marked cells")
	}
	m.AddBox(NewBox(-50, -50, 10, 10)) // partially inside
	if m.CoveredCells() == 0 {
		t.Fatal("partially-inside box marked nothing")
	}
	if got := m.BoxCoverage(NewBox(-10, -10, -1, -1)); got != 0 {
		t.Fatalf("coverage of out-of-frame box = %v", got)
	}
}

func TestMaskReset(t *testing.T) {
	m := NewMask(100, 100, 10)
	m.AddBox(NewBox(0, 0, 100, 100))
	m.Reset()
	if m.CoveredCells() != 0 {
		t.Fatal("reset did not clear")
	}
}

// The grid mask approximates the exact union area from above (cells are
// conservative: any touched cell counts fully).
func TestMaskApproximatesUnionArea(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const W, H = 1242, 375
	for trial := 0; trial < 20; trial++ {
		m := NewMask(W, H, 4)
		var boxes []Box
		for i := 0; i < 15; i++ {
			x := rng.Float64() * (W - 100)
			y := rng.Float64() * (H - 80)
			b := NewBox(x, y, x+30+rng.Float64()*70, y+20+rng.Float64()*60)
			boxes = append(boxes, b)
			m.AddBox(b)
		}
		exact := UnionArea(boxes) / (W * H)
		approx := m.CoveredFraction()
		if approx < exact-1e-9 {
			t.Fatalf("trial %d: mask %.4f under exact %.4f", trial, approx, exact)
		}
		if approx > exact+0.05 {
			t.Fatalf("trial %d: mask %.4f too far above exact %.4f", trial, approx, exact)
		}
	}
}

func TestUnionAreaKnownValues(t *testing.T) {
	if got := UnionArea(nil); got != 0 {
		t.Fatalf("UnionArea(nil) = %v", got)
	}
	a := NewBox(0, 0, 10, 10)
	b := NewBox(5, 0, 15, 10)
	if got := UnionArea([]Box{a, b}); got != 150 {
		t.Fatalf("union area = %v, want 150", got)
	}
	if got := UnionArea([]Box{a, a, a}); got != 100 {
		t.Fatalf("self-union area = %v, want 100", got)
	}
	// Disjoint boxes sum.
	c := NewBox(100, 100, 110, 110)
	if got := UnionArea([]Box{a, c}); got != 200 {
		t.Fatalf("disjoint union = %v, want 200", got)
	}
}

func TestGreedyMergeMergesWhenProfitable(t *testing.T) {
	// Fixed per-region cost makes merging always profitable.
	cost := func(b Box) float64 { return 1 + b.Area()/1e6 }
	boxes := []Box{NewBox(0, 0, 10, 10), NewBox(20, 0, 30, 10), NewBox(0, 20, 10, 30)}
	out := GreedyMerge(boxes, cost)
	if len(out) != 1 {
		t.Fatalf("merged to %d regions, want 1", len(out))
	}
}

func TestGreedyMergeKeepsDistantBoxesSeparate(t *testing.T) {
	// Pure-area cost: merging is never strictly profitable, so distant
	// boxes stay separate.
	cost := func(b Box) float64 { return b.Area() }
	boxes := []Box{NewBox(0, 0, 10, 10), NewBox(500, 500, 510, 510)}
	out := GreedyMerge(boxes, cost)
	if len(out) != 2 {
		t.Fatalf("merged distant boxes: %v", out)
	}
}

func TestGreedyMergeDropsEmptyAndPreservesCoverage(t *testing.T) {
	cost := func(b Box) float64 { return 1 + b.Area()/1e4 }
	boxes := []Box{{}, NewBox(0, 0, 10, 10), NewBox(5, 5, 20, 20)}
	out := GreedyMerge(boxes, cost)
	for _, b := range boxes[1:] {
		covered := false
		for _, o := range out {
			if o.ContainsBox(b) {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("input box %v not covered by output %v", b, out)
		}
	}
}
