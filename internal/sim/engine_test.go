package sim

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/video"
)

// TestParallelMatchesSerial is the engine's determinism contract: the
// sharded parallel runner must reproduce the serial Run bit for bit at
// every worker count, because both paths accumulate per-sequence shards
// and merge them in dataset order.
func TestParallelMatchesSerial(t *testing.T) {
	ds := video.Generate(video.MiniKITTIPreset(), 1)
	spec := SystemSpec{Kind: CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: core.DefaultConfig()}
	serial := Run(spec.MustBuild(ds.Classes), ds)

	for _, workers := range []int{1, 2, 8} {
		par, err := RunParallel(spec.Factory(ds.Classes), ds, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if par.SystemName != serial.SystemName || par.Dataset != serial.Dataset {
			t.Errorf("workers=%d: identity mismatch: %q/%q vs %q/%q",
				workers, par.SystemName, par.Dataset, serial.SystemName, serial.Dataset)
		}
		if par.Frames != serial.Frames {
			t.Errorf("workers=%d: frames = %d, want %d", workers, par.Frames, serial.Frames)
		}
		if par.TotalOps != serial.TotalOps {
			t.Errorf("workers=%d: TotalOps = %+v, want %+v", workers, par.TotalOps, serial.TotalOps)
		}
		if par.AvgProposals != serial.AvgProposals {
			t.Errorf("workers=%d: AvgProposals = %v, want %v", workers, par.AvgProposals, serial.AvgProposals)
		}
		if par.AvgCoverage != serial.AvgCoverage {
			t.Errorf("workers=%d: AvgCoverage = %v, want %v", workers, par.AvgCoverage, serial.AvgCoverage)
		}
		if !reflect.DeepEqual(par.Detections, serial.Detections) {
			t.Errorf("workers=%d: detections differ from serial run", workers)
		}
	}
}

// TestParallelStatelessSystems checks the engine on the other two
// architectures too: the single-model detector (stateless) and the
// plain cascade.
func TestParallelStatelessSystems(t *testing.T) {
	ds := video.Generate(video.MiniKITTIPreset(), 1)
	for _, spec := range []SystemSpec{
		{Kind: Single, Refinement: "resnet10b"},
		{Kind: Cascaded, Proposal: "resnet10b", Refinement: "resnet18", Cfg: core.DefaultConfig()},
	} {
		serial := Run(spec.MustBuild(ds.Classes), ds)
		par := Engine{Workers: 4}.MustRun(spec, ds)
		if !reflect.DeepEqual(par, serial) {
			t.Errorf("%s %s: parallel result differs from serial", spec.Kind, spec.Refinement)
		}
	}
}

// TestRunFactoryError verifies that a broken factory surfaces as an
// error before any work is scheduled.
func TestRunFactoryError(t *testing.T) {
	ds := video.Generate(video.MiniKITTIPreset(), 1)
	if _, err := (Engine{Workers: 4}).Run(SystemSpec{Kind: Single, Refinement: "nope"}, ds); err == nil {
		t.Fatal("expected build error for unknown model")
	}
}

// TestEngineTable7MatchesSerial pins the sharded Table 7 path to the
// single-worker result.
func TestEngineTable7MatchesSerial(t *testing.T) {
	ds := video.Generate(video.MiniKITTIPreset(), 1)
	serial := Engine{Workers: 1}.Table7(ds)
	par := Engine{Workers: 8}.Table7(ds)
	if !reflect.DeepEqual(par, serial) {
		t.Errorf("Table7 parallel = %+v, want %+v", par, serial)
	}
}
