// Package sim is the experiment harness: it runs a detection System over
// a dataset, collects detections and operation counts, evaluates the
// paper's metrics, and formats the rows of every table and figure in the
// evaluation section.
package sim

import (
	"math"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/metrics"
	"repro/internal/ops"
)

// RunResult is the raw outcome of running one system over one dataset.
type RunResult struct {
	SystemName string
	Dataset    string

	// Detections per sequence per frame, ready for the metrics layer.
	Detections metrics.Detections

	// Frames is the number of frames processed.
	Frames int

	// TotalOps accumulates the operation breakdown over all frames.
	TotalOps core.OpsBreakdown

	// Mean per-frame statistics.
	AvgProposals float64
	AvgCoverage  float64
}

// AvgOps returns the per-frame mean operation breakdown.
func (r *RunResult) AvgOps() core.OpsBreakdown {
	return r.TotalOps.Scale(float64(r.Frames))
}

// AvgGops returns the per-frame mean total in Gops, the unit of the
// paper's tables.
func (r *RunResult) AvgGops() float64 {
	return ops.Gops(r.AvgOps().Total())
}

// Run executes the system over every sequence of the dataset, resetting
// per-sequence state in between (tracker state never crosses clips).
// It is the serial path of the sharded engine: each sequence is
// accumulated into its own shard and the shards are merged in dataset
// order, exactly as RunParallel does, so the two agree bit for bit.
func Run(sys core.System, ds *dataset.Dataset) *RunResult {
	shards := make([]seqShard, len(ds.Sequences))
	for si := range ds.Sequences {
		shards[si] = runSequence(sys, &ds.Sequences[si])
	}
	return mergeShards(sys.Name(), ds, shards)
}

// Evaluation bundles the metric outcomes the tables report.
type Evaluation struct {
	MAP        float64
	PerClassAP map[dataset.Class]float64

	// MeanDelay is mD@Beta; NaN when the dataset cannot support delay
	// measurement (sparse labels, Section 7.1).
	MeanDelay     float64
	PerClassDelay map[dataset.Class]float64
	Threshold     float64
	Beta          float64
}

// Evaluate computes mAP and (for densely labeled datasets) mD@beta for a
// run at the given difficulty.
func Evaluate(ds *dataset.Dataset, r *RunResult, diff dataset.Difficulty, beta float64) Evaluation {
	ev := Evaluation{Beta: beta}
	ev.MAP, ev.PerClassAP = metrics.MAP(ds, r.Detections, diff)
	if ds.NumLabeledFrames() == ds.NumFrames() && ds.NumFrames() > 0 {
		ev.MeanDelay, ev.PerClassDelay, ev.Threshold = metrics.MeanDelayAtPrecision(ds, r.Detections, diff, beta)
	} else {
		ev.MeanDelay = math.NaN()
	}
	return ev
}
