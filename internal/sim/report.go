package sim

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/dataset"
	"repro/internal/metrics"
)

// Report bundles every regenerated experiment in machine-readable form,
// so a reproduction run can be archived and diffed (e.g. in CI) against
// a previous one.
type Report struct {
	// Seed and dataset shapes identify the run.
	Seed        int64  `json:"seed"`
	KITTIName   string `json:"kitti_dataset"`
	KITTIFrames int    `json:"kitti_frames"`
	CityName    string `json:"citypersons_dataset,omitempty"`
	CityFrames  int    `json:"citypersons_frames,omitempty"`

	Table1  []Table1Row                     `json:"table1"`
	Table2  []MainRow                       `json:"table2"`
	Table3  []BreakdownRow                  `json:"table3"`
	Table4  []StudyRow                      `json:"table4"`
	Table5  []StudyRow                      `json:"table5"`
	Table6  []CityRow                       `json:"table6,omitempty"`
	Table7  []TimingRow                     `json:"table7"`
	Table8  []StudyRow                      `json:"table8"`
	Figure6 []SweepPoint                    `json:"figure6"`
	Figure7 map[string][]metrics.CurvePoint `json:"figure7"`
}

// RunAll regenerates every table and figure on the default engine.
// city may be nil to skip the CityPersons experiments.
func RunAll(kitti, city *dataset.Dataset, seed int64) *Report {
	return DefaultEngine.RunAll(kitti, city, seed)
}

// RunAll regenerates every table and figure on this engine's worker
// pool. city may be nil to skip the CityPersons experiments.
func (e Engine) RunAll(kitti, city *dataset.Dataset, seed int64) *Report {
	r := &Report{
		Seed:        seed,
		KITTIName:   kitti.Name,
		KITTIFrames: kitti.NumFrames(),
		Table1:      Table1(),
		Table2:      e.Table2(kitti),
		Table3:      e.Table3(kitti),
		Table4:      e.Table4(kitti),
		Table5:      e.Table5(kitti),
		Table7:      e.Table7(kitti),
		Table8:      e.Table8(kitti),
		Figure6:     e.Figure6(kitti, nil),
	}
	if city != nil {
		r.CityName = city.Name
		r.CityFrames = city.NumFrames()
		r.Table6 = e.Table6(city)
	}
	curves := e.Figure7(kitti)
	r.Figure7 = map[string][]metrics.CurvePoint{}
	// Rekeying map to map: every iteration writes a distinct key, so
	// the resulting map is identical under any visit order, and the
	// JSON encoder marshals map keys sorted.
	for c, pts := range curves { //detlint:ok order-free map rekey; encoding/json sorts map keys
		r.Figure7[c.String()] = pts
	}
	return r
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		return fmt.Errorf("sim: encode report: %w", err)
	}
	return nil
}

// LoadReport reads a report written by WriteJSON.
func LoadReport(rd io.Reader) (*Report, error) {
	var r Report
	if err := json.NewDecoder(rd).Decode(&r); err != nil {
		return nil, fmt.Errorf("sim: decode report: %w", err)
	}
	return &r, nil
}

// ShapeCheck verifies the DESIGN.md shape criteria on a report and
// returns a list of violations (empty when the reproduction holds).
// This is the automated form of EXPERIMENTS.md's "shape holds" claims.
func (r *Report) ShapeCheck() []string {
	var bad []string
	fail := func(format string, args ...any) { bad = append(bad, fmt.Sprintf(format, args...)) }

	if len(r.Table2) == 5 {
		single, cat10a, casc10a := r.Table2[0], r.Table2[2], r.Table2[1]
		if cat10a.MAPHard < single.MAPHard-0.02 {
			fail("table2: CaTDet Hard mAP %.3f well below single %.3f", cat10a.MAPHard, single.MAPHard)
		}
		if single.Gops/cat10a.Gops < 3 {
			fail("table2: ops saving %.1fx < 3x", single.Gops/cat10a.Gops)
		}
		if casc10a.MAPHard >= cat10a.MAPHard {
			fail("table2: cascade mAP %.3f not below CaTDet %.3f", casc10a.MAPHard, cat10a.MAPHard)
		}
	} else {
		fail("table2: %d rows", len(r.Table2))
	}

	// Table 4: CaTDet mAP flat across proposal nets.
	var singles, cats []StudyRow
	for _, row := range r.Table4 {
		if row.Setting == "FR-CNN" {
			singles = append(singles, row)
		} else {
			cats = append(cats, row)
		}
	}
	if len(singles) >= 2 && len(cats) >= 2 {
		sSpread := singles[0].MAP - singles[len(singles)-1].MAP
		cSpread := cats[0].MAP - cats[len(cats)-1].MAP
		if cSpread < 0 {
			cSpread = -cSpread
		}
		if cSpread > sSpread/2 {
			fail("table4: CaTDet spread %.3f not flat vs single spread %.3f", cSpread, sSpread)
		}
	}

	// Table 6: cascade collapses, CaTDet recovers.
	if len(r.Table6) == 5 {
		single, casc, cat := r.Table6[0], r.Table6[1], r.Table6[2]
		if !(casc.MAP < single.MAP-0.02 && cat.MAP > casc.MAP+0.02) {
			fail("table6: cascade/CaTDet contrast missing (%.3f / %.3f / %.3f)", single.MAP, casc.MAP, cat.MAP)
		}
	}

	// Table 7: CaTDet at least 2x faster on GPU time.
	if len(r.Table7) == 2 && r.Table7[1].GPUOnly > r.Table7[0].GPUOnly/2 {
		fail("table7: GPU speedup %.1fx < 2x", r.Table7[0].GPUOnly/r.Table7[1].GPUOnly)
	}

	// Figure 6: without the tracker, mAP falls with C-thresh; with it,
	// it stays flat. The flatness window excludes C-thresh > 0.4: at
	// the extreme 0.6 point even the paper's with-tracker curves bend.
	var wLo, wMid, oLo, oHi *SweepPoint
	for i := range r.Figure6 {
		p := &r.Figure6[i]
		if p.Model != "resnet10a" {
			continue
		}
		if p.Tracker {
			if wLo == nil || p.CThresh < wLo.CThresh {
				wLo = p
			}
			if p.CThresh <= 0.4+1e-9 && (wMid == nil || p.CThresh > wMid.CThresh) {
				wMid = p
			}
		} else {
			if oLo == nil || p.CThresh < oLo.CThresh {
				oLo = p
			}
			if oHi == nil || p.CThresh > oHi.CThresh {
				oHi = p
			}
		}
	}
	if wLo != nil && wMid != nil && oLo != nil && oHi != nil {
		if oLo.MAP-oHi.MAP < 0.02 {
			fail("figure6: no-tracker mAP did not fall with C-thresh (%.3f -> %.3f)", oLo.MAP, oHi.MAP)
		}
		if wLo.MAP-wMid.MAP > 0.05 {
			fail("figure6: with-tracker mAP fell %.3f over C-thresh <= 0.4", wLo.MAP-wMid.MAP)
		}
	}
	return bad
}
