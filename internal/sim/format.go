package sim

import (
	"fmt"
	"io"
	"math"
	"text/tabwriter"

	"repro/internal/dataset"
	"repro/internal/metrics"
)

func newTab(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

func fmtDelay(d float64) string {
	if math.IsNaN(d) {
		return "n/a"
	}
	return fmt.Sprintf("%.1f", d)
}

// WriteTable1 renders Table 1.
func WriteTable1(w io.Writer, rows []Table1Row) {
	tw := newTab(w)
	fmt.Fprintln(tw, "model\tconv1\tblock1\tblock2\tblock3\tblock4\trepeats\tops(G)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%d\t%d\t%d\tx%d\t%.1f\n",
			r.Spec.Name, r.Spec.Conv1, r.Spec.Blocks[0], r.Spec.Blocks[1],
			r.Spec.Blocks[2], r.Spec.Blocks[3], r.Spec.Repeats, r.Gops)
	}
	tw.Flush()
}

// WriteTable2 renders Table 2.
func WriteTable2(w io.Writer, rows []MainRow) {
	tw := newTab(w)
	fmt.Fprintln(tw, "System\tops(G)\tmAP(Mod)\tmAP(Hard)\tmD@0.8(Mod)\tmD@0.8(Hard)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.3f\t%.3f\t%s\t%s\n",
			r.System, r.Gops, r.MAPModerate, r.MAPHard,
			fmtDelay(r.MD08Moderate), fmtDelay(r.MD08Hard))
	}
	tw.Flush()
}

// WriteTable3 renders Table 3.
func WriteTable3(w io.Writer, rows []BreakdownRow) {
	tw := newTab(w)
	fmt.Fprintln(tw, "System\tTotal\tProposal\tRefinement\tFromTracker\tFromProposal")
	for _, r := range rows {
		ft, fp := "/", "/"
		if r.FromTracker > 0 {
			ft = fmt.Sprintf("%.1f", r.FromTracker)
		}
		if r.FromTracker > 0 { // CaTDet rows report both shares
			fp = fmt.Sprintf("%.1f", r.FromProposal)
		}
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\t%s\t%s\n",
			r.System, r.Total, r.Proposal, r.Refinement, ft, fp)
	}
	tw.Flush()
}

// WriteStudy renders Table 4, 5 or 8.
func WriteStudy(w io.Writer, rows []StudyRow) {
	tw := newTab(w)
	fmt.Fprintln(tw, "Model\tSetting\tmAP\tmD@0.8\tops(G)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\t%.3f\t%s\t%.1f\n", r.Model, r.Setting, r.MAP, fmtDelay(r.MD08), r.Gops)
	}
	tw.Flush()
}

// WriteTable6 renders Table 6.
func WriteTable6(w io.Writer, rows []CityRow) {
	tw := newTab(w)
	fmt.Fprintln(tw, "System\tmAP\tops(G)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.1f\n", r.System, r.MAP, r.Gops)
	}
	tw.Flush()
}

// WriteTable7 renders Table 7.
func WriteTable7(w io.Writer, rows []TimingRow) {
	tw := newTab(w)
	fmt.Fprintln(tw, "System\tTotal(s)\tGPU-only(s)\tlaunches/frame")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.1f\n", r.System, r.Total, r.GPUOnly, r.AvgLaunches)
	}
	tw.Flush()
}

// WriteFigure6 renders the Figure 6 sweep as a table of series.
func WriteFigure6(w io.Writer, pts []SweepPoint) {
	tw := newTab(w)
	fmt.Fprintln(tw, "Model\tTracker\tC-thresh\tmAP\tmD@0.8\tops(G)")
	for _, p := range pts {
		tr := "w/"
		if !p.Tracker {
			tr = "w/o"
		}
		fmt.Fprintf(tw, "%s\t%s\t%.2f\t%.3f\t%s\t%.1f\n", p.Model, tr, p.CThresh, p.MAP, fmtDelay(p.MD08), p.Gops)
	}
	tw.Flush()
}

// WriteFigure7 renders the per-class precision/recall/delay curves.
func WriteFigure7(w io.Writer, curves map[dataset.Class][]metrics.CurvePoint, classes []dataset.Class) {
	tw := newTab(w)
	fmt.Fprintln(tw, "Class\tPrecision\tRecall\tDelay")
	for _, c := range classes {
		for _, p := range curves[c] {
			fmt.Fprintf(tw, "%s\t%.3f\t%.3f\t%.1f\n", c, p.Precision, p.Recall, p.Delay)
		}
	}
	tw.Flush()
}
