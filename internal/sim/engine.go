package sim

import (
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detector"
	"repro/internal/geom"
	"repro/internal/metrics"
)

// SystemFactory builds a fresh System instance. Systems are stateful —
// tracker state is reset per sequence but lives inside the instance —
// so the parallel engine calls the factory once per worker instead of
// sharing one system across goroutines.
type SystemFactory func() (core.System, error)

// Factory returns a SystemFactory that builds this spec against the
// given class vocabulary.
func (s SystemSpec) Factory(classes []dataset.Class) SystemFactory {
	return func() (core.System, error) { return s.Build(classes) }
}

// Engine runs experiments sharded per sequence across a worker pool.
// The zero value uses GOMAXPROCS workers; Workers = 1 degenerates to
// the serial path. Output is byte-identical for every worker count:
// both the serial and the parallel paths accumulate each sequence into
// its own shard and merge the shards in dataset order, so the floating
// point addition order never depends on scheduling.
type Engine struct {
	// Workers is the size of the worker pool; <= 0 means GOMAXPROCS.
	Workers int
}

// DefaultEngine is the engine the package-level table and figure
// functions run on.
var DefaultEngine = Engine{}

func (e Engine) workers(nseq int) int {
	w := e.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > nseq {
		w = nseq
	}
	if w < 1 {
		w = 1
	}
	return w
}

// mapSequences fans the dataset's sequences out over the engine's
// worker pool. newWorker creates one private worker state per
// goroutine (never shared, and always called sequentially from this
// goroutine); fn consumes sequences one at a time. Results are
// returned indexed by sequence, so callers can merge them in dataset
// order regardless of how the pool scheduled the work.
func mapSequences[W, S any](e Engine, ds *dataset.Dataset, newWorker func() (W, error), fn func(W, *dataset.Sequence) S) ([]S, error) {
	out := make([]S, len(ds.Sequences))
	nw := e.workers(len(ds.Sequences))
	if nw <= 1 {
		w, err := newWorker()
		if err != nil {
			return nil, err
		}
		for si := range ds.Sequences {
			out[si] = fn(w, &ds.Sequences[si])
		}
		return out, nil
	}

	// Build every worker up front so a factory error surfaces before
	// any work is spent.
	workers := make([]W, nw)
	for i := range workers {
		w, err := newWorker()
		if err != nil {
			return nil, err
		}
		workers[i] = w
	}

	jobs := make(chan int)
	var wg sync.WaitGroup
	for i := 0; i < nw; i++ {
		wg.Add(1)
		go func(w W) {
			defer wg.Done()
			for si := range jobs {
				out[si] = fn(w, &ds.Sequences[si])
			}
		}(workers[i])
	}
	for si := range ds.Sequences {
		jobs <- si
	}
	close(jobs)
	wg.Wait()
	return out, nil
}

// seqShard is one sequence's share of a RunResult.
type seqShard struct {
	frames   [][]geom.Scored
	nFrames  int
	ops      core.OpsBreakdown
	sumProps float64
	sumCover float64
}

// runSequence resets the system for the sequence and steps every frame,
// accumulating the shard. This is the unit of work of both the serial
// and the parallel runner.
func runSequence(sys core.System, seq *dataset.Sequence) seqShard {
	sh := seqShard{frames: make([][]geom.Scored, len(seq.Frames))}
	sys.Reset(seq)
	for fi := range seq.Frames {
		out := sys.Step(detector.Frame{
			SeqID:   seq.ID,
			Index:   fi,
			Width:   seq.Width,
			Height:  seq.Height,
			Objects: seq.Frames[fi].Objects,
		})
		sh.frames[fi] = out.Detections
		sh.ops.Add(out.Ops)
		sh.nFrames++
		sh.sumProps += float64(out.NumProposals)
		sh.sumCover += out.Coverage
	}
	return sh
}

// mergeShards folds per-sequence shards, in dataset order, into one
// RunResult. The fold order is fixed by the dataset, not by worker
// scheduling, which makes the merge deterministic.
func mergeShards(sysName string, ds *dataset.Dataset, shards []seqShard) *RunResult {
	res := &RunResult{
		SystemName: sysName,
		Dataset:    ds.Name,
		Detections: metricsDetections(ds, shards),
	}
	sumProps, sumCover := 0.0, 0.0
	for si := range shards {
		res.TotalOps.Add(shards[si].ops)
		res.Frames += shards[si].nFrames
		sumProps += shards[si].sumProps
		sumCover += shards[si].sumCover
	}
	if res.Frames > 0 {
		res.AvgProposals = sumProps / float64(res.Frames)
		res.AvgCoverage = sumCover / float64(res.Frames)
	}
	return res
}

func metricsDetections(ds *dataset.Dataset, shards []seqShard) metrics.Detections {
	dets := make(metrics.Detections, len(shards))
	for si := range shards {
		dets[ds.Sequences[si].ID] = shards[si].frames
	}
	return dets
}

// RunParallel executes the system built by factory over every sequence
// of the dataset, sharded across workers (<= 0 means GOMAXPROCS). Each
// worker owns a private system instance; per-sequence results are
// merged in dataset order, so the output is byte-identical to the
// serial Run for any worker count.
func RunParallel(factory SystemFactory, ds *dataset.Dataset, workers int) (*RunResult, error) {
	return Engine{Workers: workers}.RunFactory(factory, ds)
}

// RunFactory is RunParallel on this engine's worker pool.
func (e Engine) RunFactory(factory SystemFactory, ds *dataset.Dataset) (*RunResult, error) {
	// One probe instance names the result and validates the factory
	// before the pool spins up; it doubles as the first worker.
	probe, err := factory()
	if err != nil {
		return nil, err
	}
	first := true
	shards, err := mapSequences(e, ds, func() (core.System, error) {
		if first {
			first = false
			return probe, nil
		}
		return factory()
	}, runSequence)
	if err != nil {
		return nil, err
	}
	return mergeShards(probe.Name(), ds, shards), nil
}

// Run builds the spec against the dataset's classes and executes it on
// this engine's worker pool.
func (e Engine) Run(spec SystemSpec, ds *dataset.Dataset) (*RunResult, error) {
	return e.RunFactory(spec.Factory(ds.Classes), ds)
}

// MustRun is Run for static specs; it panics on build errors.
func (e Engine) MustRun(spec SystemSpec, ds *dataset.Dataset) *RunResult {
	r, err := e.Run(spec, ds)
	if err != nil {
		panic(err)
	}
	return r
}
