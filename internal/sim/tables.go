package sim

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detector"
	"repro/internal/gpumodel"
	"repro/internal/metrics"
	"repro/internal/ops"
)

// Beta is the precision level of the paper's delay metric (mD@0.8).
const Beta = 0.8

// Table1Row is one column of the paper's Table 1: a proposal-network
// architecture and its full-frame operation count at KITTI resolution.
type Table1Row struct {
	Spec ops.SmallResNetSpec
	Gops float64
}

// Table1 regenerates Table 1 from the layer specs and the cost model.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, spec := range ops.Table1Specs {
		m := ops.MustCostModel(spec.Name)
		rows = append(rows, Table1Row{
			Spec: spec,
			Gops: ops.Gops(m.FullFrameOps(ops.KITTIWidth, ops.KITTIHeight)),
		})
	}
	return rows
}

// MainRow is one row of Table 2 (KITTI main results).
type MainRow struct {
	System       string
	Gops         float64
	MAPModerate  float64
	MAPHard      float64
	MD08Moderate float64
	MD08Hard     float64
}

// table2Specs are the five systems of Table 2.
func table2Specs() []SystemSpec {
	cfg := core.DefaultConfig()
	return []SystemSpec{
		{Kind: Single, Refinement: "resnet50"},
		{Kind: Cascaded, Proposal: "resnet10a", Refinement: "resnet50", Cfg: cfg},
		{Kind: CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: cfg},
		{Kind: Cascaded, Proposal: "resnet10b", Refinement: "resnet50", Cfg: cfg},
		{Kind: CaTDet, Proposal: "resnet10b", Refinement: "resnet50", Cfg: cfg},
	}
}

// Table2 runs the five KITTI systems and reports ops, mAP and mD@0.8 at
// Moderate and Hard.
func Table2(ds *dataset.Dataset) []MainRow {
	var rows []MainRow
	for _, spec := range table2Specs() {
		sys := spec.MustBuild(ds.Classes)
		r := Run(sys, ds)
		evM := Evaluate(ds, r, dataset.Moderate, Beta)
		evH := Evaluate(ds, r, dataset.Hard, Beta)
		rows = append(rows, MainRow{
			System:       sys.Name(),
			Gops:         r.AvgGops(),
			MAPModerate:  evM.MAP,
			MAPHard:      evH.MAP,
			MD08Moderate: evM.MeanDelay,
			MD08Hard:     evH.MeanDelay,
		})
	}
	return rows
}

// BreakdownRow is one row of Table 3 (operation breakdown, Gops).
type BreakdownRow struct {
	System       string
	Total        float64
	Proposal     float64
	Refinement   float64
	FromTracker  float64
	FromProposal float64
}

// Table3 reports the per-frame operation breakdown of the four cascade
// systems of Table 2.
func Table3(ds *dataset.Dataset) []BreakdownRow {
	var rows []BreakdownRow
	for _, spec := range table2Specs()[1:] {
		sys := spec.MustBuild(ds.Classes)
		r := Run(sys, ds)
		avg := r.AvgOps()
		rows = append(rows, BreakdownRow{
			System:       sys.Name(),
			Total:        ops.Gops(avg.Total()),
			Proposal:     ops.Gops(avg.Proposal),
			Refinement:   ops.Gops(avg.Refinement),
			FromTracker:  ops.Gops(avg.RefinementFromTracker),
			FromProposal: ops.Gops(avg.RefinementFromProposal),
		})
	}
	return rows
}

// StudyRow is one row of Table 4 or Table 5: the same model evaluated
// standalone ("FR-CNN") and inside CaTDet.
type StudyRow struct {
	Model   string
	Setting string // "FR-CNN" or "CaTDet(P)" / "CaTDet(R)"
	MAP     float64
	MD08    float64
	Gops    float64
}

// Table4 sweeps the proposal network (refinement fixed to ResNet-50):
// every model is evaluated as a single Faster R-CNN and as CaTDet's
// proposal net, at KITTI Hard.
func Table4(ds *dataset.Dataset) []StudyRow {
	var rows []StudyRow
	for _, name := range []string{"resnet18", "resnet10a", "resnet10b", "resnet10c"} {
		single := SystemSpec{Kind: Single, Refinement: name}.MustBuild(ds.Classes)
		r := Run(single, ds)
		ev := Evaluate(ds, r, dataset.Hard, Beta)
		rows = append(rows, StudyRow{Model: name, Setting: "FR-CNN", MAP: ev.MAP, MD08: ev.MeanDelay, Gops: r.AvgGops()})

		cat := SystemSpec{Kind: CaTDet, Proposal: name, Refinement: "resnet50", Cfg: core.DefaultConfig()}.MustBuild(ds.Classes)
		r = Run(cat, ds)
		ev = Evaluate(ds, r, dataset.Hard, Beta)
		rows = append(rows, StudyRow{Model: name, Setting: "CaTDet(P)", MAP: ev.MAP, MD08: ev.MeanDelay, Gops: r.AvgGops()})
	}
	return rows
}

// Table5 sweeps the refinement network (proposal fixed to ResNet-10b)
// at KITTI Hard.
func Table5(ds *dataset.Dataset) []StudyRow {
	var rows []StudyRow
	for _, name := range []string{"resnet18", "resnet50", "vgg16"} {
		single := SystemSpec{Kind: Single, Refinement: name}.MustBuild(ds.Classes)
		r := Run(single, ds)
		ev := Evaluate(ds, r, dataset.Hard, Beta)
		rows = append(rows, StudyRow{Model: name, Setting: "FR-CNN", MAP: ev.MAP, MD08: ev.MeanDelay, Gops: r.AvgGops()})

		cat := SystemSpec{Kind: CaTDet, Proposal: "resnet10b", Refinement: name, Cfg: core.DefaultConfig()}.MustBuild(ds.Classes)
		r = Run(cat, ds)
		ev = Evaluate(ds, r, dataset.Hard, Beta)
		rows = append(rows, StudyRow{Model: name, Setting: "CaTDet(R)", MAP: ev.MAP, MD08: ev.MeanDelay, Gops: r.AvgGops()})
	}
	return rows
}

// CityRow is one row of Table 6 (CityPersons: mAP and ops only — the
// sparse labels cannot support the delay metric).
type CityRow struct {
	System string
	MAP    float64
	Gops   float64
}

// Table6 runs the Table 2 systems on the CityPersons-sim dataset with
// identical hyper-parameters ("to ensure that CaTDet systems are robust
// across different scenarios").
func Table6(ds *dataset.Dataset) []CityRow {
	var rows []CityRow
	for _, spec := range table2Specs() {
		sys := spec.MustBuild(ds.Classes)
		r := Run(sys, ds)
		// CityPersons is evaluated with the VOC protocol on Person;
		// the Hard filter admits every reasonably-sized box.
		ev := Evaluate(ds, r, dataset.Hard, Beta)
		rows = append(rows, CityRow{System: sys.Name(), MAP: ev.MAP, Gops: r.AvgGops()})
	}
	return rows
}

// TimingRow is one row of Table 7 (measured execution time on the GPU
// platform, here estimated by the Appendix I linear model).
type TimingRow struct {
	System  string
	Total   float64
	GPUOnly float64
	// AvgLaunches is the mean number of merged refinement launches per
	// frame (diagnostic, not in the paper's table).
	AvgLaunches float64
}

// Table7 estimates per-frame execution times for the single-model
// ResNet-50 system and the (Res10a, Res50) CaTDet system using the
// GPU model with greedy region merging.
func Table7(ds *dataset.Dataset) []TimingRow {
	gm := gpumodel.Default()
	refCost := ops.MustCostModel("resnet50")

	single := gm.SingleModelFrame(refCost.FullFrameOps(ops.KITTIWidth, ops.KITTIHeight))
	rows := []TimingRow{{
		System: "Res50 Faster R-CNN", Total: single.Total, GPUOnly: single.GPU, AvgLaunches: 1,
	}}

	spec := SystemSpec{Kind: CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: core.DefaultConfig()}
	sys := spec.MustBuild(ds.Classes).(*core.CaTDet)
	var gpu, total, launches float64
	frames := 0
	for si := range ds.Sequences {
		seq := &ds.Sequences[si]
		sys.Reset(seq)
		for fi := range seq.Frames {
			out := sys.Step(detector.Frame{
				SeqID: seq.ID, Index: fi, Width: seq.Width, Height: seq.Height,
				Objects: seq.Frames[fi].Objects,
			})
			ft := gm.CaTDetFrame(out.Ops.Proposal, out.Regions,
				float64(seq.Width), float64(seq.Height), refCost, out.NumProposals)
			gpu += ft.GPU
			total += ft.Total
			launches += float64(ft.Launches)
			frames++
		}
	}
	n := float64(frames)
	rows = append(rows, TimingRow{
		System: "Res10a-Res50 CaTDet", Total: total / n, GPUOnly: gpu / n, AvgLaunches: launches / n,
	})
	return rows
}

// Table8 compares single-model RetinaNet with RetinaNet-based CaTDet at
// KITTI Moderate (Appendix II).
func Table8(ds *dataset.Dataset) []StudyRow {
	var rows []StudyRow
	single := SystemSpec{Kind: Single, Refinement: "retinanet-res50"}.MustBuild(ds.Classes)
	r := Run(single, ds)
	ev := Evaluate(ds, r, dataset.Moderate, Beta)
	rows = append(rows, StudyRow{Model: "retinanet-res50", Setting: "single", MAP: ev.MAP, MD08: ev.MeanDelay, Gops: r.AvgGops()})

	cat := SystemSpec{Kind: CaTDet, Proposal: "resnet10a", Refinement: "retinanet-res50", Cfg: core.DefaultConfig()}.MustBuild(ds.Classes)
	r = Run(cat, ds)
	ev = Evaluate(ds, r, dataset.Moderate, Beta)
	rows = append(rows, StudyRow{Model: "retinanet-res50", Setting: "CaTDet", MAP: ev.MAP, MD08: ev.MeanDelay, Gops: r.AvgGops()})
	return rows
}

// SweepPoint is one point of Figure 6: one proposal network, with or
// without the tracker, at one proposal-output threshold.
type SweepPoint struct {
	Model   string
	Tracker bool
	CThresh float64
	MAP     float64
	MD08    float64
	Gops    float64
}

// Figure6CThresh is the paper's sweep grid.
var Figure6CThresh = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6}

// Figure6 sweeps the proposal network's output threshold for three
// proposal nets, with and without the tracker (KITTI Hard, refinement
// ResNet-50).
func Figure6(ds *dataset.Dataset, cthreshs []float64) []SweepPoint {
	if cthreshs == nil {
		cthreshs = Figure6CThresh
	}
	var pts []SweepPoint
	for _, model := range []string{"resnet10a", "resnet10c", "resnet18"} {
		for _, withTracker := range []bool{true, false} {
			for _, ct := range cthreshs {
				cfg := core.DefaultConfig()
				cfg.CThresh = ct
				kind := CaTDet
				if !withTracker {
					kind = Cascaded
				}
				sys := SystemSpec{Kind: kind, Proposal: model, Refinement: "resnet50", Cfg: cfg}.MustBuild(ds.Classes)
				r := Run(sys, ds)
				ev := Evaluate(ds, r, dataset.Hard, Beta)
				pts = append(pts, SweepPoint{
					Model: model, Tracker: withTracker, CThresh: ct,
					MAP: ev.MAP, MD08: ev.MeanDelay, Gops: r.AvgGops(),
				})
			}
		}
	}
	return pts
}

// Figure7 produces the per-class recall/delay vs precision curves for
// the (Res10a, Res50) CaTDet system at KITTI Hard.
func Figure7(ds *dataset.Dataset) map[dataset.Class][]metrics.CurvePoint {
	sys := SystemSpec{Kind: CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: core.DefaultConfig()}.MustBuild(ds.Classes)
	r := Run(sys, ds)
	targets := make([]float64, 0, 26)
	for p := 0.5; p <= 1.0001; p += 0.02 {
		targets = append(targets, p)
	}
	out := map[dataset.Class][]metrics.CurvePoint{}
	for _, c := range ds.Classes {
		out[c] = metrics.DelayRecallCurve(ds, r.Detections, dataset.Hard, c, targets)
	}
	return out
}
