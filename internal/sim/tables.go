package sim

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detector"
	"repro/internal/gpumodel"
	"repro/internal/metrics"
	"repro/internal/ops"
)

// Beta is the precision level of the paper's delay metric (mD@0.8).
const Beta = 0.8

// Table1Row is one column of the paper's Table 1: a proposal-network
// architecture and its full-frame operation count at KITTI resolution.
type Table1Row struct {
	Spec ops.SmallResNetSpec
	Gops float64
}

// Table1 regenerates Table 1 from the layer specs and the cost model.
func Table1() []Table1Row {
	var rows []Table1Row
	for _, spec := range ops.Table1Specs {
		m := ops.MustCostModel(spec.Name)
		rows = append(rows, Table1Row{
			Spec: spec,
			Gops: ops.Gops(m.FullFrameOps(ops.KITTIWidth, ops.KITTIHeight)),
		})
	}
	return rows
}

// MainRow is one row of Table 2 (KITTI main results).
type MainRow struct {
	System       string
	Gops         float64
	MAPModerate  float64
	MAPHard      float64
	MD08Moderate float64
	MD08Hard     float64
}

// table2Specs are the five systems of Table 2.
func table2Specs() []SystemSpec {
	cfg := core.DefaultConfig()
	return []SystemSpec{
		{Kind: Single, Refinement: "resnet50"},
		{Kind: Cascaded, Proposal: "resnet10a", Refinement: "resnet50", Cfg: cfg},
		{Kind: CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: cfg},
		{Kind: Cascaded, Proposal: "resnet10b", Refinement: "resnet50", Cfg: cfg},
		{Kind: CaTDet, Proposal: "resnet10b", Refinement: "resnet50", Cfg: cfg},
	}
}

// Table2 runs the five KITTI systems on the default engine.
func Table2(ds *dataset.Dataset) []MainRow { return DefaultEngine.Table2(ds) }

// Table2 runs the five KITTI systems and reports ops, mAP and mD@0.8 at
// Moderate and Hard.
func (e Engine) Table2(ds *dataset.Dataset) []MainRow {
	var rows []MainRow
	for _, spec := range table2Specs() {
		r := e.MustRun(spec, ds)
		evM := Evaluate(ds, r, dataset.Moderate, Beta)
		evH := Evaluate(ds, r, dataset.Hard, Beta)
		rows = append(rows, MainRow{
			System:       r.SystemName,
			Gops:         r.AvgGops(),
			MAPModerate:  evM.MAP,
			MAPHard:      evH.MAP,
			MD08Moderate: evM.MeanDelay,
			MD08Hard:     evH.MeanDelay,
		})
	}
	return rows
}

// BreakdownRow is one row of Table 3 (operation breakdown, Gops).
type BreakdownRow struct {
	System       string
	Total        float64
	Proposal     float64
	Refinement   float64
	FromTracker  float64
	FromProposal float64
}

// Table3 reports the breakdown of the cascade systems on the default
// engine.
func Table3(ds *dataset.Dataset) []BreakdownRow { return DefaultEngine.Table3(ds) }

// Table3 reports the per-frame operation breakdown of the four cascade
// systems of Table 2.
func (e Engine) Table3(ds *dataset.Dataset) []BreakdownRow {
	var rows []BreakdownRow
	for _, spec := range table2Specs()[1:] {
		r := e.MustRun(spec, ds)
		avg := r.AvgOps()
		rows = append(rows, BreakdownRow{
			System:       r.SystemName,
			Total:        ops.Gops(avg.Total()),
			Proposal:     ops.Gops(avg.Proposal),
			Refinement:   ops.Gops(avg.Refinement),
			FromTracker:  ops.Gops(avg.RefinementFromTracker),
			FromProposal: ops.Gops(avg.RefinementFromProposal),
		})
	}
	return rows
}

// StudyRow is one row of Table 4 or Table 5: the same model evaluated
// standalone ("FR-CNN") and inside CaTDet.
type StudyRow struct {
	Model   string
	Setting string // "FR-CNN" or "CaTDet(P)" / "CaTDet(R)"
	MAP     float64
	MD08    float64
	Gops    float64
}

// studyRow runs one spec and formats it as a study row at the given
// difficulty.
func (e Engine) studyRow(ds *dataset.Dataset, spec SystemSpec, model, setting string, diff dataset.Difficulty) StudyRow {
	r := e.MustRun(spec, ds)
	ev := Evaluate(ds, r, diff, Beta)
	return StudyRow{Model: model, Setting: setting, MAP: ev.MAP, MD08: ev.MeanDelay, Gops: r.AvgGops()}
}

// Table4 sweeps the proposal network on the default engine.
func Table4(ds *dataset.Dataset) []StudyRow { return DefaultEngine.Table4(ds) }

// Table4 sweeps the proposal network (refinement fixed to ResNet-50):
// every model is evaluated as a single Faster R-CNN and as CaTDet's
// proposal net, at KITTI Hard.
func (e Engine) Table4(ds *dataset.Dataset) []StudyRow {
	var rows []StudyRow
	for _, name := range []string{"resnet18", "resnet10a", "resnet10b", "resnet10c"} {
		rows = append(rows,
			e.studyRow(ds, SystemSpec{Kind: Single, Refinement: name}, name, "FR-CNN", dataset.Hard),
			e.studyRow(ds, SystemSpec{Kind: CaTDet, Proposal: name, Refinement: "resnet50", Cfg: core.DefaultConfig()}, name, "CaTDet(P)", dataset.Hard))
	}
	return rows
}

// Table5 sweeps the refinement network on the default engine.
func Table5(ds *dataset.Dataset) []StudyRow { return DefaultEngine.Table5(ds) }

// Table5 sweeps the refinement network (proposal fixed to ResNet-10b)
// at KITTI Hard.
func (e Engine) Table5(ds *dataset.Dataset) []StudyRow {
	var rows []StudyRow
	for _, name := range []string{"resnet18", "resnet50", "vgg16"} {
		rows = append(rows,
			e.studyRow(ds, SystemSpec{Kind: Single, Refinement: name}, name, "FR-CNN", dataset.Hard),
			e.studyRow(ds, SystemSpec{Kind: CaTDet, Proposal: "resnet10b", Refinement: name, Cfg: core.DefaultConfig()}, name, "CaTDet(R)", dataset.Hard))
	}
	return rows
}

// CityRow is one row of Table 6 (CityPersons: mAP and ops only — the
// sparse labels cannot support the delay metric).
type CityRow struct {
	System string
	MAP    float64
	Gops   float64
}

// Table6 runs the CityPersons experiments on the default engine.
func Table6(ds *dataset.Dataset) []CityRow { return DefaultEngine.Table6(ds) }

// Table6 runs the Table 2 systems on the CityPersons-sim dataset with
// identical hyper-parameters ("to ensure that CaTDet systems are robust
// across different scenarios").
func (e Engine) Table6(ds *dataset.Dataset) []CityRow {
	var rows []CityRow
	for _, spec := range table2Specs() {
		r := e.MustRun(spec, ds)
		// CityPersons is evaluated with the VOC protocol on Person;
		// the Hard filter admits every reasonably-sized box.
		ev := Evaluate(ds, r, dataset.Hard, Beta)
		rows = append(rows, CityRow{System: r.SystemName, MAP: ev.MAP, Gops: r.AvgGops()})
	}
	return rows
}

// TimingRow is one row of Table 7 (measured execution time on the GPU
// platform, here estimated by the Appendix I linear model).
type TimingRow struct {
	System  string
	Total   float64
	GPUOnly float64
	// AvgLaunches is the mean number of merged refinement launches per
	// frame (diagnostic, not in the paper's table).
	AvgLaunches float64
}

// Table7 estimates GPU-platform timing on the default engine.
func Table7(ds *dataset.Dataset) []TimingRow { return DefaultEngine.Table7(ds) }

// timingShard is one sequence's share of the Table 7 accounting.
type timingShard struct {
	gpu, total, launches float64
	frames               int
}

// Table7 estimates per-frame execution times for the single-model
// ResNet-50 system and the (Res10a, Res50) CaTDet system using the
// GPU model with greedy region merging. The CaTDet pass is sharded per
// sequence like every other run.
func (e Engine) Table7(ds *dataset.Dataset) []TimingRow {
	gm := gpumodel.Default()
	refCost := ops.MustCostModel("resnet50")

	single := gm.SingleModelFrame(refCost.FullFrameOps(ops.KITTIWidth, ops.KITTIHeight))
	rows := []TimingRow{{
		System: "Res50 Faster R-CNN", Total: single.Total, GPUOnly: single.GPU, AvgLaunches: 1,
	}}

	spec := SystemSpec{Kind: CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: core.DefaultConfig()}
	shards, err := mapSequences(e, ds,
		func() (*core.CaTDet, error) {
			sys, err := spec.Build(ds.Classes)
			if err != nil {
				return nil, err
			}
			return sys.(*core.CaTDet), nil
		},
		func(sys *core.CaTDet, seq *dataset.Sequence) timingShard {
			var sh timingShard
			sys.Reset(seq)
			for fi := range seq.Frames {
				out := sys.Step(detector.Frame{
					SeqID: seq.ID, Index: fi, Width: seq.Width, Height: seq.Height,
					Objects: seq.Frames[fi].Objects,
				})
				ft := gm.CaTDetFrame(out.Ops.Proposal, out.Regions,
					float64(seq.Width), float64(seq.Height), refCost, out.NumProposals)
				sh.gpu += ft.GPU
				sh.total += ft.Total
				sh.launches += float64(ft.Launches)
				sh.frames++
			}
			return sh
		})
	if err != nil {
		panic(err)
	}
	var agg timingShard
	for _, sh := range shards {
		agg.gpu += sh.gpu
		agg.total += sh.total
		agg.launches += sh.launches
		agg.frames += sh.frames
	}
	n := float64(agg.frames)
	rows = append(rows, TimingRow{
		System: "Res10a-Res50 CaTDet", Total: agg.total / n, GPUOnly: agg.gpu / n, AvgLaunches: agg.launches / n,
	})
	return rows
}

// Table8 runs the RetinaNet comparison on the default engine.
func Table8(ds *dataset.Dataset) []StudyRow { return DefaultEngine.Table8(ds) }

// Table8 compares single-model RetinaNet with RetinaNet-based CaTDet at
// KITTI Moderate (Appendix II).
func (e Engine) Table8(ds *dataset.Dataset) []StudyRow {
	return []StudyRow{
		e.studyRow(ds, SystemSpec{Kind: Single, Refinement: "retinanet-res50"}, "retinanet-res50", "single", dataset.Moderate),
		e.studyRow(ds, SystemSpec{Kind: CaTDet, Proposal: "resnet10a", Refinement: "retinanet-res50", Cfg: core.DefaultConfig()}, "retinanet-res50", "CaTDet", dataset.Moderate),
	}
}

// SweepPoint is one point of Figure 6: one proposal network, with or
// without the tracker, at one proposal-output threshold.
type SweepPoint struct {
	Model   string
	Tracker bool
	CThresh float64
	MAP     float64
	MD08    float64
	Gops    float64
}

// Figure6CThresh is the paper's sweep grid.
var Figure6CThresh = []float64{0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6}

// Figure6 runs the C-thresh sweep on the default engine.
func Figure6(ds *dataset.Dataset, cthreshs []float64) []SweepPoint {
	return DefaultEngine.Figure6(ds, cthreshs)
}

// Figure6 sweeps the proposal network's output threshold for three
// proposal nets, with and without the tracker (KITTI Hard, refinement
// ResNet-50).
func (e Engine) Figure6(ds *dataset.Dataset, cthreshs []float64) []SweepPoint {
	if cthreshs == nil {
		cthreshs = Figure6CThresh
	}
	var pts []SweepPoint
	for _, model := range []string{"resnet10a", "resnet10c", "resnet18"} {
		for _, withTracker := range []bool{true, false} {
			for _, ct := range cthreshs {
				cfg := core.DefaultConfig()
				cfg.CThresh = ct
				kind := CaTDet
				if !withTracker {
					kind = Cascaded
				}
				r := e.MustRun(SystemSpec{Kind: kind, Proposal: model, Refinement: "resnet50", Cfg: cfg}, ds)
				ev := Evaluate(ds, r, dataset.Hard, Beta)
				pts = append(pts, SweepPoint{
					Model: model, Tracker: withTracker, CThresh: ct,
					MAP: ev.MAP, MD08: ev.MeanDelay, Gops: r.AvgGops(),
				})
			}
		}
	}
	return pts
}

// Figure7 produces the per-class curves on the default engine.
func Figure7(ds *dataset.Dataset) map[dataset.Class][]metrics.CurvePoint {
	return DefaultEngine.Figure7(ds)
}

// Figure7 produces the per-class recall/delay vs precision curves for
// the (Res10a, Res50) CaTDet system at KITTI Hard.
func (e Engine) Figure7(ds *dataset.Dataset) map[dataset.Class][]metrics.CurvePoint {
	r := e.MustRun(SystemSpec{Kind: CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: core.DefaultConfig()}, ds)
	targets := make([]float64, 0, 26)
	for p := 0.5; p <= 1.0001; p += 0.02 {
		targets = append(targets, p)
	}
	out := map[dataset.Class][]metrics.CurvePoint{}
	for _, c := range ds.Classes {
		out[c] = metrics.DelayRecallCurve(ds, r.Detections, dataset.Hard, c, targets)
	}
	return out
}
