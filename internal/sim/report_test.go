package sim

import (
	"bytes"
	"testing"

	"repro/internal/video"
)

func TestRunAllReportAndShapeCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("full report is slow")
	}
	kp := video.KITTIPreset()
	kp.NumSequences = 3
	kp.FramesPerSeq = 220
	kitti := video.Generate(kp, 1)
	cp := video.CityPersonsPreset()
	cp.NumSequences = 40
	city := video.Generate(cp, 1)

	rep := RunAll(kitti, city, 1)
	if len(rep.Table1) != 4 || len(rep.Table2) != 5 || len(rep.Table6) != 5 {
		t.Fatalf("report incomplete: %d/%d/%d", len(rep.Table1), len(rep.Table2), len(rep.Table6))
	}
	if violations := rep.ShapeCheck(); len(violations) != 0 {
		t.Fatalf("shape check failed:\n%v", violations)
	}

	// JSON round trip.
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.KITTIFrames != rep.KITTIFrames || len(got.Figure6) != len(rep.Figure6) {
		t.Fatal("report round trip mismatch")
	}
	if len(got.Figure7) == 0 {
		t.Fatal("figure7 curves lost in round trip")
	}
}

func TestShapeCheckCatchesViolations(t *testing.T) {
	rep := &Report{
		Table2: []MainRow{
			{System: "single", Gops: 254, MAPHard: 0.75},
			{System: "casc", Gops: 46, MAPHard: 0.80}, // cascade above CaTDet: violation
			{System: "cat", Gops: 54, MAPHard: 0.60},  // CaTDet far below single: violation
			{System: "casc10b", Gops: 33, MAPHard: 0.70},
			{System: "cat10b", Gops: 41, MAPHard: 0.77},
		},
	}
	violations := rep.ShapeCheck()
	if len(violations) < 2 {
		t.Fatalf("expected >= 2 violations, got %v", violations)
	}
}

func TestLoadReportRejectsGarbage(t *testing.T) {
	if _, err := LoadReport(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("expected decode error")
	}
}
