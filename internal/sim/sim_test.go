package sim

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/video"
)

// miniKITTI returns a reduced KITTI world that is still large enough
// for stable metric shapes.
func miniKITTI() *dataset.Dataset {
	p := video.KITTIPreset()
	p.NumSequences = 3
	p.FramesPerSeq = 200
	return video.Generate(p, 1)
}

func TestRunCollectsEverything(t *testing.T) {
	ds := miniKITTI()
	sys := SystemSpec{Kind: CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: core.DefaultConfig()}.MustBuild(ds.Classes)
	r := Run(sys, ds)
	if r.Frames != ds.NumFrames() {
		t.Fatalf("frames = %d, want %d", r.Frames, ds.NumFrames())
	}
	for si := range ds.Sequences {
		if len(r.Detections[ds.Sequences[si].ID]) != len(ds.Sequences[si].Frames) {
			t.Fatal("per-sequence detection shape mismatch")
		}
	}
	if r.AvgGops() <= 0 || r.AvgCoverage <= 0 || r.AvgProposals <= 0 {
		t.Fatalf("missing statistics: %+v", r)
	}
}

func TestRunDeterministic(t *testing.T) {
	ds := miniKITTI()
	spec := SystemSpec{Kind: CaTDet, Proposal: "resnet10b", Refinement: "resnet50", Cfg: core.DefaultConfig()}
	a := Run(spec.MustBuild(ds.Classes), ds)
	b := Run(spec.MustBuild(ds.Classes), ds)
	if a.AvgGops() != b.AvgGops() || a.AvgProposals != b.AvgProposals {
		t.Fatal("re-running the same system produced different results")
	}
}

func TestBuildSystemErrors(t *testing.T) {
	if _, err := (SystemSpec{Kind: Single, Refinement: "nope"}).Build(nil); err == nil {
		t.Fatal("expected error for unknown refinement")
	}
	if _, err := (SystemSpec{Kind: CaTDet, Proposal: "nope", Refinement: "resnet50"}).Build(nil); err == nil {
		t.Fatal("expected error for unknown proposal")
	}
	if _, err := (SystemSpec{Kind: "weird", Refinement: "resnet50"}).Build(nil); err == nil {
		t.Fatal("expected error for unknown kind")
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	rows := Table1()
	want := map[string]float64{"resnet18": 138.3, "resnet10a": 20.7, "resnet10b": 7.5, "resnet10c": 4.5}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.Gops-want[r.Spec.Name]) > 0.05 {
			t.Errorf("%s ops = %.2f, want %.1f", r.Spec.Name, r.Gops, want[r.Spec.Name])
		}
	}
}

// The headline claims of Table 2, on the reduced world: CaTDet matches
// or beats the single model's Hard mAP at several times fewer ops,
// while the plain cascade is cheaper but less accurate than CaTDet.
func TestTable2Shape(t *testing.T) {
	ds := miniKITTI()
	rows := Table2(ds)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	single, casc10a, cat10a := rows[0], rows[1], rows[2]
	if !strings.Contains(single.System, "Faster R-CNN") {
		t.Fatalf("row order changed: %v", single.System)
	}
	if cat10a.MAPHard < single.MAPHard-0.02 {
		t.Errorf("CaTDet Hard mAP %.3f well below single %.3f", cat10a.MAPHard, single.MAPHard)
	}
	if single.Gops/cat10a.Gops < 3 {
		t.Errorf("ops saving %.1fx, want > 3x", single.Gops/cat10a.Gops)
	}
	if casc10a.Gops >= cat10a.Gops {
		t.Errorf("cascade (%.1fG) should be cheaper than CaTDet (%.1fG)", casc10a.Gops, cat10a.Gops)
	}
	if casc10a.MAPHard >= cat10a.MAPHard {
		t.Errorf("cascade mAP %.3f should trail CaTDet %.3f", casc10a.MAPHard, cat10a.MAPHard)
	}
}

// Table 3 invariants: total = proposal + refinement; the two refinement
// shares overlap (sum >= refinement) and each is <= refinement.
func TestTable3Breakdown(t *testing.T) {
	ds := miniKITTI()
	rows := Table3(ds)
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if math.Abs(r.Total-(r.Proposal+r.Refinement)) > 0.1 {
			t.Errorf("%s: total %.1f != proposal %.1f + refinement %.1f", r.System, r.Total, r.Proposal, r.Refinement)
		}
		isCat := strings.Contains(r.System, "CaTDet")
		if isCat {
			if r.FromTracker <= 0 || r.FromProposal <= 0 {
				t.Errorf("%s: missing attribution", r.System)
			}
			if r.FromTracker+r.FromProposal < r.Refinement-0.1 {
				t.Errorf("%s: shares do not cover refinement", r.System)
			}
			if r.FromTracker > r.Refinement+0.1 || r.FromProposal > r.Refinement+0.1 {
				t.Errorf("%s: share exceeds refinement", r.System)
			}
		} else if r.FromTracker != 0 {
			t.Errorf("%s: cascade has tracker share", r.System)
		}
	}
}

// Table 4's headline: single-model mAP varies widely across proposal
// nets, but CaTDet mAP is nearly flat; delay degrades as the proposal
// net weakens.
func TestTable4Shape(t *testing.T) {
	ds := miniKITTI()
	rows := Table4(ds)
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	var singles, catdets []StudyRow
	for _, r := range rows {
		if r.Setting == "FR-CNN" {
			singles = append(singles, r)
		} else {
			catdets = append(catdets, r)
		}
	}
	singleSpread := singles[0].MAP - singles[len(singles)-1].MAP
	catSpread := math.Abs(catdets[0].MAP - catdets[len(catdets)-1].MAP)
	if singleSpread < 0.1 {
		t.Errorf("single-model mAP spread %.3f too small to be interesting", singleSpread)
	}
	if catSpread > singleSpread/2 {
		t.Errorf("CaTDet mAP spread %.3f not flat vs single spread %.3f", catSpread, singleSpread)
	}
	// Delay: a better proposal net gives a lower CaTDet delay.
	if !(catdets[0].MD08 <= catdets[len(catdets)-1].MD08+0.5) {
		t.Errorf("CaTDet delay should improve with better proposal nets: %v vs %v",
			catdets[0].MD08, catdets[len(catdets)-1].MD08)
	}
}

// Table 5's headline: CaTDet's accuracy tracks the refinement network's
// own single-model accuracy.
func TestTable5Shape(t *testing.T) {
	ds := miniKITTI()
	rows := Table5(ds)
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 0; i < len(rows); i += 2 {
		single, cat := rows[i], rows[i+1]
		if math.Abs(single.MAP-cat.MAP) > 0.08 {
			t.Errorf("%s: CaTDet(R) mAP %.3f far from single %.3f", single.Model, cat.MAP, single.MAP)
		}
		if cat.Gops >= single.Gops {
			t.Errorf("%s: CaTDet not cheaper", single.Model)
		}
	}
}

func TestTable7Timing(t *testing.T) {
	p := video.KITTIPreset()
	p.NumSequences = 2
	p.FramesPerSeq = 120
	ds := video.Generate(p, 1)
	rows := Table7(ds)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	single, cat := rows[0], rows[1]
	if !(cat.GPUOnly < single.GPUOnly/2) {
		t.Errorf("CaTDet GPU time %.3f not well below single %.3f", cat.GPUOnly, single.GPUOnly)
	}
	if !(cat.Total < single.Total) {
		t.Errorf("CaTDet total %.3f not below single %.3f", cat.Total, single.Total)
	}
	if cat.AvgLaunches <= 0 {
		t.Error("no refinement launches recorded")
	}
}

func TestFormattersProduceOutput(t *testing.T) {
	ds := miniKITTI()
	var buf bytes.Buffer
	WriteTable1(&buf, Table1())
	rows2 := Table2(ds)
	WriteTable2(&buf, rows2)
	WriteTable3(&buf, Table3(ds))
	WriteStudy(&buf, Table5(ds))
	if buf.Len() == 0 || !strings.Contains(buf.String(), "resnet") {
		t.Fatal("formatters produced nothing useful")
	}
	// NaN delays must render as n/a, not NaN.
	var sparse bytes.Buffer
	WriteTable2(&sparse, []MainRow{{System: "x", MD08Moderate: math.NaN(), MD08Hard: math.NaN()}})
	if strings.Contains(sparse.String(), "NaN") {
		t.Fatal("NaN leaked into formatted output")
	}
}

func TestEvaluateSparseDatasetSkipsDelay(t *testing.T) {
	p := video.CityPersonsPreset()
	p.NumSequences = 6
	ds := video.Generate(p, 1)
	sys := SystemSpec{Kind: Single, Refinement: "resnet50"}.MustBuild(ds.Classes)
	r := Run(sys, ds)
	ev := Evaluate(ds, r, dataset.Hard, Beta)
	if !math.IsNaN(ev.MeanDelay) {
		t.Fatalf("sparse dataset returned delay %v, want NaN", ev.MeanDelay)
	}
	if ev.MAP <= 0 || ev.MAP > 1 {
		t.Fatalf("mAP = %v", ev.MAP)
	}
}
