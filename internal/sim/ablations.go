package sim

import (
	"fmt"
	"io"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/tracker"
)

// AblationRow reports one design variant of the CaTDet system.
type AblationRow struct {
	Variant string
	MAPHard float64
	MD08    float64
	Gops    float64
}

// Ablations evaluates the design choices DESIGN.md calls out, all on
// the (Res10a, Res50) CaTDet system:
//
//   - exponential-decay motion model (the paper's choice) vs SORT's
//     Kalman filter;
//   - adaptive match/miss confidence vs fixed-age track retention;
//   - prediction workload filters (min width, boundary chop) on vs off;
//   - per-class vs class-agnostic association.
func Ablations(ds *dataset.Dataset) []AblationRow { return DefaultEngine.Ablations(ds) }

// Ablations evaluates the tracker design variants on this engine's
// worker pool.
func (e Engine) Ablations(ds *dataset.Dataset) []AblationRow {
	variant := func(name string, mutate func(*tracker.Config)) AblationRow {
		tcfg := tracker.DefaultConfig()
		if mutate != nil {
			mutate(&tcfg)
		}
		cfg := core.DefaultConfig()
		cfg.Tracker = &tcfg
		r := e.MustRun(SystemSpec{Kind: CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: cfg}, ds)
		ev := Evaluate(ds, r, dataset.Hard, Beta)
		return AblationRow{Variant: name, MAPHard: ev.MAP, MD08: ev.MeanDelay, Gops: r.AvgGops()}
	}
	return []AblationRow{
		variant("baseline (paper settings)", nil),
		variant("kalman motion model", func(c *tracker.Config) { c.Motion = tracker.Kalman }),
		variant("fixed-age retention", func(c *tracker.Config) { c.InitialConfidence = c.MaxConfidence }),
		variant("no prediction filters", func(c *tracker.Config) { c.MinPredWidth = 0; c.MinVisibleFrac = 0 }),
		variant("class-agnostic association", func(c *tracker.Config) { c.PerClass = false }),
	}
}

// WriteAblations renders the ablation table.
func WriteAblations(w io.Writer, rows []AblationRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Variant\tmAP(Hard)\tmD@0.8\tops(G)")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.3f\t%s\t%.1f\n", r.Variant, r.MAPHard, fmtDelay(r.MD08), r.Gops)
	}
	tw.Flush()
}
