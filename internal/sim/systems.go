package sim

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detector"
)

// SystemKind enumerates the three architectures of Figure 1.
type SystemKind string

// The three system kinds.
const (
	Single   SystemKind = "single"
	Cascaded SystemKind = "cascaded"
	CaTDet   SystemKind = "catdet"
)

// SystemSpec names a system to build: the architecture, the models and
// the cascade configuration.
type SystemSpec struct {
	Kind       SystemKind
	Proposal   string // zoo model name; unused for Single
	Refinement string // zoo model name (the only model for Single)
	Cfg        core.Config

	// NoiseScale, when positive and not 1, multiplies every detector's
	// noise channels via detector.Profile.ScaleNoise: the same models
	// watching a degraded input distribution. The serving layer sets
	// it from video.Preset.DetectorNoise (night/low-light packs); 0
	// means the calibrated profiles.
	NoiseScale float64
}

// Build constructs the system, wiring the dataset's class vocabulary
// into the detectors' false-positive process.
func (s SystemSpec) Build(classes []dataset.Class) (core.System, error) {
	newDet := func(name string) (*detector.Detector, error) {
		d, err := detector.New(name)
		if err != nil {
			return nil, err
		}
		d.Classes = classes
		d.Profile = d.Profile.ScaleNoise(s.NoiseScale)
		return d, nil
	}
	ref, err := newDet(s.Refinement)
	if err != nil {
		return nil, err
	}
	switch s.Kind {
	case Single:
		return core.NewSingleModel(ref), nil
	case Cascaded, CaTDet:
		prop, err := newDet(s.Proposal)
		if err != nil {
			return nil, err
		}
		if s.Kind == Cascaded {
			return core.NewCascaded(prop, ref, s.Cfg), nil
		}
		return core.NewCaTDet(prop, ref, s.Cfg), nil
	default:
		return nil, fmt.Errorf("sim: unknown system kind %q", s.Kind)
	}
}

// MustBuild is Build for static specs; it panics on error.
func (s SystemSpec) MustBuild(classes []dataset.Class) core.System {
	sys, err := s.Build(classes)
	if err != nil {
		panic(err)
	}
	return sys
}
