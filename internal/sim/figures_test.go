package sim

import (
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/video"
)

func miniCity() *dataset.Dataset {
	p := video.CityPersonsPreset()
	p.NumSequences = 40
	return video.Generate(p, 1)
}

// Table 6's headline: on the CityPersons-like world the cascade loses
// several points of AP while CaTDet recovers (nearly) all of them, at
// a large ops saving.
func TestTable6Shape(t *testing.T) {
	rows := Table6(miniCity())
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	single, casc, cat := rows[0], rows[1], rows[2]
	if !(casc.MAP < single.MAP-0.02) {
		t.Errorf("cascade mAP %.3f should clearly trail single %.3f on CityPersons", casc.MAP, single.MAP)
	}
	if !(cat.MAP > casc.MAP+0.02) {
		t.Errorf("CaTDet mAP %.3f should clearly beat cascade %.3f", cat.MAP, casc.MAP)
	}
	if cat.MAP < single.MAP-0.03 {
		t.Errorf("CaTDet mAP %.3f should be near single %.3f", cat.MAP, single.MAP)
	}
	if single.Gops/cat.Gops < 4 {
		t.Errorf("ops saving %.1fx, want > 4x on the high-resolution world", single.Gops/cat.Gops)
	}
}

// Table 8's headline: RetinaNet-CaTDet matches or beats single-model
// RetinaNet at a meaningful ops saving.
func TestTable8Shape(t *testing.T) {
	p := video.KITTIPreset()
	p.NumSequences = 3
	p.FramesPerSeq = 200
	ds := video.Generate(p, 1)
	rows := Table8(ds)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	single, cat := rows[0], rows[1]
	if cat.MAP < single.MAP-0.02 {
		t.Errorf("RetinaNet CaTDet mAP %.3f well below single %.3f", cat.MAP, single.MAP)
	}
	if single.Gops/cat.Gops < 1.5 {
		t.Errorf("ops saving %.2fx too small", single.Gops/cat.Gops)
	}
}

// Figure 6's headline on a reduced grid: with the tracker, mAP is
// insensitive to C-thresh; without it, mAP is lower and falls as
// C-thresh rises; delay rises with C-thresh in both settings.
func TestFigure6Shape(t *testing.T) {
	p := video.KITTIPreset()
	p.NumSequences = 3
	p.FramesPerSeq = 220
	ds := video.Generate(p, 1)
	grid := []float64{0.01, 0.4}
	pts := Figure6(ds, grid)

	get := func(model string, tracker bool, ct float64) SweepPoint {
		for _, pt := range pts {
			if pt.Model == model && pt.Tracker == tracker && pt.CThresh == ct {
				return pt
			}
		}
		t.Fatalf("missing point %s/%v/%v", model, tracker, ct)
		return SweepPoint{}
	}
	for _, model := range []string{"resnet10a", "resnet10c"} {
		wLo, wHi := get(model, true, 0.01), get(model, true, 0.4)
		oLo, oHi := get(model, false, 0.01), get(model, false, 0.4)
		// Tracker keeps mAP roughly flat.
		if wLo.MAP-wHi.MAP > 0.03 {
			t.Errorf("%s w/ tracker: mAP drops %.3f over C-thresh", model, wLo.MAP-wHi.MAP)
		}
		// Without the tracker mAP is lower and declines.
		if oLo.MAP >= wLo.MAP {
			t.Errorf("%s: no-tracker mAP %.3f not below with-tracker %.3f", model, oLo.MAP, wLo.MAP)
		}
		if oHi.MAP >= oLo.MAP-0.01 {
			t.Errorf("%s w/o tracker: mAP did not fall with C-thresh (%.3f -> %.3f)", model, oLo.MAP, oHi.MAP)
		}
		// Delay rises with C-thresh for the with-tracker system (wide
		// tolerance: the estimate is noisy on this reduced world). The
		// no-tracker series is only checked at full scale
		// (cmd/experiments): at collapsed-mAP operating points the
		// precision-matched threshold, and hence the delay, is unstable
		// on small data.
		if wHi.MD08 < wLo.MD08-1.0 {
			t.Errorf("%s: delay fell sharply with C-thresh (w/ %.1f->%.1f)",
				model, wLo.MD08, wHi.MD08)
		}
		// Ops fall with C-thresh.
		if wHi.Gops >= wLo.Gops {
			t.Errorf("%s: ops did not fall with C-thresh", model)
		}
	}
}

// Figure 7: recall falls (weakly) and delay rises (weakly) as the
// precision operating point increases.
func TestFigure7Shape(t *testing.T) {
	p := video.KITTIPreset()
	p.NumSequences = 3
	p.FramesPerSeq = 220
	ds := video.Generate(p, 1)
	curves := Figure7(ds)
	for _, c := range ds.Classes {
		pts := curves[c]
		if len(pts) < 5 {
			t.Fatalf("%v: too few curve points (%d)", c, len(pts))
		}
		// Compare the first and last fifth to smooth local noise.
		k := len(pts) / 5
		avg := func(lo, hi int, f func(i int) float64) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += f(i)
			}
			return s / float64(hi-lo)
		}
		recLo := avg(0, k, func(i int) float64 { return pts[i].Recall })
		recHi := avg(len(pts)-k, len(pts), func(i int) float64 { return pts[i].Recall })
		delLo := avg(0, k, func(i int) float64 { return pts[i].Delay })
		delHi := avg(len(pts)-k, len(pts), func(i int) float64 { return pts[i].Delay })
		if recHi > recLo+1e-9 {
			t.Errorf("%v: recall rose with precision (%.3f -> %.3f)", c, recLo, recHi)
		}
		if delHi < delLo-1e-9 {
			t.Errorf("%v: delay fell with precision (%.1f -> %.1f)", c, delLo, delHi)
		}
	}
}

func TestAblationsTable(t *testing.T) {
	p := video.KITTIPreset()
	p.NumSequences = 2
	p.FramesPerSeq = 150
	ds := video.Generate(p, 1)
	rows := Ablations(ds)
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	names := []string{"baseline", "kalman", "fixed-age", "no prediction filters", "class-agnostic"}
	for i, r := range rows {
		if !strings.Contains(r.Variant, strings.Split(names[i], " ")[0]) {
			t.Errorf("row %d variant = %q", i, r.Variant)
		}
		if r.MAPHard <= 0.3 || r.MAPHard > 1 {
			t.Errorf("%s: mAP %.3f implausible", r.Variant, r.MAPHard)
		}
	}
}
