package metrics

import (
	"sort"

	"repro/internal/dataset"
)

// PRPoint is one operating point of a precision/recall curve.
type PRPoint struct {
	Threshold float64
	Precision float64
	Recall    float64
}

// PRCurve computes the precision/recall curve of pooled records, one
// point per distinct score, in descending-score (increasing-recall)
// order. An empty record set yields nil.
func (r *ClassRecords) PRCurve() []PRPoint {
	if len(r.Records) == 0 || r.NumGT == 0 {
		return nil
	}
	recs := append([]Record(nil), r.Records...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Score > recs[j].Score })
	var out []PRPoint
	tp, fp := 0, 0
	for i, rec := range recs {
		if rec.TP {
			tp++
		} else {
			fp++
		}
		// Emit a point at each score boundary (last of equal scores).
		if i+1 < len(recs) && recs[i+1].Score == rec.Score {
			continue
		}
		out = append(out, PRPoint{
			Threshold: rec.Score,
			Precision: float64(tp) / float64(tp+fp),
			Recall:    float64(tp) / float64(r.NumGT),
		})
	}
	return out
}

// PrecisionRecallAt returns the operating point at a score threshold:
// precision and recall over detections with Score >= t.
func (r *ClassRecords) PrecisionRecallAt(t float64) (precision, recall float64) {
	tp, fp := 0, 0
	for _, rec := range r.Records {
		if rec.Score < t {
			continue
		}
		if rec.TP {
			tp++
		} else {
			fp++
		}
	}
	if tp+fp == 0 {
		return 1, 0 // no detections above t: vacuous precision
	}
	if r.NumGT == 0 {
		return float64(tp) / float64(tp+fp), 0
	}
	return float64(tp) / float64(tp+fp), float64(tp) / float64(r.NumGT)
}

// AP returns the 11-point interpolated average precision (Pascal VOC
// 2007 protocol, which KITTI's metric follows): the mean over recall
// targets {0, 0.1, ..., 1.0} of the maximum precision at recall >= the
// target.
func (r *ClassRecords) AP() float64 {
	curve := r.PRCurve()
	if curve == nil {
		return 0
	}
	sum := 0.0
	for i := 0; i <= 10; i++ {
		target := float64(i) / 10
		best := 0.0
		for _, p := range curve {
			if p.Recall >= target && p.Precision > best {
				best = p.Precision
			}
		}
		sum += best
	}
	return sum / 11
}

// MAP evaluates the dataset at a difficulty and returns the mean AP over
// classes plus the per-class values.
func MAP(ds *dataset.Dataset, dets Detections, diff dataset.Difficulty) (float64, map[dataset.Class]float64) {
	records := Collect(ds, dets, diff)
	perClass := map[dataset.Class]float64{}
	sum := 0.0
	for _, c := range ds.Classes {
		ap := records[c].AP()
		perClass[c] = ap
		sum += ap
	}
	if len(ds.Classes) == 0 {
		return 0, perClass
	}
	return sum / float64(len(ds.Classes)), perClass
}
