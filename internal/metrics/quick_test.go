package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/dataset"
)

// randRecords builds a random pooled record set. At most NumGT records
// are true positives, the physical constraint the matcher guarantees.
func randRecords(rng *rand.Rand) *ClassRecords {
	n := 1 + rng.Intn(50)
	r := &ClassRecords{Class: dataset.Car, NumGT: 1 + rng.Intn(40)}
	tps := 0
	for i := 0; i < n; i++ {
		isTP := rng.Float64() < 0.6 && tps < r.NumGT
		if isTP {
			tps++
		}
		r.Records = append(r.Records, Record{Score: rng.Float64(), TP: isTP})
	}
	return r
}

// Property: AP is always within [0, 1].
func TestAPBounded(t *testing.T) {
	f := func(seed int64) bool {
		r := randRecords(rand.New(rand.NewSource(seed)))
		ap := r.AP()
		return ap >= 0 && ap <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: the PR curve's recall is non-decreasing and bounded by 1;
// precision stays in [0, 1] (0 is reachable when the top-scored
// records are false positives).
func TestPRCurveBounds(t *testing.T) {
	f := func(seed int64) bool {
		r := randRecords(rand.New(rand.NewSource(seed)))
		prev := -1.0
		for _, p := range r.PRCurve() {
			if p.Recall < prev || p.Recall > 1+1e-9 {
				return false
			}
			if p.Precision < 0 || p.Precision > 1 {
				return false
			}
			prev = p.Recall
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: precision and recall at a threshold agree with the curve's
// index-based computation, and recall at threshold is non-increasing in
// the threshold.
func TestPrecisionRecallMonotoneRecall(t *testing.T) {
	f := func(seed int64) bool {
		r := randRecords(rand.New(rand.NewSource(seed)))
		prevRecall := math.Inf(1)
		for _, th := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
			_, rec := r.PrecisionRecallAt(th)
			if rec > prevRecall+1e-9 {
				return false
			}
			prevRecall = rec
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding a false positive never raises AP; adding a true
// positive never lowers it (with NumGT held fixed... a TP reduces FNs
// so AP must not decrease).
func TestAPMonotonicity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRecords(rng)
		base := r.AP()
		withFP := &ClassRecords{Class: r.Class, NumGT: r.NumGT,
			Records: append(append([]Record{}, r.Records...), Record{Score: rng.Float64(), TP: false})}
		if withFP.AP() > base+1e-9 {
			return false
		}
		// Count TPs to respect NumGT.
		tp := 0
		for _, rec := range r.Records {
			if rec.TP {
				tp++
			}
		}
		if tp >= r.NumGT {
			return true
		}
		withTP := &ClassRecords{Class: r.Class, NumGT: r.NumGT,
			Records: append(append([]Record{}, r.Records...), Record{Score: rng.Float64(), TP: true})}
		return withTP.AP() >= base-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: DelayAt is non-decreasing in the threshold (a stricter
// threshold can only delay the first detection).
func TestDelayMonotoneInThreshold(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &TrackObservation{
			Class: dataset.Car, FirstEligible: 0, LastFrame: 20,
			FrameScores: map[int]float64{},
		}
		for fi := 0; fi <= 20; fi++ {
			if rng.Float64() < 0.5 {
				tr.FrameScores[fi] = rng.Float64()
			}
		}
		prev := -1.0
		for _, th := range []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0} {
			d := tr.DelayAt(th)
			if d < prev {
				return false
			}
			prev = d
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: entry delay plus exit delay never exceed the evaluated
// lifetime when the track is detected at least once; both equal the
// lifetime when never detected.
func TestEntryExitDelayConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &TrackObservation{
			Class: dataset.Car, FirstEligible: 0, LastFrame: 15,
			FrameScores: map[int]float64{},
		}
		detected := false
		for fi := 0; fi <= 15; fi++ {
			if rng.Float64() < 0.4 {
				tr.FrameScores[fi] = 0.9
				detected = true
			}
		}
		life := float64(tr.LastFrame - tr.FirstEligible + 1)
		entry, exit := tr.DelayAt(0.5), tr.ExitDelayAt(0.5)
		if !detected {
			return entry == life && exit == life
		}
		return entry+exit <= life-1+1e-9 // at least one detected frame between them
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
