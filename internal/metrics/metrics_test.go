package metrics

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// oneFrameDataset builds a single labeled frame with the given objects.
func oneFrameDataset(objs ...dataset.Object) *dataset.Dataset {
	return &dataset.Dataset{
		Name:    "t",
		Classes: []dataset.Class{dataset.Car, dataset.Pedestrian},
		Sequences: []dataset.Sequence{{
			ID: "s", Width: 1000, Height: 500, FPS: 10,
			Frames: []dataset.Frame{{Index: 0, Labeled: true, Objects: objs}},
		}},
	}
}

func car(id int, x, y, w, h float64) dataset.Object {
	return dataset.Object{TrackID: id, Class: dataset.Car, Box: geom.NewBox(x, y, x+w, y+h)}
}

func d(x, y, w, h, score float64, class int) geom.Scored {
	return geom.Scored{Box: geom.NewBox(x, y, x+w, y+h), Score: score, Class: class}
}

func TestPerfectDetectionAP(t *testing.T) {
	ds := oneFrameDataset(car(1, 100, 100, 80, 60), car(2, 400, 100, 80, 60))
	dets := Detections{"s": {{
		d(100, 100, 80, 60, 0.9, 0),
		d(400, 100, 80, 60, 0.8, 0),
	}}}
	records := Collect(ds, dets, dataset.Hard)
	ap := records[dataset.Car].AP()
	if math.Abs(ap-1.0) > 1e-9 {
		t.Fatalf("perfect AP = %v, want 1", ap)
	}
}

func TestMissedDetectionLowersAP(t *testing.T) {
	ds := oneFrameDataset(car(1, 100, 100, 80, 60), car(2, 400, 100, 80, 60))
	dets := Detections{"s": {{d(100, 100, 80, 60, 0.9, 0)}}}
	records := Collect(ds, dets, dataset.Hard)
	ap := records[dataset.Car].AP()
	// Recall caps at 0.5: recall points 0..0.5 have precision 1, the
	// rest 0 -> AP = 6/11.
	want := 6.0 / 11
	if math.Abs(ap-want) > 1e-9 {
		t.Fatalf("AP = %v, want %v", ap, want)
	}
}

func TestFalsePositiveLowersAP(t *testing.T) {
	ds := oneFrameDataset(car(1, 100, 100, 80, 60))
	// FP scored above the TP: precision at recall 1.0 is 0.5.
	dets := Detections{"s": {{
		d(700, 300, 80, 60, 0.95, 0),
		d(100, 100, 80, 60, 0.9, 0),
	}}}
	records := Collect(ds, dets, dataset.Hard)
	ap := records[dataset.Car].AP()
	want := 0.5 // max precision at every recall target is 1/2
	if math.Abs(ap-want) > 1e-9 {
		t.Fatalf("AP = %v, want %v", ap, want)
	}
}

func TestLowIoUDetectionIsFPandFN(t *testing.T) {
	ds := oneFrameDataset(car(1, 100, 100, 80, 60))
	// Offset box with IoU ~ 0.32 < 0.7: both an FP and a miss.
	dets := Detections{"s": {{d(140, 130, 80, 60, 0.9, 0)}}}
	records := Collect(ds, dets, dataset.Hard)
	if ap := records[dataset.Car].AP(); ap != 0 {
		t.Fatalf("AP = %v, want 0", ap)
	}
}

func TestPedestrianUsesLooserIoU(t *testing.T) {
	ped := dataset.Object{TrackID: 1, Class: dataset.Pedestrian, Box: geom.NewBox(100, 100, 130, 190)}
	ds := oneFrameDataset(ped)
	// Shifted box with IoU ~ 0.55: valid for Pedestrian (0.5) but would
	// fail the Car threshold (0.7).
	shifted := geom.NewBox(105, 110, 135, 200)
	if iou := geom.IoU(ped.Box, shifted); iou < 0.5 || iou > 0.7 {
		t.Fatalf("test setup: IoU = %v, want in (0.5, 0.7)", iou)
	}
	dets := Detections{"s": {{{Box: shifted, Score: 0.9, Class: int(dataset.Pedestrian)}}}}
	records := Collect(ds, dets, dataset.Hard)
	if ap := records[dataset.Pedestrian].AP(); math.Abs(ap-1) > 1e-9 {
		t.Fatalf("pedestrian AP = %v, want 1", ap)
	}
}

func TestClassConfusionNotMatched(t *testing.T) {
	ds := oneFrameDataset(car(1, 100, 100, 80, 60))
	dets := Detections{"s": {{d(100, 100, 80, 60, 0.9, int(dataset.Pedestrian))}}}
	records := Collect(ds, dets, dataset.Hard)
	if ap := records[dataset.Car].AP(); ap != 0 {
		t.Fatalf("car AP = %v, want 0 (wrong-class detection)", ap)
	}
	// The pedestrian detection is an FP for its own class... but there
	// is no pedestrian GT, so AP is 0 with no ground truth.
	if records[dataset.Pedestrian].NumGT != 0 {
		t.Fatal("phantom pedestrian GT")
	}
}

func TestDontCareIgnored(t *testing.T) {
	// A largely-occluded car is don't-care at Moderate: detecting it
	// must not count as FP, and missing it must not count as FN.
	occluded := car(1, 100, 100, 80, 60)
	occluded.Occlusion = dataset.LargelyOccluded
	visible := car(2, 400, 100, 80, 60)
	ds := oneFrameDataset(occluded, visible)

	dets := Detections{"s": {{
		d(100, 100, 80, 60, 0.95, 0), // hits the don't-care object
		d(400, 100, 80, 60, 0.9, 0),  // hits the real object
	}}}
	records := Collect(ds, dets, dataset.Moderate)
	r := records[dataset.Car]
	if r.NumGT != 1 {
		t.Fatalf("NumGT = %d, want 1 (occluded is don't-care)", r.NumGT)
	}
	if ap := r.AP(); math.Abs(ap-1) > 1e-9 {
		t.Fatalf("AP = %v, want 1 (don't-care hit must not be FP)", ap)
	}
	// At Hard the occluded car becomes real ground truth.
	recordsHard := Collect(ds, dets, dataset.Hard)
	if recordsHard[dataset.Car].NumGT != 2 {
		t.Fatal("Hard should count both cars")
	}
}

func TestTinyDetectionIgnoredNotFP(t *testing.T) {
	ds := oneFrameDataset(car(1, 100, 100, 80, 60))
	dets := Detections{"s": {{
		d(100, 100, 80, 60, 0.9, 0),
		d(700, 300, 30, 15, 0.95, 0), // 15px tall: below Hard's 25px minimum
	}}}
	records := Collect(ds, dets, dataset.Hard)
	if ap := records[dataset.Car].AP(); math.Abs(ap-1) > 1e-9 {
		t.Fatalf("AP = %v, want 1 (tiny detection must be ignored)", ap)
	}
}

func TestMAPAveragesClasses(t *testing.T) {
	ped := dataset.Object{TrackID: 2, Class: dataset.Pedestrian, Box: geom.NewBox(600, 100, 640, 220)}
	ds := oneFrameDataset(car(1, 100, 100, 80, 60), ped)
	dets := Detections{"s": {{
		d(100, 100, 80, 60, 0.9, 0), // perfect car
		// pedestrian missed
	}}}
	mAP, perClass := MAP(ds, dets, dataset.Hard)
	if math.Abs(perClass[dataset.Car]-1) > 1e-9 || perClass[dataset.Pedestrian] != 0 {
		t.Fatalf("per-class AP = %v", perClass)
	}
	if math.Abs(mAP-0.5) > 1e-9 {
		t.Fatalf("mAP = %v, want 0.5", mAP)
	}
}

func TestPrecisionRecallAt(t *testing.T) {
	r := &ClassRecords{NumGT: 4, Records: []Record{
		{Score: 0.9, TP: true},
		{Score: 0.8, TP: false},
		{Score: 0.7, TP: true},
		{Score: 0.6, TP: false},
	}}
	p, rec := r.PrecisionRecallAt(0.75)
	if math.Abs(p-0.5) > 1e-9 || math.Abs(rec-0.25) > 1e-9 {
		t.Fatalf("P/R at 0.75 = %v/%v", p, rec)
	}
	p, rec = r.PrecisionRecallAt(0.0)
	if math.Abs(p-0.5) > 1e-9 || math.Abs(rec-0.5) > 1e-9 {
		t.Fatalf("P/R at 0 = %v/%v", p, rec)
	}
	p, rec = r.PrecisionRecallAt(0.99)
	if p != 1 || rec != 0 {
		t.Fatalf("P/R above all scores = %v/%v, want vacuous 1/0", p, rec)
	}
}

// delayDataset: one track entering at frame 2 (eligible immediately),
// detections from frame 5.
func delayDataset() (*dataset.Dataset, Detections) {
	seq := dataset.Sequence{ID: "s", Width: 1000, Height: 500, FPS: 10}
	for f := 0; f < 10; f++ {
		fr := dataset.Frame{Index: f, Labeled: true}
		if f >= 2 {
			fr.Objects = []dataset.Object{car(7, 100+float64(f)*5, 100, 80, 60)}
		}
		seq.Frames = append(seq.Frames, fr)
	}
	ds := &dataset.Dataset{Name: "t", Classes: []dataset.Class{dataset.Car}, Sequences: []dataset.Sequence{seq}}

	frames := make([][]geom.Scored, 10)
	for f := 5; f < 10; f++ {
		frames[f] = []geom.Scored{d(100+float64(f)*5, 100, 80, 60, 0.9, 0)}
	}
	return ds, Detections{"s": frames}
}

func TestDelayBasic(t *testing.T) {
	ds, dets := delayDataset()
	tracks := CollectTracks(ds, dets, dataset.Hard)
	if len(tracks) != 1 {
		t.Fatalf("tracks = %d", len(tracks))
	}
	tr := tracks[0]
	if tr.FirstEligible != 2 || tr.LastFrame != 9 {
		t.Fatalf("span = [%d,%d], want [2,9]", tr.FirstEligible, tr.LastFrame)
	}
	if delay := tr.DelayAt(0.5); delay != 3 {
		t.Fatalf("delay = %v, want 3 (appears at 2, detected at 5)", delay)
	}
	// Above the detection scores: never detected -> full lifetime.
	if delay := tr.DelayAt(0.95); delay != 8 {
		t.Fatalf("undetected delay = %v, want 8", delay)
	}
}

func TestDelayNeverEligibleExcluded(t *testing.T) {
	// A 10px-tall object is never Hard-eligible.
	seq := dataset.Sequence{ID: "s", Width: 1000, Height: 500, FPS: 10,
		Frames: []dataset.Frame{{Index: 0, Labeled: true, Objects: []dataset.Object{
			{TrackID: 1, Class: dataset.Car, Box: geom.NewBox(0, 0, 30, 10)},
		}}}}
	ds := &dataset.Dataset{Classes: []dataset.Class{dataset.Car}, Sequences: []dataset.Sequence{seq}}
	tracks := CollectTracks(ds, Detections{}, dataset.Hard)
	mean, perClass := MeanDelay(tracks, ds.Classes, 0.5)
	if !math.IsNaN(mean) || len(perClass) != 0 {
		t.Fatalf("never-eligible track not excluded: %v %v", mean, perClass)
	}
}

func TestThresholdForMeanPrecision(t *testing.T) {
	records := map[dataset.Class]*ClassRecords{
		dataset.Car: {Class: dataset.Car, NumGT: 10, Records: []Record{
			{Score: 0.9, TP: true}, {Score: 0.8, TP: true}, {Score: 0.7, TP: true},
			{Score: 0.6, TP: false}, {Score: 0.5, TP: true}, {Score: 0.4, TP: false},
			{Score: 0.3, TP: false}, {Score: 0.2, TP: false},
		}},
	}
	classes := []dataset.Class{dataset.Car}
	tr := ThresholdForMeanPrecision(records, classes, 0.8)
	// At t=0.5: 4 TP, 1 FP -> precision 0.8. Any lower includes more FPs.
	if math.Abs(tr-0.5) > 1e-9 {
		t.Fatalf("threshold = %v, want 0.5", tr)
	}
	// Unreachable precision falls back to the best available.
	records[dataset.Car].Records = []Record{{Score: 0.9, TP: false}, {Score: 0.5, TP: true}}
	tr = ThresholdForMeanPrecision(records, classes, 0.99)
	if math.Abs(tr-0.5) > 1e-9 {
		t.Fatalf("fallback threshold = %v, want 0.5 (max precision 0.5)", tr)
	}
}

func TestMeanDelayAtPrecision(t *testing.T) {
	ds, dets := delayDataset()
	mean, perClass, thresh := MeanDelayAtPrecision(ds, dets, dataset.Hard, 0.8)
	if mean != 3 {
		t.Fatalf("mD@0.8 = %v, want 3", mean)
	}
	if perClass[dataset.Car] != 3 {
		t.Fatalf("per-class = %v", perClass)
	}
	if thresh > 0.9 {
		t.Fatalf("threshold = %v, too high", thresh)
	}
}

func TestDelayRecallCurve(t *testing.T) {
	ds, dets := delayDataset()
	pts := DelayRecallCurve(ds, dets, dataset.Hard, dataset.Car, []float64{0.5, 0.8, 1.0})
	if len(pts) == 0 {
		t.Fatal("empty curve")
	}
	for _, p := range pts {
		if p.Precision < 0.5 {
			t.Fatalf("point below requested precision: %+v", p)
		}
		if p.Recall < 0 || p.Recall > 1 {
			t.Fatalf("recall out of range: %+v", p)
		}
		if p.Delay < 0 {
			t.Fatalf("negative delay: %+v", p)
		}
	}
}

func TestUnlabeledFramesSkipped(t *testing.T) {
	seq := dataset.Sequence{ID: "s", Width: 1000, Height: 500, FPS: 10,
		Frames: []dataset.Frame{
			{Index: 0, Labeled: false, Objects: []dataset.Object{car(1, 100, 100, 80, 60)}},
			{Index: 1, Labeled: true, Objects: []dataset.Object{car(1, 105, 100, 80, 60)}},
		}}
	ds := &dataset.Dataset{Classes: []dataset.Class{dataset.Car}, Sequences: []dataset.Sequence{seq}}
	// Detection only on the unlabeled frame: must contribute nothing.
	dets := Detections{"s": {
		{d(100, 100, 80, 60, 0.9, 0)},
		nil,
	}}
	records := Collect(ds, dets, dataset.Hard)
	r := records[dataset.Car]
	if r.NumGT != 1 || len(r.Records) != 0 {
		t.Fatalf("unlabeled frame leaked into eval: GT=%d records=%d", r.NumGT, len(r.Records))
	}
}

func TestPRCurveMonotoneRecall(t *testing.T) {
	r := &ClassRecords{NumGT: 5}
	scores := []float64{0.9, 0.85, 0.8, 0.7, 0.65, 0.5, 0.4, 0.3}
	tps := []bool{true, true, false, true, false, true, false, false}
	for i := range scores {
		r.Records = append(r.Records, Record{Score: scores[i], TP: tps[i]})
	}
	curve := r.PRCurve()
	for i := 1; i < len(curve); i++ {
		if curve[i].Recall < curve[i-1].Recall {
			t.Fatalf("recall not monotone at %d", i)
		}
		if curve[i].Threshold > curve[i-1].Threshold {
			t.Fatalf("thresholds not descending at %d", i)
		}
	}
}

func TestAPEmptyRecords(t *testing.T) {
	r := &ClassRecords{NumGT: 0}
	if ap := r.AP(); ap != 0 {
		t.Fatalf("empty AP = %v", ap)
	}
}
