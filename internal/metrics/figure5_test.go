package metrics

// TestFigure5WorkedExample reproduces the paper's Figure 5 numeric
// illustration verbatim: one ground-truth object spanning 5 frames,
// 7 detections of which 3 are true detections and 4 are false
// positives, 2 false negatives; only the false negative in frame 0
// counts towards delay. Expected: recall 3/5, precision 3/7, delay 1.

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func TestFigure5WorkedExample(t *testing.T) {
	gtBox := geom.NewBox(100, 100, 180, 160)
	farBox := func(i int) geom.Box {
		x := 400 + float64(i)*120
		return geom.NewBox(x, 250, x+80, 310)
	}

	seq := dataset.Sequence{ID: "fig5", Width: 1000, Height: 400, FPS: 10}
	for f := 0; f < 5; f++ {
		seq.Frames = append(seq.Frames, dataset.Frame{Index: f, Labeled: true,
			Objects: []dataset.Object{{TrackID: 1, Class: dataset.Car, Box: gtBox.Translate(float64(f)*4, 0)}}})
	}
	ds := &dataset.Dataset{Classes: []dataset.Class{dataset.Car}, Sequences: []dataset.Sequence{seq}}

	// Frame 0: false negative (no detection on the object) + 1 FP.
	// Frames 1-3: true detections; frames 1 and 3 also carry FPs.
	// Frame 4: false negative + 1 FP.
	mk := func(box geom.Box) geom.Scored { return geom.Scored{Box: box, Score: 0.9, Class: 0} }
	frames := [][]geom.Scored{
		{mk(farBox(0))},
		{mk(gtBox.Translate(4, 0)), mk(farBox(1))},
		{mk(gtBox.Translate(8, 0))},
		{mk(gtBox.Translate(12, 0)), mk(farBox(2))},
		{mk(farBox(3))},
	}
	dets := Detections{"fig5": frames}

	records := Collect(ds, dets, dataset.Hard)
	r := records[dataset.Car]
	prec, rec := r.PrecisionRecallAt(0)
	if math.Abs(rec-3.0/5.0) > 1e-9 {
		t.Fatalf("recall = %v, want 3/5", rec)
	}
	if math.Abs(prec-3.0/7.0) > 1e-9 {
		t.Fatalf("precision = %v, want 3/7", prec)
	}

	tracks := CollectTracks(ds, dets, dataset.Hard)
	if len(tracks) != 1 {
		t.Fatalf("tracks = %d", len(tracks))
	}
	if delay := tracks[0].DelayAt(0); delay != 1 {
		t.Fatalf("delay = %v, want 1 (only the frame-0 miss counts)", delay)
	}
}
