// Package metrics implements the paper's two evaluation metrics: mean
// Average Precision (VOC 11-point protocol with KITTI difficulty
// filtering and per-class IoU thresholds) and mean Delay mD@beta
// (Section 5, Eq. 4-5), plus the precision/recall/delay curves of
// Figure 7.
package metrics

import (
	"sort"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// Detections holds a system's output for a dataset: for each sequence ID,
// one detection list per frame (indexed like Sequence.Frames).
type Detections map[string][][]geom.Scored

// Record is one scored detection's evaluation outcome for a class.
type Record struct {
	Score float64
	TP    bool
}

// ClassRecords accumulates the pooled records and ground-truth count for
// one class at one difficulty.
type ClassRecords struct {
	Class   dataset.Class
	Records []Record
	NumGT   int
}

// matchFrame evaluates one labeled frame for one class following the
// KITTI protocol:
//
//   - ground truth of the class failing the difficulty filter is "don't
//     care": it is never a false negative, and detections overlapping it
//     are dropped rather than counted as false positives;
//   - detections are matched greedily in descending score order to the
//     best-IoU unmatched eligible ground truth, requiring the class IoU
//     (0.7 Car / 0.5 Pedestrian);
//   - unmatched detections shorter than the difficulty's minimum height
//     are ignored, as in the official development kit.
//
// detectedTracks, when non-nil, receives the TrackIDs of ground-truth
// objects matched in this frame (used by the delay metric).
func matchFrame(objects []dataset.Object, dets []geom.Scored, class dataset.Class,
	diff dataset.Difficulty, out *ClassRecords, detectedTracks map[int]bool) {
	matchFrameIoU(objects, dets, class, diff, class.MatchIoU(), out, detectedTracks)
}

// matchFrameIoU is matchFrame with an explicit IoU threshold, the
// primitive the COCO-protocol evaluation sweeps.
func matchFrameIoU(objects []dataset.Object, dets []geom.Scored, class dataset.Class,
	diff dataset.Difficulty, thresh float64, out *ClassRecords, detectedTracks map[int]bool) {

	var eligible, ignored []dataset.Object
	for _, o := range objects {
		if o.Class != class {
			continue
		}
		if diff.Eligible(o) {
			eligible = append(eligible, o)
		} else {
			ignored = append(ignored, o)
		}
	}
	out.NumGT += len(eligible)

	var cls []geom.Scored
	for _, d := range dets {
		if d.Class == int(class) {
			cls = append(cls, d)
		}
	}
	sort.SliceStable(cls, func(i, j int) bool { return cls[i].Score > cls[j].Score })

	matched := make([]bool, len(eligible))
	for _, d := range cls {
		best, bestIoU := -1, 0.0
		for i, o := range eligible {
			if matched[i] {
				continue
			}
			if iou := geom.IoU(d.Box, o.Box); iou > bestIoU {
				best, bestIoU = i, iou
			}
		}
		if best >= 0 && bestIoU >= thresh {
			matched[best] = true
			out.Records = append(out.Records, Record{Score: d.Score, TP: true})
			if detectedTracks != nil {
				detectedTracks[eligible[best].TrackID] = true
			}
			continue
		}
		// Don't-care handling: overlap with an ignored ground truth.
		dontCare := false
		for _, o := range ignored {
			if geom.IoU(d.Box, o.Box) >= thresh/2 {
				dontCare = true
				break
			}
		}
		if dontCare {
			continue
		}
		// Too-small detections are ignored, not penalized.
		if d.Box.Height() < diff.MinHeight() {
			continue
		}
		out.Records = append(out.Records, Record{Score: d.Score, TP: false})
	}
}

// Collect pools the per-frame evaluation records for every class of the
// dataset at the given difficulty. Only labeled frames contribute.
func Collect(ds *dataset.Dataset, dets Detections, diff dataset.Difficulty) map[dataset.Class]*ClassRecords {
	out := map[dataset.Class]*ClassRecords{}
	for _, c := range ds.Classes {
		out[c] = &ClassRecords{Class: c}
	}
	for si := range ds.Sequences {
		seq := &ds.Sequences[si]
		frames := dets[seq.ID]
		for fi := range seq.Frames {
			if !seq.Frames[fi].Labeled {
				continue
			}
			var fd []geom.Scored
			if frames != nil && fi < len(frames) {
				fd = frames[fi]
			}
			for _, c := range ds.Classes {
				matchFrame(seq.Frames[fi].Objects, fd, c, diff, out[c], nil)
			}
		}
	}
	return out
}
