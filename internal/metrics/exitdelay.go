package metrics

import (
	"math"

	"repro/internal/dataset"
)

// Exit delay (Section 5): "the actual exit frame minus the predicted
// exit frame". For a detection system the natural reading is the gap
// between the last frame an object was still detected and the frame it
// actually left the scene: a system that loses an object early reports
// a stale world for that many frames. The paper defines but does not
// evaluate it ("we are focusing on entry delay"); it is provided here
// as the natural extension.

// ExitDelayAt returns the number of frames between the track's last
// matching detection at score >= t and its true exit. A track never
// detected at all is charged its full evaluated lifetime, symmetric
// with the entry-delay convention.
func (tr *TrackObservation) ExitDelayAt(t float64) float64 {
	for f := tr.LastFrame; f >= tr.FirstEligible; f-- {
		if s, ok := tr.FrameScores[f]; ok && s >= t {
			return float64(tr.LastFrame - f)
		}
	}
	return float64(tr.LastFrame - tr.FirstEligible + 1)
}

// MeanExitDelay averages ExitDelayAt(t) per class over the evaluable
// tracks, mirroring MeanDelay.
func MeanExitDelay(tracks []*TrackObservation, classes []dataset.Class, t float64) (float64, map[dataset.Class]float64) {
	sums := map[dataset.Class]float64{}
	counts := map[dataset.Class]int{}
	for _, tr := range tracks {
		if tr.FirstEligible < 0 {
			continue
		}
		sums[tr.Class] += tr.ExitDelayAt(t)
		counts[tr.Class]++
	}
	perClass := map[dataset.Class]float64{}
	total, n := 0.0, 0
	for _, c := range classes {
		if counts[c] == 0 {
			continue
		}
		perClass[c] = sums[c] / float64(counts[c])
		total += perClass[c]
		n++
	}
	if n == 0 {
		return math.NaN(), perClass
	}
	return total / float64(n), perClass
}

// MeanExitDelayAtPrecision computes the exit-delay analogue of mD@beta:
// the threshold is chosen by the same Eq. 5 rule, then per-class mean
// exit delays are averaged.
func MeanExitDelayAtPrecision(ds *dataset.Dataset, dets Detections, diff dataset.Difficulty, beta float64) (float64, map[dataset.Class]float64, float64) {
	records := Collect(ds, dets, diff)
	t := ThresholdForMeanPrecision(records, ds.Classes, beta)
	tracks := CollectTracks(ds, dets, diff)
	mean, perClass := MeanExitDelay(tracks, ds.Classes, t)
	return mean, perClass, t
}
