package metrics

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

func TestMAPAtIoUMonotoneInThreshold(t *testing.T) {
	// A slightly-offset detection passes loose IoU thresholds but fails
	// strict ones, so AP must be non-increasing in the threshold.
	gt := car(1, 100, 100, 80, 60)
	ds := oneFrameDataset(gt)
	shifted := geom.NewBox(106, 104, 186, 164)
	dets := Detections{"s": {{{Box: shifted, Score: 0.9, Class: 0}}}}

	prev := math.Inf(1)
	for _, iou := range COCOIoUs {
		v := MAPAtIoU(ds, dets, dataset.Hard, iou)
		if v > prev+1e-9 {
			t.Fatalf("mAP increased with stricter IoU at %v: %v > %v", iou, v, prev)
		}
		prev = v
	}
	// Loose threshold accepts, strict rejects — mAP for Car class is
	// averaged with Pedestrian (no GT -> AP 0), so compare halves.
	if lo := MAPAtIoU(ds, dets, dataset.Hard, 0.5); lo != 0.5 {
		t.Fatalf("mAP@0.5 = %v, want 0.5 (Car 1.0, Pedestrian 0)", lo)
	}
	if hi := MAPAtIoU(ds, dets, dataset.Hard, 0.95); hi != 0 {
		t.Fatalf("mAP@0.95 = %v, want 0", hi)
	}
}

func TestCOCOMAPAveragesGrid(t *testing.T) {
	gt := car(1, 100, 100, 80, 60)
	ds := oneFrameDataset(gt)
	// Exact detection: passes every threshold.
	dets := Detections{"s": {{d(100, 100, 80, 60, 0.9, 0)}}}
	coco, perIoU := COCOMAP(ds, dets, dataset.Hard)
	if len(perIoU) != 10 {
		t.Fatalf("grid size = %d", len(perIoU))
	}
	// Car AP 1 at every threshold, Pedestrian 0 (no GT): mean 0.5.
	if math.Abs(coco-0.5) > 1e-9 {
		t.Fatalf("COCO mAP = %v, want 0.5", coco)
	}
	for iou, v := range perIoU {
		if math.Abs(v-0.5) > 1e-9 {
			t.Fatalf("mAP@%v = %v", iou, v)
		}
	}
}

func TestCOCOBelowVOCForNoisyBoxes(t *testing.T) {
	// Jittered detections: the COCO average over strict thresholds must
	// be below the VOC-style single-threshold evaluation.
	seq := dataset.Sequence{ID: "s", Width: 1000, Height: 500, FPS: 10}
	for f := 0; f < 30; f++ {
		seq.Frames = append(seq.Frames, dataset.Frame{Index: f, Labeled: true, Objects: []dataset.Object{
			car(1, 100, 100, 80, 60),
		}})
	}
	ds := &dataset.Dataset{Classes: []dataset.Class{dataset.Car}, Sequences: []dataset.Sequence{seq}}
	frames := make([][]geom.Scored, 30)
	for f := 0; f < 30; f++ {
		off := float64(f%5) * 2 // 0..8 px offset
		frames[f] = []geom.Scored{d(100+off, 100+off, 80, 60, 0.9, 0)}
	}
	dets := Detections{"s": frames}
	voc := MAPAtIoU(ds, dets, dataset.Hard, 0.5)
	coco, _ := COCOMAP(ds, dets, dataset.Hard)
	if !(coco < voc) {
		t.Fatalf("COCO %v should be below VOC@0.5 %v for noisy boxes", coco, voc)
	}
}

func TestExitDelayBasic(t *testing.T) {
	ds, dets := delayDataset() // track frames 2..9, detected 5..9
	tracks := CollectTracks(ds, dets, dataset.Hard)
	tr := tracks[0]
	// Last detection in frame 9 = exit frame: exit delay 0.
	if got := tr.ExitDelayAt(0.5); got != 0 {
		t.Fatalf("exit delay = %v, want 0", got)
	}
	// Above every score: never detected -> full lifetime.
	if got := tr.ExitDelayAt(0.99); got != 8 {
		t.Fatalf("undetected exit delay = %v, want 8", got)
	}
}

func TestExitDelayLostEarly(t *testing.T) {
	// Track alive frames 0..9, detected only frames 0..3: exit delay 6.
	seq := dataset.Sequence{ID: "s", Width: 1000, Height: 500, FPS: 10}
	for f := 0; f < 10; f++ {
		seq.Frames = append(seq.Frames, dataset.Frame{Index: f, Labeled: true, Objects: []dataset.Object{
			car(3, 100, 100, 80, 60),
		}})
	}
	ds := &dataset.Dataset{Classes: []dataset.Class{dataset.Car}, Sequences: []dataset.Sequence{seq}}
	frames := make([][]geom.Scored, 10)
	for f := 0; f < 4; f++ {
		frames[f] = []geom.Scored{d(100, 100, 80, 60, 0.9, 0)}
	}
	dets := Detections{"s": frames}
	tracks := CollectTracks(ds, dets, dataset.Hard)
	if got := tracks[0].ExitDelayAt(0.5); got != 6 {
		t.Fatalf("exit delay = %v, want 6", got)
	}
	mean, perClass, _ := MeanExitDelayAtPrecision(ds, dets, dataset.Hard, 0.8)
	if mean != 6 || perClass[dataset.Car] != 6 {
		t.Fatalf("mean exit delay = %v / %v", mean, perClass)
	}
}

func TestMeanExitDelayNoTracks(t *testing.T) {
	mean, perClass := MeanExitDelay(nil, []dataset.Class{dataset.Car}, 0.5)
	if !math.IsNaN(mean) || len(perClass) != 0 {
		t.Fatalf("empty exit delay = %v / %v", mean, perClass)
	}
}
