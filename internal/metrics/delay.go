package metrics

import (
	"math"
	"sort"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// TrackObservation summarizes one ground-truth track for the delay
// metric: when its delay clock starts, when it ends, and the score of
// the best matching detection in each frame of its life.
type TrackObservation struct {
	SeqID   string
	TrackID int
	Class   dataset.Class

	// FirstEligible is the first frame index at which the track passes
	// the difficulty filter; -1 when it never does (excluded from
	// evaluation).
	FirstEligible int
	// LastFrame is the last frame the track appears in.
	LastFrame int

	// FrameScores maps frame index -> best matching detection score.
	FrameScores map[int]float64
}

// DelayAt returns the track's entry delay at detection threshold t: the
// number of frames from FirstEligible to the first frame with a
// matching detection of score >= t. Tracks never detected are charged
// their full remaining lifetime (LastFrame - FirstEligible + 1) — the
// paper does not specify the never-detected case; this choice penalizes
// permanent misses and is stated in EXPERIMENTS.md.
func (tr *TrackObservation) DelayAt(t float64) float64 {
	for f := tr.FirstEligible; f <= tr.LastFrame; f++ {
		if s, ok := tr.FrameScores[f]; ok && s >= t {
			return float64(f - tr.FirstEligible)
		}
	}
	return float64(tr.LastFrame - tr.FirstEligible + 1)
}

// CollectTracks builds the per-track delay observations. Matching
// follows the same per-frame greedy rule as the AP metric; the score of
// the detection matched to each ground-truth object is recorded against
// its track. Only labeled frames contribute (dense labels are required
// for a meaningful delay; CityPersons-style sparse sets are evaluated
// with mAP only, as in the paper).
func CollectTracks(ds *dataset.Dataset, dets Detections, diff dataset.Difficulty) []*TrackObservation {
	var out []*TrackObservation
	for si := range ds.Sequences {
		seq := &ds.Sequences[si]
		frames := dets[seq.ID]
		byID := map[int]*TrackObservation{}
		var order []int

		for fi := range seq.Frames {
			if !seq.Frames[fi].Labeled {
				continue
			}
			// Track bookkeeping.
			for _, o := range seq.Frames[fi].Objects {
				tr, ok := byID[o.TrackID]
				if !ok {
					tr = &TrackObservation{
						SeqID: seq.ID, TrackID: o.TrackID, Class: o.Class,
						FirstEligible: -1, FrameScores: map[int]float64{},
					}
					byID[o.TrackID] = tr
					order = append(order, o.TrackID)
				}
				tr.LastFrame = fi
				if tr.FirstEligible < 0 && diff.Eligible(o) {
					tr.FirstEligible = fi
				}
			}
			// Per-class greedy matching, recording matched scores.
			var fd []geom.Scored
			if frames != nil && fi < len(frames) {
				fd = frames[fi]
			}
			for _, c := range ds.Classes {
				matchTracksInFrame(seq.Frames[fi].Objects, fd, c, diff, fi, byID)
			}
		}
		for _, id := range order {
			out = append(out, byID[id])
		}
	}
	return out
}

// matchTracksInFrame mirrors matchFrame's greedy matching but records
// the matched detection score per ground-truth track. Eligibility for
// delay matching is per-frame: an object currently failing the
// difficulty filter cannot be "detected" yet, matching the metric's
// definition over evaluated ground truth.
func matchTracksInFrame(objects []dataset.Object, dets []geom.Scored, class dataset.Class,
	diff dataset.Difficulty, frame int, byID map[int]*TrackObservation) {

	var eligible []dataset.Object
	for _, o := range objects {
		if o.Class == class && diff.Eligible(o) {
			eligible = append(eligible, o)
		}
	}
	if len(eligible) == 0 {
		return
	}
	var cls []geom.Scored
	for _, d := range dets {
		if d.Class == int(class) {
			cls = append(cls, d)
		}
	}
	sort.SliceStable(cls, func(i, j int) bool { return cls[i].Score > cls[j].Score })
	matched := make([]bool, len(eligible))
	thresh := class.MatchIoU()
	for _, d := range cls {
		best, bestIoU := -1, 0.0
		for i, o := range eligible {
			if matched[i] {
				continue
			}
			if iou := geom.IoU(d.Box, o.Box); iou > bestIoU {
				best, bestIoU = i, iou
			}
		}
		if best >= 0 && bestIoU >= thresh {
			matched[best] = true
			tr := byID[eligible[best].TrackID]
			if s, ok := tr.FrameScores[frame]; !ok || d.Score > s {
				tr.FrameScores[frame] = d.Score
			}
		}
	}
}

// MeanDelay averages DelayAt(t) per class over the evaluable tracks.
func MeanDelay(tracks []*TrackObservation, classes []dataset.Class, t float64) (float64, map[dataset.Class]float64) {
	sums := map[dataset.Class]float64{}
	counts := map[dataset.Class]int{}
	for _, tr := range tracks {
		if tr.FirstEligible < 0 {
			continue
		}
		sums[tr.Class] += tr.DelayAt(t)
		counts[tr.Class]++
	}
	perClass := map[dataset.Class]float64{}
	total, n := 0.0, 0
	for _, c := range classes {
		if counts[c] == 0 {
			continue
		}
		perClass[c] = sums[c] / float64(counts[c])
		total += perClass[c]
		n++
	}
	if n == 0 {
		return math.NaN(), perClass
	}
	return total / float64(n), perClass
}

// classIndex supports O(log n) precision queries for one class.
type classIndex struct {
	scores []float64 // descending
	cumTP  []int     // cumTP[i] = TPs among the first i records
	numGT  int
}

func newClassIndex(r *ClassRecords) *classIndex {
	recs := append([]Record(nil), r.Records...)
	sort.Slice(recs, func(i, j int) bool { return recs[i].Score > recs[j].Score })
	ci := &classIndex{numGT: r.NumGT}
	ci.scores = make([]float64, len(recs))
	ci.cumTP = make([]int, len(recs)+1)
	for i, rec := range recs {
		ci.scores[i] = rec.Score
		ci.cumTP[i+1] = ci.cumTP[i]
		if rec.TP {
			ci.cumTP[i+1]++
		}
	}
	return ci
}

// precisionAt returns precision over records with score >= t (1.0 when
// none qualify, matching PrecisionRecallAt).
func (ci *classIndex) precisionAt(t float64) float64 {
	// scores are descending; find count with score >= t.
	n := sort.Search(len(ci.scores), func(i int) bool { return ci.scores[i] < t })
	if n == 0 {
		return 1
	}
	return float64(ci.cumTP[n]) / float64(n)
}

// recallAt returns recall at threshold t.
func (ci *classIndex) recallAt(t float64) float64 {
	if ci.numGT == 0 {
		return 0
	}
	n := sort.Search(len(ci.scores), func(i int) bool { return ci.scores[i] < t })
	return float64(ci.cumTP[n]) / float64(ci.numGT)
}

// ThresholdForMeanPrecision solves Eq. 5: the smallest threshold t at
// which the mean precision over classes reaches beta (smallest t gives
// the highest recall at that precision). When no threshold reaches
// beta, the threshold with the highest mean precision is returned.
func ThresholdForMeanPrecision(records map[dataset.Class]*ClassRecords, classes []dataset.Class, beta float64) float64 {
	indexes := make([]*classIndex, 0, len(classes))
	var all []float64
	for _, c := range classes {
		r := records[c]
		if r == nil {
			continue
		}
		indexes = append(indexes, newClassIndex(r))
		for _, rec := range r.Records {
			all = append(all, rec.Score)
		}
	}
	if len(all) == 0 {
		return 1
	}
	sort.Float64s(all)
	// Deduplicate candidate thresholds.
	uniq := all[:0]
	for i, s := range all {
		if i == 0 || s != uniq[len(uniq)-1] {
			uniq = append(uniq, s)
		}
	}
	meanPrec := func(t float64) float64 {
		sum := 0.0
		for _, ci := range indexes {
			sum += ci.precisionAt(t)
		}
		return sum / float64(len(indexes))
	}
	bestT, bestPrec := uniq[len(uniq)-1], -1.0
	for _, t := range uniq {
		p := meanPrec(t)
		if p >= beta {
			return t
		}
		if p > bestPrec {
			bestPrec, bestT = p, t
		}
	}
	return bestT
}

// MeanDelayAtPrecision computes mD@beta (Eq. 4-5): the detection
// threshold is chosen so the mean precision over classes equals beta,
// then per-class mean entry delays are averaged. It returns the mean
// delay, the per-class delays and the chosen threshold.
func MeanDelayAtPrecision(ds *dataset.Dataset, dets Detections, diff dataset.Difficulty, beta float64) (float64, map[dataset.Class]float64, float64) {
	records := Collect(ds, dets, diff)
	t := ThresholdForMeanPrecision(records, ds.Classes, beta)
	tracks := CollectTracks(ds, dets, diff)
	mean, perClass := MeanDelay(tracks, ds.Classes, t)
	return mean, perClass, t
}
