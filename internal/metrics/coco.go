package metrics

import (
	"repro/internal/dataset"
	"repro/internal/geom"
)

// The official CityPersons benchmark follows the MS-COCO protocol,
// "which measures mAP under 10 different IoUs ranging from 0.5 to
// 0.95" (Section 7.1). The paper itself evaluates CityPersons with the
// Pascal VOC protocol; both are provided.

// CollectAtIoU pools evaluation records at an explicit IoU threshold
// (instead of the per-class KITTI thresholds).
func CollectAtIoU(ds *dataset.Dataset, dets Detections, diff dataset.Difficulty, iou float64) map[dataset.Class]*ClassRecords {
	out := map[dataset.Class]*ClassRecords{}
	for _, c := range ds.Classes {
		out[c] = &ClassRecords{Class: c}
	}
	for si := range ds.Sequences {
		seq := &ds.Sequences[si]
		frames := dets[seq.ID]
		for fi := range seq.Frames {
			if !seq.Frames[fi].Labeled {
				continue
			}
			var fd []geom.Scored
			if frames != nil && fi < len(frames) {
				fd = frames[fi]
			}
			for _, c := range ds.Classes {
				matchFrameIoU(seq.Frames[fi].Objects, fd, c, diff, iou, out[c], nil)
			}
		}
	}
	return out
}

// MAPAtIoU returns the mean AP over classes at one IoU threshold.
func MAPAtIoU(ds *dataset.Dataset, dets Detections, diff dataset.Difficulty, iou float64) float64 {
	records := CollectAtIoU(ds, dets, diff, iou)
	sum := 0.0
	for _, c := range ds.Classes {
		sum += records[c].AP()
	}
	if len(ds.Classes) == 0 {
		return 0
	}
	return sum / float64(len(ds.Classes))
}

// COCOIoUs is the MS-COCO threshold grid, 0.50:0.05:0.95.
var COCOIoUs = []float64{0.50, 0.55, 0.60, 0.65, 0.70, 0.75, 0.80, 0.85, 0.90, 0.95}

// COCOMAP evaluates the COCO-style mAP: the mean over the ten IoU
// thresholds of the mean class AP.
func COCOMAP(ds *dataset.Dataset, dets Detections, diff dataset.Difficulty) (float64, map[float64]float64) {
	perIoU := map[float64]float64{}
	sum := 0.0
	for _, iou := range COCOIoUs {
		v := MAPAtIoU(ds, dets, diff, iou)
		perIoU[iou] = v
		sum += v
	}
	return sum / float64(len(COCOIoUs)), perIoU
}
