package metrics

import (
	"sort"

	"repro/internal/dataset"
)

// CurvePoint is one operating point of the Figure 7 visualization: how
// recall and delay trade against precision for a single class.
type CurvePoint struct {
	Precision float64
	Recall    float64
	Delay     float64
	Threshold float64
}

// DelayRecallCurve reproduces Figure 7 for one class: for each precision
// target, the threshold achieving (at least) that class precision is
// located, and recall and mean entry delay are evaluated there. Targets
// a class precision, not the cross-class mean, matching the per-class
// panels of the figure.
func DelayRecallCurve(ds *dataset.Dataset, dets Detections, diff dataset.Difficulty,
	class dataset.Class, precisionTargets []float64) []CurvePoint {

	records := Collect(ds, dets, diff)
	r := records[class]
	if r == nil || len(r.Records) == 0 {
		return nil
	}
	ci := newClassIndex(r)
	tracks := CollectTracks(ds, dets, diff)
	var classTracks []*TrackObservation
	for _, tr := range tracks {
		if tr.Class == class && tr.FirstEligible >= 0 {
			classTracks = append(classTracks, tr)
		}
	}

	// Candidate thresholds: the distinct scores, ascending.
	cand := append([]float64(nil), ci.scores...)
	sort.Float64s(cand)

	var out []CurvePoint
	for _, target := range precisionTargets {
		// Smallest threshold achieving the target precision.
		t, found := 0.0, false
		for _, c := range cand {
			if ci.precisionAt(c) >= target {
				t, found = c, true
				break
			}
		}
		if !found {
			continue
		}
		delaySum := 0.0
		for _, tr := range classTracks {
			delaySum += tr.DelayAt(t)
		}
		delay := 0.0
		if len(classTracks) > 0 {
			delay = delaySum / float64(len(classTracks))
		}
		out = append(out, CurvePoint{
			Precision: ci.precisionAt(t),
			Recall:    ci.recallAt(t),
			Delay:     delay,
			Threshold: t,
		})
	}
	return out
}
