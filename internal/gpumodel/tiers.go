package gpumodel

import (
	"fmt"
	"sort"
)

// Tier describes a GPU class a serving shard can run on: how fast it
// executes the paper's timing model relative to the reference Maxwell
// Titan X, what it costs to rent, and how long a newly requested
// executor takes to come online. Speeds are rough public-benchmark
// ratios for the inference workloads of the paper, not measurements;
// prices follow the classic cloud list prices for the same parts.
type Tier struct {
	// Name identifies the tier in configs and books (e.g. "titanx").
	Name string
	// Speed is the GPU-side throughput multiplier relative to the
	// reference Titan X (alpha and launch overhead divide by it).
	Speed float64
	// DollarsPerHour is the modeled rental price of one executor.
	DollarsPerHour float64
	// ScaleUpLatency is the modeled seconds between an autoscaler
	// requesting an executor and the capacity serving frames.
	ScaleUpLatency float64
}

// DollarsPerSecond converts the rental price to the per-second rate the
// cost integral charges.
func (t Tier) DollarsPerSecond() float64 { return t.DollarsPerHour / 3600 }

// Apply rescales a timing model's GPU-side parameters for this tier.
// CPU-side overheads are host work and do not change with the GPU. The
// reference tier (Speed 1) returns the model unchanged, bit for bit, so
// tiered and untiered runs of the same scenario stay byte-identical.
func (t Tier) Apply(m Model) Model {
	if t.Speed == 1 {
		return m
	}
	m.Alpha /= t.Speed
	m.LaunchOverhead /= t.Speed
	return m
}

// Model is shorthand for t.Apply(Default()).
func (t Tier) Model() Model { return t.Apply(Default()) }

// tiers is the built-in catalog. The reference "titanx" tier must stay
// Speed 1 — Tier.Apply relies on it being an exact identity.
var tiers = map[string]Tier{
	"k80":    {Name: "k80", Speed: 0.45, DollarsPerHour: 0.90, ScaleUpLatency: 1.5},
	"titanx": {Name: "titanx", Speed: 1.0, DollarsPerHour: 1.80, ScaleUpLatency: 1.0},
	"v100":   {Name: "v100", Speed: 2.3, DollarsPerHour: 3.06, ScaleUpLatency: 0.8},
}

// TierByName resolves a catalog tier; the error lists the valid names.
func TierByName(name string) (Tier, error) {
	t, ok := tiers[name]
	if !ok {
		return Tier{}, fmt.Errorf("gpumodel: unknown tier %q (have %v)", name, TierNames())
	}
	return t, nil
}

// TierNames returns the catalog names in sorted order.
func TierNames() []string {
	names := make([]string, 0, len(tiers))
	for n := range tiers {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
