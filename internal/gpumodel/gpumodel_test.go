package gpumodel

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/ops"
)

func TestLaunchTimeLinear(t *testing.T) {
	m := Model{Alpha: 1e-12, LaunchOverhead: 1e-3}
	if got := m.LaunchTime(0); got != 1e-3 {
		t.Fatalf("zero-work launch = %v, want overhead only", got)
	}
	if got := m.LaunchTime(1e12); got != 1.001 {
		t.Fatalf("launch = %v, want 1.001", got)
	}
}

func TestSingleModelFrameMatchesTable7Anchor(t *testing.T) {
	m := Default()
	cost := ops.MustCostModel("resnet50")
	ft := m.SingleModelFrame(cost.FullFrameOps(ops.KITTIWidth, ops.KITTIHeight))
	// Table 7: GPU-only 0.159 s, Total 0.193 s. Allow 10% slack; these
	// are the calibration anchors.
	if ft.GPU < 0.14 || ft.GPU > 0.18 {
		t.Fatalf("single-model GPU time = %.3f, want ~0.159", ft.GPU)
	}
	if ft.Total < 0.17 || ft.Total > 0.22 {
		t.Fatalf("single-model total = %.3f, want ~0.193", ft.Total)
	}
}

func TestMergeNearbyRegions(t *testing.T) {
	m := Default()
	cost := ops.MustCostModel("resnet50")
	// Two adjacent small regions: merging saves a launch overhead at
	// almost no extra area.
	regions := []geom.Box{
		geom.NewBox(100, 100, 200, 200),
		geom.NewBox(210, 100, 310, 200),
	}
	merged := m.MergeRegions(regions, ops.KITTIWidth, ops.KITTIHeight, cost)
	if len(merged) != 1 {
		t.Fatalf("adjacent regions not merged: %v", merged)
	}
	// Two far-apart regions whose union would span most of the frame:
	// merging costs more feature extraction than a launch overhead.
	far := []geom.Box{
		geom.NewBox(0, 0, 120, 120),
		geom.NewBox(1100, 250, 1240, 370),
	}
	merged = m.MergeRegions(far, ops.KITTIWidth, ops.KITTIHeight, cost)
	if len(merged) != 2 {
		t.Fatalf("distant regions merged despite cost: %v", merged)
	}
}

func TestCaTDetFrameFasterThanSingle(t *testing.T) {
	m := Default()
	refCost := ops.MustCostModel("resnet50")
	propCost := ops.MustCostModel("resnet10a")
	regions := []geom.Box{
		geom.NewBox(100, 100, 260, 260),
		geom.NewBox(400, 150, 560, 300),
		geom.NewBox(800, 120, 980, 280),
	}
	ft := m.CaTDetFrame(propCost.FullFrameOps(ops.KITTIWidth, ops.KITTIHeight),
		regions, ops.KITTIWidth, ops.KITTIHeight, refCost, 10)
	single := m.SingleModelFrame(refCost.FullFrameOps(ops.KITTIWidth, ops.KITTIHeight))
	if ft.GPU >= single.GPU/2 {
		t.Fatalf("CaTDet GPU %.3f not well below single %.3f", ft.GPU, single.GPU)
	}
	if ft.Total >= single.Total {
		t.Fatalf("CaTDet total %.3f not below single %.3f", ft.Total, single.Total)
	}
	if ft.Launches < 1 || ft.Launches > len(regions) {
		t.Fatalf("launches = %d", ft.Launches)
	}
}

func TestMergedWorkloadAtLeastUnmerged(t *testing.T) {
	m := Default()
	cost := ops.MustCostModel("resnet50")
	regions := []geom.Box{
		geom.NewBox(100, 100, 200, 200),
		geom.NewBox(150, 150, 260, 260),
		geom.NewBox(700, 100, 820, 220),
	}
	ft := m.CaTDetFrame(0, regions, ops.KITTIWidth, ops.KITTIHeight, cost, 0)
	unmerged := 0.0
	for _, r := range regions {
		// Union area is smaller than the sum when boxes overlap, so use
		// the union-area workload as the floor.
		_ = r
	}
	unmerged = m.RegionWorkload(geom.NewBox(0, 0, 1, 1), ops.KITTIWidth, ops.KITTIHeight, cost, 0)
	if ft.MergedWorkload < unmerged {
		t.Fatalf("merged workload %.3e below any single region %.3e", ft.MergedWorkload, unmerged)
	}
}

// TestCaTDetFrameEmptyMergeChargesHead is the regression for the
// vanished-head bug: when no refinement region survives (or none was
// scheduled) while proposals still exist, the RoI-head work used to
// silently disappear from the frame price. It must now run as one
// zero-area, head-only launch.
func TestCaTDetFrameEmptyMergeChargesHead(t *testing.T) {
	m := Default()
	cost := ops.MustCostModel("resnet50")
	propOps := 1e9
	headOnly := cost.RegionOps(ops.KITTIWidth, ops.KITTIHeight, 0, 12)
	if headOnly <= 0 {
		t.Fatal("head-only workload is zero; the regression cannot discriminate")
	}
	cases := []struct {
		name         string
		regions      []geom.Box
		nProposals   int
		wantLaunches int
		wantWork     float64
	}{
		{"no regions, no proposals", nil, 0, 0, 0},
		{"no regions, proposals pending", nil, 12, 1, headOnly},
		{"one region, no proposals", []geom.Box{geom.NewBox(100, 100, 200, 200)}, 0, 1,
			m.RegionWorkload(geom.NewBox(100, 100, 200, 200), ops.KITTIWidth, ops.KITTIHeight, cost, 0)},
	}
	for _, tc := range cases {
		ft := m.CaTDetFrame(propOps, tc.regions, ops.KITTIWidth, ops.KITTIHeight, cost, tc.nProposals)
		if ft.Launches != tc.wantLaunches {
			t.Errorf("%s: launches = %d, want %d", tc.name, ft.Launches, tc.wantLaunches)
		}
		if ft.MergedWorkload != tc.wantWork {
			t.Errorf("%s: merged workload = %v, want %v", tc.name, ft.MergedWorkload, tc.wantWork)
		}
		wantGPU := m.LaunchTime(propOps)
		if tc.wantLaunches > 0 {
			wantGPU += m.LaunchTime(tc.wantWork)
		}
		if ft.GPU != wantGPU {
			t.Errorf("%s: GPU = %v, want %v", tc.name, ft.GPU, wantGPU)
		}
	}
	// The proposals-but-no-regions frame must cost strictly more than
	// the regionless, proposal-free one: the head work is charged.
	bare := m.CaTDetFrame(propOps, nil, ops.KITTIWidth, ops.KITTIHeight, cost, 0)
	withHead := m.CaTDetFrame(propOps, nil, ops.KITTIWidth, ops.KITTIHeight, cost, 12)
	if withHead.GPU <= bare.GPU {
		t.Errorf("pending proposals priced at %v, no more than the headless frame %v", withHead.GPU, bare.GPU)
	}
}

// TestBatchFrames pins the batched-launch pricing: alpha*SUM(W) + b —
// the per-launch constant paid once for the whole batch — plus the
// per-frame CPU overhead, which does not batch away.
func TestBatchFrames(t *testing.T) {
	m := Model{Alpha: 1e-12, LaunchOverhead: 5e-3}
	works := []float64{1e9, 2e9, 3e9}
	cpu := 0.01
	ft := m.BatchFrames(works, cpu)
	wantGPU := m.Alpha*6e9 + m.LaunchOverhead
	if ft.GPU != wantGPU {
		t.Fatalf("batch GPU = %v, want alpha*sum+b = %v", ft.GPU, wantGPU)
	}
	if ft.Total != wantGPU+3*cpu {
		t.Fatalf("batch total = %v, want GPU + 3 cpu overheads = %v", ft.Total, wantGPU+3*cpu)
	}
	if ft.Launches != 1 {
		t.Fatalf("batch launches = %d, want 1", ft.Launches)
	}

	// Amortization: a batch of k frames saves exactly (k-1) launch
	// overheads versus k separate single-frame launches.
	separate := 0.0
	for _, w := range works {
		separate += m.LaunchTime(w)
	}
	if got, want := separate-ft.GPU, 2*m.LaunchOverhead; math.Abs(got-want) > 1e-15 {
		t.Fatalf("batching saved %v, want (k-1)*b = %v", got, want)
	}

	// Empty batch: the degenerate launch costs b alone and no CPU.
	if got := m.BatchFrames(nil, cpu); got.GPU != m.LaunchOverhead || got.Total != m.LaunchOverhead {
		t.Fatalf("empty batch priced at %+v", got)
	}
}

func TestRegionWorkloadClamps(t *testing.T) {
	m := Default()
	cost := ops.MustCostModel("resnet50")
	full := m.RegionWorkload(geom.NewBox(0, 0, ops.KITTIWidth, ops.KITTIHeight), ops.KITTIWidth, ops.KITTIHeight, cost, 0)
	over := m.RegionWorkload(geom.NewBox(-100, -100, 2*ops.KITTIWidth, 2*ops.KITTIHeight), ops.KITTIWidth, ops.KITTIHeight, cost, 0)
	if over > full {
		t.Fatalf("oversized region workload %v exceeds full-frame %v", over, full)
	}
	if m.RegionWorkload(geom.NewBox(0, 0, 10, 10), 0, 0, cost, 0) != 0 {
		t.Fatal("degenerate frame should cost nothing")
	}
}

// TestFullCascadeFrame pins the highest-quality mode's pricing: the
// proposal pass plus one full-frame refinement launch, each paying its
// own launch overhead, with the CaTDet CPU overhead on top. It must
// sit strictly between proposal-only (the shed floor) and be costlier
// than the region-gated CaTDet frame it gives the gating up from.
func TestFullCascadeFrame(t *testing.T) {
	m := Default()
	prop := ops.MustCostModel("resnet10a").FullFrameOps(ops.KITTIWidth, ops.KITTIHeight)
	ref := ops.MustCostModel("resnet50").FullFrameOps(ops.KITTIWidth, ops.KITTIHeight)
	full := m.FullCascadeFrame(prop, ref)
	if want := m.LaunchTime(prop) + m.LaunchTime(ref); full.GPU != want {
		t.Fatalf("full-cascade GPU %.6f, want two separate launches %.6f", full.GPU, want)
	}
	if want := full.GPU + m.CPUOverheadCaTDet; full.Total != want {
		t.Fatalf("full-cascade total %.6f, want GPU + CaTDet CPU overhead %.6f", full.Total, want)
	}
	shed := m.ProposalOnlyFrame(prop)
	if full.Total <= shed.Total {
		t.Fatalf("full cascade %.4f not above proposal-only %.4f", full.Total, shed.Total)
	}
	gated := m.CaTDetFrame(prop, []geom.Box{geom.NewBox(100, 100, 260, 260)},
		ops.KITTIWidth, ops.KITTIHeight, ops.MustCostModel("resnet50"), 5)
	if full.Total <= gated.Total {
		t.Fatalf("full cascade %.4f not above region-gated CaTDet %.4f", full.Total, gated.Total)
	}
}
