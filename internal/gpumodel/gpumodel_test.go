package gpumodel

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/ops"
)

func TestLaunchTimeLinear(t *testing.T) {
	m := Model{Alpha: 1e-12, LaunchOverhead: 1e-3}
	if got := m.LaunchTime(0); got != 1e-3 {
		t.Fatalf("zero-work launch = %v, want overhead only", got)
	}
	if got := m.LaunchTime(1e12); got != 1.001 {
		t.Fatalf("launch = %v, want 1.001", got)
	}
}

func TestSingleModelFrameMatchesTable7Anchor(t *testing.T) {
	m := Default()
	cost := ops.MustCostModel("resnet50")
	ft := m.SingleModelFrame(cost.FullFrameOps(ops.KITTIWidth, ops.KITTIHeight))
	// Table 7: GPU-only 0.159 s, Total 0.193 s. Allow 10% slack; these
	// are the calibration anchors.
	if ft.GPU < 0.14 || ft.GPU > 0.18 {
		t.Fatalf("single-model GPU time = %.3f, want ~0.159", ft.GPU)
	}
	if ft.Total < 0.17 || ft.Total > 0.22 {
		t.Fatalf("single-model total = %.3f, want ~0.193", ft.Total)
	}
}

func TestMergeNearbyRegions(t *testing.T) {
	m := Default()
	cost := ops.MustCostModel("resnet50")
	// Two adjacent small regions: merging saves a launch overhead at
	// almost no extra area.
	regions := []geom.Box{
		geom.NewBox(100, 100, 200, 200),
		geom.NewBox(210, 100, 310, 200),
	}
	merged := m.MergeRegions(regions, ops.KITTIWidth, ops.KITTIHeight, cost)
	if len(merged) != 1 {
		t.Fatalf("adjacent regions not merged: %v", merged)
	}
	// Two far-apart regions whose union would span most of the frame:
	// merging costs more feature extraction than a launch overhead.
	far := []geom.Box{
		geom.NewBox(0, 0, 120, 120),
		geom.NewBox(1100, 250, 1240, 370),
	}
	merged = m.MergeRegions(far, ops.KITTIWidth, ops.KITTIHeight, cost)
	if len(merged) != 2 {
		t.Fatalf("distant regions merged despite cost: %v", merged)
	}
}

func TestCaTDetFrameFasterThanSingle(t *testing.T) {
	m := Default()
	refCost := ops.MustCostModel("resnet50")
	propCost := ops.MustCostModel("resnet10a")
	regions := []geom.Box{
		geom.NewBox(100, 100, 260, 260),
		geom.NewBox(400, 150, 560, 300),
		geom.NewBox(800, 120, 980, 280),
	}
	ft := m.CaTDetFrame(propCost.FullFrameOps(ops.KITTIWidth, ops.KITTIHeight),
		regions, ops.KITTIWidth, ops.KITTIHeight, refCost, 10)
	single := m.SingleModelFrame(refCost.FullFrameOps(ops.KITTIWidth, ops.KITTIHeight))
	if ft.GPU >= single.GPU/2 {
		t.Fatalf("CaTDet GPU %.3f not well below single %.3f", ft.GPU, single.GPU)
	}
	if ft.Total >= single.Total {
		t.Fatalf("CaTDet total %.3f not below single %.3f", ft.Total, single.Total)
	}
	if ft.Launches < 1 || ft.Launches > len(regions) {
		t.Fatalf("launches = %d", ft.Launches)
	}
}

func TestMergedWorkloadAtLeastUnmerged(t *testing.T) {
	m := Default()
	cost := ops.MustCostModel("resnet50")
	regions := []geom.Box{
		geom.NewBox(100, 100, 200, 200),
		geom.NewBox(150, 150, 260, 260),
		geom.NewBox(700, 100, 820, 220),
	}
	ft := m.CaTDetFrame(0, regions, ops.KITTIWidth, ops.KITTIHeight, cost, 0)
	unmerged := 0.0
	for _, r := range regions {
		// Union area is smaller than the sum when boxes overlap, so use
		// the union-area workload as the floor.
		_ = r
	}
	unmerged = m.RegionWorkload(geom.NewBox(0, 0, 1, 1), ops.KITTIWidth, ops.KITTIHeight, cost, 0)
	if ft.MergedWorkload < unmerged {
		t.Fatalf("merged workload %.3e below any single region %.3e", ft.MergedWorkload, unmerged)
	}
}

func TestRegionWorkloadClamps(t *testing.T) {
	m := Default()
	cost := ops.MustCostModel("resnet50")
	full := m.RegionWorkload(geom.NewBox(0, 0, ops.KITTIWidth, ops.KITTIHeight), ops.KITTIWidth, ops.KITTIHeight, cost, 0)
	over := m.RegionWorkload(geom.NewBox(-100, -100, 2*ops.KITTIWidth, 2*ops.KITTIHeight), ops.KITTIWidth, ops.KITTIHeight, cost, 0)
	if over > full {
		t.Fatalf("oversized region workload %v exceeds full-frame %v", over, full)
	}
	if m.RegionWorkload(geom.NewBox(0, 0, 10, 10), 0, 0, cost, 0) != 0 {
		t.Fatal("degenerate frame should cost nothing")
	}
}
