// Package gpumodel implements the GPU execution-time model of the
// paper's Appendix I. GPU time for a CNN workload W is modeled as
// T = alpha*W + b, where b is a per-launch constant ("estimated to
// roughly match the execution time of a 400x400 image"). Because each
// separately processed region pays b, nearby regions are merged with
// the greedy algorithm of the appendix whenever the merged rectangle is
// estimated to execute faster than the two parts.
package gpumodel

import (
	"repro/internal/geom"
	"repro/internal/ops"
)

// Model holds the linear timing parameters plus the CPU-side per-frame
// overheads (data loading, framework wrapping) observed in Table 7 as
// the difference between "Total" and "GPU-only" time.
type Model struct {
	// Alpha is seconds per arithmetic operation on the GPU.
	Alpha float64
	// LaunchOverhead is b: seconds charged per separate region launch.
	LaunchOverhead float64
	// CPUOverheadSingle and CPUOverheadCaTDet are the per-frame
	// non-GPU seconds for the two pipelines.
	CPUOverheadSingle float64
	CPUOverheadCaTDet float64
}

// Default returns parameters fitted to the paper's Table 7 anchors on a
// Maxwell Titan X: the single-model Res50 row (254.3 Gops in 0.159 s
// GPU time, one launch) pins Alpha; the launch overhead is set so small
// regions are dominated by b, which drives merging.
func Default() Model {
	return Model{
		Alpha:             6.15e-13, // 0.159s / (254.3G + b-equivalent)
		LaunchOverhead:    2.5e-3,
		CPUOverheadSingle: 0.034, // 0.193 - 0.159
		CPUOverheadCaTDet: 0.046,
	}
}

// LaunchTime returns T = alpha*W + b for one launch of W operations.
func (m Model) LaunchTime(w float64) float64 {
	return m.Alpha*w + m.LaunchOverhead
}

// RegionWorkload estimates the operations to process one rectangular
// region with the refinement network: the feature extractor scaled by
// the region's share of the frame area plus the head cost for the RoIs
// inside it.
func (m Model) RegionWorkload(region geom.Box, frameW, frameH float64, cost ops.CostModel, roisInside int) float64 {
	if frameW <= 0 || frameH <= 0 {
		return 0
	}
	frac := region.Area() / (frameW * frameH)
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return cost.RegionOps(int(frameW), int(frameH), frac, roisInside)
}

// MergeRegions applies the appendix's greedy merging to the refinement
// regions: two boxes merge when the estimated execution time of their
// union is below the sum of their individual times (each paying the
// launch overhead). RoI-head work is ignored during merging — it is
// invariant to the merge — so the cost function prices feature
// extraction only.
//
// A candidate rectangle's time is alpha*(featOps*frac) + b with featOps
// constant across the whole merge, so the cost-model call is hoisted
// out of the greedy pair scan: the scan evaluates O(n²) candidates per
// round, and walking the backbone's layer stack (allocating its RPN
// net) per candidate dominated the serving-loop heap profile. The
// hoisted form multiplies the same two floats RegionWorkload would,
// so merge decisions are bit-identical.
func (m Model) MergeRegions(regions []geom.Box, frameW, frameH float64, cost ops.CostModel) []geom.Box {
	area := frameW * frameH
	if frameW <= 0 || frameH <= 0 {
		flat := m.LaunchTime(0)
		return geom.GreedyMerge(regions, func(geom.Box) float64 { return flat })
	}
	feat := cost.RegionOps(int(frameW), int(frameH), 1, 0)
	return geom.GreedyMerge(regions, func(b geom.Box) float64 {
		frac := b.Area() / area
		if frac < 0 {
			frac = 0
		}
		if frac > 1 {
			frac = 1
		}
		return m.LaunchTime(feat * frac)
	})
}

// FrameTime is the per-frame timing estimate for one CaTDet (or
// cascaded) frame.
type FrameTime struct {
	// GPU is the GPU kernel time: the proposal network's full-frame
	// launch plus one launch per merged refinement region.
	GPU float64
	// Total adds the CPU-side overhead.
	Total float64
	// Launches is the number of refinement launches after merging.
	Launches int
	// MergedWorkload is the refinement operations actually executed,
	// including the area added by merging (>= the unmerged workload).
	MergedWorkload float64
}

// CaTDetFrame estimates the frame time for a cascaded/CaTDet frame:
// proposalOps ran as one full-frame launch, and the (pre-merge)
// refinement regions each carry margin already.
func (m Model) CaTDetFrame(proposalOps float64, regions []geom.Box, frameW, frameH float64,
	refCost ops.CostModel, nProposals int) FrameTime {

	merged := m.MergeRegions(regions, frameW, frameH, refCost)
	gpu := m.LaunchTime(proposalOps)
	work := 0.0
	launches := len(merged)
	roisLeft := nProposals
	for i, r := range merged {
		// Attribute the RoI head work to the merged launches, all on
		// the first launch for simplicity (it is launch-invariant).
		rois := 0
		if i == 0 {
			rois = roisLeft
		}
		w := m.RegionWorkload(r, frameW, frameH, refCost, rois)
		work += w
		gpu += m.LaunchTime(w)
	}
	if len(merged) == 0 && nProposals > 0 && frameW > 0 && frameH > 0 {
		// No refinement region survived merging but RoIs still need the
		// head pass (e.g. every proposal fell on an already-tracked
		// object, so no region was scheduled). Charge a zero-area,
		// head-only launch instead of silently dropping the work.
		w := refCost.RegionOps(int(frameW), int(frameH), 0, nProposals)
		work += w
		gpu += m.LaunchTime(w)
		launches = 1
	}
	return FrameTime{
		GPU:            gpu,
		Total:          gpu + m.CPUOverheadCaTDet,
		Launches:       launches,
		MergedWorkload: work,
	}
}

// BatchFrames prices one cross-frame batched launch: the workloads of
// every frame in the batch execute as a single fused launch, so
// T_gpu = alpha*ΣW + b — the per-launch constant b from Appendix I is
// paid once for the whole batch, exactly the amortization that region
// merging performs spatially within a frame. Each workload must be a
// frame's total operations (for CaTDet: proposal pass plus merged
// refinement regions including the RoI head). cpuPerFrame is the
// non-GPU per-frame overhead, still paid once per frame — data
// loading and framework wrapping do not batch away.
func (m Model) BatchFrames(workloads []float64, cpuPerFrame float64) FrameTime {
	w := 0.0
	for _, wi := range workloads {
		w += wi
	}
	gpu := m.LaunchTime(w)
	return FrameTime{
		GPU:            gpu,
		Total:          gpu + cpuPerFrame*float64(len(workloads)),
		Launches:       1,
		MergedWorkload: w,
	}
}

// FullCascadeFrame estimates the frame time of a cascade frame whose
// refinement runs on the entire frame instead of the gated regions:
// the proposal network's full-frame launch (still feeding the
// tracker) plus one full-frame refinement launch of refOps
// operations. This is the serving layer's highest-quality mode —
// CaTDet's region gating, the source of its speedup, is given up for
// maximum refinement coverage — and the upper anchor the adaptive
// control plane (serve/control) trades against ProposalOnlyFrame.
func (m Model) FullCascadeFrame(proposalOps, refOps float64) FrameTime {
	gpu := m.LaunchTime(proposalOps) + m.LaunchTime(refOps)
	return FrameTime{
		GPU:            gpu,
		Total:          gpu + m.CPUOverheadCaTDet,
		Launches:       1,
		MergedWorkload: refOps,
	}
}

// ProposalOnlyFrame estimates the frame time of a cascade frame whose
// refinement pass has been shed (the serving layer's degraded mode
// under overload): only the proposal network's full-frame launch runs.
func (m Model) ProposalOnlyFrame(proposalOps float64) FrameTime {
	gpu := m.LaunchTime(proposalOps)
	return FrameTime{
		GPU:            gpu,
		Total:          gpu + m.CPUOverheadCaTDet,
		Launches:       1,
		MergedWorkload: proposalOps,
	}
}

// SingleModelFrame estimates the frame time of the single-model system:
// one full-frame launch.
func (m Model) SingleModelFrame(fullOps float64) FrameTime {
	gpu := m.LaunchTime(fullOps)
	return FrameTime{
		GPU:            gpu,
		Total:          gpu + m.CPUOverheadSingle,
		Launches:       1,
		MergedWorkload: fullOps,
	}
}
