package gpumodel

import (
	"math"
	"testing"
)

// TestTierCatalog pins the catalog surface: names resolve, unknown
// names error, and the listing is sorted and complete.
func TestTierCatalog(t *testing.T) {
	names := TierNames()
	want := []string{"k80", "titanx", "v100"}
	if len(names) != len(want) {
		t.Fatalf("TierNames() = %v, want %v", names, want)
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("TierNames() = %v, want %v", names, want)
		}
		tier, err := TierByName(n)
		if err != nil {
			t.Fatalf("TierByName(%q): %v", n, err)
		}
		if tier.Name != n {
			t.Errorf("tier %q carries name %q", n, tier.Name)
		}
		if tier.Speed <= 0 || tier.DollarsPerHour <= 0 || tier.ScaleUpLatency <= 0 {
			t.Errorf("tier %q has non-positive parameters: %+v", n, tier)
		}
	}
	if _, err := TierByName("tpu"); err == nil {
		t.Error("unknown tier resolved")
	}
}

// TestReferenceTierIsIdentity pins the determinism-critical contract:
// applying the titanx tier to the default model is an exact no-op, so
// tiered configs naming the reference GPU produce byte-identical books
// to untiered ones.
func TestReferenceTierIsIdentity(t *testing.T) {
	ref, err := TierByName("titanx")
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ref.Apply(Default()), Default(); got != want {
		t.Fatalf("titanx.Apply(Default()) = %+v, want exactly %+v", got, want)
	}
	if got, want := ref.Model(), Default(); got != want {
		t.Fatalf("titanx.Model() = %+v, want exactly %+v", got, want)
	}
}

// TestTierScaling pins the rescaling semantics: GPU-side parameters
// divide by Speed, CPU-side overheads are untouched, and a faster tier
// yields strictly faster frame estimates.
func TestTierScaling(t *testing.T) {
	v100, err := TierByName("v100")
	if err != nil {
		t.Fatal(err)
	}
	base := Default()
	m := v100.Apply(base)
	if m.Alpha != base.Alpha/v100.Speed || m.LaunchOverhead != base.LaunchOverhead/v100.Speed {
		t.Errorf("GPU parameters not divided by speed: %+v", m)
	}
	if m.CPUOverheadSingle != base.CPUOverheadSingle || m.CPUOverheadCaTDet != base.CPUOverheadCaTDet {
		t.Errorf("CPU overheads changed with the GPU tier: %+v", m)
	}
	const ops = 254.3e9
	if fast, slow := m.SingleModelFrame(ops).GPU, base.SingleModelFrame(ops).GPU; fast >= slow {
		t.Errorf("v100 frame %v not faster than titanx %v", fast, slow)
	}
	k80, _ := TierByName("k80")
	if slow := k80.Model().SingleModelFrame(ops).GPU; slow <= base.SingleModelFrame(ops).GPU {
		t.Errorf("k80 frame %v not slower than titanx", slow)
	}
}

// TestDollarsPerSecond pins the unit conversion the cost integral uses.
func TestDollarsPerSecond(t *testing.T) {
	tier := Tier{DollarsPerHour: 3.60}
	if got := tier.DollarsPerSecond(); math.Abs(got-0.001) > 1e-15 {
		t.Errorf("DollarsPerSecond = %v, want 0.001", got)
	}
}
