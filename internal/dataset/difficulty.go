package dataset

// Difficulty is a KITTI evaluation difficulty level. Each level sets
// thresholds on bounding-box height, occlusion and truncation for a
// ground-truth object to count towards evaluation; objects failing the
// thresholds become "don't care" regions that neither count as false
// negatives nor penalize detections matched to them (Section 6.1).
type Difficulty int

// The three KITTI difficulty levels. The paper reports Moderate and Hard
// (Easy "does not distinguish different methods").
const (
	Easy Difficulty = iota
	Moderate
	Hard
)

// String implements fmt.Stringer.
func (d Difficulty) String() string {
	switch d {
	case Easy:
		return "Easy"
	case Moderate:
		return "Moderate"
	case Hard:
		return "Hard"
	default:
		return "Difficulty(?)"
	}
}

// difficultySpec carries the official KITTI thresholds.
type difficultySpec struct {
	minHeight     float64
	maxOcclusion  int
	maxTruncation float64
}

var difficultySpecs = map[Difficulty]difficultySpec{
	Easy:     {minHeight: 40, maxOcclusion: FullyVisible, maxTruncation: 0.15},
	Moderate: {minHeight: 25, maxOcclusion: PartlyOccluded, maxTruncation: 0.30},
	Hard:     {minHeight: 25, maxOcclusion: LargelyOccluded, maxTruncation: 0.50},
}

// MinHeight returns the minimum bounding-box height (pixels) for an
// object to be evaluated at this difficulty. Detections shorter than
// this are ignored rather than counted as false positives, matching the
// official development kit.
func (d Difficulty) MinHeight() float64 { return difficultySpecs[d].minHeight }

// Eligible reports whether the ground-truth object counts towards
// evaluation at this difficulty.
func (d Difficulty) Eligible(o Object) bool {
	spec := difficultySpecs[d]
	if o.Box.Height() < spec.minHeight {
		return false
	}
	if o.Occlusion > spec.maxOcclusion {
		return false
	}
	if o.Truncation > spec.maxTruncation {
		return false
	}
	return true
}

// Difficulties lists all levels in ascending strictness of inclusion.
func Difficulties() []Difficulty { return []Difficulty{Easy, Moderate, Hard} }
