package dataset

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/geom"
)

func sampleDataset() *Dataset {
	return &Dataset{
		Name:    "sample",
		Classes: []Class{Car, Pedestrian},
		Sequences: []Sequence{
			{
				ID: "seq-0", Width: 100, Height: 50, FPS: 10,
				Frames: []Frame{
					{Index: 0, Labeled: true, Objects: []Object{
						{TrackID: 1, Class: Car, Box: geom.NewBox(10, 10, 40, 30)},
						{TrackID: 2, Class: Pedestrian, Box: geom.NewBox(60, 5, 70, 35)},
					}},
					{Index: 1, Labeled: true, Objects: []Object{
						{TrackID: 1, Class: Car, Box: geom.NewBox(12, 10, 42, 30)},
					}},
					{Index: 2, Labeled: true, Objects: []Object{
						{TrackID: 1, Class: Car, Box: geom.NewBox(14, 10, 44, 30)},
						{TrackID: 3, Class: Car, Box: geom.NewBox(0, 0, 20, 20), Occlusion: PartlyOccluded},
					}},
				},
			},
		},
	}
}

func TestClassString(t *testing.T) {
	if Car.String() != "Car" || Pedestrian.String() != "Pedestrian" {
		t.Fatal("class names wrong")
	}
	if Class(9).String() != "Class(9)" {
		t.Fatalf("unknown class string = %q", Class(9).String())
	}
}

func TestMatchIoUPerClass(t *testing.T) {
	if Car.MatchIoU() != 0.7 {
		t.Fatalf("Car IoU = %v, want 0.7 (KITTI convention)", Car.MatchIoU())
	}
	if Pedestrian.MatchIoU() != 0.5 {
		t.Fatalf("Pedestrian IoU = %v, want 0.5", Pedestrian.MatchIoU())
	}
}

func TestCounts(t *testing.T) {
	d := sampleDataset()
	if d.NumFrames() != 3 || d.NumLabeledFrames() != 3 || d.NumObjects() != 5 {
		t.Fatalf("counts = %d/%d/%d", d.NumFrames(), d.NumLabeledFrames(), d.NumObjects())
	}
}

func TestValidateAcceptsGood(t *testing.T) {
	if err := sampleDataset().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	cases := []func(*Dataset){
		func(d *Dataset) { d.Sequences[0].Width = 0 },
		func(d *Dataset) { d.Sequences[0].Frames[1].Index = 5 },
		func(d *Dataset) { d.Sequences[0].Frames[0].Objects[0].Box = geom.Box{X1: 5, Y1: 5, X2: 5, Y2: 9} },
		func(d *Dataset) { d.Sequences[0].Frames[0].Objects[0].Class = Class(42) },
		func(d *Dataset) { d.Sequences[0].Frames[0].Objects[0].Occlusion = 7 },
		func(d *Dataset) { d.Sequences[0].Frames[0].Objects[0].Truncation = 1.5 },
	}
	for i, mutate := range cases {
		d := sampleDataset()
		mutate(d)
		if err := d.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestTracks(t *testing.T) {
	d := sampleDataset()
	spans := d.Sequences[0].Tracks()
	if len(spans) != 3 {
		t.Fatalf("tracks = %d, want 3", len(spans))
	}
	byID := map[int]TrackSpan{}
	for _, s := range spans {
		byID[s.TrackID] = s
	}
	if s := byID[1]; s.FirstFrame != 0 || s.LastFrame != 2 {
		t.Fatalf("track 1 span = %+v", s)
	}
	if s := byID[3]; s.FirstFrame != 2 || s.LastFrame != 2 || s.Class != Car {
		t.Fatalf("track 3 span = %+v", s)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != d.Name || got.NumObjects() != d.NumObjects() {
		t.Fatalf("round trip lost data: %+v", got)
	}
	if got.Sequences[0].Frames[0].Objects[0] != d.Sequences[0].Frames[0].Objects[0] {
		t.Fatal("object round trip mismatch")
	}
}

func TestLoadRejectsInvalid(t *testing.T) {
	if _, err := Load(bytes.NewBufferString(`{"sequences":[{"id":"x","width":0,"height":5}]}`)); err == nil {
		t.Fatal("expected validation failure")
	}
	if _, err := Load(bytes.NewBufferString(`not json`)); err == nil {
		t.Fatal("expected decode failure")
	}
}

func TestSaveLoadFileGzip(t *testing.T) {
	d := sampleDataset()
	dir := t.TempDir()
	for _, name := range []string{"d.json", "d.json.gz"} {
		path := filepath.Join(dir, name)
		if err := d.SaveFile(path); err != nil {
			t.Fatal(err)
		}
		got, err := LoadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.NumObjects() != d.NumObjects() {
			t.Fatalf("%s: round trip mismatch", name)
		}
	}
}

func TestDifficultyEligible(t *testing.T) {
	big := Object{Box: geom.NewBox(0, 0, 60, 60)}
	small := Object{Box: geom.NewBox(0, 0, 20, 20)}
	occluded := Object{Box: geom.NewBox(0, 0, 60, 60), Occlusion: LargelyOccluded}
	truncated := Object{Box: geom.NewBox(0, 0, 60, 60), Truncation: 0.4}

	if !Easy.Eligible(big) || !Moderate.Eligible(big) || !Hard.Eligible(big) {
		t.Fatal("large clear object must be eligible everywhere")
	}
	if Easy.Eligible(small) {
		t.Fatal("20px object must not be Easy")
	}
	if !Hard.Eligible(Object{Box: geom.NewBox(0, 0, 20, 30)}) {
		t.Fatal("30px object should be Hard-eligible")
	}
	if Easy.Eligible(occluded) || Moderate.Eligible(occluded) {
		t.Fatal("largely occluded object only counts at Hard")
	}
	if !Hard.Eligible(occluded) {
		t.Fatal("largely occluded object should count at Hard")
	}
	if Easy.Eligible(truncated) || Moderate.Eligible(truncated) {
		t.Fatal("40 pct truncated object only counts at Hard")
	}
	if !Hard.Eligible(truncated) {
		t.Fatal("40 pct truncated object should count at Hard")
	}
}

// Hard must be a superset of Moderate, which must be a superset of Easy.
func TestDifficultyMonotone(t *testing.T) {
	objs := []Object{
		{Box: geom.NewBox(0, 0, 60, 60)},
		{Box: geom.NewBox(0, 0, 60, 30)},
		{Box: geom.NewBox(0, 0, 60, 60), Occlusion: PartlyOccluded},
		{Box: geom.NewBox(0, 0, 60, 60), Occlusion: LargelyOccluded},
		{Box: geom.NewBox(0, 0, 60, 60), Truncation: 0.2},
		{Box: geom.NewBox(0, 0, 60, 60), Truncation: 0.45},
		{Box: geom.NewBox(0, 0, 10, 10)},
	}
	for i, o := range objs {
		if Easy.Eligible(o) && !Moderate.Eligible(o) {
			t.Errorf("object %d: Easy but not Moderate", i)
		}
		if Moderate.Eligible(o) && !Hard.Eligible(o) {
			t.Errorf("object %d: Moderate but not Hard", i)
		}
	}
}

func TestDifficultyStrings(t *testing.T) {
	if Easy.String() != "Easy" || Moderate.String() != "Moderate" || Hard.String() != "Hard" {
		t.Fatal("difficulty names wrong")
	}
	if len(Difficulties()) != 3 {
		t.Fatal("Difficulties() wrong length")
	}
}
