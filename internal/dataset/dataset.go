// Package dataset defines the video-detection data model shared by the
// whole system: sequences of frames with tracked ground-truth objects,
// KITTI-style difficulty filtering, and (de)serialization. The synthetic
// worlds in internal/video produce values of these types; everything
// downstream (detectors, tracker, metrics) consumes them.
package dataset

import (
	"fmt"

	"repro/internal/geom"
)

// Class is an object category label. The two evaluation datasets of the
// paper use Car and Pedestrian (KITTI) and Pedestrian only (CityPersons).
type Class int

// Known classes.
const (
	Car Class = iota
	Pedestrian
	NumClasses
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Car:
		return "Car"
	case Pedestrian:
		return "Pedestrian"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// MatchIoU returns the minimum IoU for a valid detection of this class
// under the KITTI protocol: 0.7 for Car, 0.5 for Pedestrian.
func (c Class) MatchIoU() float64 {
	if c == Car {
		return 0.7
	}
	return 0.5
}

// Occlusion levels follow the KITTI convention.
const (
	FullyVisible    = 0
	PartlyOccluded  = 1
	LargelyOccluded = 2
)

// Object is one ground-truth object instance in one frame.
type Object struct {
	// TrackID identifies the object across frames within its sequence.
	TrackID int      `json:"track_id"`
	Class   Class    `json:"class"`
	Box     geom.Box `json:"box"`
	// Occlusion is the KITTI occlusion level (0 fully visible, 1 partly
	// occluded, 2 largely occluded).
	Occlusion int `json:"occlusion"`
	// Truncation is the fraction of the object outside the frame, 0..1.
	Truncation float64 `json:"truncation"`
}

// Frame is one video frame's ground truth.
type Frame struct {
	// Index is the frame number within its sequence, starting at 0.
	Index int `json:"index"`
	// Labeled reports whether ground truth exists for this frame.
	// CityPersons-style datasets label only one frame per snippet; the
	// detection system still runs on unlabeled frames, but the evaluator
	// skips them.
	Labeled bool     `json:"labeled"`
	Objects []Object `json:"objects,omitempty"`
}

// Sequence is a contiguous video clip with per-frame ground truth.
type Sequence struct {
	ID     string  `json:"id"`
	Width  int     `json:"width"`
	Height int     `json:"height"`
	FPS    float64 `json:"fps"`
	Frames []Frame `json:"frames"`
}

// Dataset is a collection of sequences with a shared class vocabulary.
type Dataset struct {
	Name      string     `json:"name"`
	Classes   []Class    `json:"classes"`
	Sequences []Sequence `json:"sequences"`
}

// NumFrames returns the total frame count across sequences.
func (d *Dataset) NumFrames() int {
	n := 0
	for i := range d.Sequences {
		n += len(d.Sequences[i].Frames)
	}
	return n
}

// NumLabeledFrames returns the number of frames carrying ground truth.
func (d *Dataset) NumLabeledFrames() int {
	n := 0
	for i := range d.Sequences {
		for j := range d.Sequences[i].Frames {
			if d.Sequences[i].Frames[j].Labeled {
				n++
			}
		}
	}
	return n
}

// NumObjects returns the total labeled object instances.
func (d *Dataset) NumObjects() int {
	n := 0
	for i := range d.Sequences {
		for j := range d.Sequences[i].Frames {
			n += len(d.Sequences[i].Frames[j].Objects)
		}
	}
	return n
}

// Validate checks structural invariants: positive dimensions, frame
// indexes in order, boxes valid and objects' classes known.
func (d *Dataset) Validate() error {
	for si := range d.Sequences {
		s := &d.Sequences[si]
		if s.Width <= 0 || s.Height <= 0 {
			return fmt.Errorf("dataset: sequence %q has non-positive dimensions", s.ID)
		}
		for fi := range s.Frames {
			f := &s.Frames[fi]
			if f.Index != fi {
				return fmt.Errorf("dataset: sequence %q frame %d has index %d", s.ID, fi, f.Index)
			}
			for oi := range f.Objects {
				o := &f.Objects[oi]
				if !o.Box.Valid() || o.Box.Empty() {
					return fmt.Errorf("dataset: sequence %q frame %d object %d has invalid box %v", s.ID, fi, oi, o.Box)
				}
				if o.Class < 0 || o.Class >= NumClasses {
					return fmt.Errorf("dataset: sequence %q frame %d object %d has unknown class %d", s.ID, fi, oi, o.Class)
				}
				if o.Occlusion < 0 || o.Occlusion > LargelyOccluded {
					return fmt.Errorf("dataset: sequence %q frame %d object %d has occlusion %d", s.ID, fi, oi, o.Occlusion)
				}
				if o.Truncation < 0 || o.Truncation > 1 {
					return fmt.Errorf("dataset: sequence %q frame %d object %d has truncation %v", s.ID, fi, oi, o.Truncation)
				}
			}
		}
	}
	return nil
}

// TrackSpan describes the lifetime of one ground-truth track within a
// sequence, used by the delay metric.
type TrackSpan struct {
	SeqID      string
	TrackID    int
	Class      Class
	FirstFrame int // first frame the track appears in
	LastFrame  int // last frame the track appears in
}

// Tracks returns the spans of all ground-truth tracks in the sequence.
func (s *Sequence) Tracks() []TrackSpan {
	byID := map[int]*TrackSpan{}
	var order []int
	for fi := range s.Frames {
		for _, o := range s.Frames[fi].Objects {
			sp, ok := byID[o.TrackID]
			if !ok {
				sp = &TrackSpan{SeqID: s.ID, TrackID: o.TrackID, Class: o.Class, FirstFrame: fi, LastFrame: fi}
				byID[o.TrackID] = sp
				order = append(order, o.TrackID)
			}
			sp.LastFrame = fi
		}
	}
	out := make([]TrackSpan, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return out
}
