package dataset

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Save writes the dataset as JSON to w.
func (d *Dataset) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	if err := enc.Encode(d); err != nil {
		return fmt.Errorf("dataset: encode: %w", err)
	}
	return nil
}

// Load reads a dataset from JSON and validates it.
func Load(r io.Reader) (*Dataset, error) {
	var d Dataset
	dec := json.NewDecoder(r)
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return &d, nil
}

// SaveFile writes the dataset to a file; paths ending in .gz are
// gzip-compressed.
func (d *Dataset) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	var w io.Writer = f
	if strings.HasSuffix(path, ".gz") {
		gz := gzip.NewWriter(f)
		defer gz.Close()
		w = gz
	}
	if err := d.Save(w); err != nil {
		return err
	}
	return nil
}

// LoadFile reads a dataset from a file; paths ending in .gz are
// transparently decompressed.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("dataset: %w", err)
	}
	defer f.Close()
	var r io.Reader = f
	if strings.HasSuffix(path, ".gz") {
		gz, err := gzip.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("dataset: %w", err)
		}
		defer gz.Close()
		r = gz
	}
	return Load(r)
}
