package detector

import "math"

// Deterministic counter-based randomness. Every stochastic decision a
// simulated detector makes is a pure function of (model, sequence, frame,
// object, purpose), so detectors are reproducible, independent of
// evaluation order, and — critically — a detector restricted to regions
// makes exactly the same per-object decision it would have made on the
// full frame. This is what lets the cascade's accuracy *emerge* from the
// profiles instead of being scripted.

// Purpose tags keep different random decisions about the same object
// decorrelated.
const (
	tagDetect uint64 = 0x9e3779b97f4a7c15
	tagBias   uint64 = 0xbf58476d1ce4e5b9
	tagLocX   uint64 = 0x94d049bb133111eb
	tagLocY   uint64 = 0x2545f4914f6cdd1d
	tagLocW   uint64 = 0xd6e8feb86659fd93
	tagLocH   uint64 = 0xa5a5a5a5a5a5a5a5
	tagConf   uint64 = 0xc2b2ae3d27d4eb4f
	tagFP     uint64 = 0x165667b19e3779f9
)

// hashString is FNV-1a over the string bytes.
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// mix combines hash state with a new word using the splitmix64 finalizer.
func mix(h, k uint64) uint64 {
	h ^= k + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	z := h
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// hashKey folds a sequence of words into one 64-bit key.
func hashKey(parts ...uint64) uint64 {
	h := uint64(0x853c49e6748fea9b)
	for _, p := range parts {
		h = mix(h, p)
	}
	return h
}

// uniform maps a hash to [0, 1).
func uniform(h uint64) float64 {
	return float64(h>>11) / float64(1<<53)
}

// normal maps a hash to a standard normal variate via Box–Muller using
// two decorrelated uniforms derived from the hash.
func normal(h uint64) float64 {
	u1 := uniform(mix(h, 0x2545f4914f6cdd1d))
	u2 := uniform(mix(h, 0xd6e8feb86659fd93))
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// sigmoid is the logistic function.
func sigmoid(z float64) float64 { return 1 / (1 + math.Exp(-z)) }
