package detector

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/video"
)

func TestOracleDetectsEverythingExactly(t *testing.T) {
	d := NewOracle(FreeCost{})
	p := video.MiniKITTIPreset()
	ds := video.Generate(p, 9)
	seq := &ds.Sequences[0]
	for fi := range seq.Frames {
		f := Frame{SeqID: seq.ID, Index: fi, Width: seq.Width, Height: seq.Height,
			Objects: seq.Frames[fi].Objects}
		r := d.DetectFull(f)
		if r.Ops != 0 {
			t.Fatal("FreeCost charged ops")
		}
		// Every NMS-surviving ground-truth object must be matched
		// exactly at confidence ~1, with no false positives. NMS can
		// merge heavily-overlapping ground truth, so compare per
		// detection, not per object.
		if len(r.Detections) > len(seq.Frames[fi].Objects) {
			t.Fatalf("frame %d: %d detections for %d objects", fi, len(r.Detections), len(seq.Frames[fi].Objects))
		}
		for _, det := range r.Detections {
			if det.TrackID < 0 {
				t.Fatalf("frame %d: oracle produced a false positive", fi)
			}
			if det.Score < 0.99 {
				t.Fatalf("frame %d: oracle confidence %v", fi, det.Score)
			}
			found := false
			for _, o := range seq.Frames[fi].Objects {
				if o.TrackID == det.TrackID && geom.IoU(o.Box, det.Box) > 0.999 {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("frame %d: oracle box does not match ground truth", fi)
			}
		}
	}
}

func TestOracleProfileValidates(t *testing.T) {
	if err := OracleProfile().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestOracleRespectsRegions(t *testing.T) {
	d := NewOracle(FreeCost{})
	obj := dataset.Object{TrackID: 1, Class: dataset.Car, Box: geom.NewBox(500, 150, 600, 220)}
	f := Frame{SeqID: "s", Index: 0, Width: 1242, Height: 375, Objects: []dataset.Object{obj}}
	miss := geom.NewMask(1242, 375, 8)
	miss.AddBox(geom.NewBox(0, 0, 100, 100))
	if r := d.DetectRegions(f, miss, 0); len(r.Detections) != 0 {
		t.Fatal("oracle detected outside its regions")
	}
	cover := geom.NewMask(1242, 375, 8)
	cover.AddBox(obj.Box.Expand(30))
	if r := d.DetectRegions(f, cover, 1); len(r.Detections) != 1 {
		t.Fatal("oracle missed a covered object")
	}
}
