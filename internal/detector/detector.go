package detector

import (
	"math"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/ops"
)

// MinCoverage is the fraction of an object's box that must lie inside the
// selected regions for a region-restricted detector to be able to see it.
const MinCoverage = 0.5

// NMSIoU is the suppression threshold detectors apply to their raw
// output, the standard Faster R-CNN value.
const NMSIoU = 0.5

// Frame is the detector-facing view of one video frame: identity for the
// deterministic randomness plus the oracle ground truth.
type Frame struct {
	SeqID  string
	Index  int
	Width  int
	Height int
	// Objects is the frame's ground truth; the simulated detector
	// perceives (a noisy subset of) it.
	Objects []dataset.Object
}

// Detection extends a scored box with the ground-truth track that
// produced it (TrackID < 0 for false positives). The track identity is
// simulation metadata — the evaluation layer never reads it, but tests
// use it to verify detector behaviour directly.
type Detection struct {
	geom.Scored
	TrackID int
}

// Result is the output of one detector invocation.
type Result struct {
	// Detections after NMS, sorted by descending confidence.
	Detections []Detection
	// Ops is the arithmetic cost of the invocation, in raw operations.
	Ops float64
	// Coverage is the fraction of the frame processed (1 for full).
	Coverage float64
	// NumProposals is the per-RoI head invocation count charged.
	NumProposals int
}

// Detector pairs an accuracy profile with a cost model.
//
// A Detector carries per-invocation scratch buffers, so one instance
// must not be invoked from multiple goroutines concurrently; build one
// instance per worker (sim.SystemFactory does exactly that).
type Detector struct {
	Profile Profile
	Cost    ops.CostModel
	// Classes restricts the labels of clutter false positives; nil means
	// every known class. Set it to the dataset's vocabulary so Person-only
	// datasets do not receive Car clutter.
	Classes []dataset.Class

	// Per-invocation scratch, reused across frames so the steady-state
	// perceive path allocates only its returned Detections slice.
	scratch struct {
		raw    []Detection
		scored []geom.Scored
		nms    geom.NMSBuffer
	}
}

// DetectFull runs the detector over the whole frame, the single-model
// and proposal-network mode.
func (d *Detector) DetectFull(f Frame) Result {
	dets := d.perceive(f, nil, 0)
	return Result{
		Detections:   dets,
		Ops:          d.Cost.FullFrameOps(f.Width, f.Height),
		Coverage:     1,
		NumProposals: ops.DefaultProposals,
	}
}

// DetectRegions runs the detector restricted to the masked regions with
// nProposals per-RoI head invocations, the refinement-network mode of
// Section 4.3. Objects insufficiently covered by the mask cannot be
// detected; false positives only arise inside the covered area.
func (d *Detector) DetectRegions(f Frame, mask *geom.Mask, nProposals int) Result {
	dets := d.perceive(f, mask, nProposals)
	frac := mask.CoveredFraction()
	return Result{
		Detections:   dets,
		Ops:          d.Cost.RegionOps(f.Width, f.Height, frac, nProposals),
		Coverage:     frac,
		NumProposals: nProposals,
	}
}

// perceive produces the raw detections. mask == nil means full frame.
// Candidate accumulation, NMS ordering and suppression all run on the
// detector's reused scratch; only the returned slice — which callers
// own and may retain — is allocated fresh, at its exact final size.
func (d *Detector) perceive(f Frame, mask *geom.Mask, nProposals int) []Detection {
	p := d.Profile
	modelH := hashString(p.Name)
	seqH := hashString(f.SeqID)
	frameKey := hashKey(modelH, seqH, uint64(f.Index))

	raw := d.scratch.raw[:0]
	for _, o := range f.Objects {
		if mask != nil && mask.BoxCoverage(o.Box) < MinCoverage {
			continue
		}
		z := p.logitFor(o)
		z += p.TrackBias * normal(hashKey(modelH, seqH, uint64(o.TrackID), tagBias))
		if mask != nil {
			z += p.RegionBoost
		}
		prob := p.MaxRecall * sigmoid(z)
		key := hashKey(modelH, seqH, uint64(f.Index), uint64(o.TrackID), tagDetect)
		if uniform(key) >= prob {
			continue
		}
		box, jitterQ := d.jitter(o, modelH, seqH, uint64(f.Index))
		conf := sigmoid(p.ConfGain*z + p.ConfNoise*normal(hashKey(key, tagConf)) - p.LocConfCoupling*jitterQ)
		raw = append(raw, Detection{
			Scored:  geom.Scored{Box: box, Score: conf, Class: int(o.Class)},
			TrackID: o.TrackID,
		})
	}

	raw = d.appendFalsePositives(raw, f, mask, nProposals, frameKey)
	d.scratch.raw = raw

	// NMS over the combined output. The index-carrying variant keeps
	// track identity directly — kept[i] indexes raw — instead of the
	// former O(kept*raw) struct-equality re-match.
	if cap(d.scratch.scored) < len(raw) {
		d.scratch.scored = make([]geom.Scored, len(raw))
	}
	scored := d.scratch.scored[:len(raw)]
	for i, r := range raw {
		scored[i] = r.Scored
	}
	kept := d.scratch.nms.Indices(scored, NMSIoU)
	if len(kept) == 0 {
		return nil
	}
	out := make([]Detection, len(kept))
	for k, i := range kept {
		out[k] = raw[i]
	}
	return out
}

// jitter perturbs the ground-truth box by the profile's localization
// noise, deterministically per (model, sequence, frame, track). The
// second return value is the squared jitter magnitude normalized to
// mean 1, which the confidence model uses to score badly localized
// detections lower.
func (d *Detector) jitter(o dataset.Object, modelH, seqH, frame uint64) (geom.Box, float64) {
	p := d.Profile
	if p.LocNoise == 0 {
		return o.Box, 0
	}
	id := uint64(o.TrackID)
	nx := normal(hashKey(modelH, seqH, frame, id, tagLocX))
	ny := normal(hashKey(modelH, seqH, frame, id, tagLocY))
	nw := normal(hashKey(modelH, seqH, frame, id, tagLocW))
	nh := normal(hashKey(modelH, seqH, frame, id, tagLocH))
	w, h := o.Box.Width(), o.Box.Height()
	cx, cy := o.Box.Center()
	cx += p.LocNoise * w * nx
	cy += p.LocNoise * h * ny
	sw := math.Exp(p.LocNoise * nw)
	sh := math.Exp(p.LocNoise * nh)
	q := (nx*nx + ny*ny + nw*nw + nh*nh) / 4
	return geom.NewBoxCenter(cx, cy, w*sw, h*sh), q
}

// appendFalsePositives appends the frame's clutter detections to dst
// and returns the extended slice. The count is Poisson with mean FPRate
// scaled by the covered fraction; locations are sampled
// deterministically and, in region mode, kept only when they fall
// inside the mask (with resampling).
func (d *Detector) appendFalsePositives(dst []Detection, f Frame, mask *geom.Mask, nProposals int, frameKey uint64) []Detection {
	p := d.Profile
	rate := p.FPRate
	if mask != nil {
		rate = rate*mask.CoveredFraction() + p.RegionFPPerProposal*float64(nProposals)
	}
	n := poissonHash(hashKey(frameKey, tagFP), rate)
	out := dst
	fw, fh := float64(f.Width), float64(f.Height)
	for i := 0; i < n; i++ {
		var box geom.Box
		placed := false
		for attempt := 0; attempt < 8; attempt++ {
			k := hashKey(frameKey, tagFP, uint64(i), uint64(attempt))
			w := 10 + 35*uniform(mix(k, 1))
			h := w * (0.6 + 1.8*uniform(mix(k, 2)))
			cx := fw * uniform(mix(k, 3))
			cy := fh * uniform(mix(k, 4))
			box = geom.NewBoxCenter(cx, cy, w, h).Clip(fw, fh)
			if box.Empty() {
				continue
			}
			if mask == nil || mask.BoxCoverage(box) >= MinCoverage {
				placed = true
				break
			}
		}
		if !placed {
			continue
		}
		k := hashKey(frameKey, tagFP, uint64(i), tagConf)
		conf := sigmoid(p.FPConfCenter + p.ConfNoise*normal(k))
		var class int
		if len(d.Classes) > 0 {
			class = int(d.Classes[uint(mix(k, 5))%uint(len(d.Classes))])
		} else {
			class = int(uint(mix(k, 5)) % uint(dataset.NumClasses))
		}
		out = append(out, Detection{
			Scored:  geom.Scored{Box: box, Score: conf, Class: class},
			TrackID: -1,
		})
	}
	return out
}

// poissonHash draws a Poisson variate from hashed uniforms (Knuth).
func poissonHash(key uint64, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	l := math.Exp(-lambda)
	k := 0
	prod := 1.0
	for i := uint64(0); ; i++ {
		prod *= uniform(mix(key, i+1))
		if prod <= l {
			return k
		}
		k++
		if k > 1000 {
			return k // lambda is tiny in practice; guard regardless
		}
	}
}
