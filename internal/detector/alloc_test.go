package detector

import (
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
)

// crowdedFrame builds a frame dense enough that NMS does real work:
// many overlapping objects of both classes in a tight area, so the raw
// candidate set is large and suppression survivors are interleaved.
func crowdedFrame(index int) Frame {
	var objs []dataset.Object
	id := 1
	for row := 0; row < 4; row++ {
		for col := 0; col < 10; col++ {
			x := 40 + float64(col)*110 + 13*float64(row)
			y := 60 + float64(row)*70
			class := dataset.Car
			if (row+col)%3 == 0 {
				class = dataset.Pedestrian
			}
			objs = append(objs, dataset.Object{
				TrackID: id,
				Class:   class,
				Box:     geom.NewBox(x, y, x+90, y+65),
			})
			id++
		}
	}
	return Frame{SeqID: "crowd", Index: index, Width: 1242, Height: 375, Objects: objs}
}

// rematchNMS is the pre-optimization perceive tail: value NMS followed
// by the O(kept*raw) struct-equality re-match that recovers track
// identity. The test uses it as the reference the index-carrying path
// must reproduce exactly.
func rematchNMS(raw []Detection) []Detection {
	scored := make([]geom.Scored, len(raw))
	for i, r := range raw {
		scored[i] = r.Scored
	}
	kept := geom.NMS(scored, NMSIoU)
	out := make([]Detection, 0, len(kept))
	for _, k := range kept {
		for _, r := range raw {
			if r.Scored == k {
				out = append(out, r)
				break
			}
		}
	}
	return out
}

// TestPerceiveMatchesRematchOnCrowdedFrame pins the index-carrying NMS
// against the former identity re-match on crowded frames: identical
// detections (boxes, scores, classes and track IDs) in identical order.
func TestPerceiveMatchesRematchOnCrowdedFrame(t *testing.T) {
	d := MustNew("resnet10c") // highest FP rate: densest raw sets
	for fi := 0; fi < 25; fi++ {
		f := crowdedFrame(fi)

		// Rebuild the raw candidate set exactly as perceive does, via
		// the exported entry point plus the reference tail: perceive is
		// deterministic per (model, seq, frame), so running DetectFull
		// twice sees the same raw candidates.
		got := d.DetectFull(f).Detections

		p := d.Profile
		modelH := hashString(p.Name)
		seqH := hashString(f.SeqID)
		frameKey := hashKey(modelH, seqH, uint64(f.Index))
		var raw []Detection
		for _, o := range f.Objects {
			z := p.logitFor(o)
			z += p.TrackBias * normal(hashKey(modelH, seqH, uint64(o.TrackID), tagBias))
			prob := p.MaxRecall * sigmoid(z)
			key := hashKey(modelH, seqH, uint64(f.Index), uint64(o.TrackID), tagDetect)
			if uniform(key) >= prob {
				continue
			}
			box, jitterQ := d.jitter(o, modelH, seqH, uint64(f.Index))
			conf := sigmoid(p.ConfGain*z + p.ConfNoise*normal(hashKey(key, tagConf)) - p.LocConfCoupling*jitterQ)
			raw = append(raw, Detection{
				Scored:  geom.Scored{Box: box, Score: conf, Class: int(o.Class)},
				TrackID: o.TrackID,
			})
		}
		raw = d.appendFalsePositives(raw, f, nil, 0, frameKey)
		want := rematchNMS(raw)

		if len(got) != len(want) {
			t.Fatalf("frame %d: %d detections, re-match reference has %d", fi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("frame %d detection %d: got %+v, re-match reference %+v", fi, i, got[i], want[i])
			}
		}
	}
}

// TestDetectAllocBudget pins the steady-state allocation budget of the
// full-frame detect path on a crowded frame. The scratch buffers absorb
// candidate accumulation and NMS; what remains is the returned
// Detections slice (callers own and may retain it) plus small
// per-result bookkeeping. Budget 4 leaves headroom over the current 1-2
// while still catching any reintroduced per-candidate churn.
func TestDetectAllocBudget(t *testing.T) {
	d := MustNew("resnet50")
	f := crowdedFrame(0)
	d.DetectFull(f) // warm the scratch buffers
	n := testing.AllocsPerRun(100, func() {
		f.Index = (f.Index + 1) % 50
		d.DetectFull(f)
	})
	if n > 4 {
		t.Errorf("DetectFull allocates %v per frame after warm-up, budget is 4", n)
	}
}

// TestDetectResultsIndependent guards the ownership contract: results
// of consecutive invocations on one detector must not alias each other,
// even though the internal scratch is reused.
func TestDetectResultsIndependent(t *testing.T) {
	d := MustNew("resnet50")
	a := d.DetectFull(crowdedFrame(1)).Detections
	snapshot := append([]Detection(nil), a...)
	d.DetectFull(crowdedFrame(2)) // would clobber a if the result aliased scratch
	for i := range a {
		if a[i] != snapshot[i] {
			t.Fatalf("detection %d changed after a later invocation: %+v vs %+v", i, a[i], snapshot[i])
		}
	}
}
