package detector

import "repro/internal/ops"

// OracleProfile is a perfect detector: every ground-truth object is
// detected with confidence 1, exact localization and no false
// positives. It is useful for testing pipelines (a system fed the
// oracle must score mAP 1.0 and delay 0) and as an upper bound in
// experiments.
func OracleProfile() Profile {
	return Profile{
		Name:        "oracle",
		Midpoint:    0.5,
		Slope:       0.05, // the recall sigmoid saturates for any real object
		MaxRecall:   1,
		ConfGain:    100, // confidence saturates at 1
		ConfNoise:   0,
		FPRate:      0,
		LocNoise:    0,
		RegionBoost: 0,
	}
}

// NewOracle builds a perfect detector carrying the given cost model
// (the oracle still "costs" whatever network it stands in for; pass a
// zero-cost model to make it free).
func NewOracle(cost ops.CostModel) *Detector {
	return &Detector{Profile: OracleProfile(), Cost: cost}
}

// FreeCost is an ops.CostModel that charges nothing; useful with
// NewOracle for pure-algorithm tests.
type FreeCost struct{}

// FullFrameOps implements ops.CostModel.
func (FreeCost) FullFrameOps(w, h int) float64 { return 0 }

// RegionOps implements ops.CostModel.
func (FreeCost) RegionOps(w, h int, coveredFrac float64, nProposals int) float64 { return 0 }

var _ ops.CostModel = FreeCost{}
