package detector

import (
	"math"
	"testing"

	"repro/internal/dataset"
	"repro/internal/geom"
	"repro/internal/video"
)

func testFrame(objs ...dataset.Object) Frame {
	return Frame{SeqID: "seq-test", Index: 5, Width: 1242, Height: 375, Objects: objs}
}

func bigCar(id int) dataset.Object {
	return dataset.Object{TrackID: id, Class: dataset.Car, Box: geom.NewBox(400, 150, 560, 250)}
}

func TestProfilesValidate(t *testing.T) {
	for _, name := range ProfileNames() {
		p := MustProfile(name)
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestProfileUnknown(t *testing.T) {
	if _, err := ProfileFor("lenet"); err == nil {
		t.Fatal("expected error")
	}
	if _, err := New("lenet"); err == nil {
		t.Fatal("expected error")
	}
}

func TestDetectDeterministic(t *testing.T) {
	d := MustNew("resnet50")
	f := testFrame(bigCar(1), bigCar(2))
	a := d.DetectFull(f)
	b := d.DetectFull(f)
	if len(a.Detections) != len(b.Detections) {
		t.Fatal("nondeterministic detection count")
	}
	for i := range a.Detections {
		if a.Detections[i] != b.Detections[i] {
			t.Fatal("nondeterministic detection")
		}
	}
}

func TestBigObjectAlmostAlwaysDetected(t *testing.T) {
	d := MustNew("resnet50")
	detected, frames := 0, 200
	for fi := 0; fi < frames; fi++ {
		f := Frame{SeqID: "s", Index: fi, Width: 1242, Height: 375,
			Objects: []dataset.Object{bigCar(1)}}
		r := d.DetectFull(f)
		for _, det := range r.Detections {
			if det.TrackID == 1 {
				detected++
				break
			}
		}
	}
	if frac := float64(detected) / float64(frames); frac < 0.9 {
		t.Fatalf("100px-tall clear car detected in only %.0f%% of frames", 100*frac)
	}
}

func TestTinyObjectRarelyDetected(t *testing.T) {
	// Average over many track identities so the per-track persistent
	// bias washes out and only the size-dependent recall remains.
	d := MustNew("resnet10c")
	detected, total := 0, 0
	for id := 1; id <= 20; id++ {
		tiny := dataset.Object{TrackID: id, Class: dataset.Pedestrian, Box: geom.NewBox(600, 180, 604, 190)}
		for fi := 0; fi < 50; fi++ {
			total++
			f := Frame{SeqID: "s", Index: fi, Width: 1242, Height: 375,
				Objects: []dataset.Object{tiny}}
			for _, det := range d.DetectFull(f).Detections {
				if det.TrackID == id {
					detected++
				}
			}
		}
	}
	if frac := float64(detected) / float64(total); frac > 0.3 {
		t.Fatalf("10px object detected %.0f%% of the time by the weakest model", 100*frac)
	}
}

// The model ordering must show up as a recall ordering on small objects
// — the backbone quality ladder of Table 4. Recall is averaged over many
// track identities so per-track persistent biases wash out. The curves
// are intentionally close for established objects (the paper's cascade
// loses almost nothing), so the ladder is probed at 24px where the
// midpoint separation matters.
func TestModelRecallOrdering(t *testing.T) {
	recall := func(name string) float64 {
		d := MustNew(name)
		hit, total := 0, 0
		for id := 1; id <= 30; id++ {
			obj := dataset.Object{TrackID: id, Class: dataset.Car, Box: geom.NewBox(500, 170, 539, 194)} // 24px tall
			for fi := 0; fi < 40; fi++ {
				total++
				f := Frame{SeqID: "order", Index: fi, Width: 1242, Height: 375,
					Objects: []dataset.Object{obj}}
				for _, det := range d.DetectFull(f).Detections {
					if det.TrackID == id {
						hit++
					}
				}
			}
		}
		return float64(hit) / float64(total)
	}
	names := []string{"resnet50", "resnet18", "resnet10a", "resnet10c"}
	vals := make([]float64, len(names))
	for i, n := range names {
		vals[i] = recall(n)
	}
	for i := 1; i < len(vals); i++ {
		if vals[i] > vals[i-1]+0.03 {
			t.Fatalf("recall ordering violated: %v -> %v", names, vals)
		}
	}
	if vals[0] < vals[len(vals)-1]+0.03 {
		t.Fatalf("resnet50 (%.2f) should beat resnet10c (%.2f) on 24px cars", vals[0], vals[len(vals)-1])
	}
}

func TestOcclusionReducesDetection(t *testing.T) {
	d := MustNew("resnet10a")
	base := dataset.Object{TrackID: 1, Class: dataset.Car, Box: geom.NewBox(500, 150, 580, 200)}
	occluded := base
	occluded.Occlusion = dataset.LargelyOccluded
	count := func(o dataset.Object) int {
		hit := 0
		for fi := 0; fi < 300; fi++ {
			f := Frame{SeqID: "occ", Index: fi, Width: 1242, Height: 375,
				Objects: []dataset.Object{o}}
			for _, det := range d.DetectFull(f).Detections {
				if det.TrackID == 1 {
					hit++
				}
			}
		}
		return hit
	}
	clear, occ := count(base), count(occluded)
	if occ >= clear {
		t.Fatalf("occlusion did not reduce detections: clear=%d occluded=%d", clear, occ)
	}
}

func TestTrackBiasIsPersistent(t *testing.T) {
	// With a strong track bias, per-track detection rates should be
	// bimodal: variance across tracks far exceeds binomial noise.
	d := MustNew("resnet10b")
	const tracks, frames = 40, 120
	// A marginal object: near the model's midpoint.
	var rates []float64
	for id := 1; id <= tracks; id++ {
		hit := 0
		for fi := 0; fi < frames; fi++ {
			obj := dataset.Object{TrackID: id, Class: dataset.Car, Box: geom.NewBox(500, 170, 555, 204)}
			f := Frame{SeqID: "bias", Index: fi, Width: 1242, Height: 375,
				Objects: []dataset.Object{obj}}
			for _, det := range d.DetectFull(f).Detections {
				if det.TrackID == id {
					hit++
				}
			}
		}
		rates = append(rates, float64(hit)/frames)
	}
	mean, varSum := 0.0, 0.0
	for _, r := range rates {
		mean += r
	}
	mean /= float64(len(rates))
	for _, r := range rates {
		varSum += (r - mean) * (r - mean)
	}
	variance := varSum / float64(len(rates))
	binomial := mean * (1 - mean) / frames
	if variance < 4*binomial {
		t.Fatalf("track-rate variance %.4f not >> binomial %.5f; persistent bias missing", variance, binomial)
	}
}

func TestRegionRestrictionGates(t *testing.T) {
	d := MustNew("resnet50")
	car := bigCar(1)
	f := testFrame(car)

	// Mask covering the object: detection outcome matches full-frame
	// modulo the region boost (which can only add detections).
	cover := geom.NewMask(1242, 375, 8)
	cover.AddBox(car.Box.Expand(30))
	rCover := d.DetectRegions(f, cover, 5)

	// Mask elsewhere: the object cannot be detected.
	miss := geom.NewMask(1242, 375, 8)
	miss.AddBox(geom.NewBox(0, 0, 100, 100))
	rMiss := d.DetectRegions(f, miss, 5)
	for _, det := range rMiss.Detections {
		if det.TrackID == 1 {
			t.Fatal("object detected outside the selected regions")
		}
	}

	full := d.DetectFull(f)
	fullHas := false
	for _, det := range full.Detections {
		if det.TrackID == 1 {
			fullHas = true
		}
	}
	coverHas := false
	for _, det := range rCover.Detections {
		if det.TrackID == 1 {
			coverHas = true
		}
	}
	if fullHas && !coverHas {
		t.Fatal("full-frame detection lost under covering mask (region boost should only help)")
	}
}

func TestRegionOpsCheaperThanFull(t *testing.T) {
	d := MustNew("resnet50")
	car := bigCar(1)
	f := testFrame(car)
	mask := geom.NewMask(1242, 375, 8)
	mask.AddBox(car.Box.Expand(30))
	r := d.DetectRegions(f, mask, 3)
	full := d.DetectFull(f)
	if r.Ops >= full.Ops/3 {
		t.Fatalf("region ops %.2e not much cheaper than full %.2e", r.Ops, full.Ops)
	}
	if r.Coverage <= 0 || r.Coverage >= 0.5 {
		t.Fatalf("coverage = %v, want small positive", r.Coverage)
	}
}

func TestFalsePositiveRateScales(t *testing.T) {
	d := MustNew("resnet10c") // highest FP rate
	countFP := func(mask *geom.Mask) int {
		n := 0
		for fi := 0; fi < 300; fi++ {
			f := Frame{SeqID: "fp", Index: fi, Width: 1242, Height: 375}
			var dets []Detection
			if mask == nil {
				dets = d.DetectFull(f).Detections
			} else {
				dets = d.DetectRegions(f, mask, 0).Detections
			}
			for _, det := range dets {
				if det.TrackID < 0 {
					n++
				}
			}
		}
		return n
	}
	full := countFP(nil)
	small := geom.NewMask(1242, 375, 8)
	small.AddBox(geom.NewBox(0, 0, 200, 200))
	masked := countFP(small)
	if full == 0 {
		t.Fatal("no false positives generated at all")
	}
	if masked >= full/2 {
		t.Fatalf("FPs did not scale with coverage: full=%d masked=%d", full, masked)
	}
	// Expected count sanity: rate 3.2/frame over 300 frames.
	if full < 300 || full > 2000 {
		t.Fatalf("FP count %d wildly off configured rate", full)
	}
}

func TestFalsePositivesInsideMask(t *testing.T) {
	d := MustNew("resnet10c")
	mask := geom.NewMask(1242, 375, 8)
	region := geom.NewBox(100, 100, 500, 300)
	mask.AddBox(region)
	for fi := 0; fi < 200; fi++ {
		f := Frame{SeqID: "fploc", Index: fi, Width: 1242, Height: 375}
		for _, det := range d.DetectRegions(f, mask, 0).Detections {
			if det.TrackID < 0 && mask.BoxCoverage(det.Box) < MinCoverage {
				t.Fatalf("frame %d: FP %v outside mask", fi, det.Box)
			}
		}
	}
}

func TestConfidenceCorrelatesWithSize(t *testing.T) {
	d := MustNew("resnet50")
	meanConf := func(box geom.Box) float64 {
		sum, n := 0.0, 0
		for fi := 0; fi < 300; fi++ {
			f := Frame{SeqID: "conf", Index: fi, Width: 1242, Height: 375,
				Objects: []dataset.Object{{TrackID: 1, Class: dataset.Car, Box: box}}}
			for _, det := range d.DetectFull(f).Detections {
				if det.TrackID == 1 {
					sum += det.Score
					n++
				}
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	}
	big := meanConf(geom.NewBox(400, 100, 650, 260))   // 160px tall
	small := meanConf(geom.NewBox(600, 180, 630, 199)) // 19px tall
	if big <= small {
		t.Fatalf("confidence not size-correlated: big=%.3f small=%.3f", big, small)
	}
	if big < 0.7 {
		t.Fatalf("large-object confidence %.3f too low", big)
	}
}

func TestLocalizationNoiseBounded(t *testing.T) {
	d := MustNew("resnet50")
	car := bigCar(1)
	good := 0
	total := 0
	for fi := 0; fi < 300; fi++ {
		f := Frame{SeqID: "loc", Index: fi, Width: 1242, Height: 375,
			Objects: []dataset.Object{car}}
		for _, det := range d.DetectFull(f).Detections {
			if det.TrackID == 1 {
				total++
				if geom.IoU(det.Box, car.Box) >= 0.7 {
					good++
				}
			}
		}
	}
	if total == 0 {
		t.Fatal("no detections")
	}
	if frac := float64(good) / float64(total); frac < 0.8 {
		t.Fatalf("only %.0f%% of resnet50 boxes reach IoU 0.7", 100*frac)
	}
}

func TestJitterIsWorseForWeakModels(t *testing.T) {
	car := bigCar(1)
	meanIoU := func(name string) float64 {
		d := MustNew(name)
		sum, n := 0.0, 0
		for fi := 0; fi < 300; fi++ {
			f := Frame{SeqID: "jit", Index: fi, Width: 1242, Height: 375,
				Objects: []dataset.Object{car}}
			for _, det := range d.DetectFull(f).Detections {
				if det.TrackID == 1 {
					sum += geom.IoU(det.Box, car.Box)
					n++
				}
			}
		}
		return sum / float64(n)
	}
	if meanIoU("resnet50") <= meanIoU("resnet10c") {
		t.Fatal("resnet50 localization should beat resnet10c")
	}
}

func TestDetectionsSortedAndNMSed(t *testing.T) {
	d := MustNew("resnet10a")
	p := video.KITTIPreset()
	p.NumSequences = 1
	p.FramesPerSeq = 50
	ds := video.Generate(p, 3)
	seq := &ds.Sequences[0]
	for fi := range seq.Frames {
		f := Frame{SeqID: seq.ID, Index: fi, Width: seq.Width, Height: seq.Height,
			Objects: seq.Frames[fi].Objects}
		r := d.DetectFull(f)
		for i := 1; i < len(r.Detections); i++ {
			if r.Detections[i].Score > r.Detections[i-1].Score {
				t.Fatalf("frame %d: output not score-sorted", fi)
			}
		}
		for i := range r.Detections {
			for j := i + 1; j < len(r.Detections); j++ {
				a, b := r.Detections[i], r.Detections[j]
				if a.Class == b.Class && geom.IoU(a.Box, b.Box) > NMSIoU {
					t.Fatalf("frame %d: NMS left overlap %.2f", fi, geom.IoU(a.Box, b.Box))
				}
			}
		}
	}
}

func TestFullFrameOpsMatchZoo(t *testing.T) {
	d := MustNew("resnet10b")
	f := testFrame()
	r := d.DetectFull(f)
	want := 7.5e9
	if math.Abs(r.Ops-want)/want > 1e-6 {
		t.Fatalf("resnet10b full-frame ops = %.3e, want %.3e", r.Ops, want)
	}
}
