// Package detector simulates trained object detectors at the
// bounding-box level. A Profile encodes a model's quality — its
// size-dependent recall curve, localization noise, confidence behaviour
// and false-positive process — and a Detector combines a profile with an
// operation cost model from internal/ops. Detection outcomes are
// deterministic functions of (model, sequence, frame, object), see
// hash.go.
//
// Profiles in the zoo are calibrated so each model's *single-model* mAP
// and delay land near the paper's Table 4/5 anchors; everything the
// paper claims about cascades and tracking is then measured, not
// scripted.
package detector

import (
	"fmt"
	"math"

	"repro/internal/dataset"
	"repro/internal/ops"
)

// Profile is the accuracy model of one trained detector.
type Profile struct {
	// Name must match an internal/ops zoo model name.
	Name string

	// Recall curve: the probability of detecting a fully-visible object
	// is MaxRecall * sigmoid((ln h - ln Midpoint) / Slope) where h is
	// the box height in pixels.
	Midpoint  float64
	Slope     float64
	MaxRecall float64

	// Logit penalties for degraded visibility.
	OccPenalty   [3]float64 // indexed by KITTI occlusion level
	TruncPenalty float64    // multiplied by the truncation fraction

	// TrackBias is the std of a per-(model, sequence, track) persistent
	// logit offset: weak models miss some tracks systematically, which
	// is why a cascade without temporal feedback cannot recover recall
	// by lowering thresholds (paper Section 6.4, Figure 6).
	TrackBias float64

	// LocNoise is the relative localization jitter (std, fraction of
	// box size). Large values push detections below the class IoU
	// threshold, costing both a false positive and a false negative.
	LocNoise float64

	// Confidence model: TP confidence = sigmoid(ConfGain*z + noise -
	// LocConfCoupling*q), where z is the detection logit margin and q is
	// the squared localization-jitter magnitude (mean 1); FP confidence
	// = sigmoid(FPConfCenter + noise). ConfNoise is the noise std.
	//
	// The coupling term models a real property of detection heads:
	// badly localized boxes score lower. It makes precision rise with
	// the threshold even when localization failures (IoU below the
	// class threshold) are the dominant error source, so the
	// precision-matched delay metric stays well defined for weak models.
	ConfGain        float64
	ConfNoise       float64
	LocConfCoupling float64
	FPConfCenter    float64

	// FPRate is the expected number of spurious detections per frame
	// over the full frame (scaled by covered area in region mode).
	FPRate float64

	// RegionFPPerProposal adds false-positive mass per forwarded
	// proposal in region mode: candidate regions are preselected to
	// look object-like, so the refinement head's FP density inside them
	// exceeds the full-frame average.
	RegionFPPerProposal float64

	// RegionBoost is a small logit bonus applied when the detector runs
	// on proposed regions instead of the whole image: the head sees
	// better-localized candidates than its own RPN would supply. This
	// reproduces the paper's observation that CaTDet(R) slightly
	// surpasses the same model run alone (Table 5).
	RegionBoost float64
}

// Validate checks the profile parameters are usable.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("detector: profile missing name")
	}
	if p.Midpoint <= 0 || p.Slope <= 0 {
		return fmt.Errorf("detector: profile %s: midpoint/slope must be positive", p.Name)
	}
	if p.MaxRecall <= 0 || p.MaxRecall > 1 {
		return fmt.Errorf("detector: profile %s: MaxRecall %v outside (0,1]", p.Name, p.MaxRecall)
	}
	if p.LocNoise < 0 || p.FPRate < 0 || p.ConfNoise < 0 {
		return fmt.Errorf("detector: profile %s: negative noise/rate", p.Name)
	}
	return nil
}

// logitFor returns the detection logit margin z for a ground-truth
// object, before the track bias and region bonus.
func (p Profile) logitFor(o dataset.Object) float64 {
	h := o.Box.Height()
	if h < 1 {
		h = 1
	}
	z := (math.Log(h) - math.Log(p.Midpoint)) / p.Slope
	z -= p.OccPenalty[clampOcc(o.Occlusion)]
	z -= p.TruncPenalty * o.Truncation
	return z
}

func clampOcc(l int) int {
	if l < 0 {
		return 0
	}
	if l > 2 {
		return 2
	}
	return l
}

// zoo holds the calibrated profiles. Tuned against the KITTI-sim world
// (seed 1) to land near the paper's single-model anchors; see
// EXPERIMENTS.md for the measured values.
var zoo = map[string]Profile{
	"resnet50": {
		Name: "resnet50", Midpoint: 17, Slope: 0.32, MaxRecall: 0.985,
		OccPenalty: [3]float64{0, 1.5, 3.5}, TruncPenalty: 2.0,
		TrackBias: 0.45, LocNoise: 0.046,
		ConfGain: 0.72, ConfNoise: 1.0, LocConfCoupling: 0.6, FPConfCenter: -0.8,
		FPRate: 3.3, RegionFPPerProposal: 0.12,
		RegionBoost: 0.15,
	},
	"vgg16": {
		Name: "vgg16", Midpoint: 17, Slope: 0.33, MaxRecall: 0.985,
		OccPenalty: [3]float64{0, 1.5, 3.5}, TruncPenalty: 2.0,
		TrackBias: 0.45, LocNoise: 0.047,
		ConfGain: 0.72, ConfNoise: 1.0, LocConfCoupling: 0.6, FPConfCenter: -0.85,
		FPRate: 3.1, RegionFPPerProposal: 0.12,
		RegionBoost: 0.15,
	},
	"resnet18": {
		Name: "resnet18", Midpoint: 17.5, Slope: 0.32, MaxRecall: 0.99,
		OccPenalty: [3]float64{0, 1.5, 3.5}, TruncPenalty: 2.0,
		TrackBias: 0.50, LocNoise: 0.054,
		ConfGain: 0.62, ConfNoise: 1.05, LocConfCoupling: 0.7, FPConfCenter: -0.6,
		FPRate: 3.5, RegionFPPerProposal: 0.12,
		RegionBoost: 0.15,
	},
	"resnet10a": {
		Name: "resnet10a", Midpoint: 18, Slope: 0.32, MaxRecall: 0.99,
		OccPenalty: [3]float64{0, 1.6, 3.5}, TruncPenalty: 2.1,
		TrackBias: 0.50, LocNoise: 0.068,
		ConfGain: 0.55, ConfNoise: 1.1, LocConfCoupling: 0.8, FPConfCenter: -0.5,
		FPRate: 4.0, RegionFPPerProposal: 0.10,
		RegionBoost: 0.15,
	},
	"resnet10b": {
		Name: "resnet10b", Midpoint: 18.5, Slope: 0.33, MaxRecall: 0.985,
		OccPenalty: [3]float64{0, 1.6, 3.5}, TruncPenalty: 2.1,
		TrackBias: 0.55, LocNoise: 0.075,
		ConfGain: 0.50, ConfNoise: 1.15, LocConfCoupling: 0.85, FPConfCenter: -0.45,
		FPRate: 4.0, RegionFPPerProposal: 0.10,
		RegionBoost: 0.15,
	},
	"resnet10c": {
		Name: "resnet10c", Midpoint: 19, Slope: 0.34, MaxRecall: 0.98,
		OccPenalty: [3]float64{0, 1.7, 3.6}, TruncPenalty: 2.2,
		TrackBias: 0.55, LocNoise: 0.078,
		ConfGain: 0.48, ConfNoise: 1.2, LocConfCoupling: 0.9, FPConfCenter: -0.4,
		FPRate: 4.0, RegionFPPerProposal: 0.10,
		RegionBoost: 0.15,
	},
	"retinanet-res50": {
		// Appendix II: slightly lower mAP than Faster R-CNN Res50 and a
		// notably worse delay (Table 8 vs Table 2): the one-shot
		// detector is slower to pick up small new objects.
		Name: "retinanet-res50", Midpoint: 18, Slope: 0.34, MaxRecall: 0.98,
		OccPenalty: [3]float64{0, 1.5, 3.5}, TruncPenalty: 2.0,
		TrackBias: 0.50, LocNoise: 0.052,
		ConfGain: 0.58, ConfNoise: 1.0, LocConfCoupling: 0.65, FPConfCenter: -0.7,
		FPRate: 3.0, RegionFPPerProposal: 0.12,
		RegionBoost: 0.15,
	},
}

// ProfileFor returns the calibrated profile for a zoo model name.
func ProfileFor(name string) (Profile, error) {
	p, ok := zoo[name]
	if !ok {
		return Profile{}, fmt.Errorf("detector: unknown profile %q", name)
	}
	return p, nil
}

// MustProfile is ProfileFor for static names; it panics on error.
func MustProfile(name string) Profile {
	p, err := ProfileFor(name)
	if err != nil {
		panic(err)
	}
	return p
}

// ScaleNoise returns a copy of the profile with every noise channel —
// confidence noise, localization jitter, false-positive rate and the
// persistent per-track bias — multiplied by k. It models the same
// trained network watching a degraded input distribution (low light,
// rain, motion blur): the recall curve and confidence gain stay those
// of the model, but its mistakes grow k-fold. k <= 0 or k == 1 returns
// the profile unchanged. The Name is kept, so the deterministic
// per-(model, sequence, frame, object) randomness draws the same
// variates at scaled magnitudes — a noisier world, not a different
// one.
func (p Profile) ScaleNoise(k float64) Profile {
	if k <= 0 || k == 1 {
		return p
	}
	p.ConfNoise *= k
	p.LocNoise *= k
	p.FPRate *= k
	p.TrackBias *= k
	return p
}

// ProfileNames lists the zoo profiles in a stable order.
func ProfileNames() []string {
	return []string{"resnet50", "vgg16", "resnet18", "resnet10a", "resnet10b", "resnet10c", "retinanet-res50"}
}

// New builds a Detector from a zoo name, pairing the accuracy profile
// with its calibrated cost model.
func New(name string) (*Detector, error) {
	p, err := ProfileFor(name)
	if err != nil {
		return nil, err
	}
	cost, err := ops.NewCostModel(name)
	if err != nil {
		return nil, err
	}
	return &Detector{Profile: p, Cost: cost}, nil
}

// MustNew is New for static names; it panics on error.
func MustNew(name string) *Detector {
	d, err := New(name)
	if err != nil {
		panic(err)
	}
	return d
}
