package catdet

// End-to-end tests through the public facade, including the oracle
// invariant: a pipeline fed a perfect detector must produce perfect
// metrics, which exercises every layer (world, systems, tracker,
// matching, AP, delay) at once.

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detector"
	"repro/internal/sim"
)

func TestFacadeQuickstartPath(t *testing.T) {
	ds := Generate(MiniKITTIPreset(), 42)
	if err := ds.Validate(); err != nil {
		t.Fatal(err)
	}
	sys := MustSystem(SystemSpec{
		Kind: CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: DefaultConfig(),
	}, ds.Classes)
	run := Run(sys, ds)
	ev := Evaluate(ds, run, Hard, 0.8)
	if ev.MAP <= 0.5 || ev.MAP > 1 {
		t.Fatalf("mAP = %v", ev.MAP)
	}
	if math.IsNaN(ev.MeanDelay) || ev.MeanDelay < 0 {
		t.Fatalf("delay = %v", ev.MeanDelay)
	}
	if run.AvgGops() <= 0 || run.AvgGops() > 254.3 {
		t.Fatalf("Gops = %v", run.AvgGops())
	}
}

// TestFacadeServePath exercises the online serving layer through the
// public facade: the result must carry the acceptance quantities
// (latency percentiles, throughput, drop rate) and stay internally
// consistent.
func TestFacadeServePath(t *testing.T) {
	res, err := Serve(ServeConfig{
		Spec: SystemSpec{
			Kind: CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: DefaultConfig(),
		},
		Preset:    MiniKITTIPreset(),
		Seed:      1,
		Streams:   3,
		FPS:       10,
		Duration:  3,
		Executors: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	fl := res.Fleet
	if fl.Served == 0 || fl.Throughput <= 0 {
		t.Fatalf("fleet served nothing: %+v", fl)
	}
	if fl.Served+fl.DroppedQueue+fl.DroppedStale != fl.Arrived {
		t.Fatalf("frame accounting leak: %+v", fl)
	}
	lat := fl.Latency
	if !(lat.P50 > 0 && lat.P50 <= lat.P95 && lat.P95 <= lat.P99 && lat.P99 <= lat.Max) {
		t.Fatalf("latency percentiles not ordered: %+v", lat)
	}
	if len(res.PerStream) != 3 {
		t.Fatalf("per-stream rows = %d, want 3", len(res.PerStream))
	}
}

// TestFacadeServerPath exercises the push-based Server through the
// public facade: frames submitted from caller code, per-frame events
// on a sink, live stats, and a drained result that balances.
func TestFacadeServerPath(t *testing.T) {
	var served int
	srv, err := NewServer(ServeConfig{
		Spec: SystemSpec{
			Kind: CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: DefaultConfig(),
		},
		Preset:  MiniKITTIPreset(),
		Seed:    1,
		Streams: 2,
		FPS:     10,
		Sink: ServeSinkFunc(func(e ServeEvent) {
			if e.Kind == ServeEventServed {
				served++
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	for k := 0; k < 30; k++ {
		for s := 0; s < 2; s++ {
			if err := srv.Submit(s, k, float64(k)/10); err != nil {
				t.Fatal(err)
			}
		}
	}
	if st := srv.Stats(); st.Arrived != 60 {
		t.Fatalf("live stats saw %d arrivals, submitted 60", st.Arrived)
	}
	res, err := srv.Drain(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if res.Fleet.Arrived != 60 || res.Fleet.Served != served {
		t.Fatalf("books do not balance: fleet %+v vs %d served events", res.Fleet, served)
	}
}

// TestFacadeChaosPath exercises the scenario-pack registry and the
// chaos/reconnect/poison surface through the public facade: a pack
// resolved by name runs under every fault channel, the relaxed
// policies absorb the faults, and the books still balance with pills
// counted outside the partition.
func TestFacadeChaosPath(t *testing.T) {
	preset, err := PresetByName("night")
	if err != nil {
		t.Fatal(err)
	}
	if len(PresetNames()) < 6 {
		t.Fatalf("preset registry lists only %v", PresetNames())
	}
	res, err := Serve(ServeConfig{
		Spec: SystemSpec{
			Kind: CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: DefaultConfig(),
		},
		Preset:    preset,
		Seed:      7,
		Streams:   3,
		FPS:       10,
		Duration:  3,
		Executors: 1,
		Reconnect: ServeReconnectResume,
		Poison:    ServePoisonDrop,
		Chaos: ServeChaos{
			DropoutRate: 30, DropoutMeanLen: 0.6, Renumber: true,
			FPSJitter: 0.15, ClockSkew: 0.08, PoisonRate: 0.05,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	fl := res.Fleet
	if fl.Served == 0 {
		t.Fatalf("chaotic fleet served nothing: %+v", fl)
	}
	if fl.Reconnects == 0 || fl.DroppedPoison == 0 {
		t.Fatalf("chaos channels did not fire: %d reconnects, %d pills", fl.Reconnects, fl.DroppedPoison)
	}
	if fl.Served+fl.DroppedQueue+fl.DroppedStale != fl.Arrived {
		t.Fatalf("frame accounting leak under chaos: %+v", fl)
	}
}

// TestFacadeClusterPath exercises the sharded cluster layer through the
// public facade: a two-shard mixed-tier cluster with migration and
// autoscaling on, driven closed-loop, must keep balanced books, price
// its capacity, and stream attributed events to the sink.
func TestFacadeClusterPath(t *testing.T) {
	var serves, migrations, resizes int
	res, err := ServeCluster(ClusterConfig{
		Base: ServeConfig{
			Spec: SystemSpec{
				Kind: CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: DefaultConfig(),
			},
			Preset:    MiniKITTIPreset(),
			Seed:      1,
			Streams:   6,
			FPS:       15,
			StreamFPS: []float64{90, 15, 15, 15, 15, 15},
			Duration:  4,
			QueueCap:  256,
		},
		Shards:    2,
		GPUTiers:  []string{"v100", "k80"},
		Migration: ClusterMigration{QueueDepth: 4},
		Autoscale: ClusterAutoscale{Enabled: true, Min: 1, Max: 3},
		Sink: ClusterSinkFunc(func(e ClusterEvent) {
			switch e.Kind {
			case ClusterEventServe:
				if e.Serve.Kind == ServeEventServed {
					serves++
				}
			case ClusterEventMigrate:
				migrations++
			case ClusterEventResize:
				resizes++
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	fl := res.Fleet
	if fl.Served == 0 || fl.Served != serves {
		t.Fatalf("fleet served %d, sink saw %d", fl.Served, serves)
	}
	if fl.Served+fl.DroppedQueue+fl.DroppedStale != fl.Arrived {
		t.Fatalf("frame accounting leak: %+v", fl)
	}
	if res.Migrations != migrations || res.Resizes != resizes {
		t.Fatalf("control books (%d migrations, %d resizes) disagree with sink (%d, %d)",
			res.Migrations, res.Resizes, migrations, resizes)
	}
	if len(res.PerShard) != 2 || res.Cost <= 0 || res.ServedPerDollar <= 0 {
		t.Fatalf("shard economics missing: %d shards, cost %v, served/$ %v",
			len(res.PerShard), res.Cost, res.ServedPerDollar)
	}
	var shardCost float64
	for _, b := range res.PerShard {
		if _, err := GPUTierByName(b.Tier); err != nil {
			t.Errorf("shard %d priced on unknown tier: %v", b.Shard, err)
		}
		shardCost += b.Cost
	}
	if math.Abs(shardCost-res.Cost) > 1e-9 {
		t.Fatalf("shard costs sum to %v, cluster cost %v", shardCost, res.Cost)
	}
	if len(GPUTierNames()) < 3 {
		t.Fatalf("tier catalog too small: %v", GPUTierNames())
	}
}

func TestFacadeErrorsOnUnknownModel(t *testing.T) {
	if _, err := NewSystem(SystemSpec{Kind: Single, Refinement: "alexnet"}, nil); err == nil {
		t.Fatal("expected error")
	}
	if _, err := NewDetector("alexnet"); err == nil {
		t.Fatal("expected error")
	}
}

func TestFacadeModelNames(t *testing.T) {
	names := ModelNames()
	if len(names) < 7 {
		t.Fatalf("model zoo too small: %v", names)
	}
	for _, n := range names {
		if _, err := NewDetector(n); err != nil {
			t.Errorf("%s: %v", n, err)
		}
	}
}

// Oracle invariant: a single-model system with a perfect detector
// scores mAP 1.0 and zero delay on any world.
func TestOracleSingleModelIsPerfect(t *testing.T) {
	ds := Generate(MiniKITTIPreset(), 7)
	oracle := detector.NewOracle(detector.FreeCost{})
	oracle.Classes = ds.Classes
	sys := core.NewSingleModel(oracle)
	run := sim.Run(sys, ds)
	ev := sim.Evaluate(ds, run, dataset.Hard, 0.8)
	if math.Abs(ev.MAP-1) > 1e-6 {
		t.Fatalf("oracle mAP = %v, want 1", ev.MAP)
	}
	if ev.MeanDelay > 1e-9 {
		t.Fatalf("oracle delay = %v, want 0", ev.MeanDelay)
	}
}

// Oracle cascade invariant: an oracle proposal net plus an oracle
// refinement net must also be perfect — the cascade plumbing (masks,
// margins, thresholds) must not lose anything.
func TestOracleCascadeIsPerfect(t *testing.T) {
	ds := Generate(MiniKITTIPreset(), 7)
	newOracle := func() *detector.Detector {
		o := detector.NewOracle(detector.FreeCost{})
		o.Classes = ds.Classes
		return o
	}
	for _, kind := range []SystemKind{Cascaded, CaTDet} {
		var sys System
		if kind == Cascaded {
			sys = core.NewCascaded(newOracle(), newOracle(), DefaultConfig())
		} else {
			sys = core.NewCaTDet(newOracle(), newOracle(), DefaultConfig())
		}
		run := sim.Run(sys, ds)
		ev := sim.Evaluate(ds, run, dataset.Hard, 0.8)
		if math.Abs(ev.MAP-1) > 1e-6 {
			t.Fatalf("%s oracle mAP = %v, want 1", kind, ev.MAP)
		}
		if ev.MeanDelay > 1e-9 {
			t.Fatalf("%s oracle delay = %v, want 0", kind, ev.MeanDelay)
		}
	}
}

func TestFacadeDatasetRoundTrip(t *testing.T) {
	ds := Generate(MiniKITTIPreset(), 3)
	path := t.TempDir() + "/d.json.gz"
	if err := ds.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadDataset(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumObjects() != ds.NumObjects() || got.NumFrames() != ds.NumFrames() {
		t.Fatal("round trip mismatch")
	}
	// Running a system on the loaded dataset must give identical
	// results (determinism keys on sequence IDs and frame indexes).
	spec := SystemSpec{Kind: CaTDet, Proposal: "resnet10b", Refinement: "resnet50", Cfg: DefaultConfig()}
	a := Run(MustSystem(spec, ds.Classes), ds)
	b := Run(MustSystem(spec, got.Classes), got)
	if a.AvgGops() != b.AvgGops() {
		t.Fatal("loaded dataset produced different results")
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	p := MiniKITTIPreset()
	ds := Generate(p, 1)
	rows := sim.Ablations(ds)
	if len(rows) != 5 {
		t.Fatalf("ablation rows = %d", len(rows))
	}
	base := rows[0]
	for _, r := range rows {
		if r.MAPHard <= 0.4 || r.MAPHard > 1 {
			t.Errorf("%s: implausible mAP %v", r.Variant, r.MAPHard)
		}
	}
	// Removing the prediction filters must not reduce cost.
	if rows[3].Gops < base.Gops-0.5 {
		t.Errorf("no-filter variant cheaper (%v) than baseline (%v)", rows[3].Gops, base.Gops)
	}
}

// TestFacadeAdaptivePath exercises the adaptive control plane through
// the public facade: an overloaded fleet under the baseline controller
// sheds streams to cheaper modes, the result echoes the controller's
// activity, and the mode constants carry the documented quality
// ordering.
func TestFacadeAdaptivePath(t *testing.T) {
	res, err := Serve(ServeConfig{
		Spec: SystemSpec{
			Kind: CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: DefaultConfig(),
		},
		Preset:    MiniKITTIPreset(),
		Seed:      1,
		Streams:   6,
		FPS:       30,
		Duration:  3,
		Executors: 1,
		QueueCap:  48,
		Control: ControlConfig{
			Kind:     ControllerBaseline,
			Interval: 0.1,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Control == nil || res.Control.Kind != ControllerBaseline {
		t.Fatalf("result did not echo the controller: %+v", res.Control)
	}
	if res.ControlTicks == 0 {
		t.Error("no control ticks recorded")
	}
	if res.ModeSwitches == 0 || res.Fleet.Degraded == 0 {
		t.Errorf("overloaded adaptive fleet never shed: %d switches, %d degraded",
			res.ModeSwitches, res.Fleet.Degraded)
	}
	if !(ModeFull.Quality() > ModeCascade.Quality() && ModeCascade.Quality() > ModeProposal.Quality()) {
		t.Error("mode quality weights not ordered full > cascade > proposal")
	}
	if ModeAuto.Quality() != ModeCascade.Quality() {
		t.Error("ModeAuto frames must carry the cascade quality weight")
	}
}

// TestFacadeFailoverPath drives the failure-injection surface through
// the facade: a scheduled kill and revival with the replay failover,
// fault events on the sink, and the availability ledger on the result.
func TestFacadeFailoverPath(t *testing.T) {
	var kills, revivals, rebalances int
	res, err := ServeCluster(ClusterConfig{
		Base: ServeConfig{
			Spec: SystemSpec{
				Kind: CaTDet, Proposal: "resnet10a", Refinement: "resnet50", Cfg: DefaultConfig(),
			},
			Preset:   MiniKITTIPreset(),
			Seed:     1,
			Streams:  6,
			FPS:      15,
			Duration: 4,
			QueueCap: 64,
		},
		Shards:   2,
		GPUTiers: []string{"titanx", "v100"},
		Faults: ClusterFaultPlan{
			Faults: []ClusterFault{
				{Time: 1, Kind: ClusterFaultKill, Shard: 0},
				{Time: 2.5, Kind: ClusterFaultRevive, Shard: 0},
			},
			Failover: ClusterFailoverReplay,
		},
		Sink: ClusterSinkFunc(func(e ClusterEvent) {
			switch e.Kind {
			case ClusterEventKill:
				kills++
			case ClusterEventRevive:
				revivals++
			case ClusterEventRebalance:
				rebalances++
			}
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Faults == nil {
		t.Fatal("faulted run has no fault ledger")
	}
	if res.Faults.Kills != kills || kills != 1 {
		t.Fatalf("ledger books %d kills, sink saw %d, want 1", res.Faults.Kills, kills)
	}
	if res.Faults.Revivals != revivals || revivals != 1 {
		t.Fatalf("ledger books %d revivals, sink saw %d, want 1", res.Faults.Revivals, revivals)
	}
	if res.Faults.Replaced+res.Faults.Rebalanced != rebalances {
		t.Fatalf("ledger books %d+%d ownership moves, sink saw %d",
			res.Faults.Replaced, res.Faults.Rebalanced, rebalances)
	}
	if res.Faults.Availability <= 0 || res.Faults.Availability >= 1 {
		t.Fatalf("availability %v outside (0,1) for a cluster with downtime", res.Faults.Availability)
	}
	fl := res.Fleet
	if fl.Served+fl.DroppedQueue+fl.DroppedStale+fl.DroppedFailover != fl.Arrived {
		t.Fatalf("frame accounting leak under failover: %+v", fl)
	}
	if sb := res.PerShard[0].Fault; sb == nil || sb.Kills != 1 {
		t.Fatalf("killed shard's fault book missing or wrong: %+v", sb)
	}
}
