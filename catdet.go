// Package catdet is the public API of the CaTDet reproduction: a
// cascaded, tracker-assisted video object detection system (Mao, Kong,
// Dally — "CaTDet: Cascaded Tracked Detector for Efficient Object
// Detection from Video", MLSYS 2019) together with the synthetic
// evaluation substrate used to reproduce the paper's experiments.
//
// The package re-exports the stable surface of the internal packages:
//
//   - building detection systems (single-model / cascaded / CaTDet) from
//     the calibrated model zoo;
//   - generating synthetic KITTI-like and CityPersons-like datasets;
//   - running systems over datasets and evaluating mAP and mean Delay;
//   - regenerating every table and figure of the paper's evaluation.
//
// Quick start:
//
//	ds := catdet.GenerateKITTI(1)
//	sys := catdet.MustSystem(catdet.SystemSpec{
//		Kind: catdet.CaTDet, Proposal: "resnet10a", Refinement: "resnet50",
//		Cfg: catdet.DefaultConfig(),
//	}, ds.Classes)
//	run := catdet.Run(sys, ds)
//	ev := catdet.Evaluate(ds, run, catdet.Hard, 0.8)
//	fmt.Printf("mAP=%.3f mD@0.8=%.1f at %.1f Gops/frame\n", ev.MAP, ev.MeanDelay, run.AvgGops())
package catdet

import (
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/detector"
	"repro/internal/gpumodel"
	"repro/internal/serve"
	"repro/internal/serve/cluster"
	"repro/internal/serve/control"
	"repro/internal/serve/sched"
	"repro/internal/sim"
	"repro/internal/tracker"
	"repro/internal/video"
)

// Re-exported data-model types.
type (
	// Dataset is a collection of labeled video sequences.
	Dataset = dataset.Dataset
	// Sequence is one contiguous clip with per-frame ground truth.
	Sequence = dataset.Sequence
	// Object is one ground-truth object in one frame.
	Object = dataset.Object
	// Class is an object category (Car, Pedestrian).
	Class = dataset.Class
	// Difficulty is a KITTI evaluation difficulty level.
	Difficulty = dataset.Difficulty
)

// Re-exported system types.
type (
	// System is a causal video detector.
	System = core.System
	// Config holds the cascade hyper-parameters (C-thresh, tracker
	// input threshold, region margin).
	Config = core.Config
	// SystemSpec names a system to build.
	SystemSpec = sim.SystemSpec
	// SystemKind selects single-model, cascaded or CaTDet.
	SystemKind = sim.SystemKind
	// RunResult is the outcome of running a system over a dataset.
	RunResult = sim.RunResult
	// Engine runs experiments sharded per sequence across a worker
	// pool; the zero value uses GOMAXPROCS workers.
	Engine = sim.Engine
	// SystemFactory builds a fresh System per worker for RunParallel.
	SystemFactory = sim.SystemFactory
	// Evaluation bundles mAP and mean-Delay results.
	Evaluation = sim.Evaluation
	// TrackerConfig holds the SORT-style tracker parameters.
	TrackerConfig = tracker.Config
	// Detector is a simulated detection model with a cost model.
	Detector = detector.Detector
	// WorldPreset describes a synthetic dataset generator.
	WorldPreset = video.Preset
)

// Classes.
const (
	Car        = dataset.Car
	Pedestrian = dataset.Pedestrian
)

// Difficulties.
const (
	Easy     = dataset.Easy
	Moderate = dataset.Moderate
	Hard     = dataset.Hard
)

// System kinds.
const (
	Single   = sim.Single
	Cascaded = sim.Cascaded
	CaTDet   = sim.CaTDet
)

// DefaultConfig returns the cascade settings used for the paper's main
// tables.
func DefaultConfig() Config { return core.DefaultConfig() }

// DefaultTrackerConfig returns the paper's tracker settings (eta=0.7,
// beta=0, adaptive confidence, 10px/boundary prediction filters).
func DefaultTrackerConfig() TrackerConfig { return tracker.DefaultConfig() }

// NewDetector builds a calibrated simulated detector from a zoo name:
// resnet50, vgg16, resnet18, resnet10a/b/c, retinanet-res50.
func NewDetector(name string) (*Detector, error) { return detector.New(name) }

// ModelNames lists the zoo models.
func ModelNames() []string { return detector.ProfileNames() }

// MustSystem builds a detection system from a spec, panicking on
// unknown model names.
func MustSystem(spec SystemSpec, classes []Class) System { return spec.MustBuild(classes) }

// NewSystem builds a detection system from a spec.
func NewSystem(spec SystemSpec, classes []Class) (System, error) { return spec.Build(classes) }

// KITTIPreset returns the synthetic KITTI-like world preset.
func KITTIPreset() WorldPreset { return video.KITTIPreset() }

// CityPersonsPreset returns the synthetic CityPersons-like preset.
func CityPersonsPreset() WorldPreset { return video.CityPersonsPreset() }

// MiniKITTIPreset returns a small fast preset for demos and tests.
func MiniKITTIPreset() WorldPreset { return video.MiniKITTIPreset() }

// PresetNames lists every registered scenario pack, sorted — the valid
// arguments to PresetByName (and cmd/serve's -preset flag).
func PresetNames() []string { return video.PresetNames() }

// PresetByName resolves a registered scenario pack (kitti, crowd,
// highway, drone, night, sports, ...); an unknown name fails with an
// error listing every valid choice.
func PresetByName(name string) (WorldPreset, error) { return video.PresetByName(name) }

// Generate builds the synthetic dataset for a preset and seed.
func Generate(p WorldPreset, seed int64) *Dataset { return video.Generate(p, seed) }

// GenerateKITTI builds the full KITTI-sim dataset (21 sequences, ~8000
// frames).
func GenerateKITTI(seed int64) *Dataset { return video.Generate(video.KITTIPreset(), seed) }

// Run executes a system over a dataset sequence by sequence.
func Run(sys System, ds *Dataset) *RunResult { return sim.Run(sys, ds) }

// RunParallel executes the spec over the dataset sharded across workers
// (0 = GOMAXPROCS). Each worker owns a private system instance; the
// merged result is byte-identical to Run for any worker count.
func RunParallel(spec SystemSpec, ds *Dataset, workers int) (*RunResult, error) {
	return sim.RunParallel(spec.Factory(ds.Classes), ds, workers)
}

// Evaluate computes mAP and (for densely labeled datasets) mD@beta.
func Evaluate(ds *Dataset, r *RunResult, diff Difficulty, beta float64) Evaluation {
	return sim.Evaluate(ds, r, diff, beta)
}

// Online serving layer: a long-lived push-based Server modeling a
// fleet that serves N concurrent video streams (one private per-stream
// session each) against GPU executors priced by the Appendix I timing
// model, with a pluggable scheduler, batched launches and queue-cap /
// stale-skip / degrade backpressure policies. Callers push frames with
// Server.Submit (or feed a ServeSource through Ingest), observe
// per-frame outcomes on a ServeSink, poll live ServeStats snapshots,
// and Drain for the cumulative ServeResult; Serve remains the
// closed-loop driver replaying a preset arrival schedule.
type (
	// ServeConfig describes one serving scenario (streams, arrival
	// process, executors, policies, sink).
	ServeConfig = serve.Config
	// ServeResult is the scenario outcome: per-stream and fleet
	// throughput, drop rate and p50/p95/p99 latency.
	ServeResult = serve.Result
	// ServeStreamStats is one stream's (or the fleet's) counters.
	ServeStreamStats = serve.StreamStats
	// LatencySummary condenses a latency sample set (nearest-rank
	// percentiles, seconds).
	LatencySummary = serve.LatencySummary
	// Server is the long-lived push-based serving fleet.
	Server = serve.Server
	// ServeStats is a live Server snapshot: cumulative totals, queue
	// depth, busy executors, and latency percentiles over a sliding
	// window of recent served frames.
	ServeStats = serve.Stats
	// ServeEvent is one per-frame outcome (served / dropped-queue /
	// dropped-stale) streamed to a ServeSink.
	ServeEvent = serve.Event
	// ServeEventKind classifies a ServeEvent.
	ServeEventKind = serve.EventKind
	// ServeSink receives per-frame events synchronously from the
	// engine.
	ServeSink = serve.Sink
	// ServeSinkFunc adapts a function to ServeSink.
	ServeSinkFunc = serve.SinkFunc
	// ServeArrival is one frame offered to a Server by a ServeSource.
	ServeArrival = serve.Arrival
	// ServeSource produces arrivals for Server.Ingest.
	ServeSource = serve.Source
	// ServeReconnectPolicy selects what Submit does when a stream's
	// frame numbering goes backwards (a camera reconnecting).
	ServeReconnectPolicy = serve.ReconnectPolicy
	// ServePoisonPolicy selects what Submit does with corrupt
	// submissions (negative or out-of-bound frames, non-finite stamps).
	ServePoisonPolicy = serve.PoisonPolicy
	// ServeChaos describes operational faults injected into a preset
	// arrival schedule as a pure, seeded transform: dropouts, restarted
	// numbering, FPS jitter, clock skew and poison pills.
	ServeChaos = serve.Chaos
)

// Per-frame serving outcomes.
const (
	ServeEventServed        = serve.EventServed
	ServeEventDroppedQueue  = serve.EventDroppedQueue
	ServeEventDroppedStale  = serve.EventDroppedStale
	ServeEventDroppedPoison = serve.EventDroppedPoison
	ServeEventReconnect     = serve.EventReconnect
)

// Reconnect and poison policies, and the default per-stream frame-index
// bound (ServeConfig.MaxFrame) guarding against runaway indices.
const (
	ServeReconnectReject = serve.ReconnectReject
	ServeReconnectResume = serve.ReconnectResume
	ServeReconnectReset  = serve.ReconnectReset

	ServePoisonError = serve.PoisonError
	ServePoisonDrop  = serve.PoisonDrop

	ServeDefaultMaxFrame = serve.DefaultMaxFrame
)

// ErrServerClosed is returned by Server methods after Close.
var ErrServerClosed = serve.ErrClosed

// NewServer builds a long-lived push-based serving fleet from a
// validated config. Frames are pushed with Submit(stream, frame,
// arriveAt) on the virtual clock; Drain runs the backlog dry and
// returns the cumulative ServeResult.
func NewServer(cfg ServeConfig) (*Server, error) { return serve.New(cfg) }

// ServeScheduleSource replays the config's preset arrival schedule in
// global time order — the source Serve drives a Server with.
func ServeScheduleSource(cfg ServeConfig) ServeSource { return serve.ScheduleSource(cfg) }

// ServeChannelSource wraps a caller-owned channel as a ServeSource for
// Server.Ingest; producer goroutines push arrivals until they close
// the channel.
func ServeChannelSource(ch <-chan ServeArrival) ServeSource { return serve.ChannelSource(ch) }

// SchedKind names a serving-queue scheduling policy (see
// internal/serve/sched for the policy semantics).
type SchedKind = sched.Kind

// Serving arrival processes, drop policies and schedulers.
const (
	FixedFPS   = serve.FixedFPS
	Poisson    = serve.Poisson
	Burst      = serve.Burst
	DropOldest = serve.DropOldest
	DropNewest = serve.DropNewest

	// SchedFIFO is the shared arrival-order queue; SchedFair is
	// deficit round-robin across streams; SchedPriority serves by
	// per-stream priority class (ServeConfig.Priorities, higher
	// first); SchedEDF is earliest-deadline-first with deadline =
	// arrive + MaxStaleness.
	SchedFIFO     = sched.FIFO
	SchedFair     = sched.Fair
	SchedPriority = sched.Priority
	SchedEDF      = sched.EDF
)

// Serve runs one closed-loop online serving scenario on the virtual
// clock: it builds a Server, replays the config's preset arrival
// schedule through Submit, and drains. The same config (seed included)
// produces a byte-identical result at any executor count, any
// ServeConfig.StepWorkers fan-out (the knob that maps the engine's real
// per-frame CPU work onto physical cores) and on any machine.
func Serve(cfg ServeConfig) (*ServeResult, error) { return serve.Run(cfg) }

// Adaptive control plane (see internal/serve/control): a Controller
// observes per-stream sliding-window statistics at virtual-clock
// control ticks and retunes per-stream policy online — operating mode
// (full / cascade / proposal-only), effective batch size and EDF
// deadline budgets. Select it via ServeConfig.Control; the determinism
// contract is unchanged (same config, byte-identical result).
type (
	// ControlConfig selects and parameterizes a controller
	// (ServeConfig.Control; the zero value is off).
	ControlConfig = control.Config
	// ControlKind names a controller implementation.
	ControlKind = control.Kind
	// Controller is the control plane's decision procedure, invoked at
	// every control tick with the current virtual time and fleet view.
	Controller = control.Controller
	// ControlPolicy is the per-stream knob set a controller drives.
	ControlPolicy = control.Policy
	// ControlAction is one decision of a control tick.
	ControlAction = control.Action
	// ControlView is the fleet state a control tick observes.
	ControlView = control.View
	// ControlStreamSignal is one stream's sliding-window observation.
	ControlStreamSignal = control.StreamSignal
	// StreamMode is a cascade stream's operating mode.
	StreamMode = control.Mode
)

// Controllers and per-stream operating modes.
const (
	// ControllerNop decides nothing and schedules nothing: a
	// nop-controlled run is byte-identical to a controller-less one.
	ControllerNop = control.KindNop
	// ControllerBaseline is the deterministic seeded hysteresis
	// controller.
	ControllerBaseline = control.KindBaseline

	// ModeAuto is the legacy automatic policy (DegradeDepth decides per
	// admission); ModeFull runs full-frame refinement, ModeCascade the
	// paper's region-gated cascade, ModeProposal the shed proposal-only
	// tier.
	ModeAuto     = control.ModeAuto
	ModeFull     = control.ModeFull
	ModeCascade  = control.ModeCascade
	ModeProposal = control.ModeProposal
)

// Sharded cluster serving layer: a ClusterRouter partitions one
// ServeConfig's streams across N shard Servers by consistent hashing
// with load-aware placement, migrates streams off saturated shards,
// autoscales each shard's executor count from live stats, and prices
// capacity by heterogeneous GPU tiers. The single-fleet determinism
// contract holds cluster-wide: the same ClusterConfig produces
// byte-identical merged books on any machine at any StepWorkers
// fan-out, and a one-shard cluster with the control policies off
// reproduces Serve byte for byte.
type (
	// ClusterConfig describes one cluster scenario: the Base serving
	// scenario to shard plus topology (shards, virtual nodes, placement
	// load factor, hop latency, GPU tiers) and control policies.
	ClusterConfig = cluster.Config
	// ClusterMigration bounds when and how often a stream moves off a
	// saturated shard (queue-depth trigger, cooldown, per-stream cap).
	ClusterMigration = cluster.Migration
	// ClusterAutoscale configures the per-shard elastic capacity loop
	// (control-tick interval, min/max executors, growth and release
	// hysteresis).
	ClusterAutoscale = cluster.Autoscale
	// ClusterRouter is the long-lived sharded serving cluster.
	ClusterRouter = cluster.Router
	// ClusterResult is the merged outcome: fleet and per-stream books,
	// per-shard ledgers, migration/resize totals and modeled cost.
	ClusterResult = cluster.Result
	// ClusterShardBook is one shard's slice of the result: its tier,
	// owned streams, rental cost and full single-fleet ServeResult.
	ClusterShardBook = cluster.ShardBook
	// ClusterStats is a live merged Router snapshot (per-shard queue
	// depths, control-plane totals, sliding-window latency).
	ClusterStats = cluster.Stats
	// ClusterEvent is one cluster occurrence streamed to a ClusterSink:
	// a shard's per-frame ServeEvent with attribution, a stream
	// migration, or an executor resize.
	ClusterEvent = cluster.Event
	// ClusterEventKind classifies a ClusterEvent.
	ClusterEventKind = cluster.EventKind
	// ClusterSink receives ClusterEvents synchronously from the engine.
	ClusterSink = cluster.Sink
	// ClusterSinkFunc adapts a function to ClusterSink.
	ClusterSinkFunc = cluster.SinkFunc
	// ClusterFaultPlan is the deterministic failure-injection plan:
	// explicit scheduled faults plus a seeded stochastic kill/revive
	// process, and the seized-frame failover policy. The zero value
	// injects nothing and leaves the cluster byte-identical to a
	// fault-free build.
	ClusterFaultPlan = cluster.FaultPlan
	// ClusterFault is one scheduled fault: kill, revive or add-shard at
	// a virtual time.
	ClusterFault = cluster.Fault
	// ClusterFaultKind classifies a ClusterFault.
	ClusterFaultKind = cluster.FaultKind
	// ClusterFailoverPolicy selects what happens to the frames a shard
	// kill seizes: replay on the survivors, drop, or replay degraded.
	ClusterFailoverPolicy = cluster.FailoverPolicy
	// ClusterFaultBook is the cluster-wide failure ledger merged into a
	// ClusterResult: kill/revival/rebalance totals, downtime,
	// availability and availability-adjusted economics.
	ClusterFaultBook = cluster.FaultBook
	// ClusterShardFaultBook is one shard's failure ledger: kills,
	// downtime and kill-to-first-served recovery latencies.
	ClusterShardFaultBook = cluster.ShardFaultBook
	// ServeFailedFrame is one frame seized by Server.FailAt, in
	// dispatch-then-queue order.
	ServeFailedFrame = serve.FailedFrame
	// GPUTier is one rentable GPU class: relative speed, price per hour
	// and scale-up latency (see GPUTierByName for the catalog).
	GPUTier = gpumodel.Tier
)

// Cluster event kinds.
const (
	ClusterEventServe     = cluster.EventServe
	ClusterEventMigrate   = cluster.EventMigrate
	ClusterEventResize    = cluster.EventResize
	ClusterEventKill      = cluster.EventKill
	ClusterEventRevive    = cluster.EventRevive
	ClusterEventAddShard  = cluster.EventAddShard
	ClusterEventRebalance = cluster.EventRebalance
)

// Scheduled fault kinds for a ClusterFaultPlan.
const (
	ClusterFaultKill     = cluster.FaultKill
	ClusterFaultRevive   = cluster.FaultRevive
	ClusterFaultAddShard = cluster.FaultAddShard
)

// Seized-frame failover policies.
const (
	ClusterFailoverReplay  = cluster.FailoverReplay
	ClusterFailoverDrop    = cluster.FailoverDrop
	ClusterFailoverDegrade = cluster.FailoverDegrade
)

// ErrClusterClosed is returned by ClusterRouter methods after Close.
var ErrClusterClosed = cluster.ErrClosed

// NewCluster builds a sharded serving cluster from a validated config.
// Frames are pushed with Submit(stream, frame, arriveAt) and routed to
// the owning shard; Drain runs every shard's backlog dry and merges the
// books into a ClusterResult.
func NewCluster(cfg ClusterConfig) (*ClusterRouter, error) { return cluster.New(cfg) }

// ServeCluster runs one closed-loop cluster scenario: it builds a
// ClusterRouter, replays the Base preset arrival schedule through it,
// and drains — the cluster counterpart of Serve.
func ServeCluster(cfg ClusterConfig) (*ClusterResult, error) { return cluster.Run(cfg) }

// GPUTierByName resolves a catalog GPU tier (k80, titanx, v100); an
// unknown name fails with an error listing every valid choice. The
// reference tier titanx leaves the base timing model untouched.
func GPUTierByName(name string) (GPUTier, error) { return gpumodel.TierByName(name) }

// GPUTierNames lists the catalog tiers, sorted.
func GPUTierNames() []string { return gpumodel.TierNames() }

// LoadDataset reads a dataset from a JSON (optionally .gz) file.
func LoadDataset(path string) (*Dataset, error) { return dataset.LoadFile(path) }
